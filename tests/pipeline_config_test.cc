// Copyright 2026 The DOD Authors.
//
// Pipeline robustness across configuration space: exactness must hold for
// any block count, reducer count, partition granularity, packing policy,
// sampling rate, cluster shape, dimensionality, and dataset family.

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "data/distort.h"
#include "data/generators.h"
#include "data/geo_like.h"
#include "detection/brute_force.h"

namespace dod {
namespace {

std::vector<PointId> GroundTruth(const Dataset& data,
                                 const DetectionParams& params) {
  BruteForceDetector oracle;
  std::vector<uint32_t> local =
      oracle.DetectOutliers(data, data.size(), params, nullptr);
  return std::vector<PointId>(local.begin(), local.end());
}

Dataset TestData(uint64_t seed, size_t n = 2500) {
  SettlementProfile profile;
  return GenerateSettlements(n, DomainForDensity(n, 0.05), profile, seed);
}

TEST(PipelineConfigTest, SingleBlockSingleReducer) {
  const Dataset data = TestData(1);
  DetectionParams params{5.0, 4};
  DodConfig config = DodConfig::Dmt(params);
  config.num_blocks = 1;
  config.num_reduce_tasks = 1;
  config.sampler.rate = 0.3;
  EXPECT_EQ(DodPipeline(config).RunOrDie(data).outliers,
            GroundTruth(data, params));
}

TEST(PipelineConfigTest, ManyBlocksManyReducers) {
  const Dataset data = TestData(2);
  DetectionParams params{5.0, 4};
  DodConfig config = DodConfig::Dmt(params);
  config.num_blocks = 64;
  config.num_reduce_tasks = 128;
  config.sampler.rate = 0.3;
  EXPECT_EQ(DodPipeline(config).RunOrDie(data).outliers,
            GroundTruth(data, params));
}

TEST(PipelineConfigTest, SinglePartitionDegenerates) {
  const Dataset data = TestData(3);
  DetectionParams params{5.0, 4};
  for (StrategyKind strategy : {StrategyKind::kUniSpace,
                                StrategyKind::kDDriven,
                                StrategyKind::kDomain}) {
    DodConfig config = DodConfig::Baseline(params, strategy,
                                           AlgorithmKind::kNestedLoop);
    config.target_partitions = 1;
    config.sampler.rate = 0.3;
    EXPECT_EQ(DodPipeline(config).RunOrDie(data).outliers,
              GroundTruth(data, params))
        << StrategyKindName(strategy);
  }
}

TEST(PipelineConfigTest, AllPackingPolicies) {
  const Dataset data = TestData(4);
  DetectionParams params{5.0, 4};
  const std::vector<PointId> expected = GroundTruth(data, params);
  for (PackingPolicy policy :
       {PackingPolicy::kRoundRobin, PackingPolicy::kLpt,
        PackingPolicy::kKarmarkarKarp}) {
    DodConfig config = DodConfig::Dmt(params);
    config.packing = policy;
    config.sampler.rate = 0.3;
    EXPECT_EQ(DodPipeline(config).RunOrDie(data).outliers, expected)
        << PackingPolicyName(policy);
  }
}

TEST(PipelineConfigTest, VeryLowSamplingRateStaysExact) {
  // A bad sample may produce a poor plan, never a wrong answer.
  const Dataset data = TestData(5, 4000);
  DetectionParams params{5.0, 4};
  DodConfig config = DodConfig::Dmt(params);
  config.sampler.rate = 0.005;
  EXPECT_EQ(DodPipeline(config).RunOrDie(data).outliers,
            GroundTruth(data, params));
}

TEST(PipelineConfigTest, CoarseAndFineMiniBuckets) {
  const Dataset data = TestData(6);
  DetectionParams params{5.0, 4};
  const std::vector<PointId> expected = GroundTruth(data, params);
  for (int buckets : {4, 16, 96}) {
    DodConfig config = DodConfig::Dmt(params);
    config.sampler.rate = 0.3;
    config.sampler.buckets_per_dim = buckets;
    EXPECT_EQ(DodPipeline(config).RunOrDie(data).outliers, expected)
        << buckets << " buckets/dim";
  }
}

TEST(PipelineConfigTest, TinyClusterStillExact) {
  const Dataset data = TestData(7);
  DetectionParams params{5.0, 4};
  DodConfig config = DodConfig::Dmt(params);
  config.cluster = ClusterSpec::Local(2);
  config.sampler.rate = 0.3;
  const DodResult result = DodPipeline(config).RunOrDie(data);
  EXPECT_EQ(result.outliers, GroundTruth(data, params));
  EXPECT_GT(result.breakdown.detect.reduce_seconds, 0.0);
}

TEST(PipelineConfigTest, ThreeDimensionalPipeline) {
  const Dataset data = GenerateUniform(2000, Rect::Cube(3, 0.0, 60.0), 8);
  DetectionParams params{4.0, 5};
  DodConfig config = DodConfig::Dmt(params);
  config.sampler.rate = 0.3;
  config.sampler.buckets_per_dim = 12;
  EXPECT_EQ(DodPipeline(config).RunOrDie(data).outliers,
            GroundTruth(data, params));
}

TEST(PipelineConfigTest, DistortedDataPipeline) {
  const Dataset base = TestData(9, 800);
  DistortOptions distort;
  distort.copies = 3;
  const Dataset data = DistortReplicate(base, distort);
  DetectionParams params{5.0, 4};
  DodConfig config = DodConfig::Dmt(params);
  config.sampler.rate = 0.3;
  EXPECT_EQ(DodPipeline(config).RunOrDie(data).outliers,
            GroundTruth(data, params));
}

TEST(PipelineConfigTest, HierarchicalDataAllStrategies) {
  const Dataset data = GenerateHierarchical(MapLevel::kNewEngland, 900, 10);
  DetectionParams params{5.0, 4};
  const std::vector<PointId> expected = GroundTruth(data, params);
  for (StrategyKind strategy :
       {StrategyKind::kDomain, StrategyKind::kUniSpace,
        StrategyKind::kDDriven, StrategyKind::kCDriven, StrategyKind::kDmt}) {
    DodConfig config =
        strategy == StrategyKind::kDmt
            ? DodConfig::Dmt(params)
            : DodConfig::Baseline(params, strategy,
                                  AlgorithmKind::kCellBased);
    config.sampler.rate = 0.3;
    EXPECT_EQ(DodPipeline(config).RunOrDie(data).outliers, expected)
        << StrategyKindName(strategy);
  }
}

TEST(PipelineConfigTest, RadiusLargerThanDomain) {
  // Every point is everyone's neighbor; with k < n there are no outliers,
  // and every cell's supporting area covers the whole domain.
  const Dataset data = GenerateUniform(300, Rect::Cube(2, 0.0, 10.0), 11);
  DetectionParams params{100.0, 4};
  DodConfig config = DodConfig::Dmt(params);
  config.sampler.rate = 0.5;
  EXPECT_TRUE(DodPipeline(config).RunOrDie(data).outliers.empty());
}

TEST(PipelineConfigTest, KOfOne) {
  const Dataset data = TestData(12, 1200);
  DetectionParams params{3.0, 1};
  DodConfig config = DodConfig::Dmt(params);
  config.sampler.rate = 0.3;
  EXPECT_EQ(DodPipeline(config).RunOrDie(data).outliers,
            GroundTruth(data, params));
}

TEST(PipelineConfigTest, DuplicateHeavyData) {
  // Many exact duplicates (sensor pileups): grouping and self-exclusion
  // must stay correct.
  Dataset data(2);
  Rng rng(13);
  for (int i = 0; i < 300; ++i) {
    const Point p{rng.NextUniform(0.0, 100.0), rng.NextUniform(0.0, 100.0)};
    const int copies = 1 + static_cast<int>(rng.NextBounded(5));
    for (int c = 0; c < copies; ++c) data.Append(p);
  }
  DetectionParams params{5.0, 4};
  DodConfig config = DodConfig::Dmt(params);
  config.sampler.rate = 0.5;
  EXPECT_EQ(DodPipeline(config).RunOrDie(data).outliers,
            GroundTruth(data, params));
}

TEST(PipelineConfigTest, ClusterSpecAffectsSimulatedTimesOnly) {
  const Dataset data = TestData(14);
  DetectionParams params{5.0, 4};
  DodConfig small = DodConfig::Dmt(params);
  small.cluster = ClusterSpec::Local(1);
  small.sampler.rate = 0.3;
  DodConfig large = DodConfig::Dmt(params);
  large.cluster.num_nodes = 100;
  large.sampler.rate = 0.3;
  const DodResult a = DodPipeline(small).RunOrDie(data);
  const DodResult b = DodPipeline(large).RunOrDie(data);
  EXPECT_EQ(a.outliers, b.outliers);
  // One slot serializes everything; 800 reduce slots parallelize fully.
  EXPECT_GT(a.breakdown.detect.reduce_seconds,
            b.breakdown.detect.reduce_seconds);
}

TEST(PipelineConfigTest, CountersReportAlgorithmMix) {
  const Dataset data = GenerateHierarchical(MapLevel::kNewEngland, 2000, 15);
  DetectionParams params{5.0, 4};
  DodConfig config = DodConfig::Dmt(params);
  config.sampler.rate = 0.3;
  const DodResult result = DodPipeline(config).RunOrDie(data);
  const uint64_t nl_cells =
      result.detect_stats.counters.Get("cells.Nested-Loop");
  const uint64_t cb_cells =
      result.detect_stats.counters.Get("cells.Cell-Based");
  EXPECT_GT(nl_cells + cb_cells, 0u);
}

}  // namespace
}  // namespace dod
