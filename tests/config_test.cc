// Copyright 2026 The DOD Authors.
//
// DodConfig factories/labels, StageBreakdown arithmetic, and the
// auto-derived partition count.

#include "core/config.h"

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/plan.h"
#include "data/generators.h"
#include "partition/sampler.h"

namespace dod {
namespace {

TEST(DodConfigTest, DmtFactory) {
  const DodConfig config = DodConfig::Dmt(DetectionParams{2.5, 7});
  EXPECT_EQ(config.strategy, StrategyKind::kDmt);
  EXPECT_DOUBLE_EQ(config.params.radius, 2.5);
  EXPECT_EQ(config.params.min_neighbors, 7);
  EXPECT_EQ(config.Label(), "DMT");
}

TEST(DodConfigTest, BaselineFactory) {
  const DodConfig config = DodConfig::Baseline(
      DetectionParams{1.0, 1}, StrategyKind::kUniSpace,
      AlgorithmKind::kNestedLoop);
  EXPECT_EQ(config.strategy, StrategyKind::kUniSpace);
  EXPECT_EQ(config.fixed_algorithm, AlgorithmKind::kNestedLoop);
  EXPECT_EQ(config.Label(), "uniSpace + Nested-Loop");
}

TEST(DodConfigTest, DefaultsAreAutoAdaptive) {
  const DodConfig config = DodConfig::Dmt(DetectionParams{1.0, 1});
  EXPECT_EQ(config.target_partitions, 0u);  // 0 = derive from cardinality
  EXPECT_EQ(config.packing, PackingPolicy::kLpt);
  EXPECT_TRUE(config.sampler.adapt_resolution);
}

TEST(DodConfigTest, AutoPartitionCountScalesWithData) {
  DetectionParams params{5.0, 4};
  auto cells_for = [&](size_t n) {
    const Dataset data = GenerateUniform(n, DomainForDensity(n, 0.05), 3);
    DodConfig config =
        DodConfig::Baseline(params, StrategyKind::kUniSpace,
                            AlgorithmKind::kCellBased);
    SamplerOptions sampler = config.sampler;
    const DistributionSketch sketch =
        BuildSketch(data, data.Bounds(), sampler);
    return BuildMultiTacticPlan(sketch, config).partition_plan.num_cells();
  };
  // Small data floors at 16 cells; larger data gets proportionally more.
  EXPECT_EQ(cells_for(2000), 16u);
  EXPECT_GT(cells_for(120000), 16u);
}

TEST(StageBreakdownTest, TotalSumsStages) {
  StageBreakdown breakdown;
  breakdown.preprocess_seconds = 1.0;
  breakdown.detect = StageTimes{2.0, 3.0, 4.0};
  breakdown.verify = StageTimes{0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(breakdown.total(), 11.5);
}

TEST(StrategyKindTest, NamesAreStable) {
  EXPECT_STREQ(StrategyKindName(StrategyKind::kDomain), "Domain");
  EXPECT_STREQ(StrategyKindName(StrategyKind::kUniSpace), "uniSpace");
  EXPECT_STREQ(StrategyKindName(StrategyKind::kDDriven), "DDriven");
  EXPECT_STREQ(StrategyKindName(StrategyKind::kCDriven), "CDriven");
  EXPECT_STREQ(StrategyKindName(StrategyKind::kDmt), "DMT");
}

TEST(AlgorithmKindTest, NamesAreStable) {
  EXPECT_STREQ(AlgorithmKindName(AlgorithmKind::kNestedLoop), "Nested-Loop");
  EXPECT_STREQ(AlgorithmKindName(AlgorithmKind::kCellBased), "Cell-Based");
  EXPECT_STREQ(AlgorithmKindName(AlgorithmKind::kBruteForce), "BruteForce");
}

}  // namespace
}  // namespace dod
