// Copyright 2026 The DOD Authors.
//
// AF-tree / DSHC fuzz: many randomized bucket workloads; after every
// insertion the R-tree structural invariants must hold, and at the end the
// clusters must exactly partition the inserted weight and tile the domain.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "dshc/af_tree.h"
#include "dshc/dshc.h"
#include "partition/partition_plan.h"

namespace dod {
namespace {

struct FuzzCase {
  uint64_t seed;
  int side;           // buckets per dimension
  int fanout;
  double t_diff;
  double t_max_points;
  bool cost_cap;
};

class AfTreeFuzz : public testing::TestWithParam<FuzzCase> {};

TEST_P(AfTreeFuzz, InvariantsAndConservation) {
  const FuzzCase& c = GetParam();
  Rng rng(c.seed);

  AfTreeOptions options;
  options.t_diff = c.t_diff;
  options.t_max_points = c.t_max_points;
  options.max_fanout = c.fanout;
  if (c.cost_cap) {
    DetectionParams params{5.0, 4};
    options.cost_fn = ClusterCostFn(2, params);
    options.t_max_cost = 5e5;
  }
  AfTree tree(2, options);

  // Random density landscape: plateaus of three density bands with
  // occasional spikes, inserted in random order (harder than row-major).
  const size_t total_buckets = static_cast<size_t>(c.side) * c.side;
  std::vector<uint32_t> order = RandomPermutation(total_buckets, rng);
  double total_weight = 0.0;
  for (uint32_t index : order) {
    const int x = static_cast<int>(index) % c.side;
    const int y = static_cast<int>(index) / c.side;
    double weight;
    const double band = rng.NextDouble();
    if (band < 0.5) {
      weight = 0.0;
    } else if (band < 0.8) {
      weight = 5.0 + rng.NextUniform(0.0, 2.0);
    } else if (band < 0.97) {
      weight = 60.0 + rng.NextUniform(0.0, 10.0);
    } else {
      weight = 500.0;
    }
    total_weight += weight;
    tree.InsertBucket(
        Rect(Point{static_cast<double>(x), static_cast<double>(y)},
             Point{x + 1.0, y + 1.0}),
        weight);
    ASSERT_TRUE(tree.CheckInvariants().ok())
        << "after bucket " << index << ": "
        << tree.CheckInvariants().ToString();
  }

  // Weight conservation.
  double cluster_weight = 0.0;
  std::vector<Rect> boxes;
  for (const AggregateFeature& af : tree.Clusters()) {
    cluster_weight += af.num_points;
    boxes.push_back(af.bounds);
    if (c.t_max_points < 1e17) {
      EXPECT_LT(af.num_points, c.t_max_points + 500.0);
    }
  }
  EXPECT_NEAR(cluster_weight, total_weight, 1e-6);

  // Tiling: clusters are disjoint rectangles covering the full domain.
  const PartitionPlan plan(
      Rect(Point{0.0, 0.0},
           Point{static_cast<double>(c.side), static_cast<double>(c.side)}),
      1.0, boxes);
  EXPECT_TRUE(plan.Validate().ok()) << plan.Validate().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, AfTreeFuzz,
    testing::Values(FuzzCase{1, 12, 4, 3.0, 1e18, false},
                    FuzzCase{2, 16, 8, 10.0, 1e18, false},
                    FuzzCase{3, 16, 3, 1.0, 1e18, false},
                    FuzzCase{4, 12, 8, 5.0, 800.0, false},
                    FuzzCase{5, 16, 8, 8.0, 1e18, true},
                    FuzzCase{6, 20, 5, 2.0, 2000.0, true},
                    FuzzCase{7, 10, 4, 1e9, 1e18, false},   // merge-everything
                    FuzzCase{8, 10, 4, 1e-9, 1e18, false}),  // merge-nothing
    [](const testing::TestParamInfo<FuzzCase>& info) {
      return "case" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace dod
