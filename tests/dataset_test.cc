// Copyright 2026 The DOD Authors.

#include "common/dataset.h"

#include <gtest/gtest.h>

#include <limits>

namespace dod {
namespace {

TEST(DatasetTest, AppendAndAccess) {
  Dataset data(2);
  EXPECT_TRUE(data.empty());
  const PointId a = data.Append(Point{1.0, 2.0});
  const PointId b = data.Append(Point{3.0, 4.0});
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(data.size(), 2u);
  EXPECT_EQ(data[b][0], 3.0);
  EXPECT_EQ(data.GetPoint(a), (Point{1.0, 2.0}));
}

TEST(DatasetTest, AppendRawPointer) {
  Dataset data(3);
  const double raw[3] = {1.0, 2.0, 3.0};
  data.Append(raw);
  EXPECT_EQ(data.GetPoint(0), (Point{1.0, 2.0, 3.0}));
}

TEST(DatasetTest, AppendAllConcatenates) {
  Dataset a(2), b(2);
  a.Append(Point{0.0, 0.0});
  b.Append(Point{1.0, 1.0});
  b.Append(Point{2.0, 2.0});
  a.AppendAll(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.GetPoint(2), (Point{2.0, 2.0}));
}

TEST(DatasetTest, BoundsCoverAllPoints) {
  Dataset data(2);
  data.Append(Point{1.0, 10.0});
  data.Append(Point{-5.0, 3.0});
  data.Append(Point{2.0, 7.0});
  const Rect bounds = data.Bounds();
  EXPECT_EQ(bounds.min(), (Point{-5.0, 3.0}));
  EXPECT_EQ(bounds.max(), (Point{2.0, 10.0}));
}

TEST(DatasetTest, SubsetPreservesOrder) {
  Dataset data(1);
  for (int i = 0; i < 10; ++i) data.Append(Point{static_cast<double>(i)});
  const Dataset sub = data.Subset({7, 2, 9});
  ASSERT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub[0][0], 7.0);
  EXPECT_EQ(sub[1][0], 2.0);
  EXPECT_EQ(sub[2][0], 9.0);
}

TEST(DatasetTest, ClearEmpties) {
  Dataset data(2);
  data.Append(Point{1.0, 1.0});
  data.Clear();
  EXPECT_TRUE(data.empty());
  EXPECT_EQ(data.size(), 0u);
}

TEST(DatasetTest, RawStorageIsRowMajor) {
  Dataset data(2);
  data.Append(Point{1.0, 2.0});
  data.Append(Point{3.0, 4.0});
  EXPECT_EQ(data.raw(), (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
}

TEST(DatasetValidateTest, AcceptsFiniteCoordinates) {
  Dataset data(3);
  data.Append(Point{1.0, -2.5, 0.0});
  data.Append(Point{1e300, -1e300, 4.25});
  EXPECT_TRUE(data.Validate().ok());
  EXPECT_TRUE(Dataset(2).Validate().ok());  // empty is vacuously valid
}

TEST(DatasetValidateTest, RejectsNaNNamingPointAndDimension) {
  Dataset data(2);
  data.Append(Point{1.0, 2.0});
  data.Append(Point{3.0, std::numeric_limits<double>::quiet_NaN()});
  const Status status = data.Validate();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("point 1"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("dimension 1"), std::string::npos)
      << status.ToString();
}

TEST(DatasetValidateTest, RejectsInfinities) {
  for (const double bad : {std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity()}) {
    Dataset data(2);
    data.Append(Point{bad, 0.0});
    EXPECT_EQ(data.Validate().code(), StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace dod
