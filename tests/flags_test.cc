// Copyright 2026 The DOD Authors.

#include "common/flags.h"

#include <gtest/gtest.h>

namespace dod {
namespace {

FlagParser ParseArgs(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  Result<FlagParser> parsed =
      FlagParser::Parse(static_cast<int>(args.size()), args.data());
  EXPECT_TRUE(parsed.ok());
  return std::move(parsed).value();
}

TEST(FlagParserTest, EqualsSyntax) {
  const FlagParser flags = ParseArgs({"--radius=5.5", "--k=4"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("radius", 0).value(), 5.5);
  EXPECT_EQ(flags.GetInt("k", 0).value(), 4);
}

TEST(FlagParserTest, SpaceSyntax) {
  const FlagParser flags = ParseArgs({"--strategy", "dmt", "--n", "1000"});
  EXPECT_EQ(flags.GetStringOr("strategy", ""), "dmt");
  EXPECT_EQ(flags.GetInt("n", 0).value(), 1000);
}

TEST(FlagParserTest, BooleanForms) {
  const FlagParser flags = ParseArgs({"--verbose", "--no-color"});
  EXPECT_TRUE(flags.GetBoolOr("verbose", false));
  EXPECT_FALSE(flags.GetBoolOr("color", true));
  EXPECT_TRUE(flags.GetBoolOr("missing", true));
  EXPECT_FALSE(flags.GetBoolOr("missing", false));
}

TEST(FlagParserTest, TrailingFlagIsBoolean) {
  const FlagParser flags = ParseArgs({"--radius=2", "--verbose"});
  EXPECT_TRUE(flags.GetBoolOr("verbose", false));
}

TEST(FlagParserTest, PositionalArguments) {
  const FlagParser flags = ParseArgs({"input.csv", "--k=3", "extra"});
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"input.csv", "extra"}));
}

TEST(FlagParserTest, DoubleDashEndsFlagParsing) {
  const FlagParser flags = ParseArgs({"--k=3", "--", "--not-a-flag"});
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"--not-a-flag"}));
}

TEST(FlagParserTest, DefaultsWhenMissing) {
  const FlagParser flags = ParseArgs({});
  EXPECT_EQ(flags.GetStringOr("name", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(flags.GetDouble("radius", 7.5).value(), 7.5);
  EXPECT_EQ(flags.GetInt("k", 9).value(), 9);
}

TEST(FlagParserTest, BadNumberIsError) {
  const FlagParser flags = ParseArgs({"--radius=abc"});
  const Result<double> radius = flags.GetDouble("radius", 0);
  ASSERT_FALSE(radius.ok());
  EXPECT_EQ(radius.status().code(), StatusCode::kInvalidArgument);
}

TEST(FlagParserTest, UnusedFlagTracking) {
  const FlagParser flags = ParseArgs({"--known=1", "--typo=2"});
  EXPECT_EQ(flags.GetInt("known", 0).value(), 1);
  const std::vector<std::string> unused = flags.UnusedFlags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(FlagParserTest, NegativeNumberAsValue) {
  const FlagParser flags = ParseArgs({"--offset", "-3.5"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("offset", 0).value(), -3.5);
}

}  // namespace
}  // namespace dod
