// Copyright 2026 The DOD Authors.
//
// Engine details beyond the core grouping semantics: I/O charging,
// non-POD key/value types, counters, stage-time arithmetic, and logging.

#include <gtest/gtest.h>

#include <string>

#include "common/logging.h"
#include "mapreduce/job.h"

namespace dod {
namespace {

JobSpec LocalSpec(int reducers, int slots = 4) {
  JobSpec spec;
  spec.num_reduce_tasks = reducers;
  spec.cluster = ClusterSpec::Local(slots);
  return spec;
}

class NullMapper : public Mapper<int, int> {
 public:
  void Map(size_t, Emitter<int, int>&) override {}
};

class NullReducer : public Reducer<int, int, int> {
 public:
  void Reduce(const int&, std::vector<int>&, std::vector<int>&,
              Counters&) override {}
};

TEST(EngineIoChargeTest, SplitBytesRaiseMapStageTime) {
  NullMapper mapper;
  NullReducer reducer;
  JobSpec cheap = LocalSpec(1);
  auto no_io = RunMapReduce<int, int, int>(
      4, mapper, reducer, [](const int&) { return 0; }, cheap)
                   .ValueOrDie();

  JobSpec charged = LocalSpec(1);
  charged.cluster.disk_read_mbps_per_slot = 100.0;
  // 4 splits × 50 MB at 100 MB/s on 4 slots → ≥ 0.5 s simulated map time.
  charged.split_input_bytes = {50'000'000, 50'000'000, 50'000'000,
                               50'000'000};
  auto with_io = RunMapReduce<int, int, int>(
      4, mapper, reducer, [](const int&) { return 0; }, charged)
                     .ValueOrDie();

  EXPECT_LT(no_io.stats.stage_times.map_seconds, 0.01);
  EXPECT_NEAR(with_io.stats.stage_times.map_seconds, 0.5, 0.05);
  // Wall time is unaffected — the charge is simulated, not slept.
  EXPECT_LT(with_io.stats.wall_seconds, 0.1);
}

TEST(EngineIoChargeTest, MissingEntriesAreUncharged) {
  NullMapper mapper;
  NullReducer reducer;
  JobSpec spec = LocalSpec(1, 1);
  spec.split_input_bytes = {10'000'000};  // only split 0 charged
  auto job = RunMapReduce<int, int, int>(
      3, mapper, reducer, [](const int&) { return 0; }, spec)
                 .ValueOrDie();
  ASSERT_EQ(job.stats.map_task_seconds.size(), 3u);
  EXPECT_GT(job.stats.map_task_seconds[0], 0.09);
  EXPECT_LT(job.stats.map_task_seconds[1], 0.01);
}

// A job with string keys and move-only-ish payloads.
class WordMapper : public Mapper<std::string, int> {
 public:
  void Map(size_t split, Emitter<std::string, int>& out) override {
    const char* words[] = {"outlier", "inlier", "outlier", "support"};
    out.Emit(words[split % 4], 1);
    out.Emit("outlier", 1);
  }
};

class WordReducer : public Reducer<std::string, int, std::string> {
 public:
  void Reduce(const std::string& key, std::vector<int>& values,
              std::vector<std::string>& out, Counters&) override {
    out.push_back(key + ":" + std::to_string(values.size()));
  }
};

TEST(EngineTypesTest, StringKeysSortAndGroup) {
  WordMapper mapper;
  WordReducer reducer;
  auto job = RunMapReduce<std::string, int, std::string>(
      4, mapper, reducer, [](const std::string&) { return 0; },
      LocalSpec(1), /*record_bytes=*/16)
                 .ValueOrDie();
  // Keys arrive sorted: inlier, outlier, support.
  ASSERT_EQ(job.output.size(), 3u);
  EXPECT_EQ(job.output[0], "inlier:1");
  EXPECT_EQ(job.output[1], "outlier:6");
  EXPECT_EQ(job.output[2], "support:1");
}

TEST(EngineTypesTest, PerRecordSizeCallbackOverridesFlatRecordBytes) {
  // A flat record_bytes of 16 would undercount string keys of varying
  // length; the per-record callback charges the actual payload.
  WordMapper mapper;
  WordReducer reducer;
  const auto record_size = [](const std::string& key, const int&) {
    return key.size() + sizeof(int);
  };
  auto job = RunMapReduce<std::string, int, std::string>(
      4, mapper, reducer, [](const std::string&) { return 0; },
      LocalSpec(1), /*record_bytes=*/16, record_size)
                 .ValueOrDie();
  // 8 records: 6×"outlier" (7+4) + 1×"inlier" (6+4) + 1×"support" (7+4).
  EXPECT_EQ(job.stats.records_shuffled, 8u);
  EXPECT_EQ(job.stats.bytes_shuffled, 6u * 11 + 10 + 11);
}

TEST(CountersTest, MergeAndDefault) {
  Counters a, b;
  a.Increment("x", 3);
  b.Increment("x", 4);
  b.Increment("y");
  a.MergeFrom(b);
  EXPECT_EQ(a.Get("x"), 7u);
  EXPECT_EQ(a.Get("y"), 1u);
  EXPECT_EQ(a.Get("missing"), 0u);
  EXPECT_EQ(a.values().size(), 2u);
}

TEST(StageTimesTest, Arithmetic) {
  StageTimes a{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(a.total(), 6.0);
  StageTimes b{0.5, 0.5, 0.5};
  a += b;
  EXPECT_DOUBLE_EQ(a.map_seconds, 1.5);
  EXPECT_DOUBLE_EQ(a.total(), 7.5);
}

TEST(JobStatsTest, ToStringMentionsStagesAndCounts) {
  JobStats stats;
  stats.stage_times = {0.1, 0.2, 0.3};
  stats.records_mapped = 42;
  stats.records_shuffled = 42;
  stats.groups_reduced = 7;
  const std::string text = stats.ToString();
  EXPECT_NE(text.find("map=0.1"), std::string::npos);
  EXPECT_NE(text.find("records=42"), std::string::npos);
  EXPECT_NE(text.find("groups=7"), std::string::npos);
}

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel previous = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Suppressed message must not crash.
  DOD_LOG(Debug) << "below the threshold " << 42;
  DOD_LOG(Error) << "visible";
  SetLogLevel(previous);
}

}  // namespace
}  // namespace dod
