// Copyright 2026 The DOD Authors.
//
// End-to-end smoke tests of the dod_cli binary: exercises the flag paths,
// CSV/binary I/O, plan export, and error handling through the real
// executable. The binary location comes from the DOD_CLI_PATH compile
// definition set by CMake.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

#include "io/csv.h"

#ifndef DOD_CLI_PATH
#define DOD_CLI_PATH "build/tools/dod_cli"
#endif

namespace dod {
namespace {

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult RunCommand(const std::string& args) {
  const std::string command = std::string(DOD_CLI_PATH) + " " + args + " 2>&1";
  CommandResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 512> buffer;
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  const int status = pclose(pipe);
  result.exit_code = WEXITSTATUS(status);
  return result;
}

TEST(CliSmokeTest, HelpExitsZero) {
  const CommandResult result = RunCommand("--help");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("--strategy"), std::string::npos);
}

TEST(CliSmokeTest, GeneratedRunReportsOutliers) {
  const CommandResult result =
      RunCommand("--generate uniform --n 3000 --density 0.02 --seed 7");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("outliers"), std::string::npos);
  EXPECT_NE(result.output.find("DMT"), std::string::npos);
}

TEST(CliSmokeTest, AllStrategiesRun) {
  for (const char* strategy :
       {"domain", "unispace", "ddriven", "cdriven", "dmt"}) {
    const CommandResult result = RunCommand(
        std::string("--generate uniform --n 1500 --strategy ") + strategy);
    EXPECT_EQ(result.exit_code, 0) << strategy << ": " << result.output;
  }
}

TEST(CliSmokeTest, CsvInputAndOutput) {
  const std::string in_path = testing::TempDir() + "/cli_smoke_in.csv";
  const std::string out_path = testing::TempDir() + "/cli_smoke_out.csv";
  {
    // A grid of points plus one far-away outlier.
    std::string csv;
    for (int x = 0; x < 30; ++x) {
      for (int y = 0; y < 30; ++y) {
        csv += std::to_string(x) + "," + std::to_string(y) + "\n";
      }
    }
    csv += "500,500\n";
    FILE* f = fopen(in_path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs(csv.c_str(), f);
    fclose(f);
  }
  const CommandResult result = RunCommand("--input " + in_path +
                                          " --radius 2 --k 4 --out " +
                                          out_path);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  Result<Dataset> outliers = ReadCsv(out_path);
  ASSERT_TRUE(outliers.ok());
  // The isolated point must be among the reported outliers.
  bool found = false;
  for (size_t i = 0; i < outliers.value().size(); ++i) {
    if (outliers.value()[static_cast<PointId>(i)][0] == 500.0) found = true;
  }
  EXPECT_TRUE(found);
  std::remove(in_path.c_str());
  std::remove(out_path.c_str());
}

TEST(CliSmokeTest, PlanExport) {
  const std::string plan_path = testing::TempDir() + "/cli_smoke_plan.txt";
  const CommandResult result = RunCommand(
      "--generate uniform --n 2000 --plan-out " + plan_path);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  FILE* f = fopen(plan_path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char header[16] = {0};
  ASSERT_NE(fgets(header, sizeof(header), f), nullptr);
  EXPECT_EQ(std::string(header).rfind("dod-plan", 0), 0u);
  fclose(f);
  std::remove(plan_path.c_str());
}

TEST(CliSmokeTest, TransientFaultInjectionStillSucceeds) {
  const CommandResult result = RunCommand(
      "--generate uniform --n 2000 --seed 7 --fault_failure_prob 0.35 "
      "--fault_seed 9 --max_task_attempts 8 --verbose");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  // Under a 40% per-attempt failure rate something fails and recovers, and
  // the report advertises it.
  EXPECT_NE(result.output.find("fault recovery"), std::string::npos)
      << result.output;
}

TEST(CliSmokeTest, ExhaustedRetriesFailCleanly) {
  const CommandResult result = RunCommand(
      "--generate uniform --n 1000 --fault_failure_prob 1 "
      "--max_task_attempts 2");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("failed after 2 attempts"), std::string::npos)
      << result.output;
}

TEST(CliSmokeTest, UnknownFlagIsRejected) {
  const CommandResult result =
      RunCommand("--generate uniform --n 1000 --bogus-flag 3");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("unknown flag"), std::string::npos);
}

TEST(CliSmokeTest, BadStrategyIsRejected) {
  const CommandResult result =
      RunCommand("--generate uniform --n 1000 --strategy quantum");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("unknown --strategy"), std::string::npos);
}

TEST(CliSmokeTest, MissingInputFileIsRejected) {
  const CommandResult result = RunCommand("--input /no/such/file.csv");
  EXPECT_NE(result.exit_code, 0);
}

}  // namespace
}  // namespace dod
