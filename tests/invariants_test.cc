// Copyright 2026 The DOD Authors.
//
// Cross-cutting invariants that tie the accounting together: candidate
// bookkeeping of the Domain verification job, support-replication bounds,
// cost-model monotonicity, and block-count independence.

#include <gtest/gtest.h>

#include <cmath>

#include "core/pipeline.h"
#include "data/generators.h"
#include "detection/cost_model.h"

namespace dod {
namespace {

TEST(DomainInvariants, CandidatesEqualRescuedPlusReported) {
  // Job 1 emits candidates (local outliers); job 2 either rescues a
  // candidate (neighbors found across the border) or confirms it. The
  // counters must balance exactly.
  const Dataset data =
      GenerateUniform(3000, DomainForDensity(3000, 0.03), 51);
  DodConfig config = DodConfig::Baseline(DetectionParams{5.0, 4},
                                         StrategyKind::kDomain,
                                         AlgorithmKind::kNestedLoop);
  config.sampler.rate = 0.3;
  const DodResult result = DodPipeline(config).RunOrDie(data);
  const uint64_t candidates =
      result.detect_stats.counters.Get("domain.candidates");
  const uint64_t rescued =
      result.verify_stats.counters.Get("domain.rescued_candidates");
  EXPECT_EQ(candidates, rescued + result.outliers.size());
  EXPECT_GT(candidates, 0u);
}

TEST(SupportInvariants, ReplicationIsBoundedByNeighborCells) {
  // With supporting areas of width r and cells wider than 2r in every
  // dimension, a point can be a support point of at most 3^d - 1 cells, so
  // shuffled records ≤ n · 3^d.
  const Dataset data =
      GenerateUniform(4000, DomainForDensity(4000, 0.05), 53);
  DodConfig config = DodConfig::Baseline(DetectionParams{5.0, 4},
                                         StrategyKind::kUniSpace,
                                         AlgorithmKind::kCellBased);
  config.target_partitions = 16;  // 4x4 grid, cells ≫ 2r wide
  config.sampler.rate = 0.3;
  const DodResult result = DodPipeline(config).RunOrDie(data);
  EXPECT_LE(result.detect_stats.records_shuffled, data.size() * 9);
  EXPECT_GE(result.detect_stats.records_shuffled, data.size());
}

TEST(CostModelInvariants, PlanningCostsMonotoneAtFixedDensity) {
  // Growing a partition without changing its density must never make it
  // cheaper. (At *fixed area* more points can legitimately reduce the
  // Cell-Based cost — extra density activates the Lemma 4.2 pruning.)
  const DetectionParams params{5.0, 4};
  for (AlgorithmKind kind :
       {AlgorithmKind::kNestedLoop, AlgorithmKind::kCellBased}) {
    for (double density : {0.005, 0.08, 0.5}) {
      double previous = -1.0;
      for (size_t n : {100u, 1000u, 10000u, 100000u}) {
        const double cost =
            PlanningCost(kind, PartitionStats{n, n / density, 2}, params);
        EXPECT_GT(cost, previous)
            << AlgorithmKindName(kind) << " density=" << density
            << " n=" << n;
        previous = cost;
      }
    }
  }
}

TEST(CostModelInvariants, DensityCanLegitimatelyReduceCellBasedCost) {
  // The Lemma 4.2 behavior the previous test must not forbid: at fixed
  // area, enough extra points flip the partition into the dense-pruning
  // regime and the modeled cost drops to linear.
  const DetectionParams params{5.0, 4};
  const double area = 1e5;
  const double middle =
      PlanningCost(AlgorithmKind::kCellBased,
                   PartitionStats{10000, area, 2}, params);  // ρ = 0.1
  const double dense =
      PlanningCost(AlgorithmKind::kCellBased,
                   PartitionStats{100000, area, 2}, params);  // ρ = 1.0
  EXPECT_LT(dense, middle);
}

TEST(CostModelInvariants, ReferenceCostsNonNegativeAndFinite) {
  const DetectionParams params{5.0, 4};
  for (double area : {0.0, 1.0, 1e12}) {
    for (size_t n : {0u, 1u, 7u, 100000u}) {
      const PartitionStats stats{n, area, 2};
      for (AlgorithmKind kind :
           {AlgorithmKind::kNestedLoop, AlgorithmKind::kCellBased,
            AlgorithmKind::kBruteForce}) {
        const double estimate = EstimateCost(kind, stats, params);
        EXPECT_GE(estimate, 0.0);
        EXPECT_TRUE(std::isfinite(estimate));
        const double planning = PlanningCost(kind, stats, params);
        EXPECT_GE(planning, 0.0);
        EXPECT_TRUE(std::isfinite(planning));
      }
    }
  }
}

TEST(PipelineInvariants, ResultsIndependentOfBlockCount) {
  const Dataset data =
      GenerateUniform(2500, DomainForDensity(2500, 0.04), 57);
  DetectionParams params{5.0, 4};
  std::vector<PointId> reference;
  for (size_t blocks : {1u, 4u, 17u, 64u}) {
    DodConfig config = DodConfig::Dmt(params);
    config.num_blocks = blocks;
    config.sampler.rate = 0.3;
    const DodResult result = DodPipeline(config).RunOrDie(data);
    if (reference.empty()) {
      reference = result.outliers;
    } else {
      EXPECT_EQ(result.outliers, reference) << blocks << " blocks";
    }
  }
}

TEST(PipelineInvariants, EveryOutlierIdIsValidAndUnique) {
  const Dataset data = GenerateUniform(3000, DomainForDensity(3000, 0.02),
                                       59);
  DodConfig config = DodConfig::Dmt(DetectionParams{5.0, 4});
  config.sampler.rate = 0.3;
  const DodResult result = DodPipeline(config).RunOrDie(data);
  ASSERT_FALSE(result.outliers.empty());
  for (size_t i = 0; i < result.outliers.size(); ++i) {
    EXPECT_LT(result.outliers[i], data.size());
    if (i > 0) EXPECT_LT(result.outliers[i - 1], result.outliers[i]);
  }
}

TEST(PipelineInvariants, ShuffleByteAccountingMatchesRecordSize) {
  const Dataset data =
      GenerateUniform(2000, DomainForDensity(2000, 0.05), 61);
  DodConfig config = DodConfig::Dmt(DetectionParams{5.0, 4});
  config.sampler.rate = 0.3;
  const DodResult result = DodPipeline(config).RunOrDie(data);
  // Record size: dims doubles + tag + cell id.
  const size_t record_bytes = 2 * sizeof(double) + 1 + sizeof(uint32_t);
  EXPECT_EQ(result.detect_stats.bytes_shuffled,
            result.detect_stats.records_shuffled * record_bytes);
}

}  // namespace
}  // namespace dod
