// Copyright 2026 The DOD Authors.
//
// Durable execution: checkpoint store round-trips, crash-at-task-N
// injection with resume exactness (engine and pipeline level), deadline /
// cancellation propagation with partial-progress stats, terminal statuses
// bypassing the retry budget, and memory-budget guards (arena charges and
// the columnar shuffle's deterministic degrade).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "data/generators.h"
#include "durability/checkpoint.h"
#include "durability/memory_budget.h"
#include "durability/payload.h"
#include "durability/run_control.h"
#include "detection/partition_view.h"
#include "mapreduce/job.h"
#include "mapreduce/shuffle.h"

namespace dod {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const char* tag) {
  const std::string dir = testing::TempDir() + "/dod_durability_" + tag + "_" +
                          std::to_string(::getpid());
  std::error_code ec;
  fs::remove_all(dir, ec);
  return dir;
}

// ---------------------------------------------------------------------------
// Payload codec.

TEST(PayloadTest, RoundTripAllTypes) {
  PayloadWriter writer;
  writer.U8(7);
  writer.U32(0xDEADBEEFu);
  writer.U64(0xFFFFFFFFFFFFFFFFULL);
  writer.F64(-2.5);
  writer.String("hello");
  writer.String("");
  writer.F64Vec({1.0, 2.0, 3.0});
  writer.F64Vec({});

  PayloadReader reader(writer.str());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  double f64 = 0.0;
  std::string s;
  std::vector<double> v;
  ASSERT_TRUE(reader.U8(&u8).ok());
  EXPECT_EQ(u8, 7);
  ASSERT_TRUE(reader.U32(&u32).ok());
  EXPECT_EQ(u32, 0xDEADBEEFu);
  ASSERT_TRUE(reader.U64(&u64).ok());
  EXPECT_EQ(u64, 0xFFFFFFFFFFFFFFFFULL);
  ASSERT_TRUE(reader.F64(&f64).ok());
  EXPECT_EQ(f64, -2.5);
  ASSERT_TRUE(reader.String(&s).ok());
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(reader.String(&s).ok());
  EXPECT_EQ(s, "");
  ASSERT_TRUE(reader.F64Vec(&v).ok());
  EXPECT_EQ(v, (std::vector<double>{1.0, 2.0, 3.0}));
  ASSERT_TRUE(reader.F64Vec(&v).ok());
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(reader.ExpectDone().ok());
}

TEST(PayloadTest, TruncationIsStructuredAndSticky) {
  PayloadWriter writer;
  writer.U64(42);
  PayloadReader reader(std::string_view(writer.str()).substr(0, 3));
  uint64_t out = 0;
  const Status first = reader.U64(&out);
  EXPECT_EQ(first.code(), StatusCode::kIoError);
  // Failed readers keep failing instead of reading garbage.
  uint8_t b = 0;
  EXPECT_FALSE(reader.U8(&b).ok());
  EXPECT_FALSE(reader.ExpectDone().ok());
}

TEST(PayloadTest, TrailingBytesFailExpectDone) {
  PayloadWriter writer;
  writer.U32(1);
  writer.U32(2);
  PayloadReader reader(writer.str());
  uint32_t out = 0;
  ASSERT_TRUE(reader.U32(&out).ok());
  EXPECT_FALSE(reader.ExpectDone().ok());
}

// ---------------------------------------------------------------------------
// Checkpoint store.

TEST(CheckpointStoreTest, CommitReopenAndReload) {
  const std::string dir = FreshDir("store");
  auto store =
      CheckpointStore::Open(dir, "job-a", /*resume=*/false).ValueOrDie();
  EXPECT_EQ(store->CommittedTasks(), 0u);
  EXPECT_FALSE(store->HasTask("map", 0));
  ASSERT_TRUE(store->CommitTask("map", 0, "payload-m0").ok());
  ASSERT_TRUE(store->CommitTask("reduce", 2, "payload-r2").ok());
  EXPECT_TRUE(store->HasTask("map", 0));
  EXPECT_EQ(store->CommittedTasks(), 2u);

  // A new process resuming the same job sees the committed records.
  auto resumed =
      CheckpointStore::Open(dir, "job-a", /*resume=*/true).ValueOrDie();
  EXPECT_EQ(resumed->CommittedTasks(), 2u);
  EXPECT_EQ(resumed->LoadTask("map", 0).ValueOrDie(), "payload-m0");
  EXPECT_EQ(resumed->LoadTask("reduce", 2).ValueOrDie(), "payload-r2");
  EXPECT_EQ(resumed->LoadTask("reduce", 5).status().code(),
            StatusCode::kNotFound);
}

TEST(CheckpointStoreTest, OpenWithoutResumeDiscardsPriorRecords) {
  const std::string dir = FreshDir("fresh");
  {
    auto store =
        CheckpointStore::Open(dir, "job-a", /*resume=*/false).ValueOrDie();
    ASSERT_TRUE(store->CommitTask("map", 0, "old").ok());
  }
  auto store =
      CheckpointStore::Open(dir, "job-a", /*resume=*/false).ValueOrDie();
  EXPECT_EQ(store->CommittedTasks(), 0u);
  EXPECT_FALSE(fs::exists(dir + "/MANIFEST.log"));
  EXPECT_FALSE(fs::exists(dir + "/DATA.log"));
}

TEST(CheckpointStoreTest, RefusesResumeAcrossJobKeys) {
  const std::string dir = FreshDir("jobkey");
  {
    auto store =
        CheckpointStore::Open(dir, "job-a", /*resume=*/false).ValueOrDie();
    ASSERT_TRUE(store->CommitTask("map", 0, "x").ok());
  }
  const auto other = CheckpointStore::Open(dir, "job-b", /*resume=*/true);
  EXPECT_EQ(other.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CheckpointStoreTest, DetectsTruncationAndCorruption) {
  const std::string dir = FreshDir("corrupt");
  auto store =
      CheckpointStore::Open(dir, "job-a", /*resume=*/false).ValueOrDie();
  ASSERT_TRUE(store->CommitTask("reduce", 1, "0123456789").ok());

  // Truncate the segment: the record's slice overruns what is on disk.
  const std::string segment_path = dir + "/DATA.log";
  { std::ofstream(segment_path, std::ios::trunc) << "0123"; }
  auto reopened =
      CheckpointStore::Open(dir, "job-a", /*resume=*/true).ValueOrDie();
  EXPECT_EQ(reopened->LoadTask("reduce", 1).status().code(),
            StatusCode::kIoError);

  // Same length, flipped byte: checksum mismatch.
  { std::ofstream(segment_path, std::ios::trunc) << "0123456780"; }
  EXPECT_EQ(reopened->LoadTask("reduce", 1).status().code(),
            StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// Engine-level crash / resume / control / budget.

struct KeySum {
  int key = 0;
  int64_t sum = 0;
  bool operator==(const KeySum& other) const {
    return key == other.key && sum == other.sum;
  }
};

class RangeMapper : public Mapper<int, int> {
 public:
  explicit RangeMapper(int per_split) : per_split_(per_split) {}
  void Map(size_t split_index, Emitter<int, int>& out) override {
    const int base = static_cast<int>(split_index) * per_split_;
    for (int v = base; v < base + per_split_; ++v) out.Emit(v % 7, v);
  }

 private:
  int per_split_;
};

class SumReducer : public Reducer<int, int, KeySum> {
 public:
  void Reduce(const int& key, std::vector<int>& values,
              std::vector<KeySum>& out, Counters& counters) override {
    int64_t sum = 0;
    for (int v : values) sum += v;
    out.push_back(KeySum{key, sum});
    counters.Increment("groups_seen");
  }
};

JobSpec BaseSpec(int threads, ShuffleMode shuffle) {
  JobSpec spec;
  spec.num_reduce_tasks = 3;
  spec.num_threads = threads;
  spec.cluster = ClusterSpec::Local(4);
  spec.shuffle = shuffle;
  return spec;
}

Result<JobOutput<KeySum>> RunSumJob(const JobSpec& spec) {
  RangeMapper mapper(100);
  SumReducer reducer;
  return RunMapReduce<int, int, KeySum>(
      /*num_splits=*/4, mapper, reducer,
      [](const int& key) { return key % 3; }, spec);
}

void ExpectSameJob(const JobOutput<KeySum>& a, const JobOutput<KeySum>& b) {
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.stats.records_mapped, b.stats.records_mapped);
  EXPECT_EQ(a.stats.records_shuffled, b.stats.records_shuffled);
  EXPECT_EQ(a.stats.bytes_shuffled, b.stats.bytes_shuffled);
  EXPECT_EQ(a.stats.groups_reduced, b.stats.groups_reduced);
  EXPECT_EQ(a.stats.task_attempts, b.stats.task_attempts);
  EXPECT_EQ(a.stats.counters.values(), b.stats.counters.values());
}

TEST(EngineDurabilityTest, CrashThenResumeIsExactAcrossThreadsAndShuffle) {
  for (const int threads : {1, 4}) {
    for (const ShuffleMode shuffle :
         {ShuffleMode::kSorted, ShuffleMode::kColumnar}) {
      SCOPED_TRACE(testing::Message()
                   << "threads=" << threads << " shuffle="
                   << ShuffleModeName(shuffle));
      const JobOutput<KeySum> baseline =
          RunSumJob(BaseSpec(threads, shuffle)).ValueOrDie();

      const std::string dir = FreshDir("engine");
      auto store =
          CheckpointStore::Open(dir, "sum-job", /*resume=*/false)
              .ValueOrDie();
      JobSpec crashing = BaseSpec(threads, shuffle);
      crashing.checkpoint = store.get();
      crashing.faults.crash_at_task = 1;
      crashing.faults.crash_phase = TaskPhase::kReduce;
      const auto crashed = RunSumJob(crashing);
      ASSERT_FALSE(crashed.ok());
      EXPECT_EQ(crashed.status().code(), StatusCode::kUnavailable);
      // The crash fired after the commit: its record is durable.
      EXPECT_TRUE(store->HasTask("reduce", 1));

      auto resumed_store =
          CheckpointStore::Open(dir, "sum-job", /*resume=*/true).ValueOrDie();
      const size_t committed = resumed_store->CommittedTasks();
      EXPECT_GE(committed, 5u);  // all 4 map tasks + reduce task 1
      JobSpec resuming = BaseSpec(threads, shuffle);
      resuming.checkpoint = resumed_store.get();
      resuming.resume = true;
      const JobOutput<KeySum> resumed = RunSumJob(resuming).ValueOrDie();
      ExpectSameJob(baseline, resumed);
    }
  }
}

TEST(EngineDurabilityTest, MapPhaseCrashResumesExactly) {
  const JobOutput<KeySum> baseline =
      RunSumJob(BaseSpec(1, ShuffleMode::kColumnar)).ValueOrDie();
  const std::string dir = FreshDir("mapcrash");
  auto store =
      CheckpointStore::Open(dir, "sum-job", /*resume=*/false).ValueOrDie();
  JobSpec crashing = BaseSpec(1, ShuffleMode::kColumnar);
  crashing.checkpoint = store.get();
  crashing.faults.crash_at_task = 2;
  crashing.faults.crash_phase = TaskPhase::kMap;
  ASSERT_EQ(RunSumJob(crashing).status().code(), StatusCode::kUnavailable);

  auto resumed_store =
      CheckpointStore::Open(dir, "sum-job", /*resume=*/true).ValueOrDie();
  JobSpec resuming = BaseSpec(1, ShuffleMode::kColumnar);
  resuming.checkpoint = resumed_store.get();
  resuming.resume = true;
  ExpectSameJob(baseline, RunSumJob(resuming).ValueOrDie());
}

TEST(EngineDurabilityTest, CorruptedCheckpointSelfHealsByRerunning) {
  const JobOutput<KeySum> baseline =
      RunSumJob(BaseSpec(1, ShuffleMode::kColumnar)).ValueOrDie();
  const std::string dir = FreshDir("selfheal");
  {
    auto store =
        CheckpointStore::Open(dir, "sum-job", /*resume=*/false).ValueOrDie();
    JobSpec spec = BaseSpec(1, ShuffleMode::kColumnar);
    spec.checkpoint = store.get();
    ASSERT_TRUE(RunSumJob(spec).ok());
  }
  // Flip the segment's first byte — map task 0's payload starts at offset
  // 0 under the sequential run above. The resumed run must detect the
  // checksum mismatch, discard the record, and re-run that task.
  {
    std::fstream file(dir + "/DATA.log",
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(0);
    byte = static_cast<char>(byte ^ 0x5A);
    file.write(&byte, 1);
  }
  auto store =
      CheckpointStore::Open(dir, "sum-job", /*resume=*/true).ValueOrDie();
  JobSpec resuming = BaseSpec(1, ShuffleMode::kColumnar);
  resuming.checkpoint = store.get();
  resuming.resume = true;
  ExpectSameJob(baseline, RunSumJob(resuming).ValueOrDie());
}

TEST(EngineDurabilityTest, CheckpointRequiresTriviallyCopyableTypes) {
  class StringReducer : public Reducer<int, int, std::string> {
   public:
    void Reduce(const int& key, std::vector<int>&, std::vector<std::string>&,
                Counters&) override {
      (void)key;
    }
  };
  const std::string dir = FreshDir("nonpod");
  auto store =
      CheckpointStore::Open(dir, "x", /*resume=*/false).ValueOrDie();
  RangeMapper mapper(10);
  StringReducer reducer;
  JobSpec spec = BaseSpec(1, ShuffleMode::kSorted);
  spec.checkpoint = store.get();
  const auto job = RunMapReduce<int, int, std::string>(
      1, mapper, reducer, [](const int&) { return 0; }, spec);
  EXPECT_EQ(job.status().code(), StatusCode::kUnimplemented);
}

TEST(EngineDurabilityTest, CancellationSkipsRetriesAndFillsPartialStats) {
  CancellationToken token;
  const RunControl control = RunControl::WithDeadline(0.0, token);
  class CancellingReducer : public Reducer<int, int, KeySum> {
   public:
    explicit CancellingReducer(CancellationToken token)
        : token_(std::move(token)) {}
    void Reduce(const int&, std::vector<int>&, std::vector<KeySum>&,
                Counters&) override {
      token_.Cancel();
    }

   private:
    CancellationToken token_;
  };
  RangeMapper mapper(100);
  CancellingReducer reducer(token);
  JobStats partial;
  JobSpec spec = BaseSpec(1, ShuffleMode::kColumnar);
  spec.retry.max_task_attempts = 4;
  spec.control = &control;
  spec.partial_stats = &partial;
  const auto job = RunMapReduce<int, int, KeySum>(
      4, mapper, reducer, [](const int& key) { return key % 3; }, spec);
  ASSERT_FALSE(job.ok());
  EXPECT_EQ(job.status().code(), StatusCode::kCancelled);
  // The maps all ran before the cancel fired; their work is reported.
  EXPECT_EQ(partial.records_mapped, 400u);
  EXPECT_GE(partial.task_attempts, 5u);  // 4 maps + the cancelling reduce
  // Cancellation is terminal: no retry burned the attempt budget.
  EXPECT_EQ(partial.task_retries, 0u);
}

TEST(EngineDurabilityTest, TerminalStatusBypassesRetryBudget) {
  class ExhaustedReducer : public Reducer<int, int, KeySum> {
   public:
    void Reduce(const int&, std::vector<int>&, std::vector<KeySum>&,
                Counters&) override {}
    Status TryReduceTask(const GroupedView<int, int>& groups,
                         std::vector<KeySum>&, Counters&) override {
      (void)groups;
      return Status::ResourceExhausted("synthetic budget failure");
    }
  };
  RangeMapper mapper(100);
  ExhaustedReducer reducer;
  JobStats partial;
  JobSpec spec = BaseSpec(1, ShuffleMode::kColumnar);
  spec.retry.max_task_attempts = 6;
  spec.partial_stats = &partial;
  const auto job = RunMapReduce<int, int, KeySum>(
      4, mapper, reducer, [](const int& key) { return key % 3; }, spec);
  ASSERT_FALSE(job.ok());
  EXPECT_EQ(job.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(partial.task_retries, 0u);
}

// ---------------------------------------------------------------------------
// Run control and memory budget primitives.

TEST(RunControlTest, InactiveByDefaultAndChecksPass) {
  const RunControl control;
  EXPECT_FALSE(control.active());
  EXPECT_TRUE(control.Check().ok());
}

TEST(RunControlTest, CancellationWinsOverDeadline) {
  CancellationToken token;
  // An already-expired deadline plus a cancelled token: kCancelled wins.
  const RunControl control = RunControl::WithDeadline(1e-12, token);
  token.Cancel();
  EXPECT_EQ(control.Check().code(), StatusCode::kCancelled);
}

TEST(RunControlTest, ExpiredDeadlineFires) {
  const RunControl control =
      RunControl::WithDeadline(1e-12, CancellationToken());
  EXPECT_EQ(control.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(MemoryBudgetTest, ChargeReleasePeakAndFitsAlone) {
  MemoryBudget budget(100);
  EXPECT_TRUE(budget.FitsAlone(100));
  EXPECT_FALSE(budget.FitsAlone(101));
  EXPECT_TRUE(budget.TryCharge(60));
  EXPECT_TRUE(budget.TryCharge(40));
  EXPECT_FALSE(budget.TryCharge(1));  // full
  EXPECT_EQ(budget.used_bytes(), 100u);
  budget.Release(40);
  EXPECT_EQ(budget.used_bytes(), 60u);
  EXPECT_EQ(budget.peak_bytes(), 100u);
  // FitsAlone ignores concurrent usage — it is the deterministic check.
  EXPECT_TRUE(budget.FitsAlone(100));
}

TEST(MemoryBudgetTest, ZeroLimitIsUnlimitedButAccounted) {
  MemoryBudget budget(0);
  EXPECT_TRUE(budget.FitsAlone(1ull << 60));
  EXPECT_TRUE(budget.TryCharge(1ull << 40));
  EXPECT_EQ(budget.peak_bytes(), 1ull << 40);
}

TEST(MemoryBudgetTest, MemoryChargeIsRaii) {
  MemoryBudget budget(100);
  {
    MemoryCharge charge;
    ASSERT_TRUE(charge.Acquire(&budget, 80, "test").ok());
    EXPECT_EQ(budget.used_bytes(), 80u);
    MemoryCharge denied;
    const Status status = denied.Acquire(&budget, 30, "overflow");
    EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
    EXPECT_NE(status.message().find("overflow"), std::string::npos);
  }
  EXPECT_EQ(budget.used_bytes(), 0u);  // released on scope exit
  MemoryCharge no_budget;
  EXPECT_TRUE(no_budget.Acquire(nullptr, 1ull << 60, "unbudgeted").ok());
}

TEST(TaskArenaBudgetTest, ReservationBeyondBudgetIsResourceExhausted) {
  const Dataset data = GenerateUniform(100, Rect::Cube(2, 0.0, 1.0), 3);
  MemoryBudget tiny(1024);
  TaskArena arena(data, &tiny);
  const Status status = arena.TryReserve(/*num_cells=*/4,
                                         /*num_points=*/100000);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  // The failed reservation must not leave a dangling charge.
  EXPECT_EQ(tiny.used_bytes(), 0u);
}

TEST(ShuffleBudgetTest, ColumnarDegradesToSortedWithIdenticalGroups) {
  std::vector<std::pair<uint32_t, int>> plain, budgeted;
  for (int i = 0; i < 500; ++i) {
    plain.emplace_back(static_cast<uint32_t>(i % 37), i);
  }
  budgeted = plain;

  internal::GroupScratch<uint32_t, int> plain_scratch, budget_scratch;
  internal::GroupPath plain_path, budget_path;
  const GroupedView<uint32_t, int> columnar = internal::GroupBucket(
      plain, ShuffleMode::kColumnar, &plain_scratch, &plain_path);
  MemoryBudget tiny(16);  // denies any real scratch
  const GroupedView<uint32_t, int> degraded =
      internal::GroupBucket(budgeted, ShuffleMode::kColumnar, &budget_scratch,
                            &budget_path, &tiny);
  EXPECT_EQ(plain_path, internal::GroupPath::kColumnar);
  EXPECT_EQ(budget_path, internal::GroupPath::kSortedBudget);
  ASSERT_EQ(columnar.num_groups(), degraded.num_groups());
  ASSERT_EQ(columnar.num_records(), degraded.num_records());
  for (size_t g = 0; g < columnar.num_groups(); ++g) {
    EXPECT_EQ(columnar.key(g), degraded.key(g));
    ASSERT_EQ(columnar.size(g), degraded.size(g));
    for (size_t i = 0; i < columnar.size(g); ++i) {
      EXPECT_EQ(columnar.value(g, i), degraded.value(g, i));
    }
  }
}

// ---------------------------------------------------------------------------
// Pipeline-level durability.

DodConfig SmallDmtConfig() {
  DodConfig config = DodConfig::Dmt(DetectionParams{5.0, 4});
  config.sampler.rate = 0.3;
  config.num_threads = 4;
  return config;
}

void ExpectSameProfiles(const std::vector<PartitionProfile>& a,
                        const std::vector<PartitionProfile>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cell, b[i].cell);
    EXPECT_EQ(a[i].algorithm, b[i].algorithm);
    EXPECT_EQ(a[i].core_points, b[i].core_points);
    EXPECT_EQ(a[i].support_points, b[i].support_points);
    EXPECT_EQ(a[i].area, b[i].area);
    EXPECT_EQ(a[i].density, b[i].density);
    EXPECT_EQ(a[i].predicted_cost, b[i].predicted_cost);
    EXPECT_EQ(a[i].measured_distance_evals, b[i].measured_distance_evals);
    // measured_seconds is wall clock: not comparable.
  }
}

TEST(PipelineDurabilityTest, CrashResumeMatchesUninterruptedRun) {
  const Dataset data =
      GenerateUniform(4000, DomainForDensity(4000, 0.04), 17);
  const DodResult baseline = DodPipeline(SmallDmtConfig()).RunOrDie(data);

  const std::string dir = FreshDir("pipeline");
  DodConfig crashing = SmallDmtConfig();
  crashing.checkpoint_dir = dir;
  crashing.faults.crash_at_task = 1;
  crashing.faults.crash_phase = TaskPhase::kReduce;
  const auto crashed = DodPipeline(crashing).Run(data);
  ASSERT_FALSE(crashed.ok());
  EXPECT_EQ(crashed.status().code(), StatusCode::kUnavailable);

  DodConfig resuming = SmallDmtConfig();
  resuming.checkpoint_dir = dir;
  resuming.resume = true;
  // Resume on a different thread count: still byte-identical.
  resuming.num_threads = 1;
  const DodResult resumed = DodPipeline(resuming).RunOrDie(data);
  EXPECT_EQ(baseline.outliers, resumed.outliers);
  EXPECT_EQ(baseline.detect_stats.records_mapped,
            resumed.detect_stats.records_mapped);
  EXPECT_EQ(baseline.detect_stats.groups_reduced,
            resumed.detect_stats.groups_reduced);
  EXPECT_EQ(baseline.detect_stats.counters.values(),
            resumed.detect_stats.counters.values());
  ExpectSameProfiles(baseline.detect_stats.partition_profiles,
                     resumed.detect_stats.partition_profiles);
}

TEST(PipelineDurabilityTest, ResumeRefusesDifferentConfiguration) {
  const Dataset data =
      GenerateUniform(2000, DomainForDensity(2000, 0.04), 18);
  const std::string dir = FreshDir("refuse");
  DodConfig first = SmallDmtConfig();
  first.checkpoint_dir = dir;
  ASSERT_TRUE(DodPipeline(first).Run(data).ok());

  DodConfig other = SmallDmtConfig();
  other.checkpoint_dir = dir;
  other.resume = true;
  other.seed = first.seed + 1;  // different fingerprint
  const auto refused = DodPipeline(other).Run(data);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PipelineDurabilityTest, DomainBaselineCrashResumeAcrossBothJobs) {
  const Dataset data =
      GenerateUniform(3000, DomainForDensity(3000, 0.04), 19);
  DodConfig base = DodConfig::Baseline(DetectionParams{5.0, 4},
                                       StrategyKind::kDomain,
                                       AlgorithmKind::kCellBased);
  base.num_threads = 4;
  const DodResult baseline = DodPipeline(base).RunOrDie(data);

  // The crash task index exists in both jobs; the run crashes in the
  // detection job first, and after one resume crashes again in the
  // verification job, so convergence takes two resumes.
  const std::string dir = FreshDir("domain");
  DodConfig crashing = base;
  crashing.checkpoint_dir = dir;
  crashing.faults.crash_at_task = 0;
  crashing.faults.crash_phase = TaskPhase::kReduce;
  ASSERT_EQ(DodPipeline(crashing).Run(data).status().code(),
            StatusCode::kUnavailable);
  DodConfig once = crashing;
  once.resume = true;
  ASSERT_EQ(DodPipeline(once).Run(data).status().code(),
            StatusCode::kUnavailable);
  DodConfig final_run = base;
  final_run.checkpoint_dir = dir;
  final_run.resume = true;
  const DodResult resumed = DodPipeline(final_run).RunOrDie(data);
  EXPECT_EQ(baseline.outliers, resumed.outliers);
  EXPECT_EQ(baseline.verify_stats.groups_reduced,
            resumed.verify_stats.groups_reduced);
}

TEST(PipelineDurabilityTest, DeadlineAndCancellationAreStructured) {
  const Dataset data =
      GenerateUniform(2000, DomainForDensity(2000, 0.04), 20);
  DodConfig deadline_config = SmallDmtConfig();
  deadline_config.deadline_seconds = 1e-9;
  RunDiagnostics diagnostics;
  const auto timed_out =
      DodPipeline(deadline_config).Run(data, &diagnostics);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kDeadlineExceeded);

  DodConfig cancel_config = SmallDmtConfig();
  cancel_config.cancel_token.Cancel();
  const auto cancelled = DodPipeline(cancel_config).Run(data);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace dod
