// Copyright 2026 The DOD Authors.
//
// The AF-tree: DSHC merge/insert semantics and R-tree structural
// invariants under many insertions, merges, and splits.

#include "dshc/af_tree.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace dod {
namespace {

Rect Box(double x0, double y0, double x1, double y1) {
  return Rect(Point{x0, y0}, Point{x1, y1});
}

AfTreeOptions Options(double t_diff, double t_max = 1e18, int fanout = 4) {
  AfTreeOptions options;
  options.t_diff = t_diff;
  options.t_max_points = t_max;
  options.max_fanout = fanout;
  return options;
}

TEST(AfTreeTest, FirstBucketBecomesOnlyCluster) {
  AfTree tree(2, Options(1.0));
  tree.InsertBucket(Box(0, 0, 1, 1), 5.0);
  ASSERT_EQ(tree.num_clusters(), 1u);
  const auto clusters = tree.Clusters();
  EXPECT_DOUBLE_EQ(clusters[0].num_points, 5.0);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(AfTreeTest, SimilarAdjacentBucketsMerge) {
  AfTree tree(2, Options(1.0));
  tree.InsertBucket(Box(0, 0, 1, 1), 5.0);
  tree.InsertBucket(Box(1, 0, 2, 1), 5.0);
  EXPECT_EQ(tree.num_clusters(), 1u);
  const auto clusters = tree.Clusters();
  EXPECT_DOUBLE_EQ(clusters[0].num_points, 10.0);
  EXPECT_EQ(clusters[0].bounds, Box(0, 0, 2, 1));
}

TEST(AfTreeTest, DissimilarDensityStaysSeparate) {
  AfTree tree(2, Options(/*t_diff=*/1.0));
  tree.InsertBucket(Box(0, 0, 1, 1), 5.0);    // density 5
  tree.InsertBucket(Box(1, 0, 2, 1), 50.0);   // density 50
  EXPECT_EQ(tree.num_clusters(), 2u);
}

TEST(AfTreeTest, NonAdjacentBucketsStaySeparate) {
  AfTree tree(2, Options(10.0));
  tree.InsertBucket(Box(0, 0, 1, 1), 5.0);
  tree.InsertBucket(Box(3, 0, 4, 1), 5.0);  // gap of 2
  EXPECT_EQ(tree.num_clusters(), 2u);
}

TEST(AfTreeTest, CardinalityCapStopsMerging) {
  AfTree tree(2, Options(10.0, /*t_max=*/12.0));
  tree.InsertBucket(Box(0, 0, 1, 1), 5.0);
  tree.InsertBucket(Box(1, 0, 2, 1), 5.0);  // merge → 10
  tree.InsertBucket(Box(2, 0, 3, 1), 5.0);  // 10 + 5 >= 12 → new cluster
  EXPECT_EQ(tree.num_clusters(), 2u);
}

TEST(AfTreeTest, RecursiveMergeFormsLargeRectangles) {
  // A 4x4 block of equal-density buckets scanned row-major must collapse
  // into a single cluster via recursive strip merging.
  AfTree tree(2, Options(1.0));
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      tree.InsertBucket(Box(x, y, x + 1, y + 1), 2.0);
    }
  }
  EXPECT_EQ(tree.num_clusters(), 1u);
  const auto clusters = tree.Clusters();
  EXPECT_EQ(clusters[0].bounds, Box(0, 0, 4, 4));
  EXPECT_DOUBLE_EQ(clusters[0].num_points, 32.0);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(AfTreeTest, TwoDensityPlateausYieldTwoClusters) {
  // Left half dense, right half sparse → exactly two rectangular clusters.
  AfTree tree(2, Options(2.0));
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 8; ++x) {
      tree.InsertBucket(Box(x, y, x + 1, y + 1), x < 4 ? 20.0 : 1.0);
    }
  }
  EXPECT_EQ(tree.num_clusters(), 2u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(AfTreeTest, SplitsKeepInvariantsWithTinyFanout) {
  // Many mutually non-mergeable clusters force node splits (fanout 3).
  AfTree tree(2, Options(/*t_diff=*/0.001, 1e18, /*fanout=*/3));
  Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    const int x = i % 10, y = i / 10;
    // Strictly increasing density → nothing merges.
    tree.InsertBucket(Box(x, y, x + 1, y + 1), 10.0 + i);
    ASSERT_TRUE(tree.CheckInvariants().ok()) << "after insert " << i;
  }
  EXPECT_EQ(tree.num_clusters(), 60u);
}

TEST(AfTreeTest, InvariantsHoldUnderRandomizedWorkload) {
  // Random densities drawn from two bands, random insertion order: the
  // tree must maintain invariants and cluster count must stay bounded.
  AfTree tree(2, Options(/*t_diff=*/3.0, /*t_max=*/1e18, /*fanout=*/5));
  Rng rng(7);
  const int side = 12;
  std::vector<uint32_t> order = RandomPermutation(side * side, rng);
  for (uint32_t index : order) {
    const int x = static_cast<int>(index) % side;
    const int y = static_cast<int>(index) / side;
    const double weight = rng.NextBernoulli(0.5) ? 2.0 : 40.0;
    tree.InsertBucket(Box(x, y, x + 1, y + 1), weight);
    ASSERT_TRUE(tree.CheckInvariants().ok());
  }
  EXPECT_LE(tree.num_clusters(), static_cast<size_t>(side * side));
  EXPECT_GE(tree.num_clusters(), 2u);
}

TEST(AfTreeTest, ClustersPartitionTheInsertedWeight) {
  AfTree tree(2, Options(5.0, 200.0));
  Rng rng(11);
  double total = 0.0;
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      const double w = 1.0 + static_cast<double>(rng.NextBounded(30));
      total += w;
      tree.InsertBucket(Box(x, y, x + 1, y + 1), w);
    }
  }
  double cluster_sum = 0.0;
  for (const AggregateFeature& af : tree.Clusters()) {
    cluster_sum += af.num_points;
  }
  EXPECT_NEAR(cluster_sum, total, 1e-9);
}

TEST(AfTreeTest, ClusterBoxesAreDisjoint) {
  AfTree tree(2, Options(3.0));
  Rng rng(13);
  for (int y = 0; y < 10; ++y) {
    for (int x = 0; x < 10; ++x) {
      tree.InsertBucket(Box(x, y, x + 1, y + 1),
                        rng.NextBernoulli(0.3) ? 25.0 : 1.0);
    }
  }
  const auto clusters = tree.Clusters();
  for (size_t i = 0; i < clusters.size(); ++i) {
    for (size_t j = i + 1; j < clusters.size(); ++j) {
      const Rect& a = clusters[i].bounds;
      const Rect& b = clusters[j].bounds;
      bool interior_overlap = true;
      for (int d = 0; d < 2; ++d) {
        if (a.hi(d) <= b.lo(d) + 1e-9 || b.hi(d) <= a.lo(d) + 1e-9) {
          interior_overlap = false;
        }
      }
      EXPECT_FALSE(interior_overlap)
          << "clusters " << i << " and " << j << " overlap";
    }
  }
}

}  // namespace
}  // namespace dod
