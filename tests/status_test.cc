// Copyright 2026 The DOD Authors.

#include "common/status.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace dod {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad radius");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad radius");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad radius");
}

TEST(StatusTest, AllFactoryMethodsSetMatchingCode) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nothing here");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, WorksWithNonDefaultConstructibleTypes) {
  struct NoDefault {
    explicit NoDefault(int v) : value(v) {}
    int value;
  };
  Result<NoDefault> ok = NoDefault(7);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().value, 7);
  Result<NoDefault> err = Status::Internal("boom");
  EXPECT_FALSE(err.ok());
}

TEST(ResultTest, MoveExtractsValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(StatusMacros, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::Internal("inner"); };
  auto outer = [&]() -> Status {
    DOD_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

TEST(StatusMacros, ReturnIfErrorPassesOk) {
  auto succeeds = [] { return Status::Ok(); };
  auto outer = [&]() -> Status {
    DOD_RETURN_IF_ERROR(succeeds());
    return Status::InvalidArgument("reached end");
  };
  EXPECT_EQ(outer().code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacros, AssignOrReturnExtractsValue) {
  auto produce = [] { return Result<int>(21); };
  auto outer = [&]() -> Result<int> {
    DOD_ASSIGN_OR_RETURN(const int v, produce());
    return v * 2;
  };
  const Result<int> r = outer();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(StatusMacros, AssignOrReturnPropagatesError) {
  auto produce = [] { return Result<int>(Status::Unavailable("backend down")); };
  bool reached_end = false;
  auto outer = [&]() -> Result<int> {
    DOD_ASSIGN_OR_RETURN(const int v, produce());
    reached_end = true;
    return v;
  };
  const Result<int> r = outer();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(reached_end);
}

TEST(StatusMacros, AssignOrReturnWorksWithMoveOnlyTypes) {
  auto produce = [] { return Result<std::unique_ptr<int>>(
                          std::make_unique<int>(9)); };
  auto outer = [&]() -> Result<int> {
    DOD_ASSIGN_OR_RETURN(std::unique_ptr<int> p, produce());
    return *p;
  };
  EXPECT_EQ(outer().value(), 9);
}

TEST(ResultTest, ValueOrDieReturnsValue) {
  Result<int> r = 5;
  EXPECT_EQ(r.ValueOrDie(), 5);
  EXPECT_EQ(Result<std::string>(std::string("x")).ValueOrDie(), "x");
}

TEST(CheckMacros, CheckDeathOnFalse) {
  EXPECT_DEATH(DOD_CHECK(1 == 2), "DOD_CHECK failed");
}

TEST(CheckMacros, ValueOrDieDeathOnError) {
  Result<int> r = Status::Internal("no value");
  EXPECT_DEATH(r.ValueOrDie(), "no value");
}

}  // namespace
}  // namespace dod
