// Copyright 2026 The DOD Authors.
//
// Slot scheduling and the simulated-cluster model.

#include "mapreduce/cluster.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace dod {
namespace {

TEST(ScheduleTest, SingleSlotSumsEverything) {
  EXPECT_DOUBLE_EQ(Makespan({1.0, 2.0, 3.0}, 1), 6.0);
}

TEST(ScheduleTest, EnoughSlotsMeansMaxTask) {
  EXPECT_DOUBLE_EQ(Makespan({1.0, 5.0, 2.0}, 3), 5.0);
  EXPECT_DOUBLE_EQ(Makespan({1.0, 5.0, 2.0}, 10), 5.0);
}

TEST(ScheduleTest, EmptyTaskListIsZero) {
  EXPECT_DOUBLE_EQ(Makespan({}, 4), 0.0);
}

TEST(ScheduleTest, GreedyInOrderAssignment) {
  // Tasks 4,3,2,1 on 2 slots, FIFO: slot0={4,1}, slot1={3,2} → makespan 5.
  EXPECT_DOUBLE_EQ(Makespan({4.0, 3.0, 2.0, 1.0}, 2), 5.0);
}

TEST(ScheduleTest, LoadsSumToTotal) {
  const std::vector<double> costs = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0};
  const std::vector<double> loads = ScheduleLoads(costs, 3);
  EXPECT_DOUBLE_EQ(Sum(loads), Sum(costs));
  EXPECT_EQ(loads.size(), 3u);
}

TEST(ScheduleTest, MakespanBounds) {
  // Any schedule's makespan lies in [total/slots, total] and >= max task.
  const std::vector<double> costs = {2.0, 8.0, 1.0, 1.0, 3.0, 5.0};
  const int slots = 3;
  const double makespan = Makespan(costs, slots);
  EXPECT_GE(makespan, Sum(costs) / slots);
  EXPECT_GE(makespan, Max(costs));
  EXPECT_LE(makespan, Sum(costs));
}

TEST(ClusterSpecTest, PaperDefaults) {
  ClusterSpec spec;
  EXPECT_EQ(spec.num_nodes, 40);
  EXPECT_EQ(spec.map_slots(), 320);
  EXPECT_EQ(spec.reduce_slots(), 320);
  // 40 nodes × 1 Gbps = 5 GB/s aggregate shuffle bandwidth.
  EXPECT_DOUBLE_EQ(spec.ShuffleBytesPerSecond(), 40 * 1e9 / 8.0);
}

TEST(ClusterSpecTest, LocalHelper) {
  const ClusterSpec spec = ClusterSpec::Local(4);
  EXPECT_EQ(spec.num_nodes, 1);
  EXPECT_EQ(spec.map_slots(), 4);
  EXPECT_EQ(spec.reduce_slots(), 4);
}

}  // namespace
}  // namespace dod
