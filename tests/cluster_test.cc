// Copyright 2026 The DOD Authors.
//
// Slot scheduling and the simulated-cluster model.

#include "mapreduce/cluster.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace dod {
namespace {

TEST(ScheduleTest, SingleSlotSumsEverything) {
  EXPECT_DOUBLE_EQ(Makespan({1.0, 2.0, 3.0}, 1), 6.0);
}

TEST(ScheduleTest, EnoughSlotsMeansMaxTask) {
  EXPECT_DOUBLE_EQ(Makespan({1.0, 5.0, 2.0}, 3), 5.0);
  EXPECT_DOUBLE_EQ(Makespan({1.0, 5.0, 2.0}, 10), 5.0);
}

TEST(ScheduleTest, EmptyTaskListIsZero) {
  EXPECT_DOUBLE_EQ(Makespan({}, 4), 0.0);
}

TEST(ScheduleTest, GreedyInOrderAssignment) {
  // Tasks 4,3,2,1 on 2 slots, FIFO: slot0={4,1}, slot1={3,2} → makespan 5.
  EXPECT_DOUBLE_EQ(Makespan({4.0, 3.0, 2.0, 1.0}, 2), 5.0);
}

TEST(ScheduleTest, LoadsSumToTotal) {
  const std::vector<double> costs = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0};
  const std::vector<double> loads = ScheduleLoads(costs, 3);
  EXPECT_DOUBLE_EQ(Sum(loads), Sum(costs));
  EXPECT_EQ(loads.size(), 3u);
}

TEST(ScheduleTest, MakespanBounds) {
  // Any schedule's makespan lies in [total/slots, total] and >= max task.
  const std::vector<double> costs = {2.0, 8.0, 1.0, 1.0, 3.0, 5.0};
  const int slots = 3;
  const double makespan = Makespan(costs, slots);
  EXPECT_GE(makespan, Sum(costs) / slots);
  EXPECT_GE(makespan, Max(costs));
  EXPECT_LE(makespan, Sum(costs));
}

TEST(ScheduleTest, SingleSlotLoadsEqualSerialSum) {
  const std::vector<double> loads = ScheduleLoads({1.0, 2.0, 3.0}, 1);
  ASSERT_EQ(loads.size(), 1u);
  EXPECT_DOUBLE_EQ(loads[0], 6.0);
}

TEST(ScheduleTest, MoreSlotsThanTasksLeavesTrailingSlotsIdle) {
  const std::vector<double> loads = ScheduleLoads({2.0, 7.0}, 5);
  ASSERT_EQ(loads.size(), 5u);
  EXPECT_DOUBLE_EQ(loads[0], 2.0);
  EXPECT_DOUBLE_EQ(loads[1], 7.0);
  for (size_t s = 2; s < loads.size(); ++s) EXPECT_DOUBLE_EQ(loads[s], 0.0);
}

TEST(ScheduleTest, EqualCostTiesBreakTowardLowestSlotIndex) {
  // Five unit tasks on three slots: ties on finish time always pick the
  // lowest-numbered free slot, so the assignment is round-robin.
  const std::vector<double> loads = ScheduleLoads({1.0, 1.0, 1.0, 1.0, 1.0}, 3);
  ASSERT_EQ(loads.size(), 3u);
  EXPECT_DOUBLE_EQ(loads[0], 2.0);
  EXPECT_DOUBLE_EQ(loads[1], 2.0);
  EXPECT_DOUBLE_EQ(loads[2], 1.0);
}

TEST(ScheduleTest, AssignmentIsDeterministic) {
  const std::vector<double> costs = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  EXPECT_EQ(ScheduleLoads(costs, 3), ScheduleLoads(costs, 3));
  EXPECT_DOUBLE_EQ(Makespan(costs, 3), Makespan(costs, 3));
}

TEST(ClusterSpecTest, PaperDefaults) {
  ClusterSpec spec;
  EXPECT_EQ(spec.num_nodes, 40);
  EXPECT_EQ(spec.map_slots(), 320);
  EXPECT_EQ(spec.reduce_slots(), 320);
  // 40 nodes × 1 Gbps = 5 GB/s aggregate shuffle bandwidth.
  EXPECT_DOUBLE_EQ(spec.ShuffleBytesPerSecond(), 40 * 1e9 / 8.0);
}

TEST(ClusterSpecTest, LocalHelper) {
  const ClusterSpec spec = ClusterSpec::Local(4);
  EXPECT_EQ(spec.num_nodes, 1);
  EXPECT_EQ(spec.map_slots(), 4);
  EXPECT_EQ(spec.reduce_slots(), 4);
}

TEST(ClusterSpecTest, BlacklistingRemovesSlotsButNeverAllOfThem) {
  ClusterSpec spec;  // 40 nodes × 8 slots
  EXPECT_EQ(spec.usable_map_slots(0), 320);
  EXPECT_EQ(spec.usable_map_slots(5), 280);
  EXPECT_EQ(spec.usable_reduce_slots(39), 8);
  // Even a fully-blacklisted cluster keeps one node's slots so stage
  // scheduling degrades instead of dividing by zero.
  EXPECT_EQ(spec.usable_map_slots(40), 8);
  EXPECT_EQ(spec.usable_reduce_slots(400), 8);
}

}  // namespace
}  // namespace dod
