// Copyright 2026 The DOD Authors.

#include "extensions/knn_outliers.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "data/generators.h"
#include "data/tiger_like.h"

namespace dod {
namespace {

// Exact reference: full O(n²) scoring.
std::vector<KnnOutlier> BruteTopN(const Dataset& data,
                                  const KnnOutlierParams& params) {
  std::vector<KnnOutlier> scores;
  for (PointId i = 0; i < data.size(); ++i) {
    scores.push_back(KnnOutlier{i, KDistance(data, i, params.k)});
  }
  std::sort(scores.begin(), scores.end(),
            [](const KnnOutlier& a, const KnnOutlier& b) {
              if (a.k_distance != b.k_distance) {
                return a.k_distance > b.k_distance;
              }
              return a.id < b.id;
            });
  if (scores.size() > params.top_n) scores.resize(params.top_n);
  return scores;
}

void ExpectSameOutliers(const std::vector<KnnOutlier>& a,
                        const std::vector<KnnOutlier>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << "rank " << i;
    EXPECT_NEAR(a[i].k_distance, b[i].k_distance, 1e-9) << "rank " << i;
  }
}

TEST(KDistanceTest, HandComputed) {
  Dataset data(2);
  data.Append(Point{0.0, 0.0});
  data.Append(Point{3.0, 0.0});
  data.Append(Point{0.0, 4.0});
  data.Append(Point{6.0, 8.0});
  // Point 0: neighbors at distances 3, 4, 10.
  EXPECT_DOUBLE_EQ(KDistance(data, 0, 1), 3.0);
  EXPECT_DOUBLE_EQ(KDistance(data, 0, 2), 4.0);
  EXPECT_DOUBLE_EQ(KDistance(data, 0, 3), 10.0);
}

TEST(KDistanceTest, InfiniteWhenTooFewPoints) {
  Dataset data(2);
  data.Append(Point{0.0, 0.0});
  data.Append(Point{1.0, 0.0});
  EXPECT_TRUE(std::isinf(KDistance(data, 0, 2)));
}

TEST(TopNKnnOutliersTest, MatchesBruteForceOnUniform) {
  const Dataset data = GenerateUniform(2000, DomainForDensity(2000, 0.05), 3);
  const KnnOutlierParams params{5, 20};
  ExpectSameOutliers(TopNKnnOutliers(data, params), BruteTopN(data, params));
}

TEST(TopNKnnOutliersTest, MatchesBruteForceOnClustered) {
  SettlementProfile profile;
  const Dataset data =
      GenerateSettlements(3000, DomainForDensity(3000, 0.05), profile, 5);
  const KnnOutlierParams params{4, 15};
  ExpectSameOutliers(TopNKnnOutliers(data, params), BruteTopN(data, params));
}

TEST(TopNKnnOutliersTest, MatchesBruteForceOnCorridors) {
  const Dataset data = GenerateTigerLike(2500, 7);
  for (int k : {1, 3, 10}) {
    const KnnOutlierParams params{k, 25};
    ExpectSameOutliers(TopNKnnOutliers(data, params),
                       BruteTopN(data, params));
  }
}

TEST(TopNKnnOutliersTest, InjectedExtremesRankFirst) {
  Dataset data = GenerateUniform(1000, Rect::Cube(2, 0.0, 100.0), 9);
  const PointId far_a = data.Append(Point{1000.0, 1000.0});
  const PointId far_b = data.Append(Point{-800.0, 900.0});
  const KnnOutlierParams params{3, 2};
  const std::vector<KnnOutlier> top = TopNKnnOutliers(data, params);
  ASSERT_EQ(top.size(), 2u);
  std::vector<PointId> ids = {top[0].id, top[1].id};
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<PointId>{far_a, far_b}));
}

TEST(TopNKnnOutliersTest, TopNLargerThanDataset) {
  const Dataset data = GenerateUniform(50, Rect::Cube(2, 0.0, 10.0), 11);
  const KnnOutlierParams params{3, 100};
  EXPECT_EQ(TopNKnnOutliers(data, params).size(), 50u);
}

TEST(TopNKnnOutliersTest, KLargerThanDatasetGivesInfiniteScores) {
  const Dataset data = GenerateUniform(5, Rect::Cube(2, 0.0, 10.0), 13);
  const KnnOutlierParams params{10, 3};
  const std::vector<KnnOutlier> top = TopNKnnOutliers(data, params);
  ASSERT_EQ(top.size(), 3u);
  for (const KnnOutlier& o : top) EXPECT_TRUE(std::isinf(o.k_distance));
  // Tie-break by ascending id.
  EXPECT_EQ(top[0].id, 0u);
  EXPECT_EQ(top[1].id, 1u);
}

TEST(TopNKnnOutliersTest, EmptyInputs) {
  Dataset data(2);
  EXPECT_TRUE(TopNKnnOutliers(data, {3, 5}).empty());
  data.Append(Point{1.0, 1.0});
  KnnOutlierParams zero{3, 0};
  EXPECT_TRUE(TopNKnnOutliers(data, zero).empty());
}

TEST(TopNKnnOutliersTest, DegenerateDomain) {
  // All points on a vertical line: zero-area bounds, fallback path.
  Dataset data(2);
  for (int i = 0; i < 30; ++i) {
    data.Append(Point{5.0, static_cast<double>(i)});
  }
  const KnnOutlierParams params{2, 3};
  ExpectSameOutliers(TopNKnnOutliers(data, params), BruteTopN(data, params));
}

TEST(TopNKnnOutliersTest, SemanticsDifferFromDistanceThreshold) {
  // The paper's related-work contrast: kNN outliers are a global top-n —
  // shrinking n changes the reported set, while the distance-threshold
  // definition is per-point. Top-5 must be a prefix of top-10.
  const Dataset data = GenerateTigerLike(1500, 15);
  const std::vector<KnnOutlier> top10 = TopNKnnOutliers(data, {4, 10});
  const std::vector<KnnOutlier> top5 = TopNKnnOutliers(data, {4, 5});
  ASSERT_EQ(top10.size(), 10u);
  ASSERT_EQ(top5.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(top5[i].id, top10[i].id);
}

}  // namespace
}  // namespace dod
