// Copyright 2026 The DOD Authors.

#include "core/report.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "partition/sampler.h"

namespace dod {
namespace {

DodResult RunSmall(const DodConfig& config, const Dataset& data) {
  return DodPipeline(config).RunOrDie(data);
}

TEST(ReportTest, ReportMentionsKeyNumbers) {
  const Dataset data =
      GenerateUniform(1200, DomainForDensity(1200, 0.05), 3);
  DodConfig config = DodConfig::Dmt(DetectionParams{5.0, 4});
  const DodResult result = RunSmall(config, data);
  const std::string report = FormatRunReport(config, result, data.size());
  EXPECT_NE(report.find("DMT"), std::string::npos);
  EXPECT_NE(report.find("1200 points"), std::string::npos);
  EXPECT_NE(report.find("outliers"), std::string::npos);
  EXPECT_NE(report.find("Nested-Loop"), std::string::npos);
  EXPECT_NE(report.find("end-to-end"), std::string::npos);
  EXPECT_EQ(report.find("verify"), std::string::npos)
      << "single-pass run must not report a verify stage";
}

TEST(ReportTest, DomainRunReportsVerifyStage) {
  const Dataset data =
      GenerateUniform(1200, DomainForDensity(1200, 0.02), 5);
  DodConfig config = DodConfig::Baseline(
      DetectionParams{5.0, 4}, StrategyKind::kDomain,
      AlgorithmKind::kNestedLoop);
  const DodResult result = RunSmall(config, data);
  const std::string report = FormatRunReport(config, result, data.size());
  EXPECT_NE(report.find("verify"), std::string::npos);
  EXPECT_NE(report.find("off (verify job)"), std::string::npos);
}

TEST(ReportTest, SummaryIsOneLine) {
  const Dataset data =
      GenerateUniform(800, DomainForDensity(800, 0.05), 7);
  DodConfig config = DodConfig::Dmt(DetectionParams{5.0, 4});
  const DodResult result = RunSmall(config, data);
  const std::string summary = FormatRunSummary(config, result, data.size());
  EXPECT_EQ(summary.find('\n'), std::string::npos);
  EXPECT_NE(summary.find("800 pts"), std::string::npos);
}

TEST(SamplerAdaptationTest, EffectiveRateFloorsSmallData) {
  SamplerOptions options;
  options.rate = 0.005;
  options.min_sample_size = 4000;
  EXPECT_DOUBLE_EQ(EffectiveSamplingRate(options, 1000), 1.0);
  EXPECT_DOUBLE_EQ(EffectiveSamplingRate(options, 40000), 0.1);
  EXPECT_DOUBLE_EQ(EffectiveSamplingRate(options, 10000000), 0.005);
}

TEST(SamplerAdaptationTest, EffectiveBucketsTrackSampleSize) {
  SamplerOptions options;
  options.rate = 1.0;
  options.min_sample_size = 1;
  options.buckets_per_dim = 64;
  // 1000 samples → sqrt(100) = 10 buckets/dim.
  EXPECT_EQ(EffectiveBucketsPerDim(options, 1000), 10);
  // Tiny data clamps at the floor of 8.
  EXPECT_EQ(EffectiveBucketsPerDim(options, 50), 8);
  // Huge data clamps at the configured ceiling.
  EXPECT_EQ(EffectiveBucketsPerDim(options, 10000000), 64);
  options.adapt_resolution = false;
  EXPECT_EQ(EffectiveBucketsPerDim(options, 50), 64);
}

}  // namespace
}  // namespace dod
