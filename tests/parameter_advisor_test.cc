// Copyright 2026 The DOD Authors.

#include "core/parameter_advisor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/pipeline.h"
#include "data/generators.h"

namespace dod {
namespace {

double RealizedOutlierFraction(const Dataset& data,
                               const DetectionParams& params) {
  const std::vector<PointId> outliers = DetectOutliersCentralized(
      data, AlgorithmKind::kCellBased, params);
  return static_cast<double>(outliers.size()) / data.size();
}

TEST(ParameterAdvisorTest, HitsTargetFractionOnUniformData) {
  const Dataset data =
      GenerateUniform(10000, DomainForDensity(10000, 0.1), 3);
  AdvisorOptions options;
  options.min_neighbors = 4;
  options.target_outlier_fraction = 0.02;
  const ParameterSuggestion suggestion = SuggestParameters(data, options);
  ASSERT_GT(suggestion.params.radius, 0.0);
  const double realized =
      RealizedOutlierFraction(data, suggestion.params);
  // Within a factor of ~3 of the 2% target (quantile + sampling noise).
  EXPECT_GT(realized, 0.005);
  EXPECT_LT(realized, 0.06);
}

TEST(ParameterAdvisorTest, HitsTargetOnClusteredData) {
  SettlementProfile profile;
  const Dataset data =
      GenerateSettlements(15000, DomainForDensity(15000, 0.05), profile, 5);
  AdvisorOptions options;
  options.min_neighbors = 6;
  options.target_outlier_fraction = 0.05;
  const ParameterSuggestion suggestion = SuggestParameters(data, options);
  const double realized =
      RealizedOutlierFraction(data, suggestion.params);
  EXPECT_GT(realized, 0.01);
  EXPECT_LT(realized, 0.15);
}

TEST(ParameterAdvisorTest, SmallerTargetMeansLargerRadius) {
  const Dataset data =
      GenerateUniform(8000, DomainForDensity(8000, 0.1), 7);
  AdvisorOptions strict, loose;
  strict.target_outlier_fraction = 0.005;
  loose.target_outlier_fraction = 0.2;
  EXPECT_GT(SuggestParameters(data, strict).params.radius,
            SuggestParameters(data, loose).params.radius);
}

TEST(ParameterAdvisorTest, SamplingRateReported) {
  const Dataset big = GenerateUniform(20000, Rect::Cube(2, 0.0, 100.0), 9);
  AdvisorOptions options;
  options.sample_size = 1000;
  const ParameterSuggestion suggestion = SuggestParameters(big, options);
  EXPECT_NEAR(suggestion.sampling_rate, 0.05, 1e-9);
  const Dataset small = GenerateUniform(500, Rect::Cube(2, 0.0, 100.0), 11);
  EXPECT_DOUBLE_EQ(SuggestParameters(small, options).sampling_rate, 1.0);
}

TEST(ParameterAdvisorTest, DensityCorrectionScalesRadius) {
  // With a 4% sample in 2-d the correction is 0.2; the suggested radius
  // must equal the sampled quantile times that.
  const Dataset data = GenerateUniform(25000, Rect::Cube(2, 0.0, 200.0), 13);
  AdvisorOptions options;
  options.sample_size = 1000;
  const ParameterSuggestion suggestion = SuggestParameters(data, options);
  EXPECT_NEAR(suggestion.params.radius,
              suggestion.sampled_k_distance *
                  std::sqrt(suggestion.sampling_rate),
              1e-12);
}

TEST(ParameterAdvisorTest, FewerPointsThanKFallsBack) {
  Dataset data(2);
  data.Append(Point{0.0, 0.0});
  data.Append(Point{3.0, 4.0});
  AdvisorOptions options;
  options.min_neighbors = 10;
  const ParameterSuggestion suggestion = SuggestParameters(data, options);
  EXPECT_DOUBLE_EQ(suggestion.params.radius, 5.0);  // the domain diameter
}

TEST(ParameterAdvisorTest, Deterministic) {
  const Dataset data = GenerateUniform(5000, Rect::Cube(2, 0.0, 50.0), 15);
  AdvisorOptions options;
  EXPECT_DOUBLE_EQ(SuggestParameters(data, options).params.radius,
                   SuggestParameters(data, options).params.radius);
}

}  // namespace
}  // namespace dod
