// Copyright 2026 The DOD Authors.
//
// Streaming outlier service tests: the shared cell-keying contract, window
// edge cases (entire-cell expiry, verdict flips caused purely by a
// *neighbor's* expiry, duplicate-id rejection, empty feeds), the central
// oracle property — after every round the incremental outlier set is
// byte-identical to a from-scratch batch pipeline run over the window, for
// every thread count × kernel mode × shuffle mode — the summary fast path
// (saturation edges, randomized per-round delta equality against the
// re-detection oracle across expiry patterns and configurations) — and
// checkpoint/resume reproducing the uninterrupted run's deltas exactly,
// including summary rebuilds from summary-less checkpoints.

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/random.h"
#include "data/generators.h"
#include "detection/cell_key.h"
#include "detection/grid.h"
#include "core/pipeline.h"
#include "streaming/streaming_detector.h"

#include "gtest/gtest.h"

namespace dod {
namespace {

namespace fs = std::filesystem;

StreamingConfig BaseConfig(double radius, int k) {
  StreamingConfig config;
  config.params.radius = radius;
  config.params.min_neighbors = k;
  config.params.seed = 7;
  return config;
}

StreamBlock MakeBlock(std::initializer_list<std::pair<PointId, Point>> points,
                      double timestamp = 0.0) {
  StreamBlock block(points.begin()->second.dims());
  for (const auto& [id, p] : points) block.Add(id, p.data());
  block.timestamp = timestamp;
  return block;
}

// ---------------------------------------------------------------------------
// Shared cell keying: the streaming tracker and the batch SparseGrid must
// assign identical cell ids to identical coordinates.

TEST(CellKeyTest, MatchesSparseGridForRandomPointsOriginsAndSides) {
  Rng rng(0xCE11);
  for (int trial = 0; trial < 50; ++trial) {
    const int dims = 1 + static_cast<int>(rng.NextBounded(3));
    Point origin(dims);
    for (int d = 0; d < dims; ++d) origin[d] = rng.NextDouble() * 20.0 - 10.0;
    const double side = 0.25 + rng.NextDouble() * 4.0;
    SparseGrid grid(origin, side);
    for (int i = 0; i < 40; ++i) {
      Point p(dims);
      for (int d = 0; d < dims; ++d) p[d] = rng.NextDouble() * 200.0 - 100.0;
      const CellCoord from_grid = grid.CoordOf(p.data());
      const CellCoord from_helper =
          UniformCellKey(p.data(), dims, origin.data(), side);
      EXPECT_TRUE(from_grid == from_helper);
      EXPECT_EQ(CellCoordHash{}(from_grid), CellCoordHash{}(from_helper));
    }
  }
}

TEST(CellKeyTest, BoundaryPointsBelongToTheUpperCell) {
  // Cell i covers [origin + i*side, origin + (i+1)*side): a point exactly
  // on a cell edge keys into the higher cell.
  const double origin[2] = {0.0, 0.0};
  const double p[2] = {2.0, -2.0};
  const CellCoord coord = UniformCellKey(p, 2, origin, 1.0);
  EXPECT_EQ(coord.c[0], 2);
  EXPECT_EQ(coord.c[1], -2);
}

// ---------------------------------------------------------------------------
// Window edge cases.

TEST(StreamingDetectorTest, EmptyFeedIsNoopDelta) {
  auto created = StreamingDetector::Create(BaseConfig(1.0, 2));
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  StreamingDetector& detector = *created.value();

  StreamBlock empty(2);
  auto delta = detector.Feed(empty);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_TRUE(delta.value().newly_flagged.empty());
  EXPECT_TRUE(delta.value().newly_cleared.empty());
  EXPECT_EQ(delta.value().stats.round, 1u);
  EXPECT_EQ(delta.value().stats.resident_points, 0u);
  EXPECT_EQ(detector.rounds(), 1u);
  EXPECT_TRUE(detector.outliers().empty());
}

TEST(StreamingDetectorTest, DuplicateIdsAreRejectedWindowUnchanged) {
  auto created = StreamingDetector::Create(BaseConfig(1.0, 1));
  ASSERT_TRUE(created.ok());
  StreamingDetector& detector = *created.value();

  // Duplicate within one block.
  auto dup_in_block =
      detector.Feed(MakeBlock({{5, {0.0, 0.0}}, {5, {1.0, 1.0}}}));
  EXPECT_EQ(dup_in_block.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(detector.rounds(), 0u);
  EXPECT_EQ(detector.resident_points(), 0u);

  ASSERT_TRUE(detector.Feed(MakeBlock({{5, {0.0, 0.0}}})).ok());

  // Duplicate against a resident point.
  auto dup_resident = detector.Feed(MakeBlock({{5, {2.0, 2.0}}}));
  EXPECT_EQ(dup_resident.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(detector.rounds(), 1u);
  EXPECT_EQ(detector.resident_points(), 1u);
}

TEST(StreamingDetectorTest, RejectsDimensionMismatchAndNonFinite) {
  auto created = StreamingDetector::Create(BaseConfig(1.0, 1));
  ASSERT_TRUE(created.ok());
  StreamingDetector& detector = *created.value();
  ASSERT_TRUE(detector.Feed(MakeBlock({{0, {0.0, 0.0}}})).ok());

  StreamBlock three_d(3);
  const double q[3] = {0.0, 0.0, 0.0};
  three_d.Add(1, q);
  EXPECT_EQ(detector.Feed(three_d).status().code(),
            StatusCode::kInvalidArgument);

  StreamBlock nan_block(2);
  const double bad[2] = {0.0, std::nan("")};
  nan_block.Add(2, bad);
  EXPECT_EQ(detector.Feed(nan_block).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(detector.resident_points(), 1u);
}

TEST(StreamingDetectorTest, EntireCellExpiryClearsItsOutliers) {
  StreamingConfig config = BaseConfig(1.0, 2);
  config.window_blocks = 2;
  auto created = StreamingDetector::Create(config);
  ASSERT_TRUE(created.ok());
  StreamingDetector& detector = *created.value();

  // An isolated point: no neighbors -> outlier; its cell holds only it.
  auto first = detector.Feed(MakeBlock({{10, {50.0, 50.0}}}));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().newly_flagged, std::vector<PointId>{10});
  EXPECT_EQ(detector.resident_cells(), 1u);

  ASSERT_TRUE(detector.Feed(MakeBlock({{11, {-50.0, -50.0}}})).ok());

  // Third block pushes block 1 out of the window: the whole cell of point
  // 10 expires and the id must come back as newly_cleared.
  auto third = detector.Feed(MakeBlock({{12, {70.0, 70.0}}}));
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third.value().stats.expired_points, 1u);
  EXPECT_EQ(third.value().newly_cleared, std::vector<PointId>{10});
  EXPECT_EQ(detector.outliers(), (std::vector<PointId>{11, 12}));
}

TEST(StreamingDetectorTest, NeighborExpiryFlipsUntouchedCellsVerdict) {
  // r=1, k=2. Block 0 puts A and B in cell (0,0); block 1 puts C in cell
  // (1,0) within distance r of both, so C is an inlier. When block 0
  // expires, C's own cell is never touched — only the supporting-ring
  // dirty rule re-detects it — and C must flip to outlier.
  StreamingConfig config = BaseConfig(1.0, 2);
  config.window_blocks = 2;
  auto created = StreamingDetector::Create(config);
  ASSERT_TRUE(created.ok());
  StreamingDetector& detector = *created.value();

  ASSERT_TRUE(
      detector.Feed(MakeBlock({{0, {0.1, 0.1}}, {1, {0.2, 0.1}}})).ok());
  auto second = detector.Feed(MakeBlock({{2, {1.05, 0.1}}}));
  ASSERT_TRUE(second.ok());
  // A, B, C all have >= 2 neighbors within r=1: no outliers yet.
  EXPECT_TRUE(detector.outliers().empty());

  // D is far away; feeding it expires block 0 (A and B).
  auto third = detector.Feed(MakeBlock({{3, {30.0, 30.0}}}));
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third.value().stats.expired_points, 2u);
  // C lost both neighbors without its own cell being touched.
  ASSERT_EQ(detector.outliers(), (std::vector<PointId>{2, 3}));
  EXPECT_EQ(third.value().newly_flagged, (std::vector<PointId>{2, 3}));
}

TEST(StreamingDetectorTest, SaturatedPointWhoseNeighborsExpireFlipsSameRound) {
  // The saturation edge: slack 0 saturates counting exactly at k, so a
  // point carrying `>= k` (not an exact count) that loses neighbors to
  // expiry must re-count — and flip — in the same round the bound drops
  // below k. r=1, k=2, window of 2 blocks.
  StreamingConfig config = BaseConfig(1.0, 2);
  config.window_blocks = 2;
  config.summaries = true;
  config.summary_slack = 0;
  auto created = StreamingDetector::Create(config);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  StreamingDetector& detector = *created.value();

  // Round 1: A and B adjacent; each has 1 < k neighbors -> both flagged.
  ASSERT_TRUE(
      detector.Feed(MakeBlock({{0, {0.1, 0.1}}, {1, {0.2, 0.1}}})).ok());
  EXPECT_EQ(detector.outliers(), (std::vector<PointId>{0, 1}));
  EXPECT_EQ(detector.saturated_points(), 0u);

  // Round 2: P lands within r of both. P's first count stops at the cap
  // (k + slack = 2): P is saturated, an inlier; A and B flip exact counts
  // 1 -> 2 through the incremental insert pass.
  auto second = detector.Feed(MakeBlock({{2, {0.5, 0.5}}}));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().stats.summary_path);
  EXPECT_EQ(second.value().stats.full_counted_points, 1u);
  EXPECT_EQ(second.value().newly_cleared, (std::vector<PointId>{0, 1}));
  EXPECT_TRUE(detector.outliers().empty());
  EXPECT_EQ(detector.saturated_points(), 1u);

  // Round 3: a far block expires A and B. P's bound drops 2 - 2 = 0 < k:
  // it re-counts to 0 and must flip to outlier in this very round.
  auto third = detector.Feed(MakeBlock({{3, {40.0, 40.0}}}));
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third.value().stats.expired_points, 2u);
  EXPECT_EQ(third.value().stats.recounted_points, 1u);
  EXPECT_EQ(third.value().newly_flagged, (std::vector<PointId>{2, 3}));
  EXPECT_TRUE(third.value().newly_cleared.empty());
  EXPECT_EQ(detector.outliers(), (std::vector<PointId>{2, 3}));
  EXPECT_EQ(detector.saturated_points(), 0u);

  // The re-detection path produces the identical delta sequence.
  config.summaries = false;
  auto oracle = StreamingDetector::Create(config);
  ASSERT_TRUE(oracle.ok());
  ASSERT_TRUE(
      oracle.value()->Feed(MakeBlock({{0, {0.1, 0.1}}, {1, {0.2, 0.1}}})).ok());
  ASSERT_TRUE(oracle.value()->Feed(MakeBlock({{2, {0.5, 0.5}}})).ok());
  auto oracle_third = oracle.value()->Feed(MakeBlock({{3, {40.0, 40.0}}}));
  ASSERT_TRUE(oracle_third.ok());
  EXPECT_FALSE(oracle_third.value().stats.summary_path);
  EXPECT_EQ(oracle_third.value().newly_flagged, third.value().newly_flagged);
  EXPECT_EQ(oracle.value()->outliers(), detector.outliers());
}

// ---------------------------------------------------------------------------
// Oracle property: after every round, outliers() must equal a from-scratch
// batch pipeline run over the window contents, across configurations.

struct StreamSchedule {
  Dataset data = Dataset(2);
  size_t block_size = 0;
  size_t window_blocks = 0;

  size_t num_blocks() const {
    return (data.size() + block_size - 1) / block_size;
  }
  size_t begin(size_t b) const { return b * block_size; }
  size_t end(size_t b) const {
    return std::min(data.size(), (b + 1) * block_size);
  }
  size_t first_resident(size_t round) const {
    return round > window_blocks ? round - window_blocks : 0;
  }
};

std::vector<PointId> BatchOracle(const StreamSchedule& schedule, size_t round,
                                 const DodConfig& config) {
  Dataset window(schedule.data.dims());
  std::vector<PointId> window_ids;
  for (size_t b = schedule.first_resident(round); b < round; ++b) {
    for (size_t i = schedule.begin(b); i < schedule.end(b); ++i) {
      window.Append(schedule.data[static_cast<PointId>(i)]);
      window_ids.push_back(static_cast<PointId>(i));
    }
  }
  if (window.empty()) return {};
  DodPipeline pipeline(config);
  const DodResult result = pipeline.RunOrDie(window);
  std::vector<PointId> outliers;
  outliers.reserve(result.outliers.size());
  for (PointId local : result.outliers) outliers.push_back(window_ids[local]);
  return outliers;
}

TEST(StreamingPropertyTest, MatchesBatchPipelineAcrossConfigs) {
  StreamSchedule schedule;
  // Dense enough that the window holds a real mix of inliers and outliers.
  schedule.data = GenerateUniform(1200, DomainForDensity(1200, 2.0), 99);
  schedule.block_size = 100;
  schedule.window_blocks = 5;

  const double radius = 1.5;
  const int k = 4;

  struct Case {
    int threads;
    KernelMode kernels;
    ShuffleMode shuffle;
    AlgorithmKind algorithm;
  };
  const std::vector<Case> cases = {
      {1, KernelMode::kScalar, ShuffleMode::kColumnar,
       AlgorithmKind::kCellBased},
      {4, KernelMode::kAuto, ShuffleMode::kColumnar,
       AlgorithmKind::kCellBased},
      {8, KernelMode::kAuto, ShuffleMode::kSorted,
       AlgorithmKind::kNestedLoop},
      {4, KernelMode::kScalar, ShuffleMode::kSorted,
       AlgorithmKind::kBruteForce},
  };

  std::vector<std::vector<PointId>> outliers_by_case;
  for (const Case& c : cases) {
    StreamingConfig config = BaseConfig(radius, k);
    config.params.kernels = c.kernels;
    config.algorithm = c.algorithm;
    config.num_threads = c.threads;
    config.window_blocks = schedule.window_blocks;

    DodConfig oracle = DodConfig::Dmt(config.params);
    oracle.num_threads = c.threads;
    oracle.shuffle = c.shuffle;
    oracle.seed = config.params.seed;

    auto created = StreamingDetector::Create(config);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    StreamingDetector& detector = *created.value();

    std::vector<PointId> running;  // delta-reconstructed outlier set
    for (size_t b = 0; b < schedule.num_blocks(); ++b) {
      StreamBlock block(schedule.data.dims());
      for (size_t i = schedule.begin(b); i < schedule.end(b); ++i) {
        block.Add(static_cast<PointId>(i),
                  schedule.data[static_cast<PointId>(i)]);
      }
      auto fed = detector.Feed(block);
      ASSERT_TRUE(fed.ok()) << fed.status().ToString();

      // Applying the delta to the previous set reconstructs outliers().
      std::vector<PointId> next;
      std::set_difference(running.begin(), running.end(),
                          fed.value().newly_cleared.begin(),
                          fed.value().newly_cleared.end(),
                          std::back_inserter(next));
      std::vector<PointId> merged;
      std::merge(next.begin(), next.end(), fed.value().newly_flagged.begin(),
                 fed.value().newly_flagged.end(), std::back_inserter(merged));
      running = std::move(merged);
      ASSERT_EQ(running, detector.outliers());

      ASSERT_EQ(detector.outliers(), BatchOracle(schedule, b + 1, oracle))
          << "round " << (b + 1) << " threads=" << c.threads;
    }
    outliers_by_case.push_back(detector.outliers());
  }
  // Every configuration converged to the same final verdict set.
  for (size_t i = 1; i < outliers_by_case.size(); ++i) {
    EXPECT_EQ(outliers_by_case[0], outliers_by_case[i]);
  }
}

TEST(StreamingPropertyTest, SpilledOracleBatchYieldsIdenticalVerdicts) {
  // The spill policy a streaming service carries is forwarded to the batch
  // pipelines run on its behalf (dod_stream_cli's per-round oracle). A
  // spilling oracle must agree with the streaming detector verdict for
  // verdict, round by round — spilling is invisible in batch output.
  StreamSchedule schedule;
  schedule.data = GenerateUniform(600, DomainForDensity(600, 2.0), 41);
  schedule.block_size = 100;
  schedule.window_blocks = 3;

  StreamingConfig config = BaseConfig(1.5, 4);
  config.window_blocks = schedule.window_blocks;
  config.num_threads = 4;
  const std::string spill_dir = testing::TempDir() + "/dod_stream_spill_" +
                                std::to_string(::getpid());
  std::error_code ec;
  fs::remove_all(spill_dir, ec);
  config.spill.dir = spill_dir;
  config.spill.threshold_bytes = 256;

  DodConfig oracle = DodConfig::Dmt(config.params);
  oracle.num_threads = config.num_threads;
  oracle.seed = config.params.seed;
  oracle.spill_dir = config.spill.dir;
  oracle.spill_threshold_mb = 1;
  DodConfig in_memory_oracle = oracle;
  in_memory_oracle.spill_dir.clear();

  auto created = StreamingDetector::Create(config);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  StreamingDetector& detector = *created.value();
  for (size_t b = 0; b < schedule.num_blocks(); ++b) {
    StreamBlock block(schedule.data.dims());
    for (size_t i = schedule.begin(b); i < schedule.end(b); ++i) {
      block.Add(static_cast<PointId>(i),
                schedule.data[static_cast<PointId>(i)]);
    }
    ASSERT_TRUE(detector.Feed(block).ok());
    EXPECT_EQ(detector.outliers(), BatchOracle(schedule, b + 1, oracle))
        << "round " << (b + 1);
    EXPECT_EQ(BatchOracle(schedule, b + 1, oracle),
              BatchOracle(schedule, b + 1, in_memory_oracle))
        << "round " << (b + 1);
  }
}

// ---------------------------------------------------------------------------
// Summary maintenance vs re-detection: the two paths must emit identical
// per-round deltas on randomized schedules — across seeds, expiry patterns
// (count- and time-based windows) and runtime configurations.

TEST(StreamingPropertyTest, SummariesMatchRedetectionAcrossConfigs) {
  struct Case {
    int threads;
    KernelMode kernels;
    AlgorithmKind algorithm;
    int slack;
  };
  const std::vector<Case> cases = {
      {1, KernelMode::kScalar, AlgorithmKind::kCellBased, 0},
      {4, KernelMode::kAuto, AlgorithmKind::kCellBased, 32},
      {8, KernelMode::kAuto, AlgorithmKind::kNestedLoop, 2},
      {4, KernelMode::kScalar, AlgorithmKind::kBruteForce, 8},
  };

  for (uint64_t seed : {21u, 77u}) {
    StreamSchedule schedule;
    schedule.data = GenerateUniform(900, DomainForDensity(900, 2.0), seed);
    schedule.block_size = 75;
    schedule.window_blocks = 4;

    for (bool time_window : {false, true}) {
      for (size_t c = 0; c < cases.size(); ++c) {
        SCOPED_TRACE("seed=" + std::to_string(seed) +
                     " time_window=" + std::to_string(time_window) +
                     " case=" + std::to_string(c));
        StreamingConfig config = BaseConfig(1.5, 4);
        config.params.kernels = cases[c].kernels;
        config.algorithm = cases[c].algorithm;
        config.num_threads = cases[c].threads;
        config.summary_slack = cases[c].slack;
        if (time_window) {
          // Timestamps are round indices: window_seconds == window_blocks
          // keeps exactly the count-based resident set, expiring via the
          // time rule instead.
          config.window_seconds = static_cast<double>(schedule.window_blocks);
        } else {
          config.window_blocks = schedule.window_blocks;
        }

        config.summaries = true;
        auto with = StreamingDetector::Create(config);
        config.summaries = false;
        auto without = StreamingDetector::Create(config);
        ASSERT_TRUE(with.ok() && without.ok());

        for (size_t b = 0; b < schedule.num_blocks(); ++b) {
          StreamBlock block(schedule.data.dims());
          for (size_t i = schedule.begin(b); i < schedule.end(b); ++i) {
            block.Add(static_cast<PointId>(i),
                      schedule.data[static_cast<PointId>(i)]);
          }
          block.timestamp = static_cast<double>(b);
          auto fast = with.value()->Feed(block);
          auto oracle = without.value()->Feed(block);
          ASSERT_TRUE(fast.ok()) << fast.status().ToString();
          ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
          EXPECT_TRUE(fast.value().stats.summary_path);
          EXPECT_FALSE(oracle.value().stats.summary_path);
          ASSERT_EQ(fast.value().newly_flagged, oracle.value().newly_flagged)
              << "round " << (b + 1);
          ASSERT_EQ(fast.value().newly_cleared, oracle.value().newly_cleared)
              << "round " << (b + 1);
          ASSERT_EQ(with.value()->outliers(), without.value()->outliers());
        }
        if (cases[c].slack == 0) {
          // Zero slack caps counting at k: dense uniform data must leave
          // saturated lower bounds behind (and none on the oracle side).
          EXPECT_GT(with.value()->saturated_points(), 0u);
        }
        EXPECT_EQ(without.value()->saturated_points(), 0u);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Checkpoint / resume.

class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_(fs::temp_directory_path() /
              (name + "-" + std::to_string(::getpid()))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

TEST(StreamingCheckpointTest, ResumeReproducesRemainingDeltas) {
  StreamSchedule schedule;
  schedule.data = GenerateUniform(800, DomainForDensity(800, 2.0), 5);
  schedule.block_size = 80;
  schedule.window_blocks = 4;

  auto feed_block = [&](StreamingDetector& detector,
                        size_t b) -> Result<OutlierDelta> {
    StreamBlock block(schedule.data.dims());
    for (size_t i = schedule.begin(b); i < schedule.end(b); ++i) {
      block.Add(static_cast<PointId>(i),
                schedule.data[static_cast<PointId>(i)]);
    }
    return detector.Feed(block);
  };

  StreamingConfig config = BaseConfig(1.5, 4);
  config.window_blocks = schedule.window_blocks;
  config.num_threads = 4;
  config.job_tag = "resume-test";

  // Uninterrupted run: record every round's delta.
  std::vector<std::pair<std::vector<PointId>, std::vector<PointId>>> full;
  {
    auto created = StreamingDetector::Create(config);
    ASSERT_TRUE(created.ok());
    for (size_t b = 0; b < schedule.num_blocks(); ++b) {
      auto fed = feed_block(*created.value(), b);
      ASSERT_TRUE(fed.ok());
      full.emplace_back(fed.value().newly_flagged,
                        fed.value().newly_cleared);
    }
  }

  // Checkpointed run stops after round `stop`; a resumed service (different
  // thread count — resume does not depend on it) replays the rest.
  const size_t stop = 6;
  TempDir dir("dod-streaming-ck");
  config.checkpoint_dir = dir.str();
  {
    auto created = StreamingDetector::Create(config);
    ASSERT_TRUE(created.ok());
    for (size_t b = 0; b < stop; ++b) {
      auto fed = feed_block(*created.value(), b);
      ASSERT_TRUE(fed.ok());
      ASSERT_EQ(fed.value().newly_flagged, full[b].first);
    }
    // No explicit shutdown: the committed checkpoint is all that survives.
  }
  config.resume = true;
  config.num_threads = 1;
  auto resumed = StreamingDetector::Create(config);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed.value()->rounds(), stop);
  for (size_t b = stop; b < schedule.num_blocks(); ++b) {
    auto fed = feed_block(*resumed.value(), b);
    ASSERT_TRUE(fed.ok());
    EXPECT_EQ(fed.value().newly_flagged, full[b].first) << "round " << b + 1;
    EXPECT_EQ(fed.value().newly_cleared, full[b].second) << "round " << b + 1;
  }
}

TEST(StreamingCheckpointTest, SummariesResumeFromSummaryLessCheckpoint) {
  // The summaries flag is excluded from the job key: a service may resume
  // under either mode. Resuming with summaries *on* from a checkpoint
  // written with them *off* (no persisted counts) must rebuild every
  // summary deterministically and replay the identical deltas.
  StreamSchedule schedule;
  schedule.data = GenerateUniform(600, DomainForDensity(600, 2.0), 13);
  schedule.block_size = 60;
  schedule.window_blocks = 3;

  auto feed_block = [&](StreamingDetector& detector,
                        size_t b) -> Result<OutlierDelta> {
    StreamBlock block(schedule.data.dims());
    for (size_t i = schedule.begin(b); i < schedule.end(b); ++i) {
      block.Add(static_cast<PointId>(i),
                schedule.data[static_cast<PointId>(i)]);
    }
    return detector.Feed(block);
  };

  StreamingConfig config = BaseConfig(1.5, 4);
  config.window_blocks = schedule.window_blocks;
  config.job_tag = "rebuild-test";

  // Reference: uninterrupted run (mode is irrelevant to the deltas).
  std::vector<std::pair<std::vector<PointId>, std::vector<PointId>>> full;
  {
    auto created = StreamingDetector::Create(config);
    ASSERT_TRUE(created.ok());
    for (size_t b = 0; b < schedule.num_blocks(); ++b) {
      auto fed = feed_block(*created.value(), b);
      ASSERT_TRUE(fed.ok());
      full.emplace_back(fed.value().newly_flagged, fed.value().newly_cleared);
    }
  }

  const size_t stop = 5;
  TempDir dir("dod-streaming-rebuild");
  config.checkpoint_dir = dir.str();
  config.summaries = false;  // checkpoint carries no count summaries
  {
    auto created = StreamingDetector::Create(config);
    ASSERT_TRUE(created.ok());
    for (size_t b = 0; b < stop; ++b) {
      ASSERT_TRUE(feed_block(*created.value(), b).ok());
    }
  }
  config.resume = true;
  config.summaries = true;  // resumed service rebuilds summaries
  auto resumed = StreamingDetector::Create(config);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed.value()->rounds(), stop);
  for (size_t b = stop; b < schedule.num_blocks(); ++b) {
    auto fed = feed_block(*resumed.value(), b);
    ASSERT_TRUE(fed.ok()) << fed.status().ToString();
    EXPECT_TRUE(fed.value().stats.summary_path);
    EXPECT_EQ(fed.value().newly_flagged, full[b].first) << "round " << b + 1;
    EXPECT_EQ(fed.value().newly_cleared, full[b].second) << "round " << b + 1;
  }
}

TEST(StreamingCheckpointTest, ResumeRefusesMismatchedConfig) {
  TempDir dir("dod-streaming-key");
  StreamingConfig config = BaseConfig(1.0, 2);
  config.window_blocks = 2;
  config.checkpoint_dir = dir.str();
  {
    auto created = StreamingDetector::Create(config);
    ASSERT_TRUE(created.ok());
    ASSERT_TRUE(created.value()->Feed(MakeBlock({{0, {0.0, 0.0}}})).ok());
  }
  config.resume = true;
  config.params.radius = 2.0;  // different outlier definition
  auto resumed = StreamingDetector::Create(config);
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
}

TEST(StreamingCheckpointTest, CheckpointWithoutDirIsFailedPrecondition) {
  auto created = StreamingDetector::Create(BaseConfig(1.0, 2));
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(created.value()->Checkpoint().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace dod
