// Copyright 2026 The DOD Authors.
//
// Correctness of the centralized detectors. The central property: on any
// input, Nested-Loop and Cell-Based return exactly the points with
// |N_r(p)| < k — the same set as the deterministic brute-force oracle —
// including when support points are present (verdicts only for core points,
// neighbors counted among all points).

#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"
#include "data/tiger_like.h"
#include "detection/brute_force.h"
#include "detection/cell_based.h"
#include "detection/detector.h"
#include "detection/nested_loop.h"

namespace dod {
namespace {

std::vector<uint32_t> Oracle(const Dataset& data, size_t num_core,
                             const DetectionParams& params) {
  BruteForceDetector oracle;
  return oracle.DetectOutliers(data, num_core, params, nullptr);
}

TEST(BruteForceTest, HandDrawnExample) {
  // Three points near the origin, one isolated point.
  Dataset data(2);
  data.Append(Point{0.0, 0.0});
  data.Append(Point{1.0, 0.0});
  data.Append(Point{0.0, 1.0});
  data.Append(Point{100.0, 100.0});
  DetectionParams params{/*radius=*/2.0, /*min_neighbors=*/2};
  EXPECT_EQ(Oracle(data, data.size(), params), (std::vector<uint32_t>{3}));
}

TEST(BruteForceTest, NeighborTestIsClosedAtRadius) {
  Dataset data(2);
  data.Append(Point{0.0, 0.0});
  data.Append(Point{5.0, 0.0});  // exactly r away
  DetectionParams params{5.0, 1};
  EXPECT_TRUE(Oracle(data, data.size(), params).empty());
  params.radius = 4.9999;
  EXPECT_EQ(Oracle(data, data.size(), params).size(), 2u);
}

TEST(BruteForceTest, SelfIsNotANeighbor) {
  Dataset data(2);
  data.Append(Point{0.0, 0.0});
  DetectionParams params{5.0, 1};
  EXPECT_EQ(Oracle(data, data.size(), params), (std::vector<uint32_t>{0}));
}

TEST(BruteForceTest, DuplicatePointsAreNeighbors) {
  Dataset data(2);
  data.Append(Point{1.0, 1.0});
  data.Append(Point{1.0, 1.0});
  DetectionParams params{0.5, 1};
  EXPECT_TRUE(Oracle(data, data.size(), params).empty());
}

TEST(BruteForceTest, OnlyCorePointsGetVerdicts) {
  Dataset data(2);
  data.Append(Point{0.0, 0.0});     // core, isolated except support
  data.Append(Point{50.0, 50.0});   // support (isolated too, but no verdict)
  DetectionParams params{5.0, 1};
  const std::vector<uint32_t> outliers = Oracle(data, /*num_core=*/1, params);
  EXPECT_EQ(outliers, (std::vector<uint32_t>{0}));
}

TEST(BruteForceTest, SupportPointsCountAsNeighbors) {
  Dataset data(2);
  data.Append(Point{0.0, 0.0});   // core
  data.Append(Point{1.0, 0.0});   // support within r
  DetectionParams params{2.0, 1};
  EXPECT_TRUE(Oracle(data, /*num_core=*/1, params).empty());
}

// ---------------------------------------------------------------------------
// Property tests: NL and CB vs the oracle across distributions/parameters.
// ---------------------------------------------------------------------------

struct AgreementCase {
  const char* name;
  double density;
  double radius;
  int min_neighbors;
  size_t n;
};

class DetectorAgreement : public testing::TestWithParam<AgreementCase> {};

TEST_P(DetectorAgreement, NestedLoopMatchesOracleOnUniform) {
  const AgreementCase& c = GetParam();
  const Dataset data =
      GenerateUniform(c.n, DomainForDensity(c.n, c.density), 1234);
  DetectionParams params{c.radius, c.min_neighbors};
  NestedLoopDetector detector;
  EXPECT_EQ(detector.DetectOutliers(data, data.size(), params),
            Oracle(data, data.size(), params));
}

TEST_P(DetectorAgreement, CellBasedMatchesOracleOnUniform) {
  const AgreementCase& c = GetParam();
  const Dataset data =
      GenerateUniform(c.n, DomainForDensity(c.n, c.density), 1234);
  DetectionParams params{c.radius, c.min_neighbors};
  CellBasedDetector detector;
  EXPECT_EQ(detector.DetectOutliers(data, data.size(), params),
            Oracle(data, data.size(), params));
}

TEST_P(DetectorAgreement, BothMatchOracleOnClusteredWithSupport) {
  const AgreementCase& c = GetParam();
  SettlementProfile profile;
  Dataset data = GenerateSettlements(c.n, DomainForDensity(c.n, c.density),
                                     profile, 4321);
  // Declare the last 20% support points.
  const size_t num_core = data.size() * 4 / 5;
  DetectionParams params{c.radius, c.min_neighbors};
  const std::vector<uint32_t> expected = Oracle(data, num_core, params);
  NestedLoopDetector nl;
  CellBasedDetector cb;
  EXPECT_EQ(nl.DetectOutliers(data, num_core, params), expected);
  EXPECT_EQ(cb.DetectOutliers(data, num_core, params), expected);
}

INSTANTIATE_TEST_SUITE_P(
    DensityAndParamSweep, DetectorAgreement,
    testing::Values(
        AgreementCase{"very_sparse", 0.004, 5.0, 4, 800},
        AgreementCase{"sparse", 0.02, 5.0, 4, 1500},
        AgreementCase{"middle", 0.08, 5.0, 4, 1500},
        AgreementCase{"dense", 0.4, 5.0, 4, 2000},
        AgreementCase{"very_dense", 2.0, 5.0, 4, 2000},
        AgreementCase{"tight_radius", 0.08, 1.0, 4, 1500},
        AgreementCase{"wide_radius", 0.08, 20.0, 4, 1500},
        AgreementCase{"k_one", 0.05, 5.0, 1, 1200},
        AgreementCase{"k_large", 0.08, 5.0, 25, 1500}),
    [](const testing::TestParamInfo<AgreementCase>& info) {
      return info.param.name;
    });

TEST(DetectorEdgeCases, EmptyDataset) {
  Dataset data(2);
  DetectionParams params{5.0, 4};
  NestedLoopDetector nl;
  CellBasedDetector cb;
  EXPECT_TRUE(nl.DetectOutliers(data, 0, params).empty());
  EXPECT_TRUE(cb.DetectOutliers(data, 0, params).empty());
}

TEST(DetectorEdgeCases, AllPointsIdentical) {
  Dataset data(2);
  for (int i = 0; i < 10; ++i) data.Append(Point{3.0, 3.0});
  DetectionParams params{1.0, 4};
  NestedLoopDetector nl;
  CellBasedDetector cb;
  EXPECT_TRUE(nl.DetectOutliers(data, data.size(), params).empty());
  EXPECT_TRUE(cb.DetectOutliers(data, data.size(), params).empty());
}

TEST(DetectorEdgeCases, KLargerThanDatasetFlagsEverything) {
  const Dataset data = GenerateUniform(20, Rect::Cube(2, 0.0, 1.0), 5);
  DetectionParams params{100.0, 50};
  NestedLoopDetector nl;
  CellBasedDetector cb;
  EXPECT_EQ(nl.DetectOutliers(data, data.size(), params).size(), 20u);
  EXPECT_EQ(cb.DetectOutliers(data, data.size(), params).size(), 20u);
}

TEST(DetectorEdgeCases, CorridorDataAgreement) {
  const Dataset data = GenerateTigerLike(2000, 777);
  DetectionParams params{5.0, 4};
  const std::vector<uint32_t> expected = Oracle(data, data.size(), params);
  NestedLoopDetector nl;
  CellBasedDetector cb;
  EXPECT_EQ(nl.DetectOutliers(data, data.size(), params), expected);
  EXPECT_EQ(cb.DetectOutliers(data, data.size(), params), expected);
}

TEST(DetectorEdgeCases, ThreeDimensionalAgreement) {
  const Dataset data = GenerateUniform(1200, Rect::Cube(3, 0.0, 40.0), 31);
  DetectionParams params{3.0, 4};
  const std::vector<uint32_t> expected = Oracle(data, data.size(), params);
  NestedLoopDetector nl;
  CellBasedDetector cb;
  EXPECT_EQ(nl.DetectOutliers(data, data.size(), params), expected);
  EXPECT_EQ(cb.DetectOutliers(data, data.size(), params), expected);
}

TEST(DetectorCounters, CellBasedReportsPruning) {
  // Dense data: red/pink pruning should decide everything.
  const Dataset data = GenerateUniform(3000, DomainForDensity(3000, 2.0), 8);
  DetectionParams params{5.0, 4};
  CellBasedDetector cb;
  Counters counters;
  cb.DetectOutliers(data, data.size(), params, &counters);
  EXPECT_GT(counters.Get("cell_based.cells"), 0u);
  EXPECT_GT(counters.Get("cell_based.red_cells") +
                counters.Get("cell_based.pink_cells"),
            0u);
  EXPECT_EQ(counters.Get("cell_based.probed_cells"), 0u);
}

TEST(DetectorCounters, NestedLoopCountsDistanceEvals) {
  const Dataset data = GenerateUniform(500, DomainForDensity(500, 0.1), 9);
  DetectionParams params{5.0, 4};
  NestedLoopDetector nl;
  Counters counters;
  nl.DetectOutliers(data, data.size(), params, &counters);
  EXPECT_GT(counters.Get("nested_loop.distance_evals"), 0u);
}

TEST(DetectorFactory, MakesAllKinds) {
  EXPECT_EQ(MakeDetector(AlgorithmKind::kNestedLoop)->name(), "Nested-Loop");
  EXPECT_EQ(MakeDetector(AlgorithmKind::kCellBased)->name(), "Cell-Based");
  EXPECT_EQ(MakeDetector(AlgorithmKind::kBruteForce)->name(), "BruteForce");
  EXPECT_EQ(MakeDetector(AlgorithmKind::kCellBased)->kind(),
            AlgorithmKind::kCellBased);
}

TEST(DetectorDeterminism, NestedLoopStableAcrossCalls) {
  const Dataset data = GenerateUniform(1000, DomainForDensity(1000, 0.05), 2);
  DetectionParams params{5.0, 4};
  NestedLoopDetector nl;
  EXPECT_EQ(nl.DetectOutliers(data, data.size(), params),
            nl.DetectOutliers(data, data.size(), params));
}

TEST(CellGeometry, SideAndRingsMatchPaperIn2D) {
  // side = r/(2√2), rings = 3 → the 7×7 block of Lemma 4.2.
  EXPECT_NEAR(CellBasedCellSide(5.0, 2), 5.0 / (2.0 * std::sqrt(2.0)), 1e-12);
  EXPECT_EQ(CellBasedNeighborRings(2), 3);
  EXPECT_EQ(CellBasedNeighborRings(1), 3);
  EXPECT_EQ(CellBasedNeighborRings(4), 5);
}

}  // namespace
}  // namespace dod
