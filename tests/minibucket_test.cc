// Copyright 2026 The DOD Authors.

#include "partition/minibucket.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "partition/sampler.h"

namespace dod {
namespace {

TEST(MiniBucketGridTest, CoordOfClampsToGrid) {
  MiniBucketGrid grid(Rect::Cube(2, 0.0, 10.0), 5);
  const double inside[2] = {3.2, 7.9};
  CellCoord c = grid.CoordOf(inside);
  EXPECT_EQ(c.c[0], 1);
  EXPECT_EQ(c.c[1], 3);
  const double top[2] = {10.0, 10.0};  // upper boundary → last bucket
  c = grid.CoordOf(top);
  EXPECT_EQ(c.c[0], 4);
  EXPECT_EQ(c.c[1], 4);
}

TEST(MiniBucketGridTest, AddAccumulatesWeight) {
  MiniBucketGrid grid(Rect::Cube(2, 0.0, 10.0), 5);
  const double p[2] = {1.0, 1.0};
  grid.Add(p);
  grid.Add(p, 2.5);
  EXPECT_EQ(grid.buckets().size(), 1u);
  EXPECT_DOUBLE_EQ(grid.buckets()[0].weight, 3.5);
  EXPECT_DOUBLE_EQ(grid.TotalWeight(), 3.5);
  EXPECT_DOUBLE_EQ(grid.WeightAt(grid.CoordOf(p)), 3.5);
}

TEST(MiniBucketGridTest, WeightAtEmptyBucketIsZero) {
  MiniBucketGrid grid(Rect::Cube(2, 0.0, 10.0), 5);
  CellCoord c{{3, 3}, 2};
  EXPECT_DOUBLE_EQ(grid.WeightAt(c), 0.0);
}

TEST(MiniBucketGridTest, BucketRectsTileTheDomain) {
  MiniBucketGrid grid(Rect::Cube(2, -5.0, 7.0), 4);
  double total_area = 0.0;
  CellCoord c;
  c.dims = 2;
  for (int x = 0; x < 4; ++x) {
    for (int y = 0; y < 4; ++y) {
      c.c[0] = x;
      c.c[1] = y;
      total_area += grid.BucketRect(c).Area();
    }
  }
  EXPECT_NEAR(total_area, grid.domain().Area(), 1e-9);
  // Edge boundaries are exact.
  c.c[0] = 0;
  c.c[1] = 0;
  EXPECT_DOUBLE_EQ(grid.BucketRect(c).lo(0), -5.0);
  c.c[0] = 3;
  EXPECT_DOUBLE_EQ(grid.BucketRect(c).hi(0), 7.0);
}

TEST(MiniBucketGridTest, MergeFromAddsCounts) {
  const Rect domain = Rect::Cube(2, 0.0, 10.0);
  MiniBucketGrid a(domain, 4), b(domain, 4);
  const double p[2] = {1.0, 1.0};
  const double q[2] = {9.0, 9.0};
  a.Add(p);
  b.Add(p);
  b.Add(q);
  a.MergeFrom(b);
  EXPECT_DOUBLE_EQ(a.WeightAt(a.CoordOf(p)), 2.0);
  EXPECT_DOUBLE_EQ(a.WeightAt(a.CoordOf(q)), 1.0);
  EXPECT_DOUBLE_EQ(a.TotalWeight(), 3.0);
}

TEST(SamplerTest, RateControlsSampleSize) {
  const Dataset data = GenerateUniform(20000, Rect::Cube(2, 0.0, 100.0), 3);
  SamplerOptions options;
  options.rate = 0.1;
  options.min_sample_size = 1;  // isolate the rate from the size floor
  options.buckets_per_dim = 8;
  options.adapt_resolution = false;
  const DistributionSketch sketch = BuildSketch(data, data.Bounds(), options);
  EXPECT_NEAR(static_cast<double>(sketch.sample_size), 2000.0, 200.0);
  EXPECT_NEAR(sketch.EstimatedCardinality(), 20000.0, 2000.0);
  EXPECT_DOUBLE_EQ(sketch.grid.TotalWeight(),
                   static_cast<double>(sketch.sample_size));
}

TEST(SamplerTest, SketchPreservesDistributionShape) {
  // Two clusters: left-heavy; the sketch's left half must hold ~80%.
  Dataset data(2);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const bool left = i < 8000;
    data.Append(Point{rng.NextUniform(left ? 0.0 : 50.0, left ? 50.0 : 100.0),
                      rng.NextUniform(0.0, 100.0)});
  }
  SamplerOptions options;
  options.rate = 0.2;
  options.buckets_per_dim = 10;
  const DistributionSketch sketch =
      BuildSketch(data, Rect::Cube(2, 0.0, 100.0), options);
  double left_weight = 0.0;
  for (const MiniBucketGrid::Bucket& b : sketch.grid.buckets()) {
    if (b.coord.c[0] < 5) left_weight += b.weight;
  }
  EXPECT_NEAR(left_weight / sketch.grid.TotalWeight(), 0.8, 0.05);
}

TEST(SamplerTest, BlockSamplingMatchesSerialDistribution) {
  const Dataset data = GenerateUniform(5000, Rect::Cube(2, 0.0, 10.0), 7);
  std::vector<PointId> ids(data.size());
  for (size_t i = 0; i < data.size(); ++i) ids[i] = static_cast<PointId>(i);
  MiniBucketGrid grid(data.Bounds(), 8);
  Rng rng(11);
  const size_t sampled = SampleBlockInto(data, ids, 0.3, rng, &grid);
  EXPECT_NEAR(static_cast<double>(sampled), 1500.0, 150.0);
  EXPECT_DOUBLE_EQ(grid.TotalWeight(), static_cast<double>(sampled));
}

TEST(RegionStatsTest, CountsScaledBucketsInsideRegion) {
  const Rect domain = Rect::Cube(2, 0.0, 10.0);
  DistributionSketch sketch{MiniBucketGrid(domain, 10), 0.5, 0};
  const double left[2] = {2.0, 5.0};
  const double right[2] = {8.0, 5.0};
  sketch.grid.Add(left, 10.0);
  sketch.grid.Add(right, 30.0);
  sketch.sample_size = 40;
  const PartitionStats left_stats =
      RegionStats(sketch, Rect(Point{0.0, 0.0}, Point{5.0, 10.0}));
  EXPECT_EQ(left_stats.cardinality, 20u);  // 10 / 0.5
  EXPECT_DOUBLE_EQ(left_stats.area, 50.0);
  const PartitionStats all_stats = RegionStats(sketch, domain);
  EXPECT_EQ(all_stats.cardinality, 80u);
}

TEST(RegionStatsTest, DensityAccessor) {
  PartitionStats stats{100, 50.0, 2};
  EXPECT_DOUBLE_EQ(stats.density(), 2.0);
  PartitionStats degenerate{100, 0.0, 2};
  EXPECT_DOUBLE_EQ(degenerate.density(), 0.0);
}

}  // namespace
}  // namespace dod
