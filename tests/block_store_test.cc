// Copyright 2026 The DOD Authors.

#include "io/block_store.h"

#include <gtest/gtest.h>

#include <set>

#include "data/generators.h"

namespace dod {
namespace {

TEST(BlockStoreTest, EveryPointInExactlyOneBlock) {
  const Dataset data = GenerateUniform(1000, Rect::Cube(2, 0.0, 10.0), 1);
  BlockStore store(data, 7, 42);
  std::set<PointId> seen;
  size_t total = 0;
  for (size_t b = 0; b < store.num_blocks(); ++b) {
    for (PointId id : store.block(b)) {
      EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
      ++total;
    }
  }
  EXPECT_EQ(total, data.size());
}

TEST(BlockStoreTest, BlocksAreBalancedInCardinality) {
  const Dataset data = GenerateUniform(1003, Rect::Cube(2, 0.0, 10.0), 2);
  BlockStore store(data, 10, 42);
  for (size_t b = 0; b < store.num_blocks(); ++b) {
    EXPECT_GE(store.block(b).size(), 100u);
    EXPECT_LE(store.block(b).size(), 101u);
  }
}

TEST(BlockStoreTest, AssignmentIsRandomNotPositional) {
  // The HDFS contract: points are randomly distributed over blocks, so the
  // first block must not simply hold the first n/b point ids.
  const Dataset data = GenerateUniform(1000, Rect::Cube(2, 0.0, 10.0), 3);
  BlockStore store(data, 4, 42);
  size_t low_ids_in_block0 = 0;
  for (PointId id : store.block(0)) {
    if (id < 250) ++low_ids_in_block0;
  }
  EXPECT_LT(low_ids_in_block0, 200u);
  EXPECT_GT(low_ids_in_block0, 20u);
}

TEST(BlockStoreTest, DeterministicGivenSeed) {
  const Dataset data = GenerateUniform(200, Rect::Cube(2, 0.0, 10.0), 4);
  BlockStore a(data, 5, 77);
  BlockStore b(data, 5, 77);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(a.block(i), b.block(i));
}

TEST(BlockStoreTest, DifferentSeedsShuffleDifferently) {
  const Dataset data = GenerateUniform(200, Rect::Cube(2, 0.0, 10.0), 5);
  BlockStore a(data, 5, 1);
  BlockStore b(data, 5, 2);
  EXPECT_NE(a.block(0), b.block(0));
}

TEST(BlockStoreTest, SingleBlockHoldsEverything) {
  const Dataset data = GenerateUniform(100, Rect::Cube(2, 0.0, 10.0), 6);
  BlockStore store(data, 1, 42);
  EXPECT_EQ(store.block(0).size(), 100u);
}

TEST(BlockStoreTest, MoreBlocksThanPoints) {
  const Dataset data = GenerateUniform(3, Rect::Cube(2, 0.0, 10.0), 7);
  BlockStore store(data, 10, 42);
  size_t total = 0;
  for (size_t b = 0; b < store.num_blocks(); ++b) total += store.block(b).size();
  EXPECT_EQ(total, 3u);
}

TEST(BlockStoreTest, ByteAccounting) {
  const Dataset data = GenerateUniform(10, Rect::Cube(2, 0.0, 10.0), 8);
  BlockStore store(data, 2, 42);
  EXPECT_EQ(store.BytesPerRecord(), 2 * sizeof(double) + 8);
  EXPECT_EQ(store.TotalBytes(), 10 * store.BytesPerRecord());
}

}  // namespace
}  // namespace dod
