// Copyright 2026 The DOD Authors.
//
// Aggregate Features (Def. 5.1), merge semantics (Def. 5.4), the
// rectangular-shape test (Def. 5.3), and the merging criteria (Def. 5.2).

#include "dshc/aggregate_feature.h"

#include <gtest/gtest.h>

namespace dod {
namespace {

Rect Box(double x0, double y0, double x1, double y1) {
  return Rect(Point{x0, y0}, Point{x1, y1});
}

TEST(AggregateFeatureTest, DensityIsCountOverArea) {
  AggregateFeature af{50.0, Box(0, 0, 5, 2)};
  EXPECT_DOUBLE_EQ(af.density(), 5.0);
}

TEST(AggregateFeatureTest, ZeroAreaDensityIsZero) {
  AggregateFeature af{50.0, Rect(Point{1.0, 1.0}, Point{1.0, 2.0})};
  EXPECT_DOUBLE_EQ(af.density(), 0.0);
}

TEST(AggregateFeatureTest, MergeAddsCountsAndUnionsBoxes) {
  AggregateFeature a{10.0, Box(0, 0, 1, 1)};
  AggregateFeature b{20.0, Box(1, 0, 2, 1)};
  const AggregateFeature merged = AggregateFeature::Merge(a, b);
  EXPECT_DOUBLE_EQ(merged.num_points, 30.0);
  EXPECT_EQ(merged.bounds, Box(0, 0, 2, 1));
  EXPECT_DOUBLE_EQ(merged.density(), 15.0);
}

TEST(FormsRectangleTest, HorizontallyTouchingAlignedBoxes) {
  EXPECT_TRUE(FormsRectangle(Box(0, 0, 1, 1), Box(1, 0, 2, 1)));
  EXPECT_TRUE(FormsRectangle(Box(1, 0, 2, 1), Box(0, 0, 1, 1)));
}

TEST(FormsRectangleTest, VerticallyTouchingAlignedBoxes) {
  EXPECT_TRUE(FormsRectangle(Box(0, 0, 3, 1), Box(0, 1, 3, 2)));
}

TEST(FormsRectangleTest, RejectsMisalignedBoxes) {
  // Touching but different heights: union is L-shaped.
  EXPECT_FALSE(FormsRectangle(Box(0, 0, 1, 1), Box(1, 0, 2, 2)));
  // Aligned but separated: union has a gap.
  EXPECT_FALSE(FormsRectangle(Box(0, 0, 1, 1), Box(2, 0, 3, 1)));
  // Diagonal corner touch.
  EXPECT_FALSE(FormsRectangle(Box(0, 0, 1, 1), Box(1, 1, 2, 2)));
}

TEST(FormsRectangleTest, RejectsIdenticalBoxes) {
  EXPECT_FALSE(FormsRectangle(Box(0, 0, 1, 1), Box(0, 0, 1, 1)));
}

TEST(FormsRectangleTest, ToleranceAbsorbsFloatNoise) {
  EXPECT_TRUE(FormsRectangle(Box(0, 0, 1, 1), Box(1.0 + 1e-12, 0, 2, 1),
                             /*eps=*/1e-9));
}

TEST(FormsRectangleTest, ThreeDimensional) {
  const Rect a(Point{0.0, 0.0, 0.0}, Point{1.0, 1.0, 1.0});
  const Rect b(Point{0.0, 0.0, 1.0}, Point{1.0, 1.0, 2.0});
  const Rect c(Point{0.0, 0.0, 1.0}, Point{1.0, 2.0, 2.0});
  EXPECT_TRUE(FormsRectangle(a, b));
  EXPECT_FALSE(FormsRectangle(a, c));
}

TEST(MergingCriteriaTest, AllThreeConditionsRequired) {
  const MergingCriteria criteria{/*t_diff=*/1.0, /*t_max_points=*/100.0};
  AggregateFeature a{10.0, Box(0, 0, 1, 1)};   // density 10
  AggregateFeature b{10.5, Box(1, 0, 2, 1)};   // density 10.5, rectangular
  EXPECT_TRUE(criteria.CanMerge(a, b));

  // (1) density difference too large.
  AggregateFeature dense{50.0, Box(1, 0, 2, 1)};
  EXPECT_FALSE(criteria.CanMerge(a, dense));

  // (2) non-rectangular union.
  AggregateFeature offset{10.0, Box(1, 0.5, 2, 1.5)};
  EXPECT_FALSE(criteria.CanMerge(a, offset));

  // (3) cardinality cap.
  const MergingCriteria tight{1.0, 15.0};
  EXPECT_FALSE(tight.CanMerge(a, b));
}

TEST(MergingCriteriaTest, DensityThresholdIsStrict) {
  const MergingCriteria criteria{/*t_diff=*/0.5, /*t_max_points=*/1e9};
  AggregateFeature a{10.0, Box(0, 0, 1, 1)};
  AggregateFeature b{10.5, Box(1, 0, 2, 1)};  // |Δdensity| == 0.5 exactly
  EXPECT_FALSE(criteria.CanMerge(a, b));
}

}  // namespace
}  // namespace dod
