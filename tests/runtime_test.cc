// Copyright 2026 The DOD Authors.
//
// The parallel runtime: work-stealing ThreadPool, deterministic
// ParallelExecutor fan-out, order-independent Counters/JobStats merging,
// thread-tagged logging, and the engine-level guarantee the whole design
// exists for — MapReduce output that is byte-identical for every thread
// count.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "mapreduce/job.h"
#include "mapreduce/job_stats.h"
#include "runtime/parallel_executor.h"
#include "runtime/thread_pool.h"

namespace dod {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool

// Counts down to zero; lets the submitting thread wait for N pool tasks
// without relying on executor machinery under test elsewhere.
class Latch {
 public:
  explicit Latch(int count) : count_(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (--count_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return count_ == 0; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int count_;
};

TEST(ThreadPoolTest, DefaultThreadCountIsAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
}

TEST(ThreadPoolTest, ExecutesEverySubmittedTaskExactlyOnce) {
  constexpr int kTasks = 500;
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);

  std::vector<std::atomic<int>> runs(kTasks);
  for (auto& r : runs) r.store(0);
  Latch latch(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&, i] {
      runs[i].fetch_add(1);
      latch.CountDown();
    });
  }
  latch.Wait();
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "task " << i;
  }
  // The execution counter trails the task body by one instruction; give the
  // last workers a beat, then pin that it never overshoots.
  while (pool.tasks_executed() < static_cast<uint64_t>(kTasks)) {
    std::this_thread::yield();
  }
  EXPECT_EQ(pool.tasks_executed(), static_cast<uint64_t>(kTasks));
}

TEST(ThreadPoolTest, SingleWorkerPoolStillDrainsEverything) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  Latch latch(100);
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&, i] {
      sum.fetch_add(i);
      latch.CountDown();
    });
  }
  latch.Wait();
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST(ThreadPoolTest, WorkersStealFromSiblings) {
  // Round-robin submission spreads 64 tasks over 8 deques, but one task
  // holds its worker hostage until every other task has finished — which
  // can only happen if the hostage worker's queued tasks are stolen.
  constexpr int kTasks = 64;
  ThreadPool pool(8);
  Latch others(kTasks - 1);
  Latch all(kTasks);
  pool.Submit([&] {
    others.Wait();  // blocks worker 0 until the other 63 tasks are done
    all.CountDown();
  });
  for (int i = 1; i < kTasks; ++i) {
    pool.Submit([&] {
      others.CountDown();
      all.CountDown();
    });
  }
  all.Wait();
  while (pool.tasks_executed() < static_cast<uint64_t>(kTasks)) {
    std::this_thread::yield();
  }
  EXPECT_EQ(pool.tasks_executed(), static_cast<uint64_t>(kTasks));
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  ThreadPool pool(3);
  std::atomic<int> leaves{0};
  Latch latch(8);
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&] {
      for (int j = 0; j < 2; ++j) {
        pool.Submit([&] {
          for (int k = 0; k < 2; ++k) {
            pool.Submit([&] {
              leaves.fetch_add(1);
              latch.CountDown();
            });
          }
        });
      }
    });
  }
  latch.Wait();
  EXPECT_EQ(leaves.load(), 8);
}

// ---------------------------------------------------------------------------
// Worker groups: the memory-locality partitioning of the pool.

TEST(ThreadPoolTest, DetectWorkerGroupsStaysWithinBounds) {
  EXPECT_EQ(ThreadPool::DetectWorkerGroups(1), 1);
  for (int threads : {2, 8, 16, 64}) {
    const int groups = ThreadPool::DetectWorkerGroups(threads);
    EXPECT_GE(groups, 1) << threads << " threads";
    EXPECT_LE(groups, threads) << threads << " threads";
  }
}

TEST(ThreadPoolTest, GroupCountClampsToWorkerCount) {
  ThreadPool wide(2, 8);
  EXPECT_EQ(wide.num_groups(), 2);
  ThreadPool two(4, 2);
  EXPECT_EQ(two.num_groups(), 2);
  ThreadPool detected(4, 0);
  EXPECT_GE(detected.num_groups(), 1);
  EXPECT_LE(detected.num_groups(), 4);
}

TEST(ThreadPoolTest, CurrentWorkerGroupVisibleOnWorkersAndOffPool) {
  EXPECT_EQ(ThreadPool::CurrentWorkerGroup(), -1);  // not a pool thread
  ThreadPool pool(4, 2);
  std::mutex mutex;
  std::vector<int> seen;
  Latch latch(32);
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&] {
      const int group = ThreadPool::CurrentWorkerGroup();
      {
        std::lock_guard<std::mutex> lock(mutex);
        seen.push_back(group);
      }
      latch.CountDown();
    });
  }
  latch.Wait();
  for (int group : seen) {
    EXPECT_GE(group, 0);
    EXPECT_LT(group, 2);
  }
}

TEST(ThreadPoolTest, HintedSubmitRunsEveryTaskOnceEvenWithBadHints) {
  constexpr int kTasks = 200;
  ThreadPool pool(4, 2);
  std::vector<std::atomic<int>> runs(kTasks);
  for (auto& r : runs) r.store(0);
  Latch latch(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    // Cycles through hint values -1 (anywhere), 0, 1 (valid) and 2
    // (out of range, treated as anywhere).
    pool.Submit(
        [&, i] {
          runs[i].fetch_add(1);
          latch.CountDown();
        },
        /*group=*/(i % 4) - 1);
  }
  latch.Wait();
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolTest, SingleGroupPoolClassifiesEveryStealAsLocal) {
  // The hostage pattern from WorkersStealFromSiblings forces steals: the
  // blocked worker's queued tasks can only finish by being stolen. With
  // one group every victim is a same-group sibling.
  constexpr int kTasks = 64;
  ThreadPool pool(8, 1);
  Latch others(kTasks - 1);
  Latch all(kTasks);
  pool.Submit([&] {
    others.Wait();
    all.CountDown();
  });
  for (int i = 1; i < kTasks; ++i) {
    pool.Submit([&] {
      others.CountDown();
      all.CountDown();
    });
  }
  all.Wait();
  EXPECT_GE(pool.local_steals(), 1u);
  EXPECT_EQ(pool.remote_steals(), 0u);
}

TEST(ThreadPoolTest, CrossGroupExecutionIsAccountedAsRemoteSteal) {
  // Two workers, one per group. Every task is hinted to group 0, so it is
  // queued on group 0's worker; any execution observed on group 1 can only
  // have happened via a cross-group steal. Which tasks group 1 wins is
  // scheduling noise, but the counter must cover every such win.
  constexpr int kTasks = 64;
  ThreadPool pool(2, 2);
  std::atomic<int> ran_remote{0};
  Latch latch(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit(
        [&] {
          if (ThreadPool::CurrentWorkerGroup() == 1) ran_remote.fetch_add(1);
          latch.CountDown();
        },
        /*group=*/0);
  }
  latch.Wait();
  EXPECT_GE(pool.remote_steals(),
            static_cast<uint64_t>(ran_remote.load()));
}

// ---------------------------------------------------------------------------
// ParallelExecutor

TEST(ParallelExecutorTest, NonPositiveThreadCountSelectsHardwareDefault) {
  ParallelExecutor all(0);
  EXPECT_EQ(all.num_threads(), ThreadPool::DefaultThreadCount());
  ParallelExecutor also_all(-3);
  EXPECT_EQ(also_all.num_threads(), ThreadPool::DefaultThreadCount());
}

TEST(ParallelExecutorTest, SingleThreadRunsInlineInIndexOrder) {
  ParallelExecutor executor(1);
  ASSERT_TRUE(executor.sequential());
  std::vector<size_t> order;
  const Status status = executor.RunTasks(6, [&](size_t i) {
    order.push_back(i);  // unsynchronized on purpose: must be inline
    return Status::Ok();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4, 5}));
}

TEST(ParallelExecutorTest, SequentialStopsAtFirstErrorLikeTheOldLoop) {
  ParallelExecutor executor(1);
  std::vector<size_t> ran;
  const Status status = executor.RunTasks(6, [&](size_t i) {
    ran.push_back(i);
    return i == 2 ? Status::Internal("boom") : Status::Ok();
  });
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  // Tasks 3..5 never start — the historical sequential contract.
  EXPECT_EQ(ran, (std::vector<size_t>{0, 1, 2}));
}

TEST(ParallelExecutorTest, ParallelRunsEveryIndexExactlyOnce) {
  ParallelExecutor executor(4);
  ASSERT_FALSE(executor.sequential());
  constexpr size_t kTasks = 200;
  std::vector<std::atomic<int>> runs(kTasks);
  for (auto& r : runs) r.store(0);
  const Status status = executor.RunTasks(kTasks, [&](size_t i) {
    runs[i].fetch_add(1);
    return Status::Ok();
  });
  EXPECT_TRUE(status.ok());
  for (size_t i = 0; i < kTasks; ++i) EXPECT_EQ(runs[i].load(), 1);
}

TEST(ParallelExecutorTest, ParallelReturnsLowestFailingIndexError) {
  ParallelExecutor executor(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> ran{0};
    const Status status = executor.RunTasks(16, [&](size_t i) {
      ran.fetch_add(1);
      if (i == 3 || i == 11) {
        return Status::Internal("task " + std::to_string(i));
      }
      return Status::Ok();
    });
    EXPECT_EQ(status.code(), StatusCode::kInternal);
    // Whichever thread finished first, the reported error is the one a
    // sequential run would have hit: the lowest failing index.
    EXPECT_EQ(status.message(), "task 3");
    // And the barrier still ran everything.
    EXPECT_EQ(ran.load(), 16);
  }
}

TEST(ParallelExecutorTest, ZeroTasksIsANoOp) {
  ParallelExecutor executor(4);
  const Status status =
      executor.RunTasks(0, [&](size_t) { return Status::Internal("never"); });
  EXPECT_TRUE(status.ok());
}

TEST(ParallelExecutorTest, ExecutorIsReusableAcrossBatches) {
  ParallelExecutor executor(3);
  for (int batch = 0; batch < 5; ++batch) {
    std::atomic<int> ran{0};
    ASSERT_TRUE(executor
                    .RunTasks(50,
                              [&](size_t) {
                                ran.fetch_add(1);
                                return Status::Ok();
                              })
                    .ok());
    EXPECT_EQ(ran.load(), 50);
  }
}

TEST(ParallelExecutorTest, GroupTopologyIsExposedAndSequentialIsFlat) {
  ParallelExecutor grouped(4, 2);
  EXPECT_EQ(grouped.num_groups(), 2);
  ParallelExecutor sequential(1, 4);
  EXPECT_TRUE(sequential.sequential());
  EXPECT_EQ(sequential.num_groups(), 1);
  EXPECT_EQ(sequential.local_steals(), 0u);
  EXPECT_EQ(sequential.remote_steals(), 0u);
}

TEST(ParallelExecutorTest, PlacementHintsDoNotChangeResultsOrErrors) {
  for (int threads : {1, 4}) {
    ParallelExecutor executor(threads, 2);
    constexpr size_t kTasks = 100;
    std::vector<std::atomic<int>> runs(kTasks);
    for (auto& r : runs) r.store(0);
    const Status ok_status = executor.RunTasks(
        kTasks,
        [&](size_t i) {
          runs[i].fetch_add(1);
          return Status::Ok();
        },
        [](size_t i) { return static_cast<int>(i % 3) - 1; });
    EXPECT_TRUE(ok_status.ok()) << threads << " threads";
    for (size_t i = 0; i < kTasks; ++i) EXPECT_EQ(runs[i].load(), 1);

    // Error selection stays lowest-failing-index under hints.
    const Status failed = executor.RunTasks(
        16,
        [&](size_t i) {
          return i == 5 || i == 12
                     ? Status::Internal("task " + std::to_string(i))
                     : Status::Ok();
        },
        [](size_t) { return 1; });
    EXPECT_EQ(failed.code(), StatusCode::kInternal) << threads << " threads";
    EXPECT_EQ(failed.message(), "task 5") << threads << " threads";
  }
}

// ---------------------------------------------------------------------------
// Thread-tagged logging (satellite of the parallel runtime: log lines from
// concurrent tasks must be attributable and must not interleave mid-line).

TEST(LoggingTest, ScopedLogTagsNestAndRestore) {
  SetThreadLogTag("w3");
  EXPECT_EQ(ThreadLogTag(), "w3");
  {
    ScopedLogTag task("map7.a0");
    EXPECT_EQ(ThreadLogTag(), "w3/map7.a0");
    {
      ScopedLogTag inner("spec");
      EXPECT_EQ(ThreadLogTag(), "w3/map7.a0/spec");
    }
    EXPECT_EQ(ThreadLogTag(), "w3/map7.a0");
  }
  EXPECT_EQ(ThreadLogTag(), "w3");
  SetThreadLogTag("");
  EXPECT_EQ(ThreadLogTag(), "");
}

TEST(LoggingTest, PoolWorkersCarryTheirOwnTags) {
  ThreadPool pool(2);
  std::mutex mutex;
  std::vector<std::string> tags;
  Latch latch(8);
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&] {
      const std::string tag = ThreadLogTag();
      {
        std::lock_guard<std::mutex> lock(mutex);
        tags.push_back(tag);
      }
      latch.CountDown();
    });
  }
  latch.Wait();
  for (const std::string& tag : tags) {
    EXPECT_TRUE(tag == "w0" || tag == "w1") << tag;
  }
}

// ---------------------------------------------------------------------------
// Order-independent merging: the algebraic property the deterministic
// commit relies on. Counters and JobStats deltas merged in any permutation
// must produce identical totals.

Counters MakeCounters(std::initializer_list<std::pair<const char*, uint64_t>>
                          entries) {
  Counters c;
  for (const auto& [name, value] : entries) c.Increment(name, value);
  return c;
}

TEST(MergeOrderTest, CountersMergeIsOrderIndependent) {
  const std::vector<Counters> deltas = {
      MakeCounters({{"a", 1}, {"b", 10}}),
      MakeCounters({{"b", 5}, {"c", 7}}),
      MakeCounters({{"a", 2}}),
      MakeCounters({{"c", 1}, {"d", 100}}),
  };

  std::vector<size_t> perm(deltas.size());
  std::iota(perm.begin(), perm.end(), 0);
  Counters reference;
  for (size_t i : perm) reference.MergeFrom(deltas[i]);

  while (std::next_permutation(perm.begin(), perm.end())) {
    Counters merged;
    for (size_t i : perm) merged.MergeFrom(deltas[i]);
    EXPECT_EQ(merged.values(), reference.values());
  }
}

JobStats MakeDelta(int salt) {
  JobStats s;
  s.map_task_seconds = {0.1 * salt, 0.2 * salt};
  s.reduce_task_seconds = {0.3 * salt};
  s.records_mapped = 100 + salt;
  s.records_shuffled = 90 + salt;
  s.bytes_shuffled = 1000 + salt;
  s.groups_reduced = 10 + salt;
  s.stage_times.map_seconds = 0.5 * salt;
  s.stage_times.shuffle_seconds = 0.25 * salt;
  s.stage_times.reduce_seconds = 0.125 * salt;
  s.task_attempts = 3 + salt;
  s.task_failures = salt;
  s.task_retries = salt;
  s.speculative_attempts = salt % 2;
  s.speculative_wins = salt % 2;
  s.nodes_blacklisted = salt % 3;  // gauge: max survives
  s.shuffle_records_dropped = 2 * salt;
  s.shuffle_records_corrupted = salt;
  s.backoff_seconds = 0.01 * salt;
  s.map_wall_seconds = 0.05 * salt;  // gauge: max survives
  s.reduce_wall_seconds = 0.04 * salt;
  s.threads_used = 1 + salt % 4;
  s.counters.Increment("groups_seen", salt);
  return s;
}

TEST(MergeOrderTest, JobStatsMergeTotalsAreOrderIndependent) {
  std::vector<JobStats> deltas;
  for (int salt = 1; salt <= 4; ++salt) deltas.push_back(MakeDelta(salt));

  std::vector<size_t> perm(deltas.size());
  std::iota(perm.begin(), perm.end(), 0);
  JobStats reference;
  for (size_t i : perm) reference.MergeFrom(deltas[i]);

  while (std::next_permutation(perm.begin(), perm.end())) {
    JobStats merged;
    for (size_t i : perm) merged.MergeFrom(deltas[i]);

    EXPECT_EQ(merged.records_mapped, reference.records_mapped);
    EXPECT_EQ(merged.records_shuffled, reference.records_shuffled);
    EXPECT_EQ(merged.bytes_shuffled, reference.bytes_shuffled);
    EXPECT_EQ(merged.groups_reduced, reference.groups_reduced);
    EXPECT_DOUBLE_EQ(merged.stage_times.map_seconds,
                     reference.stage_times.map_seconds);
    EXPECT_DOUBLE_EQ(merged.stage_times.shuffle_seconds,
                     reference.stage_times.shuffle_seconds);
    EXPECT_DOUBLE_EQ(merged.stage_times.reduce_seconds,
                     reference.stage_times.reduce_seconds);
    EXPECT_EQ(merged.task_attempts, reference.task_attempts);
    EXPECT_EQ(merged.task_failures, reference.task_failures);
    EXPECT_EQ(merged.task_retries, reference.task_retries);
    EXPECT_EQ(merged.speculative_attempts, reference.speculative_attempts);
    EXPECT_EQ(merged.speculative_wins, reference.speculative_wins);
    EXPECT_EQ(merged.nodes_blacklisted, reference.nodes_blacklisted);
    EXPECT_EQ(merged.shuffle_records_dropped,
              reference.shuffle_records_dropped);
    EXPECT_EQ(merged.shuffle_records_corrupted,
              reference.shuffle_records_corrupted);
    EXPECT_DOUBLE_EQ(merged.backoff_seconds, reference.backoff_seconds);
    EXPECT_DOUBLE_EQ(merged.map_wall_seconds, reference.map_wall_seconds);
    EXPECT_DOUBLE_EQ(merged.reduce_wall_seconds,
                     reference.reduce_wall_seconds);
    EXPECT_EQ(merged.threads_used, reference.threads_used);
    EXPECT_EQ(merged.counters.values(), reference.counters.values());

    // The per-slot cost vectors concatenate in merge order, so only their
    // multisets are order-independent — the engine always folds them in
    // task-index order, which pins the final ordering too.
    std::vector<double> a = merged.map_task_seconds;
    std::vector<double> b = reference.map_task_seconds;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

// ---------------------------------------------------------------------------
// The end-to-end guarantee: a MapReduce job commits byte-identical output,
// counters, and accounting for every thread count.

class ModMapper : public Mapper<int, int> {
 public:
  void Map(size_t split_index, Emitter<int, int>& out) override {
    const int base = static_cast<int>(split_index) * 100;
    for (int v = base; v < base + 100; ++v) out.Emit(v % 10, v);
  }
};

struct KeyCount {
  int key;
  int count;
  bool operator==(const KeyCount& other) const {
    return key == other.key && count == other.count;
  }
};

class CountReducer : public Reducer<int, int, KeyCount> {
 public:
  void Reduce(const int& key, std::vector<int>& values,
              std::vector<KeyCount>& out, Counters& counters) override {
    out.push_back(KeyCount{key, static_cast<int>(values.size())});
    counters.Increment("groups_seen");
  }
};

JobOutput<KeyCount> RunWithThreads(int num_threads) {
  ModMapper mapper;
  CountReducer reducer;
  JobSpec spec;
  spec.num_reduce_tasks = 3;
  spec.num_threads = num_threads;
  spec.cluster = ClusterSpec::Local(4);
  return RunMapReduce<int, int, KeyCount>(
             /*num_splits=*/9, mapper, reducer,
             [](const int& key) { return key % 3; }, spec)
      .ValueOrDie();
}

TEST(ParallelDeterminismTest, AnyThreadCountCommitsIdenticalResults) {
  const JobOutput<KeyCount> sequential = RunWithThreads(1);
  ASSERT_EQ(sequential.stats.threads_used, 1);

  for (int threads : {2, 8}) {
    const JobOutput<KeyCount> parallel = RunWithThreads(threads);
    EXPECT_EQ(parallel.stats.threads_used, threads);
    EXPECT_EQ(parallel.output, sequential.output) << threads << " threads";
    EXPECT_EQ(parallel.stats.counters.values(),
              sequential.stats.counters.values());
    EXPECT_EQ(parallel.stats.records_mapped, sequential.stats.records_mapped);
    EXPECT_EQ(parallel.stats.records_shuffled,
              sequential.stats.records_shuffled);
    EXPECT_EQ(parallel.stats.bytes_shuffled, sequential.stats.bytes_shuffled);
    EXPECT_EQ(parallel.stats.groups_reduced, sequential.stats.groups_reduced);
    // Per-slot costs are *measured* attempt durations — their values vary
    // run to run even sequentially, but the attempt schedule (and hence
    // the slot count) is thread-count-invariant.
    EXPECT_EQ(parallel.stats.map_task_seconds.size(),
              sequential.stats.map_task_seconds.size());
    EXPECT_EQ(parallel.stats.reduce_task_seconds.size(),
              sequential.stats.reduce_task_seconds.size());
  }
}

TEST(ParallelDeterminismTest, MoreThreadsThanTasksIsFine) {
  ModMapper mapper;
  CountReducer reducer;
  JobSpec spec;
  spec.num_reduce_tasks = 1;
  spec.num_threads = 16;
  const auto job = RunMapReduce<int, int, KeyCount>(
                       /*num_splits=*/2, mapper, reducer,
                       [](const int&) { return 0; }, spec)
                       .ValueOrDie();
  EXPECT_EQ(job.stats.groups_reduced, 10u);
  EXPECT_EQ(job.stats.records_mapped, 200u);
}

TEST(ParallelDeterminismTest, UserErrorsSurfaceIdenticallyInParallel) {
  class PoisonSplitMapper : public Mapper<int, int> {
   public:
    Status TryMap(size_t split_index, Emitter<int, int>& out) override {
      if (split_index >= 2) {
        return Status::Internal("bad split " + std::to_string(split_index));
      }
      out.Emit(static_cast<int>(split_index), 1);
      return Status::Ok();
    }
  };
  CountReducer reducer;
  for (int threads : {1, 4}) {
    PoisonSplitMapper mapper;
    JobSpec spec;
    spec.num_reduce_tasks = 2;
    spec.num_threads = threads;
    spec.retry.max_task_attempts = 2;
    const auto job = RunMapReduce<int, int, KeyCount>(
        6, mapper, reducer, [](const int&) { return 0; }, spec);
    ASSERT_FALSE(job.ok());
    EXPECT_EQ(job.status().code(), StatusCode::kInternal);
    // Splits 2..5 all poison, but the committed error is always the
    // lowest-index one, matching the sequential run.
    const std::string message(job.status().message());
    EXPECT_NE(message.find("map task 2"), std::string::npos)
        << threads << " threads: " << message;
    EXPECT_NE(message.find("bad split 2"), std::string::npos)
        << threads << " threads: " << message;
  }
}

}  // namespace
}  // namespace dod
