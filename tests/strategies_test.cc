// Copyright 2026 The DOD Authors.
//
// The four baseline partitioning strategies: plan validity, balancing
// goals, and the Sec. VI observation that DDriven balances cardinality but
// not cost while CDriven balances cost.

#include "partition/strategies.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "data/generators.h"
#include "data/geo_like.h"
#include "partition/sampler.h"

namespace dod {
namespace {

DistributionSketch SketchOf(const Dataset& data, int buckets = 32,
                            double rate = 0.5) {
  SamplerOptions options;
  options.rate = rate;
  options.buckets_per_dim = buckets;
  return BuildSketch(data, data.Bounds(), options);
}

PlanningContext Ctx(size_t m = 16) {
  return PlanningContext{DetectionParams{5.0, 4}, m};
}

TEST(EquiWidthCellsTest, TilesAndCounts) {
  const Rect domain = Rect::Cube(2, 0.0, 12.0);
  const std::vector<Rect> cells = EquiWidthCells(domain, 9);
  EXPECT_EQ(cells.size(), 9u);
  const PartitionPlan plan(domain, 1.0, cells);
  EXPECT_TRUE(plan.Validate().ok());
}

TEST(EquiWidthCellsTest, RoundsToNearestIntegerGrid) {
  EXPECT_EQ(EquiWidthCells(Rect::Cube(2, 0.0, 1.0), 10).size(), 9u);   // 3x3
  EXPECT_EQ(EquiWidthCells(Rect::Cube(2, 0.0, 1.0), 64).size(), 64u);  // 8x8
  EXPECT_EQ(EquiWidthCells(Rect::Cube(2, 0.0, 1.0), 1).size(), 1u);
}

TEST(StrategyNames, AreDistinct) {
  EXPECT_EQ(UniSpacePartitioner().name(), "uniSpace");
  EXPECT_EQ(DomainPartitioner().name(), "Domain");
  EXPECT_EQ(DDrivenPartitioner().name(), "DDriven");
  EXPECT_EQ(CDrivenPartitioner(AlgorithmKind::kCellBased).name(), "CDriven");
}

TEST(StrategySupport, OnlyDomainSkipsSupportingArea) {
  EXPECT_TRUE(UniSpacePartitioner().uses_supporting_area());
  EXPECT_FALSE(DomainPartitioner().uses_supporting_area());
  EXPECT_TRUE(DDrivenPartitioner().uses_supporting_area());
  EXPECT_TRUE(
      CDrivenPartitioner(AlgorithmKind::kNestedLoop).uses_supporting_area());
}

TEST(StrategiesTest, AllPlansValidateOnSkewedData) {
  const Dataset data = GenerateHierarchical(MapLevel::kNewEngland, 4000, 7);
  const DistributionSketch sketch = SketchOf(data);
  const PlanningContext ctx = Ctx();
  EXPECT_TRUE(UniSpacePartitioner().BuildPlan(sketch, ctx).Validate().ok());
  EXPECT_TRUE(DomainPartitioner().BuildPlan(sketch, ctx).Validate().ok());
  EXPECT_TRUE(DDrivenPartitioner().BuildPlan(sketch, ctx).Validate().ok());
  EXPECT_TRUE(CDrivenPartitioner(AlgorithmKind::kCellBased)
                  .BuildPlan(sketch, ctx)
                  .Validate()
                  .ok());
}

std::vector<double> CellCardinalities(const PartitionPlan& plan,
                                      const DistributionSketch& sketch) {
  std::vector<double> out;
  for (const GridCell& cell : plan.cells()) {
    out.push_back(
        static_cast<double>(RegionStats(sketch, cell.bounds).cardinality));
  }
  return out;
}

TEST(StrategiesTest, DDrivenBalancesCardinalityBetterThanUniSpace) {
  // Strongly skewed data: equi-width cells are wildly imbalanced in count,
  // DDriven is not.
  SettlementProfile profile;
  profile.city_fraction = 0.95;
  profile.sigma_frac = 0.02;
  const Dataset data = GenerateSettlements(
      30000, DomainForDensity(30000, 0.05), profile, 13);
  const DistributionSketch sketch = SketchOf(data, 64);
  const PlanningContext ctx = Ctx(16);

  const PartitionPlan uni = UniSpacePartitioner().BuildPlan(sketch, ctx);
  const PartitionPlan dd = DDrivenPartitioner().BuildPlan(sketch, ctx);
  const double uni_imbalance =
      ImbalanceFactor(CellCardinalities(uni, sketch));
  const double dd_imbalance = ImbalanceFactor(CellCardinalities(dd, sketch));
  EXPECT_LT(dd_imbalance, uni_imbalance * 0.6);
  EXPECT_LT(dd_imbalance, 2.0);
}

TEST(StrategiesTest, CDrivenBalancesCostBetterThanDDriven) {
  // Mixed-density data: equal-count partitions have very unequal
  // Nested-Loop costs; CDriven equalizes the planner's (mini-bucket
  // refined) cost model.
  const Dataset data = GenerateHierarchical(MapLevel::kNewEngland, 8000, 17);
  const DistributionSketch sketch = SketchOf(data, 64);
  const PlanningContext ctx = Ctx(16);
  const DetectionParams params = ctx.params;

  auto cost_imbalance = [&](const PartitionPlan& plan) {
    const PartitionRouter router(plan);
    std::vector<double> cardinality(plan.num_cells(), 0.0);
    std::vector<double> aux(plan.num_cells(), 0.0);
    const double scale = sketch.Scale();
    for (const MiniBucketGrid::Bucket& bucket : sketch.grid.buckets()) {
      const Rect rect = sketch.grid.BucketRect(bucket.coord);
      const uint32_t cell = router.RouteCore(rect.Center().data());
      const double n = bucket.weight * scale;
      const double density = rect.Area() > 0 ? n / rect.Area() : 0.0;
      cardinality[cell] += n;
      aux[cell] += RefinedBucketAux(AlgorithmKind::kNestedLoop, n, density,
                                    params, 2);
    }
    std::vector<double> costs;
    for (size_t i = 0; i < plan.num_cells(); ++i) {
      costs.push_back(RefinedRegionCost(AlgorithmKind::kNestedLoop,
                                        cardinality[i], aux[i], params));
    }
    return ImbalanceFactor(costs);
  };

  const PartitionPlan dd = DDrivenPartitioner().BuildPlan(sketch, ctx);
  const PartitionPlan cd =
      CDrivenPartitioner(AlgorithmKind::kNestedLoop).BuildPlan(sketch, ctx);
  EXPECT_LT(cost_imbalance(cd), cost_imbalance(dd));
}

TEST(StrategiesTest, PlansRespectTargetPartitionCount) {
  const Dataset data = GenerateUniform(5000, Rect::Cube(2, 0.0, 100.0), 19);
  const DistributionSketch sketch = SketchOf(data);
  for (size_t m : {4, 9, 25}) {
    EXPECT_EQ(UniSpacePartitioner().BuildPlan(sketch, Ctx(m)).num_cells(), m);
    EXPECT_EQ(DDrivenPartitioner().BuildPlan(sketch, Ctx(m)).num_cells(), m);
  }
}

}  // namespace
}  // namespace dod
