// Copyright 2026 The DOD Authors.
//
// Point, distance kernels, Rect, and BoundsAccumulator.

#include <gtest/gtest.h>

#include <cmath>

#include "common/bounds.h"
#include "common/distance.h"
#include "common/point.h"

namespace dod {
namespace {

TEST(PointTest, InitializerListConstruction) {
  Point p{1.0, 2.0, 3.0};
  EXPECT_EQ(p.dims(), 3);
  EXPECT_EQ(p[0], 1.0);
  EXPECT_EQ(p[2], 3.0);
}

TEST(PointTest, ArrayConstruction) {
  const double raw[2] = {4.5, -2.0};
  Point p(raw, 2);
  EXPECT_EQ(p.dims(), 2);
  EXPECT_EQ(p[1], -2.0);
}

TEST(PointTest, Equality) {
  EXPECT_EQ((Point{1.0, 2.0}), (Point{1.0, 2.0}));
  EXPECT_FALSE((Point{1.0, 2.0}) == (Point{1.0, 2.1}));
  EXPECT_FALSE((Point{1.0}) == (Point{1.0, 0.0}));
}

TEST(PointTest, ToStringIsReadable) {
  EXPECT_EQ((Point{1.5, -2.0}).ToString(), "(1.5, -2)");
}

TEST(DistanceTest, EuclideanBasics) {
  const double a[2] = {0.0, 0.0};
  const double b[2] = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(SquaredEuclidean(a, b, 2), 25.0);
  EXPECT_DOUBLE_EQ(Euclidean(a, b, 2), 5.0);
}

TEST(DistanceTest, WithinDistanceIsClosed) {
  const double a[2] = {0.0, 0.0};
  const double b[2] = {3.0, 4.0};
  EXPECT_TRUE(WithinDistance(a, b, 2, 5.0));   // exactly r counts (Def. 2.1)
  EXPECT_FALSE(WithinDistance(a, b, 2, 4.999));
}

TEST(DistanceTest, ManhattanAndChebyshev) {
  const double a[3] = {0.0, 0.0, 0.0};
  const double b[3] = {1.0, -2.0, 3.0};
  EXPECT_DOUBLE_EQ(Manhattan(a, b, 3), 6.0);
  EXPECT_DOUBLE_EQ(Chebyshev(a, b, 3), 3.0);
}

TEST(RectTest, CubeAndArea) {
  const Rect r = Rect::Cube(2, 0.0, 10.0);
  EXPECT_DOUBLE_EQ(r.Area(), 100.0);
  EXPECT_DOUBLE_EQ(r.Extent(0), 10.0);
  EXPECT_EQ(r.Center(), (Point{5.0, 5.0}));
}

TEST(RectTest, EmptyRect) {
  Rect r;
  EXPECT_TRUE(r.empty());
  EXPECT_DOUBLE_EQ(r.Area(), 0.0);
  const double p[1] = {0.0};
  EXPECT_FALSE(r.Contains(p));
}

TEST(RectTest, ContainsClosedVsHalfOpen) {
  const Rect r(Point{0.0, 0.0}, Point{1.0, 1.0});
  const double boundary[2] = {1.0, 0.5};
  EXPECT_TRUE(r.Contains(boundary));
  EXPECT_FALSE(r.ContainsHalfOpen(boundary));
  const double inside[2] = {0.5, 0.5};
  EXPECT_TRUE(r.ContainsHalfOpen(inside));
}

TEST(RectTest, IntersectsAndCovers) {
  const Rect a(Point{0.0, 0.0}, Point{2.0, 2.0});
  const Rect b(Point{1.0, 1.0}, Point{3.0, 3.0});
  const Rect c(Point{2.5, 2.5}, Point{4.0, 4.0});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.Covers(Rect(Point{0.5, 0.5}, Point{1.5, 1.5})));
  EXPECT_FALSE(a.Covers(b));
}

TEST(RectTest, ExpandedIsTheSupportExtension) {
  const Rect cell(Point{10.0, 20.0}, Point{30.0, 40.0});
  const Rect support = cell.Expanded(5.0);
  EXPECT_EQ(support.min(), (Point{5.0, 15.0}));
  EXPECT_EQ(support.max(), (Point{35.0, 45.0}));
  EXPECT_TRUE(support.Covers(cell));
}

TEST(RectTest, UnionWithRectAndPoint) {
  const Rect a(Point{0.0, 0.0}, Point{1.0, 1.0});
  const Rect b(Point{2.0, -1.0}, Point{3.0, 0.5});
  const Rect u = a.UnionWith(b);
  EXPECT_EQ(u.min(), (Point{0.0, -1.0}));
  EXPECT_EQ(u.max(), (Point{3.0, 1.0}));
  const Rect up = a.UnionWith(Point{-2.0, 0.5});
  EXPECT_EQ(up.min(), (Point{-2.0, 0.0}));
}

TEST(RectTest, UnionWithEmpty) {
  Rect empty;
  const Rect a(Point{0.0, 0.0}, Point{1.0, 1.0});
  EXPECT_EQ(empty.UnionWith(a), a);
  EXPECT_EQ(a.UnionWith(empty), a);
}

TEST(RectTest, Enlargement) {
  const Rect a(Point{0.0, 0.0}, Point{2.0, 2.0});
  EXPECT_DOUBLE_EQ(a.Enlargement(Rect(Point{0.5, 0.5}, Point{1.0, 1.0})), 0.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(Rect(Point{0.0, 0.0}, Point{4.0, 2.0})), 4.0);
}

TEST(RectTest, MinDistanceTo) {
  const Rect a(Point{0.0, 0.0}, Point{2.0, 2.0});
  const double inside[2] = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(a.MinDistanceTo(inside), 0.0);
  const double right[2] = {5.0, 1.0};
  EXPECT_DOUBLE_EQ(a.MinDistanceTo(right), 3.0);
  const double diag[2] = {5.0, 6.0};
  EXPECT_DOUBLE_EQ(a.MinDistanceTo(diag), 5.0);
}

TEST(RectTest, AdjacencyIncludesTouchingAndOverlap) {
  const Rect a(Point{0.0, 0.0}, Point{1.0, 1.0});
  EXPECT_TRUE(a.IsAdjacentTo(Rect(Point{1.0, 0.0}, Point{2.0, 1.0})));  // face
  EXPECT_TRUE(a.IsAdjacentTo(Rect(Point{1.0, 1.0}, Point{2.0, 2.0})));  // corner
  EXPECT_TRUE(a.IsAdjacentTo(Rect(Point{0.5, 0.5}, Point{2.0, 2.0})));  // overlap
  EXPECT_FALSE(a.IsAdjacentTo(Rect(Point{1.1, 0.0}, Point{2.0, 1.0})));
}

TEST(BoundsAccumulatorTest, TracksMinMax) {
  BoundsAccumulator acc(2);
  EXPECT_TRUE(acc.empty());
  const double p1[2] = {1.0, 5.0};
  const double p2[2] = {-2.0, 3.0};
  acc.Add(p1);
  acc.Add(p2);
  EXPECT_EQ(acc.count(), 2u);
  const Rect b = acc.bounds();
  EXPECT_EQ(b.min(), (Point{-2.0, 3.0}));
  EXPECT_EQ(b.max(), (Point{1.0, 5.0}));
}

TEST(BoundsAccumulatorTest, SinglePointIsDegenerateRect) {
  BoundsAccumulator acc(2);
  const double p[2] = {3.0, 4.0};
  acc.Add(p);
  EXPECT_DOUBLE_EQ(acc.bounds().Area(), 0.0);
  EXPECT_TRUE(acc.bounds().Contains(p));
}

}  // namespace
}  // namespace dod
