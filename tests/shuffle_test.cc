// Copyright 2026 The DOD Authors.
//
// Columnar zero-copy shuffle: the counting-sort grouping, arena-backed
// partition views, and the shared probe blocks must be byte-identical to
// the classic sorted shuffle — at the grouping layer, through the engine
// (threads × fault schedules), and end-to-end through the pipeline
// (strategies × kernel modes), including the Domain verification job.

#include "mapreduce/shuffle.h"

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/pipeline.h"
#include "data/generators.h"
#include "detection/brute_force.h"
#include "detection/cell_based.h"
#include "detection/nested_loop.h"
#include "detection/partition_view.h"
#include "durability/checkpoint.h"
#include "durability/memory_budget.h"
#include "mapreduce/job.h"
#include "mapreduce/spill.h"
#include "observability/metrics.h"

namespace dod {
namespace {

using internal::GroupBucket;
using internal::GroupPath;
using internal::GroupScratch;

// ---------------------------------------------------------------------------
// Grouping layer: GroupBucket's two paths must be indistinguishable.

// Buckets of (key, emission sequence) pairs: equal value sequences per
// group prove stability, not just equal multisets.
template <typename K>
std::vector<std::pair<K, int>> SequencedBucket(const std::vector<K>& keys) {
  std::vector<std::pair<K, int>> bucket;
  bucket.reserve(keys.size());
  int seq = 0;
  for (const K& key : keys) bucket.emplace_back(key, seq++);
  return bucket;
}

template <typename K>
void ExpectSameGroups(const GroupedView<K, int>& a,
                      const GroupedView<K, int>& b) {
  ASSERT_EQ(a.num_groups(), b.num_groups());
  ASSERT_EQ(a.num_records(), b.num_records());
  for (size_t g = 0; g < a.num_groups(); ++g) {
    EXPECT_EQ(a.key(g), b.key(g)) << "group " << g;
    ASSERT_EQ(a.size(g), b.size(g)) << "group " << g;
    for (size_t i = 0; i < a.size(g); ++i) {
      EXPECT_EQ(a.value(g, i), b.value(g, i)) << "group " << g << " value "
                                              << i;
    }
  }
}

TEST(ShuffleGroupingTest, ColumnarMatchesSortedOnRandomBuckets) {
  Rng rng(2026);
  for (int round = 0; round < 8; ++round) {
    std::vector<uint32_t> keys(500);
    for (uint32_t& key : keys) {
      key = static_cast<uint32_t>(rng.NextBounded(50));
    }
    std::vector<std::pair<uint32_t, int>> sorted_bucket =
        SequencedBucket(keys);
    std::vector<std::pair<uint32_t, int>> columnar_bucket = sorted_bucket;

    GroupScratch<uint32_t, int> sorted_scratch;
    GroupScratch<uint32_t, int> columnar_scratch;
    GroupPath sorted_path;
    GroupPath columnar_path;
    const GroupedView<uint32_t, int> sorted = GroupBucket(
        sorted_bucket, ShuffleMode::kSorted, &sorted_scratch, &sorted_path);
    const GroupedView<uint32_t, int> columnar =
        GroupBucket(columnar_bucket, ShuffleMode::kColumnar,
                    &columnar_scratch, &columnar_path);

    EXPECT_EQ(sorted_path, GroupPath::kSorted);
    EXPECT_EQ(columnar_path, GroupPath::kColumnar);
    ExpectSameGroups(columnar, sorted);
    // The columnar path must not touch the bucket (attempt retries re-read
    // it); record order is the emission order.
    EXPECT_EQ(columnar_bucket, SequencedBucket(keys));
  }
}

TEST(ShuffleGroupingTest, GroupsAscendingAndStableWithinGroup) {
  std::vector<std::pair<uint32_t, int>> bucket =
      SequencedBucket<uint32_t>({7, 3, 7, 0, 3, 7, 0, 9});
  GroupScratch<uint32_t, int> scratch;
  GroupPath path;
  const GroupedView<uint32_t, int> groups =
      GroupBucket(bucket, ShuffleMode::kColumnar, &scratch, &path);

  ASSERT_EQ(groups.num_groups(), 4u);
  EXPECT_EQ(groups.num_records(), 8u);
  const std::vector<uint32_t> expected_keys = {0, 3, 7, 9};
  for (size_t g = 0; g < groups.num_groups(); ++g) {
    EXPECT_EQ(groups.key(g), expected_keys[g]);
    // Values are emission sequence numbers, so stability means every
    // group's values come out strictly increasing.
    for (size_t i = 1; i < groups.size(g); ++i) {
      EXPECT_LT(groups.value(g, i - 1), groups.value(g, i));
    }
  }
  // Columnar grouping exposes each group as a contiguous value span.
  const int* column = groups.column(2);
  ASSERT_NE(column, nullptr);
  EXPECT_EQ(column[0], 0);
  EXPECT_EQ(column[1], 2);
  EXPECT_EQ(column[2], 5);
}

TEST(ShuffleGroupingTest, SortedBackingHasNoColumn) {
  std::vector<std::pair<uint32_t, int>> bucket =
      SequencedBucket<uint32_t>({1, 1, 2});
  GroupScratch<uint32_t, int> scratch;
  GroupPath path;
  const GroupedView<uint32_t, int> groups =
      GroupBucket(bucket, ShuffleMode::kSorted, &scratch, &path);
  EXPECT_EQ(groups.column(0), nullptr);
  EXPECT_EQ(groups.value(0, 1), 1);
}

TEST(ShuffleGroupingTest, NegativeKeysGroupInAscendingOrder) {
  std::vector<std::pair<int, int>> sorted_bucket =
      SequencedBucket<int>({3, -5, 0, -5, 3, -1, 0});
  std::vector<std::pair<int, int>> columnar_bucket = sorted_bucket;
  GroupScratch<int, int> sorted_scratch;
  GroupScratch<int, int> columnar_scratch;
  GroupPath sorted_path;
  GroupPath columnar_path;
  const GroupedView<int, int> sorted = GroupBucket(
      sorted_bucket, ShuffleMode::kSorted, &sorted_scratch, &sorted_path);
  const GroupedView<int, int> columnar =
      GroupBucket(columnar_bucket, ShuffleMode::kColumnar, &columnar_scratch,
                  &columnar_path);

  EXPECT_EQ(columnar_path, GroupPath::kColumnar);
  ASSERT_EQ(columnar.num_groups(), 4u);
  EXPECT_EQ(columnar.key(0), -5);
  EXPECT_EQ(columnar.key(3), 3);
  ExpectSameGroups(columnar, sorted);
}

TEST(ShuffleGroupingTest, SparseKeyRangeFallsBackToSorting) {
  // Two records a million keys apart: a counting histogram would be
  // absurd, so the columnar request lands on the sorted path.
  std::vector<std::pair<uint32_t, int>> bucket =
      SequencedBucket<uint32_t>({1000000, 0, 1000000});
  GroupScratch<uint32_t, int> scratch;
  GroupPath path;
  const GroupedView<uint32_t, int> groups =
      GroupBucket(bucket, ShuffleMode::kColumnar, &scratch, &path);

  EXPECT_EQ(path, GroupPath::kSortedFallback);
  ASSERT_EQ(groups.num_groups(), 2u);
  EXPECT_EQ(groups.key(0), 0u);
  EXPECT_EQ(groups.key(1), 1000000u);
  EXPECT_EQ(groups.size(1), 2u);
  EXPECT_EQ(groups.value(1, 0), 0);
  EXPECT_EQ(groups.value(1, 1), 2);
}

TEST(ShuffleGroupingTest, EmptyAndSingleKeyBuckets) {
  for (ShuffleMode mode : {ShuffleMode::kSorted, ShuffleMode::kColumnar}) {
    std::vector<std::pair<uint32_t, int>> empty;
    GroupScratch<uint32_t, int> scratch;
    GroupPath path;
    const GroupedView<uint32_t, int> none =
        GroupBucket(empty, mode, &scratch, &path);
    EXPECT_EQ(none.num_groups(), 0u);
    EXPECT_EQ(none.num_records(), 0u);

    std::vector<std::pair<uint32_t, int>> single =
        SequencedBucket<uint32_t>({42, 42, 42});
    const GroupedView<uint32_t, int> one =
        GroupBucket(single, mode, &scratch, &path);
    ASSERT_EQ(one.num_groups(), 1u);
    EXPECT_EQ(one.key(0), 42u);
    EXPECT_EQ(one.size(0), 3u);
  }
}

TEST(ShuffleGroupingTest, ModeNamesRoundTrip) {
  EXPECT_STREQ(ShuffleModeName(ShuffleMode::kSorted), "sorted");
  EXPECT_STREQ(ShuffleModeName(ShuffleMode::kColumnar), "columnar");
  ShuffleMode mode;
  EXPECT_TRUE(ParseShuffleMode("sorted", &mode));
  EXPECT_EQ(mode, ShuffleMode::kSorted);
  EXPECT_TRUE(ParseShuffleMode("columnar", &mode));
  EXPECT_EQ(mode, ShuffleMode::kColumnar);
  EXPECT_FALSE(ParseShuffleMode("merge", &mode));
}

// ---------------------------------------------------------------------------
// Engine layer: RunMapReduce output, counters, and shuffle accounting are
// byte-identical across modes, thread counts, and fault schedules. The
// reducer records every group's full value sequence, so any grouping or
// stability difference shows up as an output mismatch.

class SpreadMapper : public Mapper<int, int> {
 public:
  void Map(size_t split_index, Emitter<int, int>& out) override {
    const int base = static_cast<int>(split_index) * 60;
    for (int v = base; v < base + 60; ++v) out.Emit(v % 17, v);
  }
};

struct GroupDigest {
  int key;
  std::vector<int> values;
  bool operator==(const GroupDigest& other) const {
    return key == other.key && values == other.values;
  }
};

class DigestReducer : public Reducer<int, int, GroupDigest> {
 public:
  void Reduce(const int& key, std::vector<int>& values,
              std::vector<GroupDigest>& out, Counters& counters) override {
    out.push_back(GroupDigest{key, values});
    counters.Increment("groups_seen");
    counters.Increment("values_seen", values.size());
  }
};

JobOutput<GroupDigest> RunDigestJob(const JobSpec& spec,
                                    const std::vector<int>* dense = nullptr) {
  SpreadMapper mapper;
  DigestReducer reducer;
  return RunMapReduce<int, int, GroupDigest>(
             /*num_splits=*/7, mapper, reducer,
             [](const int& key) { return key % 4; }, spec,
             /*record_bytes=*/sizeof(int) + sizeof(int),
             /*record_bytes_fn=*/{}, dense)
      .ValueOrDie();
}

// Checkpointing stores outputs as raw bytes, so the crash-resume spill
// test needs a trivially copyable output type — GroupDigest's vector
// disqualifies it.
struct SpillKeySum {
  int key = 0;
  int64_t sum = 0;
  bool operator==(const SpillKeySum& other) const {
    return key == other.key && sum == other.sum;
  }
};

class SpillSumReducer : public Reducer<int, int, SpillKeySum> {
 public:
  void Reduce(const int& key, std::vector<int>& values,
              std::vector<SpillKeySum>& out, Counters& counters) override {
    int64_t sum = 0;
    for (int v : values) sum += v;
    out.push_back(SpillKeySum{key, sum});
    counters.Increment("groups_seen");
  }
};

Result<JobOutput<SpillKeySum>> RunSumJob(const JobSpec& spec) {
  SpreadMapper mapper;
  SpillSumReducer reducer;
  return RunMapReduce<int, int, SpillKeySum>(
      /*num_splits=*/7, mapper, reducer,
      [](const int& key) { return key % 4; }, spec,
      /*record_bytes=*/sizeof(int) + sizeof(int));
}

JobSpec DigestSpec(ShuffleMode mode, int threads, const FaultSpec& faults) {
  JobSpec spec;
  spec.num_reduce_tasks = 4;
  spec.num_threads = threads;
  spec.cluster = ClusterSpec::Local(4);
  spec.shuffle = mode;
  spec.faults = faults;
  if (faults.enabled) spec.retry.max_task_attempts = 4;
  return spec;
}

std::vector<FaultSpec> AllFaultKinds() {
  std::vector<FaultSpec> kinds;
  kinds.push_back(FaultSpec{});  // fault-free
  FaultSpec crash;
  crash.enabled = true;
  crash.seed = 7;
  crash.task_failure_prob = 1.0;
  crash.max_faulty_attempts_per_task = 1;
  kinds.push_back(crash);
  FaultSpec straggle;
  straggle.enabled = true;
  straggle.seed = 7;
  straggle.straggler_prob = 0.5;
  kinds.push_back(straggle);
  FaultSpec drop;
  drop.enabled = true;
  drop.seed = 7;
  drop.shuffle_drop_prob = 0.01;
  drop.max_faulty_attempts_per_task = 1;
  kinds.push_back(drop);
  FaultSpec corrupt;
  corrupt.enabled = true;
  corrupt.seed = 7;
  corrupt.shuffle_corrupt_prob = 0.01;
  corrupt.max_faulty_attempts_per_task = 1;
  kinds.push_back(corrupt);
  return kinds;
}

TEST(ShuffleEngineTest, ModesAgreeAcrossThreadsAndFaults) {
  const JobOutput<GroupDigest> baseline =
      RunDigestJob(DigestSpec(ShuffleMode::kSorted, 1, FaultSpec{}));
  ASSERT_EQ(baseline.output.size(), 17u);

  for (int threads : {1, 4, 8}) {
    for (const FaultSpec& faults : AllFaultKinds()) {
      const JobOutput<GroupDigest> sorted =
          RunDigestJob(DigestSpec(ShuffleMode::kSorted, threads, faults));
      const JobOutput<GroupDigest> columnar =
          RunDigestJob(DigestSpec(ShuffleMode::kColumnar, threads, faults));
      const std::string label =
          "threads=" + std::to_string(threads) +
          " faults=" + std::to_string(faults.enabled);

      EXPECT_EQ(columnar.output, sorted.output) << label;
      EXPECT_EQ(columnar.output, baseline.output) << label;
      EXPECT_EQ(columnar.stats.counters.values(),
                sorted.stats.counters.values())
          << label;
      EXPECT_EQ(columnar.stats.records_shuffled,
                sorted.stats.records_shuffled)
          << label;
      EXPECT_EQ(columnar.stats.bytes_shuffled, sorted.stats.bytes_shuffled)
          << label;
      EXPECT_EQ(columnar.stats.groups_reduced, sorted.stats.groups_reduced)
          << label;
    }
  }
}

TEST(ShuffleEngineTest, DensePartitionTableMatchesPartitionFunction) {
  JobSpec spec = DigestSpec(ShuffleMode::kColumnar, 4, FaultSpec{});
  spec.split_record_hints.assign(7, 60);  // exercise bucket pre-sizing too
  std::vector<int> table(17);
  for (int key = 0; key < 17; ++key) table[key] = key % 4;

  const JobOutput<GroupDigest> via_function = RunDigestJob(spec);
  const JobOutput<GroupDigest> via_table = RunDigestJob(spec, &table);

  EXPECT_EQ(via_table.output, via_function.output);
  EXPECT_EQ(via_table.stats.records_shuffled,
            via_function.stats.records_shuffled);
  EXPECT_EQ(via_table.stats.bytes_shuffled, via_function.stats.bytes_shuffled);
}

// ---------------------------------------------------------------------------
// Partition views and the shared probe arena.

Dataset ViewTestData(size_t n) {
  return GenerateUniform(n, DomainForDensity(n, 0.05), /*seed=*/29);
}

TEST(PartitionViewTest, IdentityViewResolvesDirectly) {
  const Dataset data = ViewTestData(64);
  const PartitionView view(data, /*num_core=*/64);

  EXPECT_TRUE(view.identity());
  EXPECT_EQ(view.size(), data.size());
  EXPECT_EQ(view.dims(), data.dims());
  for (size_t i = 0; i < view.size(); ++i) {
    EXPECT_EQ(view.id(i), static_cast<PointId>(i));
    EXPECT_EQ(view.point(i), data[static_cast<PointId>(i)]);
  }
  const Rect bounds = view.Bounds();
  const Rect expected = data.Bounds();
  for (int d = 0; d < data.dims(); ++d) {
    EXPECT_EQ(bounds.min()[d], expected.min()[d]);
    EXPECT_EQ(bounds.max()[d], expected.max()[d]);
  }
}

TEST(PartitionViewTest, GatheredViewPreservesLocalOrder) {
  const Dataset data = ViewTestData(64);
  const std::vector<PointId> ids = {9, 3, 60, 3, 17};
  const PartitionView view(data, ids.data(), ids.size(), /*num_core=*/2);

  EXPECT_FALSE(view.identity());
  EXPECT_EQ(view.num_core(), 2u);
  const Dataset gathered = view.Gather();
  ASSERT_EQ(gathered.size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(view.id(i), ids[i]);
    for (int d = 0; d < data.dims(); ++d) {
      EXPECT_EQ(gathered[static_cast<PointId>(i)][d], data[ids[i]][d]);
    }
  }
}

TEST(PartitionViewTest, ArenaSegmentsAreAlignedPermutationsOfTheirCells) {
  const Dataset data = ViewTestData(64);
  TaskArena arena(data);

  // Three staged cells: a normal one, an empty one, and one crossing a
  // block boundary; plus an all-support cell (num_core = 0).
  const std::vector<std::vector<PointId>> cells = {
      {0, 1, 2, 3, 4}, {}, {10, 11, 12, 13, 14, 15, 16, 17, 18}, {20, 21}};
  const std::vector<size_t> num_core = {3, 0, 9, 0};
  for (size_t c = 0; c < cells.size(); ++c) {
    arena.BeginCell();
    for (PointId id : cells[c]) arena.AddPoint(id);
    arena.EndCell(num_core[c], /*permutation_seed=*/1000 + c);
  }
  arena.BuildProbes();
  ASSERT_EQ(arena.num_cells(), cells.size());

  for (size_t c = 0; c < cells.size(); ++c) {
    const PartitionView view = arena.View(c);
    ASSERT_EQ(view.size(), cells[c].size()) << "cell " << c;
    EXPECT_EQ(view.num_core(), num_core[c]) << "cell " << c;
    if (view.empty()) continue;
    ASSERT_TRUE(view.has_probes());
    // Segments start on a block boundary so kernels never cross cells.
    EXPECT_EQ(view.probe_begin() % kSoaWidth, 0u) << "cell " << c;

    // The segment's slot ids are a permutation of the cell's local
    // indices, and every slot's coordinates match the id it carries.
    const SoABlock& probes = view.probes();
    std::vector<uint32_t> seen;
    for (size_t slot = view.probe_begin(); slot < view.probe_end(); ++slot) {
      const uint32_t local = probes.IdAt(slot);
      ASSERT_LT(local, view.size()) << "cell " << c;
      seen.push_back(local);
      const double* expected = view.point(local);
      const size_t block = slot / kSoaWidth;
      const size_t lane_slot = slot % kSoaWidth;
      for (int d = 0; d < view.dims(); ++d) {
        EXPECT_EQ(probes.Lane(block, d)[lane_slot], expected[d])
            << "cell " << c << " slot " << slot;
      }
    }
    std::sort(seen.begin(), seen.end());
    for (uint32_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
  }
}

TEST(PartitionViewTest, ArenaClearSupportsAttemptRetries) {
  const Dataset data = ViewTestData(32);
  TaskArena arena(data);

  std::vector<std::vector<uint32_t>> first_orders;
  for (int attempt = 0; attempt < 2; ++attempt) {
    arena.Clear();
    arena.BeginCell();
    for (PointId id = 0; id < 12; ++id) arena.AddPoint(id);
    arena.EndCell(/*num_core=*/12, /*permutation_seed=*/77);
    arena.BuildProbes();

    const PartitionView view = arena.View(0);
    std::vector<uint32_t> order;
    for (size_t s = view.probe_begin(); s < view.probe_end(); ++s) {
      order.push_back(view.probes().IdAt(s));
    }
    first_orders.push_back(std::move(order));
  }
  // Identical seeds rebuild the identical permutation: retries of a
  // reduce-task attempt cannot diverge.
  EXPECT_EQ(first_orders[0], first_orders[1]);
}

TEST(PartitionViewTest, AllSupportCellYieldsNoOutliers) {
  const Dataset data = ViewTestData(32);
  TaskArena arena(data);
  arena.BeginCell();
  for (PointId id = 0; id < 8; ++id) arena.AddPoint(id);
  arena.EndCell(/*num_core=*/0, /*permutation_seed=*/5);
  arena.BuildProbes();

  DetectionParams params{/*radius=*/5.0, /*min_neighbors=*/4};
  const BruteForceDetector detector;
  EXPECT_TRUE(detector.DetectOutliers(arena.View(0), params, nullptr).empty());
}

// Every detector must return the same verdict through the arena view as
// through its legacy Dataset entry point, in both kernel modes.
class DetectorViewEquivalence
    : public testing::TestWithParam<std::tuple<AlgorithmKind, KernelMode>> {};

TEST_P(DetectorViewEquivalence, ViewPathMatchesDatasetPath) {
  const auto [kind, kernels] = GetParam();
  const Dataset data = ViewTestData(400);

  // One cell: an arbitrary scatter of core points plus support points.
  TaskArena arena(data);
  arena.BeginCell();
  Rng rng(99);
  std::vector<PointId> ids;
  for (PointId id = 0; id < 400; id += 2) ids.push_back(id);  // core
  Shuffle(ids, rng);
  const size_t num_core = ids.size();
  for (PointId id = 1; id < 400; id += 4) ids.push_back(id);  // support
  for (PointId id : ids) arena.AddPoint(id);
  arena.EndCell(num_core, /*permutation_seed=*/123);
  arena.BuildProbes();
  const PartitionView view = arena.View(0);

  DetectionParams params{/*radius=*/5.0, /*min_neighbors=*/4};
  params.kernels = kernels;
  params.seed = 4242;

  const std::unique_ptr<Detector> detector = MakeDetector(kind);
  Counters dataset_counters;
  Counters view_counters;
  std::vector<uint32_t> via_dataset = detector->DetectOutliers(
      view.Gather(), num_core, params, &dataset_counters);
  std::vector<uint32_t> via_view =
      detector->DetectOutliers(view, params, &view_counters);

  std::sort(via_dataset.begin(), via_dataset.end());
  std::sort(via_view.begin(), via_view.end());
  EXPECT_EQ(via_view, via_dataset) << AlgorithmKindName(kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllDetectors, DetectorViewEquivalence,
    testing::Combine(testing::Values(AlgorithmKind::kNestedLoop,
                                     AlgorithmKind::kCellBased,
                                     AlgorithmKind::kBruteForce),
                     testing::Values(KernelMode::kScalar, KernelMode::kAuto)),
    [](const testing::TestParamInfo<std::tuple<AlgorithmKind, KernelMode>>&
           info) {
      std::string name =
          std::string(AlgorithmKindName(std::get<0>(info.param))) + "_" +
          KernelModeName(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Pipeline layer: --shuffle is invisible end to end.

const Dataset& PipelineData() {
  static const Dataset data =
      GenerateUniform(2000, DomainForDensity(2000, 0.05), /*seed=*/7);
  return data;
}

std::vector<PointId> PipelineGroundTruth() {
  DetectionParams params{/*radius=*/5.0, /*min_neighbors=*/4};
  BruteForceDetector oracle;
  const Dataset& data = PipelineData();
  std::vector<uint32_t> local =
      oracle.DetectOutliers(data, data.size(), params, nullptr);
  return std::vector<PointId>(local.begin(), local.end());
}

DodConfig PipelineConfig(StrategyKind strategy, ShuffleMode shuffle,
                         int threads, KernelMode kernels,
                         const FaultSpec& faults) {
  DetectionParams params{/*radius=*/5.0, /*min_neighbors=*/4};
  params.kernels = kernels;
  DodConfig config =
      strategy == StrategyKind::kDmt
          ? DodConfig::Dmt(params)
          : DodConfig::Baseline(params, strategy, AlgorithmKind::kCellBased);
  config.target_partitions = 16;
  config.num_reduce_tasks = 5;
  config.num_blocks = 7;
  config.num_threads = threads;
  config.sampler.rate = 0.2;
  config.sampler.buckets_per_dim = 16;
  config.shuffle = shuffle;
  config.faults = faults;
  if (faults.enabled) config.retry.max_task_attempts = 4;
  return config;
}

void ExpectSameRun(const DodResult& columnar, const DodResult& sorted,
                   const std::string& label) {
  EXPECT_EQ(columnar.outliers, sorted.outliers) << label;
  EXPECT_EQ(columnar.detect_stats.counters.values(),
            sorted.detect_stats.counters.values())
      << label;
  EXPECT_EQ(columnar.detect_stats.records_shuffled,
            sorted.detect_stats.records_shuffled)
      << label;
  EXPECT_EQ(columnar.detect_stats.bytes_shuffled,
            sorted.detect_stats.bytes_shuffled)
      << label;
  EXPECT_EQ(columnar.detect_stats.groups_reduced,
            sorted.detect_stats.groups_reduced)
      << label;
  EXPECT_EQ(columnar.verify_stats.counters.values(),
            sorted.verify_stats.counters.values())
      << label;
  EXPECT_EQ(columnar.verify_stats.records_shuffled,
            sorted.verify_stats.records_shuffled)
      << label;
  EXPECT_EQ(columnar.verify_stats.bytes_shuffled,
            sorted.verify_stats.bytes_shuffled)
      << label;
}

TEST(PipelineShuffleEquivalence, DmtAcrossThreadsAndKernels) {
  const std::vector<PointId> truth = PipelineGroundTruth();
  for (int threads : {1, 4, 8}) {
    for (KernelMode kernels : {KernelMode::kScalar, KernelMode::kAuto}) {
      const std::string label = "threads=" + std::to_string(threads) +
                                " kernels=" + KernelModeName(kernels);
      const DodResult sorted =
          DodPipeline(PipelineConfig(StrategyKind::kDmt, ShuffleMode::kSorted,
                                     threads, kernels, FaultSpec{}))
              .RunOrDie(PipelineData());
      const DodResult columnar =
          DodPipeline(PipelineConfig(StrategyKind::kDmt,
                                     ShuffleMode::kColumnar, threads, kernels,
                                     FaultSpec{}))
              .RunOrDie(PipelineData());
      ExpectSameRun(columnar, sorted, label);
      EXPECT_EQ(columnar.outliers, truth) << label;
    }
  }
}

TEST(PipelineShuffleEquivalence, DomainVerificationJob) {
  // The Domain baseline runs the second (verification) MapReduce job, whose
  // reducer counts candidate neighbors against arena-built border probes.
  const std::vector<PointId> truth = PipelineGroundTruth();
  for (int threads : {1, 4}) {
    const std::string label = "domain threads=" + std::to_string(threads);
    const DodResult sorted =
        DodPipeline(PipelineConfig(StrategyKind::kDomain,
                                   ShuffleMode::kSorted, threads,
                                   KernelMode::kAuto, FaultSpec{}))
            .RunOrDie(PipelineData());
    const DodResult columnar =
        DodPipeline(PipelineConfig(StrategyKind::kDomain,
                                   ShuffleMode::kColumnar, threads,
                                   KernelMode::kAuto, FaultSpec{}))
            .RunOrDie(PipelineData());
    ExpectSameRun(columnar, sorted, label);
    EXPECT_EQ(columnar.outliers, truth) << label;
    EXPECT_GT(columnar.verify_stats.records_shuffled, 0u) << label;
  }
}

TEST(PipelineShuffleEquivalence, FaultSchedulesCannotTellModesApart) {
  const std::vector<PointId> truth = PipelineGroundTruth();
  for (const FaultSpec& faults : AllFaultKinds()) {
    if (!faults.enabled) continue;
    const std::string label =
        std::string("fault-kind drop=") +
        std::to_string(faults.shuffle_drop_prob) +
        " corrupt=" + std::to_string(faults.shuffle_corrupt_prob) +
        " crash=" + std::to_string(faults.task_failure_prob) +
        " straggle=" + std::to_string(faults.straggler_prob);
    const DodResult sorted =
        DodPipeline(PipelineConfig(StrategyKind::kDmt, ShuffleMode::kSorted,
                                   4, KernelMode::kAuto, faults))
            .RunOrDie(PipelineData());
    const DodResult columnar =
        DodPipeline(PipelineConfig(StrategyKind::kDmt, ShuffleMode::kColumnar,
                                   4, KernelMode::kAuto, faults))
            .RunOrDie(PipelineData());
    ExpectSameRun(columnar, sorted, label);
    EXPECT_EQ(columnar.outliers, truth) << label;
  }
}

uint64_t MetricCount(const std::vector<MetricSnapshot>& snapshots,
                     const std::string& name) {
  for (const MetricSnapshot& m : snapshots) {
    if (m.name == name) return m.count;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Spill-to-disk shuffle runs: byte-identical to the in-memory paths across
// modes × threads × faults, garbage-collected run files, reason-labeled
// fallbacks, and exact crash-resume with spilled checkpoints.

std::string FreshSpillDir(const char* tag) {
  const std::string dir = testing::TempDir() + "/dod_spill_" + tag + "_" +
                          std::to_string(::getpid());
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

size_t SpillFilesIn(const std::string& dir) {
  // Recursive: the engine namespaces run files per job under the
  // configured spill dir.
  std::error_code ec;
  size_t count = 0;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".runs") ++count;
  }
  return count;
}

TEST(ShuffleSpillTest, TaskSpillerRoundTripsSortedRunsWithChecksums) {
  const std::string dir = FreshSpillDir("roundtrip");
  std::filesystem::create_directories(dir);
  const std::string file = internal::SpillFilePath(dir, "map", 0);
  internal::SpillGc gc;
  internal::TaskSpiller<uint32_t, int> spiller(file, &gc);

  // Two flushes (time slices), each stably sorted on write. Partition 1
  // stays empty throughout and must produce no run.
  internal::TaskSpiller<uint32_t, int>::Buckets buckets(3);
  buckets[0] = SequencedBucket<uint32_t>({5, 1, 5, 3});
  buckets[2] = SequencedBucket<uint32_t>({9, 9});
  spiller.Spill(buckets);
  ASSERT_TRUE(spiller.status().ok());
  EXPECT_TRUE(buckets[0].empty());  // flushed buckets are cleared
  buckets[0] = SequencedBucket<uint32_t>({2, 1});
  ASSERT_TRUE(spiller.Finish(buckets).ok());

  std::vector<internal::SpillRunInfo> runs = spiller.TakeRuns();
  ASSERT_EQ(runs.size(), 3u);  // {p0, p2} then {p0}
  EXPECT_EQ(runs[0].partition, 0u);
  EXPECT_EQ(runs[0].records, 4u);
  EXPECT_EQ(runs[0].min_key, 1u);
  EXPECT_EQ(runs[0].max_key, 5u);
  EXPECT_EQ(runs[1].partition, 2u);
  EXPECT_EQ(runs[2].partition, 0u);
  EXPECT_EQ(runs[2].records, 2u);

  // Flush 1 of partition 0, sorted stably: (1,1) (3,3) (5,0) (5,2).
  internal::SpillRunCursor<uint32_t, int> cursor;
  ASSERT_TRUE(cursor.Open(runs[0]).ok());
  const std::vector<std::pair<uint32_t, int>> expected = {
      {1, 1}, {3, 3}, {5, 0}, {5, 2}};
  for (const auto& record : expected) {
    ASSERT_FALSE(cursor.AtEnd());
    EXPECT_EQ(cursor.Head(), record);
    ASSERT_TRUE(cursor.Advance().ok());
  }
  EXPECT_TRUE(cursor.AtEnd());

  // Flip one payload byte: the cursor must fail the checksum, not hand the
  // reducer silently corrupted groups.
  {
    std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(runs[0].offset));
    char byte;
    f.seekg(static_cast<std::streamoff>(runs[0].offset));
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5A);
    f.seekp(static_cast<std::streamoff>(runs[0].offset));
    f.write(&byte, 1);
  }
  internal::SpillRunCursor<uint32_t, int> corrupted;
  Status status = corrupted.Open(runs[0]);
  while (status.ok() && !corrupted.AtEnd()) status = corrupted.Advance();
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("checksum"), std::string::npos);
}

TEST(ShuffleSpillTest, GroupSegmentsMatchesGroupBucketOfConcatenation) {
  const std::string dir = FreshSpillDir("segments");
  std::filesystem::create_directories(dir);
  Rng rng(4097);
  for (ShuffleMode mode : {ShuffleMode::kSorted, ShuffleMode::kColumnar}) {
    // Three map tasks' worth of records; task 1 spills in two flushes, the
    // others stay in memory. The reference is the in-memory grouping of
    // the concatenation in (task, flush) order.
    std::vector<std::vector<std::pair<uint32_t, int>>> slices(4);
    std::vector<std::pair<uint32_t, int>> all;
    int seq = 0;
    for (auto& slice : slices) {
      for (int i = 0; i < 120; ++i) {
        slice.emplace_back(static_cast<uint32_t>(rng.NextBounded(40)), seq++);
      }
      all.insert(all.end(), slice.begin(), slice.end());
    }
    internal::GroupScratch<uint32_t, int> reference_scratch;
    internal::GroupPath reference_path;
    const GroupedView<uint32_t, int> reference = internal::GroupBucket(
        all, mode, &reference_scratch, &reference_path);

    internal::SpillGc gc;
    internal::TaskSpiller<uint32_t, int> spiller(
        internal::SpillFilePath(dir, "map", 1), &gc);
    internal::TaskSpiller<uint32_t, int>::Buckets flush(1);
    flush[0] = slices[1];
    spiller.Spill(flush);
    flush[0] = slices[2];
    ASSERT_TRUE(spiller.Finish(flush).ok());
    std::vector<internal::SpillRunInfo> runs = spiller.TakeRuns();
    ASSERT_EQ(runs.size(), 2u);

    std::vector<internal::ShuffleSegment<uint32_t, int>> segments;
    segments.push_back({&slices[0], nullptr});
    segments.push_back({nullptr, &runs[0]});
    segments.push_back({nullptr, &runs[1]});
    segments.push_back({&slices[3], nullptr});
    internal::GroupScratch<uint32_t, int> scratch;
    internal::GroupPath path;
    internal::FallbackReason reason;
    auto grouped = internal::GroupSegments(segments, mode, &scratch, &path,
                                           &reason, nullptr);
    ASSERT_TRUE(grouped.ok()) << ShuffleModeName(mode);
    EXPECT_EQ(path, mode == ShuffleMode::kColumnar
                        ? internal::GroupPath::kColumnarSpilled
                        : internal::GroupPath::kSortedSpilled);
    EXPECT_EQ(reason, internal::FallbackReason::kNone);
    ExpectSameGroups(grouped.value(), reference);
  }
}

TEST(ShuffleSpillTest, GroupSegmentsOrdersMixedSignKeysLikeInMemory) {
  const std::string dir = FreshSpillDir("mixed_sign");
  std::filesystem::create_directories(dir);

  // int keys spanning zero with a small signed range: the density guard
  // admits them (the unsigned subtraction wraps back to the true span),
  // and the spilled histogram must emit groups in signed ascending order
  // — negative keys first — exactly like the in-memory columnar path.
  {
    Rng rng(777);
    std::vector<int> keys(300);
    for (int& key : keys) {
      key = static_cast<int>(rng.NextBounded(100)) - 50;  // [-50, 49]
    }
    std::vector<std::pair<int, int>> memory_slice = SequencedBucket(keys);
    std::vector<std::pair<int, int>> run_slice;
    int seq = static_cast<int>(keys.size());
    run_slice.emplace_back(-50, seq++);  // both signs guaranteed in the run
    run_slice.emplace_back(49, seq++);
    for (int i = 0; i < 200; ++i) {
      run_slice.emplace_back(static_cast<int>(rng.NextBounded(100)) - 50,
                             seq++);
    }
    std::vector<std::pair<int, int>> all = memory_slice;
    all.insert(all.end(), run_slice.begin(), run_slice.end());
    internal::GroupScratch<int, int> reference_scratch;
    internal::GroupPath reference_path;
    const GroupedView<int, int> reference = internal::GroupBucket(
        all, ShuffleMode::kColumnar, &reference_scratch, &reference_path);
    ASSERT_EQ(reference_path, internal::GroupPath::kColumnar);

    internal::SpillGc gc;
    internal::TaskSpiller<int, int> spiller(
        internal::SpillFilePath(dir, "map", 0), &gc);
    internal::TaskSpiller<int, int>::Buckets flush(1);
    flush[0] = run_slice;
    spiller.Spill(flush);
    ASSERT_TRUE(spiller.status().ok());
    std::vector<internal::SpillRunInfo> runs = spiller.TakeRuns();
    ASSERT_EQ(runs.size(), 1u);
    // Run metadata stores the bit-casts of the signed extremes, so a
    // mixed-sign run's raw u64 max sits below its raw min.
    EXPECT_LT(runs[0].max_key, runs[0].min_key);

    std::vector<internal::ShuffleSegment<int, int>> segments;
    segments.push_back({&memory_slice, nullptr});
    segments.push_back({nullptr, &runs[0]});
    internal::GroupScratch<int, int> scratch;
    internal::GroupPath path;
    internal::FallbackReason reason;
    auto grouped = internal::GroupSegments(segments, ShuffleMode::kColumnar,
                                           &scratch, &path, &reason, nullptr);
    ASSERT_TRUE(grouped.ok());
    EXPECT_EQ(path, internal::GroupPath::kColumnarSpilled);
    EXPECT_EQ(reason, internal::FallbackReason::kNone);
    ExpectSameGroups(grouped.value(), reference);
  }

  // Narrow keys (int8): the unsigned subtraction promotes to int and goes
  // negative for a mixed-sign span, so the density guard rejects — the
  // same verdict CountingSortGroups reaches in memory. Both sides must
  // take the sorted path and agree.
  {
    std::vector<int8_t> keys(200);
    for (size_t i = 0; i < keys.size(); ++i) {
      keys[i] = static_cast<int8_t>(static_cast<int>(i) % 201 - 100);
    }
    std::vector<std::pair<int8_t, int>> memory_slice = SequencedBucket(keys);
    std::vector<std::pair<int8_t, int>> run_slice;
    int seq = static_cast<int>(keys.size());
    for (int i = 0; i < 100; ++i) {
      run_slice.emplace_back(static_cast<int8_t>(i % 101 - 50), seq++);
    }
    std::vector<std::pair<int8_t, int>> all = memory_slice;
    all.insert(all.end(), run_slice.begin(), run_slice.end());
    internal::GroupScratch<int8_t, int> reference_scratch;
    internal::GroupPath reference_path;
    const GroupedView<int8_t, int> reference = internal::GroupBucket(
        all, ShuffleMode::kColumnar, &reference_scratch, &reference_path);
    ASSERT_EQ(reference_path, internal::GroupPath::kSortedFallback);

    internal::SpillGc gc;
    internal::TaskSpiller<int8_t, int> spiller(
        internal::SpillFilePath(dir, "map", 1), &gc);
    internal::TaskSpiller<int8_t, int>::Buckets flush(1);
    flush[0] = run_slice;
    spiller.Spill(flush);
    ASSERT_TRUE(spiller.status().ok());
    std::vector<internal::SpillRunInfo> runs = spiller.TakeRuns();
    ASSERT_EQ(runs.size(), 1u);

    std::vector<internal::ShuffleSegment<int8_t, int>> segments;
    segments.push_back({&memory_slice, nullptr});
    segments.push_back({nullptr, &runs[0]});
    internal::GroupScratch<int8_t, int> scratch;
    internal::GroupPath path;
    internal::FallbackReason reason;
    auto grouped = internal::GroupSegments(segments, ShuffleMode::kColumnar,
                                           &scratch, &path, &reason, nullptr);
    ASSERT_TRUE(grouped.ok());
    EXPECT_EQ(path, internal::GroupPath::kSortedSpilled);
    EXPECT_EQ(reason, internal::FallbackReason::kDensity);
    ExpectSameGroups(grouped.value(), reference);
  }
}

TEST(ShuffleSpillTest, BudgetPressureDegradesToSpilledColumnarRun) {
  const std::string dir = FreshSpillDir("degrade");
  std::filesystem::create_directories(dir);

  std::vector<uint32_t> keys(500);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<uint32_t>((i * 7) % 50);
  }
  std::vector<std::pair<uint32_t, int>> reference_bucket =
      SequencedBucket(keys);
  internal::GroupScratch<uint32_t, int> reference_scratch;
  internal::GroupPath reference_path;
  const GroupedView<uint32_t, int> reference =
      internal::GroupBucket(reference_bucket, ShuffleMode::kColumnar,
                            &reference_scratch, &reference_path);
  ASSERT_EQ(reference_path, internal::GroupPath::kColumnar);

  // Budget window where the histogram scratch fits alone but not next to
  // the resident bucket: the regime only spilling can serve, by freeing
  // the bucket before the histogram pass.
  const uint64_t scratch_bytes = internal::ColumnarScratchBytes(
      keys.size(), /*range=*/50, sizeof(uint32_t), sizeof(int));
  MemoryBudget budget(scratch_bytes + 64);
  ASSERT_FALSE(budget.FitsAlone(
      scratch_bytes + keys.size() * sizeof(std::pair<uint32_t, int>)));

  SpillPolicy spill;
  spill.dir = dir;
  spill.threshold_bytes = uint64_t{1} << 30;  // map side never triggers
  internal::SpillGc gc;
  std::vector<std::pair<uint32_t, int>> bucket = SequencedBucket(keys);
  internal::GroupScratch<uint32_t, int> scratch;
  std::vector<internal::ShuffleSegment<uint32_t, int>> segment_scratch;
  std::vector<internal::SpillRunInfo> spilled_runs;
  internal::GroupPath path;
  internal::FallbackReason reason;
  auto grouped = internal::GroupBucketOrSpill(
      bucket, ShuffleMode::kColumnar, &scratch, &path, &reason, &budget,
      spill, internal::SpillFilePath(dir, "reduce", 0), &gc, &spilled_runs,
      &segment_scratch);
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(path, internal::GroupPath::kColumnarSpilled);
  EXPECT_EQ(reason, internal::FallbackReason::kSpill);
  EXPECT_TRUE(bucket.empty());  // resident bucket freed for real
  ASSERT_EQ(spilled_runs.size(), 1u);
  ExpectSameGroups(grouped.value(), reference);

  // Attempt retry: the bucket is already empty and the spilled state lives
  // in spilled_runs — regrouping must reuse the run, not re-spill nothing.
  internal::GroupScratch<uint32_t, int> retry_scratch;
  internal::GroupPath retry_path;
  internal::FallbackReason retry_reason;
  auto regrouped = internal::GroupBucketOrSpill(
      bucket, ShuffleMode::kColumnar, &retry_scratch, &retry_path,
      &retry_reason, &budget, spill,
      internal::SpillFilePath(dir, "reduce", 0), &gc, &spilled_runs,
      &segment_scratch);
  ASSERT_TRUE(regrouped.ok());
  EXPECT_EQ(retry_path, internal::GroupPath::kColumnarSpilled);
  EXPECT_EQ(retry_reason, internal::FallbackReason::kSpill);
  ExpectSameGroups(regrouped.value(), reference);

  // Without a spill dir there is no degrade that frees the bucket, so the
  // comparable pressure is a budget the histogram scratch itself cannot
  // fit: GroupBucket falls back to the sorted path and labels it
  // budget-driven.
  MemoryBudget tight(scratch_bytes / 2);
  std::vector<std::pair<uint32_t, int>> unspillable = SequencedBucket(keys);
  internal::GroupScratch<uint32_t, int> sorted_scratch;
  std::vector<internal::ShuffleSegment<uint32_t, int>> sorted_segments;
  std::vector<internal::SpillRunInfo> no_runs;
  internal::GroupPath sorted_path;
  internal::FallbackReason sorted_reason;
  auto sorted = internal::GroupBucketOrSpill(
      unspillable, ShuffleMode::kColumnar, &sorted_scratch, &sorted_path,
      &sorted_reason, &tight, SpillPolicy{},
      internal::SpillFilePath(dir, "reduce", 1), &gc, &no_runs,
      &sorted_segments);
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(sorted_path, internal::GroupPath::kSortedBudget);
  EXPECT_EQ(sorted_reason, internal::FallbackReason::kBudget);
  ExpectSameGroups(sorted.value(), reference);
}

JobSpec SpilledDigestSpec(ShuffleMode mode, int threads,
                          const FaultSpec& faults, const std::string& dir,
                          uint64_t threshold_bytes) {
  JobSpec spec = DigestSpec(mode, threads, faults);
  spec.spill.dir = dir;
  spec.spill.threshold_bytes = threshold_bytes;
  return spec;
}

TEST(ShuffleSpillTest, SpilledRunsMatchInMemoryAcrossModesThreadsAndFaults) {
  // Each map task emits 60 8-byte pairs (480 bytes); a 128-byte threshold
  // forces several mid-task flushes plus the Finish remainder.
  const std::string dir = FreshSpillDir("matrix");
  const JobOutput<GroupDigest> baseline =
      RunDigestJob(DigestSpec(ShuffleMode::kSorted, 1, FaultSpec{}));

  for (ShuffleMode mode : {ShuffleMode::kSorted, ShuffleMode::kColumnar}) {
    for (int threads : {1, 4, 8}) {
      for (const FaultSpec& faults : AllFaultKinds()) {
        const std::string label =
            std::string(ShuffleModeName(mode)) +
            " threads=" + std::to_string(threads) +
            " faults=" + std::to_string(faults.enabled) +
            " crash=" + std::to_string(faults.task_failure_prob);
        const JobOutput<GroupDigest> in_memory =
            RunDigestJob(DigestSpec(mode, threads, faults));
        const JobOutput<GroupDigest> spilled = RunDigestJob(
            SpilledDigestSpec(mode, threads, faults, dir, /*threshold=*/128));

        EXPECT_EQ(spilled.output, in_memory.output) << label;
        EXPECT_EQ(spilled.output, baseline.output) << label;
        EXPECT_EQ(spilled.stats.counters.values(),
                  in_memory.stats.counters.values())
            << label;
        EXPECT_EQ(spilled.stats.records_shuffled,
                  in_memory.stats.records_shuffled)
            << label;
        EXPECT_EQ(spilled.stats.bytes_shuffled, in_memory.stats.bytes_shuffled)
            << label;
        EXPECT_EQ(spilled.stats.groups_reduced, in_memory.stats.groups_reduced)
            << label;
        // Run files are job-scoped garbage: none survive the job, even
        // under retries and speculative schedules.
        EXPECT_EQ(SpillFilesIn(dir), 0u) << label;
      }
    }
  }
}

TEST(ShuffleSpillTest, SpillMetricsAndPathsAreRecorded) {
  const std::string dir = FreshSpillDir("metrics");
  MetricsRegistry& metrics = MetricsRegistry::Global();

  metrics.Reset();
  FaultSpec crash = AllFaultKinds()[1];  // every task fails once, retries
  RunDigestJob(
      SpilledDigestSpec(ShuffleMode::kColumnar, 4, crash, dir, 128));
  const std::vector<MetricSnapshot> columnar = metrics.Snapshot();
  EXPECT_EQ(MetricCount(columnar, "mr.spill.map_tasks"), 7u);
  EXPECT_GT(MetricCount(columnar, "mr.spill.runs_written"), 0u);
  EXPECT_GT(MetricCount(columnar, "mr.spill.bytes_written"), 0u);
  EXPECT_GT(MetricCount(columnar, "mr.spill.runs_merged"), 0u);
  EXPECT_GT(MetricCount(columnar, "mr.spill.bytes_read"), 0u);
  EXPECT_EQ(MetricCount(columnar, "mr.shuffle.columnar_spilled_tasks"), 4u);
  EXPECT_EQ(MetricCount(columnar, "mr.shuffle.sorted_spilled_tasks"), 0u);
  // Dense keys, no budget: the spill came from the threshold, not from a
  // guard, so no fallback reason is charged.
  EXPECT_EQ(MetricCount(columnar, "mr.shuffle.fallback.density"), 0u);
  EXPECT_EQ(MetricCount(columnar, "mr.shuffle.fallback.budget"), 0u);
  EXPECT_EQ(MetricCount(columnar, "mr.shuffle.fallback.spill"), 0u);

  metrics.Reset();
  RunDigestJob(
      SpilledDigestSpec(ShuffleMode::kSorted, 4, FaultSpec{}, dir, 128));
  const std::vector<MetricSnapshot> sorted = metrics.Snapshot();
  EXPECT_EQ(MetricCount(sorted, "mr.shuffle.sorted_spilled_tasks"), 4u);
  EXPECT_EQ(MetricCount(sorted, "mr.shuffle.columnar_spilled_tasks"), 0u);
  EXPECT_GT(MetricCount(sorted, "mr.spill.runs_merged"), 0u);
}

// A sparse-key mapper: the density guard, not the budget or the spill
// threshold, is what pushes these tasks off the counting-sort path.
class SparseKeyMapper : public Mapper<int, int> {
 public:
  void Map(size_t split_index, Emitter<int, int>& out) override {
    const int base = static_cast<int>(split_index) * 10;
    for (int v = base; v < base + 10; ++v) out.Emit(v * 1000000, v);
  }
};

TEST(ShuffleSpillTest, FallbackReasonCountersLabelEachGuard) {
  MetricsRegistry& metrics = MetricsRegistry::Global();

  // Density: sparse keys in columnar mode.
  metrics.Reset();
  {
    SparseKeyMapper mapper;
    DigestReducer reducer;
    JobSpec spec = DigestSpec(ShuffleMode::kColumnar, 1, FaultSpec{});
    RunMapReduce<int, int, GroupDigest>(
        /*num_splits=*/3, mapper, reducer,
        [](const int& key) { return (key / 1000000) % 4; }, spec)
        .ValueOrDie();
  }
  const std::vector<MetricSnapshot> density = metrics.Snapshot();
  EXPECT_GT(MetricCount(density, "mr.shuffle.fallback.density"), 0u);
  EXPECT_EQ(MetricCount(density, "mr.shuffle.fallback.budget"), 0u);
  EXPECT_EQ(MetricCount(density, "mr.shuffle.fallback.spill"), 0u);

  // Budget: a budget too small for any histogram scratch, no spill dir.
  metrics.Reset();
  {
    MemoryBudget tiny(16);
    JobSpec spec = DigestSpec(ShuffleMode::kColumnar, 1, FaultSpec{});
    spec.memory = &tiny;
    RunDigestJob(spec);
  }
  const std::vector<MetricSnapshot> budget = metrics.Snapshot();
  EXPECT_GT(MetricCount(budget, "mr.shuffle.fallback.budget"), 0u);
  EXPECT_EQ(MetricCount(budget, "mr.shuffle.fallback.density"), 0u);
  EXPECT_EQ(MetricCount(budget, "mr.shuffle.fallback.spill"), 0u);

  // Spill: the same budget window as BudgetPressureDegradesToSpilledColumnar
  // but through the engine, with a spill dir available. Reduce task 0's
  // bucket holds 123 records over key range [0, 16].
  metrics.Reset();
  const std::string dir = FreshSpillDir("reason");
  {
    const uint64_t scratch_bytes = internal::ColumnarScratchBytes(
        /*records=*/123, /*range=*/17, sizeof(int), sizeof(int));
    MemoryBudget window(scratch_bytes + 64);
    JobSpec spec = SpilledDigestSpec(ShuffleMode::kColumnar, 1, FaultSpec{},
                                     dir, uint64_t{1} << 30);
    spec.memory = &window;
    const JobOutput<GroupDigest> degraded = RunDigestJob(spec);
    const JobOutput<GroupDigest> reference =
        RunDigestJob(DigestSpec(ShuffleMode::kColumnar, 1, FaultSpec{}));
    EXPECT_EQ(degraded.output, reference.output);
  }
  const std::vector<MetricSnapshot> spill = metrics.Snapshot();
  EXPECT_GT(MetricCount(spill, "mr.shuffle.fallback.spill"), 0u);
  EXPECT_GT(MetricCount(spill, "mr.shuffle.columnar_spilled_tasks"), 0u);
  EXPECT_GT(MetricCount(spill, "mr.spill.reduce_tasks"), 0u);
  EXPECT_EQ(SpillFilesIn(dir), 0u);
}

TEST(ShuffleSpillTest, CrashResumeRestoresSpilledCheckpointsExactly) {
  const JobOutput<SpillKeySum> baseline =
      RunSumJob(DigestSpec(ShuffleMode::kColumnar, 1, FaultSpec{}))
          .ValueOrDie();

  for (ShuffleMode mode : {ShuffleMode::kSorted, ShuffleMode::kColumnar}) {
    const std::string tag = ShuffleModeName(mode);
    const std::string dir = FreshSpillDir(("resume_" + tag).c_str());
    const std::string ckpt = dir + "_ckpt";
    std::error_code ec;
    std::filesystem::remove_all(ckpt, ec);

    MetricsRegistry& metrics = MetricsRegistry::Global();
    metrics.Reset();
    {
      auto store = CheckpointStore::Open(ckpt, "sum", /*resume=*/false)
                       .ValueOrDie();
      JobSpec crashing =
          SpilledDigestSpec(mode, 1, FaultSpec{}, dir, /*threshold=*/128);
      crashing.checkpoint = store.get();
      crashing.faults.crash_at_task = 1;
      crashing.faults.crash_phase = TaskPhase::kReduce;
      const auto crashed = RunSumJob(crashing);
      ASSERT_FALSE(crashed.ok()) << tag;
      ASSERT_EQ(crashed.status().code(), StatusCode::kUnavailable) << tag;
    }
    // The failed checkpointing job must leave its runs for the resume —
    // the durable map records reference them.
    EXPECT_GT(SpillFilesIn(dir), 0u) << tag;

    {
      auto store = CheckpointStore::Open(ckpt, "sum", /*resume=*/true)
                       .ValueOrDie();
      JobSpec resuming =
          SpilledDigestSpec(mode, 1, FaultSpec{}, dir, /*threshold=*/128);
      resuming.checkpoint = store.get();
      resuming.resume = true;
      const JobOutput<SpillKeySum> resumed =
          RunSumJob(resuming).ValueOrDie();
      EXPECT_EQ(resumed.output, baseline.output) << tag;
    }
    // Every restored run descriptor validated against its file: resuming
    // with intact spill files must not burn a single load failure, and the
    // successful resume garbage-collects the runs.
    const std::vector<MetricSnapshot> after = metrics.Snapshot();
    EXPECT_EQ(MetricCount(after, "durability.checkpoint.load_failures"), 0u)
        << tag;
    EXPECT_GT(MetricCount(after, "durability.checkpoint.tasks_resumed"), 0u)
        << tag;
    EXPECT_EQ(SpillFilesIn(dir), 0u) << tag;
  }
}

TEST(ShuffleSpillTest, ResumeSweepsOrphanedReduceRuns) {
  // A reduce task that degrades to spill-then-stream, checkpoints, and is
  // then restored on resume never regroups — nothing re-tracks its run
  // file. The success-exit sweep of the job's spill namespace must
  // reclaim it anyway.
  const JobOutput<SpillKeySum> baseline =
      RunSumJob(DigestSpec(ShuffleMode::kColumnar, 1, FaultSpec{}))
          .ValueOrDie();
  const std::string dir = FreshSpillDir("orphan");
  const std::string ckpt = dir + "_ckpt";
  std::error_code ec;
  std::filesystem::remove_all(ckpt, ec);

  // Reduce task 0's bucket: 123 records over key range [0, 16]. The
  // window fits the histogram scratch alone but not next to the resident
  // bucket, so the task spills; the map side (1 GiB threshold) never does.
  const uint64_t scratch_bytes = internal::ColumnarScratchBytes(
      /*records=*/123, /*range=*/17, sizeof(int), sizeof(int));
  {
    auto store =
        CheckpointStore::Open(ckpt, "sum", /*resume=*/false).ValueOrDie();
    MemoryBudget window(scratch_bytes + 64);
    JobSpec crashing = SpilledDigestSpec(ShuffleMode::kColumnar, 1,
                                         FaultSpec{}, dir, uint64_t{1} << 30);
    crashing.memory = &window;
    crashing.checkpoint = store.get();
    crashing.faults.crash_at_task = 1;
    crashing.faults.crash_phase = TaskPhase::kReduce;
    const auto crashed = RunSumJob(crashing);
    ASSERT_FALSE(crashed.ok());
    ASSERT_EQ(crashed.status().code(), StatusCode::kUnavailable);
  }
  // Reduce task 0 committed after spilling: its run survives the failure.
  EXPECT_GT(SpillFilesIn(dir), 0u);

  {
    auto store =
        CheckpointStore::Open(ckpt, "sum", /*resume=*/true).ValueOrDie();
    MemoryBudget window(scratch_bytes + 64);
    JobSpec resuming = SpilledDigestSpec(ShuffleMode::kColumnar, 1,
                                         FaultSpec{}, dir, uint64_t{1} << 30);
    resuming.memory = &window;
    resuming.checkpoint = store.get();
    resuming.resume = true;
    const JobOutput<SpillKeySum> resumed = RunSumJob(resuming).ValueOrDie();
    EXPECT_EQ(resumed.output, baseline.output);
  }
  // The restored task's orphaned run file is gone with the namespace.
  EXPECT_EQ(SpillFilesIn(dir), 0u);
}

TEST(PipelineShuffleEquivalence, MetricsRecordGroupPathAndArenaReuse) {
  MetricsRegistry& metrics = MetricsRegistry::Global();

  metrics.Reset();
  DodPipeline(PipelineConfig(StrategyKind::kDmt, ShuffleMode::kColumnar, 1,
                             KernelMode::kAuto, FaultSpec{}))
      .RunOrDie(PipelineData());
  const std::vector<MetricSnapshot> columnar = metrics.Snapshot();
  EXPECT_GT(MetricCount(columnar, "mr.shuffle.columnar_tasks"), 0u);
  EXPECT_EQ(MetricCount(columnar, "mr.shuffle.sorted_tasks"), 0u);
  // Cell-id key spaces are dense; the sparsity guard must never trip here.
  EXPECT_EQ(MetricCount(columnar, "mr.shuffle.fallback_tasks"), 0u);
  // Shared probe arenas: one build per task serves all its cells.
  const uint64_t arenas = MetricCount(columnar, "kernels.soa_reuse.arenas");
  const uint64_t cells = MetricCount(columnar, "kernels.soa_reuse.cells");
  EXPECT_GT(arenas, 0u);
  EXPECT_GE(cells, arenas);
  EXPECT_EQ(MetricCount(columnar, "kernels.soa_reuse.saved_builds"),
            cells - arenas);

  metrics.Reset();
  DodPipeline(PipelineConfig(StrategyKind::kDmt, ShuffleMode::kSorted, 1,
                             KernelMode::kAuto, FaultSpec{}))
      .RunOrDie(PipelineData());
  const std::vector<MetricSnapshot> sorted = metrics.Snapshot();
  EXPECT_GT(MetricCount(sorted, "mr.shuffle.sorted_tasks"), 0u);
  EXPECT_EQ(MetricCount(sorted, "mr.shuffle.columnar_tasks"), 0u);
}

}  // namespace
}  // namespace dod
