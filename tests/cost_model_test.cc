// Copyright 2026 The DOD Authors.
//
// The Sec. IV cost models (Lemmas 4.1 / 4.2) and the Corollary 4.3
// selector: closed-form checks, regime boundaries, monotonicity, and the
// load-balancing observation (equal cardinality ≠ equal cost).

#include "detection/cost_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dod {
namespace {

constexpr double kR = 5.0;
constexpr int kK = 4;

DetectionParams Params() { return DetectionParams{kR, kK}; }

PartitionStats Stats(size_t n, double area) { return {n, area, 2}; }

TEST(BallVolumeTest, KnownValues) {
  EXPECT_NEAR(BallVolume(1.0, 1), 2.0, 1e-12);              // segment
  EXPECT_NEAR(BallVolume(1.0, 2), M_PI, 1e-12);             // disk
  EXPECT_NEAR(BallVolume(1.0, 3), 4.0 / 3.0 * M_PI, 1e-12); // sphere
  EXPECT_NEAR(BallVolume(2.0, 2), 4.0 * M_PI, 1e-12);       // r² scaling
}

TEST(NestedLoopCostTest, MatchesLemma41ClosedForm) {
  // Middle regime (k/μ below the full-scan cap): Cost = |D|·A(D)·k/A(p).
  const size_t n = 10000;
  const double area = 1e5;
  const double expected = n * area * kK / (M_PI * kR * kR);
  ASSERT_LT(expected / n, n - 1.0) << "test must stay below the scan cap";
  EXPECT_NEAR(NestedLoopCost(Stats(n, area), Params()), expected,
              expected * 1e-9);
}

TEST(NestedLoopCostTest, SparserIsMoreExpensive) {
  // The Sec. IV-A load-balancing observation: same cardinality, 4× the
  // domain area → 4× the cost (D-Sparse vs D-Dense).
  const size_t n = 10000;
  const double dense_cost = NestedLoopCost(Stats(n, 2.5e4), Params());
  const double sparse_cost = NestedLoopCost(Stats(n, 1e5), Params());
  EXPECT_NEAR(sparse_cost / dense_cost, 4.0, 1e-9);
}

TEST(NestedLoopCostTest, CappedAtFullScan) {
  // When the data is too sparse to ever find k neighbors, each point costs
  // at most n-1 probes.
  const size_t n = 100;
  const double cost = NestedLoopCost(Stats(n, 1e12), Params());
  EXPECT_DOUBLE_EQ(cost, n * (n - 1.0));
}

TEST(NestedLoopCostTest, FlooredAtKProbes) {
  // Even in an arbitrarily dense partition a point needs k probes.
  const size_t n = 1000;
  const double cost = NestedLoopCost(Stats(n, 1e-9), Params());
  EXPECT_DOUBLE_EQ(cost, n * static_cast<double>(kK));
}

TEST(NestedLoopCostTest, TrivialPartitions) {
  EXPECT_DOUBLE_EQ(NestedLoopCost(Stats(0, 100.0), Params()), 0.0);
  EXPECT_DOUBLE_EQ(NestedLoopCost(Stats(1, 100.0), Params()), 1.0);
}

TEST(CellBasedRegimesTest, PaperThresholdsIn2D) {
  const size_t n = 10000;
  // Dense regime iff (9/8)·r²·ρ ≥ k ⇔ ρ ≥ 8k/(9r²) = 0.14222…
  const double rho_dense = 8.0 * kK / (9.0 * kR * kR);
  EXPECT_TRUE(CellBasedDenseRegime(Stats(n, n / (rho_dense * 1.01)), Params()));
  EXPECT_FALSE(
      CellBasedDenseRegime(Stats(n, n / (rho_dense * 0.99)), Params()));
  // Sparse regime iff (49/8)·r²·ρ < k ⇔ ρ < 8k/(49r²) = 0.02612…
  const double rho_sparse = 8.0 * kK / (49.0 * kR * kR);
  EXPECT_TRUE(
      CellBasedSparseRegime(Stats(n, n / (rho_sparse * 0.99)), Params()));
  EXPECT_FALSE(
      CellBasedSparseRegime(Stats(n, n / (rho_sparse * 1.01)), Params()));
}

TEST(CellBasedCostTest, LinearInPrunedRegimes) {
  const size_t n = 10000;
  EXPECT_DOUBLE_EQ(CellBasedCost(Stats(n, n / 1.0), Params()),
                   static_cast<double>(n));  // dense
  EXPECT_DOUBLE_EQ(CellBasedCost(Stats(n, n / 0.001), Params()),
                   static_cast<double>(n));  // very sparse
}

TEST(CellBasedCostTest, MiddleRegimeAddsNestedLoopCost) {
  const size_t n = 10000;
  const double rho = 0.08;  // between the two thresholds
  const PartitionStats stats = Stats(n, n / rho);
  EXPECT_FALSE(CellBasedDenseRegime(stats, Params()));
  EXPECT_FALSE(CellBasedSparseRegime(stats, Params()));
  EXPECT_DOUBLE_EQ(CellBasedCost(stats, Params()),
                   n + NestedLoopCost(stats, Params()));
}

TEST(SelectorTest, Corollary43Choices) {
  const size_t n = 10000;
  EXPECT_EQ(SelectAlgorithm(Stats(n, n / 1.0), Params()),
            AlgorithmKind::kCellBased);  // dense
  EXPECT_EQ(SelectAlgorithm(Stats(n, n / 0.08), Params()),
            AlgorithmKind::kNestedLoop);  // middle
}

TEST(SelectorTest, PlanningDoesNotTrustSparsePruning) {
  // Lemma 4.2's sparse case says Cell-Based is linear below ρ < 0.0261;
  // the planner prices it as quadratic anyway (sample-resolution clumping
  // voids quiet-neighborhood pruning) and therefore keeps Nested-Loop,
  // whose randomized early exit has the same worst case but no indexing.
  const size_t n = 10000;
  EXPECT_TRUE(CellBasedSparseRegime(Stats(n, n / 0.02), Params()));
  EXPECT_FALSE(CellBasedUltraSparseRegime(Stats(n, n / 0.02), Params()));
  EXPECT_TRUE(CellBasedUltraSparseRegime(Stats(n, n / 0.004), Params()));
  EXPECT_EQ(SelectAlgorithm(Stats(n, n / 0.02), Params()),
            AlgorithmKind::kNestedLoop);
  EXPECT_EQ(SelectAlgorithm(Stats(n, n / 0.004), Params()),
            AlgorithmKind::kNestedLoop);
}

TEST(SelectorTest, StrongDenseRegimeHasSafetyMargin) {
  const size_t n = 10000;
  // Dense boundary at ρ = 0.1422; strong-dense at 2x ⇒ ρ = 0.2844.
  EXPECT_TRUE(CellBasedDenseRegime(Stats(n, n / 0.2), Params()));
  EXPECT_FALSE(CellBasedStrongDenseRegime(Stats(n, n / 0.2), Params()));
  EXPECT_TRUE(CellBasedStrongDenseRegime(Stats(n, n / 0.3), Params()));
  EXPECT_EQ(SelectAlgorithm(Stats(n, n / 0.3), Params()),
            AlgorithmKind::kCellBased);
}

TEST(SelectorTest, SelectedAlgorithmHasMinimalPlanningCost) {
  // Def. 3.4: the chosen algorithm minimizes the planner's modeled cost,
  // for any density.
  const size_t n = 5000;
  for (double rho : {0.001, 0.01, 0.03, 0.08, 0.13, 0.2, 1.0, 10.0}) {
    const PartitionStats stats = Stats(n, n / rho);
    const AlgorithmKind chosen = SelectAlgorithm(stats, Params());
    const double chosen_cost = PlanningCost(chosen, stats, Params());
    EXPECT_LE(chosen_cost,
              PlanningCost(AlgorithmKind::kNestedLoop, stats, Params()));
    EXPECT_LE(chosen_cost,
              PlanningCost(AlgorithmKind::kCellBased, stats, Params()));
  }
}

TEST(CostModelTest, EqualCardinalityDoesNotImplyEqualCost) {
  // The paper's headline observation against cardinality-based balancing.
  const size_t n = 20000;
  const double cost_sparse = NestedLoopCost(Stats(n, n / 0.03), Params());
  const double cost_dense = NestedLoopCost(Stats(n, n / 0.3), Params());
  EXPECT_GT(cost_sparse, 5.0 * cost_dense);
}

TEST(CostModelTest, BruteForceIsQuadratic) {
  EXPECT_DOUBLE_EQ(
      EstimateCost(AlgorithmKind::kBruteForce, Stats(100, 1.0), Params()),
      100.0 * 99.0);
}

TEST(CostModelTest, ZeroAreaPartitionIsTreatedAsDense) {
  // Degenerate partitions (all points identical) must not divide by zero
  // and should be cheap for both algorithms.
  const PartitionStats stats = Stats(1000, 0.0);
  EXPECT_DOUBLE_EQ(NestedLoopCost(stats, Params()), 1000.0 * kK);
  EXPECT_DOUBLE_EQ(CellBasedCost(stats, Params()), 1000.0);
}

TEST(CostModelTest, ThreeDimensionalRegimesGeneralize) {
  const size_t n = 10000;
  DetectionParams params{2.0, 4};
  PartitionStats dense{n, n / 50.0, 3};
  PartitionStats sparse{n, n / 1e-4, 3};
  EXPECT_TRUE(CellBasedDenseRegime(dense, params));
  EXPECT_TRUE(CellBasedSparseRegime(sparse, params));
}

}  // namespace
}  // namespace dod
