// Copyright 2026 The DOD Authors.

#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dod {
namespace {

TEST(StatsTest, SumMeanMax) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Sum(v), 10.0);
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_DOUBLE_EQ(Max(v), 4.0);
}

TEST(StatsTest, EmptyInputs) {
  EXPECT_DOUBLE_EQ(Sum({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Max({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({}), 0.0);
  EXPECT_DOUBLE_EQ(ImbalanceFactor({}), 1.0);
}

TEST(StatsTest, StdDevOfConstantIsZero) {
  EXPECT_DOUBLE_EQ(StdDev({5.0, 5.0, 5.0}), 0.0);
}

TEST(StatsTest, StdDevKnownValue) {
  // Population stddev of {2, 4, 4, 4, 5, 5, 7, 9} is 2.
  EXPECT_DOUBLE_EQ(StdDev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0);
}

TEST(StatsTest, ImbalanceFactorPerfectlyBalanced) {
  EXPECT_DOUBLE_EQ(ImbalanceFactor({3.0, 3.0, 3.0}), 1.0);
}

TEST(StatsTest, ImbalanceFactorSkewed) {
  // Loads {9, 1, 2}: mean 4, max 9 → 2.25.
  EXPECT_DOUBLE_EQ(ImbalanceFactor({9.0, 1.0, 2.0}), 2.25);
}

TEST(RunningStatsTest, MatchesBatchComputation) {
  const std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  RunningStats rs;
  for (double x : v) rs.Add(x);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_DOUBLE_EQ(rs.mean(), Mean(v));
  EXPECT_NEAR(rs.stddev(), StdDev(v), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats rs;
  rs.Add(42.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 42.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

}  // namespace
}  // namespace dod
