// Copyright 2026 The DOD Authors.

#include "core/plan_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "data/geo_like.h"
#include "partition/sampler.h"

namespace dod {
namespace {

MultiTacticPlan MakePlan(StrategyKind strategy) {
  const Dataset data = GenerateGeoRegion(GeoRegion::kMassachusetts, 8000, 3);
  SamplerOptions options;
  options.rate = 0.3;
  options.buckets_per_dim = 24;
  const DistributionSketch sketch = BuildSketch(data, data.Bounds(), options);
  DodConfig config =
      strategy == StrategyKind::kDmt
          ? DodConfig::Dmt(DetectionParams{5.0, 4})
          : DodConfig::Baseline(DetectionParams{5.0, 4}, strategy,
                                AlgorithmKind::kNestedLoop);
  config.target_partitions = 16;
  config.num_reduce_tasks = 4;
  return BuildMultiTacticPlan(sketch, config);
}

void ExpectPlansEqual(const MultiTacticPlan& a, const MultiTacticPlan& b) {
  ASSERT_EQ(a.partition_plan.num_cells(), b.partition_plan.num_cells());
  EXPECT_EQ(a.partition_plan.domain(), b.partition_plan.domain());
  EXPECT_DOUBLE_EQ(a.partition_plan.radius(), b.partition_plan.radius());
  EXPECT_EQ(a.uses_supporting_area, b.uses_supporting_area);
  for (size_t i = 0; i < a.partition_plan.num_cells(); ++i) {
    EXPECT_EQ(a.partition_plan.cell(static_cast<uint32_t>(i)).bounds,
              b.partition_plan.cell(static_cast<uint32_t>(i)).bounds);
    EXPECT_EQ(a.algorithm_plan[i], b.algorithm_plan[i]);
    EXPECT_EQ(a.allocation[i], b.allocation[i]);
    EXPECT_DOUBLE_EQ(a.estimated_cost[i], b.estimated_cost[i]);
  }
}

TEST(PlanIoTest, RoundTripDmtPlan) {
  const MultiTacticPlan plan = MakePlan(StrategyKind::kDmt);
  const std::string text = SerializePlan(plan);
  Result<MultiTacticPlan> restored = DeserializePlan(text);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectPlansEqual(plan, restored.value());
}

TEST(PlanIoTest, RoundTripDomainPlanKeepsSupportFlag) {
  const MultiTacticPlan plan = MakePlan(StrategyKind::kDomain);
  ASSERT_FALSE(plan.uses_supporting_area);
  Result<MultiTacticPlan> restored = DeserializePlan(SerializePlan(plan));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_FALSE(restored.value().uses_supporting_area);
}

TEST(PlanIoTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/dod_plan_io_test.plan";
  const MultiTacticPlan plan = MakePlan(StrategyKind::kCDriven);
  ASSERT_TRUE(WritePlanFile(plan, path).ok());
  Result<MultiTacticPlan> restored = ReadPlanFile(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectPlansEqual(plan, restored.value());
  std::remove(path.c_str());
}

TEST(PlanIoTest, CommentsAreIgnored) {
  const MultiTacticPlan plan = MakePlan(StrategyKind::kUniSpace);
  std::string text = "# produced by preprocessing job\n" +
                     SerializePlan(plan) + "# trailing comment\n";
  EXPECT_TRUE(DeserializePlan(text).ok());
}

TEST(PlanIoTest, RejectsBadHeader) {
  EXPECT_FALSE(DeserializePlan("not-a-plan v1\n").ok());
  EXPECT_FALSE(DeserializePlan("dod-plan v2\n").ok());
  EXPECT_FALSE(DeserializePlan("").ok());
}

TEST(PlanIoTest, RejectsTruncatedInput) {
  const MultiTacticPlan plan = MakePlan(StrategyKind::kDDriven);
  const std::string text = SerializePlan(plan);
  // Chop the serialization at several points; every prefix must fail
  // cleanly (no crash, error status). The final cut removes the whole last
  // cell record so the declared cell count cannot be satisfied.
  const size_t last_cell = text.rfind("\ncell");
  ASSERT_NE(last_cell, std::string::npos);
  for (size_t cut : {text.size() / 4, text.size() / 2, last_cell + 1}) {
    EXPECT_FALSE(DeserializePlan(text.substr(0, cut)).ok()) << cut;
  }
}

TEST(PlanIoTest, RejectsStructurallyInvalidPlan) {
  // Two overlapping cells: parses but fails Def. 3.1 validation.
  const std::string text =
      "dod-plan v1\n"
      "dims 2 radius 1 support 1\n"
      "domain 0 0 10 10\n"
      "cells 2\n"
      "cell 0 0 6 10 alg nested_loop reducer 0 cost 1\n"
      "cell 5 0 10 10 alg cell_based reducer 1 cost 1\n";
  Result<MultiTacticPlan> plan = DeserializePlan(text);
  EXPECT_FALSE(plan.ok());
}

TEST(PlanIoTest, RejectsUnknownAlgorithm) {
  const std::string text =
      "dod-plan v1\n"
      "dims 2 radius 1 support 1\n"
      "domain 0 0 10 10\n"
      "cells 1\n"
      "cell 0 0 10 10 alg quantum reducer 0 cost 1\n";
  EXPECT_FALSE(DeserializePlan(text).ok());
}

TEST(PlanIoTest, MissingFileIsIoError) {
  Result<MultiTacticPlan> plan = ReadPlanFile("/nonexistent/plan.txt");
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace dod
