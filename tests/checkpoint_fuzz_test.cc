// Copyright 2026 The DOD Authors.
//
// Property / fuzz tests for the checkpoint manifest parser and the payload
// codec. The contract under test: arbitrarily malformed input — corrupted
// JSON, truncated payloads, version skew, job-key mismatch, random byte
// mutations — always degrades into a structured Status. Never UB, never a
// crash, never a silently wrong record. Each case is driven by a seeded
// deterministic PRNG so failures replay exactly.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <unistd.h>

#include "durability/checkpoint.h"
#include "durability/payload.h"
#include "streaming/streaming_detector.h"

namespace dod {
namespace {

// SplitMix64: tiny, deterministic, good enough to drive mutations.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
  size_t Below(size_t n) { return n == 0 ? 0 : Next() % n; }

 private:
  uint64_t state_;
};

std::string ValidManifest() {
  return R"({
  "format_version": 2,
  "job_key": "dod-1234",
  "tasks": [
    {"phase": "map", "index": 0, "file": "DATA.log",
     "offset": 0, "bytes": 16, "checksum": "00a9c1f3e5b70d42"},
    {"phase": "reduce", "index": 3, "file": "DATA.log",
     "offset": 16, "bytes": 4096, "checksum": "ffffffffffffffff"}
  ]
})";
}

TEST(ManifestFuzzTest, ValidManifestParses) {
  const auto parsed =
      CheckpointStore::ParseManifest(ValidManifest(), "dod-1234");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().format_version, CheckpointStore::kFormatVersion);
  EXPECT_EQ(parsed.value().job_key, "dod-1234");
  ASSERT_EQ(parsed.value().records.size(), 2u);
  EXPECT_EQ(parsed.value().records[0].phase, "map");
  EXPECT_EQ(parsed.value().records[1].index, 3);
  EXPECT_EQ(parsed.value().records[1].checksum, 0xFFFFFFFFFFFFFFFFULL);
}

TEST(ManifestFuzzTest, VersionSkewIsStructured) {
  for (const char* version : {"0", "1", "999"}) {
    std::string text = ValidManifest();
    const size_t at = text.find("\"format_version\": 2");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, std::string("\"format_version\": 2").size(),
                 std::string("\"format_version\": ") + version);
    const auto parsed = CheckpointStore::ParseManifest(text, "dod-1234");
    ASSERT_FALSE(parsed.ok()) << version;
    EXPECT_EQ(parsed.status().code(), StatusCode::kFailedPrecondition)
        << version;
  }
  {
    // A negative version is malformed rather than merely skewed.
    std::string text = ValidManifest();
    text.replace(text.find("\"format_version\": 2"),
                 std::string("\"format_version\": 2").size(),
                 "\"format_version\": -1");
    EXPECT_EQ(CheckpointStore::ParseManifest(text, "dod-1234").status().code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(ManifestFuzzTest, JobKeyMismatchIsStructured) {
  const auto parsed =
      CheckpointStore::ParseManifest(ValidManifest(), "dod-other");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kFailedPrecondition);
  // Empty expected key skips the check (fuzz-harness escape hatch).
  EXPECT_TRUE(CheckpointStore::ParseManifest(ValidManifest(), "").ok());
}

// 100 seeded cases: every prefix truncation of a valid manifest must fail
// with a structured error (the only parseable prefix is the whole text).
TEST(ManifestFuzzTest, TruncationsNeverParse) {
  const std::string text = ValidManifest();
  Rng rng(0xDEADBEEF);
  for (int i = 0; i < 100; ++i) {
    const size_t keep = rng.Below(text.size());  // strictly shorter
    const auto parsed = CheckpointStore::ParseManifest(
        std::string_view(text).substr(0, keep), "dod-1234");
    ASSERT_FALSE(parsed.ok()) << "prefix of " << keep << " bytes parsed";
    EXPECT_NE(parsed.status().code(), StatusCode::kOk);
  }
}

// 200 seeded cases: random single/multi-byte mutations of a valid manifest
// either still parse (the mutation hit whitespace or a value and kept the
// grammar intact) or fail with a structured Status. Either way: no crash,
// and anything that does parse still carries sane, bounded fields.
TEST(ManifestFuzzTest, RandomMutationsAreStructuredOrStillValid) {
  const std::string base = ValidManifest();
  Rng rng(0x5EED5EED);
  for (int i = 0; i < 200; ++i) {
    std::string text = base;
    const int mutations = 1 + static_cast<int>(rng.Below(8));
    for (int m = 0; m < mutations; ++m) {
      const size_t at = rng.Below(text.size());
      switch (rng.Below(3)) {
        case 0:  // flip a byte
          text[at] = static_cast<char>(rng.Next() & 0xFF);
          break;
        case 1:  // delete a byte
          text.erase(at, 1);
          break;
        default:  // insert a byte
          text.insert(at, 1, static_cast<char>(rng.Next() & 0xFF));
          break;
      }
      if (text.empty()) text = "x";
    }
    const auto parsed = CheckpointStore::ParseManifest(text, "");
    if (!parsed.ok()) {
      EXPECT_NE(parsed.status().code(), StatusCode::kOk);
      continue;
    }
    // Survivors must still be internally consistent.
    EXPECT_EQ(parsed.value().format_version, CheckpointStore::kFormatVersion);
    for (const CheckpointRecord& record : parsed.value().records) {
      EXPECT_FALSE(record.phase.empty());
      EXPECT_EQ(record.phase.find_first_not_of(
                    "abcdefghijklmnopqrstuvwxyz0123456789_"),
                std::string::npos);
      EXPECT_GE(record.index, 0);
      EXPECT_FALSE(record.file.empty());
    }
  }
}

// Garbage that was never JSON: structured rejection, no crash.
TEST(ManifestFuzzTest, PureGarbageIsRejected) {
  Rng rng(0xBADF00D);
  for (int i = 0; i < 50; ++i) {
    std::string garbage(rng.Below(256) + 1, '\0');
    for (char& c : garbage) c = static_cast<char>(rng.Next() & 0xFF);
    const auto parsed = CheckpointStore::ParseManifest(garbage, "k");
    // A random byte string parsing as a valid manifest would be miraculous.
    ASSERT_FALSE(parsed.ok());
    EXPECT_NE(parsed.status().code(), StatusCode::kOk);
  }
}

TEST(ManifestFuzzTest, HostileFieldValuesAreRejected) {
  // Field-level skew a version bump or hand edit could produce.
  const std::vector<std::string> hostile = {
      // Not an object at all.
      R"([1, 2, 3])",
      R"("just a string")",
      // Missing required fields.
      R"({"format_version": 2})",
      R"({"job_key": "k", "tasks": []})",
      // Wrong types.
      R"({"format_version": "one", "job_key": "k", "tasks": []})",
      R"({"format_version": 2, "job_key": 7, "tasks": []})",
      R"({"format_version": 2, "job_key": "k", "tasks": 5})",
      // Bad records.
      R"({"format_version": 2, "job_key": "k",
          "tasks": [{"phase": "map"}]})",
      R"({"format_version": 2, "job_key": "k",
          "tasks": [{"phase": "Chaos!", "index": 0, "file": "f", "offset": 0,
                     "bytes": 1, "checksum": "00"}]})",
      R"({"format_version": 2, "job_key": "k",
          "tasks": [{"phase": "map", "index": -4, "file": "f", "offset": 0,
                     "bytes": 1, "checksum": "00"}]})",
      // Missing payload offset.
      R"({"format_version": 2, "job_key": "k",
          "tasks": [{"phase": "map", "index": 0, "file": "f",
                     "bytes": 1, "checksum": "00"}]})",
      // Checksum not hex.
      R"({"format_version": 2, "job_key": "k",
          "tasks": [{"phase": "map", "index": 0, "file": "f", "offset": 0,
                     "bytes": 1, "checksum": "zzzz"}]})",
      // Path escape in the payload file name.
      R"({"format_version": 2, "job_key": "k",
          "tasks": [{"phase": "map", "index": 0, "file": "../../etc/x",
                     "offset": 0, "bytes": 1,
                     "checksum": "00a9c1f3e5b70d42"}]})",
  };
  for (const std::string& text : hostile) {
    const auto parsed = CheckpointStore::ParseManifest(text, "k");
    ASSERT_FALSE(parsed.ok()) << text;
    EXPECT_NE(parsed.status().code(), StatusCode::kOk) << text;
  }
}

// ---------------------------------------------------------------------------
// Journal record lines under fuzz.

std::string ValidRecordLine() {
  return R"({"phase": "reduce", "index": 7, "file": "DATA.log",)"
         R"( "offset": 4096, "bytes": 128, "checksum": "00a9c1f3e5b70d42"})";
}

TEST(JournalFuzzTest, ValidRecordLineParses) {
  const auto parsed = CheckpointStore::ParseRecordLine(ValidRecordLine());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().phase, "reduce");
  EXPECT_EQ(parsed.value().index, 7);
  EXPECT_EQ(parsed.value().file, "DATA.log");
  EXPECT_EQ(parsed.value().offset, 4096u);
  EXPECT_EQ(parsed.value().bytes, 128u);
  EXPECT_EQ(parsed.value().checksum, 0x00a9c1f3e5b70d42ull);
}

// Every proper prefix of a record line is a torn append; none may parse.
TEST(JournalFuzzTest, TruncatedLinesNeverParse) {
  const std::string line = ValidRecordLine();
  for (size_t len = 0; len < line.size(); ++len) {
    const auto parsed = CheckpointStore::ParseRecordLine(line.substr(0, len));
    EXPECT_FALSE(parsed.ok()) << "torn prefix of length " << len << " parsed";
  }
}

// Random single-byte corruption of a journal line: structured rejection or a
// still-internally-consistent record, never UB.
TEST(JournalFuzzTest, RandomMutationsAreStructuredOrStillValid) {
  const std::string base = ValidRecordLine();
  Rng rng(0x10664);
  for (int i = 0; i < 200; ++i) {
    std::string mutated = base;
    const size_t pos = rng.Below(mutated.size());
    mutated[pos] = static_cast<char>(rng.Next() & 0xFF);
    const auto parsed = CheckpointStore::ParseRecordLine(mutated);
    if (!parsed.ok()) continue;
    EXPECT_FALSE(parsed.value().phase.empty());
    EXPECT_EQ(parsed.value().phase.find_first_not_of(
                  "abcdefghijklmnopqrstuvwxyz0123456789_"),
              std::string::npos);
    EXPECT_GE(parsed.value().index, 0);
    EXPECT_FALSE(parsed.value().file.empty());
  }
}

// ---------------------------------------------------------------------------
// Payload codec under fuzz.

std::string ValidPayload() {
  PayloadWriter writer;
  writer.U64(3);
  writer.F64Vec({1.5, -2.5, 4.0});
  writer.String("profile");
  writer.U8(1);
  writer.F64(0.25);
  return writer.Take();
}

Status DrainAsWritten(std::string_view bytes) {
  PayloadReader reader(bytes);
  uint64_t count = 0;
  DOD_RETURN_IF_ERROR(reader.U64(&count));
  std::vector<double> values;
  DOD_RETURN_IF_ERROR(reader.F64Vec(&values));
  std::string tag;
  DOD_RETURN_IF_ERROR(reader.String(&tag));
  uint8_t flag = 0;
  DOD_RETURN_IF_ERROR(reader.U8(&flag));
  double weight = 0.0;
  DOD_RETURN_IF_ERROR(reader.F64(&weight));
  return reader.ExpectDone();
}

// 100 seeded truncations: every strict prefix must fail somewhere in the
// read sequence — fixed-width reads leave no ambiguous prefix.
TEST(PayloadFuzzTest, EveryTruncationFails) {
  const std::string payload = ValidPayload();
  ASSERT_TRUE(DrainAsWritten(payload).ok());
  Rng rng(0xFEEDFACE);
  for (int i = 0; i < 100; ++i) {
    const size_t keep = rng.Below(payload.size());
    const Status status =
        DrainAsWritten(std::string_view(payload).substr(0, keep));
    ASSERT_FALSE(status.ok()) << "prefix of " << keep << " bytes drained";
    EXPECT_EQ(status.code(), StatusCode::kIoError);
  }
}

// 200 seeded mutations: a mutated payload either still drains (the flip
// landed in a value, not a length prefix) or fails structurally. Length
// prefixes are the attack surface — a corrupted count must never read out
// of bounds (ASan/UBSan CI leg would flag it).
TEST(PayloadFuzzTest, RandomMutationsNeverReadOutOfBounds) {
  const std::string base = ValidPayload();
  Rng rng(0xC0FFEE);
  for (int i = 0; i < 200; ++i) {
    std::string payload = base;
    const int mutations = 1 + static_cast<int>(rng.Below(4));
    for (int m = 0; m < mutations; ++m) {
      if (rng.Below(2) == 0 && payload.size() > 1) {
        payload.resize(payload.size() - 1 - rng.Below(payload.size() - 1));
      } else {
        payload[rng.Below(payload.size())] =
            static_cast<char>(rng.Next() & 0xFF);
      }
    }
    const Status status = DrainAsWritten(payload);
    if (!status.ok()) EXPECT_EQ(status.code(), StatusCode::kIoError);
  }
}

TEST(PayloadFuzzTest, OverflowingLengthPrefixIsRejected) {
  // A length prefix claiming more elements than bytes remain must fail
  // before any allocation explosion: count * sizeof(double) overflows or
  // overruns, both rejected.
  for (const uint64_t count :
       {uint64_t{1} << 62, uint64_t{0xFFFFFFFFFFFFFFFF}, uint64_t{1000}}) {
    PayloadWriter writer;
    writer.U64(count);
    writer.F64(1.0);  // far fewer bytes than `count` doubles
    PayloadReader reader(writer.str());
    std::vector<double> values;
    const Status status = reader.F64Vec(&values);
    ASSERT_FALSE(status.ok()) << count;
    EXPECT_EQ(status.code(), StatusCode::kIoError) << count;
    EXPECT_TRUE(values.empty());
  }
  PayloadWriter writer;
  writer.U32(0xFFFFFFFFu);
  PayloadReader reader(writer.str());
  std::string out;
  EXPECT_EQ(reader.String(&out).code(), StatusCode::kIoError);
}

TEST(PayloadFuzzTest, FailedReaderStaysFailed) {
  PayloadWriter writer;
  writer.U32(7);
  PayloadReader reader(writer.str());
  uint64_t wide = 0;
  ASSERT_FALSE(reader.U64(&wide).ok());  // 4 bytes can't fill a u64
  // The cursor did not advance into garbage; everything keeps failing.
  uint32_t narrow = 0;
  EXPECT_FALSE(reader.U32(&narrow).ok());
  EXPECT_FALSE(reader.ExpectDone().ok());
}

// ---------------------------------------------------------------------------
// Hostile stream snapshots: the v3 codec's watermark/reorder section is
// attacker-controlled state a restore must never trust. Every malformed
// record — duplicate ids, non-finite clocks/timestamps/coordinates, dims
// skew, arrival-sequence skew, source-order violations, truncations, random
// byte mutations — degrades into a structured Status, never UB or a
// silently admitted out-of-order block.

namespace fs = std::filesystem;

class StreamTempDir {
 public:
  explicit StreamTempDir(const std::string& name)
      : path_(fs::temp_directory_path() /
              (name + "-" + std::to_string(::getpid()))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~StreamTempDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

StreamingConfig HostileRestoreConfig(const std::string& dir) {
  StreamingConfig config;
  config.params.radius = 1.0;
  config.params.min_neighbors = 2;
  config.params.seed = 7;
  config.summaries = false;
  config.watermark.enabled = true;
  config.watermark.lateness = 5.0;
  config.checkpoint_dir = dir;
  return config;
}

// Knobs for hand-crafting a v3 snapshot; the defaults produce a valid one
// (one source window of two resident points, one buffered block).
struct V3Knobs {
  std::vector<uint32_t> window_sources = {0};
  std::vector<std::pair<uint32_t, double>> clocks = {{0, 10.0}};
  uint64_t pending_arrival = 2;
  double pending_ts = 9.0;
  double pending_coord = 6.0;
  uint32_t pending_dims = 2;
  std::vector<uint32_t> pending_ids = {7};
};

std::string V3StreamPayload(const V3Knobs& k) {
  PayloadWriter w;
  w.U32(3);  // version
  w.U64(1);  // round
  w.U64(1);  // next_seq
  w.U32(2);  // dims
  w.U8(0);   // no persisted summaries
  w.U64(k.window_sources.size());
  for (size_t s = 0; s < k.window_sources.size(); ++s) {
    w.U32(k.window_sources[s]);
    w.U8(1);      // saw_timestamp
    w.F64(8.0);   // high water
    if (s == 0) {
      // One block, two isolated resident points (ids 1 and 2).
      w.U64(1);
      w.U64(0);  // seq
      w.F64(8.0);
      w.U64(2);
      const double p1[2] = {0.0, 0.0};
      const double p2[2] = {50.0, 50.0};
      w.U32(1);
      w.Raw(p1, sizeof(p1));
      w.U32(2);
      w.Raw(p2, sizeof(p2));
    } else {
      w.U64(0);  // later sources carry no blocks
    }
  }
  w.U64(2);  // outliers
  w.U32(1);
  w.U32(2);
  // Watermark/reorder section.
  w.U64(3);   // arrivals
  w.U64(0);   // late_dropped
  w.U8(1);    // saw_arrival
  w.F64(10.0);  // global max ts
  w.U64(3);   // next_arrival
  w.U64(k.clocks.size());
  for (const auto& [source, clock] : k.clocks) {
    w.U32(source);
    w.F64(clock);
  }
  w.U64(1);  // one pending block
  w.U64(k.pending_arrival);
  w.U32(0);  // source
  w.F64(k.pending_ts);
  w.U32(k.pending_dims);
  w.U64(k.pending_ids.size());
  for (uint32_t id : k.pending_ids) {
    w.U32(id);
    std::vector<double> coords(k.pending_dims == 0 ? 2 : k.pending_dims,
                               k.pending_coord);
    w.Raw(coords.data(), sizeof(double) * coords.size());
  }
  return w.Take();
}

void CommitHostileSnapshot(const std::string& dir, const std::string& key,
                           const std::string& payload) {
  auto store = CheckpointStore::Open(dir, key, false);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_TRUE(store.value()->CommitTask("stream", 3, payload).ok());
  PayloadWriter latest;
  latest.U64(3);
  ASSERT_TRUE(store.value()->CommitTask("latest", 0, latest.str()).ok());
}

TEST(StreamSnapshotFuzzTest, ValidV3PayloadRestores) {
  StreamTempDir dir("dod-ckfuzz-stream-valid");
  const StreamingConfig base = HostileRestoreConfig(dir.str());
  CommitHostileSnapshot(dir.str(), StreamingDetector::JobKeyFor(base),
                        V3StreamPayload(V3Knobs{}));
  StreamingConfig config = base;
  config.resume = true;
  auto resumed = StreamingDetector::Create(config);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed.value()->rounds(), 1u);
  EXPECT_EQ(resumed.value()->arrivals(), 3u);
  EXPECT_EQ(resumed.value()->buffered_blocks(), 1u);
  EXPECT_EQ(resumed.value()->resident_points(), 2u);
}

TEST(StreamSnapshotFuzzTest, HostileReorderRecordsAreStructurallyRejected) {
  struct Case {
    const char* name;
    V3Knobs knobs;
  };
  std::vector<Case> cases;
  {
    Case c{"pending id duplicates a resident id", {}};
    c.knobs.pending_ids = {1};
    cases.push_back(c);
  }
  {
    Case c{"duplicate ids within the reorder buffer", {}};
    c.knobs.pending_ids = {7, 7};
    cases.push_back(c);
  }
  {
    Case c{"non-finite pending timestamp", {}};
    c.knobs.pending_ts = std::nan("");
    cases.push_back(c);
  }
  {
    Case c{"non-finite pending coordinate", {}};
    c.knobs.pending_coord = std::numeric_limits<double>::infinity();
    cases.push_back(c);
  }
  {
    Case c{"zero pending dims", {}};
    c.knobs.pending_dims = 0;
    cases.push_back(c);
  }
  {
    Case c{"pending dims disagree with the window", {}};
    c.knobs.pending_dims = 3;
    cases.push_back(c);
  }
  {
    Case c{"pending arrival beyond the arrival cursor", {}};
    c.knobs.pending_arrival = 5;  // >= persisted next_arrival of 3
    cases.push_back(c);
  }
  {
    Case c{"watermark clocks not strictly ascending", {}};
    c.knobs.clocks = {{0, 10.0}, {0, 4.0}};
    cases.push_back(c);
  }
  {
    Case c{"non-finite watermark clock", {}};
    c.knobs.clocks = {{0, std::nan("")}};
    cases.push_back(c);
  }
  {
    Case c{"window source ids not strictly ascending", {}};
    c.knobs.window_sources = {1, 1};
    cases.push_back(c);
  }

  StreamTempDir dir("dod-ckfuzz-stream-hostile");
  const StreamingConfig base = HostileRestoreConfig(dir.str());
  const std::string key = StreamingDetector::JobKeyFor(base);
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    CommitHostileSnapshot(dir.str(), key, V3StreamPayload(c.knobs));
    StreamingConfig config = base;
    config.resume = true;
    auto resumed = StreamingDetector::Create(config);
    ASSERT_FALSE(resumed.ok()) << c.name;
    EXPECT_NE(resumed.status().code(), StatusCode::kOk);
  }
}

// 60 seeded truncations: every strict prefix of a valid v3 snapshot fails
// somewhere in the fixed-width read sequence — never a partial restore.
TEST(StreamSnapshotFuzzTest, TruncatedSnapshotsNeverRestore) {
  const std::string payload = V3StreamPayload(V3Knobs{});
  StreamTempDir dir("dod-ckfuzz-stream-trunc");
  const StreamingConfig base = HostileRestoreConfig(dir.str());
  const std::string key = StreamingDetector::JobKeyFor(base);
  Rng rng(0x57E4);
  for (int i = 0; i < 60; ++i) {
    const size_t keep = rng.Below(payload.size());
    CommitHostileSnapshot(dir.str(), key, payload.substr(0, keep));
    StreamingConfig config = base;
    config.resume = true;
    auto resumed = StreamingDetector::Create(config);
    ASSERT_FALSE(resumed.ok()) << "prefix of " << keep << " bytes restored";
    EXPECT_NE(resumed.status().code(), StatusCode::kOk);
  }
}

// 80 seeded byte mutations: a flipped snapshot either still restores (the
// flip landed in a value) or fails with a structured Status — never UB
// (the ASan/UBSan CI leg runs this too).
TEST(StreamSnapshotFuzzTest, MutatedSnapshotsAreStructuredOrStillValid) {
  const std::string payload = V3StreamPayload(V3Knobs{});
  StreamTempDir dir("dod-ckfuzz-stream-mut");
  const StreamingConfig base = HostileRestoreConfig(dir.str());
  const std::string key = StreamingDetector::JobKeyFor(base);
  Rng rng(0xA40);
  for (int i = 0; i < 80; ++i) {
    std::string mutated = payload;
    const int flips = 1 + static_cast<int>(rng.Below(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.Below(mutated.size())] =
          static_cast<char>(rng.Next() & 0xFF);
    }
    CommitHostileSnapshot(dir.str(), key, mutated);
    StreamingConfig config = base;
    config.resume = true;
    auto resumed = StreamingDetector::Create(config);
    if (resumed.ok()) {
      // Survivors must be coherent enough to keep serving.
      (void)resumed.value()->buffered_blocks();
      (void)resumed.value()->outliers();
    } else {
      EXPECT_NE(resumed.status().code(), StatusCode::kOk);
    }
  }
}

TEST(PayloadFuzzTest, ChecksumDistinguishesEveryMutation) {
  // Property: FNV-1a over the payload changes under any single-byte flip —
  // this is what lets LoadTask reject corrupted records.
  const std::string payload = ValidPayload();
  const uint64_t reference = Fnv1a64(payload);
  Rng rng(0xABCD);
  for (int i = 0; i < 100; ++i) {
    std::string mutated = payload;
    const size_t at = rng.Below(mutated.size());
    const char flip = static_cast<char>(1 + rng.Below(255));
    mutated[at] = static_cast<char>(mutated[at] ^ flip);
    EXPECT_NE(Fnv1a64(mutated), reference) << "flip at " << at;
  }
}

}  // namespace
}  // namespace dod
