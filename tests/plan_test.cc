// Copyright 2026 The DOD Authors.
//
// The multi-tactic plan builder: partition/algorithm/allocation plan
// consistency for every strategy, the DMT per-partition algorithm
// selection, and the cost-based allocation balance.

#include "core/plan.h"

#include <gtest/gtest.h>

#include <set>

#include "common/stats.h"
#include "data/generators.h"
#include "data/geo_like.h"
#include "partition/sampler.h"

namespace dod {
namespace {

DistributionSketch SketchOf(const Dataset& data, int buckets = 32,
                            double rate = 0.5) {
  SamplerOptions options;
  options.rate = rate;
  options.buckets_per_dim = buckets;
  return BuildSketch(data, data.Bounds(), options);
}

void ExpectConsistent(const MultiTacticPlan& plan, const DodConfig& config) {
  const size_t m = plan.partition_plan.num_cells();
  EXPECT_TRUE(plan.partition_plan.Validate().ok());
  ASSERT_EQ(plan.algorithm_plan.size(), m);
  ASSERT_EQ(plan.allocation.size(), m);
  ASSERT_EQ(plan.estimated_cost.size(), m);
  for (size_t i = 0; i < m; ++i) {
    EXPECT_GE(plan.allocation[i], 0);
    EXPECT_LT(plan.allocation[i], config.num_reduce_tasks);
    EXPECT_GE(plan.estimated_cost[i], 0.0);
  }
}

TEST(PlanTest, BaselinePlansAreConsistent) {
  const Dataset data = GenerateGeoRegion(GeoRegion::kMassachusetts, 20000, 1);
  const DistributionSketch sketch = SketchOf(data);
  for (StrategyKind strategy :
       {StrategyKind::kDomain, StrategyKind::kUniSpace, StrategyKind::kDDriven,
        StrategyKind::kCDriven}) {
    for (AlgorithmKind algorithm :
         {AlgorithmKind::kNestedLoop, AlgorithmKind::kCellBased}) {
      DodConfig config =
          DodConfig::Baseline(DetectionParams{5.0, 4}, strategy, algorithm);
      const MultiTacticPlan plan = BuildMultiTacticPlan(sketch, config);
      ExpectConsistent(plan, config);
      // Baselines are monolithic: one algorithm everywhere.
      for (AlgorithmKind kind : plan.algorithm_plan) {
        EXPECT_EQ(kind, algorithm);
      }
      EXPECT_EQ(plan.uses_supporting_area,
                strategy != StrategyKind::kDomain);
    }
  }
}

TEST(PlanTest, DmtPlanIsConsistentAndMultiTactic) {
  // Hierarchical data mixes dense and sparse regions: the DMT algorithm
  // plan must actually use both detector classes.
  const Dataset data = GenerateHierarchical(MapLevel::kNewEngland, 10000, 3);
  const DistributionSketch sketch = SketchOf(data, 64);
  DodConfig config = DodConfig::Dmt(DetectionParams{5.0, 4});
  const MultiTacticPlan plan = BuildMultiTacticPlan(sketch, config);
  ExpectConsistent(plan, config);
  EXPECT_TRUE(plan.uses_supporting_area);

  std::set<AlgorithmKind> used(plan.algorithm_plan.begin(),
                               plan.algorithm_plan.end());
  EXPECT_EQ(used.size(), 2u) << "DMT should assign both NL and CB on skewed "
                                "multi-density data";
}

TEST(PlanTest, DmtAssignsCorollary43Choices) {
  const Dataset data = GenerateHierarchical(MapLevel::kNewEngland, 10000, 5);
  const DistributionSketch sketch = SketchOf(data, 64);
  DodConfig config = DodConfig::Dmt(DetectionParams{5.0, 4});
  const MultiTacticPlan plan = BuildMultiTacticPlan(sketch, config);
  // Re-derive each cell's stats and check the assignment matches the
  // selector (the planner uses the DSHC AFs; RegionStats agrees up to
  // rounding, so allow the boundary cells to differ).
  size_t agreements = 0;
  for (size_t i = 0; i < plan.partition_plan.num_cells(); ++i) {
    const PartitionStats stats = RegionStats(
        sketch, plan.partition_plan.cell(static_cast<uint32_t>(i)).bounds);
    if (plan.algorithm_plan[i] == SelectAlgorithm(stats, config.params)) {
      ++agreements;
    }
  }
  EXPECT_GT(agreements, plan.partition_plan.num_cells() * 9 / 10);
}

TEST(PlanTest, CostAllocationBalancesReducerLoads) {
  const Dataset data = GenerateHierarchical(MapLevel::kNewEngland, 10000, 7);
  const DistributionSketch sketch = SketchOf(data, 64);
  DodConfig config = DodConfig::Dmt(DetectionParams{5.0, 4});
  config.num_reduce_tasks = 8;
  const MultiTacticPlan plan = BuildMultiTacticPlan(sketch, config);
  const std::vector<double> loads = plan.ReducerLoads(8);
  EXPECT_EQ(loads.size(), 8u);
  // Cost-based packing balance is limited by the largest single partition:
  // the estimated makespan must be near max(mean load, biggest partition).
  const double mean = Mean(loads);
  const double biggest =
      *std::max_element(plan.estimated_cost.begin(),
                        plan.estimated_cost.end());
  EXPECT_LE(Max(loads), std::max(2.0 * mean, 1.01 * biggest));
}

TEST(PlanTest, RoundRobinAllocationForNonCostStrategies) {
  const Dataset data = GenerateUniform(10000, Rect::Cube(2, 0.0, 200.0), 9);
  const DistributionSketch sketch = SketchOf(data);
  DodConfig config = DodConfig::Baseline(
      DetectionParams{5.0, 4}, StrategyKind::kUniSpace,
      AlgorithmKind::kCellBased);
  config.num_reduce_tasks = 4;
  config.target_partitions = 16;
  const MultiTacticPlan plan = BuildMultiTacticPlan(sketch, config);
  for (size_t i = 0; i < plan.allocation.size(); ++i) {
    EXPECT_EQ(plan.allocation[i], static_cast<int>(i % 4));
  }
}

TEST(PlanTest, ConfigLabels) {
  EXPECT_EQ(DodConfig::Dmt(DetectionParams{1.0, 1}).Label(), "DMT");
  EXPECT_EQ(DodConfig::Baseline(DetectionParams{1.0, 1},
                                StrategyKind::kCDriven,
                                AlgorithmKind::kNestedLoop)
                .Label(),
            "CDriven + Nested-Loop");
  EXPECT_STREQ(StrategyKindName(StrategyKind::kDDriven), "DDriven");
}

}  // namespace
}  // namespace dod
