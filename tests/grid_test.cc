// Copyright 2026 The DOD Authors.

#include "detection/grid.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace dod {
namespace {

TEST(CellCoordTest, EqualityAndHash) {
  CellCoord a{{1, 2}, 2};
  CellCoord b{{1, 2}, 2};
  CellCoord c{{1, 3}, 2};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  CellCoordHash hash;
  EXPECT_EQ(hash(a), hash(b));
}

TEST(SparseGridTest, CoordOfUsesFloor) {
  SparseGrid grid(Point{0.0, 0.0}, 1.0);
  const double p1[2] = {0.5, 0.5};
  const double p2[2] = {-0.5, 1.5};
  const CellCoord c1 = grid.CoordOf(p1);
  EXPECT_EQ(c1.c[0], 0);
  EXPECT_EQ(c1.c[1], 0);
  const CellCoord c2 = grid.CoordOf(p2);
  EXPECT_EQ(c2.c[0], -1);
  EXPECT_EQ(c2.c[1], 1);
}

TEST(SparseGridTest, InsertGroupsPointsByCell) {
  SparseGrid grid(Point{0.0, 0.0}, 1.0);
  const double a[2] = {0.1, 0.1};
  const double b[2] = {0.9, 0.9};
  const double c[2] = {1.1, 0.1};
  grid.Insert(a, 0);
  grid.Insert(b, 1);
  grid.Insert(c, 2);
  EXPECT_EQ(grid.cells().size(), 2u);
  const SparseGrid::Cell* cell = grid.Find(grid.CoordOf(a));
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->points, (std::vector<uint32_t>{0, 1}));
}

TEST(SparseGridTest, FindReturnsNullForEmptyCell) {
  SparseGrid grid(Point{0.0, 0.0}, 1.0);
  CellCoord far{{100, 100}, 2};
  EXPECT_EQ(grid.Find(far), nullptr);
}

TEST(SparseGridTest, CountBlockCountsNeighborhood) {
  SparseGrid grid(Point{0.0, 0.0}, 1.0);
  // One point per cell in a 5x5 patch.
  uint32_t id = 0;
  for (int x = 0; x < 5; ++x) {
    for (int y = 0; y < 5; ++y) {
      const double p[2] = {x + 0.5, y + 0.5};
      grid.Insert(p, id++);
    }
  }
  const double center[2] = {2.5, 2.5};
  const CellCoord cc = grid.CoordOf(center);
  EXPECT_EQ(grid.CountBlock(cc, 0), 1u);
  EXPECT_EQ(grid.CountBlock(cc, 1), 9u);
  EXPECT_EQ(grid.CountBlock(cc, 2), 25u);
  EXPECT_EQ(grid.CountBlock(cc, 3), 25u);  // nothing beyond the patch
}

TEST(SparseGridTest, ForEachCellInBlockRespectsMinRing) {
  SparseGrid grid(Point{0.0, 0.0}, 1.0);
  uint32_t id = 0;
  for (int x = 0; x < 5; ++x) {
    for (int y = 0; y < 5; ++y) {
      const double p[2] = {x + 0.5, y + 0.5};
      grid.Insert(p, id++);
    }
  }
  const double center[2] = {2.5, 2.5};
  size_t ring2_count = 0;
  grid.ForEachCellInBlock(grid.CoordOf(center), 2, 2,
                          [&](const SparseGrid::Cell& cell) {
                            ring2_count += cell.points.size();
                          });
  EXPECT_EQ(ring2_count, 16u);  // 5x5 minus 3x3
}

TEST(SparseGridTest, CountBlockMatchesBruteForceOnRandomData) {
  const Dataset data = GenerateUniform(500, Rect::Cube(2, 0.0, 20.0), 99);
  const double side = 1.7;
  SparseGrid grid(data.Bounds().min(), side);
  for (uint32_t i = 0; i < data.size(); ++i) grid.Insert(data[i], i);

  for (const SparseGrid::Cell& cell : grid.cells()) {
    for (int ring = 0; ring <= 2; ++ring) {
      // Brute force: count points whose cell coords are within `ring` in
      // Chebyshev distance.
      size_t expected = 0;
      for (uint32_t i = 0; i < data.size(); ++i) {
        const CellCoord c = grid.CoordOf(data[i]);
        int cheby = 0;
        for (int d = 0; d < 2; ++d) {
          cheby = std::max(cheby, std::abs(c.c[d] - cell.coord.c[d]));
        }
        if (cheby <= ring) ++expected;
      }
      EXPECT_EQ(grid.CountBlock(cell.coord, ring), expected);
    }
  }
}

TEST(SparseGridTest, ThreeDimensionalBlocks) {
  SparseGrid grid(Point{0.0, 0.0, 0.0}, 1.0);
  uint32_t id = 0;
  for (int x = 0; x < 3; ++x) {
    for (int y = 0; y < 3; ++y) {
      for (int z = 0; z < 3; ++z) {
        const double p[3] = {x + 0.5, y + 0.5, z + 0.5};
        grid.Insert(p, id++);
      }
    }
  }
  const double center[3] = {1.5, 1.5, 1.5};
  EXPECT_EQ(grid.CountBlock(grid.CoordOf(center), 1), 27u);
}

}  // namespace
}  // namespace dod
