// Copyright 2026 The DOD Authors.
//
// Fault tolerance: deterministic fault injection, task attempts with retry
// and backoff, speculative execution, node blacklisting, and Status-based
// error propagation — at the engine level and through the full pipeline.

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "data/generators.h"
#include "detection/brute_force.h"
#include "mapreduce/job.h"

namespace dod {
namespace {

// ---------------------------------------------------------------------------
// Engine-level fixtures: the classic word-count-style job from
// mapreduce_job_test, now run under an adversarial injector.

class ModMapper : public Mapper<int, int> {
 public:
  explicit ModMapper(int per_split) : per_split_(per_split) {}

  void Map(size_t split_index, Emitter<int, int>& out) override {
    const int base = static_cast<int>(split_index) * per_split_;
    for (int v = base; v < base + per_split_; ++v) {
      out.Emit(v % 10, v);
    }
  }

 private:
  int per_split_;
};

struct KeyCount {
  int key;
  int count;
  bool operator==(const KeyCount& other) const {
    return key == other.key && count == other.count;
  }
};

class CountReducer : public Reducer<int, int, KeyCount> {
 public:
  void Reduce(const int& key, std::vector<int>& values,
              std::vector<KeyCount>& out, Counters& counters) override {
    out.push_back(KeyCount{key, static_cast<int>(values.size())});
    counters.Increment("groups_seen");
  }
};

JobSpec FaultFreeSpec(int reducers) {
  JobSpec spec;
  spec.num_reduce_tasks = reducers;
  spec.cluster = ClusterSpec::Local(4);
  return spec;
}

// Faults stop after `transient_attempts` attempts per task, so a retry
// budget above that always converges.
JobSpec TransientFaultSpec(int reducers, int transient_attempts) {
  JobSpec spec = FaultFreeSpec(reducers);
  spec.faults.enabled = true;
  spec.faults.seed = 7;
  spec.faults.max_faulty_attempts_per_task = transient_attempts;
  return spec;
}

JobOutput<KeyCount> RunCountJob(const JobSpec& spec) {
  ModMapper mapper(100);
  CountReducer reducer;
  return RunMapReduce<int, int, KeyCount>(
             /*num_splits=*/5, mapper, reducer,
             [](const int& key) { return key % 3; }, spec)
      .ValueOrDie();
}

Result<JobOutput<KeyCount>> TryCountJob(const JobSpec& spec) {
  ModMapper mapper(100);
  CountReducer reducer;
  return RunMapReduce<int, int, KeyCount>(
      /*num_splits=*/5, mapper, reducer,
      [](const int& key) { return key % 3; }, spec);
}

TEST(FaultToleranceTest, TransientTaskFailuresRetryToExactOutput) {
  const JobOutput<KeyCount> baseline = RunCountJob(FaultFreeSpec(3));

  JobSpec spec = TransientFaultSpec(3, /*transient_attempts=*/2);
  spec.faults.task_failure_prob = 1.0;  // first two attempts always crash
  spec.retry.max_task_attempts = 4;
  const JobOutput<KeyCount> job = RunCountJob(spec);

  EXPECT_EQ(job.output, baseline.output);
  EXPECT_EQ(job.stats.counters.Get("groups_seen"), 10u);
  // 5 map + 3 reduce tasks, each failing its first two attempts.
  EXPECT_EQ(job.stats.task_failures, 16u);
  EXPECT_EQ(job.stats.task_retries, 16u);
  EXPECT_EQ(job.stats.task_attempts, 24u);
  EXPECT_GT(job.stats.backoff_seconds, 0.0);
  // Every attempt occupies a slot, so the stage sees more costs than tasks.
  EXPECT_EQ(job.stats.map_task_seconds.size(), 15u);
}

TEST(FaultToleranceTest, ExhaustedRetriesReturnStructuredErrorNotAbort) {
  JobSpec spec = FaultFreeSpec(3);
  spec.faults.enabled = true;
  spec.faults.seed = 7;
  spec.faults.task_failure_prob = 1.0;  // every attempt fails, forever
  spec.retry.max_task_attempts = 3;

  const Result<JobOutput<KeyCount>> job = TryCountJob(spec);
  ASSERT_FALSE(job.ok());
  EXPECT_EQ(job.status().code(), StatusCode::kUnavailable);
  // The error names the task, the attempt count, and the fault kind.
  const std::string message(job.status().message());
  EXPECT_NE(message.find("map task 0"), std::string::npos) << message;
  EXPECT_NE(message.find("failed after 3 attempts"), std::string::npos)
      << message;
  EXPECT_NE(message.find("task-failure"), std::string::npos) << message;
}

TEST(FaultToleranceTest, UserTryMapStatusPropagatesWithTaskContext) {
  class PoisonSplitMapper : public Mapper<int, int> {
   public:
    Status TryMap(size_t split_index, Emitter<int, int>& out) override {
      if (split_index == 2) return Status::Internal("checksum mismatch");
      out.Emit(static_cast<int>(split_index), 1);
      return Status::Ok();
    }
  };
  PoisonSplitMapper mapper;
  CountReducer reducer;
  JobSpec spec = FaultFreeSpec(2);
  spec.retry.max_task_attempts = 2;
  const auto job = RunMapReduce<int, int, KeyCount>(
      4, mapper, reducer, [](const int&) { return 0; }, spec);
  ASSERT_FALSE(job.ok());
  EXPECT_EQ(job.status().code(), StatusCode::kInternal);
  const std::string message(job.status().message());
  EXPECT_NE(message.find("map task 2"), std::string::npos) << message;
  EXPECT_NE(message.find("checksum mismatch"), std::string::npos) << message;
}

TEST(FaultToleranceTest, StragglerTriggersSpeculativeExecution) {
  const JobOutput<KeyCount> baseline = RunCountJob(FaultFreeSpec(3));

  JobSpec spec = TransientFaultSpec(3, /*transient_attempts=*/1);
  spec.faults.straggler_prob = 1.0;
  spec.faults.straggler_multiplier = 4.0;  // above the 1.5 threshold
  const JobOutput<KeyCount> job = RunCountJob(spec);

  EXPECT_EQ(job.output, baseline.output);
  // Every first attempt straggles → every task launches a duplicate.
  EXPECT_EQ(job.stats.speculative_attempts, 8u);
  EXPECT_LE(job.stats.speculative_wins, job.stats.speculative_attempts);
  EXPECT_EQ(job.stats.task_failures, 0u);
  // Both the straggler and its duplicate occupy slots (Hadoop semantics).
  EXPECT_EQ(job.stats.map_task_seconds.size(), 10u);
}

TEST(FaultToleranceTest, SpeculationCanBeDisabled) {
  JobSpec spec = TransientFaultSpec(3, /*transient_attempts=*/1);
  spec.faults.straggler_prob = 1.0;
  spec.retry.speculative_execution = false;
  const JobOutput<KeyCount> job = RunCountJob(spec);
  EXPECT_EQ(job.stats.speculative_attempts, 0u);
  EXPECT_EQ(job.stats.map_task_seconds.size(), 5u);
}

TEST(FaultToleranceTest, ShuffleDropPoisonsAttemptAndRecovers) {
  const JobOutput<KeyCount> baseline = RunCountJob(FaultFreeSpec(3));

  JobSpec spec = TransientFaultSpec(3, /*transient_attempts=*/1);
  spec.faults.shuffle_drop_prob = 0.05;  // ~5 of 100 records per map attempt
  const JobOutput<KeyCount> job = RunCountJob(spec);

  // Committed output is exact: poisoned attempts were discarded wholesale.
  EXPECT_EQ(job.output, baseline.output);
  EXPECT_GT(job.stats.shuffle_records_dropped, 0u);
  EXPECT_GT(job.stats.task_failures, 0u);
  EXPECT_EQ(job.stats.records_shuffled, 500u);
}

TEST(FaultToleranceTest, ShuffleCorruptionPoisonsAttemptAndRecovers) {
  const JobOutput<KeyCount> baseline = RunCountJob(FaultFreeSpec(3));

  JobSpec spec = TransientFaultSpec(3, /*transient_attempts=*/1);
  spec.faults.shuffle_corrupt_prob = 0.05;
  const JobOutput<KeyCount> job = RunCountJob(spec);

  EXPECT_EQ(job.output, baseline.output);
  EXPECT_GT(job.stats.shuffle_records_corrupted, 0u);
  EXPECT_EQ(job.output.size(), baseline.output.size());
}

TEST(FaultToleranceTest, FailingNodesAreBlacklisted) {
  ModMapper mapper(50);
  CountReducer reducer;
  JobSpec spec;
  spec.num_reduce_tasks = 4;
  spec.cluster.num_nodes = 4;
  spec.cluster.map_slots_per_node = 2;
  spec.cluster.reduce_slots_per_node = 2;
  spec.faults.enabled = true;
  spec.faults.seed = 11;
  spec.faults.task_failure_prob = 1.0;
  spec.faults.max_faulty_attempts_per_task = 1;
  spec.retry.max_task_attempts = 4;
  spec.retry.node_failure_quota = 2;

  const auto job = RunMapReduce<int, int, KeyCount>(
                       12, mapper, reducer,
                       [](const int& key) { return key % 4; }, spec)
                       .ValueOrDie();
  // 16 task failures over 4 nodes with quota 2 → someone gets blacklisted,
  // yet the job still completes on the surviving slots.
  EXPECT_GT(job.stats.nodes_blacklisted, 0u);
  EXPECT_EQ(job.stats.groups_reduced, 10u);
}

TEST(FaultToleranceTest, IdenticalSeedsGiveIdenticalFaultSchedules) {
  JobSpec spec = TransientFaultSpec(3, /*transient_attempts=*/2);
  spec.faults.task_failure_prob = 0.4;
  spec.faults.straggler_prob = 0.3;
  spec.faults.shuffle_drop_prob = 0.01;
  spec.retry.max_task_attempts = 5;

  const JobOutput<KeyCount> a = RunCountJob(spec);
  const JobOutput<KeyCount> b = RunCountJob(spec);
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.stats.task_attempts, b.stats.task_attempts);
  EXPECT_EQ(a.stats.task_failures, b.stats.task_failures);
  EXPECT_EQ(a.stats.task_retries, b.stats.task_retries);
  EXPECT_EQ(a.stats.speculative_attempts, b.stats.speculative_attempts);
  EXPECT_EQ(a.stats.speculative_wins, b.stats.speculative_wins);
  EXPECT_EQ(a.stats.shuffle_records_dropped, b.stats.shuffle_records_dropped);
  EXPECT_EQ(a.stats.shuffle_records_corrupted,
            b.stats.shuffle_records_corrupted);
  EXPECT_EQ(a.stats.nodes_blacklisted, b.stats.nodes_blacklisted);
  EXPECT_DOUBLE_EQ(a.stats.backoff_seconds, b.stats.backoff_seconds);
}

// ---------------------------------------------------------------------------
// Parallel determinism under faults: for every fault-injection kind, a run
// on N worker threads must commit byte-identical output, counters, and
// fault accounting to the sequential run. (nodes_blacklisted is excluded:
// injected *faults* are pure hashes of (seed, phase, task, attempt), but
// node *placement* probes the blacklist at attempt start, which is
// interleaving-sensitive — it affects no committed output.)

JobSpec WithThreads(JobSpec spec, int num_threads) {
  spec.num_threads = num_threads;
  return spec;
}

void ExpectSameCommittedResults(const JobOutput<KeyCount>& sequential,
                                const JobOutput<KeyCount>& parallel,
                                const std::string& label) {
  EXPECT_EQ(parallel.output, sequential.output) << label;
  EXPECT_EQ(parallel.stats.counters.values(),
            sequential.stats.counters.values())
      << label;
  EXPECT_EQ(parallel.stats.records_shuffled, sequential.stats.records_shuffled)
      << label;
  EXPECT_EQ(parallel.stats.groups_reduced, sequential.stats.groups_reduced)
      << label;
  EXPECT_EQ(parallel.stats.task_attempts, sequential.stats.task_attempts)
      << label;
  EXPECT_EQ(parallel.stats.task_failures, sequential.stats.task_failures)
      << label;
  EXPECT_EQ(parallel.stats.task_retries, sequential.stats.task_retries)
      << label;
  EXPECT_EQ(parallel.stats.speculative_attempts,
            sequential.stats.speculative_attempts)
      << label;
  EXPECT_EQ(parallel.stats.speculative_wins, sequential.stats.speculative_wins)
      << label;
  EXPECT_EQ(parallel.stats.shuffle_records_dropped,
            sequential.stats.shuffle_records_dropped)
      << label;
  EXPECT_EQ(parallel.stats.shuffle_records_corrupted,
            sequential.stats.shuffle_records_corrupted)
      << label;
  EXPECT_DOUBLE_EQ(parallel.stats.backoff_seconds,
                   sequential.stats.backoff_seconds)
      << label;
  // Per-slot costs are measured attempt durations — values vary run to run,
  // but the attempt schedule (and hence slot count) is thread-invariant.
  EXPECT_EQ(parallel.stats.map_task_seconds.size(),
            sequential.stats.map_task_seconds.size())
      << label;
  EXPECT_EQ(parallel.stats.reduce_task_seconds.size(),
            sequential.stats.reduce_task_seconds.size())
      << label;
}

TEST(ParallelFaultDeterminismTest, EveryFaultKindCommitsIdentically) {
  struct Scenario {
    const char* name;
    JobSpec spec;
  };
  std::vector<Scenario> scenarios;

  {
    JobSpec crash = TransientFaultSpec(3, /*transient_attempts=*/2);
    crash.faults.task_failure_prob = 1.0;
    crash.retry.max_task_attempts = 4;
    scenarios.push_back({"task-failure", crash});
  }
  {
    JobSpec straggle = TransientFaultSpec(3, /*transient_attempts=*/1);
    straggle.faults.straggler_prob = 1.0;
    straggle.faults.straggler_multiplier = 4.0;
    scenarios.push_back({"straggler+speculation", straggle});
  }
  {
    JobSpec drop = TransientFaultSpec(3, /*transient_attempts=*/1);
    drop.faults.shuffle_drop_prob = 0.05;
    scenarios.push_back({"shuffle-drop", drop});
  }
  {
    JobSpec corrupt = TransientFaultSpec(3, /*transient_attempts=*/1);
    corrupt.faults.shuffle_corrupt_prob = 0.05;
    scenarios.push_back({"shuffle-corrupt", corrupt});
  }
  {
    JobSpec mixed = TransientFaultSpec(3, /*transient_attempts=*/2);
    mixed.faults.task_failure_prob = 0.4;
    mixed.faults.straggler_prob = 0.3;
    mixed.faults.straggler_multiplier = 4.0;
    mixed.faults.shuffle_drop_prob = 0.01;
    mixed.faults.shuffle_corrupt_prob = 0.01;
    mixed.retry.max_task_attempts = 5;
    scenarios.push_back({"mixed", mixed});
  }

  for (const Scenario& scenario : scenarios) {
    const JobOutput<KeyCount> sequential =
        RunCountJob(WithThreads(scenario.spec, 1));
    ASSERT_GT(sequential.stats.task_attempts, 8u) << scenario.name;
    for (int threads : {2, 8}) {
      const JobOutput<KeyCount> parallel =
          RunCountJob(WithThreads(scenario.spec, threads));
      ExpectSameCommittedResults(
          sequential, parallel,
          std::string(scenario.name) + " @ " + std::to_string(threads) +
              " threads");
    }
  }
}

TEST(ParallelFaultDeterminismTest, ExhaustedRetriesFailIdenticallyInParallel) {
  JobSpec spec = FaultFreeSpec(3);
  spec.faults.enabled = true;
  spec.faults.seed = 7;
  spec.faults.task_failure_prob = 1.0;  // permanent
  spec.retry.max_task_attempts = 3;

  const Result<JobOutput<KeyCount>> sequential =
      TryCountJob(WithThreads(spec, 1));
  ASSERT_FALSE(sequential.ok());
  for (int threads : {2, 8}) {
    const Result<JobOutput<KeyCount>> parallel =
        TryCountJob(WithThreads(spec, threads));
    ASSERT_FALSE(parallel.ok());
    EXPECT_EQ(parallel.status().code(), sequential.status().code());
    // Every map task fails permanently; the committed error is always the
    // lowest-index task's, so the message matches the sequential run.
    EXPECT_EQ(std::string(parallel.status().message()),
              std::string(sequential.status().message()));
  }
}

// ---------------------------------------------------------------------------
// Pipeline-level: the acceptance-facing behaviors.

std::vector<PointId> GroundTruth(const Dataset& data,
                                 const DetectionParams& params) {
  BruteForceDetector oracle;
  std::vector<uint32_t> local =
      oracle.DetectOutliers(data, data.size(), params, nullptr);
  return std::vector<PointId>(local.begin(), local.end());
}

DodConfig SmallDmtConfig(const DetectionParams& params) {
  DodConfig config = DodConfig::Dmt(params);
  config.target_partitions = 16;
  config.num_reduce_tasks = 5;
  config.num_blocks = 7;
  config.sampler.rate = 0.2;
  config.sampler.buckets_per_dim = 16;
  return config;
}

TEST(PipelineFaultTest, EmptyDatasetIsInvalidArgumentNotAbort) {
  DetectionParams params{/*radius=*/5.0, /*min_neighbors=*/4};
  DodPipeline pipeline(SmallDmtConfig(params));
  const Result<DodResult> run = pipeline.Run(Dataset(2));
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(run.status().message().find("empty"), std::string::npos)
      << run.status().ToString();
}

TEST(PipelineFaultTest, ExactOutliersUnderTransientInjectedFailures) {
  DetectionParams params{/*radius=*/5.0, /*min_neighbors=*/4};
  const Dataset data = GenerateUniform(1500, DomainForDensity(1500, 0.05), 7);
  const std::vector<PointId> expected = GroundTruth(data, params);

  DodConfig config = SmallDmtConfig(params);
  config.faults.enabled = true;
  config.faults.seed = 3;
  config.faults.task_failure_prob = 0.5;
  config.faults.shuffle_drop_prob = 0.002;
  config.faults.max_faulty_attempts_per_task = 2;
  config.retry.max_task_attempts = 5;

  DodPipeline pipeline(config);
  const Result<DodResult> run = pipeline.Run(data);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().outliers, expected);
  // The run actually had something to recover from.
  EXPECT_GT(run.value().detect_stats.task_failures, 0u);
  EXPECT_GT(run.value().detect_stats.task_retries, 0u);
}

TEST(PipelineFaultTest, ExhaustedRetriesSurfaceAsErrorNamingTheJob) {
  DetectionParams params{/*radius=*/5.0, /*min_neighbors=*/4};
  const Dataset data = GenerateUniform(500, DomainForDensity(500, 0.05), 7);

  DodConfig config = SmallDmtConfig(params);
  config.faults.enabled = true;
  config.faults.seed = 3;
  config.faults.task_failure_prob = 1.0;  // permanent: retries must exhaust
  config.retry.max_task_attempts = 3;

  DodPipeline pipeline(config);
  const Result<DodResult> run = pipeline.Run(data);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kUnavailable);
  const std::string message(run.status().message());
  EXPECT_NE(message.find("detection job"), std::string::npos) << message;
  EXPECT_NE(message.find("failed after 3 attempts"), std::string::npos)
      << message;
}

TEST(PipelineFaultTest, StragglersTriggerSpeculationVisibleInStats) {
  DetectionParams params{/*radius=*/5.0, /*min_neighbors=*/4};
  const Dataset data = GenerateUniform(1000, DomainForDensity(1000, 0.05), 7);
  const std::vector<PointId> expected = GroundTruth(data, params);

  DodConfig config = SmallDmtConfig(params);
  config.faults.enabled = true;
  config.faults.seed = 5;
  config.faults.straggler_prob = 0.6;
  config.faults.straggler_multiplier = 4.0;
  config.faults.max_faulty_attempts_per_task = 1;

  DodPipeline pipeline(config);
  const Result<DodResult> run = pipeline.Run(data);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().outliers, expected);
  EXPECT_GT(run.value().detect_stats.speculative_attempts, 0u);
}

TEST(PipelineFaultTest, IdenticalFaultSeedsGiveIdenticalStats) {
  DetectionParams params{/*radius=*/5.0, /*min_neighbors=*/4};
  const Dataset data = GenerateUniform(1200, DomainForDensity(1200, 0.05), 7);

  DodConfig config = SmallDmtConfig(params);
  config.faults.enabled = true;
  config.faults.seed = 17;
  config.faults.task_failure_prob = 0.4;
  config.faults.straggler_prob = 0.3;
  config.faults.shuffle_drop_prob = 0.001;
  config.faults.max_faulty_attempts_per_task = 2;
  config.retry.max_task_attempts = 5;

  DodPipeline pipeline(config);
  const Result<DodResult> a = pipeline.Run(data);
  const Result<DodResult> b = pipeline.Run(data);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  EXPECT_EQ(a.value().outliers, b.value().outliers);
  const JobStats& sa = a.value().detect_stats;
  const JobStats& sb = b.value().detect_stats;
  EXPECT_EQ(sa.task_attempts, sb.task_attempts);
  EXPECT_EQ(sa.task_failures, sb.task_failures);
  EXPECT_EQ(sa.task_retries, sb.task_retries);
  EXPECT_EQ(sa.speculative_attempts, sb.speculative_attempts);
  EXPECT_EQ(sa.speculative_wins, sb.speculative_wins);
  EXPECT_EQ(sa.shuffle_records_dropped, sb.shuffle_records_dropped);
  EXPECT_EQ(sa.shuffle_records_corrupted, sb.shuffle_records_corrupted);
  EXPECT_EQ(sa.nodes_blacklisted, sb.nodes_blacklisted);
  EXPECT_DOUBLE_EQ(sa.backoff_seconds, sb.backoff_seconds);
  // The stats line advertises the recovery work.
  EXPECT_NE(sa.ToString().find("attempts="), std::string::npos);
}

TEST(PipelineFaultTest, ThreadCountNeverChangesTheOutliersEvenUnderFaults) {
  DetectionParams params{/*radius=*/5.0, /*min_neighbors=*/4};
  const Dataset data = GenerateUniform(1500, DomainForDensity(1500, 0.05), 7);

  DodConfig config = SmallDmtConfig(params);
  config.faults.enabled = true;
  config.faults.seed = 3;
  config.faults.task_failure_prob = 0.5;
  config.faults.straggler_prob = 0.3;
  config.faults.straggler_multiplier = 4.0;
  config.faults.shuffle_drop_prob = 0.002;
  config.faults.max_faulty_attempts_per_task = 2;
  config.retry.max_task_attempts = 5;

  config.num_threads = 1;
  const Result<DodResult> sequential = DodPipeline(config).Run(data);
  ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
  EXPECT_EQ(sequential.value().detect_stats.threads_used, 1);
  EXPECT_GT(sequential.value().detect_stats.task_failures, 0u);

  for (int threads : {2, 8}) {
    config.num_threads = threads;
    const Result<DodResult> parallel = DodPipeline(config).Run(data);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_EQ(parallel.value().detect_stats.threads_used, threads);
    EXPECT_EQ(parallel.value().outliers, sequential.value().outliers)
        << threads << " threads";
    const JobStats& s = sequential.value().detect_stats;
    const JobStats& p = parallel.value().detect_stats;
    EXPECT_EQ(p.task_attempts, s.task_attempts);
    EXPECT_EQ(p.task_failures, s.task_failures);
    EXPECT_EQ(p.speculative_attempts, s.speculative_attempts);
    EXPECT_EQ(p.counters.values(), s.counters.values());
  }
}

}  // namespace
}  // namespace dod
