// Copyright 2026 The DOD Authors.

#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace dod {
namespace {

TEST(SplitMix64Test, DeterministicSequence) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextUniformRespectsRange) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextUniform(-3.0, 5.5);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.5);
  }
}

TEST(RngTest, NextBoundedStaysBelowBound) {
  Rng rng(13);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1ULL << 40}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedCoversSmallRangeUniformly) {
  Rng rng(17);
  const uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.NextBounded(bound)];
  // Each bucket should be within 10% of the expectation.
  for (uint64_t v = 0; v < bound; ++v) {
    EXPECT_NEAR(counts[v], trials / static_cast<int>(bound),
                trials / static_cast<int>(bound) / 10);
  }
}

TEST(RngTest, GaussianMomentsAreSane) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, BernoulliRateMatches) {
  Rng rng(23);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(ShuffleTest, ProducesPermutation) {
  Rng rng(29);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  Shuffle(shuffled, rng);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RandomPermutationTest, ContainsEveryIndexOnce) {
  Rng rng(31);
  const std::vector<uint32_t> perm = RandomPermutation(1000, rng);
  std::set<uint32_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 1000u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 999u);
}

TEST(RandomPermutationTest, EmptyAndSingleton) {
  Rng rng(37);
  EXPECT_TRUE(RandomPermutation(0, rng).empty());
  EXPECT_EQ(RandomPermutation(1, rng), std::vector<uint32_t>{0});
}

}  // namespace
}  // namespace dod
