// Copyright 2026 The DOD Authors.

#include "detection/pivot.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "data/tiger_like.h"
#include "detection/brute_force.h"

namespace dod {
namespace {

std::vector<uint32_t> Oracle(const Dataset& data, size_t num_core,
                             const DetectionParams& params) {
  BruteForceDetector oracle;
  return oracle.DetectOutliers(data, num_core, params, nullptr);
}

TEST(PivotDetectorTest, MatchesOracleAcrossDensities) {
  DetectionParams params{5.0, 4};
  PivotDetector detector(4);
  for (double density : {0.005, 0.05, 0.3, 1.5}) {
    const Dataset data =
        GenerateUniform(1200, DomainForDensity(1200, density), 77);
    EXPECT_EQ(detector.DetectOutliers(data, data.size(), params),
              Oracle(data, data.size(), params))
        << "density " << density;
  }
}

TEST(PivotDetectorTest, MatchesOracleOnClusteredData) {
  DetectionParams params{5.0, 4};
  SettlementProfile profile;
  const Dataset data =
      GenerateSettlements(2000, DomainForDensity(2000, 0.05), profile, 79);
  PivotDetector detector(6);
  EXPECT_EQ(detector.DetectOutliers(data, data.size(), params),
            Oracle(data, data.size(), params));
}

TEST(PivotDetectorTest, RespectsSupportPointSemantics) {
  DetectionParams params{5.0, 4};
  const Dataset data = GenerateTigerLike(1500, 81);
  const size_t num_core = data.size() * 3 / 4;
  PivotDetector detector(4);
  EXPECT_EQ(detector.DetectOutliers(data, num_core, params),
            Oracle(data, num_core, params));
}

TEST(PivotDetectorTest, PivotCountDoesNotChangeResults) {
  DetectionParams params{5.0, 4};
  const Dataset data =
      GenerateUniform(800, DomainForDensity(800, 0.08), 83);
  const std::vector<uint32_t> expected = Oracle(data, data.size(), params);
  for (int pivots : {1, 2, 8, 16}) {
    PivotDetector detector(pivots);
    EXPECT_EQ(detector.DetectOutliers(data, data.size(), params), expected)
        << pivots << " pivots";
  }
}

TEST(PivotDetectorTest, PrunesPairsOnSpreadData) {
  DetectionParams params{2.0, 4};
  const Dataset data =
      GenerateUniform(2000, DomainForDensity(2000, 0.01), 85);
  PivotDetector detector(4);
  Counters counters;
  detector.DetectOutliers(data, data.size(), params, &counters);
  // On a wide domain with a small radius, the triangle-inequality filter
  // must reject the overwhelming majority of candidate pairs.
  EXPECT_GT(counters.Get("pivot.pruned_pairs"),
            10 * counters.Get("pivot.distance_evals"));
}

TEST(PivotDetectorTest, EmptyAndTinyInputs) {
  DetectionParams params{5.0, 4};
  PivotDetector detector(4);
  Dataset empty(2);
  EXPECT_TRUE(detector.DetectOutliers(empty, 0, params).empty());
  Dataset one(2);
  one.Append(Point{1.0, 2.0});
  EXPECT_EQ(detector.DetectOutliers(one, 1, params),
            (std::vector<uint32_t>{0}));
}

TEST(PivotDetectorTest, MorePivotsThanPointsIsSafe) {
  DetectionParams params{5.0, 1};
  PivotDetector detector(16);
  Dataset data(2);
  data.Append(Point{0.0, 0.0});
  data.Append(Point{1.0, 0.0});
  EXPECT_TRUE(detector.DetectOutliers(data, 2, params).empty());
}

}  // namespace
}  // namespace dod
