// Copyright 2026 The DOD Authors.

#include "io/binary.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>

#include "data/generators.h"

namespace dod {
namespace {

class BinaryIoTest : public testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/dod_binary_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(BinaryIoTest, RoundTripIsBitExact) {
  const Dataset original =
      GenerateUniform(4000, Rect::Cube(3, -1e6, 1e6), 42);
  ASSERT_TRUE(WriteBinary(original, path_).ok());
  Result<Dataset> read = ReadBinary(path_);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().dims(), 3);
  EXPECT_EQ(read.value().raw(), original.raw());
}

TEST_F(BinaryIoTest, EmptyDatasetRoundTrips) {
  Dataset empty(2);
  ASSERT_TRUE(WriteBinary(empty, path_).ok());
  Result<Dataset> read = ReadBinary(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().empty());
  EXPECT_EQ(read.value().dims(), 2);
}

TEST_F(BinaryIoTest, RejectsWrongMagic) {
  std::ofstream out(path_, std::ios::binary);
  out << "NOTADODFILE and some payload";
  out.close();
  Result<Dataset> read = ReadBinary(path_);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(BinaryIoTest, RejectsTruncatedPayload) {
  const Dataset original = GenerateUniform(100, Rect::Cube(2, 0.0, 1.0), 7);
  ASSERT_TRUE(WriteBinary(original, path_).ok());
  // Chop the last 16 bytes.
  std::ifstream in(path_, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size() - 16));
  out.close();
  EXPECT_FALSE(ReadBinary(path_).ok());
}

TEST_F(BinaryIoTest, RejectsTrailingGarbage) {
  const Dataset original = GenerateUniform(50, Rect::Cube(2, 0.0, 1.0), 9);
  ASSERT_TRUE(WriteBinary(original, path_).ok());
  std::ofstream out(path_, std::ios::binary | std::ios::app);
  out << "extra";
  out.close();
  EXPECT_FALSE(ReadBinary(path_).ok());
}

TEST_F(BinaryIoTest, RejectsNonFinitePayloadValues) {
  // NaN bit patterns round-trip perfectly through the raw-double payload,
  // so the reader has to reject them by value.
  Dataset poisoned(2);
  poisoned.Append(Point{1.0, 2.0});
  poisoned.Append(Point{std::numeric_limits<double>::quiet_NaN(), 0.0});
  ASSERT_TRUE(WriteBinary(poisoned, path_).ok());
  const Result<Dataset> read = ReadBinary(path_);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(BinaryIoTest, MissingFileIsIoError) {
  Result<Dataset> read = ReadBinary("/nonexistent/data.bin");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace dod
