// Copyright 2026 The DOD Authors.
//
// The recursive weighted bisection behind DDriven / CDriven: results must
// tile the domain exactly and balance the requested weight.

#include "partition/bisect.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "data/generators.h"
#include "partition/partition_plan.h"
#include "partition/sampler.h"

namespace dod {
namespace {

BucketAuxFn NoAux() {
  return [](double, const Rect&) { return 0.0; };
}

RegionCostFn CountWeight() {
  return [](double cardinality, double, const Rect&) { return cardinality; };
}

// Validates tiling by wrapping the rects into a PartitionPlan.
void ExpectTilesDomain(const std::vector<Rect>& rects, const Rect& domain) {
  const PartitionPlan plan(domain, 1.0, rects);
  EXPECT_TRUE(plan.Validate().ok()) << plan.Validate().ToString();
}

TEST(WeightedBisectTest, SingleRegionIsWholeDomain) {
  MiniBucketGrid grid(Rect::Cube(2, 0.0, 10.0), 8);
  const std::vector<Rect> rects = WeightedBisect(grid, 1.0, 1, NoAux(), CountWeight());
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_EQ(rects[0], grid.domain());
}

TEST(WeightedBisectTest, ProducesRequestedRegionCount) {
  const Dataset data = GenerateUniform(5000, Rect::Cube(2, 0.0, 100.0), 1);
  SamplerOptions options;
  options.rate = 1.0;
  options.buckets_per_dim = 16;
  const DistributionSketch sketch = BuildSketch(data, data.Bounds(), options);
  for (size_t m : {2, 3, 7, 16, 33}) {
    const std::vector<Rect> rects =
        WeightedBisect(sketch.grid, sketch.Scale(), m, NoAux(), CountWeight());
    EXPECT_EQ(rects.size(), m);
    ExpectTilesDomain(rects, sketch.grid.domain());
  }
}

TEST(WeightedBisectTest, BalancesUniformWeight) {
  const Dataset data = GenerateUniform(20000, Rect::Cube(2, 0.0, 100.0), 2);
  SamplerOptions options;
  options.rate = 1.0;
  options.buckets_per_dim = 32;
  const DistributionSketch sketch = BuildSketch(data, data.Bounds(), options);
  const std::vector<Rect> rects =
      WeightedBisect(sketch.grid, sketch.Scale(), 8, NoAux(), CountWeight());
  std::vector<double> loads;
  for (const Rect& rect : rects) {
    loads.push_back(
        static_cast<double>(RegionStats(sketch, rect).cardinality));
  }
  EXPECT_LT(ImbalanceFactor(loads), 1.3);
}

TEST(WeightedBisectTest, BalancesSkewedWeight) {
  // 90% of mass in one corner: bisection must still balance counts.
  Dataset data(2);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    if (i < 18000) {
      data.Append(Point{rng.NextUniform(0.0, 10.0), rng.NextUniform(0.0, 10.0)});
    } else {
      data.Append(
          Point{rng.NextUniform(0.0, 100.0), rng.NextUniform(0.0, 100.0)});
    }
  }
  SamplerOptions options;
  options.rate = 1.0;
  options.buckets_per_dim = 64;
  const DistributionSketch sketch =
      BuildSketch(data, Rect::Cube(2, 0.0, 100.0), options);
  const std::vector<Rect> rects =
      WeightedBisect(sketch.grid, sketch.Scale(), 16, NoAux(), CountWeight());
  ExpectTilesDomain(rects, sketch.grid.domain());
  std::vector<double> loads;
  for (const Rect& rect : rects) {
    loads.push_back(
        static_cast<double>(RegionStats(sketch, rect).cardinality));
  }
  // Resolution-limited, but far better than the 16x imbalance of an
  // equi-width grid on this data.
  EXPECT_LT(ImbalanceFactor(loads), 2.0);
}

TEST(WeightedBisectTest, EmptyGridStillTiles) {
  MiniBucketGrid grid(Rect::Cube(2, 0.0, 10.0), 8);
  const std::vector<Rect> rects = WeightedBisect(grid, 1.0, 4, NoAux(), CountWeight());
  EXPECT_EQ(rects.size(), 4u);
  ExpectTilesDomain(rects, grid.domain());
}

TEST(WeightedBisectTest, ResolutionLimitsRegionCount) {
  // A 2x2 bucket grid cannot produce more than 4 regions.
  MiniBucketGrid grid(Rect::Cube(2, 0.0, 10.0), 2);
  const double p[2] = {1.0, 1.0};
  grid.Add(p);
  const std::vector<Rect> rects = WeightedBisect(grid, 1.0, 10, NoAux(), CountWeight());
  EXPECT_EQ(rects.size(), 4u);
  ExpectTilesDomain(rects, grid.domain());
}

TEST(WeightedBisectTest, RegionCostFunctionIsHonored) {
  // Cost only the right half of the domain; the cut between the two
  // regions must land at or beyond x=5 so that costs can balance.
  MiniBucketGrid grid(Rect::Cube(2, 0.0, 10.0), 10);
  CellCoord c;
  c.dims = 2;
  for (int x = 0; x < 10; ++x) {
    for (int y = 0; y < 10; ++y) {
      c.c[0] = x;
      c.c[1] = y;
      grid.AddAt(c, x >= 5 ? 1.0 : 0.0);
    }
  }
  const std::vector<Rect> rects =
      WeightedBisect(grid, 1.0, 2, NoAux(), CountWeight());
  ASSERT_EQ(rects.size(), 2u);
  const double cut = std::max(rects[0].lo(0), rects[1].lo(0));
  EXPECT_GE(cut, 5.0);
  ExpectTilesDomain(rects, grid.domain());
}

TEST(WeightedBisectTest, NonAdditiveRegionCostStillTilesAndBalances) {
  // A superlinear (quadratic) region cost: the split choice changes but
  // structural guarantees must hold.
  const Dataset data = GenerateUniform(10000, Rect::Cube(2, 0.0, 100.0), 4);
  SamplerOptions options;
  options.rate = 1.0;
  options.buckets_per_dim = 32;
  const DistributionSketch sketch = BuildSketch(data, data.Bounds(), options);
  const std::vector<Rect> rects = WeightedBisect(
      sketch.grid, sketch.Scale(), 8, NoAux(),
      [](double cardinality, double, const Rect&) {
        return cardinality * cardinality;
      });
  EXPECT_EQ(rects.size(), 8u);
  ExpectTilesDomain(rects, sketch.grid.domain());
}

}  // namespace
}  // namespace dod
