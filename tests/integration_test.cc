// Copyright 2026 The DOD Authors.
//
// Cross-module integration: randomized end-to-end sweeps (pipeline vs
// oracle under random configurations), CSV → pipeline → CSV round trips,
// plan save/replay, and dimensionality sweeps for the detectors.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/evaluation.h"
#include "core/pipeline.h"
#include "core/plan_io.h"
#include "data/generators.h"
#include "detection/brute_force.h"
#include "detection/cell_based.h"
#include "detection/nested_loop.h"
#include "io/csv.h"

namespace dod {
namespace {

std::vector<PointId> GroundTruth(const Dataset& data,
                                 const DetectionParams& params) {
  BruteForceDetector oracle;
  std::vector<uint32_t> local =
      oracle.DetectOutliers(data, data.size(), params, nullptr);
  return std::vector<PointId>(local.begin(), local.end());
}

TEST(IntegrationTest, RandomizedConfigurationFuzz) {
  // 20 rounds of: random data shape × random outlier params × random
  // pipeline configuration. Exactness must hold in every round.
  Rng rng(20260707);
  for (int round = 0; round < 20; ++round) {
    const size_t n = 400 + rng.NextBounded(1600);
    const double density = 0.004 * std::pow(100.0, rng.NextDouble());
    SettlementProfile profile;
    profile.num_cities = 1 + static_cast<int>(rng.NextBounded(6));
    profile.city_fraction = rng.NextUniform(0.3, 0.95);
    const Dataset data = GenerateSettlements(
        n, DomainForDensity(n, density), profile, rng.NextUint64());

    DetectionParams params;
    params.radius = rng.NextUniform(1.0, 10.0);
    params.min_neighbors = 1 + static_cast<int>(rng.NextBounded(12));

    const StrategyKind strategies[] = {
        StrategyKind::kDomain, StrategyKind::kUniSpace,
        StrategyKind::kDDriven, StrategyKind::kCDriven, StrategyKind::kDmt};
    const StrategyKind strategy = strategies[rng.NextBounded(5)];
    const AlgorithmKind algorithm = rng.NextBernoulli(0.5)
                                        ? AlgorithmKind::kNestedLoop
                                        : AlgorithmKind::kCellBased;
    DodConfig config = strategy == StrategyKind::kDmt
                           ? DodConfig::Dmt(params)
                           : DodConfig::Baseline(params, strategy, algorithm);
    config.target_partitions = 1 + rng.NextBounded(40);
    config.num_reduce_tasks = 1 + static_cast<int>(rng.NextBounded(40));
    config.num_blocks = 1 + rng.NextBounded(20);
    config.sampler.rate = rng.NextUniform(0.05, 0.5);
    config.sampler.buckets_per_dim =
        4 + static_cast<int>(rng.NextBounded(40));
    config.seed = rng.NextUint64();

    const DodResult result = DodPipeline(config).RunOrDie(data);
    const DetectionQuality quality =
        CompareOutlierSets(result.outliers, GroundTruth(data, params));
    EXPECT_TRUE(quality.exact())
        << "round " << round << " " << config.Label() << " n=" << n
        << " r=" << params.radius << " k=" << params.min_neighbors
        << " FP=" << quality.false_positives
        << " FN=" << quality.false_negatives;
  }
}

TEST(IntegrationTest, CsvToPipelineToCsv) {
  const std::string in_path = testing::TempDir() + "/dod_integration_in.csv";
  const std::string out_path =
      testing::TempDir() + "/dod_integration_out.csv";
  const Dataset data =
      GenerateUniform(1500, DomainForDensity(1500, 0.03), 33);
  ASSERT_TRUE(WriteCsv(data, in_path).ok());

  Result<Dataset> loaded = ReadCsv(in_path);
  ASSERT_TRUE(loaded.ok());
  DetectionParams params{5.0, 4};
  DodConfig config = DodConfig::Dmt(params);
  config.sampler.rate = 0.3;
  const DodResult result = DodPipeline(config).RunOrDie(loaded.value());
  EXPECT_EQ(result.outliers, GroundTruth(data, params));

  Dataset outliers(data.dims());
  for (PointId id : result.outliers) outliers.Append(data[id]);
  ASSERT_TRUE(WriteCsv(outliers, out_path).ok());
  Result<Dataset> reread = ReadCsv(out_path);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread.value().size(), result.outliers.size());
  std::remove(in_path.c_str());
  std::remove(out_path.c_str());
}

TEST(IntegrationTest, SerializedPlanDescribesTheRun) {
  const Dataset data =
      GenerateUniform(2000, DomainForDensity(2000, 0.05), 35);
  DetectionParams params{5.0, 4};
  DodConfig config = DodConfig::Dmt(params);
  config.sampler.rate = 0.3;
  const DodResult result = DodPipeline(config).RunOrDie(data);

  Result<MultiTacticPlan> restored =
      DeserializePlan(SerializePlan(result.plan));
  ASSERT_TRUE(restored.ok());
  // The restored plan routes points identically.
  const PartitionRouter router_a(result.plan.partition_plan);
  const PartitionRouter router_b(restored.value().partition_plan);
  for (size_t i = 0; i < data.size(); i += 7) {
    EXPECT_EQ(router_a.RouteCore(data[static_cast<PointId>(i)]),
              router_b.RouteCore(data[static_cast<PointId>(i)]));
  }
}

struct DimCase {
  int dims;
  double radius;
};

class DimensionalitySweep : public testing::TestWithParam<DimCase> {};

TEST_P(DimensionalitySweep, DetectorsAgreeWithOracle) {
  const DimCase& c = GetParam();
  const Dataset data =
      GenerateUniform(900, Rect::Cube(c.dims, 0.0, 30.0), 41);
  DetectionParams params{c.radius, 4};
  BruteForceDetector oracle;
  NestedLoopDetector nl;
  CellBasedDetector cb;
  const auto expected = oracle.DetectOutliers(data, data.size(), params);
  EXPECT_EQ(nl.DetectOutliers(data, data.size(), params), expected);
  EXPECT_EQ(cb.DetectOutliers(data, data.size(), params), expected);
}

INSTANTIATE_TEST_SUITE_P(
    OneToFiveDims, DimensionalitySweep,
    testing::Values(DimCase{1, 0.3}, DimCase{2, 2.0}, DimCase{3, 4.0},
                    DimCase{4, 7.0}, DimCase{5, 10.0}),
    [](const testing::TestParamInfo<DimCase>& info) {
      return "dims" + std::to_string(info.param.dims);
    });

}  // namespace
}  // namespace dod
