// Copyright 2026 The DOD Authors.
//
// Multi-bin packing for the allocation plan: validity of the assignment,
// balance quality of the policies, and known approximation behaviour.

#include "alloc/bin_packing.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/stats.h"

namespace dod {
namespace {

void ExpectValid(const PackingResult& result,
                 const std::vector<double>& weights, int bins) {
  ASSERT_EQ(result.bin_of.size(), weights.size());
  ASSERT_EQ(result.bin_loads.size(), static_cast<size_t>(bins));
  std::vector<double> recomputed(static_cast<size_t>(bins), 0.0);
  for (size_t i = 0; i < weights.size(); ++i) {
    ASSERT_GE(result.bin_of[i], 0);
    ASSERT_LT(result.bin_of[i], bins);
    recomputed[static_cast<size_t>(result.bin_of[i])] += weights[i];
  }
  for (int b = 0; b < bins; ++b) {
    EXPECT_NEAR(recomputed[static_cast<size_t>(b)],
                result.bin_loads[static_cast<size_t>(b)], 1e-9);
  }
  EXPECT_NEAR(Sum(result.bin_loads), Sum(weights), 1e-9);
}

TEST(BinPackingTest, AllPoliciesProduceValidAssignments) {
  Rng rng(1);
  std::vector<double> weights;
  for (int i = 0; i < 50; ++i) weights.push_back(rng.NextUniform(1.0, 100.0));
  for (PackingPolicy policy :
       {PackingPolicy::kRoundRobin, PackingPolicy::kLpt,
        PackingPolicy::kKarmarkarKarp}) {
    ExpectValid(PackBins(weights, 7, policy), weights, 7);
  }
}

TEST(BinPackingTest, EmptyInput) {
  for (PackingPolicy policy :
       {PackingPolicy::kRoundRobin, PackingPolicy::kLpt,
        PackingPolicy::kKarmarkarKarp}) {
    const PackingResult result = PackBins({}, 3, policy);
    EXPECT_TRUE(result.bin_of.empty());
    EXPECT_DOUBLE_EQ(result.Makespan(), 0.0);
    EXPECT_DOUBLE_EQ(result.Imbalance(), 1.0);
  }
}

TEST(BinPackingTest, SingleBinTakesEverything) {
  const std::vector<double> weights = {3.0, 1.0, 4.0};
  for (PackingPolicy policy :
       {PackingPolicy::kRoundRobin, PackingPolicy::kLpt,
        PackingPolicy::kKarmarkarKarp}) {
    const PackingResult result = PackBins(weights, 1, policy);
    EXPECT_DOUBLE_EQ(result.Makespan(), 8.0);
  }
}

TEST(BinPackingTest, LptSolvesClassicInstanceOptimally) {
  // {7,6,5,4,3,2,1} into 2 bins: optimum makespan 14.
  const std::vector<double> weights = {7, 6, 5, 4, 3, 2, 1};
  const PackingResult result = PackBins(weights, 2, PackingPolicy::kLpt);
  EXPECT_DOUBLE_EQ(result.Makespan(), 14.0);
}

TEST(BinPackingTest, KarmarkarKarpNearOptimalPartition) {
  // {8,7,6,5,4} into 2 bins: optimum makespan 15 (8+7 / 6+5+4). The k-way
  // differencing heuristic lands within one unit of it.
  const std::vector<double> weights = {8, 7, 6, 5, 4};
  const PackingResult kk =
      PackBins(weights, 2, PackingPolicy::kKarmarkarKarp);
  EXPECT_GE(kk.Makespan(), 15.0);   // no schedule beats the optimum
  EXPECT_LE(kk.Makespan(), 16.0);
}

TEST(BinPackingTest, KarmarkarKarpSolvesEasyPerfectSplit) {
  // {4,3,3,2,2,2}: two bins of 8 exist and differencing finds them.
  const std::vector<double> weights = {4, 3, 3, 2, 2, 2};
  const PackingResult kk =
      PackBins(weights, 2, PackingPolicy::kKarmarkarKarp);
  EXPECT_DOUBLE_EQ(kk.Makespan(), 8.0);
}

TEST(BinPackingTest, CostAwarePoliciesBeatRoundRobinOnSkewedInput) {
  // Heavy items first — the worst case for positional striping.
  std::vector<double> weights;
  Rng rng(2);
  for (int i = 0; i < 12; ++i) weights.push_back(1000.0);
  for (int i = 0; i < 120; ++i) weights.push_back(rng.NextUniform(1.0, 10.0));
  const double rr =
      PackBins(weights, 12, PackingPolicy::kRoundRobin).Makespan();
  const double lpt = PackBins(weights, 12, PackingPolicy::kLpt).Makespan();
  const double kk =
      PackBins(weights, 12, PackingPolicy::kKarmarkarKarp).Makespan();
  EXPECT_LT(lpt, rr);
  EXPECT_LT(kk, rr);
}

TEST(BinPackingTest, LptRespectsApproximationBound) {
  // LPT ≤ (4/3 - 1/(3m)) · OPT, and OPT ≥ max(total/m, max item).
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> weights;
    const int n = 20 + static_cast<int>(rng.NextBounded(60));
    for (int i = 0; i < n; ++i) weights.push_back(rng.NextUniform(1.0, 50.0));
    const int bins = 2 + static_cast<int>(rng.NextBounded(8));
    const double lpt = PackBins(weights, bins, PackingPolicy::kLpt).Makespan();
    const double lower = std::max(Sum(weights) / bins, Max(weights));
    EXPECT_LE(lpt, (4.0 / 3.0) * lower + 1e-9);
    EXPECT_GE(lpt, lower - 1e-9);
  }
}

TEST(BinPackingTest, KarmarkarKarpAtLeastAsBalancedAsLptOnAverage) {
  Rng rng(4);
  double kk_total = 0.0, lpt_total = 0.0;
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> weights;
    for (int i = 0; i < 40; ++i) weights.push_back(rng.NextUniform(1.0, 100.0));
    kk_total +=
        PackBins(weights, 6, PackingPolicy::kKarmarkarKarp).Makespan();
    lpt_total += PackBins(weights, 6, PackingPolicy::kLpt).Makespan();
  }
  EXPECT_LE(kk_total, lpt_total * 1.01);
}

TEST(BinPackingTest, MoreBinsThanItems) {
  const std::vector<double> weights = {5.0, 3.0};
  for (PackingPolicy policy :
       {PackingPolicy::kRoundRobin, PackingPolicy::kLpt,
        PackingPolicy::kKarmarkarKarp}) {
    const PackingResult result = PackBins(weights, 5, policy);
    ExpectValid(result, weights, 5);
    EXPECT_DOUBLE_EQ(result.Makespan(), 5.0);
  }
}

TEST(BinPackingTest, PolicyNames) {
  EXPECT_STREQ(PackingPolicyName(PackingPolicy::kRoundRobin), "RoundRobin");
  EXPECT_STREQ(PackingPolicyName(PackingPolicy::kLpt), "LPT");
  EXPECT_STREQ(PackingPolicyName(PackingPolicy::kKarmarkarKarp),
               "KarmarkarKarp");
}

}  // namespace
}  // namespace dod
