// Copyright 2026 The DOD Authors.
//
// PartitionPlan structural invariants (Def. 3.1), supporting areas
// (Def. 3.3), and the router (core + support point mapping of Fig. 3).

#include "partition/partition_plan.h"

#include <gtest/gtest.h>

#include <set>

#include "common/distance.h"
#include "data/generators.h"
#include "partition/strategies.h"

namespace dod {
namespace {

PartitionPlan TwoByTwoPlan(double radius = 1.0) {
  const Rect domain = Rect::Cube(2, 0.0, 10.0);
  return PartitionPlan(domain, radius, EquiWidthCells(domain, 4));
}

TEST(PartitionPlanTest, ValidPlanPassesValidation) {
  const PartitionPlan plan = TwoByTwoPlan();
  EXPECT_TRUE(plan.Validate().ok());
  EXPECT_EQ(plan.num_cells(), 4u);
}

TEST(PartitionPlanTest, OverlappingCellsFailValidation) {
  const Rect domain = Rect::Cube(2, 0.0, 10.0);
  std::vector<Rect> cells = {Rect(Point{0.0, 0.0}, Point{6.0, 10.0}),
                             Rect(Point{5.0, 0.0}, Point{10.0, 10.0})};
  const PartitionPlan plan(domain, 1.0, cells);
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(PartitionPlanTest, GapsFailValidation) {
  const Rect domain = Rect::Cube(2, 0.0, 10.0);
  std::vector<Rect> cells = {Rect(Point{0.0, 0.0}, Point{4.0, 10.0}),
                             Rect(Point{5.0, 0.0}, Point{10.0, 10.0})};
  const PartitionPlan plan(domain, 1.0, cells);
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(PartitionPlanTest, CellOutsideDomainFailsValidation) {
  const Rect domain = Rect::Cube(2, 0.0, 10.0);
  std::vector<Rect> cells = {Rect(Point{0.0, 0.0}, Point{12.0, 10.0})};
  const PartitionPlan plan(domain, 1.0, cells);
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(PartitionPlanTest, SupportBoundsAreRExtension) {
  const PartitionPlan plan = TwoByTwoPlan(1.5);
  const Rect support = plan.SupportBounds(0);
  const Rect& cell = plan.cell(0).bounds;
  for (int d = 0; d < 2; ++d) {
    EXPECT_DOUBLE_EQ(support.lo(d), cell.lo(d) - 1.5);
    EXPECT_DOUBLE_EQ(support.hi(d), cell.hi(d) + 1.5);
  }
}

TEST(PartitionPlanTest, ContainsCoreIsHalfOpenInside) {
  const PartitionPlan plan = TwoByTwoPlan();
  // The internal boundary x=5 belongs to the right cells only.
  const double on_split[2] = {5.0, 2.0};
  int owners = 0;
  for (uint32_t id = 0; id < plan.num_cells(); ++id) {
    if (plan.ContainsCore(id, on_split)) ++owners;
  }
  EXPECT_EQ(owners, 1);
}

TEST(PartitionPlanTest, DomainUpperBoundaryIsOwned) {
  const PartitionPlan plan = TwoByTwoPlan();
  const double corner[2] = {10.0, 10.0};
  int owners = 0;
  for (uint32_t id = 0; id < plan.num_cells(); ++id) {
    if (plan.ContainsCore(id, corner)) ++owners;
  }
  EXPECT_EQ(owners, 1);
}

TEST(PartitionRouterTest, RouteCoreAgreesWithContainsCore) {
  const PartitionPlan plan = TwoByTwoPlan();
  const PartitionRouter router(plan);
  const Dataset data = GenerateUniform(2000, plan.domain(), 17);
  for (size_t i = 0; i < data.size(); ++i) {
    const double* p = data[static_cast<PointId>(i)];
    const uint32_t cell = router.RouteCore(p);
    EXPECT_TRUE(plan.ContainsCore(cell, p));
  }
}

TEST(PartitionRouterTest, EveryPointHasExactlyOneCoreCell) {
  const Rect domain = Rect::Cube(2, 0.0, 100.0);
  const PartitionPlan plan(domain, 2.0, EquiWidthCells(domain, 25));
  const Dataset data = GenerateUniform(3000, domain, 19);
  for (size_t i = 0; i < data.size(); ++i) {
    const double* p = data[static_cast<PointId>(i)];
    int owners = 0;
    for (uint32_t id = 0; id < plan.num_cells(); ++id) {
      if (plan.ContainsCore(id, p)) ++owners;
    }
    EXPECT_EQ(owners, 1);
  }
}

TEST(PartitionRouterTest, RouteSupportMatchesDefinition) {
  // Def. 3.3 ground truth: p is a support point of cell C iff p lies in the
  // r-extension of C but is not a core point of C.
  const Rect domain = Rect::Cube(2, 0.0, 50.0);
  const PartitionPlan plan(domain, 3.0, EquiWidthCells(domain, 16));
  const PartitionRouter router(plan);
  const Dataset data = GenerateUniform(1500, domain, 23);
  std::vector<uint32_t> routed;
  for (size_t i = 0; i < data.size(); ++i) {
    const double* p = data[static_cast<PointId>(i)];
    routed.clear();
    router.RouteSupport(p, &routed);
    const std::set<uint32_t> got(routed.begin(), routed.end());
    EXPECT_EQ(got.size(), routed.size()) << "duplicate support cells";
    for (uint32_t id = 0; id < plan.num_cells(); ++id) {
      const bool expected =
          plan.SupportBounds(id).Contains(p) && !plan.ContainsCore(id, p);
      EXPECT_EQ(got.contains(id), expected)
          << "point " << i << " cell " << id;
    }
  }
}

TEST(PartitionRouterTest, SupportCoversAllForeignNeighbors) {
  // Lemma 3.1 sufficiency at the plan level: if q is within r of p, then q
  // is either in p's core cell or a support point of it.
  const Rect domain = Rect::Cube(2, 0.0, 40.0);
  const double radius = 2.5;
  const PartitionPlan plan(domain, radius, EquiWidthCells(domain, 9));
  const PartitionRouter router(plan);
  const Dataset data = GenerateUniform(800, domain, 29);
  std::vector<uint32_t> support;
  for (size_t i = 0; i < data.size(); ++i) {
    const double* p = data[static_cast<PointId>(i)];
    const uint32_t home = router.RouteCore(p);
    for (size_t j = 0; j < data.size(); ++j) {
      if (i == j) continue;
      const double* q = data[static_cast<PointId>(j)];
      if (!WithinDistance(p, q, 2, radius)) continue;
      if (plan.ContainsCore(home, q)) continue;
      support.clear();
      router.RouteSupport(q, &support);
      EXPECT_NE(std::find(support.begin(), support.end(), home),
                support.end())
          << "neighbor " << j << " of point " << i
          << " not replicated into cell " << home;
    }
  }
}

TEST(PartitionRouterTest, WorksWithManyIrregularCells) {
  // A 1×N strip plan: thin cells stress the router's bin index.
  const Rect domain = Rect::Cube(2, 0.0, 100.0);
  std::vector<Rect> cells;
  const int strips = 50;
  for (int s = 0; s < strips; ++s) {
    cells.push_back(Rect(Point{s * 2.0, 0.0}, Point{(s + 1) * 2.0, 100.0}));
  }
  const PartitionPlan plan(domain, 1.0, cells);
  ASSERT_TRUE(plan.Validate().ok());
  const PartitionRouter router(plan);
  const Dataset data = GenerateUniform(1000, domain, 31);
  for (size_t i = 0; i < data.size(); ++i) {
    const double* p = data[static_cast<PointId>(i)];
    const uint32_t cell = router.RouteCore(p);
    EXPECT_TRUE(plan.ContainsCore(cell, p));
  }
}

}  // namespace
}  // namespace dod
