// Copyright 2026 The DOD Authors.
//
// End-to-end correctness of the DOD pipeline: every strategy × detector
// combination must report exactly the distance-threshold outliers that a
// centralized brute-force scan finds (Lemma 3.1 / the framework's
// single-pass exactness claim), on a spectrum of data distributions.

#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "data/geo_like.h"
#include "data/tiger_like.h"
#include "detection/brute_force.h"

namespace dod {
namespace {

std::vector<PointId> GroundTruth(const Dataset& data,
                                 const DetectionParams& params) {
  BruteForceDetector oracle;
  std::vector<uint32_t> local =
      oracle.DetectOutliers(data, data.size(), params, nullptr);
  return std::vector<PointId>(local.begin(), local.end());
}

struct PipelineCase {
  StrategyKind strategy;
  AlgorithmKind algorithm;  // ignored for DMT
};

std::string CaseName(const testing::TestParamInfo<PipelineCase>& info) {
  std::string name = StrategyKindName(info.param.strategy);
  if (info.param.strategy != StrategyKind::kDmt) {
    name += std::string("_") + AlgorithmKindName(info.param.algorithm);
  }
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class PipelineExactness : public testing::TestWithParam<PipelineCase> {
 protected:
  DodConfig MakeConfig(DetectionParams params) const {
    const PipelineCase& c = GetParam();
    DodConfig config = c.strategy == StrategyKind::kDmt
                           ? DodConfig::Dmt(params)
                           : DodConfig::Baseline(params, c.strategy,
                                                 c.algorithm);
    // Small cluster/plan so tests exercise multi-cell paths quickly.
    config.target_partitions = 16;
    config.num_reduce_tasks = 5;
    config.num_blocks = 7;
    config.sampler.rate = 0.2;  // high rate: stable plans on small data
    config.sampler.buckets_per_dim = 16;
    return config;
  }

  void ExpectExact(const Dataset& data, DetectionParams params) {
    const std::vector<PointId> expected = GroundTruth(data, params);
    DodPipeline pipeline(MakeConfig(params));
    const DodResult result = pipeline.RunOrDie(data);
    EXPECT_EQ(result.outliers, expected)
        << "strategy=" << pipeline.config().Label()
        << " n=" << data.size() << " found=" << result.outliers.size()
        << " expected=" << expected.size();
  }
};

TEST_P(PipelineExactness, UniformData) {
  DetectionParams params{/*radius=*/5.0, /*min_neighbors=*/4};
  const Dataset data = GenerateUniform(2000, DomainForDensity(2000, 0.05), 7);
  ExpectExact(data, params);
}

TEST_P(PipelineExactness, ClusteredData) {
  DetectionParams params{/*radius=*/5.0, /*min_neighbors=*/4};
  SettlementProfile profile;
  const Dataset data =
      GenerateSettlements(3000, DomainForDensity(3000, 0.05), profile, 11);
  ExpectExact(data, params);
}

TEST_P(PipelineExactness, SparseData) {
  DetectionParams params{/*radius=*/5.0, /*min_neighbors=*/4};
  const Dataset data =
      GenerateUniform(1000, DomainForDensity(1000, 0.004), 13);
  ExpectExact(data, params);
}

TEST_P(PipelineExactness, DenseData) {
  DetectionParams params{/*radius=*/5.0, /*min_neighbors=*/4};
  const Dataset data = GenerateUniform(2000, DomainForDensity(2000, 0.8), 17);
  ExpectExact(data, params);
}

TEST_P(PipelineExactness, CorridorData) {
  DetectionParams params{/*radius=*/5.0, /*min_neighbors=*/4};
  const Dataset data = GenerateTigerLike(2500, 19);
  ExpectExact(data, params);
}

TEST_P(PipelineExactness, LargerNeighborThreshold) {
  DetectionParams params{/*radius=*/8.0, /*min_neighbors=*/12};
  SettlementProfile profile;
  profile.num_cities = 3;
  const Dataset data =
      GenerateSettlements(1500, DomainForDensity(1500, 0.08), profile, 23);
  ExpectExact(data, params);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, PipelineExactness,
    testing::Values(
        PipelineCase{StrategyKind::kDomain, AlgorithmKind::kNestedLoop},
        PipelineCase{StrategyKind::kDomain, AlgorithmKind::kCellBased},
        PipelineCase{StrategyKind::kUniSpace, AlgorithmKind::kNestedLoop},
        PipelineCase{StrategyKind::kUniSpace, AlgorithmKind::kCellBased},
        PipelineCase{StrategyKind::kDDriven, AlgorithmKind::kNestedLoop},
        PipelineCase{StrategyKind::kDDriven, AlgorithmKind::kCellBased},
        PipelineCase{StrategyKind::kCDriven, AlgorithmKind::kNestedLoop},
        PipelineCase{StrategyKind::kCDriven, AlgorithmKind::kCellBased},
        PipelineCase{StrategyKind::kDmt, AlgorithmKind::kNestedLoop}),
    CaseName);

TEST(PipelineBasics, ReportsStageBreakdown) {
  DetectionParams params{5.0, 4};
  const Dataset data = GenerateUniform(1500, DomainForDensity(1500, 0.05), 3);
  DodPipeline pipeline(DodConfig::Dmt(params));
  const DodResult result = pipeline.RunOrDie(data);
  EXPECT_GT(result.breakdown.detect.reduce_seconds, 0.0);
  EXPECT_GT(result.breakdown.preprocess_seconds, 0.0);
  EXPECT_EQ(result.breakdown.verify.total(), 0.0);
  EXPECT_GE(result.breakdown.total(), result.breakdown.detect.total());
}

TEST(PipelineBasics, DomainBaselineRunsVerificationJob) {
  DetectionParams params{5.0, 4};
  const Dataset data = GenerateUniform(1500, DomainForDensity(1500, 0.02), 5);
  DodPipeline pipeline(DodConfig::Baseline(params, StrategyKind::kDomain,
                                           AlgorithmKind::kNestedLoop));
  const DodResult result = pipeline.RunOrDie(data);
  // The Domain baseline must have run the second job (it shuffles border
  // points even when no candidate is rescued).
  EXPECT_GT(result.verify_stats.records_mapped, 0u);
  EXPECT_EQ(result.outliers, GroundTruth(data, params));
}

TEST(PipelineBasics, CentralizedHelperMatchesOracle) {
  DetectionParams params{5.0, 4};
  const Dataset data = GenerateUniform(800, DomainForDensity(800, 0.05), 9);
  EXPECT_EQ(DetectOutliersCentralized(data, AlgorithmKind::kNestedLoop,
                                      params),
            GroundTruth(data, params));
  EXPECT_EQ(DetectOutliersCentralized(data, AlgorithmKind::kCellBased,
                                      params),
            GroundTruth(data, params));
}

TEST(PipelineBasics, DeterministicAcrossRuns) {
  DetectionParams params{5.0, 4};
  const Dataset data = GenerateTigerLike(2000, 31);
  DodPipeline pipeline(DodConfig::Dmt(params));
  const DodResult a = pipeline.RunOrDie(data);
  const DodResult b = pipeline.RunOrDie(data);
  EXPECT_EQ(a.outliers, b.outliers);
  EXPECT_EQ(a.plan.partition_plan.num_cells(), b.plan.partition_plan.num_cells());
}

}  // namespace
}  // namespace dod
