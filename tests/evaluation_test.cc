// Copyright 2026 The DOD Authors.

#include "core/evaluation.h"

#include <gtest/gtest.h>

namespace dod {
namespace {

TEST(EvaluationTest, PerfectMatch) {
  const DetectionQuality q = CompareOutlierSets({1, 2, 3}, {3, 2, 1});
  EXPECT_EQ(q.true_positives, 3u);
  EXPECT_EQ(q.false_positives, 0u);
  EXPECT_EQ(q.false_negatives, 0u);
  EXPECT_TRUE(q.exact());
  EXPECT_DOUBLE_EQ(q.precision(), 1.0);
  EXPECT_DOUBLE_EQ(q.recall(), 1.0);
  EXPECT_DOUBLE_EQ(q.f1(), 1.0);
}

TEST(EvaluationTest, PartialOverlap) {
  // reported {1,2,3,4}, expected {3,4,5,6}: TP=2 FP=2 FN=2.
  const DetectionQuality q = CompareOutlierSets({1, 2, 3, 4}, {3, 4, 5, 6});
  EXPECT_EQ(q.true_positives, 2u);
  EXPECT_EQ(q.false_positives, 2u);
  EXPECT_EQ(q.false_negatives, 2u);
  EXPECT_DOUBLE_EQ(q.precision(), 0.5);
  EXPECT_DOUBLE_EQ(q.recall(), 0.5);
  EXPECT_DOUBLE_EQ(q.f1(), 0.5);
  EXPECT_FALSE(q.exact());
}

TEST(EvaluationTest, EmptySets) {
  const DetectionQuality q = CompareOutlierSets({}, {});
  EXPECT_TRUE(q.exact());
  EXPECT_DOUBLE_EQ(q.precision(), 1.0);
  EXPECT_DOUBLE_EQ(q.recall(), 1.0);
}

TEST(EvaluationTest, NothingReported) {
  const DetectionQuality q = CompareOutlierSets({}, {1, 2});
  EXPECT_EQ(q.false_negatives, 2u);
  EXPECT_DOUBLE_EQ(q.precision(), 0.0);
  EXPECT_DOUBLE_EQ(q.recall(), 0.0);
  EXPECT_DOUBLE_EQ(q.f1(), 0.0);
}

TEST(EvaluationTest, EverythingSpurious) {
  const DetectionQuality q = CompareOutlierSets({1, 2}, {});
  EXPECT_EQ(q.false_positives, 2u);
  EXPECT_DOUBLE_EQ(q.precision(), 0.0);
  EXPECT_DOUBLE_EQ(q.recall(), 0.0);
}

TEST(EvaluationTest, DuplicatesAreDeduplicated) {
  const DetectionQuality q = CompareOutlierSets({5, 5, 5}, {5});
  EXPECT_EQ(q.true_positives, 1u);
  EXPECT_EQ(q.false_positives, 0u);
  EXPECT_TRUE(q.exact());
}

TEST(EvaluationTest, UnsortedInputsHandled) {
  const DetectionQuality q =
      CompareOutlierSets({9, 1, 5}, {5, 9, 1, 7});
  EXPECT_EQ(q.true_positives, 3u);
  EXPECT_EQ(q.false_negatives, 1u);
}

}  // namespace
}  // namespace dod
