// Copyright 2026 The DOD Authors.
//
// Workload generators: determinism, domain containment, and the calibrated
// density / skew properties the benches rely on.

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "data/distort.h"
#include "data/generators.h"
#include "data/geo_like.h"
#include "data/tiger_like.h"
#include "partition/minibucket.h"

namespace dod {
namespace {

TEST(GeneratorsTest, UniformStaysInDomainAndIsDeterministic) {
  const Rect domain = Rect::Cube(2, -5.0, 5.0);
  const Dataset a = GenerateUniform(5000, domain, 42);
  const Dataset b = GenerateUniform(5000, domain, 42);
  EXPECT_EQ(a.raw(), b.raw());
  EXPECT_TRUE(domain.Covers(a.Bounds()));
}

TEST(GeneratorsTest, DifferentSeedsDiffer) {
  const Rect domain = Rect::Cube(2, 0.0, 1.0);
  EXPECT_NE(GenerateUniform(100, domain, 1).raw(),
            GenerateUniform(100, domain, 2).raw());
}

TEST(GeneratorsTest, DomainForDensityHitsTarget) {
  const Rect domain = DomainForDensity(10000, 0.1);
  EXPECT_NEAR(10000.0 / domain.Area(), 0.1, 1e-9);
  EXPECT_EQ(domain.dims(), 2);
}

TEST(GeneratorsTest, SettlementsAreSkewed) {
  SettlementProfile profile;
  profile.city_fraction = 0.9;
  profile.sigma_frac = 0.03;
  const Rect domain = DomainForDensity(20000, 0.05);
  const Dataset data = GenerateSettlements(20000, domain, profile, 7);
  EXPECT_TRUE(domain.Covers(data.Bounds()));

  // Mini-bucket histogram: clustered data concentrates most mass in a few
  // buckets, unlike uniform data.
  MiniBucketGrid clustered_grid(domain, 16);
  for (size_t i = 0; i < data.size(); ++i) {
    clustered_grid.Add(data[static_cast<PointId>(i)]);
  }
  std::vector<double> weights;
  for (const auto& bucket : clustered_grid.buckets()) {
    weights.push_back(bucket.weight);
  }
  EXPECT_GT(ImbalanceFactor(weights), 4.0);
}

TEST(GeoLikeTest, RegionsHaveEqualCardinalityAndOrderedDensities) {
  const size_t n = 10000;
  double last_density = 0.0;
  for (GeoRegion region : {GeoRegion::kOhio, GeoRegion::kMassachusetts,
                           GeoRegion::kCalifornia, GeoRegion::kNewYork}) {
    const Dataset data = GenerateGeoRegion(region, n, 3);
    EXPECT_EQ(data.size(), n);
    const double density =
        static_cast<double>(data.size()) / data.Bounds().Area();
    EXPECT_GT(density, last_density)
        << "regions must be ordered OH < MA < CA < NY in density";
    last_density = density;
  }
}

TEST(GeoLikeTest, RegionNames) {
  EXPECT_EQ(GeoRegionName(GeoRegion::kOhio), "OH");
  EXPECT_EQ(GeoRegionName(GeoRegion::kNewYork), "NY");
}

TEST(GeoLikeTest, HierarchicalCardinalityGrowsWithLevel) {
  const size_t base = 2000;
  size_t last = 0;
  for (MapLevel level : {MapLevel::kMassachusetts, MapLevel::kNewEngland,
                         MapLevel::kUnitedStates, MapLevel::kPlanet}) {
    const Dataset data = GenerateHierarchical(level, base, 5);
    EXPECT_EQ(data.size(), base * MapLevelMultiplier(level))
        << MapLevelName(level);
    EXPECT_GT(data.size(), last);
    last = data.size();
  }
}

TEST(GeoLikeTest, HierarchicalIsDeterministic) {
  const Dataset a = GenerateHierarchical(MapLevel::kNewEngland, 1000, 9);
  const Dataset b = GenerateHierarchical(MapLevel::kNewEngland, 1000, 9);
  EXPECT_EQ(a.raw(), b.raw());
}

TEST(TigerLikeTest, CorridorsAreDenserThanBackground) {
  const Dataset data = GenerateTigerLike(20000, 11);
  // Bucket histogram: corridor buckets should dwarf rural buckets.
  MiniBucketGrid grid(data.Bounds(), 32);
  for (size_t i = 0; i < data.size(); ++i) {
    grid.Add(data[static_cast<PointId>(i)]);
  }
  std::vector<double> weights;
  for (const auto& bucket : grid.buckets()) weights.push_back(bucket.weight);
  EXPECT_GT(ImbalanceFactor(weights), 5.0);
}

TEST(TigerLikeTest, RespectsDomainAndCount) {
  const Rect domain = Rect::Cube(2, 0.0, 200.0);
  RoadNetworkProfile profile;
  const Dataset data = GenerateRoadNetwork(5000, domain, profile, 13);
  EXPECT_EQ(data.size(), 5000u);
  EXPECT_TRUE(domain.Covers(data.Bounds()));
}

TEST(DistortTest, ProducesOriginalPlusCopies) {
  const Dataset base = GenerateUniform(1000, Rect::Cube(2, 0.0, 100.0), 17);
  DistortOptions options;
  options.copies = 3;
  const Dataset out = DistortReplicate(base, options);
  EXPECT_EQ(out.size(), 4000u);
  // The originals lead the output unchanged.
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(out.GetPoint(static_cast<PointId>(i)),
              base.GetPoint(static_cast<PointId>(i)));
  }
}

TEST(DistortTest, AlterationIsBounded) {
  const Dataset base = GenerateUniform(500, Rect::Cube(2, 0.0, 100.0), 19);
  DistortOptions options;
  options.copies = 2;
  options.max_alteration_frac = 0.01;  // 1% of extent = 1.0
  const Dataset out = DistortReplicate(base, options);
  for (int c = 1; c <= 2; ++c) {
    for (size_t i = 0; i < base.size(); ++i) {
      const double* original = base[static_cast<PointId>(i)];
      const double* replica = out[static_cast<PointId>(c * base.size() + i)];
      for (int d = 0; d < 2; ++d) {
        EXPECT_LE(std::fabs(replica[d] - original[d]), 1.0 + 1e-12);
      }
    }
  }
}

TEST(DistortTest, ZeroCopiesReturnsOriginal) {
  const Dataset base = GenerateUniform(100, Rect::Cube(2, 0.0, 10.0), 23);
  DistortOptions options;
  options.copies = 0;
  const Dataset out = DistortReplicate(base, options);
  EXPECT_EQ(out.raw(), base.raw());
}

}  // namespace
}  // namespace dod
