// Copyright 2026 The DOD Authors.
//
// Tests of the observability layer: the metrics registry's merge algebra,
// the determinism conventions (identical seeded runs produce identical
// non-timing metrics and identical trace content), span-per-attempt
// accounting under fault injection, the Chrome trace schema, and the
// wall-clock fields of JobStats.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "data/generators.h"
#include "mapreduce/job_stats.h"
#include "observability/json.h"
#include "observability/metrics.h"
#include "observability/profile.h"
#include "observability/trace.h"

namespace dod {
namespace {

std::map<std::string, MetricSnapshot> SnapshotByName() {
  std::map<std::string, MetricSnapshot> by_name;
  for (MetricSnapshot& snapshot : MetricsRegistry::Global().Snapshot()) {
    by_name[snapshot.name] = std::move(snapshot);
  }
  return by_name;
}

// --- Registry unit tests ------------------------------------------------

TEST(MetricsRegistryTest, ConcurrentIncrementsMergeExactly) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.Reset();
  const uint32_t counter =
      metrics.Id("test.concurrent_counter", MetricKind::kCounter);
  const uint32_t histogram =
      metrics.Id("test.concurrent_hist", MetricKind::kHistogram);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&metrics, counter, histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        metrics.Increment(counter);
        metrics.Observe(histogram, 1.0 + t);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  // Half the shards come from exited threads (retired aggregate), half
  // would come from live ones had the threads survived; either way the
  // fold must be an exact sum.
  const auto by_name = SnapshotByName();
  EXPECT_EQ(by_name.at("test.concurrent_counter").count,
            static_cast<uint64_t>(kThreads) * kPerThread);
  const MetricSnapshot& hist = by_name.at("test.concurrent_hist");
  EXPECT_EQ(hist.count, static_cast<uint64_t>(kThreads) * kPerThread);
  double expected_sum = 0.0;
  for (int t = 0; t < kThreads; ++t) expected_sum += (1.0 + t) * kPerThread;
  EXPECT_DOUBLE_EQ(hist.value, expected_sum);
}

TEST(MetricsRegistryTest, HistogramBucketingIsMonotoneAndBounded) {
  EXPECT_EQ(HistogramBucket(0.0), 0);
  EXPECT_EQ(HistogramBucket(-1.0), 0);
  EXPECT_EQ(HistogramBucket(std::nan("")), 0);
  EXPECT_EQ(HistogramBucketLowerBound(0), 0.0);

  int previous = 0;
  for (double value : {1e-12, 1e-9, 1e-6, 0.001, 0.5, 1.0, 3.0, 1e3, 1e6,
                       1e9, 1e15}) {
    const int bucket = HistogramBucket(value);
    ASSERT_GE(bucket, 0);
    ASSERT_LT(bucket, kHistogramBuckets);
    EXPECT_GE(bucket, previous) << "bucketing not monotone at " << value;
    previous = bucket;
    // Within the covered range the bucket's bounds bracket the value;
    // values below ~2e-10 or above ~2e9 clamp to the edge buckets.
    if (value >= HistogramBucketLowerBound(1) && bucket > 0 &&
        bucket < kHistogramBuckets - 1) {
      EXPECT_LE(HistogramBucketLowerBound(bucket), value);
      EXPECT_GT(HistogramBucketLowerBound(bucket + 1), value);
    }
  }
}

TEST(MetricsRegistryTest, GaugeKeepsMaxAndCountsSets) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.Reset();
  metrics.SetGauge("test.gauge", 3.0);
  metrics.SetGauge("test.gauge", 11.0);
  metrics.SetGauge("test.gauge", 7.0);
  const MetricSnapshot gauge = SnapshotByName().at("test.gauge");
  EXPECT_EQ(gauge.kind, MetricKind::kGauge);
  EXPECT_EQ(gauge.count, 3u);
  EXPECT_EQ(gauge.value, 11.0);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsRegistrations) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  const uint32_t id = metrics.Id("test.reset_counter", MetricKind::kCounter);
  metrics.Increment(id, 5);
  metrics.Reset();
  EXPECT_EQ(SnapshotByName().at("test.reset_counter").count, 0u);
  // The handle must survive the reset.
  metrics.Increment(id, 2);
  EXPECT_EQ(SnapshotByName().at("test.reset_counter").count, 2u);
}

TEST(MetricsRegistryTest, TimingConventionMatchesSuffix) {
  EXPECT_TRUE(IsTimingMetric("pipeline.wall_seconds"));
  EXPECT_TRUE(IsTimingMetric("mr.map_slot_seconds"));
  EXPECT_FALSE(IsTimingMetric("mr.task_attempts"));
  EXPECT_FALSE(IsTimingMetric("seconds_of_fame"));
}

TEST(PartitionProfilerTest, RecordOverwritesPerCellAndSortsById) {
  PartitionProfiler profiler;
  PartitionProfile profile;
  profile.cell = 7;
  profile.measured_distance_evals = 100;
  profiler.Record(profile);
  profile.cell = 2;
  profiler.Record(profile);
  // A retried reduce attempt re-records the same cell; the last write
  // wins instead of duplicating the row.
  profile.cell = 7;
  profile.measured_distance_evals = 250;
  profiler.Record(profile);

  const std::vector<PartitionProfile> sorted = profiler.Sorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].cell, 2u);
  EXPECT_EQ(sorted[1].cell, 7u);
  EXPECT_EQ(sorted[1].measured_distance_evals, 250u);
}

TEST(JobStatsTest, MergeConcatenatesPartitionProfiles) {
  JobStats a, b;
  PartitionProfile profile;
  profile.cell = 1;
  a.partition_profiles.push_back(profile);
  profile.cell = 2;
  b.partition_profiles.push_back(profile);
  a.MergeFrom(b);
  ASSERT_EQ(a.partition_profiles.size(), 2u);
  EXPECT_EQ(a.partition_profiles[1].cell, 2u);
}

// --- Pipeline-level observability ---------------------------------------

DodConfig FaultedDmtConfig(int threads) {
  DodConfig config = DodConfig::Dmt(DetectionParams{5.0, 4});
  config.sampler.rate = 0.3;
  config.num_threads = threads;
  config.faults.enabled = true;
  config.faults.seed = 99;
  config.faults.task_failure_prob = 0.25;
  config.retry.max_task_attempts = 8;
  return config;
}

TEST(ObservabilityDeterminism, SameSeedRunsProduceIdenticalMetrics) {
  const Dataset data =
      GenerateUniform(3000, DomainForDensity(3000, 0.04), 71);
  const DodConfig config = FaultedDmtConfig(4);

  const auto run_once = [&](std::vector<PointId>* outliers) {
    MetricsRegistry::Global().Reset();
    *outliers = DodPipeline(config).RunOrDie(data).outliers;
    return SnapshotByName();
  };

  std::vector<PointId> outliers_a, outliers_b;
  const auto first = run_once(&outliers_a);
  const auto second = run_once(&outliers_b);

  EXPECT_EQ(outliers_a, outliers_b);
  ASSERT_EQ(first.size(), second.size());
  for (const auto& [name, snapshot] : first) {
    ASSERT_TRUE(second.count(name)) << name;
    const MetricSnapshot& other = second.at(name);
    if (IsTimingMetric(name) || name == "durability.memory.peak_bytes") {
      // Timing metrics: the observation *count* is deterministic, the
      // measured values are not. The memory peak gauge likewise tracks
      // real concurrent usage, which depends on task interleaving.
      EXPECT_EQ(snapshot.count, other.count) << name;
      continue;
    }
    if (name.rfind("runtime.steal.", 0) == 0) {
      // Steal counters record which worker stole which task — pure
      // scheduling noise, exempt even from the count check.
      continue;
    }
    EXPECT_EQ(snapshot.count, other.count) << name;
    EXPECT_EQ(snapshot.value, other.value) << name << " not bit-identical";
    EXPECT_EQ(snapshot.buckets, other.buckets) << name;
  }
}

#if !defined(DOD_TRACING_DISABLED)

std::vector<trace::TraceEvent> TraceRun(const DodConfig& config,
                                        const Dataset& data,
                                        DodResult* result) {
  trace::Start();
  *result = DodPipeline(config).RunOrDie(data);
  trace::Stop();
  return trace::SnapshotEvents();
}

TEST(TraceTest, OneSpanPerTaskAttemptIncludingRetries) {
  const Dataset data =
      GenerateUniform(3000, DomainForDensity(3000, 0.04), 73);
  MetricsRegistry::Global().Reset();
  DodResult result;
  const std::vector<trace::TraceEvent> events =
      TraceRun(FaultedDmtConfig(4), data, &result);
  const JobStats& stats = result.detect_stats;
  // JobStats does not count logical tasks directly; the registry does.
  const auto by_name = SnapshotByName();
  const uint64_t logical_tasks = by_name.at("mr.map_tasks").count +
                                 by_name.at("mr.reduce_tasks").count;

  uint64_t task_spans = 0, failed_spans = 0, speculative_spans = 0;
  for (const trace::TraceEvent& event : events) {
    if (std::strcmp(event.category, "task") != 0) continue;
    ++task_spans;
    if (event.args.find("\"status\":\"failed\"") != std::string::npos) {
      ++failed_spans;
    }
    if (event.args.find("\"speculative\":1") != std::string::npos) {
      ++speculative_spans;
    }
  }
  // The fault schedule must actually have fired for this test to bite.
  ASSERT_GT(stats.task_failures, 0u);
  EXPECT_EQ(task_spans, stats.task_attempts);
  EXPECT_EQ(failed_spans, stats.task_failures);
  EXPECT_EQ(speculative_spans, stats.speculative_attempts);
  // Attempt identity: every task runs once, plus one attempt per retry,
  // plus the speculative duplicates.
  EXPECT_EQ(stats.task_attempts,
            logical_tasks + stats.task_retries + stats.speculative_attempts);
}

TEST(TraceTest, SameSeedRunsProduceIdenticalSpanContent) {
  const Dataset data =
      GenerateUniform(2000, DomainForDensity(2000, 0.04), 79);
  const DodConfig config = FaultedDmtConfig(4);

  const auto content = [&] {
    DodResult result;
    std::vector<std::string> rendered;
    for (const trace::TraceEvent& event : TraceRun(config, data, &result)) {
      rendered.push_back(std::string(event.category) + "/" + event.name +
                         "{" + event.args + "}");
    }
    std::sort(rendered.begin(), rendered.end());
    return rendered;
  };
  EXPECT_EQ(content(), content());
}

TEST(TraceTest, ChromeJsonSchemaValidates) {
  const Dataset data =
      GenerateUniform(1500, DomainForDensity(1500, 0.04), 83);
  DodResult result;
  const std::vector<trace::TraceEvent> events =
      TraceRun(FaultedDmtConfig(2), data, &result);
  ASSERT_FALSE(events.empty());

  const std::string path = ::testing::TempDir() + "dod_trace_test.json";
  // SnapshotEvents drained the collector, so re-run to have content to
  // write; cheaper: write from a fresh short run.
  trace::Start();
  { trace::Span span("test", "schema"); span.Arg("answer", 42); }
  trace::Stop();
  ASSERT_TRUE(trace::WriteChromeJson(path).ok());

  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const Result<JsonValue> parsed = JsonValue::Parse(buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& doc = parsed.value();
  ASSERT_TRUE(doc.Get("traceEvents").is_array());
  const auto& trace_events = doc.Get("traceEvents").array();
  ASSERT_FALSE(trace_events.empty());
  for (const JsonValue& event : trace_events) {
    EXPECT_TRUE(event.Get("name").is_string());
    EXPECT_TRUE(event.Get("cat").is_string());
    EXPECT_EQ(event.Get("ph").string_value(), "X");
    EXPECT_TRUE(event.Get("ts").is_number());
    EXPECT_TRUE(event.Get("dur").is_number());
    EXPECT_TRUE(event.Get("pid").is_number());
    EXPECT_TRUE(event.Get("tid").is_number());
  }
  const JsonValue& first = trace_events.front();
  EXPECT_EQ(first.Get("cat").string_value(), "test");
  EXPECT_TRUE(first.Get("args").Get("answer").is_number());
}

#endif  // !DOD_TRACING_DISABLED

TEST(JobStatsWallClock, PhaseWallsArePositiveAndDominateTaskTimes) {
  // No faults: charged slot costs equal measured task durations, and every
  // task's measurement window nests inside its phase's wall window.
  const Dataset data =
      GenerateUniform(6000, DomainForDensity(6000, 0.04), 89);
  DodConfig config = DodConfig::Dmt(DetectionParams{5.0, 4});
  config.sampler.rate = 0.3;
  config.num_threads = 4;
  const DodResult result = DodPipeline(config).RunOrDie(data);
  const JobStats& stats = result.detect_stats;

  EXPECT_GT(stats.map_wall_seconds, 0.0);
  EXPECT_GT(stats.reduce_wall_seconds, 0.0);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GE(stats.wall_seconds, stats.map_wall_seconds);
  EXPECT_GE(stats.wall_seconds, stats.reduce_wall_seconds);

  ASSERT_FALSE(stats.map_task_seconds.empty());
  ASSERT_FALSE(stats.reduce_task_seconds.empty());
  for (double seconds : stats.map_task_seconds) {
    EXPECT_GE(stats.map_wall_seconds, seconds);
  }
  for (double seconds : stats.reduce_task_seconds) {
    EXPECT_GE(stats.reduce_wall_seconds, seconds);
  }
}

TEST(ObservabilityReport, JsonContainsMetricsAndProfiles) {
  const Dataset data =
      GenerateUniform(1500, DomainForDensity(1500, 0.04), 97);
  MetricsRegistry::Global().Reset();
  DodConfig config = DodConfig::Dmt(DetectionParams{5.0, 4});
  config.sampler.rate = 0.3;
  const DodResult result = DodPipeline(config).RunOrDie(data);
  ASSERT_FALSE(result.detect_stats.partition_profiles.empty());

  const std::string json =
      ObservabilityReportJson(MetricsRegistry::Global().Snapshot(),
                              result.detect_stats.partition_profiles);
  const Result<JsonValue> parsed = JsonValue::Parse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& doc = parsed.value();
  ASSERT_TRUE(doc.Get("metrics").Get("counters").is_object());
  EXPECT_TRUE(doc.Get("metrics")
                  .Get("counters")
                  .Get("pipeline.runs")
                  .is_number());
  const auto& profiles = doc.Get("partition_profiles").array();
  ASSERT_EQ(profiles.size(), result.detect_stats.partition_profiles.size());
  for (const JsonValue& profile : profiles) {
    EXPECT_TRUE(profile.Get("predicted_cost").is_number());
    EXPECT_TRUE(profile.Get("measured_distance_evals").is_number());
    EXPECT_TRUE(profile.Get("algorithm").is_string());
  }
}

}  // namespace
}  // namespace dod
