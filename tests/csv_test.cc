// Copyright 2026 The DOD Authors.

#include "io/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/random.h"
#include "data/generators.h"

namespace dod {
namespace {

class CsvTest : public testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/dod_csv_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }

  std::string path_;
};

TEST_F(CsvTest, RoundTripIsExact) {
  const Dataset original =
      GenerateUniform(500, Rect::Cube(3, -10.0, 10.0), 42);
  ASSERT_TRUE(WriteCsv(original, path_).ok());
  Result<Dataset> read = ReadCsv(path_);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read.value().size(), original.size());
  EXPECT_EQ(read.value().raw(), original.raw());
}

TEST_F(CsvTest, InfersDimsFromFirstRow) {
  WriteFile("1.0,2.0\n3.0,4.0\n");
  Result<Dataset> read = ReadCsv(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().dims(), 2);
  EXPECT_EQ(read.value().size(), 2u);
}

TEST_F(CsvTest, SkipRowsSkipsHeader) {
  WriteFile("x,y\n1.0,2.0\n");
  CsvOptions options;
  options.skip_rows = 1;
  Result<Dataset> read = ReadCsv(path_, options);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().size(), 1u);
}

TEST_F(CsvTest, ColumnSelectionExtractsCoordinates) {
  // OpenStreetMap-style rows: ID, timestamp, longitude, latitude.
  WriteFile("17,1450000000,-71.05,42.36\n18,1450000001,-71.06,42.37\n");
  CsvOptions options;
  options.columns = {2, 3};
  Result<Dataset> read = ReadCsv(path_, options);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read.value().size(), 2u);
  EXPECT_DOUBLE_EQ(read.value()[0][0], -71.05);
  EXPECT_DOUBLE_EQ(read.value()[1][1], 42.37);
}

TEST_F(CsvTest, ReportsBadNumberWithLine) {
  WriteFile("1.0,2.0\n1.0,oops\n");
  Result<Dataset> read = ReadCsv(path_);
  ASSERT_FALSE(read.ok());
  EXPECT_NE(read.status().message().find("line 2"), std::string::npos);
}

TEST_F(CsvTest, ReportsFieldCountMismatch) {
  WriteFile("1.0,2.0\n1.0\n");
  Result<Dataset> read = ReadCsv(path_);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, MissingColumnIsAnError) {
  WriteFile("1.0,2.0\n");
  CsvOptions options;
  options.columns = {0, 5};
  EXPECT_FALSE(ReadCsv(path_, options).ok());
}

TEST_F(CsvTest, MissingFileIsIoError) {
  Result<Dataset> read = ReadCsv("/nonexistent/dir/file.csv");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

TEST_F(CsvTest, CustomDelimiter) {
  WriteFile("1.0\t2.0\n");
  CsvOptions options;
  options.delimiter = '\t';
  Result<Dataset> read = ReadCsv(path_, options);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().dims(), 2);
}

TEST_F(CsvTest, RejectsNonFiniteCoordinates) {
  // strtod parses "nan" and "inf" happily; the loader must not let them
  // through into the pipeline.
  for (const char* bad : {"1.0,2.0\nnan,3.0\n", "1.0,inf\n", "-inf,0\n"}) {
    WriteFile(bad);
    const Result<Dataset> read = ReadCsv(path_);
    ASSERT_FALSE(read.ok()) << bad;
    EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST_F(CsvTest, SkipsEmptyLines) {
  WriteFile("1.0,2.0\n\n3.0,4.0\n");
  Result<Dataset> read = ReadCsv(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().size(), 2u);
}

}  // namespace
}  // namespace dod
