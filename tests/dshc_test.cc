// Copyright 2026 The DOD Authors.
//
// DSHC end-to-end: clustering a distribution sketch must tile the domain
// with rectangles, respect the cardinality cap, and separate density bands.

#include "dshc/dshc.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "data/geo_like.h"
#include "partition/partition_plan.h"
#include "partition/sampler.h"

namespace dod {
namespace {

DistributionSketch SketchOf(const Dataset& data, int buckets = 32,
                            double rate = 0.5) {
  SamplerOptions options;
  options.rate = rate;
  options.buckets_per_dim = buckets;
  options.seed = 4242;
  return BuildSketch(data, data.Bounds(), options);
}

void ExpectTilesDomain(const std::vector<AggregateFeature>& clusters,
                       const Rect& domain) {
  std::vector<Rect> rects;
  for (const AggregateFeature& af : clusters) rects.push_back(af.bounds);
  const PartitionPlan plan(domain, 1.0, rects);
  EXPECT_TRUE(plan.Validate().ok()) << plan.Validate().ToString();
}

TEST(DshcTest, UniformDataCollapsesToFewClusters) {
  const Dataset data = GenerateUniform(20000, Rect::Cube(2, 0.0, 100.0), 1);
  const DistributionSketch sketch = SketchOf(data);
  DshcOptions options;
  options.target_partitions = 16;
  const auto clusters = ClusterMiniBuckets(sketch, options);
  ExpectTilesDomain(clusters, sketch.grid.domain());
  // Uniform density merges aggressively; the count is governed by the
  // cardinality cap (~4x mean → at least ~4 clusters).
  EXPECT_LE(clusters.size(), 64u);
  EXPECT_GE(clusters.size(), 4u);
}

TEST(DshcTest, ClusteredDataTilesAndSeparatesDensities) {
  SettlementProfile profile;
  profile.num_cities = 4;
  profile.city_fraction = 0.9;
  const Dataset data =
      GenerateSettlements(30000, DomainForDensity(30000, 0.05), profile, 3);
  const DistributionSketch sketch = SketchOf(data, 48);
  DshcOptions options;
  options.target_partitions = 32;
  const auto clusters = ClusterMiniBuckets(sketch, options);
  ExpectTilesDomain(clusters, sketch.grid.domain());
  // Density spread across clusters must be large (cities vs empty space).
  double min_density = 1e300, max_density = 0.0;
  for (const AggregateFeature& af : clusters) {
    if (af.num_points <= 0) continue;
    min_density = std::min(min_density, af.density());
    max_density = std::max(max_density, af.density());
  }
  EXPECT_GT(max_density, 10.0 * std::max(min_density, 1e-12));
}

TEST(DshcTest, RespectsCardinalityCap) {
  const Dataset data = GenerateGeoRegion(GeoRegion::kNewYork, 20000, 5);
  const DistributionSketch sketch = SketchOf(data, 32);
  DshcOptions options;
  options.t_max_points = 4000.0;
  const auto clusters = ClusterMiniBuckets(sketch, options);
  for (const AggregateFeature& af : clusters) {
    EXPECT_LT(af.num_points, 4000.0 * 1.5)
        << "cluster far above Tmax#";  // one bucket may exceed slightly
  }
}

TEST(DshcTest, ExplicitThresholdsAreHonored) {
  const Dataset data = GenerateUniform(10000, Rect::Cube(2, 0.0, 50.0), 7);
  const DistributionSketch sketch = SketchOf(data, 16);
  DshcOptions options;
  options.t_diff = 123.0;
  options.t_max_points = 456.0;
  const DshcThresholds thresholds = ResolveThresholds(sketch, options);
  EXPECT_DOUBLE_EQ(thresholds.t_diff, 123.0);
  EXPECT_DOUBLE_EQ(thresholds.t_max_points, 456.0);
}

TEST(DshcTest, AutoThresholdsArePositive) {
  const Dataset data = GenerateGeoRegion(GeoRegion::kOhio, 10000, 9);
  const DistributionSketch sketch = SketchOf(data);
  const DshcThresholds thresholds = ResolveThresholds(sketch, DshcOptions{});
  EXPECT_GT(thresholds.t_diff, 0.0);
  EXPECT_GT(thresholds.t_max_points, 0.0);
}

TEST(DshcTest, TinyTdiffDegeneratesToManyClusters) {
  const Dataset data = GenerateGeoRegion(GeoRegion::kMassachusetts, 10000, 11);
  const DistributionSketch sketch = SketchOf(data, 16);
  DshcOptions loose, strict;
  loose.t_diff = 1e9;
  strict.t_diff = 1e-9;
  const auto few = ClusterMiniBuckets(sketch, loose);
  const auto many = ClusterMiniBuckets(sketch, strict);
  EXPECT_LT(few.size(), many.size());
  ExpectTilesDomain(few, sketch.grid.domain());
  ExpectTilesDomain(many, sketch.grid.domain());
}

TEST(DshcTest, WorksInThreeDimensions) {
  const Dataset data = GenerateUniform(5000, Rect::Cube(3, 0.0, 30.0), 13);
  SamplerOptions soptions;
  soptions.rate = 0.5;
  soptions.buckets_per_dim = 8;
  const DistributionSketch sketch =
      BuildSketch(data, data.Bounds(), soptions);
  DshcOptions options;
  const auto clusters = ClusterMiniBuckets(sketch, options);
  ExpectTilesDomain(clusters, sketch.grid.domain());
}

}  // namespace
}  // namespace dod
