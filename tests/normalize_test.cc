// Copyright 2026 The DOD Authors.

#include "data/normalize.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "common/stats.h"
#include "data/generators.h"

namespace dod {
namespace {

TEST(MinMaxTest, MapsOntoUnitBox) {
  Dataset data(2);
  data.Append(Point{10.0, -5.0});
  data.Append(Point{20.0, 5.0});
  data.Append(Point{15.0, 0.0});
  const NormalizationTransform transform = FitMinMax(data);
  const Dataset normalized = transform.Apply(data);
  const Rect bounds = normalized.Bounds();
  EXPECT_DOUBLE_EQ(bounds.lo(0), 0.0);
  EXPECT_DOUBLE_EQ(bounds.hi(0), 1.0);
  EXPECT_DOUBLE_EQ(bounds.lo(1), 0.0);
  EXPECT_DOUBLE_EQ(bounds.hi(1), 1.0);
  EXPECT_DOUBLE_EQ(normalized[2][0], 0.5);
}

TEST(MinMaxTest, CustomRange) {
  Dataset data(1);
  data.Append(Point{0.0});
  data.Append(Point{2.0});
  const Dataset normalized = FitMinMax(data, 100.0).Apply(data);
  EXPECT_DOUBLE_EQ(normalized[1][0], 100.0);
}

TEST(MinMaxTest, DegenerateDimensionMapsToZero) {
  Dataset data(2);
  data.Append(Point{1.0, 7.0});
  data.Append(Point{2.0, 7.0});
  const Dataset normalized = FitMinMax(data).Apply(data);
  EXPECT_DOUBLE_EQ(normalized[0][1], 0.0);
  EXPECT_DOUBLE_EQ(normalized[1][1], 0.0);
}

TEST(ZScoreTest, ZeroMeanUnitVariance) {
  const Dataset data = GenerateUniform(5000, Rect::Cube(3, -100.0, 300.0), 3);
  const Dataset normalized = FitZScore(data).Apply(data);
  for (int d = 0; d < 3; ++d) {
    RunningStats stats;
    for (size_t i = 0; i < normalized.size(); ++i) {
      stats.Add(normalized[static_cast<PointId>(i)][d]);
    }
    EXPECT_NEAR(stats.mean(), 0.0, 1e-9);
    EXPECT_NEAR(stats.stddev(), 1.0, 1e-9);
  }
}

TEST(TransformTest, InvertRoundTrips) {
  const Dataset data = GenerateUniform(100, Rect::Cube(2, 5.0, 50.0), 5);
  const NormalizationTransform transform = FitZScore(data);
  const Dataset normalized = transform.Apply(data);
  for (size_t i = 0; i < data.size(); i += 11) {
    const Point back =
        transform.Invert(normalized.GetPoint(static_cast<PointId>(i)));
    for (int d = 0; d < 2; ++d) {
      EXPECT_NEAR(back[d], data[static_cast<PointId>(i)][d], 1e-9);
    }
  }
}

TEST(TransformTest, NormalizationPreservesOutlierStructure) {
  // Scaling features differently must not change which points are isolated
  // after min-max normalization (relative geometry within each dim).
  Dataset data(2);
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    data.Append(Point{rng.NextUniform(0.0, 1.0),
                      rng.NextUniform(0.0, 1e6)});
  }
  const PointId outlier = data.Append(Point{5.0, 5e6});
  const Dataset normalized = FitMinMax(data).Apply(data);
  // The injected point stays extremal in both dimensions.
  const Rect bounds = normalized.Bounds();
  EXPECT_DOUBLE_EQ(normalized[outlier][0], bounds.hi(0));
  EXPECT_DOUBLE_EQ(normalized[outlier][1], bounds.hi(1));
}

}  // namespace
}  // namespace dod
