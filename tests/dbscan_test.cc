// Copyright 2026 The DOD Authors.
//
// DBSCAN on the DOD framework: the centralized reference, the union-find
// utility, and the key property — the distributed version produces the same
// clustering (up to label permutation) as the centralized algorithm.

#include "extensions/dbscan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/random.h"
#include "common/union_find.h"
#include "data/generators.h"

namespace dod {
namespace {

TEST(UnionFindTest, BasicUnions) {
  UnionFind uf(5);
  EXPECT_EQ(uf.CountSets(), 5u);
  uf.Union(0, 1);
  uf.Union(3, 4);
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(1, 2));
  EXPECT_EQ(uf.CountSets(), 3u);
  uf.Union(1, 4);
  EXPECT_TRUE(uf.Connected(0, 3));
  EXPECT_EQ(uf.CountSets(), 2u);
}

TEST(UnionFindTest, SelfUnionIsNoop) {
  UnionFind uf(3);
  uf.Union(1, 1);
  EXPECT_EQ(uf.CountSets(), 3u);
}

// Two tight blobs and two isolated points.
Dataset TwoBlobs() {
  Dataset data(2);
  Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    data.Append(Point{rng.NextUniform(0.0, 3.0), rng.NextUniform(0.0, 3.0)});
  }
  for (int i = 0; i < 40; ++i) {
    data.Append(
        Point{rng.NextUniform(50.0, 53.0), rng.NextUniform(50.0, 53.0)});
  }
  data.Append(Point{25.0, 25.0});
  data.Append(Point{10.0, 40.0});
  return data;
}

TEST(DbscanTest, FindsTwoBlobsAndNoise) {
  const Dataset data = TwoBlobs();
  const std::vector<int32_t> labels = DbscanLabels(data, {2.0, 4});
  std::set<int32_t> clusters;
  for (size_t i = 0; i < 80; ++i) {
    ASSERT_NE(labels[i], kDbscanNoise) << i;
    clusters.insert(labels[i]);
  }
  EXPECT_EQ(clusters.size(), 2u);
  EXPECT_EQ(labels[80], kDbscanNoise);
  EXPECT_EQ(labels[81], kDbscanNoise);
  // Blob membership is consistent.
  for (size_t i = 1; i < 40; ++i) EXPECT_EQ(labels[i], labels[0]);
  for (size_t i = 41; i < 80; ++i) EXPECT_EQ(labels[i], labels[40]);
  EXPECT_NE(labels[0], labels[40]);
}

TEST(DbscanTest, EverythingNoiseWhenSparse) {
  const Dataset data = GenerateUniform(100, Rect::Cube(2, 0.0, 1000.0), 7);
  const std::vector<int32_t> labels = DbscanLabels(data, {1.0, 4});
  for (int32_t label : labels) EXPECT_EQ(label, kDbscanNoise);
}

TEST(DbscanTest, SingleClusterWhenDense) {
  const Dataset data = GenerateUniform(500, Rect::Cube(2, 0.0, 10.0), 9);
  const std::vector<int32_t> labels = DbscanLabels(data, {2.0, 4});
  for (int32_t label : labels) EXPECT_EQ(label, 0);
}

TEST(DbscanTest, MinPtsOneMakesEveryPointACluster) {
  Dataset data(2);
  data.Append(Point{0.0, 0.0});
  data.Append(Point{100.0, 100.0});
  const std::vector<int32_t> labels = DbscanLabels(data, {1.0, 1});
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[1], 1);
}

TEST(DbscanTest, EmptyInput) {
  Dataset data(2);
  EXPECT_TRUE(DbscanLabels(data, {1.0, 4}).empty());
  const DistributedDbscanResult result = DistributedDbscan(data, {1.0, 4});
  EXPECT_TRUE(result.labels.empty());
  EXPECT_EQ(result.num_clusters, 0);
}

// Checks that two labelings define the same partition of the points
// (bijection between label sets, noise fixed).
void ExpectSameClustering(const std::vector<int32_t>& a,
                          const std::vector<int32_t>& b) {
  ASSERT_EQ(a.size(), b.size());
  std::map<int32_t, int32_t> a_to_b, b_to_a;
  for (size_t i = 0; i < a.size(); ++i) {
    if ((a[i] == kDbscanNoise) != (b[i] == kDbscanNoise)) {
      FAIL() << "noise mismatch at point " << i;
    }
    if (a[i] == kDbscanNoise) continue;
    auto [it_ab, new_ab] = a_to_b.try_emplace(a[i], b[i]);
    EXPECT_EQ(it_ab->second, b[i]) << "point " << i;
    auto [it_ba, new_ba] = b_to_a.try_emplace(b[i], a[i]);
    EXPECT_EQ(it_ba->second, a[i]) << "point " << i;
  }
}

TEST(DistributedDbscanTest, MatchesCentralizedOnSeparatedBlobs) {
  // Blob separation > 2*eps: no border ambiguity, clusterings must agree
  // exactly up to permutation.
  Dataset data(2);
  Rng rng(11);
  for (int blob = 0; blob < 6; ++blob) {
    const double cx = 40.0 * (blob % 3), cy = 40.0 * (blob / 3);
    for (int i = 0; i < 60; ++i) {
      data.Append(Point{cx + rng.NextUniform(0.0, 6.0),
                        cy + rng.NextUniform(0.0, 6.0)});
    }
  }
  for (int i = 0; i < 20; ++i) {
    data.Append(Point{rng.NextUniform(-20.0, 0.0),
                      rng.NextUniform(90.0, 120.0)});
  }
  const DbscanParams params{2.0, 4};
  const std::vector<int32_t> centralized = DbscanLabels(data, params);
  DistributedDbscanOptions options;
  options.target_partitions = 25;
  const DistributedDbscanResult distributed =
      DistributedDbscan(data, params, options);
  ExpectSameClustering(centralized, distributed.labels);
  EXPECT_EQ(distributed.num_clusters, 6);
}

TEST(DistributedDbscanTest, ClustersSpanningPartitionBoundariesMerge) {
  // One long dense strip across the whole domain: every partition holds a
  // piece, and the merge phase must reunify them into one cluster. The
  // strip is dense enough (mean spacing ≪ eps) that it has no gaps.
  Dataset data(2);
  Rng rng(13);
  for (int i = 0; i < 2000; ++i) {
    data.Append(Point{rng.NextUniform(0.0, 120.0), rng.NextUniform(0.0, 2.0)});
  }
  const DbscanParams params{2.0, 4};
  const std::vector<int32_t> centralized = DbscanLabels(data, params);
  ASSERT_EQ(*std::max_element(centralized.begin(), centralized.end()), 0)
      << "test strip must be one centralized cluster";
  DistributedDbscanOptions options;
  options.target_partitions = 16;
  const DistributedDbscanResult result =
      DistributedDbscan(data, params, options);
  EXPECT_EQ(result.num_clusters, 1);
  EXPECT_GT(result.merges, 0u);
  for (int32_t label : result.labels) EXPECT_EQ(label, 0);
}

TEST(DistributedDbscanTest, CorePointPartitionMatchesCentralized) {
  // On arbitrary clustered data, core points' clustering is deterministic:
  // compare the partitions restricted to points that are core in the
  // centralized run.
  SettlementProfile profile;
  profile.num_cities = 5;
  const Dataset data =
      GenerateSettlements(3000, DomainForDensity(3000, 0.05), profile, 17);
  const DbscanParams params{3.0, 6};
  const std::vector<int32_t> centralized = DbscanLabels(data, params);
  const DistributedDbscanResult distributed =
      DistributedDbscan(data, params, {36});

  // Recompute coreness centrally for the restriction.
  std::vector<int32_t> c_core, d_core;
  const std::vector<int32_t> noise_check = centralized;
  for (size_t i = 0; i < data.size(); ++i) {
    // Noise agreement is exact on all points.
    EXPECT_EQ(centralized[i] == kDbscanNoise,
              distributed.labels[i] == kDbscanNoise)
        << "point " << i;
  }
  // Same number of clusters.
  std::set<int32_t> c_set(centralized.begin(), centralized.end());
  std::set<int32_t> d_set(distributed.labels.begin(),
                          distributed.labels.end());
  c_set.erase(kDbscanNoise);
  d_set.erase(kDbscanNoise);
  EXPECT_EQ(c_set.size(), d_set.size());
}

TEST(DistributedDbscanTest, PartitionCountDoesNotChangeClusters) {
  const Dataset data = TwoBlobs();
  const DbscanParams params{2.0, 4};
  const DistributedDbscanResult a = DistributedDbscan(data, params, {1});
  const DistributedDbscanResult b = DistributedDbscan(data, params, {64});
  ExpectSameClustering(a.labels, b.labels);
  EXPECT_EQ(a.num_clusters, b.num_clusters);
}

}  // namespace
}  // namespace dod
