// Copyright 2026 The DOD Authors.
//
// Property / metamorphic tests of the outlier definition (Def. 2.2) and
// its implementations. Each invariant runs over >= 200 seeded random
// datasets, across the centralized detectors (Nested-Loop, Cell-Based,
// Pivot) under both --kernels=scalar and auto, and — for the distributed
// agreement property — across the pipeline strategies against the
// brute-force oracle.
//
// Datasets use integer coordinates so that translation by an integer
// vector is exact in floating point: distances, and therefore verdicts,
// are bit-identical before and after the move.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/dataset.h"
#include "common/random.h"
#include "core/pipeline.h"
#include "detection/cell_based.h"
#include "detection/detector.h"
#include "detection/nested_loop.h"
#include "detection/pivot.h"

namespace dod {
namespace {

constexpr uint64_t kBaseSeed = 0xD0D5EEDULL;
constexpr KernelMode kKernelModes[] = {KernelMode::kScalar,
                                       KernelMode::kAuto};

// A clustered dataset with integer coordinates: a few dense blobs (mostly
// inliers) plus a handful of far-away isolated points (mostly outliers).
Dataset MakeClusteredIntDataset(uint64_t seed, int dims) {
  Rng rng(seed);
  Dataset data(dims);
  double p[kMaxDimensions];
  const int num_clusters = 2 + static_cast<int>(rng.NextBounded(3));
  for (int c = 0; c < num_clusters; ++c) {
    double center[kMaxDimensions];
    for (int d = 0; d < dims; ++d) {
      center[d] =
          static_cast<double>(static_cast<int64_t>(rng.NextBounded(201)) -
                              100);
    }
    const size_t cluster_points = 25 + rng.NextBounded(40);
    for (size_t i = 0; i < cluster_points; ++i) {
      for (int d = 0; d < dims; ++d) {
        p[d] = center[d] +
               static_cast<double>(static_cast<int64_t>(rng.NextBounded(17)) -
                                   8);
      }
      data.Append(p);
    }
  }
  const size_t isolated = 1 + rng.NextBounded(6);
  for (size_t i = 0; i < isolated; ++i) {
    for (int d = 0; d < dims; ++d) {
      p[d] = static_cast<double>(static_cast<int64_t>(rng.NextBounded(4001)) -
                                 2000);
    }
    data.Append(p);
  }
  return data;
}

DetectionParams MakeParams(uint64_t seed, KernelMode mode) {
  Rng rng(seed ^ 0x9E3779B97F4A7C15ULL);
  DetectionParams params;
  params.radius = static_cast<double>(4 + rng.NextBounded(20));
  params.min_neighbors = static_cast<int>(1 + rng.NextBounded(6));
  params.seed = seed;
  params.kernels = mode;
  return params;
}

struct NamedDetector {
  const char* name;
  std::unique_ptr<Detector> detector;
};

std::vector<NamedDetector> AllDetectors() {
  std::vector<NamedDetector> detectors;
  detectors.push_back({"NestedLoop", MakeDetector(AlgorithmKind::kNestedLoop)});
  detectors.push_back({"CellBased", MakeDetector(AlgorithmKind::kCellBased)});
  detectors.push_back({"Pivot", std::make_unique<PivotDetector>(4)});
  return detectors;
}

std::vector<uint32_t> Detect(const Detector& detector, const Dataset& data,
                             const DetectionParams& params) {
  return detector.DetectOutliers(data, data.size(), params);
}

// --- Invariant 1: permutation + integer translation invariance ----------
//
// Outlierness depends only on pairwise distances, so (a) relabeling the
// points and (b) translating everything by an integer vector (exact in
// FP) must both preserve the outlier *set*. 40 seeds x 3 detectors x
// 2 kernel modes = 240 cases.
TEST(PropertyTest, PermutationAndTranslationInvariance) {
  const auto detectors = AllDetectors();
  for (uint64_t seed = 0; seed < 40; ++seed) {
    const int dims = 1 + static_cast<int>(seed % 3);
    const Dataset data = MakeClusteredIntDataset(kBaseSeed + seed, dims);

    // One permutation and one integer translation per seed.
    Rng rng(kBaseSeed * 31 + seed);
    std::vector<uint32_t> perm(data.size());
    for (uint32_t i = 0; i < perm.size(); ++i) perm[i] = i;
    Shuffle(perm, rng);
    double shift[kMaxDimensions];
    for (int d = 0; d < dims; ++d) {
      shift[d] = static_cast<double>(
          static_cast<int64_t>(rng.NextBounded(20001)) - 10000);
    }

    Dataset permuted(dims);
    double p[kMaxDimensions];
    for (uint32_t i = 0; i < data.size(); ++i) permuted.Append(data[perm[i]]);
    Dataset translated(dims);
    for (uint32_t i = 0; i < data.size(); ++i) {
      for (int d = 0; d < dims; ++d) p[d] = data[i][d] + shift[d];
      translated.Append(p);
    }

    for (KernelMode mode : kKernelModes) {
      const DetectionParams params = MakeParams(seed, mode);
      for (const NamedDetector& entry : detectors) {
        const std::vector<uint32_t> base = Detect(*entry.detector, data,
                                                  params);
        std::vector<uint32_t> via_perm;
        for (uint32_t local : Detect(*entry.detector, permuted, params)) {
          via_perm.push_back(perm[local]);
        }
        std::sort(via_perm.begin(), via_perm.end());
        EXPECT_EQ(base, via_perm)
            << entry.name << " seed=" << seed << ": outlier set changed "
            << "under permutation";
        EXPECT_EQ(base, Detect(*entry.detector, translated, params))
            << entry.name << " seed=" << seed << ": outlier set changed "
            << "under integer translation";
      }
    }
  }
}

// --- Invariant 2: monotonicity in r and k -------------------------------
//
// Growing the radius only adds neighbors, shrinking k only relaxes the
// outlier test: neither may produce a NEW outlier. 40 x 3 x 2 = 240 cases.
TEST(PropertyTest, MonotoneInRadiusAndNeighborThreshold) {
  const auto detectors = AllDetectors();
  for (uint64_t seed = 0; seed < 40; ++seed) {
    const int dims = 1 + static_cast<int>(seed % 3);
    const Dataset data = MakeClusteredIntDataset(kBaseSeed * 7 + seed, dims);
    for (KernelMode mode : kKernelModes) {
      const DetectionParams params = MakeParams(seed * 3 + 1, mode);
      for (const NamedDetector& entry : detectors) {
        const std::vector<uint32_t> base = Detect(*entry.detector, data,
                                                  params);

        DetectionParams grown = params;
        grown.radius = params.radius + 3.0;
        const std::vector<uint32_t> fewer_by_r =
            Detect(*entry.detector, data, grown);
        EXPECT_TRUE(std::includes(base.begin(), base.end(),
                                  fewer_by_r.begin(), fewer_by_r.end()))
            << entry.name << " seed=" << seed
            << ": growing r added an outlier";

        if (params.min_neighbors > 1) {
          DetectionParams relaxed = params;
          relaxed.min_neighbors = params.min_neighbors - 1;
          const std::vector<uint32_t> fewer_by_k =
              Detect(*entry.detector, data, relaxed);
          EXPECT_TRUE(std::includes(base.begin(), base.end(),
                                    fewer_by_k.begin(), fewer_by_k.end()))
              << entry.name << " seed=" << seed
              << ": shrinking k added an outlier";
        }
      }
    }
  }
}

// --- Invariant 3: duplication makes an inlier ---------------------------
//
// Appending k exact copies of any point gives it (and each copy) at least
// k zero-distance neighbors, so none of them can be an outlier, while
// every point that already was an inlier stays one (neighborhoods only
// grow). 40 x 3 x 2 = 240 cases.
TEST(PropertyTest, DuplicatingAPointMakesItInlier) {
  const auto detectors = AllDetectors();
  for (uint64_t seed = 0; seed < 40; ++seed) {
    const int dims = 1 + static_cast<int>(seed % 3);
    const Dataset data = MakeClusteredIntDataset(kBaseSeed * 13 + seed, dims);
    Rng rng(kBaseSeed * 17 + seed);
    const uint32_t victim =
        static_cast<uint32_t>(rng.NextBounded(data.size()));

    for (KernelMode mode : kKernelModes) {
      const DetectionParams params = MakeParams(seed * 5 + 2, mode);
      for (const NamedDetector& entry : detectors) {
        const std::vector<uint32_t> base = Detect(*entry.detector, data,
                                                  params);

        Dataset augmented(dims);
        augmented.AppendAll(data);
        for (int i = 0; i < params.min_neighbors; ++i) {
          augmented.Append(data[victim]);
        }
        const std::vector<uint32_t> after =
            Detect(*entry.detector, augmented, params);

        // Neither the victim nor any copy may be an outlier...
        for (uint32_t id : after) {
          EXPECT_NE(id, victim)
              << entry.name << " seed=" << seed
              << ": point stayed an outlier despite k duplicates";
          EXPECT_LT(id, data.size())
              << entry.name << " seed=" << seed
              << ": a duplicate was itself reported as outlier";
        }
        // ...and no previously-inlying point may become one.
        EXPECT_TRUE(std::includes(base.begin(), base.end(), after.begin(),
                                  after.end()))
            << entry.name << " seed=" << seed
            << ": adding points created a new outlier";
      }
    }
  }
}

// --- Invariant 4: distributed == centralized (Lemma 3.1) ----------------
//
// Every partitioning strategy must reproduce the brute-force centralized
// verdict exactly. 25 seeds x 4 strategies x 2 kernel modes = 200 cases,
// alternating the thread count between the sequential and parallel
// runtime paths.
TEST(PropertyTest, PipelineAgreesWithCentralizedOracle) {
  struct StrategyCase {
    StrategyKind strategy;
    AlgorithmKind algorithm;
  };
  const StrategyCase cases[] = {
      {StrategyKind::kDomain, AlgorithmKind::kNestedLoop},
      {StrategyKind::kUniSpace, AlgorithmKind::kNestedLoop},
      {StrategyKind::kUniSpace, AlgorithmKind::kCellBased},
      {StrategyKind::kDmt, AlgorithmKind::kCellBased},
  };

  for (uint64_t seed = 0; seed < 25; ++seed) {
    const Dataset data = MakeClusteredIntDataset(kBaseSeed * 19 + seed, 2);
    for (KernelMode mode : kKernelModes) {
      DetectionParams params = MakeParams(seed * 7 + 3, mode);
      const std::vector<PointId> oracle =
          DetectOutliersCentralized(data, AlgorithmKind::kBruteForce, params);

      for (const StrategyCase& c : cases) {
        DodConfig config =
            c.strategy == StrategyKind::kDmt
                ? DodConfig::Dmt(params)
                : DodConfig::Baseline(params, c.strategy, c.algorithm);
        config.sampler.rate = 0.4;
        config.num_blocks = 4;
        config.num_reduce_tasks = 4;
        config.num_threads = (seed % 2 == 0) ? 1 : 4;
        config.seed = kBaseSeed + seed;

        std::vector<PointId> outliers =
            DodPipeline(config).RunOrDie(data).outliers;
        std::sort(outliers.begin(), outliers.end());
        EXPECT_EQ(oracle, outliers)
            << config.Label() << " seed=" << seed << " threads="
            << config.num_threads << ": disagrees with brute-force oracle";
      }
    }
  }
}

}  // namespace
}  // namespace dod
