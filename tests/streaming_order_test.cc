// Copyright 2026 The DOD Authors.
//
// Out-of-order streaming conformance suite. The correctness contract under
// test: with a bounded-lateness watermark policy, *any* arrival permutation
// within lateness L admits the canonical (timestamp, source, arrival) block
// sequence, so the admitted-order delta stream — and the final flagged set
// — is byte-identical to in-order delivery. The headline is a seeded
// permutation-fuzz harness (>= 200 cases across threads x kernels x
// summaries on/off x count-/time-based windows, cross-checked against the
// batch pipeline oracle); around it sit the admission edge cases (boundary
// timestamps, duplicate timestamps across sources, idle-source stalls,
// late-block rejection), kill->resume with a non-empty reorder buffer, the
// checkpoint version-compatibility matrix (v2 upgrade rebuilds per-source
// clocks deterministically; future versions refuse gracefully), and the
// dod_stream_cli replay/oracle paths through the real binary.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "common/random.h"
#include "core/pipeline.h"
#include "data/generators.h"
#include "durability/checkpoint.h"
#include "durability/payload.h"
#include "streaming/streaming_detector.h"

#ifndef DOD_STREAM_CLI_PATH
#define DOD_STREAM_CLI_PATH "build/tools/dod_stream_cli"
#endif

namespace dod {
namespace {

namespace fs = std::filesystem;

StreamingConfig BaseConfig(double radius, int k) {
  StreamingConfig config;
  config.params.radius = radius;
  config.params.min_neighbors = k;
  config.params.seed = 7;
  return config;
}

StreamBlock MakeBlock(std::initializer_list<std::pair<PointId, Point>> points,
                      double timestamp, uint32_t source_id = 0) {
  StreamBlock block(points.begin()->second.dims());
  for (const auto& [id, p] : points) block.Add(id, p.data());
  block.timestamp = timestamp;
  block.source_id = source_id;
  return block;
}

class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_(fs::temp_directory_path() /
              (name + "-" + std::to_string(::getpid()))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

// The comparable essence of one admitted round: verdict flips plus the
// window-shape stats that must not depend on arrival order. (summary_path
// and timing legitimately differ across configurations and are excluded.)
struct RoundRecord {
  uint64_t round = 0;
  std::vector<PointId> flagged;
  std::vector<PointId> cleared;
  size_t appended = 0;
  size_t expired = 0;
  size_t resident = 0;

  bool operator==(const RoundRecord& o) const {
    return round == o.round && flagged == o.flagged && cleared == o.cleared &&
           appended == o.appended && expired == o.expired &&
           resident == o.resident;
  }
};

RoundRecord Record(const OutlierDelta& delta) {
  RoundRecord r;
  r.round = delta.stats.round;
  r.flagged = delta.newly_flagged;
  r.cleared = delta.newly_cleared;
  r.appended = delta.stats.appended_points;
  r.expired = delta.stats.expired_points;
  r.resident = delta.stats.resident_points;
  return r;
}

std::string Describe(const RoundRecord& r) {
  std::ostringstream out;
  out << "round=" << r.round << " appended=" << r.appended
      << " expired=" << r.expired << " resident=" << r.resident
      << " flagged=[";
  for (PointId id : r.flagged) out << id << ",";
  out << "] cleared=[";
  for (PointId id : r.cleared) out << id << ",";
  out << "]";
  return out.str();
}

// A multi-source replay schedule: block b carries timestamp b and belongs
// to source b % num_sources, so canonical admission order is simply block
// order while sources interleave.
struct OrderSchedule {
  Dataset data = Dataset(2);
  size_t block_size = 15;
  size_t num_sources = 2;

  size_t num_blocks() const { return data.size() / block_size; }
  StreamBlock Block(size_t b) const {
    StreamBlock block(data.dims());
    for (size_t i = b * block_size; i < (b + 1) * block_size; ++i) {
      block.Add(static_cast<PointId>(i), data[static_cast<PointId>(i)]);
    }
    block.timestamp = static_cast<double>(b);
    block.source_id = static_cast<uint32_t>(b % num_sources);
    return block;
  }
};

// From-scratch batch verdicts over the schedule's final window contents
// (per-source count budget or per-source time-based expiry).
std::vector<PointId> FinalWindowOracle(const OrderSchedule& schedule,
                                       const StreamingConfig& config) {
  Dataset window(schedule.data.dims());
  std::vector<PointId> window_ids;
  for (size_t b = 0; b < schedule.num_blocks(); ++b) {
    const size_t later_same_source =
        (schedule.num_blocks() - 1 - b) / schedule.num_sources;
    bool resident = true;
    if (config.window_blocks > 0) {
      resident = later_same_source < config.window_blocks;
    }
    if (config.window_seconds > 0.0) {
      // The source's high-water clock is its last block's timestamp; the
      // block expires once that clock outruns it by window_seconds.
      const double age =
          static_cast<double>(later_same_source * schedule.num_sources);
      resident = resident && age < config.window_seconds;
    }
    if (!resident) continue;
    for (size_t i = b * schedule.block_size;
         i < (b + 1) * schedule.block_size; ++i) {
      window.Append(schedule.data[static_cast<PointId>(i)]);
      window_ids.push_back(static_cast<PointId>(i));
    }
  }
  if (window.empty()) return {};
  DodConfig oracle = DodConfig::Dmt(config.params);
  oracle.seed = config.params.seed;
  DodPipeline pipeline(oracle);
  const DodResult result = pipeline.RunOrDie(window);
  std::vector<PointId> outliers;
  outliers.reserve(result.outliers.size());
  for (PointId local : result.outliers) outliers.push_back(window_ids[local]);
  return outliers;
}

// ---------------------------------------------------------------------------
// The permutation-fuzz property.

TEST(StreamingOrderFuzzTest, PermutationsWithinLatenessMatchInOrder) {
  const double kLateness = 5.0;
  OrderSchedule schedule;
  schedule.data = GenerateUniform(360, DomainForDensity(360, 2.0), 4242);
  ASSERT_EQ(schedule.num_blocks(), 24u);

  struct Case {
    int threads;
    KernelMode kernels;
    bool summaries;
    bool time_window;
  };
  std::vector<Case> cases;
  for (int threads : {1, 4}) {
    for (KernelMode kernels : {KernelMode::kScalar, KernelMode::kAuto}) {
      for (bool summaries : {false, true}) {
        for (bool time_window : {false, true}) {
          cases.push_back({threads, kernels, summaries, time_window});
        }
      }
    }
  }

  int total_cases = 0;
  for (size_t c = 0; c < cases.size(); ++c) {
    StreamingConfig config = BaseConfig(1.5, 4);
    config.params.kernels = cases[c].kernels;
    config.num_threads = cases[c].threads;
    config.summaries = cases[c].summaries;
    if (cases[c].time_window) {
      // Sources see every other timestamp: 7.5 keeps 4 blocks resident per
      // source, matching the count-based variant's budget.
      config.window_seconds = 7.5;
    } else {
      config.window_blocks = 4;
    }

    // In-order reference: watermark disabled, canonical delivery order.
    std::vector<RoundRecord> reference;
    std::vector<PointId> final_outliers;
    {
      auto created = StreamingDetector::Create(config);
      ASSERT_TRUE(created.ok()) << created.status().ToString();
      for (size_t b = 0; b < schedule.num_blocks(); ++b) {
        auto fed = created.value()->Feed(schedule.Block(b));
        ASSERT_TRUE(fed.ok()) << fed.status().ToString();
        reference.push_back(Record(fed.value()));
      }
      final_outliers = created.value()->outliers();
    }
    // The reference itself must agree with a from-scratch batch run over
    // the final window (the streaming suite proves every round; the fuzz
    // anchors its reference once per configuration).
    ASSERT_EQ(final_outliers, FinalWindowOracle(schedule, config))
        << "config " << c;

    StreamingConfig shuffled_config = config;
    shuffled_config.watermark.enabled = true;
    shuffled_config.watermark.lateness = kLateness;

    for (uint64_t seed = 1; seed <= 13; ++seed) {
      ++total_cases;
      SCOPED_TRACE("config=" + std::to_string(c) +
                   " seed=" + std::to_string(seed));

      // Jittered arrival order: block b's arrival priority is b + U[0,L),
      // so no block ever arrives more than L behind a block it precedes —
      // every permutation the shuffle can produce stays admissible.
      Rng rng(seed * 0x9E3779B9ULL + c);
      std::vector<std::pair<double, size_t>> order;
      order.reserve(schedule.num_blocks());
      for (size_t b = 0; b < schedule.num_blocks(); ++b) {
        order.emplace_back(static_cast<double>(b) +
                               rng.NextDouble() * kLateness,
                           b);
      }
      std::stable_sort(order.begin(), order.end());

      auto created = StreamingDetector::Create(shuffled_config);
      ASSERT_TRUE(created.ok()) << created.status().ToString();
      StreamingDetector& detector = *created.value();

      std::vector<RoundRecord> got;
      for (const auto& [priority, b] : order) {
        auto ingested = detector.Ingest(schedule.Block(b));
        ASSERT_TRUE(ingested.ok()) << ingested.status().ToString();
        for (const OutlierDelta& delta : ingested.value().admitted) {
          got.push_back(Record(delta));
        }
      }
      auto flushed = detector.Flush();
      ASSERT_TRUE(flushed.ok()) << flushed.status().ToString();
      for (const OutlierDelta& delta : flushed.value().admitted) {
        got.push_back(Record(delta));
      }

      EXPECT_EQ(detector.late_dropped(), 0u);
      EXPECT_EQ(detector.arrivals(), schedule.num_blocks());
      EXPECT_EQ(detector.buffered_blocks(), 0u);
      ASSERT_EQ(got.size(), reference.size());
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_TRUE(got[i] == reference[i])
            << "admitted round " << i + 1 << "\n  got:  "
            << Describe(got[i]) << "\n  want: " << Describe(reference[i]);
      }
      ASSERT_EQ(detector.outliers(), final_outliers);
    }
  }
  // The satellite contract: at least 200 seeded permutation cases.
  EXPECT_GE(total_cases, 200);
}

// ---------------------------------------------------------------------------
// Admission edge cases.

TEST(StreamingOrderTest, FeedIsFailedPreconditionInWatermarkMode) {
  StreamingConfig config = BaseConfig(1.0, 2);
  config.watermark.enabled = true;
  config.watermark.lateness = 2.0;
  auto created = StreamingDetector::Create(config);
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(
      created.value()->Feed(MakeBlock({{0, {0.0, 0.0}}}, 0.0)).status().code(),
      StatusCode::kFailedPrecondition);
}

TEST(StreamingOrderTest, IngestWithoutPolicyAdmitsImmediately) {
  auto created = StreamingDetector::Create(BaseConfig(1.0, 2));
  ASSERT_TRUE(created.ok());
  auto ingested = created.value()->Ingest(MakeBlock({{0, {0.0, 0.0}}}, 0.0));
  ASSERT_TRUE(ingested.ok());
  EXPECT_EQ(ingested.value().admitted.size(), 1u);
  EXPECT_EQ(ingested.value().buffered, 0u);
  EXPECT_EQ(created.value()->rounds(), 1u);
}

TEST(StreamingOrderTest, RejectsNonFiniteOrNegativeWatermarkPolicy) {
  StreamingConfig config = BaseConfig(1.0, 2);
  config.watermark.enabled = true;
  config.watermark.lateness = -1.0;
  EXPECT_EQ(StreamingDetector::Create(config).status().code(),
            StatusCode::kInvalidArgument);
  config.watermark.lateness = std::nan("");
  EXPECT_EQ(StreamingDetector::Create(config).status().code(),
            StatusCode::kInvalidArgument);
  config.watermark.lateness = 1.0;
  config.watermark.idle_timeout = -0.5;
  EXPECT_EQ(StreamingDetector::Create(config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StreamingOrderTest, BlockExactlyAtWatermarkIsBufferedNotLate) {
  StreamingConfig config = BaseConfig(1.0, 2);
  config.watermark.enabled = true;
  config.watermark.lateness = 5.0;
  auto created = StreamingDetector::Create(config);
  ASSERT_TRUE(created.ok());
  StreamingDetector& detector = *created.value();

  auto first = detector.Ingest(MakeBlock({{0, {0.0, 0.0}}}, 10.0));
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.value().has_watermark);
  EXPECT_EQ(first.value().watermark, 5.0);
  EXPECT_EQ(first.value().buffered, 1u);
  EXPECT_TRUE(first.value().admitted.empty());

  // ts == max_seen - L sits exactly on the watermark: admissible (the
  // canonical order can still absorb it), so it buffers rather than drops.
  auto boundary = detector.Ingest(MakeBlock({{1, {50.0, 50.0}}}, 5.0));
  ASSERT_TRUE(boundary.ok());
  EXPECT_EQ(boundary.value().buffered, 2u);
  EXPECT_EQ(detector.late_dropped(), 0u);

  // Strictly behind the watermark: structured kOutOfRange, counted, and
  // the window/buffer unchanged.
  auto late = detector.Ingest(MakeBlock({{2, {70.0, 70.0}}}, 4.9));
  EXPECT_EQ(late.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(detector.late_dropped(), 1u);
  EXPECT_EQ(detector.buffered_blocks(), 2u);
  EXPECT_EQ(detector.arrivals(), 2u);
  EXPECT_EQ(detector.rounds(), 0u);

  // Drain: canonical order is ts 5 first, then ts 10.
  auto flushed = detector.Flush();
  ASSERT_TRUE(flushed.ok());
  ASSERT_EQ(flushed.value().admitted.size(), 2u);
  EXPECT_EQ(flushed.value().admitted[0].newly_flagged,
            (std::vector<PointId>{1}));
  EXPECT_EQ(flushed.value().admitted[1].newly_flagged,
            (std::vector<PointId>{0}));
  EXPECT_EQ(detector.rounds(), 2u);
}

TEST(StreamingOrderTest, DuplicateTimestampsAcrossSourcesAdmitBySourceId) {
  StreamingConfig config = BaseConfig(1.0, 2);
  config.watermark.enabled = true;
  config.watermark.lateness = 5.0;
  auto created = StreamingDetector::Create(config);
  ASSERT_TRUE(created.ok());
  StreamingDetector& detector = *created.value();

  // Source 1's ts=3 block arrives *before* source 0's ts=3 block; the
  // canonical (timestamp, source, arrival) order must still admit source 0
  // first.
  ASSERT_TRUE(detector.Ingest(MakeBlock({{11, {40.0, 40.0}}}, 3.0, 1)).ok());
  ASSERT_TRUE(detector.Ingest(MakeBlock({{10, {-40.0, -40.0}}}, 3.0, 0)).ok());
  EXPECT_EQ(detector.buffered_blocks(), 2u);

  // Advance both source clocks past 3 + L so the duplicate pair drains.
  StreamBlock tick1(2);
  tick1.timestamp = 9.0;
  tick1.source_id = 1;
  ASSERT_TRUE(detector.Ingest(tick1).ok());
  StreamBlock tick0(2);
  tick0.timestamp = 9.0;
  tick0.source_id = 0;
  auto drained = detector.Ingest(tick0);
  ASSERT_TRUE(drained.ok());
  EXPECT_TRUE(drained.value().has_watermark);
  EXPECT_EQ(drained.value().watermark, 4.0);
  ASSERT_EQ(drained.value().admitted.size(), 2u);
  EXPECT_EQ(drained.value().admitted[0].newly_flagged,
            (std::vector<PointId>{10}));
  EXPECT_EQ(drained.value().admitted[1].newly_flagged,
            (std::vector<PointId>{11}));
}

TEST(StreamingOrderTest, IdleSourceStallsWatermarkUntilTimeout) {
  auto one_point_block = [](PointId id, double ts, uint32_t source) {
    const double c = static_cast<double>(id) * 100.0;
    StreamBlock block(2);
    const double p[2] = {c, c};
    block.Add(id, p);
    block.timestamp = ts;
    block.source_id = source;
    return block;
  };

  // Without an idle timeout a silent source pins the watermark forever:
  // nothing admits no matter how far source 0 runs ahead.
  StreamingConfig config = BaseConfig(1.0, 2);
  config.watermark.enabled = true;
  config.watermark.lateness = 2.0;
  {
    auto created = StreamingDetector::Create(config);
    ASSERT_TRUE(created.ok());
    StreamingDetector& detector = *created.value();
    ASSERT_TRUE(detector.Ingest(one_point_block(100, 0.0, 1)).ok());
    for (PointId i = 1; i <= 10; ++i) {
      auto ingested =
          detector.Ingest(one_point_block(i, static_cast<double>(i), 0));
      ASSERT_TRUE(ingested.ok());
      EXPECT_TRUE(ingested.value().admitted.empty());
    }
    EXPECT_EQ(detector.rounds(), 0u);
    EXPECT_EQ(detector.buffered_blocks(), 11u);
  }

  // With idle_timeout the lagging source drops out of the minimum once the
  // global clock outruns it, the watermark unsticks, and its own buffered
  // block is the first admission (canonical order).
  config.watermark.idle_timeout = 3.0;
  {
    auto created = StreamingDetector::Create(config);
    ASSERT_TRUE(created.ok());
    StreamingDetector& detector = *created.value();
    ASSERT_TRUE(detector.Ingest(one_point_block(100, 0.0, 1)).ok());
    std::vector<RoundRecord> admitted;
    for (PointId i = 1; i <= 10; ++i) {
      auto ingested =
          detector.Ingest(one_point_block(i, static_cast<double>(i), 0));
      ASSERT_TRUE(ingested.ok());
      for (const OutlierDelta& delta : ingested.value().admitted) {
        admitted.push_back(Record(delta));
      }
    }
    ASSERT_FALSE(admitted.empty());
    EXPECT_EQ(admitted[0].flagged, (std::vector<PointId>{100}));
    EXPECT_GT(detector.rounds(), 0u);
    EXPECT_LT(detector.buffered_blocks(), 11u);
    auto flushed = detector.Flush();
    ASSERT_TRUE(flushed.ok());
    EXPECT_EQ(detector.rounds(), 11u);
    EXPECT_EQ(detector.buffered_blocks(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Kill -> resume with a non-empty reorder buffer.

TEST(StreamingOrderCheckpointTest, ResumeWithNonEmptyReorderBuffer) {
  const double kLateness = 6.0;
  OrderSchedule schedule;
  schedule.data = GenerateUniform(300, DomainForDensity(300, 2.0), 17);
  ASSERT_EQ(schedule.num_blocks(), 20u);

  StreamingConfig config = BaseConfig(1.5, 4);
  config.window_blocks = 4;
  config.watermark.enabled = true;
  config.watermark.lateness = kLateness;
  config.job_tag = "reorder-resume";

  // One fixed jittered arrival order for both runs.
  Rng rng(123);
  std::vector<std::pair<double, size_t>> order;
  for (size_t b = 0; b < schedule.num_blocks(); ++b) {
    order.emplace_back(static_cast<double>(b) + rng.NextDouble() * kLateness,
                       b);
  }
  std::stable_sort(order.begin(), order.end());

  // Reference: the uninterrupted watermark run over that arrival order.
  std::vector<RoundRecord> reference;
  std::vector<PointId> final_outliers;
  {
    auto created = StreamingDetector::Create(config);
    ASSERT_TRUE(created.ok());
    for (const auto& [priority, b] : order) {
      auto ingested = created.value()->Ingest(schedule.Block(b));
      ASSERT_TRUE(ingested.ok());
      for (const OutlierDelta& delta : ingested.value().admitted) {
        reference.push_back(Record(delta));
      }
    }
    auto flushed = created.value()->Flush();
    ASSERT_TRUE(flushed.ok());
    for (const OutlierDelta& delta : flushed.value().admitted) {
      reference.push_back(Record(delta));
    }
    final_outliers = created.value()->outliers();
  }

  // Interrupted run: stop mid-stream with blocks still parked in the
  // reorder buffer, drop the service (simulated kill: the committed
  // checkpoint is all that survives).
  const size_t stop = 12;
  TempDir dir("dod-streaming-reorder-resume");
  config.checkpoint_dir = dir.str();
  std::vector<RoundRecord> got;
  size_t buffered_at_kill = 0;
  uint64_t rounds_at_kill = 0;
  {
    auto created = StreamingDetector::Create(config);
    ASSERT_TRUE(created.ok());
    for (size_t a = 0; a < stop; ++a) {
      auto ingested = created.value()->Ingest(schedule.Block(order[a].second));
      ASSERT_TRUE(ingested.ok());
      for (const OutlierDelta& delta : ingested.value().admitted) {
        got.push_back(Record(delta));
      }
    }
    buffered_at_kill = created.value()->buffered_blocks();
    rounds_at_kill = created.value()->rounds();
    ASSERT_GT(buffered_at_kill, 0u) << "schedule must park blocks mid-run";
  }

  config.resume = true;
  auto resumed = StreamingDetector::Create(config);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  StreamingDetector& detector = *resumed.value();
  EXPECT_EQ(detector.arrivals(), stop);
  EXPECT_EQ(detector.rounds(), rounds_at_kill);
  EXPECT_EQ(detector.buffered_blocks(), buffered_at_kill);

  for (size_t a = stop; a < order.size(); ++a) {
    auto ingested = detector.Ingest(schedule.Block(order[a].second));
    ASSERT_TRUE(ingested.ok()) << ingested.status().ToString();
    for (const OutlierDelta& delta : ingested.value().admitted) {
      got.push_back(Record(delta));
    }
  }
  auto flushed = detector.Flush();
  ASSERT_TRUE(flushed.ok());
  for (const OutlierDelta& delta : flushed.value().admitted) {
    got.push_back(Record(delta));
  }

  ASSERT_EQ(got.size(), reference.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(got[i] == reference[i])
        << "admitted round " << i + 1 << "\n  got:  " << Describe(got[i])
        << "\n  want: " << Describe(reference[i]);
  }
  EXPECT_EQ(detector.outliers(), final_outliers);
}

// ---------------------------------------------------------------------------
// Checkpoint version-compatibility matrix. The stores are written out of
// band through CheckpointStore + StreamingDetector::JobKeyFor, exactly the
// bytes an older (or newer) writer would have produced.

void CommitStreamSnapshot(const std::string& dir, const std::string& job_key,
                          uint64_t task_index, const std::string& payload) {
  auto store = CheckpointStore::Open(dir, job_key, false);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_TRUE(store.value()
                  ->CommitTask("stream", static_cast<int>(task_index), payload)
                  .ok());
  PayloadWriter latest;
  latest.U64(task_index);
  ASSERT_TRUE(store.value()->CommitTask("latest", 0, latest.str()).ok());
}

TEST(StreamingVersionMatrixTest, FutureSnapshotVersionIsFailedPrecondition) {
  // The mirror image of "v3 under a v2/v1 reader": any reader faced with a
  // snapshot version beyond its own refuses with kFailedPrecondition
  // instead of misparsing it — v2 readers apply this very check to v3.
  for (uint32_t version : {0u, 4u, 999u}) {
    TempDir dir("dod-streaming-vskew-" + std::to_string(version));
    StreamingConfig config = BaseConfig(1.0, 2);
    config.checkpoint_dir = dir.str();
    PayloadWriter w;
    w.U32(version);
    w.U64(1);  // round; everything past the version is junk to the check
    CommitStreamSnapshot(dir.str(), StreamingDetector::JobKeyFor(config), 1,
                         w.str());
    config.resume = true;
    auto resumed = StreamingDetector::Create(config);
    ASSERT_FALSE(resumed.ok()) << "version " << version;
    EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(resumed.status().ToString().find("version skew"),
              std::string::npos);
  }
}

TEST(StreamingVersionMatrixTest, V2UpgradeRebuildsSourceClocksDeterministically) {
  // A v2 (pre-watermark, single-window) snapshot: two isolated flagged
  // points in blocks at ts 5 and 7. Resuming with a watermark policy must
  // rebuild the source-0 clock to exactly 7.0 — from the legacy high-water
  // clock when the writer tracked timestamps, else from the resident
  // blocks' maximum — so the first post-upgrade watermark is 7 - L.
  for (bool legacy_saw : {true, false}) {
    TempDir dir(std::string("dod-streaming-v2-") +
                (legacy_saw ? "clock" : "blocks"));
    StreamingConfig config = BaseConfig(1.0, 2);
    config.checkpoint_dir = dir.str();
    config.watermark.enabled = true;
    config.watermark.lateness = 5.0;

    PayloadWriter w;
    w.U32(2);  // version
    w.U64(2);  // round
    w.U64(2);  // next_seq
    w.U8(legacy_saw ? 1 : 0);
    w.F64(legacy_saw ? 7.0 : 0.0);  // legacy single-window high water
    w.U32(2);                       // dims
    w.U8(0);                        // no persisted summaries
    w.U64(2);                       // blocks
    const double p0[2] = {0.0, 0.0};
    const double p1[2] = {50.0, 50.0};
    w.U64(0);  // seq
    w.F64(5.0);
    w.U64(1);
    w.U32(0);
    w.Raw(p0, sizeof(p0));
    w.U64(1);  // seq
    w.F64(7.0);
    w.U64(1);
    w.U32(1);
    w.Raw(p1, sizeof(p1));
    w.U64(2);  // outliers: both isolated points are flagged under r=1, k=2
    w.U32(0);
    w.U32(1);
    CommitStreamSnapshot(dir.str(), StreamingDetector::JobKeyFor(config), 2,
                         w.str());

    config.resume = true;
    auto resumed = StreamingDetector::Create(config);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    StreamingDetector& detector = *resumed.value();
    EXPECT_EQ(detector.rounds(), 2u);
    // v1/v2 admitted one block per round: the arrival cursor upgrades to
    // the round counter.
    EXPECT_EQ(detector.arrivals(), 2u);
    EXPECT_EQ(detector.outliers(), (std::vector<PointId>{0, 1}));

    // The rebuilt clock is exactly 7.0: the watermark sits at 2.0, so
    // ts 1.9 is late and ts 2.0 is admissible.
    auto late = detector.Ingest(MakeBlock({{9, {3.0, 3.0}}}, 1.9));
    EXPECT_EQ(late.status().code(), StatusCode::kOutOfRange);
    EXPECT_EQ(detector.late_dropped(), 1u);
    auto boundary = detector.Ingest(MakeBlock({{10, {80.0, 80.0}}}, 2.0));
    ASSERT_TRUE(boundary.ok()) << boundary.status().ToString();
    EXPECT_TRUE(boundary.value().has_watermark);
    EXPECT_EQ(boundary.value().watermark, 2.0);
    EXPECT_EQ(boundary.value().buffered, 1u);
  }
}

TEST(StreamingVersionMatrixTest, V3RoundTripRestoresReorderState) {
  // Sanity anchor for the matrix: a live v3 snapshot (watermark mode,
  // non-empty buffer) restores byte-identically — buffer, clocks, late
  // counter and all. (The hostile-record fuzz lives in
  // checkpoint_fuzz_test.cc.)
  TempDir dir("dod-streaming-v3-roundtrip");
  StreamingConfig config = BaseConfig(1.0, 2);
  config.checkpoint_dir = dir.str();
  config.watermark.enabled = true;
  config.watermark.lateness = 4.0;
  config.job_tag = "v3-roundtrip";
  {
    auto created = StreamingDetector::Create(config);
    ASSERT_TRUE(created.ok());
    ASSERT_TRUE(created.value()->Ingest(MakeBlock({{0, {0.0, 0.0}}}, 10.0)).ok());
    ASSERT_TRUE(created.value()->Ingest(MakeBlock({{1, {9.0, 9.0}}}, 8.0)).ok());
    EXPECT_EQ(created.value()
                  ->Ingest(MakeBlock({{2, {5.0, 5.0}}}, 1.0))
                  .status()
                  .code(),
              StatusCode::kOutOfRange);
    EXPECT_EQ(created.value()->buffered_blocks(), 2u);
  }
  config.resume = true;
  auto resumed = StreamingDetector::Create(config);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed.value()->buffered_blocks(), 2u);
  EXPECT_EQ(resumed.value()->arrivals(), 2u);
  EXPECT_EQ(resumed.value()->late_dropped(), 1u);
  EXPECT_EQ(resumed.value()->rounds(), 0u);
  auto flushed = resumed.value()->Flush();
  ASSERT_TRUE(flushed.ok());
  ASSERT_EQ(flushed.value().admitted.size(), 2u);
  EXPECT_EQ(flushed.value().admitted[0].newly_flagged,
            (std::vector<PointId>{1}));
  EXPECT_EQ(flushed.value().admitted[1].newly_flagged,
            (std::vector<PointId>{0}));
}

// ---------------------------------------------------------------------------
// dod_stream_cli replay paths through the real binary.

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult RunStreamCli(const std::string& args) {
  const std::string command =
      std::string(DOD_STREAM_CLI_PATH) + " " + args + " 2>&1";
  CommandResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 512> buffer;
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  const int status = pclose(pipe);
  result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(StreamCliOrderTest, ShuffledReplayDeltaLogMatchesInOrder) {
  const std::string base =
      "--generate uniform --n 1200 --block_size 100 --window 4 "
      "--radius 1.5 --k 4 --threads 2 --seed 21";
  const std::string in_order_log = testing::TempDir() + "/order_cli_a.log";
  const std::string shuffled_log = testing::TempDir() + "/order_cli_b.log";

  const CommandResult in_order =
      RunStreamCli(base + " --delta_out " + in_order_log);
  ASSERT_EQ(in_order.exit_code, 0) << in_order.output;
  const CommandResult shuffled = RunStreamCli(
      base + " --lateness 4 --reorder_seed 7 --delta_out " + shuffled_log);
  ASSERT_EQ(shuffled.exit_code, 0) << shuffled.output;

  const std::string want = ReadFile(in_order_log);
  ASSERT_FALSE(want.empty());
  EXPECT_EQ(ReadFile(shuffled_log), want);
  std::remove(in_order_log.c_str());
  std::remove(shuffled_log.c_str());
}

TEST(StreamCliOrderTest, OracleSkipEmptyVerdictsStillMatch) {
  const std::string base =
      "--generate uniform --n 900 --block_size 90 --window 4 "
      "--radius 1.5 --k 4 --seed 33 --oracle --lateness 3 --reorder_seed 11";
  const std::string full_log = testing::TempDir() + "/order_cli_full.log";
  const std::string skip_log = testing::TempDir() + "/order_cli_skip.log";

  const CommandResult full =
      RunStreamCli(base + " --delta_out " + full_log);
  ASSERT_EQ(full.exit_code, 0) << full.output;
  const CommandResult skip = RunStreamCli(base + " --oracle_skip_empty " +
                                          "--delta_out " + skip_log);
  ASSERT_EQ(skip.exit_code, 0) << skip.output;

  // Skipping empty-delta rounds changes only how often the batch oracle
  // re-runs — never the verdicts or the delta log.
  const std::string want = ReadFile(full_log);
  ASSERT_FALSE(want.empty());
  EXPECT_EQ(ReadFile(skip_log), want);
  std::remove(full_log.c_str());
  std::remove(skip_log.c_str());
}

TEST(StreamCliOrderTest, FlagValidationRejectsOrphans) {
  // --oracle_skip_empty without --oracle, and --reorder_seed / --idle_timeout
  // without --lateness, are configuration errors, not silent no-ops.
  EXPECT_EQ(RunStreamCli("--n 100 --oracle_skip_empty").exit_code, 1);
  EXPECT_EQ(RunStreamCli("--n 100 --reorder_seed 3").exit_code, 1);
  EXPECT_EQ(RunStreamCli("--n 100 --idle_timeout 2").exit_code, 1);
}

}  // namespace
}  // namespace dod
