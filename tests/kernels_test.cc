// Copyright 2026 The DOD Authors.
//
// The kernel exactness contract: scalar, blocked and AVX2 kernels return
// bit-identical results on every input — dimensions 1..kMaxDimensions,
// sizes straddling block boundaries, ties at exactly r, NaN/infinity
// coordinates — and every detector produces the same outlier set under
// --kernels=scalar and --kernels=auto, for any thread count.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/random.h"
#include "core/pipeline.h"
#include "data/generators.h"
#include "data/tiger_like.h"
#include "detection/brute_force.h"
#include "detection/cell_based.h"
#include "detection/nested_loop.h"
#include "detection/pivot.h"
#include "extensions/dbscan.h"
#include "extensions/knn_outliers.h"
#include "kernels/distance_kernels.h"
#include "kernels/soa_block.h"

namespace dod {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// Every implementation compiled into this binary and usable on this CPU.
std::vector<const KernelOps*> AvailableImpls() {
  std::vector<const KernelOps*> impls = {GetKernelOpsByName("scalar"),
                                         GetKernelOpsByName("blocked")};
  if (const KernelOps* avx2 = GetKernelOpsByName("avx2")) {
    impls.push_back(avx2);
  }
  return impls;
}

Dataset RandomDataset(int dims, size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset data(dims);
  Point p(dims);
  for (size_t i = 0; i < n; ++i) {
    for (int d = 0; d < dims; ++d) p[d] = rng.NextUniform(0.0, 10.0);
    data.Append(p);
    // Sprinkle exact duplicates so self-exclusion by id matters.
    if (i % 17 == 3) data.Append(p);
  }
  return data;
}

// Sizes around the block width: empty, partial, exact, width±1, multiple.
const size_t kBoundarySizes[] = {0,  1,  kSoaWidth - 1, kSoaWidth,
                                 kSoaWidth + 1, 2 * kSoaWidth - 1,
                                 2 * kSoaWidth, 2 * kSoaWidth + 1, 33};

TEST(SoABlockTest, LayoutAndPadding) {
  SoABlock block(3);
  EXPECT_TRUE(block.empty());
  EXPECT_EQ(block.num_blocks(), 0u);
  const double p0[] = {1.0, 2.0, 3.0};
  const double p1[] = {4.0, 5.0, 6.0};
  block.Append(p0, 7);
  block.Append(p1, 9);
  EXPECT_EQ(block.size(), 2u);
  EXPECT_EQ(block.num_blocks(), 1u);
  EXPECT_EQ(block.Lane(0, 0)[0], 1.0);
  EXPECT_EQ(block.Lane(0, 0)[1], 4.0);
  EXPECT_EQ(block.Lane(0, 2)[1], 6.0);
  EXPECT_EQ(block.IdAt(0), 7u);
  EXPECT_EQ(block.Ids(0)[1], 9u);
  // Pad slots: +inf coordinates, invalid id.
  for (size_t s = 2; s < kSoaWidth; ++s) {
    EXPECT_EQ(block.Lane(0, 1)[s], kInf);
    EXPECT_EQ(block.Ids(0)[s], kSoaInvalidId);
  }
}

TEST(DistanceKernelsTest, ImplsAgreeOnRandomData) {
  const std::vector<const KernelOps*> impls = AvailableImpls();
  const KernelOps& scalar = *impls[0];
  for (int dims = 1; dims <= kMaxDimensions; ++dims) {
    for (size_t n : kBoundarySizes) {
      const Dataset data = RandomDataset(dims, n, 1000u * dims + n);
      SoABlock soa(dims);
      soa.Assign(data);
      Rng rng(77u * dims + n);
      Point q(dims);
      for (int trial = 0; trial < 8; ++trial) {
        for (int d = 0; d < dims; ++d) q[d] = rng.NextUniform(0.0, 10.0);
        const double sq_radius =
            trial % 2 == 0 ? rng.NextUniform(0.5, 16.0) : 2.0;
        const uint32_t skip =
            data.empty() ? kSoaInvalidId
                         : static_cast<uint32_t>(rng.NextBounded(
                               data.size() + 1));  // sometimes matches none
        const size_t begin = data.empty() ? 0 : rng.NextBounded(data.size());
        const size_t end =
            begin + (data.size() > begin
                         ? rng.NextBounded(data.size() - begin + 1)
                         : 0);

        uint64_t scalar_pairs = 0;
        const int want_count = scalar.count_within_radius(
            soa, begin, end, q.data(), sq_radius, skip, -1, &scalar_pairs);
        std::vector<uint32_t> want_mask;
        scalar.range_mask(soa, q.data(), sq_radius, skip, &want_mask,
                          nullptr);
        const double want_min =
            scalar.min_squared_distance(soa, q.data(), nullptr);
        std::vector<double> want_dists(data.size());
        scalar.squared_distances(soa, q.data(), want_dists.data(), nullptr);

        for (const KernelOps* ops : impls) {
          SCOPED_TRACE(std::string("impl=") + ops->name);
          uint64_t pairs = 0;
          EXPECT_EQ(ops->count_within_radius(soa, begin, end, q.data(),
                                             sq_radius, skip, -1, &pairs),
                    want_count);
          // Uncapped kernels evaluate every non-skipped pair in range.
          EXPECT_EQ(pairs, scalar_pairs);
          // Capped: the verdict (count >= cap) must agree even though the
          // batched count may overshoot within a block.
          for (int cap : {1, 2, want_count, want_count + 1}) {
            if (cap < 0) continue;
            const int capped = ops->count_within_radius(
                soa, begin, end, q.data(), sq_radius, skip, cap, nullptr);
            EXPECT_EQ(capped >= cap, want_count >= cap) << "cap=" << cap;
            if (capped < cap) {
              EXPECT_EQ(capped, want_count);
            }
          }
          std::vector<uint32_t> mask;
          ops->range_mask(soa, q.data(), sq_radius, skip, &mask, nullptr);
          EXPECT_EQ(mask, want_mask);
          const double min = ops->min_squared_distance(soa, q.data(), nullptr);
          EXPECT_TRUE(min == want_min || (std::isnan(min) && std::isnan(want_min)));
          std::vector<double> dists(data.size());
          ops->squared_distances(soa, q.data(), dists.data(), nullptr);
          for (size_t j = 0; j < data.size(); ++j) {
            EXPECT_TRUE(dists[j] == want_dists[j] ||
                        (std::isnan(dists[j]) && std::isnan(want_dists[j])))
                << "slot " << j;
          }
        }
      }
    }
  }
}

TEST(DistanceKernelsTest, CountBlockImplsAgreeAndAccumulate) {
  // The batched block×segment entry must add, for every query row, the
  // exact uncapped neighbor count of the sub-range — bit-identical across
  // implementations, on top of whatever the counts array already holds.
  const std::vector<const KernelOps*> impls = AvailableImpls();
  const KernelOps& scalar = *impls[0];
  for (int dims = 1; dims <= kMaxDimensions; ++dims) {
    for (size_t n : kBoundarySizes) {
      const Dataset data = RandomDataset(dims, n, 3000u * dims + n);
      SoABlock soa(dims);
      soa.Assign(data);
      Rng rng(131u * dims + n);
      for (int trial = 0; trial < 4; ++trial) {
        const size_t num_queries = 1 + rng.NextBounded(12);
        std::vector<double> queries(num_queries * dims);
        for (double& c : queries) c = rng.NextUniform(0.0, 10.0);
        const double sq_radius = rng.NextUniform(0.5, 16.0);
        const size_t begin = data.empty() ? 0 : rng.NextBounded(data.size());
        const size_t end =
            begin + (data.size() > begin
                         ? rng.NextBounded(data.size() - begin + 1)
                         : 0);

        std::vector<uint32_t> want(num_queries, 0);
        uint64_t want_pairs = 0;
        for (size_t i = 0; i < num_queries; ++i) {
          want[i] = 100 + static_cast<uint32_t>(i) +
                    static_cast<uint32_t>(scalar.count_within_radius(
                        soa, begin, end, queries.data() + i * dims, sq_radius,
                        kSoaInvalidId, -1, &want_pairs));
        }
        for (const KernelOps* ops : impls) {
          SCOPED_TRACE(std::string("impl=") + ops->name);
          std::vector<uint32_t> counts(num_queries);
          for (size_t i = 0; i < num_queries; ++i) {
            counts[i] = 100 + static_cast<uint32_t>(i);  // pre-seeded
          }
          uint64_t pairs = 0;
          ops->count_block_within_radius(soa, begin, end, queries.data(),
                                         num_queries, sq_radius, counts.data(),
                                         &pairs);
          EXPECT_EQ(counts, want) << "dims=" << dims << " n=" << n;
          EXPECT_EQ(pairs, want_pairs);
        }
      }
    }
  }
}

TEST(DistanceKernelsTest, TieAtExactlyRadiusIsANeighbor) {
  // 1-d points at distance exactly r: d² == r² must count in every impl.
  SoABlock soa(1);
  for (uint32_t i = 0; i < kSoaWidth + 3; ++i) {
    const double coord = 3.0 + static_cast<double>(i);  // q at 0, r = 3+i
    soa.Append(&coord, i);
  }
  const double q = 0.0;
  for (const KernelOps* ops : AvailableImpls()) {
    SCOPED_TRACE(std::string("impl=") + ops->name);
    // r = 3: exactly one point at distance exactly 3, none closer.
    EXPECT_EQ(ops->count_within_radius(soa, 0, soa.size(), &q, 9.0,
                                       kSoaInvalidId, -1, nullptr),
              1);
    std::vector<uint32_t> mask;
    ops->range_mask(soa, &q, 9.0, kSoaInvalidId, &mask, nullptr);
    EXPECT_EQ(mask, (std::vector<uint32_t>{0}));
    EXPECT_EQ(ops->min_squared_distance(soa, &q, nullptr), 9.0);
  }
}

TEST(DistanceKernelsTest, NaNCoordinatesAreExcludedEverywhere) {
  SoABlock soa(2);
  const double good[] = {1.0, 0.0};
  const double nan_point[] = {kNaN, 0.0};
  const double inf_point[] = {kInf, 0.0};
  soa.Append(good, 0);
  soa.Append(nan_point, 1);
  soa.Append(inf_point, 2);
  const double q[] = {0.0, 0.0};
  for (const KernelOps* ops : AvailableImpls()) {
    SCOPED_TRACE(std::string("impl=") + ops->name);
    // Huge radius: the NaN point still never matches; the +inf point's
    // distance is +inf, beyond any finite radius.
    EXPECT_EQ(ops->count_within_radius(soa, 0, soa.size(), q, 1e300,
                                       kSoaInvalidId, -1, nullptr),
              1);
    std::vector<uint32_t> mask;
    ops->range_mask(soa, q, 1e300, kSoaInvalidId, &mask, nullptr);
    EXPECT_EQ(mask, (std::vector<uint32_t>{0}));
    EXPECT_EQ(ops->min_squared_distance(soa, q, nullptr), 1.0);
    double dists[3];
    ops->squared_distances(soa, q, dists, nullptr);
    EXPECT_EQ(dists[0], 1.0);
    EXPECT_TRUE(std::isnan(dists[1]));
    EXPECT_EQ(dists[2], kInf);
  }
}

TEST(DistanceKernelsTest, NonFiniteQueryAgainstPadSlots) {
  // A +inf query coordinate turns pad-slot distances into NaN; no impl may
  // count or report a pad slot regardless.
  SoABlock soa(1);
  const double c = 1.0;
  soa.Append(&c, 0);  // one real slot, kSoaWidth-1 pads
  const double q = kInf;
  for (const KernelOps* ops : AvailableImpls()) {
    SCOPED_TRACE(std::string("impl=") + ops->name);
    EXPECT_EQ(ops->count_within_radius(soa, 0, soa.size(), &q, 1e300,
                                       kSoaInvalidId, -1, nullptr),
              0);
    std::vector<uint32_t> mask;
    ops->range_mask(soa, &q, 1e300, kSoaInvalidId, &mask, nullptr);
    EXPECT_TRUE(mask.empty());
    EXPECT_EQ(ops->min_squared_distance(soa, &q, nullptr), kInf);
  }
}

TEST(DistanceKernelsTest, DispatchAndParsing) {
  EXPECT_STREQ(GetKernelOps(KernelMode::kScalar).name, "scalar");
  const KernelOps& auto_ops = GetKernelOps(KernelMode::kAuto);
  if (Avx2KernelsAvailable()) {
    EXPECT_STREQ(auto_ops.name, "avx2");
  } else {
    EXPECT_STREQ(auto_ops.name, "blocked");
  }
  KernelMode mode;
  EXPECT_TRUE(ParseKernelMode("scalar", &mode));
  EXPECT_EQ(mode, KernelMode::kScalar);
  EXPECT_TRUE(ParseKernelMode("auto", &mode));
  EXPECT_EQ(mode, KernelMode::kAuto);
  EXPECT_FALSE(ParseKernelMode("sse9", &mode));
  EXPECT_EQ(GetKernelOpsByName("nope"), nullptr);
}

// ---- detector-level equivalence ----------------------------------------

std::vector<uint32_t> Detect(const Detector& detector, const Dataset& data,
                             size_t num_core, DetectionParams params,
                             KernelMode mode) {
  params.kernels = mode;
  return detector.DetectOutliers(data, num_core, params, nullptr);
}

TEST(KernelEquivalenceTest, DetectorsMatchScalarAcrossDims) {
  for (int dims = 1; dims <= kMaxDimensions; ++dims) {
    for (size_t base_n : {0ul, 1ul, 7ul, 9ul, 120ul}) {
      const Dataset data = RandomDataset(dims, base_n, 5000u * dims + base_n);
      DetectionParams params;
      params.radius = 1.5;
      params.min_neighbors = 3;
      params.seed = 11 * dims;
      // All-core, core/support split, and all-support datasets.
      for (size_t num_core :
           {data.size(), data.size() * 3 / 4, size_t{0}}) {
        NestedLoopDetector nested;
        PivotDetector pivot(4);
        BruteForceDetector brute;
        const std::vector<uint32_t> want =
            Detect(brute, data, num_core, params, KernelMode::kScalar);
        EXPECT_EQ(Detect(brute, data, num_core, params, KernelMode::kAuto),
                  want);
        for (KernelMode mode : {KernelMode::kScalar, KernelMode::kAuto}) {
          SCOPED_TRACE(KernelModeName(mode));
          EXPECT_EQ(Detect(nested, data, num_core, params, mode), want)
              << "nested dims=" << dims << " n=" << data.size();
          EXPECT_EQ(Detect(pivot, data, num_core, params, mode), want)
              << "pivot dims=" << dims << " n=" << data.size();
        }
        // The cell-based grid enumerates (2·ring+1)^d cells per verdict;
        // keep its sweep to the dimensions where that stays tractable.
        if (dims <= 3) {
          CellBasedDetector cell;
          for (KernelMode mode : {KernelMode::kScalar, KernelMode::kAuto}) {
            SCOPED_TRACE(KernelModeName(mode));
            EXPECT_EQ(Detect(cell, data, num_core, params, mode), want)
                << "cell dims=" << dims << " n=" << data.size();
          }
        }
      }
    }
  }
}

TEST(KernelEquivalenceTest, ExtensionsMatchScalar) {
  const Dataset data = GenerateTigerLike(2500, 17);

  DbscanParams dbscan;
  dbscan.eps = 4.0;
  dbscan.min_pts = 4;
  dbscan.kernels = KernelMode::kScalar;
  const std::vector<int32_t> want_labels = DbscanLabels(data, dbscan);
  dbscan.kernels = KernelMode::kAuto;
  EXPECT_EQ(DbscanLabels(data, dbscan), want_labels);

  KnnOutlierParams knn;
  knn.k = 5;
  knn.top_n = 25;
  knn.kernels = KernelMode::kScalar;
  const std::vector<KnnOutlier> want_scores = TopNKnnOutliers(data, knn);
  knn.kernels = KernelMode::kAuto;
  const std::vector<KnnOutlier> got_scores = TopNKnnOutliers(data, knn);
  ASSERT_EQ(got_scores.size(), want_scores.size());
  for (size_t i = 0; i < want_scores.size(); ++i) {
    EXPECT_EQ(got_scores[i].id, want_scores[i].id);
    EXPECT_EQ(got_scores[i].k_distance, want_scores[i].k_distance);
  }

  EXPECT_EQ(KDistance(data, 3, 4, KernelMode::kScalar),
            KDistance(data, 3, 4, KernelMode::kAuto));
}

// ---- pipeline-level determinism ----------------------------------------

TEST(KernelEquivalenceTest, PipelineOutliersIdenticalAcrossModesAndThreads) {
  const Dataset data = GenerateTigerLike(4000, 99);
  DetectionParams params;
  params.radius = 5.0;
  params.min_neighbors = 4;

  std::vector<PointId> want;
  bool first = true;
  for (KernelMode mode : {KernelMode::kScalar, KernelMode::kAuto}) {
    for (int threads : {1, 8}) {
      DodConfig config = DodConfig::Dmt(params);
      config.params.kernels = mode;
      config.num_threads = threads;
      DodPipeline pipeline(config);
      const Result<DodResult> run = pipeline.Run(data);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      if (first) {
        want = run.value().outliers;
        EXPECT_FALSE(want.empty());
        first = false;
      } else {
        EXPECT_EQ(run.value().outliers, want)
            << "kernels=" << KernelModeName(mode) << " threads=" << threads;
      }
    }
  }
}

}  // namespace
}  // namespace dod
