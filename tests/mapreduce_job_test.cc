// Copyright 2026 The DOD Authors.
//
// The MapReduce engine: grouping semantics, partition routing, counters,
// stats accounting, and determinism — exercised with a classic word-count
// style job independent of the outlier code.

#include "mapreduce/job.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

namespace dod {
namespace {

// Mapper emitting (value mod 10, value) for a fixed range per split.
class ModMapper : public Mapper<int, int> {
 public:
  explicit ModMapper(int per_split) : per_split_(per_split) {}

  void Map(size_t split_index, Emitter<int, int>& out) override {
    const int base = static_cast<int>(split_index) * per_split_;
    for (int v = base; v < base + per_split_; ++v) {
      out.Emit(v % 10, v);
    }
  }

 private:
  int per_split_;
};

struct KeyCount {
  int key;
  int count;
  bool operator==(const KeyCount& other) const {
    return key == other.key && count == other.count;
  }
};

class CountReducer : public Reducer<int, int, KeyCount> {
 public:
  void Reduce(const int& key, std::vector<int>& values,
              std::vector<KeyCount>& out, Counters& counters) override {
    out.push_back(KeyCount{key, static_cast<int>(values.size())});
    counters.Increment("groups_seen");
  }
};

JobSpec SmallClusterSpec(int reducers) {
  JobSpec spec;
  spec.num_reduce_tasks = reducers;
  spec.cluster = ClusterSpec::Local(4);
  return spec;
}

TEST(MapReduceJobTest, GroupsAllValuesByKey) {
  ModMapper mapper(100);
  CountReducer reducer;
  auto job = RunMapReduce<int, int, KeyCount>(
      /*num_splits=*/5, mapper, reducer,
      [](const int& key) { return key % 3; }, SmallClusterSpec(3))
                 .ValueOrDie();
  // 500 values, keys 0..9, 50 each.
  std::map<int, int> counts;
  for (const KeyCount& kc : job.output) counts[kc.key] = kc.count;
  ASSERT_EQ(counts.size(), 10u);
  for (const auto& [key, count] : counts) EXPECT_EQ(count, 50) << key;
}

TEST(MapReduceJobTest, StatsAccounting) {
  ModMapper mapper(100);
  CountReducer reducer;
  auto job = RunMapReduce<int, int, KeyCount>(
      5, mapper, reducer, [](const int& key) { return key % 3; },
      SmallClusterSpec(3), /*record_bytes=*/16)
                 .ValueOrDie();
  EXPECT_EQ(job.stats.records_mapped, 500u);
  EXPECT_EQ(job.stats.records_shuffled, 500u);
  EXPECT_EQ(job.stats.bytes_shuffled, 500u * 16);
  EXPECT_EQ(job.stats.groups_reduced, 10u);
  EXPECT_EQ(job.stats.map_task_seconds.size(), 5u);
  EXPECT_EQ(job.stats.reduce_task_seconds.size(), 3u);
  EXPECT_EQ(job.stats.counters.Get("groups_seen"), 10u);
  EXPECT_GT(job.stats.stage_times.shuffle_seconds, 0.0);
  EXPECT_GE(job.stats.wall_seconds, 0.0);
}

TEST(MapReduceJobTest, PartitionFunctionControlsTaskPlacement) {
  // Route every key to task 2 of 4; the other tasks reduce nothing.
  ModMapper mapper(50);
  CountReducer reducer;
  auto job = RunMapReduce<int, int, KeyCount>(
      2, mapper, reducer, [](const int&) { return 2; }, SmallClusterSpec(4))
                 .ValueOrDie();
  EXPECT_EQ(job.stats.groups_reduced, 10u);
  EXPECT_EQ(job.output.size(), 10u);
}

TEST(MapReduceJobTest, ReducerSeesKeysSorted) {
  // With one reduce task, output order is the sorted key order.
  ModMapper mapper(100);
  CountReducer reducer;
  auto job = RunMapReduce<int, int, KeyCount>(
      1, mapper, reducer, [](const int&) { return 0; }, SmallClusterSpec(1))
                 .ValueOrDie();
  ASSERT_EQ(job.output.size(), 10u);
  for (int k = 0; k < 10; ++k) EXPECT_EQ(job.output[k].key, k);
}

TEST(MapReduceJobTest, ValuesPreserveEmissionOrderWithinKey) {
  class FirstValueReducer : public Reducer<int, int, int> {
   public:
    void Reduce(const int&, std::vector<int>& values, std::vector<int>& out,
                Counters&) override {
      out.push_back(values.front());
    }
  };
  ModMapper mapper(100);
  FirstValueReducer reducer;
  auto job = RunMapReduce<int, int, int>(
      1, mapper, reducer, [](const int&) { return 0; }, SmallClusterSpec(1))
                 .ValueOrDie();
  // Stable sort: the first value of key k is k itself (first emission).
  ASSERT_EQ(job.output.size(), 10u);
  for (int k = 0; k < 10; ++k) EXPECT_EQ(job.output[k], k);
}

TEST(MapReduceJobTest, DeterministicOutputAcrossRuns) {
  ModMapper mapper(200);
  CountReducer reducer;
  auto run = [&] {
    return RunMapReduce<int, int, KeyCount>(
               4, mapper, reducer, [](const int& key) { return key % 2; },
               SmallClusterSpec(2))
        .ValueOrDie();
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.output, b.output);
}

TEST(MapReduceJobTest, EmptyInputProducesEmptyOutput) {
  class NullMapper : public Mapper<int, int> {
   public:
    void Map(size_t, Emitter<int, int>&) override {}
  };
  NullMapper mapper;
  CountReducer reducer;
  auto job = RunMapReduce<int, int, KeyCount>(
      3, mapper, reducer, [](const int&) { return 0; }, SmallClusterSpec(2))
                 .ValueOrDie();
  EXPECT_TRUE(job.output.empty());
  EXPECT_EQ(job.stats.records_mapped, 0u);
  EXPECT_EQ(job.stats.groups_reduced, 0u);
}

TEST(MapReduceJobTest, StageTimesUseSlotScheduling) {
  // With 4 local slots and 5 map tasks, the simulated map stage must be at
  // least the longest task but below the serial sum.
  ModMapper mapper(2000);
  CountReducer reducer;
  auto job = RunMapReduce<int, int, KeyCount>(
      5, mapper, reducer, [](const int& key) { return key % 3; },
      SmallClusterSpec(3))
                 .ValueOrDie();
  double serial = 0.0, longest = 0.0;
  for (double t : job.stats.map_task_seconds) {
    serial += t;
    longest = std::max(longest, t);
  }
  EXPECT_GE(job.stats.stage_times.map_seconds, longest);
  EXPECT_LE(job.stats.stage_times.map_seconds, serial + 1e-9);
}

}  // namespace
}  // namespace dod
