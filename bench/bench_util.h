// Copyright 2026 The DOD Authors.
//
// Shared harness for the figure-reproduction benches. Each bench binary
// regenerates one figure of the paper's evaluation (Sec. VI): it builds the
// scaled workload, runs the relevant pipeline configurations, and prints the
// same rows/series the figure reports.
//
// Sizing: workloads are ~1000× smaller than the paper's (Sec. VI used 30 M
// to 4 B points on 40 nodes; we default to tens of thousands of points on
// one machine). Set DOD_BENCH_SCALE to grow or shrink every workload, e.g.
// DOD_BENCH_SCALE=4 for a longer, higher-fidelity run.

#ifndef DOD_BENCH_BENCH_UTIL_H_
#define DOD_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "core/pipeline.h"

namespace dod {
namespace bench {

// Global size multiplier from DOD_BENCH_SCALE (default 1.0).
double Scale();

// n scaled by DOD_BENCH_SCALE, with a floor of 1000 points.
size_t ScaledN(size_t base);

// One measured pipeline execution.
struct RunResult {
  std::string label;
  // Simulated end-to-end time on the configured cluster (the paper's
  // metric), plus its stage split.
  double total_seconds = 0.0;
  double preprocess_seconds = 0.0;
  double map_seconds = 0.0;
  double reduce_seconds = 0.0;  // detect reduce + verification job
  // Single-machine wall time of the run (diagnostic only).
  double wall_seconds = 0.0;
  size_t outliers = 0;
  size_t partitions = 0;
};

// Runs `config` on `data` `repeats` times and keeps the fastest run (the
// standard way to shed first-touch/allocator warmup noise from
// millisecond-scale measurements).
RunResult RunPipeline(const DodConfig& config, const Dataset& data,
                      const std::string& label, int repeats = 2);

// A DodConfig sized for benches: reducers/partitions grown with the data.
DodConfig BenchConfig(StrategyKind strategy, AlgorithmKind algorithm,
                      const DetectionParams& params, size_t n);

// Dumps the process-wide metrics registry (plus optional per-partition
// cost snapshots) as an observability report next to the BENCH_*.json of
// the calling bench, so regressions in counter values can be diffed the
// same way as throughput numbers.
void WriteMetricsJson(const char* path,
                      const std::vector<PartitionProfile>& profiles);

// Figure-style output helpers.
void PrintHeader(const std::string& title, const std::string& note);
void PrintRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths);
std::string FormatSeconds(double seconds);
std::string FormatRatio(double ratio);

}  // namespace bench
}  // namespace dod

#endif  // DOD_BENCH_BENCH_UTIL_H_
