// Copyright 2026 The DOD Authors.
//
// Extension bench — DBSCAN on the DOD framework (Sec. III-B generality
// claim). Compares the centralized reference against the supporting-area
// distributed variant across data sizes; the distributed version's
// per-partition work parallelizes on the simulated cluster while the
// centralized one cannot.

#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "data/geo_like.h"
#include "extensions/dbscan.h"

int main() {
  dod::bench::PrintHeader(
      "Extension — density-based clustering on the DOD framework",
      "Centralized DBSCAN vs the supporting-area distributed variant.\n"
      "Wall = single-machine execution; the distributed variant's "
      "partitions\nwould run in parallel on a cluster.");

  const dod::DbscanParams params{/*eps=*/4.0, /*min_pts=*/8};
  std::printf("%-8s %10s %14s %14s %10s %10s\n", "level", "points",
              "central (ms)", "distrib (ms)", "clusters", "merges");
  for (dod::MapLevel level :
       {dod::MapLevel::kMassachusetts, dod::MapLevel::kNewEngland,
        dod::MapLevel::kUnitedStates}) {
    const dod::Dataset data = dod::GenerateHierarchical(
        level, dod::bench::ScaledN(8000), 141);

    dod::StopWatch central_watch;
    const std::vector<int32_t> centralized = DbscanLabels(data, params);
    const double central_ms = central_watch.ElapsedMillis();
    int32_t central_clusters = 0;
    for (int32_t label : centralized) {
      central_clusters = std::max(central_clusters, label + 1);
    }

    dod::DistributedDbscanOptions options;
    options.target_partitions = std::max<size_t>(32, data.size() / 4000);
    dod::StopWatch dist_watch;
    const dod::DistributedDbscanResult distributed =
        DistributedDbscan(data, params, options);
    const double dist_ms = dist_watch.ElapsedMillis();

    std::printf("%-8s %10zu %14.1f %14.1f %5d/%-5d %10zu\n",
                std::string(MapLevelName(level)).c_str(), data.size(),
                central_ms, dist_ms, central_clusters,
                distributed.num_clusters, distributed.merges);
  }
  std::printf("\ncluster counts (central/distributed) must match.\n");
  return 0;
}
