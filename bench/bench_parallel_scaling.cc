// Copyright 2026 The DOD Authors.
//
// Parallel runtime scaling — speedup of the thread-pool executor
// (src/runtime/) over the sequential engine on a geo-like workload.
//
// Not a paper figure: the paper scales across cluster *nodes* (Sec. VI);
// this bench scales across *worker threads* on one machine, the knob the
// local runtime actually has. Reported per thread count: best-of-repeats
// wall time, speedup over --threads=1, and parallel efficiency. The
// outlier set is asserted identical at every thread count — speed must
// never buy a different answer.
//
// Besides the table, emits machine-readable BENCH_parallel.json into the
// current directory.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/geo_like.h"
#include "runtime/thread_pool.h"

namespace {

using dod::bench::BenchConfig;
using dod::bench::ScaledN;

struct ThreadPoint {
  int threads = 1;
  double wall_seconds = 0.0;
  double map_wall_seconds = 0.0;
  double reduce_wall_seconds = 0.0;
};

// Best-of-`repeats` wall time (sheds warmup noise, like RunPipeline), with
// the phase walls taken from the fastest repeat.
ThreadPoint Measure(const dod::DodConfig& config, const dod::Dataset& data,
                    const std::vector<dod::PointId>& expected_outliers,
                    int repeats) {
  const dod::DodPipeline pipeline(config);
  ThreadPoint point;
  point.threads = 0;
  for (int rep = 0; rep < repeats; ++rep) {
    const dod::DodResult result = pipeline.RunOrDie(data);
    if (!expected_outliers.empty() && result.outliers != expected_outliers) {
      std::fprintf(stderr,
                   "FATAL: %d-thread run changed the outlier set "
                   "(%zu vs %zu outliers)\n",
                   config.num_threads, result.outliers.size(),
                   expected_outliers.size());
      std::exit(1);
    }
    if (point.threads == 0 || result.wall_seconds < point.wall_seconds) {
      point.threads = result.detect_stats.threads_used;
      point.wall_seconds = result.wall_seconds;
      point.map_wall_seconds = result.detect_stats.map_wall_seconds +
                               result.verify_stats.map_wall_seconds;
      point.reduce_wall_seconds = result.detect_stats.reduce_wall_seconds +
                                  result.verify_stats.reduce_wall_seconds;
    }
  }
  return point;
}

void WriteJson(const char* path, size_t points, size_t outliers,
               const std::vector<ThreadPoint>& curve) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  const double base = curve.front().wall_seconds;
  std::fprintf(f, "{\n  \"bench\": \"parallel_scaling\",\n");
  std::fprintf(f, "  \"points\": %zu,\n  \"outliers\": %zu,\n", points,
               outliers);
  std::fprintf(f, "  \"hardware_threads\": %d,\n",
               dod::ThreadPool::DefaultThreadCount());
  std::fprintf(f, "  \"curve\": [\n");
  for (size_t i = 0; i < curve.size(); ++i) {
    const ThreadPoint& p = curve[i];
    std::fprintf(f,
                 "    {\"threads\": %d, \"wall_seconds\": %.6f, "
                 "\"map_wall_seconds\": %.6f, \"reduce_wall_seconds\": %.6f, "
                 "\"speedup\": %.3f, \"efficiency\": %.3f}%s\n",
                 p.threads, p.wall_seconds, p.map_wall_seconds,
                 p.reduce_wall_seconds, base / p.wall_seconds,
                 base / p.wall_seconds / p.threads,
                 i + 1 < curve.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main() {
  const dod::DetectionParams params{5.0, 4};
  // Larger than the figure benches: scaling needs enough per-task work for
  // the pool's overhead to amortize, like any real speedup measurement.
  const dod::Dataset data = dod::GenerateHierarchical(
      dod::MapLevel::kNewEngland, ScaledN(20000), 81);
  const size_t n = data.size();

  dod::bench::PrintHeader(
      "Parallel runtime scaling — threads 1/2/4/8 on a geo-like workload",
      "Wall time of the same job on the thread-pool executor; the outlier\n"
      "set is asserted identical at every thread count.");

  dod::DodConfig config = BenchConfig(dod::StrategyKind::kDmt,
                                      dod::AlgorithmKind::kCellBased, params,
                                      n);

  // Sequential reference run: its outliers gate every parallel run.
  config.num_threads = 1;
  const dod::DodResult reference =
      dod::DodPipeline(config).RunOrDie(data);

  // Flat curves on few-core machines are expected, not a runtime bug:
  // speedup is capped by the hardware threads actually present.
  std::printf("%zu points, %zu outliers, %zu partitions, %d hardware "
              "threads\n\n",
              n, reference.outliers.size(),
              reference.plan.partition_plan.num_cells(),
              dod::ThreadPool::DefaultThreadCount());
  std::printf("%8s %12s %12s %12s %9s %11s\n", "threads", "wall", "map wall",
              "reduce wall", "speedup", "efficiency");

  std::vector<ThreadPoint> curve;
  for (int threads : {1, 2, 4, 8}) {
    config.num_threads = threads;
    const ThreadPoint point =
        Measure(config, data, reference.outliers, /*repeats=*/3);
    curve.push_back(point);
    const double speedup = curve.front().wall_seconds / point.wall_seconds;
    std::printf("%8d %11.4fs %11.4fs %11.4fs %8.2fx %10.1f%%\n",
                point.threads, point.wall_seconds, point.map_wall_seconds,
                point.reduce_wall_seconds, speedup,
                100.0 * speedup / point.threads);
  }

  WriteJson("BENCH_parallel.json", n, reference.outliers.size(), curve);
  dod::bench::WriteMetricsJson("BENCH_parallel_metrics.json",
                               reference.detect_stats.partition_profiles);
  return 0;
}
