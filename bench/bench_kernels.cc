// Copyright 2026 The DOD Authors.
//
// Distance-kernel throughput: pairs/sec of every compiled implementation
// (scalar / blocked / avx2) on the 2-d workload the paper evaluates, plus
// the end-to-end effect on the nested-loop detector. Emits
// BENCH_kernels.json next to the binary.
//
// Usage: bench_kernels [n]   (n overrides the point count; CI smoke passes
// a tiny n). DOD_BENCH_SCALE applies when n is not given.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "data/tiger_like.h"
#include "detection/nested_loop.h"
#include "kernels/distance_kernels.h"
#include "kernels/soa_block.h"
#include "observability/metrics.h"
#include "observability/profile.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct KernelPoint {
  std::string impl;
  double pairs_per_sec = 0.0;
  double speedup = 0.0;  // over scalar
};

struct DetectorPoint {
  double scalar_seconds = 0.0;
  double auto_seconds = 0.0;
  size_t outliers = 0;
};

// Uncapped neighbor counting of `queries` against the whole SoA; returns
// pairs/sec of the fastest of `repeats` passes and checks every impl agrees
// with the reference counts.
KernelPoint MeasureKernel(const dod::KernelOps& ops, const dod::SoABlock& soa,
                          const dod::Dataset& data,
                          const std::vector<uint32_t>& queries,
                          double sq_radius, std::vector<int>* counts,
                          int repeats) {
  KernelPoint point;
  point.impl = ops.name;
  double best = 1e300;
  uint64_t pairs = 0;
  for (int rep = 0; rep < repeats; ++rep) {
    pairs = 0;
    std::vector<int> got(queries.size());
    const Clock::time_point start = Clock::now();
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const uint32_t q = queries[qi];
      got[qi] = ops.count_within_radius(soa, 0, soa.size(), data[q],
                                        sq_radius, /*skip_id=*/q,
                                        /*cap=*/-1, &pairs);
    }
    best = std::min(best, SecondsSince(start));
    if (counts->empty()) {
      *counts = got;
    } else if (got != *counts) {
      std::fprintf(stderr, "FATAL: %s disagrees with reference counts\n",
                   ops.name);
      std::exit(1);
    }
  }
  point.pairs_per_sec = static_cast<double>(pairs) / best;
  return point;
}

DetectorPoint MeasureDetector(const dod::Dataset& data,
                              dod::DetectionParams params, int repeats) {
  DetectorPoint point;
  point.scalar_seconds = 1e300;
  point.auto_seconds = 1e300;
  dod::NestedLoopDetector detector;
  std::vector<uint32_t> reference;
  for (int rep = 0; rep < repeats; ++rep) {
    params.kernels = dod::KernelMode::kScalar;
    Clock::time_point start = Clock::now();
    const std::vector<uint32_t> scalar_out =
        detector.DetectOutliers(data, data.size(), params, nullptr);
    point.scalar_seconds = std::min(point.scalar_seconds,
                                    SecondsSince(start));
    params.kernels = dod::KernelMode::kAuto;
    start = Clock::now();
    const std::vector<uint32_t> auto_out =
        detector.DetectOutliers(data, data.size(), params, nullptr);
    point.auto_seconds = std::min(point.auto_seconds, SecondsSince(start));
    if (scalar_out != auto_out) {
      std::fprintf(stderr, "FATAL: detector outliers differ across modes\n");
      std::exit(1);
    }
    point.outliers = scalar_out.size();
  }
  return point;
}

void WriteJson(const char* path, size_t n, size_t num_queries,
               const std::vector<KernelPoint>& kernels,
               const DetectorPoint& detector) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"kernels\",\n  \"dims\": 2,\n");
  std::fprintf(f, "  \"n\": %zu,\n  \"queries\": %zu,\n", n, num_queries);
  std::fprintf(f, "  \"avx2_available\": %s,\n",
               dod::Avx2KernelsAvailable() ? "true" : "false");
  std::fprintf(f, "  \"kernel\": [\n");
  for (size_t i = 0; i < kernels.size(); ++i) {
    std::fprintf(f,
                 "    {\"impl\": \"%s\", \"pairs_per_sec\": %.0f, "
                 "\"speedup_vs_scalar\": %.3f}%s\n",
                 kernels[i].impl.c_str(), kernels[i].pairs_per_sec,
                 kernels[i].speedup, i + 1 < kernels.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"nested_loop\": {\"scalar_seconds\": %.6f, "
               "\"auto_seconds\": %.6f, \"speedup\": %.3f, "
               "\"outliers\": %zu}\n}\n",
               detector.scalar_seconds, detector.auto_seconds,
               detector.scalar_seconds / detector.auto_seconds,
               detector.outliers);
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? static_cast<size_t>(std::atoll(argv[1]))
                            : dod::bench::ScaledN(100000);
  const size_t num_queries = std::min<size_t>(n, 512);
  const int repeats = n <= 10000 ? 1 : 3;

  dod::bench::PrintHeader(
      "Distance-kernel throughput — scalar vs blocked vs AVX2, 2-d",
      "Uncapped neighbor counting of sampled queries against the full\n"
      "dataset; every implementation is checked against the scalar counts.");

  const dod::Dataset data = dod::GenerateTigerLike(n, 1234);
  dod::SoABlock soa(data.dims());
  soa.Assign(data);
  dod::Rng rng(55);
  std::vector<uint32_t> queries(num_queries);
  for (uint32_t& q : queries) {
    q = static_cast<uint32_t>(rng.NextBounded(data.size()));
  }
  const double radius = 5.0;
  const double sq_radius = radius * radius;

  std::vector<const dod::KernelOps*> impls = {
      dod::GetKernelOpsByName("scalar"), dod::GetKernelOpsByName("blocked")};
  if (const dod::KernelOps* avx2 = dod::GetKernelOpsByName("avx2")) {
    impls.push_back(avx2);
  } else {
    std::printf("(avx2 kernels unavailable on this build/CPU)\n");
  }

  std::printf("%zu points, %zu queries, radius %.1f\n\n", data.size(),
              num_queries, radius);
  std::printf("%10s %16s %10s\n", "impl", "pairs/sec", "speedup");

  std::vector<int> reference_counts;
  std::vector<KernelPoint> kernels;
  for (const dod::KernelOps* ops : impls) {
    KernelPoint point = MeasureKernel(*ops, soa, data, queries, sq_radius,
                                      &reference_counts, repeats);
    point.speedup = kernels.empty()
                        ? 1.0
                        : point.pairs_per_sec / kernels.front().pairs_per_sec;
    std::printf("%10s %16.3e %9.2fx\n", point.impl.c_str(),
                point.pairs_per_sec, point.speedup);
    kernels.push_back(point);
  }

  // End-to-end: the nested-loop detector is the most kernel-bound caller.
  const size_t detector_n = std::min<size_t>(n, 20000);
  const dod::Dataset detector_data = dod::GenerateTigerLike(detector_n, 77);
  dod::DetectionParams params{/*radius=*/2.0, /*min_neighbors=*/20};
  const DetectorPoint detector =
      MeasureDetector(detector_data, params, repeats);
  std::printf("\nnested-loop detector, %zu points: scalar %.4fs, auto %.4fs "
              "(%.2fx), %zu outliers\n",
              detector_n, detector.scalar_seconds, detector.auto_seconds,
              detector.scalar_seconds / detector.auto_seconds,
              detector.outliers);

  WriteJson("BENCH_kernels.json", data.size(), num_queries, kernels,
            detector);
  dod::bench::WriteMetricsJson("BENCH_kernels_metrics.json", {});
  return 0;
}
