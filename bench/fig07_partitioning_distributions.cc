// Copyright 2026 The DOD Authors.
//
// Figure 7 — Partitioning effectiveness across data distributions.
//
// Paper setup (Sec. VI-B): the four OpenStreetMap regions OH/MA/CA/NY
// (equal cardinality, very different densities); partitioners Domain,
// uniSpace, DDriven reported as time *relative to CDriven*; the reduce-side
// detector fixed to Nested-Loop (a) and Cell-Based (b).
//
// Reported shape: CDriven wins everywhere (others up to 5x slower);
// uniSpace beats Domain (single-pass); DDriven beats uniSpace (~40%);
// CDriven beats DDriven by at least 50%.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/geo_like.h"

namespace {

using dod::bench::BenchConfig;
using dod::bench::RunPipeline;

void RunPart(dod::AlgorithmKind algorithm, const char* part_label,
             size_t n) {
  const dod::DetectionParams params{5.0, 4};
  std::printf("\n--- Fig 7(%s): detector fixed to %s; times relative to "
              "CDriven ---\n",
              part_label, dod::AlgorithmKindName(algorithm));
  std::printf("%-5s %10s %10s %10s %10s | %14s\n", "reg", "Domain",
              "uniSpace", "DDriven", "CDriven", "CDriven (s)");

  for (dod::GeoRegion region :
       {dod::GeoRegion::kOhio, dod::GeoRegion::kMassachusetts,
        dod::GeoRegion::kCalifornia, dod::GeoRegion::kNewYork}) {
    const dod::Dataset data = dod::GenerateGeoRegion(region, n, 71);

    auto time_of = [&](dod::StrategyKind strategy) {
      return RunPipeline(BenchConfig(strategy, algorithm, params, n), data,
                         "")
          .total_seconds;
    };
    const double cdriven = time_of(dod::StrategyKind::kCDriven);
    const double domain = time_of(dod::StrategyKind::kDomain);
    const double unispace = time_of(dod::StrategyKind::kUniSpace);
    const double ddriven = time_of(dod::StrategyKind::kDDriven);

    std::printf("%-5s %9.2fx %9.2fx %9.2fx %9.2fx | %14.4f\n",
                std::string(GeoRegionName(region)).c_str(), domain / cdriven,
                unispace / cdriven, ddriven / cdriven, 1.0, cdriven);
  }
}

}  // namespace

int main() {
  const size_t n = dod::bench::ScaledN(30000);
  dod::bench::PrintHeader(
      "Figure 7 — Partitioning strategies across distributions (OH/MA/CA/NY)",
      "Bars are execution time relative to the CDriven partitioner.\n"
      "Paper: CDriven wins up to 5x; DDriven > uniSpace > Domain.");
  RunPart(dod::AlgorithmKind::kNestedLoop, "a", n);
  RunPart(dod::AlgorithmKind::kCellBased, "b", n);
  return 0;
}
