// Copyright 2026 The DOD Authors.
//
// Figure 9 — Effectiveness of the reduce-side detection methods.
//
// Paper setup (Sec. VI-C): partitioning fixed to the strongest baseline
// (CDriven); detectors Nested-Loop, Cell-Based, and the multi-tactic DMT.
// (a) the four regions OH/MA/CA/NY; (b) hierarchical sizes MA → Planet
// (log scale).
//
// Reported shape: Cell-Based ≥2x faster than Nested-Loop on dense CA/NY;
// Nested-Loop wins on sparse OH; DMT stays stable and best everywhere
// (≈2x over the best monolithic detector), winning more as data grows.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "data/geo_like.h"

namespace {

using dod::bench::BenchConfig;
using dod::bench::RunPipeline;

struct Row {
  double nested_loop;
  double cell_based;
  double dmt;
};

Row MeasureRow(const dod::Dataset& data) {
  const dod::DetectionParams params{5.0, 4};
  const size_t n = data.size();
  Row row;
  row.nested_loop =
      RunPipeline(BenchConfig(dod::StrategyKind::kCDriven,
                              dod::AlgorithmKind::kNestedLoop, params, n),
                  data, "")
          .total_seconds;
  row.cell_based =
      RunPipeline(BenchConfig(dod::StrategyKind::kCDriven,
                              dod::AlgorithmKind::kCellBased, params, n),
                  data, "")
          .total_seconds;
  row.dmt = RunPipeline(BenchConfig(dod::StrategyKind::kDmt,
                                    dod::AlgorithmKind::kCellBased, params, n),
                        data, "")
                .total_seconds;
  return row;
}

}  // namespace

int main() {
  dod::bench::PrintHeader(
      "Figure 9 — Detection methods (partitioning fixed to CDriven)",
      "Paper: CB wins on dense CA/NY, NL wins on sparse OH, DMT stable and\n"
      "best everywhere; DMT's margin grows with data size.");

  const size_t n = dod::bench::ScaledN(30000);
  std::printf("\n--- Fig 9(a): varying distributions ---\n");
  std::printf("%-5s %14s %14s %10s | %12s\n", "reg", "Nested-Loop",
              "Cell-Based", "DMT", "best/DMT");
  for (dod::GeoRegion region :
       {dod::GeoRegion::kOhio, dod::GeoRegion::kMassachusetts,
        dod::GeoRegion::kCalifornia, dod::GeoRegion::kNewYork}) {
    const dod::Dataset data = dod::GenerateGeoRegion(region, n, 91);
    const Row row = MeasureRow(data);
    std::printf("%-5s %14.4f %14.4f %10.4f | %11.2fx\n",
                std::string(GeoRegionName(region)).c_str(), row.nested_loop,
                row.cell_based, row.dmt,
                std::min(row.nested_loop, row.cell_based) / row.dmt);
  }

  const size_t base_n = dod::bench::ScaledN(8000);
  std::printf("\n--- Fig 9(b): varying data sizes (log scale in paper) ---\n");
  std::printf("%-8s %10s %14s %14s %10s | %12s\n", "level", "points",
              "Nested-Loop", "Cell-Based", "DMT", "best/DMT");
  for (dod::MapLevel level :
       {dod::MapLevel::kMassachusetts, dod::MapLevel::kNewEngland,
        dod::MapLevel::kUnitedStates, dod::MapLevel::kPlanet}) {
    const dod::Dataset data = dod::GenerateHierarchical(level, base_n, 93);
    const Row row = MeasureRow(data);
    std::printf("%-8s %10zu %14.4f %14.4f %10.4f | %11.2fx\n",
                std::string(MapLevelName(level)).c_str(), data.size(),
                row.nested_loop, row.cell_based, row.dmt,
                std::min(row.nested_loop, row.cell_based) / row.dmt);
  }
  return 0;
}
