// Copyright 2026 The DOD Authors.
//
// Figure 8 — Partitioning scalability for growing data sizes.
//
// Paper setup (Sec. VI-B): hierarchical OpenStreetMap datasets MA → New
// England → US → Planet (30 M → 4 B points; we scale ~1000× down),
// partitioners Domain/uniSpace/DDriven/CDriven, detector fixed to
// Nested-Loop (a) and Cell-Based (b); log-scale execution time.
//
// Reported shape: CDriven always wins, and wins more the larger the data —
// at planet scale 6x over DDriven and 17x over Domain.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "data/geo_like.h"

namespace {

using dod::bench::BenchConfig;
using dod::bench::RunPipeline;

void RunPart(dod::AlgorithmKind algorithm, const char* part_label,
             size_t base_n) {
  const dod::DetectionParams params{5.0, 4};
  std::printf("\n--- Fig 8(%s): detector fixed to %s; absolute times, log "
              "scale in the paper ---\n",
              part_label, dod::AlgorithmKindName(algorithm));
  std::printf("%-8s %10s %12s %12s %12s %12s | %18s\n", "level", "points",
              "Domain", "uniSpace", "DDriven", "CDriven", "Domain/CDriven");

  for (dod::MapLevel level :
       {dod::MapLevel::kMassachusetts, dod::MapLevel::kNewEngland,
        dod::MapLevel::kUnitedStates, dod::MapLevel::kPlanet}) {
    const dod::Dataset data = dod::GenerateHierarchical(level, base_n, 81);
    const size_t n = data.size();

    auto time_of = [&](dod::StrategyKind strategy) {
      return RunPipeline(BenchConfig(strategy, algorithm, params, n), data,
                         "")
          .total_seconds;
    };
    const double domain = time_of(dod::StrategyKind::kDomain);
    const double unispace = time_of(dod::StrategyKind::kUniSpace);
    const double ddriven = time_of(dod::StrategyKind::kDDriven);
    const double cdriven = time_of(dod::StrategyKind::kCDriven);

    std::printf("%-8s %10zu %12.4f %12.4f %12.4f %12.4f | %17.1fx\n",
                std::string(MapLevelName(level)).c_str(), n, domain, unispace,
                ddriven, cdriven, domain / cdriven);
  }
}

}  // namespace

int main() {
  const size_t base_n = dod::bench::ScaledN(8000);
  dod::bench::PrintHeader(
      "Figure 8 — Partitioning scalability MA → NE → US → Planet",
      "Paper: CDriven wins in all cases, and wins more as data grows\n"
      "(6x over DDriven and 17x over Domain at planet scale).");
  RunPart(dod::AlgorithmKind::kNestedLoop, "a", base_n);
  RunPart(dod::AlgorithmKind::kCellBased, "b", base_n);
  return 0;
}
