// Copyright 2026 The DOD Authors.
//
// Figure 10 — Execution-time breakdown of the overall DOD approach.
//
// Paper setup (Sec. VI-D):
//  (a) a 2 TB synthetic dataset built by replicating the OpenStreetMap data
//      3× with random per-dimension distortion; configurations
//      Domain+Cell-Based, uniSpace+Cell-Based, DDriven+Cell-Based, DMT.
//      Reported: equal map times, DMT reduce up to 10x faster; DMT's
//      preprocess is longer than DDriven's; Domain/uniSpace have none.
//  (b) the TIGER dataset; configurations CDriven+Nested-Loop,
//      CDriven+Cell-Based, DMT. Reported: DMT up to 20x faster overall.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "data/distort.h"
#include "data/geo_like.h"
#include "data/tiger_like.h"

namespace {

using dod::bench::BenchConfig;
using dod::bench::RunPipeline;
using dod::bench::RunResult;

void PrintBreakdown(const std::vector<RunResult>& rows) {
  std::printf("%-24s %12s %12s %12s %12s\n", "configuration", "preprocess",
              "map", "reduce", "total");
  double best_total = 1e300;
  for (const RunResult& row : rows) best_total = std::min(best_total, row.total_seconds);
  for (const RunResult& row : rows) {
    std::printf("%-24s %12.4f %12.4f %12.4f %12.4f  (%.1fx)\n",
                row.label.c_str(), row.preprocess_seconds, row.map_seconds,
                row.reduce_seconds, row.total_seconds,
                row.total_seconds / best_total);
  }
}

}  // namespace

int main() {
  const dod::DetectionParams params{5.0, 4};

  dod::bench::PrintHeader(
      "Figure 10 — Execution time breakdown",
      "Paper: (a) DMT reduce up to 10x faster on the distorted synthetic\n"
      "data; (b) DMT up to 20x faster overall on TIGER.");

  // ---- (a) distorted synthetic (the paper's 2TB workload, scaled) -------
  {
    const size_t base_n = dod::bench::ScaledN(40000);
    const dod::Dataset base = dod::GenerateHierarchical(
        dod::MapLevel::kNewEngland, base_n / 3, 101);
    dod::DistortOptions distort;
    distort.copies = 3;
    distort.max_alteration_frac = 0.002;
    const dod::Dataset data = DistortReplicate(base, distort);
    const size_t n = data.size();

    std::printf("\n--- Fig 10(a): distorted synthetic dataset (%zu points) "
                "---\n",
                n);
    std::vector<RunResult> rows;
    rows.push_back(RunPipeline(
        BenchConfig(dod::StrategyKind::kDomain, dod::AlgorithmKind::kCellBased,
                    params, n),
        data, "Domain + Cell-Based"));
    rows.push_back(RunPipeline(
        BenchConfig(dod::StrategyKind::kUniSpace,
                    dod::AlgorithmKind::kCellBased, params, n),
        data, "uniSpace + Cell-Based"));
    rows.push_back(RunPipeline(
        BenchConfig(dod::StrategyKind::kDDriven,
                    dod::AlgorithmKind::kCellBased, params, n),
        data, "DDriven + Cell-Based"));
    rows.push_back(RunPipeline(
        BenchConfig(dod::StrategyKind::kDmt, dod::AlgorithmKind::kCellBased,
                    params, n),
        data, "DMT"));
    PrintBreakdown(rows);
  }

  // ---- (b) TIGER-like -----------------------------------------------------
  {
    const size_t n = dod::bench::ScaledN(70000);
    const dod::Dataset data = dod::GenerateTigerLike(n, 103);

    std::printf("\n--- Fig 10(b): TIGER-like dataset (%zu points) ---\n", n);
    std::vector<RunResult> rows;
    rows.push_back(RunPipeline(
        BenchConfig(dod::StrategyKind::kCDriven,
                    dod::AlgorithmKind::kNestedLoop, params, n),
        data, "CDriven + Nested-Loop"));
    rows.push_back(RunPipeline(
        BenchConfig(dod::StrategyKind::kCDriven,
                    dod::AlgorithmKind::kCellBased, params, n),
        data, "CDriven + Cell-Based"));
    rows.push_back(RunPipeline(
        BenchConfig(dod::StrategyKind::kDmt, dod::AlgorithmKind::kCellBased,
                    params, n),
        data, "DMT"));
    PrintBreakdown(rows);
  }
  return 0;
}
