// Copyright 2026 The DOD Authors.
//
// Figure 5 — Performance of the detection algorithms w.r.t. data density.
//
// Paper setup (Sec. IV-B): n = 10,000 points held constant while the domain
// area varies; r=5, k=4. Reported shape: Cell-Based wins when the data is
// very sparse or very dense (cell prunings fire), Nested-Loop wins in the
// intermediate range (index overhead without pruning benefit).

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/timer.h"
#include "data/generators.h"
#include "detection/cost_model.h"
#include "detection/detector.h"

int main() {
  const size_t n = dod::bench::ScaledN(20000);
  const dod::DetectionParams params{/*radius=*/5.0, /*min_neighbors=*/4};

  dod::bench::PrintHeader(
      "Figure 5 — Nested-Loop vs Cell-Based across densities",
      "Constant cardinality, domain area varied. Paper: Cell-Based wins at\n"
      "both density extremes, Nested-Loop wins in the middle.");

  const std::unique_ptr<dod::Detector> nested_loop =
      dod::MakeDetector(dod::AlgorithmKind::kNestedLoop);
  const std::unique_ptr<dod::Detector> cell_based =
      dod::MakeDetector(dod::AlgorithmKind::kCellBased);

  // The sweep uses *uniform* data, exactly the regime where Lemma 4.2's
  // sparse case holds — so the reference prediction is the exact
  // Corollary 4.3 (CellBasedCost vs NestedLoopCost). The guarded planner
  // pick (which forgoes the sparse credit for robustness on clumped real
  // data; DESIGN.md §5) is shown alongside.
  std::printf("%-10s %14s %14s %10s | %12s %12s\n", "density",
              "Nested-Loop(s)", "Cell-Based(s)", "winner", "Cor4.3", "planner");
  const double densities[] = {0.005, 0.01, 0.02, 0.04, 0.06, 0.08,
                              0.12,  0.16, 0.32, 0.64, 1.28, 2.56};
  int agreements = 0, cases = 0;
  for (double density : densities) {
    const dod::Dataset data =
        dod::GenerateUniform(n, dod::DomainForDensity(n, density), 51);
    dod::StopWatch nl_watch;
    nested_loop->DetectOutliers(data, data.size(), params);
    const double nl_time = nl_watch.ElapsedSeconds();
    dod::StopWatch cb_watch;
    cell_based->DetectOutliers(data, data.size(), params);
    const double cb_time = cb_watch.ElapsedSeconds();

    const dod::PartitionStats stats{n, n / density, 2};
    const bool exact_cb =
        CellBasedCost(stats, params) < NestedLoopCost(stats, params);
    const dod::AlgorithmKind planner = SelectAlgorithm(stats, params);
    const char* winner = nl_time < cb_time ? "NL" : "CB";
    const char* exact_pick = exact_cb ? "CB" : "NL";
    agreements += (winner == std::string(exact_pick));
    ++cases;
    std::printf("%-10.3f %14.4f %14.4f %10s | %12s %12s\n", density, nl_time,
                cb_time, winner, exact_pick,
                planner == dod::AlgorithmKind::kNestedLoop ? "NL" : "CB");
  }
  std::printf("\nCorollary 4.3 agreement with measured winner: %d/%d\n",
              agreements, cases);
  return 0;
}
