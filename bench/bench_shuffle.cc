// Copyright 2026 The DOD Authors.
//
// Shuffle grouping throughput — the columnar counting-sort path against the
// classic sorted shuffle, on buckets shaped like the DOD detection job's:
// dense uint32_t cell keys carrying bit-packed id|support words.
//
// Two sections:
//
//   1. Grouping micro-bench: GroupBucket on one reduce-task bucket of
//      ~100k records, best-of-repeats, reported as records/sec per mode
//      plus the columnar/sorted speedup.
//
//   2. Spill regime: the same bucket written out as sorted runs and
//      grouped straight off disk — the columnar two-pass histogram for the
//      spill overhead ratio, the sorted loser-tree merge for merge
//      throughput. Group structure is asserted identical to in-memory.
//
//   3. End-to-end: the full pipeline under --shuffle sorted vs columnar on
//      a geo-like workload; the outlier set is asserted identical (speed
//      must never buy a different answer). The worker-group steal split
//      (runtime.steal.local / remote) is reported alongside.
//
// Emits machine-readable BENCH_shuffle.json (records/sec per mode, the
// speedup ratio, spill_overhead, merge_records_per_sec, the steal
// local_ratio, and process peak RSS) into the current directory.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "data/geo_like.h"
#include "mapreduce/shuffle.h"
#include "mapreduce/spill.h"
#include "observability/metrics.h"

namespace {

using dod::GroupedView;
using dod::ShuffleMode;
using dod::internal::GroupBucket;
using dod::internal::GroupPath;
using dod::internal::GroupScratch;

// Process peak RSS in MB (0 when the platform offers no getrusage).
double PeakRssMb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
#else
  return 0.0;
#endif
}

using Bucket = std::vector<std::pair<uint32_t, uint32_t>>;

// One reduce task's bucket as the detection job produces it: cell ids from
// a dense range (~50 records per cell, the supporting-area replication of a
// mid-density grid), values bit-packed id|support words, emission order
// interleaved across map tasks.
Bucket MakeBucket(size_t records, dod::Rng& rng) {
  const uint32_t num_cells =
      static_cast<uint32_t>(records / 50 > 0 ? records / 50 : 1);
  Bucket bucket;
  bucket.reserve(records);
  for (size_t i = 0; i < records; ++i) {
    const uint32_t cell = static_cast<uint32_t>(rng.NextBounded(num_cells));
    const uint32_t word = static_cast<uint32_t>(rng.NextBounded(1u << 31)) |
                          (rng.NextBounded(4) == 0 ? 0x80000000u : 0u);
    bucket.emplace_back(cell, word);
  }
  return bucket;
}

struct GroupingPoint {
  double records_per_sec = 0.0;
  size_t groups = 0;
  uint64_t checksum = 0;  // defeats dead-code elimination; equality-checked
};

// Best-of-`repeats` grouping throughput. The sorted path mutates its
// bucket, so every iteration regroups a fresh copy; the copy is outside
// the timed region for both modes to keep the comparison clean.
GroupingPoint MeasureGrouping(const Bucket& pristine, ShuffleMode mode,
                              int repeats) {
  GroupingPoint point;
  double best_seconds = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    Bucket bucket = pristine;
    GroupScratch<uint32_t, uint32_t> scratch;
    GroupPath path;
    dod::StopWatch watch;
    const GroupedView<uint32_t, uint32_t> groups =
        GroupBucket(bucket, mode, &scratch, &path);
    const double seconds = watch.ElapsedSeconds();
    if (mode == ShuffleMode::kColumnar && path != GroupPath::kColumnar) {
      std::fprintf(stderr, "FATAL: dense bucket fell back to sorting\n");
      std::exit(1);
    }
    uint64_t checksum = 0;
    for (size_t g = 0; g < groups.num_groups(); ++g) {
      checksum += static_cast<uint64_t>(groups.key(g)) * groups.size(g);
      checksum ^= groups.value(g, 0);
    }
    if (rep == 0 || seconds < best_seconds) {
      best_seconds = seconds;
      point.records_per_sec = static_cast<double>(pristine.size()) / seconds;
      point.groups = groups.num_groups();
      point.checksum = checksum;
    }
  }
  return point;
}

struct SpillRegimePoint {
  double spill_group_seconds = 0.0;   // write runs + columnar two-pass
  double merge_records_per_sec = 0.0; // sorted loser-tree merge off runs
  size_t runs = 0;
  size_t groups = 0;
  uint64_t checksum = 0;
};

uint64_t GroupChecksum(const GroupedView<uint32_t, uint32_t>& groups) {
  uint64_t checksum = 0;
  for (size_t g = 0; g < groups.num_groups(); ++g) {
    checksum += static_cast<uint64_t>(groups.key(g)) * groups.size(g);
    checksum ^= groups.value(g, 0);
  }
  return checksum;
}

// Best-of-`repeats` grouping through on-disk runs. Each repeat re-spills
// the bucket in `slices` flushes (as a map task under a tiny threshold
// would), so the write cost is inside the timed region — that is the
// overhead being measured. The sorted merge is timed over the same runs.
SpillRegimePoint MeasureSpillRegime(const Bucket& pristine, int repeats,
                                    size_t slices) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "dod_bench_spill").string();
  fs::create_directories(dir);
  const std::string file = dod::internal::SpillFilePath(dir, "bench", 0);

  SpillRegimePoint point;
  double best_spill = 0.0;
  double best_merge = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    dod::internal::SpillGc gc;
    dod::StopWatch spill_watch;
    dod::internal::TaskSpiller<uint32_t, uint32_t> spiller(file, &gc);
    dod::internal::TaskSpiller<uint32_t, uint32_t>::Buckets one(1);
    const size_t per_slice = (pristine.size() + slices - 1) / slices;
    for (size_t start = 0; start < pristine.size(); start += per_slice) {
      const size_t end = std::min(start + per_slice, pristine.size());
      one[0].assign(pristine.begin() + start, pristine.begin() + end);
      spiller.Spill(one);
    }
    if (!spiller.status().ok() || !spiller.Finish(one).ok()) {
      std::fprintf(stderr, "FATAL: spill write failed\n");
      std::exit(1);
    }
    const std::vector<dod::internal::SpillRunInfo> runs = spiller.TakeRuns();
    std::vector<dod::internal::ShuffleSegment<uint32_t, uint32_t>> segments;
    segments.reserve(runs.size());
    for (const dod::internal::SpillRunInfo& run : runs) {
      segments.push_back(
          dod::internal::ShuffleSegment<uint32_t, uint32_t>{nullptr, &run});
    }
    GroupScratch<uint32_t, uint32_t> scratch;
    GroupPath path;
    dod::internal::FallbackReason reason;
    auto grouped = dod::internal::GroupSegments(
        segments, ShuffleMode::kColumnar, &scratch, &path, &reason,
        /*budget=*/nullptr);
    const double spill_seconds = spill_watch.ElapsedSeconds();
    if (!grouped.ok() || path != GroupPath::kColumnarSpilled) {
      std::fprintf(stderr, "FATAL: spilled columnar grouping failed\n");
      std::exit(1);
    }
    const uint64_t checksum = GroupChecksum(grouped.value());
    const size_t num_groups = grouped.value().num_groups();

    // Sorted loser-tree merge over the same runs (run segments are
    // read-only; only memory segments get sorted in place).
    GroupScratch<uint32_t, uint32_t> merge_scratch;
    GroupPath merge_path;
    dod::internal::FallbackReason merge_reason;
    dod::StopWatch merge_watch;
    auto merged = dod::internal::GroupSegments(
        segments, ShuffleMode::kSorted, &merge_scratch, &merge_path,
        &merge_reason, /*budget=*/nullptr);
    const double merge_seconds = merge_watch.ElapsedSeconds();
    if (!merged.ok() || merge_path != GroupPath::kSortedSpilled ||
        GroupChecksum(merged.value()) != checksum) {
      std::fprintf(stderr, "FATAL: sorted merge off runs disagrees\n");
      std::exit(1);
    }

    if (rep == 0 || spill_seconds < best_spill) {
      best_spill = spill_seconds;
      point.spill_group_seconds = spill_seconds;
      point.runs = runs.size();
      point.groups = num_groups;
      point.checksum = checksum;
    }
    if (rep == 0 || merge_seconds < best_merge) {
      best_merge = merge_seconds;
      point.merge_records_per_sec =
          static_cast<double>(pristine.size()) / merge_seconds;
    }
  }
  std::error_code ec;
  fs::remove_all(dir, ec);
  return point;
}

uint64_t MetricCount(const std::vector<dod::MetricSnapshot>& snapshots,
                     const std::string& name) {
  for (const dod::MetricSnapshot& m : snapshots) {
    if (m.name == name) return m.count;
  }
  return 0;
}

}  // namespace

int main() {
  const size_t records = dod::bench::ScaledN(100000);
  dod::Rng rng(1234);
  const Bucket bucket = MakeBucket(records, rng);

  dod::bench::PrintHeader(
      "Shuffle grouping — columnar counting sort vs sorted merge",
      "One reduce-task bucket of dense cell keys + packed id|support words;\n"
      "best-of-repeats grouping throughput, then the full pipeline under\n"
      "both --shuffle modes with the outlier set asserted identical.");

  const GroupingPoint sorted =
      MeasureGrouping(bucket, ShuffleMode::kSorted, /*repeats=*/7);
  const GroupingPoint columnar =
      MeasureGrouping(bucket, ShuffleMode::kColumnar, /*repeats=*/7);
  if (sorted.checksum != columnar.checksum ||
      sorted.groups != columnar.groups) {
    std::fprintf(stderr, "FATAL: grouping paths disagree\n");
    return 1;
  }
  const double speedup = columnar.records_per_sec / sorted.records_per_sec;

  std::printf("%zu records, %zu cell groups\n\n", records, sorted.groups);
  std::printf("%10s %16s %9s\n", "mode", "records/sec", "speedup");
  std::printf("%10s %16.0f %8.2fx\n", "sorted", sorted.records_per_sec, 1.0);
  std::printf("%10s %16.0f %8.2fx\n", "columnar", columnar.records_per_sec,
              speedup);

  // Spill regime: same bucket through on-disk runs. The overhead compares
  // the full spilled pass (run writes + columnar two-pass off disk)
  // against the in-memory sorted grouping — the path the engine would
  // otherwise degrade to under the same budget pressure, so this ratio is
  // the price of choosing the spill over the kSortedBudget fallback.
  const SpillRegimePoint spill =
      MeasureSpillRegime(bucket, /*repeats=*/7, /*slices=*/4);
  if (spill.checksum != columnar.checksum || spill.groups != columnar.groups) {
    std::fprintf(stderr, "FATAL: spilled grouping disagrees with in-memory\n");
    return 1;
  }
  const double fallback_seconds =
      static_cast<double>(records) / sorted.records_per_sec;
  const double spill_overhead = spill.spill_group_seconds / fallback_seconds;
  std::printf("\nspill regime (%zu runs):\n", spill.runs);
  std::printf("%22s %8.2fx\n", "spill_overhead", spill_overhead);
  std::printf("%22s %12.0f\n", "merge_records_per_sec",
              spill.merge_records_per_sec);

  // End-to-end: same pipeline, both shuffle modes.
  const dod::DetectionParams params{5.0, 4};
  const dod::Dataset data = dod::GenerateHierarchical(
      dod::MapLevel::kNewEngland, dod::bench::ScaledN(20000), 81);
  dod::DodConfig config = dod::bench::BenchConfig(
      dod::StrategyKind::kDmt, dod::AlgorithmKind::kCellBased, params,
      data.size());

  config.shuffle = ShuffleMode::kSorted;
  const dod::bench::RunResult e2e_sorted =
      dod::bench::RunPipeline(config, data, "sorted", /*repeats=*/3);
  config.shuffle = ShuffleMode::kColumnar;
  const dod::bench::RunResult e2e_columnar =
      dod::bench::RunPipeline(config, data, "columnar", /*repeats=*/3);
  if (e2e_sorted.outliers != e2e_columnar.outliers) {
    std::fprintf(stderr, "FATAL: --shuffle changed the outlier set\n");
    return 1;
  }

  std::printf("\npipeline (%zu points, %zu outliers):\n", data.size(),
              e2e_sorted.outliers);
  std::printf("%10s %12s\n", "mode", "wall");
  std::printf("%10s %11.4fs\n", "sorted", e2e_sorted.wall_seconds);
  std::printf("%10s %11.4fs  (%0.2fx)\n", "columnar",
              e2e_columnar.wall_seconds,
              e2e_sorted.wall_seconds / e2e_columnar.wall_seconds);

  // Worker-group steal split from the e2e runs. With no steals at all
  // (single worker, or hints that always land) locality is perfect.
  const std::vector<dod::MetricSnapshot> runtime_metrics =
      dod::MetricsRegistry::Global().Snapshot();
  const uint64_t local_steals = MetricCount(runtime_metrics,
                                            "runtime.steal.local");
  const uint64_t remote_steals = MetricCount(runtime_metrics,
                                             "runtime.steal.remote");
  const double local_ratio =
      local_steals + remote_steals > 0
          ? static_cast<double>(local_steals) /
                static_cast<double>(local_steals + remote_steals)
          : 1.0;
  std::printf("\nsteal locality: %llu local / %llu remote (local_ratio %.3f)\n",
              static_cast<unsigned long long>(local_steals),
              static_cast<unsigned long long>(remote_steals), local_ratio);

  const double peak_rss_mb = PeakRssMb();
  std::FILE* f = std::fopen("BENCH_shuffle.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_shuffle.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"shuffle\",\n");
  std::fprintf(f, "  \"records\": %zu,\n  \"groups\": %zu,\n", records,
               sorted.groups);
  std::fprintf(f,
               "  \"grouping\": [\n"
               "    {\"mode\": \"sorted\", \"records_per_sec\": %.0f},\n"
               "    {\"mode\": \"columnar\", \"records_per_sec\": %.0f}\n"
               "  ],\n",
               sorted.records_per_sec, columnar.records_per_sec);
  std::fprintf(f, "  \"columnar_speedup\": %.3f,\n", speedup);
  std::fprintf(f,
               "  \"spill\": {\"runs\": %zu, \"spill_overhead\": %.3f, "
               "\"merge_records_per_sec\": %.0f},\n",
               spill.runs, spill_overhead, spill.merge_records_per_sec);
  std::fprintf(f,
               "  \"steal\": {\"local\": %llu, \"remote\": %llu, "
               "\"local_ratio\": %.3f},\n",
               static_cast<unsigned long long>(local_steals),
               static_cast<unsigned long long>(remote_steals), local_ratio);
  std::fprintf(f,
               "  \"pipeline\": {\"points\": %zu, \"outliers\": %zu, "
               "\"sorted_wall_seconds\": %.6f, "
               "\"columnar_wall_seconds\": %.6f},\n",
               data.size(), e2e_sorted.outliers, e2e_sorted.wall_seconds,
               e2e_columnar.wall_seconds);
  std::fprintf(f, "  \"peak_rss_mb\": %.1f\n}\n", peak_rss_mb);
  std::fclose(f);
  std::printf("\nwrote BENCH_shuffle.json (peak RSS %.1f MB)\n", peak_rss_mb);
  return 0;
}
