// Copyright 2026 The DOD Authors.
//
// Shuffle grouping throughput — the columnar counting-sort path against the
// classic sorted shuffle, on buckets shaped like the DOD detection job's:
// dense uint32_t cell keys carrying bit-packed id|support words.
//
// Two sections:
//
//   1. Grouping micro-bench: GroupBucket on one reduce-task bucket of
//      ~100k records, best-of-repeats, reported as records/sec per mode
//      plus the columnar/sorted speedup.
//
//   2. End-to-end: the full pipeline under --shuffle sorted vs columnar on
//      a geo-like workload; the outlier set is asserted identical (speed
//      must never buy a different answer).
//
// Emits machine-readable BENCH_shuffle.json (records/sec per mode, the
// speedup ratio, and process peak RSS) into the current directory.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "data/geo_like.h"
#include "mapreduce/shuffle.h"

namespace {

using dod::GroupedView;
using dod::ShuffleMode;
using dod::internal::GroupBucket;
using dod::internal::GroupPath;
using dod::internal::GroupScratch;

// Process peak RSS in MB (0 when the platform offers no getrusage).
double PeakRssMb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
#else
  return 0.0;
#endif
}

using Bucket = std::vector<std::pair<uint32_t, uint32_t>>;

// One reduce task's bucket as the detection job produces it: cell ids from
// a dense range (~50 records per cell, the supporting-area replication of a
// mid-density grid), values bit-packed id|support words, emission order
// interleaved across map tasks.
Bucket MakeBucket(size_t records, dod::Rng& rng) {
  const uint32_t num_cells =
      static_cast<uint32_t>(records / 50 > 0 ? records / 50 : 1);
  Bucket bucket;
  bucket.reserve(records);
  for (size_t i = 0; i < records; ++i) {
    const uint32_t cell = static_cast<uint32_t>(rng.NextBounded(num_cells));
    const uint32_t word = static_cast<uint32_t>(rng.NextBounded(1u << 31)) |
                          (rng.NextBounded(4) == 0 ? 0x80000000u : 0u);
    bucket.emplace_back(cell, word);
  }
  return bucket;
}

struct GroupingPoint {
  double records_per_sec = 0.0;
  size_t groups = 0;
  uint64_t checksum = 0;  // defeats dead-code elimination; equality-checked
};

// Best-of-`repeats` grouping throughput. The sorted path mutates its
// bucket, so every iteration regroups a fresh copy; the copy is outside
// the timed region for both modes to keep the comparison clean.
GroupingPoint MeasureGrouping(const Bucket& pristine, ShuffleMode mode,
                              int repeats) {
  GroupingPoint point;
  double best_seconds = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    Bucket bucket = pristine;
    GroupScratch<uint32_t, uint32_t> scratch;
    GroupPath path;
    dod::StopWatch watch;
    const GroupedView<uint32_t, uint32_t> groups =
        GroupBucket(bucket, mode, &scratch, &path);
    const double seconds = watch.ElapsedSeconds();
    if (mode == ShuffleMode::kColumnar && path != GroupPath::kColumnar) {
      std::fprintf(stderr, "FATAL: dense bucket fell back to sorting\n");
      std::exit(1);
    }
    uint64_t checksum = 0;
    for (size_t g = 0; g < groups.num_groups(); ++g) {
      checksum += static_cast<uint64_t>(groups.key(g)) * groups.size(g);
      checksum ^= groups.value(g, 0);
    }
    if (rep == 0 || seconds < best_seconds) {
      best_seconds = seconds;
      point.records_per_sec = static_cast<double>(pristine.size()) / seconds;
      point.groups = groups.num_groups();
      point.checksum = checksum;
    }
  }
  return point;
}

}  // namespace

int main() {
  const size_t records = dod::bench::ScaledN(100000);
  dod::Rng rng(1234);
  const Bucket bucket = MakeBucket(records, rng);

  dod::bench::PrintHeader(
      "Shuffle grouping — columnar counting sort vs sorted merge",
      "One reduce-task bucket of dense cell keys + packed id|support words;\n"
      "best-of-repeats grouping throughput, then the full pipeline under\n"
      "both --shuffle modes with the outlier set asserted identical.");

  const GroupingPoint sorted =
      MeasureGrouping(bucket, ShuffleMode::kSorted, /*repeats=*/7);
  const GroupingPoint columnar =
      MeasureGrouping(bucket, ShuffleMode::kColumnar, /*repeats=*/7);
  if (sorted.checksum != columnar.checksum ||
      sorted.groups != columnar.groups) {
    std::fprintf(stderr, "FATAL: grouping paths disagree\n");
    return 1;
  }
  const double speedup = columnar.records_per_sec / sorted.records_per_sec;

  std::printf("%zu records, %zu cell groups\n\n", records, sorted.groups);
  std::printf("%10s %16s %9s\n", "mode", "records/sec", "speedup");
  std::printf("%10s %16.0f %8.2fx\n", "sorted", sorted.records_per_sec, 1.0);
  std::printf("%10s %16.0f %8.2fx\n", "columnar", columnar.records_per_sec,
              speedup);

  // End-to-end: same pipeline, both shuffle modes.
  const dod::DetectionParams params{5.0, 4};
  const dod::Dataset data = dod::GenerateHierarchical(
      dod::MapLevel::kNewEngland, dod::bench::ScaledN(20000), 81);
  dod::DodConfig config = dod::bench::BenchConfig(
      dod::StrategyKind::kDmt, dod::AlgorithmKind::kCellBased, params,
      data.size());

  config.shuffle = ShuffleMode::kSorted;
  const dod::bench::RunResult e2e_sorted =
      dod::bench::RunPipeline(config, data, "sorted", /*repeats=*/3);
  config.shuffle = ShuffleMode::kColumnar;
  const dod::bench::RunResult e2e_columnar =
      dod::bench::RunPipeline(config, data, "columnar", /*repeats=*/3);
  if (e2e_sorted.outliers != e2e_columnar.outliers) {
    std::fprintf(stderr, "FATAL: --shuffle changed the outlier set\n");
    return 1;
  }

  std::printf("\npipeline (%zu points, %zu outliers):\n", data.size(),
              e2e_sorted.outliers);
  std::printf("%10s %12s\n", "mode", "wall");
  std::printf("%10s %11.4fs\n", "sorted", e2e_sorted.wall_seconds);
  std::printf("%10s %11.4fs  (%0.2fx)\n", "columnar",
              e2e_columnar.wall_seconds,
              e2e_sorted.wall_seconds / e2e_columnar.wall_seconds);

  const double peak_rss_mb = PeakRssMb();
  std::FILE* f = std::fopen("BENCH_shuffle.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_shuffle.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"shuffle\",\n");
  std::fprintf(f, "  \"records\": %zu,\n  \"groups\": %zu,\n", records,
               sorted.groups);
  std::fprintf(f,
               "  \"grouping\": [\n"
               "    {\"mode\": \"sorted\", \"records_per_sec\": %.0f},\n"
               "    {\"mode\": \"columnar\", \"records_per_sec\": %.0f}\n"
               "  ],\n",
               sorted.records_per_sec, columnar.records_per_sec);
  std::fprintf(f, "  \"columnar_speedup\": %.3f,\n", speedup);
  std::fprintf(f,
               "  \"pipeline\": {\"points\": %zu, \"outliers\": %zu, "
               "\"sorted_wall_seconds\": %.6f, "
               "\"columnar_wall_seconds\": %.6f},\n",
               data.size(), e2e_sorted.outliers, e2e_sorted.wall_seconds,
               e2e_columnar.wall_seconds);
  std::fprintf(f, "  \"peak_rss_mb\": %.1f\n}\n", peak_rss_mb);
  std::fclose(f);
  std::printf("\nwrote BENCH_shuffle.json (peak RSS %.1f MB)\n", peak_rss_mb);
  return 0;
}
