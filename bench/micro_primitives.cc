// Copyright 2026 The DOD Authors.
//
// Micro-benchmarks (google-benchmark) of the hot primitives: distance
// kernels, grid hashing, router lookups, AF-tree insertion, and the
// centralized detectors at fixed size.

#include <benchmark/benchmark.h>

#include "common/distance.h"
#include "data/generators.h"
#include "detection/cell_based.h"
#include "detection/grid.h"
#include "detection/nested_loop.h"
#include "dshc/af_tree.h"
#include "partition/partition_plan.h"
#include "partition/strategies.h"

namespace dod {
namespace {

void BM_SquaredEuclidean2D(benchmark::State& state) {
  const double a[2] = {1.0, 2.0};
  const double b[2] = {3.0, 4.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(SquaredEuclidean(a, b, 2));
  }
}
BENCHMARK(BM_SquaredEuclidean2D);

void BM_WithinDistance2D(benchmark::State& state) {
  const double a[2] = {1.0, 2.0};
  const double b[2] = {3.0, 4.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(WithinDistance(a, b, 2, 5.0));
  }
}
BENCHMARK(BM_WithinDistance2D);

void BM_GridInsert(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Dataset data = GenerateUniform(n, Rect::Cube(2, 0.0, 100.0), 7);
  for (auto _ : state) {
    SparseGrid grid(data.Bounds().min(), 1.77);
    for (uint32_t i = 0; i < data.size(); ++i) grid.Insert(data[i], i);
    benchmark::DoNotOptimize(grid.cells().size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_GridInsert)->Arg(10000)->Arg(100000);

void BM_GridCountBlock(benchmark::State& state) {
  const Dataset data = GenerateUniform(50000, Rect::Cube(2, 0.0, 300.0), 9);
  SparseGrid grid(data.Bounds().min(), 1.77);
  for (uint32_t i = 0; i < data.size(); ++i) grid.Insert(data[i], i);
  size_t cursor = 0;
  for (auto _ : state) {
    const auto& cell = grid.cells()[cursor++ % grid.cells().size()];
    benchmark::DoNotOptimize(grid.CountBlock(cell.coord, 3));
  }
}
BENCHMARK(BM_GridCountBlock);

void BM_RouterRouteCore(benchmark::State& state) {
  const Rect domain = Rect::Cube(2, 0.0, 1000.0);
  const PartitionPlan plan(domain, 5.0, EquiWidthCells(domain, 256));
  const PartitionRouter router(plan);
  const Dataset data = GenerateUniform(10000, domain, 11);
  size_t cursor = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        router.RouteCore(data[cursor++ % data.size()]));
  }
}
BENCHMARK(BM_RouterRouteCore);

void BM_AfTreeClusterBuckets(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  for (auto _ : state) {
    AfTreeOptions options;
    options.t_diff = 5.0;
    options.t_max_points = 1e18;
    AfTree tree(2, options);
    for (int y = 0; y < side; ++y) {
      for (int x = 0; x < side; ++x) {
        tree.InsertBucket(
            Rect(Point{static_cast<double>(x), static_cast<double>(y)},
                 Point{x + 1.0, y + 1.0}),
            (x / 8 + y / 8) % 2 == 0 ? 4.0 : 40.0);
      }
    }
    benchmark::DoNotOptimize(tree.num_clusters());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * side *
                          side);
}
BENCHMARK(BM_AfTreeClusterBuckets)->Arg(32)->Arg(64);

void BM_NestedLoopDetector(benchmark::State& state) {
  const size_t n = 5000;
  const Dataset data = GenerateUniform(n, DomainForDensity(n, 0.3), 13);
  const DetectionParams params{5.0, 4};
  NestedLoopDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        detector.DetectOutliers(data, data.size(), params));
  }
}
BENCHMARK(BM_NestedLoopDetector);

void BM_CellBasedDetector(benchmark::State& state) {
  const size_t n = 5000;
  const Dataset data = GenerateUniform(n, DomainForDensity(n, 0.3), 13);
  const DetectionParams params{5.0, 4};
  CellBasedDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        detector.DetectOutliers(data, data.size(), params));
  }
}
BENCHMARK(BM_CellBasedDetector);

}  // namespace
}  // namespace dod

BENCHMARK_MAIN();
