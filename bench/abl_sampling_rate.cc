// Copyright 2026 The DOD Authors.
//
// Ablation — sampling rate Υ (paper default 0.5%, Sec. V-A).
//
// The plan is built from a Bernoulli sample; this sweep shows how the
// sampling rate trades preprocessing cost against plan quality (end-to-end
// time and reducer-load balance of the resulting DMT plan).

#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "data/geo_like.h"

int main() {
  const size_t n = dod::bench::ScaledN(60000);
  const dod::DetectionParams params{5.0, 4};
  const dod::Dataset data =
      dod::GenerateHierarchical(dod::MapLevel::kNewEngland, n / 3, 111);

  dod::bench::PrintHeader(
      "Ablation — DMT plan quality vs sampling rate Υ",
      "Lower rates make preprocessing cheaper but plans noisier.");

  std::printf("%-8s %12s %12s %12s %12s %12s\n", "rate", "preprocess",
              "reduce", "total", "partitions", "imbalance");
  for (double rate : {0.002, 0.005, 0.02, 0.05, 0.2}) {
    dod::DodConfig config =
        dod::bench::BenchConfig(dod::StrategyKind::kDmt,
                                dod::AlgorithmKind::kCellBased, params,
                                data.size());
    config.sampler.rate = rate;
    dod::DodPipeline pipeline(config);
    const dod::DodResult result = pipeline.RunOrDie(data);
    // Realized (not estimated) reduce-task imbalance.
    const double imbalance =
        dod::ImbalanceFactor(result.detect_stats.reduce_task_seconds);
    std::printf("%-8.3f %12.4f %12.4f %12.4f %12zu %11.2fx\n", rate,
                result.breakdown.preprocess_seconds,
                result.breakdown.detect.reduce_seconds,
                result.breakdown.total(),
                result.plan.partition_plan.num_cells(), imbalance);
  }
  return 0;
}
