// Copyright 2026 The DOD Authors.
//
// Ablation — allocation policy (Sec. V-A, step 3).
//
// The paper adopts a polynomial-time multi-bin-packing approximation to
// assign partitions to reducers. This sweep compares the realized reduce
// makespan under round-robin striping (Hadoop default), LPT greedy, and
// k-way Karmarkar–Karp differencing.

#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "data/geo_like.h"

int main() {
  const size_t n = dod::bench::ScaledN(60000);
  const dod::DetectionParams params{5.0, 4};
  const dod::Dataset data =
      dod::GenerateHierarchical(dod::MapLevel::kNewEngland, n / 3, 121);

  dod::bench::PrintHeader(
      "Ablation — reducer allocation policy (DMT plan, same partitions)",
      "Makespan of the detection reduce stage under each packing policy.");

  std::printf("%-16s %14s %14s %12s\n", "policy", "reduce (s)",
              "est. imbalance", "realized");
  for (dod::PackingPolicy policy :
       {dod::PackingPolicy::kRoundRobin, dod::PackingPolicy::kLpt,
        dod::PackingPolicy::kKarmarkarKarp}) {
    dod::DodConfig config =
        dod::bench::BenchConfig(dod::StrategyKind::kDmt,
                                dod::AlgorithmKind::kCellBased, params,
                                data.size());
    config.packing = policy;
    dod::DodPipeline pipeline(config);
    const dod::DodResult result = pipeline.RunOrDie(data);
    const double estimated = dod::ImbalanceFactor(
        result.plan.ReducerLoads(config.num_reduce_tasks));
    const double realized =
        dod::ImbalanceFactor(result.detect_stats.reduce_task_seconds);
    std::printf("%-16s %14.4f %13.2fx %11.2fx\n",
                dod::PackingPolicyName(policy),
                result.breakdown.detect.reduce_seconds, estimated, realized);
  }
  return 0;
}
