// Copyright 2026 The DOD Authors.
//
// Ablation — mini-bucket grid resolution (Sec. V-A, stage 1).
//
// Mini buckets are DSHC's unit of processing: a coarse grid makes plans
// cheap but blunt (partitions mix densities); a fine grid sharpens the
// plan at higher preprocessing cost.

#include <cstdio>

#include "bench_util.h"
#include "data/geo_like.h"

int main() {
  const size_t n = dod::bench::ScaledN(60000);
  const dod::DetectionParams params{5.0, 4};
  const dod::Dataset data =
      dod::GenerateHierarchical(dod::MapLevel::kNewEngland, n / 3, 131);

  dod::bench::PrintHeader(
      "Ablation — DMT vs mini-bucket grid resolution",
      "buckets/dim controls the granularity of DSHC's clustering.");

  std::printf("%-12s %12s %12s %12s %12s\n", "buckets/dim", "preprocess",
              "reduce", "total", "partitions");
  for (int buckets : {8, 16, 32, 64, 128}) {
    dod::DodConfig config =
        dod::bench::BenchConfig(dod::StrategyKind::kDmt,
                                dod::AlgorithmKind::kCellBased, params,
                                data.size());
    config.sampler.buckets_per_dim = buckets;
    dod::DodPipeline pipeline(config);
    const dod::DodResult result = pipeline.RunOrDie(data);
    std::printf("%-12d %12.4f %12.4f %12.4f %12zu\n", buckets,
                result.breakdown.preprocess_seconds,
                result.breakdown.detect.reduce_seconds,
                result.breakdown.total(),
                result.plan.partition_plan.num_cells());
  }
  return 0;
}
