// Copyright 2026 The DOD Authors.
//
// Streaming benchmarks, three regimes:
//
// 1. Incremental re-detection vs from-scratch — the case for the dirty-cell
//    rule. A sliding window of spatially localized blocks (traffic
//    concentrated in a small patch per round, the small-delta regime
//    streams are built for) is advanced one block per round:
//
//      * incremental: one long-lived StreamingDetector Feed per round
//        (summaries off — this measures PR 7's dirty-cell re-detection);
//      * from-scratch: a fresh StreamingDetector fed the whole window as
//        one block — the same detectors, arena staging and threading, but
//        every cell dirty, which is exactly what a batch re-run costs.
//
// 2. Summary maintenance vs re-detection — the case for carrying
//    per-point neighbor counts across rounds. Diffuse traffic (blocks
//    uniform over the whole domain) makes the dirty set approach every
//    resident cell, so re-detection degenerates toward from-scratch while
//    the summary path stays O(block × ring): two long-lived services
//    consume the identical schedule, one with summaries on and one off. A
//    third service consumes it through a time-based window (timestamps =
//    round index, window_seconds = window_blocks — the same resident set
//    every round) to pin the time-window configuration to the same
//    verdicts.
//
// 3. Reorder-buffer overhead — the price of out-of-order admission. The
//    diffuse schedule is jitter-shuffled within a lateness bound and
//    replayed through the watermark reorder stage (Ingest + Flush); the
//    rate ratio against in-order Feed is reported as reorder_overhead.
//
// Outlier sets are asserted identical across every paired round (speed
// must never buy a different answer). Emits BENCH_streaming.json with
// rounds/sec per mode, the speedups and the mean dirty-cell fraction; CI
// smoke-checks small_delta_speedup (regime 1) and
// small_delta_speedup_summaries (regime 2).

#include <cmath>
#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "streaming/streaming_detector.h"

namespace {

using dod::PointId;
using dod::StreamBlock;
using dod::StreamingConfig;
using dod::StreamingDetector;

constexpr double kDomain = 64.0;  // points in [0, kDomain)^2
constexpr double kPatch = 8.0;    // each block lands in one patch^2 region
constexpr double kRadius = 2.0;
constexpr int kMinNeighbors = 4;

StreamingDetector& Must(dod::Result<std::unique_ptr<StreamingDetector>>& r) {
  if (!r.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return *r.value();
}

void MustFeed(StreamingDetector& detector, const StreamBlock& block,
              double* seconds = nullptr) {
  dod::StopWatch watch;
  auto fed = detector.Feed(block);
  if (seconds != nullptr) *seconds += watch.ElapsedSeconds();
  if (!fed.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", fed.status().ToString().c_str());
    std::exit(1);
  }
}

struct Workload {
  size_t block_size = 0;
  size_t window_blocks = 0;
  std::deque<StreamBlock> window;  // current resident blocks, oldest first
  dod::Rng rng{0x57AE};
  uint64_t next_id = 0;

  explicit Workload(size_t block_size, size_t window_points)
      : block_size(block_size),
        window_blocks(window_points / block_size) {}

  // One localized block: uniform points in one random patch of the domain.
  StreamBlock NextBlock() {
    StreamBlock block(2);
    const double px = rng.NextDouble() * (kDomain - kPatch);
    const double py = rng.NextDouble() * (kDomain - kPatch);
    for (size_t i = 0; i < block_size; ++i) {
      const double p[2] = {px + rng.NextDouble() * kPatch,
                           py + rng.NextDouble() * kPatch};
      block.Add(static_cast<PointId>(next_id++), p);
    }
    return block;
  }

  StreamBlock Advance() {
    StreamBlock block = NextBlock();
    window.push_back(block);
    if (window.size() > window_blocks) window.pop_front();
    return block;
  }

  // Every resident point as one block (the from-scratch round's input).
  StreamBlock WholeWindow() const {
    StreamBlock all(2);
    for (const StreamBlock& block : window) {
      for (size_t i = 0; i < block.ids.size(); ++i) {
        all.Add(block.ids[i], block.points[static_cast<PointId>(i)]);
      }
    }
    return all;
  }
};

StreamingConfig ServiceConfig(size_t window_blocks, bool summaries) {
  StreamingConfig config;
  config.params.radius = kRadius;
  config.params.min_neighbors = kMinNeighbors;
  config.params.seed = 11;
  config.window_blocks = window_blocks;
  config.num_threads = 1;  // isolate the algorithmic win from threading
  config.summaries = summaries;
  return config;
}

struct ConfigResult {
  size_t block_size = 0;
  size_t window_points = 0;
  double incremental_rounds_per_sec = 0.0;
  double scratch_rounds_per_sec = 0.0;
  double speedup = 0.0;
  double mean_dirty_fraction = 0.0;
};

ConfigResult MeasureBlockSize(size_t block_size, size_t window_points,
                              int rounds) {
  Workload workload(block_size, window_points);
  // Summaries off on both sides: this regime measures the dirty-cell rule
  // itself (re-detection vs from-scratch), the PR 7 baseline the summary
  // regime below is compared against.
  auto created = StreamingDetector::Create(
      ServiceConfig(workload.window_blocks, /*summaries=*/false));
  StreamingDetector& incremental = Must(created);

  // Prefill the window (not measured).
  for (size_t b = 0; b < workload.window_blocks; ++b) {
    MustFeed(incremental, workload.Advance());
  }

  // Measured steady-state rounds: each Feed appends one localized block
  // and expires the oldest. From-scratch is sampled every 4th round (it is
  // the slow side; a few samples pin its rate fine).
  ConfigResult result;
  result.block_size = block_size;
  result.window_points = workload.window_blocks * block_size;
  double incremental_seconds = 0.0;
  double scratch_seconds = 0.0;
  int scratch_samples = 0;
  for (int round = 0; round < rounds; ++round) {
    const StreamBlock block = workload.Advance();
    dod::StopWatch watch;
    auto fed = incremental.Feed(block);
    incremental_seconds += watch.ElapsedSeconds();
    if (!fed.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", fed.status().ToString().c_str());
      std::exit(1);
    }
    result.mean_dirty_fraction += fed.value().stats.dirty_fraction;

    if (round % 4 == 0) {
      auto scratch = StreamingDetector::Create(
          ServiceConfig(workload.window_blocks, /*summaries=*/false));
      const StreamBlock whole = workload.WholeWindow();
      dod::StopWatch scratch_watch;
      auto refed = scratch.value()->Feed(whole);
      scratch_seconds += scratch_watch.ElapsedSeconds();
      ++scratch_samples;
      if (!refed.ok() ||
          scratch.value()->outliers() != incremental.outliers()) {
        std::fprintf(stderr,
                     "FATAL: from-scratch disagrees at round %d "
                     "(block_size %zu)\n",
                     round, block_size);
        std::exit(1);
      }
    }
  }
  result.incremental_rounds_per_sec = rounds / incremental_seconds;
  result.scratch_rounds_per_sec = scratch_samples / scratch_seconds;
  result.speedup =
      result.incremental_rounds_per_sec / result.scratch_rounds_per_sec;
  result.mean_dirty_fraction /= rounds;
  return result;
}

// ---- Regime 2: summaries vs re-detection under diffuse traffic ----------

// Blocks uniform over the whole (density-1) domain: every round touches
// cells everywhere, so the re-detection path's dirty set approaches the
// full window while the summary path's work stays proportional to the
// block and its ring.
struct ScatterWorkload {
  size_t block_size = 0;
  size_t window_blocks = 0;
  double domain = 0.0;
  dod::Rng rng{0xD1FF};
  uint64_t next_id = 0;
  uint64_t round = 0;

  ScatterWorkload(size_t block_size, size_t window_points)
      : block_size(block_size),
        window_blocks(window_points / block_size),
        domain(std::sqrt(static_cast<double>(window_points))) {}

  StreamBlock NextBlock() {
    StreamBlock block(2);
    for (size_t i = 0; i < block_size; ++i) {
      const double p[2] = {rng.NextDouble() * domain,
                           rng.NextDouble() * domain};
      block.Add(static_cast<PointId>(next_id++), p);
    }
    // Round index as timestamp: with window_seconds == window_blocks the
    // time-based window keeps exactly the count-based resident set.
    block.timestamp = static_cast<double>(round++);
    return block;
  }
};

struct SummaryResult {
  size_t block_size = 0;
  size_t window_points = 0;
  double summaries_rounds_per_sec = 0.0;
  double redetect_rounds_per_sec = 0.0;
  double speedup = 0.0;
  double mean_dirty_fraction = 0.0;
  double mean_recounted = 0.0;
};

SummaryResult MeasureSummaries(size_t block_size, size_t window_points,
                               int rounds) {
  ScatterWorkload workload(block_size, window_points);
  auto with = StreamingDetector::Create(
      ServiceConfig(workload.window_blocks, /*summaries=*/true));
  auto without = StreamingDetector::Create(
      ServiceConfig(workload.window_blocks, /*summaries=*/false));
  StreamingConfig timed_config =
      ServiceConfig(/*window_blocks=*/0, /*summaries=*/true);
  timed_config.window_seconds = static_cast<double>(workload.window_blocks);
  auto timed_created = StreamingDetector::Create(timed_config);
  StreamingDetector& summaries = Must(with);
  StreamingDetector& redetect = Must(without);
  StreamingDetector& timed = Must(timed_created);

  for (size_t b = 0; b < workload.window_blocks; ++b) {
    const StreamBlock block = workload.NextBlock();
    MustFeed(summaries, block);
    MustFeed(redetect, block);
    MustFeed(timed, block);
  }

  SummaryResult result;
  result.block_size = block_size;
  result.window_points = workload.window_blocks * block_size;
  double summary_seconds = 0.0;
  double redetect_seconds = 0.0;
  for (int round = 0; round < rounds; ++round) {
    const StreamBlock block = workload.NextBlock();
    dod::StopWatch watch;
    auto fed = summaries.Feed(block);
    summary_seconds += watch.ElapsedSeconds();
    if (!fed.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", fed.status().ToString().c_str());
      std::exit(1);
    }
    result.mean_recounted +=
        static_cast<double>(fed.value().stats.recounted_points);

    dod::StopWatch redetect_watch;
    auto refed = redetect.Feed(block);
    redetect_seconds += redetect_watch.ElapsedSeconds();
    if (!refed.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", refed.status().ToString().c_str());
      std::exit(1);
    }
    result.mean_dirty_fraction += refed.value().stats.dirty_fraction;
    MustFeed(timed, block);

    if (summaries.outliers() != redetect.outliers() ||
        summaries.outliers() != timed.outliers()) {
      std::fprintf(stderr,
                   "FATAL: summary/re-detect/time-window outlier sets "
                   "disagree at round %d (block_size %zu)\n",
                   round, block_size);
      std::exit(1);
    }
  }
  result.summaries_rounds_per_sec = rounds / summary_seconds;
  result.redetect_rounds_per_sec = rounds / redetect_seconds;
  result.speedup =
      result.summaries_rounds_per_sec / result.redetect_rounds_per_sec;
  result.mean_dirty_fraction /= rounds;
  result.mean_recounted /= rounds;
  return result;
}

// ---- Regime 3: reorder-buffer overhead under out-of-order arrival -------

// The same diffuse schedule consumed twice: in timestamp order through
// Feed, and shuffled within the lateness bound through the watermark
// reorder stage (Ingest + final Flush). Every shuffled arrival pays the
// canonical-position insert and the watermark/drain bookkeeping on top of
// the identical admitted rounds, so the rate ratio is the price of
// out-of-order admission itself.
struct ReorderResult {
  size_t block_size = 0;
  size_t window_points = 0;
  double inorder_rounds_per_sec = 0.0;
  double reorder_rounds_per_sec = 0.0;
  double overhead = 0.0;  // in-order rate / reorder rate (>= 1: slower)
  double mean_buffered = 0.0;
};

ReorderResult MeasureReorder(size_t block_size, size_t window_points,
                             int rounds) {
  const double lateness = 4.0;
  ScatterWorkload workload(block_size, window_points);
  auto inorder_created = StreamingDetector::Create(
      ServiceConfig(workload.window_blocks, /*summaries=*/true));
  StreamingConfig reorder_config =
      ServiceConfig(workload.window_blocks, /*summaries=*/true);
  reorder_config.watermark.enabled = true;
  reorder_config.watermark.lateness = lateness;
  auto reorder_created = StreamingDetector::Create(reorder_config);
  StreamingDetector& inorder = Must(inorder_created);
  StreamingDetector& reorder = Must(reorder_created);

  auto must_ingest = [&](const StreamBlock& block, double* seconds,
                         double* buffered) {
    dod::StopWatch watch;
    auto ingested = reorder.Ingest(block);
    *seconds += watch.ElapsedSeconds();
    if (!ingested.ok()) {
      std::fprintf(stderr, "FATAL: %s\n",
                   ingested.status().ToString().c_str());
      std::exit(1);
    }
    if (buffered != nullptr) {
      *buffered += static_cast<double>(ingested.value().buffered);
    }
  };

  // Prefill both services in order (not measured).
  double sink = 0.0;
  for (size_t b = 0; b < workload.window_blocks; ++b) {
    const StreamBlock block = workload.NextBlock();
    MustFeed(inorder, block);
    must_ingest(block, &sink, nullptr);
  }

  // Pre-generate the measured schedule, then jitter-shuffle the arrival
  // order within the lateness bound (priority = ts + U[0,L)) — the same
  // permutation family the conformance suite fuzzes.
  std::vector<StreamBlock> schedule;
  schedule.reserve(rounds);
  for (int round = 0; round < rounds; ++round) {
    schedule.push_back(workload.NextBlock());
  }
  std::vector<std::pair<double, size_t>> order;
  order.reserve(schedule.size());
  for (size_t i = 0; i < schedule.size(); ++i) {
    order.emplace_back(schedule[i].timestamp +
                           workload.rng.NextDouble() * lateness,
                       i);
  }
  std::sort(order.begin(), order.end());

  ReorderResult result;
  result.block_size = block_size;
  result.window_points = workload.window_blocks * block_size;
  double inorder_seconds = 0.0;
  double reorder_seconds = 0.0;
  for (const StreamBlock& block : schedule) {
    MustFeed(inorder, block, &inorder_seconds);
  }
  for (const auto& [priority, i] : order) {
    must_ingest(schedule[i], &reorder_seconds, &result.mean_buffered);
  }
  {
    dod::StopWatch watch;
    auto flushed = reorder.Flush();
    reorder_seconds += watch.ElapsedSeconds();
    if (!flushed.ok()) {
      std::fprintf(stderr, "FATAL: %s\n",
                   flushed.status().ToString().c_str());
      std::exit(1);
    }
  }
  if (reorder.outliers() != inorder.outliers()) {
    std::fprintf(stderr,
                 "FATAL: shuffled replay disagrees with in-order "
                 "(block_size %zu)\n",
                 block_size);
    std::exit(1);
  }
  result.inorder_rounds_per_sec = rounds / inorder_seconds;
  result.reorder_rounds_per_sec = rounds / reorder_seconds;
  result.overhead =
      result.inorder_rounds_per_sec / result.reorder_rounds_per_sec;
  result.mean_buffered /= rounds;
  return result;
}

}  // namespace

int main() {
  const size_t window_points = dod::bench::ScaledN(16384);
  const int rounds = 20;

  dod::bench::PrintHeader(
      "Streaming: incremental re-detection and summary maintenance",
      "Regime 1 (localized blocks): one Feed per round re-detects only\n"
      "dirty cells vs a fresh detector re-detecting the whole window.\n"
      "Regime 2 (diffuse blocks): incremental count summaries vs dirty-cell\n"
      "re-detection, plus a time-based-window service pinned to the same\n"
      "verdicts. Outlier sets asserted identical across paired rounds.");

  const std::vector<size_t> block_sizes = {128, 512, 2048};
  std::vector<ConfigResult> results;
  std::printf("%11s %9s %14s %14s %9s %8s\n", "block_size", "window",
              "incr rnd/s", "scratch rnd/s", "speedup", "dirty%");
  for (size_t block_size : block_sizes) {
    const ConfigResult r = MeasureBlockSize(block_size, window_points, rounds);
    results.push_back(r);
    std::printf("%11zu %9zu %14.1f %14.1f %8.2fx %7.1f%%\n", r.block_size,
                r.window_points, r.incremental_rounds_per_sec,
                r.scratch_rounds_per_sec, r.speedup,
                100.0 * r.mean_dirty_fraction);
  }

  // Regime 2: diffuse traffic, smaller window (the dirty set covers the
  // domain either way; what differs is the per-round work).
  const size_t scatter_points = dod::bench::ScaledN(8192);
  const std::vector<size_t> summary_block_sizes = {128, 512};
  std::vector<SummaryResult> summary_results;
  std::printf("\n%11s %9s %14s %14s %9s %8s %9s\n", "block_size", "window",
              "summ rnd/s", "redet rnd/s", "speedup", "dirty%", "recounts");
  for (size_t block_size : summary_block_sizes) {
    const SummaryResult r =
        MeasureSummaries(block_size, scatter_points, rounds);
    summary_results.push_back(r);
    std::printf("%11zu %9zu %14.1f %14.1f %8.2fx %7.1f%% %9.1f\n",
                r.block_size, r.window_points, r.summaries_rounds_per_sec,
                r.redetect_rounds_per_sec, r.speedup,
                100.0 * r.mean_dirty_fraction, r.mean_recounted);
  }

  // Regime 3: the same diffuse schedule shuffled within a lateness bound
  // and replayed through the watermark reorder stage. The overhead ratio
  // prices out-of-order admission against in-order Feed.
  const std::vector<size_t> reorder_block_sizes = {512};
  std::vector<ReorderResult> reorder_results;
  std::printf("\n%11s %9s %14s %14s %9s %9s\n", "block_size", "window",
              "inord rnd/s", "reord rnd/s", "overhead", "buffered");
  for (size_t block_size : reorder_block_sizes) {
    const ReorderResult r = MeasureReorder(block_size, scatter_points, rounds);
    reorder_results.push_back(r);
    std::printf("%11zu %9zu %14.1f %14.1f %8.2fx %9.1f\n", r.block_size,
                r.window_points, r.inorder_rounds_per_sec,
                r.reorder_rounds_per_sec, r.overhead, r.mean_buffered);
  }

  // The headline numbers CI guards: the smallest-delta configurations,
  // where incrementality — and summary maintenance — have the most to
  // offer.
  const double small_delta_speedup = results.front().speedup;
  const double small_delta_speedup_summaries = summary_results.front().speedup;
  const double reorder_overhead = reorder_results.front().overhead;

  std::FILE* f = std::fopen("BENCH_streaming.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_streaming.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"streaming\",\n  \"rounds\": %d,\n",
               rounds);
  std::fprintf(f, "  \"configs\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    std::fprintf(f,
                 "    {\"block_size\": %zu, \"window_points\": %zu, "
                 "\"incremental_rounds_per_sec\": %.1f, "
                 "\"scratch_rounds_per_sec\": %.1f, \"speedup\": %.3f, "
                 "\"mean_dirty_fraction\": %.4f}%s\n",
                 r.block_size, r.window_points, r.incremental_rounds_per_sec,
                 r.scratch_rounds_per_sec, r.speedup, r.mean_dirty_fraction,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"summary_configs\": [\n");
  for (size_t i = 0; i < summary_results.size(); ++i) {
    const SummaryResult& r = summary_results[i];
    std::fprintf(f,
                 "    {\"block_size\": %zu, \"window_points\": %zu, "
                 "\"summaries_rounds_per_sec\": %.1f, "
                 "\"redetect_rounds_per_sec\": %.1f, \"speedup\": %.3f, "
                 "\"mean_dirty_fraction\": %.4f, "
                 "\"mean_recounted_points\": %.1f}%s\n",
                 r.block_size, r.window_points, r.summaries_rounds_per_sec,
                 r.redetect_rounds_per_sec, r.speedup, r.mean_dirty_fraction,
                 r.mean_recounted,
                 i + 1 < summary_results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"reorder_configs\": [\n");
  for (size_t i = 0; i < reorder_results.size(); ++i) {
    const ReorderResult& r = reorder_results[i];
    std::fprintf(f,
                 "    {\"block_size\": %zu, \"window_points\": %zu, "
                 "\"inorder_rounds_per_sec\": %.1f, "
                 "\"reorder_rounds_per_sec\": %.1f, \"overhead\": %.3f, "
                 "\"mean_buffered_blocks\": %.1f}%s\n",
                 r.block_size, r.window_points, r.inorder_rounds_per_sec,
                 r.reorder_rounds_per_sec, r.overhead, r.mean_buffered,
                 i + 1 < reorder_results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"small_delta_speedup\": %.3f,\n", small_delta_speedup);
  std::fprintf(f, "  \"small_delta_speedup_summaries\": %.3f,\n",
               small_delta_speedup_summaries);
  std::fprintf(f, "  \"reorder_overhead\": %.3f\n}\n", reorder_overhead);
  std::fclose(f);
  std::printf(
      "\nwrote BENCH_streaming.json (small-delta speedup %.2fx, "
      "summaries speedup %.2fx, reorder overhead %.2fx)\n",
      small_delta_speedup, small_delta_speedup_summaries, reorder_overhead);
  return 0;
}
