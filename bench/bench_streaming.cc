// Copyright 2026 The DOD Authors.
//
// Streaming incremental re-detection vs from-scratch — the case for the
// dirty-cell rule. A sliding window of spatially localized blocks (traffic
// concentrated in a small patch per round, the small-delta regime streams
// are built for) is advanced one block per round:
//
//   * incremental: one long-lived StreamingDetector Feed per round, which
//     re-detects only the dirty cells (touched + supporting ring);
//
//   * from-scratch: a fresh StreamingDetector fed the whole window as one
//     block — the same detectors, arena staging and threading, but every
//     cell dirty, which is exactly what a batch re-run per round costs.
//
// Outlier sets are asserted identical at every sampled round (speed must
// never buy a different answer). Emits BENCH_streaming.json with
// rounds/sec for both modes, the speedup, and the mean dirty-cell
// fraction per block size; CI smoke-checks small_delta_speedup.

#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "streaming/streaming_detector.h"

namespace {

using dod::PointId;
using dod::StreamBlock;
using dod::StreamingConfig;
using dod::StreamingDetector;

constexpr double kDomain = 64.0;  // points in [0, kDomain)^2
constexpr double kPatch = 8.0;    // each block lands in one patch^2 region
constexpr double kRadius = 2.0;
constexpr int kMinNeighbors = 4;

struct Workload {
  size_t block_size = 0;
  size_t window_blocks = 0;
  std::deque<StreamBlock> window;  // current resident blocks, oldest first
  dod::Rng rng{0x57AE};
  uint64_t next_id = 0;

  explicit Workload(size_t block_size, size_t window_points)
      : block_size(block_size),
        window_blocks(window_points / block_size) {}

  // One localized block: uniform points in one random patch of the domain.
  StreamBlock NextBlock() {
    StreamBlock block(2);
    const double px = rng.NextDouble() * (kDomain - kPatch);
    const double py = rng.NextDouble() * (kDomain - kPatch);
    for (size_t i = 0; i < block_size; ++i) {
      const double p[2] = {px + rng.NextDouble() * kPatch,
                           py + rng.NextDouble() * kPatch};
      block.Add(static_cast<PointId>(next_id++), p);
    }
    return block;
  }

  StreamBlock Advance() {
    StreamBlock block = NextBlock();
    window.push_back(block);
    if (window.size() > window_blocks) window.pop_front();
    return block;
  }

  // Every resident point as one block (the from-scratch round's input).
  StreamBlock WholeWindow() const {
    StreamBlock all(2);
    for (const StreamBlock& block : window) {
      for (size_t i = 0; i < block.ids.size(); ++i) {
        all.Add(block.ids[i], block.points[static_cast<PointId>(i)]);
      }
    }
    return all;
  }
};

StreamingConfig ServiceConfig(size_t window_blocks) {
  StreamingConfig config;
  config.params.radius = kRadius;
  config.params.min_neighbors = kMinNeighbors;
  config.params.seed = 11;
  config.window_blocks = window_blocks;
  config.num_threads = 1;  // isolate the algorithmic win from threading
  return config;
}

struct ConfigResult {
  size_t block_size = 0;
  size_t window_points = 0;
  double incremental_rounds_per_sec = 0.0;
  double scratch_rounds_per_sec = 0.0;
  double speedup = 0.0;
  double mean_dirty_fraction = 0.0;
};

ConfigResult MeasureBlockSize(size_t block_size, size_t window_points,
                              int rounds) {
  Workload workload(block_size, window_points);
  auto created = StreamingDetector::Create(
      ServiceConfig(workload.window_blocks));
  if (!created.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", created.status().ToString().c_str());
    std::exit(1);
  }
  StreamingDetector& incremental = *created.value();

  // Prefill the window (not measured).
  for (size_t b = 0; b < workload.window_blocks; ++b) {
    auto fed = incremental.Feed(workload.Advance());
    if (!fed.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", fed.status().ToString().c_str());
      std::exit(1);
    }
  }

  // Measured steady-state rounds: each Feed appends one localized block
  // and expires the oldest. From-scratch is sampled every 4th round (it is
  // the slow side; a few samples pin its rate fine).
  ConfigResult result;
  result.block_size = block_size;
  result.window_points = workload.window_blocks * block_size;
  double incremental_seconds = 0.0;
  double scratch_seconds = 0.0;
  int scratch_samples = 0;
  for (int round = 0; round < rounds; ++round) {
    const StreamBlock block = workload.Advance();
    dod::StopWatch watch;
    auto fed = incremental.Feed(block);
    incremental_seconds += watch.ElapsedSeconds();
    if (!fed.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", fed.status().ToString().c_str());
      std::exit(1);
    }
    result.mean_dirty_fraction += fed.value().stats.dirty_fraction;

    if (round % 4 == 0) {
      auto scratch =
          StreamingDetector::Create(ServiceConfig(workload.window_blocks));
      const StreamBlock whole = workload.WholeWindow();
      dod::StopWatch scratch_watch;
      auto refed = scratch.value()->Feed(whole);
      scratch_seconds += scratch_watch.ElapsedSeconds();
      ++scratch_samples;
      if (!refed.ok() ||
          scratch.value()->outliers() != incremental.outliers()) {
        std::fprintf(stderr,
                     "FATAL: from-scratch disagrees at round %d "
                     "(block_size %zu)\n",
                     round, block_size);
        std::exit(1);
      }
    }
  }
  result.incremental_rounds_per_sec = rounds / incremental_seconds;
  result.scratch_rounds_per_sec = scratch_samples / scratch_seconds;
  result.speedup =
      result.incremental_rounds_per_sec / result.scratch_rounds_per_sec;
  result.mean_dirty_fraction /= rounds;
  return result;
}

}  // namespace

int main() {
  const size_t window_points = dod::bench::ScaledN(16384);
  const int rounds = 20;

  dod::bench::PrintHeader(
      "Streaming incremental re-detection vs from-scratch",
      "Sliding window of localized blocks; one Feed per round re-detects\n"
      "only dirty cells vs a fresh detector re-detecting the whole window.\n"
      "Outlier sets asserted identical at every sampled round.");

  const std::vector<size_t> block_sizes = {128, 512, 2048};
  std::vector<ConfigResult> results;
  std::printf("%11s %9s %14s %14s %9s %8s\n", "block_size", "window",
              "incr rnd/s", "scratch rnd/s", "speedup", "dirty%");
  for (size_t block_size : block_sizes) {
    const ConfigResult r = MeasureBlockSize(block_size, window_points, rounds);
    results.push_back(r);
    std::printf("%11zu %9zu %14.1f %14.1f %8.2fx %7.1f%%\n", r.block_size,
                r.window_points, r.incremental_rounds_per_sec,
                r.scratch_rounds_per_sec, r.speedup,
                100.0 * r.mean_dirty_fraction);
  }

  // The headline number CI guards: the smallest-delta configuration, where
  // incrementality has the most to offer.
  const double small_delta_speedup = results.front().speedup;

  std::FILE* f = std::fopen("BENCH_streaming.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_streaming.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"streaming\",\n  \"rounds\": %d,\n",
               rounds);
  std::fprintf(f, "  \"configs\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    std::fprintf(f,
                 "    {\"block_size\": %zu, \"window_points\": %zu, "
                 "\"incremental_rounds_per_sec\": %.1f, "
                 "\"scratch_rounds_per_sec\": %.1f, \"speedup\": %.3f, "
                 "\"mean_dirty_fraction\": %.4f}%s\n",
                 r.block_size, r.window_points, r.incremental_rounds_per_sec,
                 r.scratch_rounds_per_sec, r.speedup, r.mean_dirty_fraction,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"small_delta_speedup\": %.3f\n}\n", small_delta_speedup);
  std::fclose(f);
  std::printf("\nwrote BENCH_streaming.json (small-delta speedup %.2fx)\n",
              small_delta_speedup);
  return 0;
}
