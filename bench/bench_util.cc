// Copyright 2026 The DOD Authors.

#include "bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "observability/metrics.h"
#include "observability/profile.h"

namespace dod {
namespace bench {

double Scale() {
  static const double scale = [] {
    const char* env = std::getenv("DOD_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double value = std::strtod(env, nullptr);
    return value > 0.0 ? value : 1.0;
  }();
  return scale;
}

size_t ScaledN(size_t base) {
  return std::max<size_t>(1000, static_cast<size_t>(base * Scale()));
}

RunResult RunPipeline(const DodConfig& config, const Dataset& data,
                      const std::string& label, int repeats) {
  DodPipeline pipeline(config);
  DodResult result = pipeline.RunOrDie(data);
  for (int i = 1; i < repeats; ++i) {
    DodResult again = pipeline.RunOrDie(data);
    if (again.breakdown.total() < result.breakdown.total()) {
      result = std::move(again);
    }
  }
  RunResult out;
  out.label = label;
  out.total_seconds = result.breakdown.total();
  out.preprocess_seconds = result.breakdown.preprocess_seconds;
  out.map_seconds = result.breakdown.detect.map_seconds +
                    result.breakdown.detect.shuffle_seconds +
                    result.breakdown.verify.map_seconds +
                    result.breakdown.verify.shuffle_seconds;
  out.reduce_seconds = result.breakdown.detect.reduce_seconds +
                       result.breakdown.verify.reduce_seconds;
  out.wall_seconds = result.wall_seconds;
  out.outliers = result.outliers.size();
  out.partitions = result.plan.partition_plan.num_cells();
  return out;
}

DodConfig BenchConfig(StrategyKind strategy, AlgorithmKind algorithm,
                      const DetectionParams& params, size_t n) {
  DodConfig config = strategy == StrategyKind::kDmt
                         ? DodConfig::Dmt(params)
                         : DodConfig::Baseline(params, strategy, algorithm);
  // Partition granularity: partitions must be large enough that the
  // asymptotic gap between the detector classes matters (Nested-Loop's
  // probe count per point grows with partition size; Cell-Based's indexing
  // stays linear), yet numerous enough that reducers can be balanced. The
  // paper's reducers process partitions of 10^5-10^6 points; scaled down we
  // target ~4000 points per partition, several partitions per reduce task.
  config.target_partitions =
      std::clamp<size_t>(n / 4000, size_t{32}, size_t{512});
  config.num_reduce_tasks = 32;
  config.num_blocks = 32;
  // Scaled-up Υ and an adaptive bucket grid: the sketch needs several
  // samples per occupied bucket for bucket densities (and hence regime
  // classification) to be meaningful, yet enough buckets that a dense city
  // spans many of them (a sub-bucket city cannot be split by any planner).
  // At the paper's scale Υ=0.5% yields both easily; at bench scale we
  // sample 20% and target ~10 samples per bucket.
  config.sampler.rate = 0.2;
  config.sampler.buckets_per_dim = std::clamp(
      static_cast<int>(std::sqrt(n * config.sampler.rate / 10.0)), 32, 128);
  return config;
}

void WriteMetricsJson(const char* path,
                      const std::vector<PartitionProfile>& profiles) {
  const std::string json =
      ObservabilityReportJson(MetricsRegistry::Global().Snapshot(), profiles);
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

void PrintHeader(const std::string& title, const std::string& note) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("(scale=%.2f; times are simulated cluster seconds)\n", Scale());
  std::printf("================================================================\n");
}

void PrintRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths) {
  for (size_t i = 0; i < cells.size(); ++i) {
    const int width = i < widths.size() ? widths[i] : 12;
    std::printf("%-*s", width, cells[i].c_str());
  }
  std::printf("\n");
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", seconds);
  return buf;
}

std::string FormatRatio(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", ratio);
  return buf;
}

}  // namespace bench
}  // namespace dod
