// Copyright 2026 The DOD Authors.
//
// Durable-execution overhead — the full pipeline with task checkpointing
// against the same run without it, plus one crash/resume cycle.
//
// Three sections:
//
//   1. Baseline: best-of-repeats pipeline wall time, no durability.
//   2. Checkpointed: same workload with --checkpoint_dir set, every task's
//      committed output durably recorded (fresh store per repeat). The
//      headline number is the wall-time ratio, CI-guarded at <= 1.05:
//      durability must stay in the noise of the actual detection work.
//   3. Crash + resume: a run killed after its first committed reduce task,
//      then resumed; the resumed run must reproduce the baseline outlier
//      set exactly (resume_identical) and shows how much of the work the
//      checkpoints saved (resume_wall_seconds vs baseline).
//
// Emits machine-readable BENCH_durability.json into the current directory.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_util.h"
#include "common/timer.h"
#include "data/geo_like.h"

namespace {

namespace fs = std::filesystem;

// Total bytes of the store's payloads + manifest after a full run.
uint64_t StoreBytes(const std::string& dir) {
  uint64_t total = 0;
  std::error_code ec;
  for (const fs::directory_entry& entry :
       fs::recursive_directory_iterator(dir, ec)) {
    if (entry.is_regular_file(ec)) {
      total += static_cast<uint64_t>(entry.file_size(ec));
    }
  }
  return total;
}

}  // namespace

int main() {
  const dod::DetectionParams params{5.0, 4};
  const dod::Dataset data = dod::GenerateHierarchical(
      dod::MapLevel::kNewEngland, dod::bench::ScaledN(50000), 83);
  const dod::DodConfig base = dod::bench::BenchConfig(
      dod::StrategyKind::kDmt, dod::AlgorithmKind::kCellBased, params,
      data.size());
  const std::string store_dir =
      (fs::temp_directory_path() / "dod_bench_durability_ckpt").string();

  dod::bench::PrintHeader(
      "Durable execution — checkpointing overhead and crash recovery",
      "The full DMT pipeline with per-task checkpoints vs without; then a\n"
      "run crashed after its first committed reduce task and resumed. The\n"
      "checkpointed wall time must stay within 5% of the baseline, and the\n"
      "resumed run must reproduce the baseline outlier set exactly.");

  const dod::bench::RunResult baseline =
      dod::bench::RunPipeline(base, data, "baseline", /*repeats=*/5);

  dod::DodConfig durable = base;
  durable.checkpoint_dir = store_dir;
  const dod::bench::RunResult checkpointed =
      dod::bench::RunPipeline(durable, data, "checkpointed", /*repeats=*/5);
  if (baseline.outliers != checkpointed.outliers) {
    std::fprintf(stderr, "FATAL: checkpointing changed the outlier set\n");
    return 1;
  }
  const double overhead =
      checkpointed.wall_seconds / baseline.wall_seconds;
  const uint64_t store_bytes = StoreBytes(store_dir);

  // Crash after the first committed reduce task, then resume.
  dod::DodConfig crashing = durable;
  crashing.faults.crash_at_task = 0;
  crashing.faults.crash_phase = dod::TaskPhase::kReduce;
  const auto crashed = dod::DodPipeline(crashing).Run(data);
  if (crashed.ok()) {
    std::fprintf(stderr, "FATAL: injected crash did not fire\n");
    return 1;
  }
  dod::DodConfig resuming = durable;
  resuming.resume = true;
  dod::StopWatch resume_watch;
  const auto resumed = dod::DodPipeline(resuming).Run(data);
  const double resume_wall = resume_watch.ElapsedSeconds();
  if (!resumed.ok()) {
    std::fprintf(stderr, "FATAL: resume failed: %s\n",
                 resumed.status().ToString().c_str());
    return 1;
  }
  const bool resume_identical =
      resumed.value().outliers.size() == baseline.outliers &&
      dod::DodPipeline(base).RunOrDie(data).outliers ==
          resumed.value().outliers;

  std::printf("%zu points, %zu outliers\n\n", data.size(),
              baseline.outliers);
  std::printf("%14s %12s %10s\n", "run", "wall", "ratio");
  std::printf("%14s %11.4fs %9.2fx\n", "baseline", baseline.wall_seconds,
              1.0);
  std::printf("%14s %11.4fs %9.3fx\n", "checkpointed",
              checkpointed.wall_seconds, overhead);
  std::printf("%14s %11.4fs\n", "resumed", resume_wall);
  std::printf("\ncheckpoint store: %.1f KB, resume identical: %s\n",
              static_cast<double>(store_bytes) / 1024.0,
              resume_identical ? "yes" : "NO");
  if (!resume_identical) {
    std::fprintf(stderr, "FATAL: resumed run diverged from the baseline\n");
    return 1;
  }

  std::FILE* f = std::fopen("BENCH_durability.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_durability.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"durability\",\n");
  std::fprintf(f, "  \"points\": %zu,\n  \"outliers\": %zu,\n", data.size(),
               baseline.outliers);
  std::fprintf(f, "  \"baseline_wall_seconds\": %.6f,\n",
               baseline.wall_seconds);
  std::fprintf(f, "  \"checkpointed_wall_seconds\": %.6f,\n",
               checkpointed.wall_seconds);
  std::fprintf(f, "  \"checkpoint_overhead\": %.4f,\n", overhead);
  std::fprintf(f, "  \"checkpoint_store_bytes\": %llu,\n",
               static_cast<unsigned long long>(store_bytes));
  std::fprintf(f, "  \"resume_wall_seconds\": %.6f,\n", resume_wall);
  std::fprintf(f, "  \"resume_identical\": %s\n}\n",
               resume_identical ? "true" : "false");
  std::fclose(f);
  std::printf("wrote BENCH_durability.json (overhead %.3fx)\n", overhead);

  std::error_code ec;
  fs::remove_all(store_dir, ec);
  return 0;
}
