// Copyright 2026 The DOD Authors.
//
// Figure 4 — Sensitivity of Nested-Loop's performance to dataset density.
//
// Paper setup (Sec. IV-A): two datasets of identical cardinality, where the
// domain area of D-Dense is 1/4 of D-Sparse's (D-Dense is 4× denser);
// Nested-Loop with r=5, k=4. Reported result: D-Sparse runs ≈4.5× slower
// than D-Dense although input size and parameters are identical.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/timer.h"
#include "data/generators.h"
#include "detection/cost_model.h"
#include "detection/nested_loop.h"

int main() {
  using dod::bench::FormatSeconds;
  const size_t n = dod::bench::ScaledN(60000);
  const dod::DetectionParams params{/*radius=*/5.0, /*min_neighbors=*/4};

  // Densities chosen in the Nested-Loop-sensitive window with a 4x gap.
  const double dense_density = 0.24;
  const double sparse_density = dense_density / 4.0;

  const dod::Dataset dense =
      dod::GenerateUniform(n, dod::DomainForDensity(n, dense_density), 41);
  const dod::Dataset sparse =
      dod::GenerateUniform(n, dod::DomainForDensity(n, sparse_density), 43);

  dod::bench::PrintHeader(
      "Figure 4 — Nested-Loop execution time vs dataset density",
      "Equal cardinality; D-Dense covers 1/4 of D-Sparse's domain area.\n"
      "Paper: D-Sparse ≈ 4.5x slower than D-Dense.");

  dod::NestedLoopDetector detector;
  auto measure = [&](const dod::Dataset& data) {
    dod::StopWatch watch;
    const auto outliers = detector.DetectOutliers(data, data.size(), params);
    return std::make_pair(watch.ElapsedSeconds(), outliers.size());
  };

  const auto [sparse_time, sparse_outliers] = measure(sparse);
  const auto [dense_time, dense_outliers] = measure(dense);

  std::printf("%-10s %12s %12s %12s %10s\n", "dataset", "points", "density",
              "time (s)", "outliers");
  std::printf("%-10s %12zu %12.4f %12s %10zu\n", "D-Sparse", sparse.size(),
              sparse_density, FormatSeconds(sparse_time).c_str(),
              sparse_outliers);
  std::printf("%-10s %12zu %12.4f %12s %10zu\n", "D-Dense", dense.size(),
              dense_density, FormatSeconds(dense_time).c_str(),
              dense_outliers);

  const double measured_ratio = sparse_time / dense_time;
  const dod::PartitionStats sparse_stats{n, n / sparse_density, 2};
  const dod::PartitionStats dense_stats{n, n / dense_density, 2};
  const double model_ratio = dod::NestedLoopCost(sparse_stats, params) /
                             dod::NestedLoopCost(dense_stats, params);
  std::printf("\nslowdown D-Sparse vs D-Dense: measured %.2fx, "
              "Lemma 4.1 predicts %.2fx (paper: ~4.5x)\n",
              measured_ratio, model_ratio);
  return 0;
}
