// Copyright 2026 The DOD Authors.
//
// Wall-clock stopwatch used for per-task cost measurement in the MapReduce
// engine and by the bench harnesses.

#ifndef DOD_COMMON_TIMER_H_
#define DOD_COMMON_TIMER_H_

#include <chrono>

namespace dod {

class StopWatch {
 public:
  StopWatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dod

#endif  // DOD_COMMON_TIMER_H_
