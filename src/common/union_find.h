// Copyright 2026 The DOD Authors.
//
// Disjoint-set forest with path compression and union by size. Used by the
// distributed DBSCAN extension to merge cluster labels across partitions.

#ifndef DOD_COMMON_UNION_FIND_H_
#define DOD_COMMON_UNION_FIND_H_

#include <cstdint>
#include <numeric>
#include <vector>

#include "common/status.h"

namespace dod {

class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }

  size_t size() const { return parent_.size(); }

  size_t Find(size_t x) {
    DOD_CHECK(x < parent_.size());
    size_t root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      const size_t next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }

  // Returns the root of the merged set.
  size_t Union(size_t a, size_t b) {
    size_t ra = Find(a);
    size_t rb = Find(b);
    if (ra == rb) return ra;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    return ra;
  }

  bool Connected(size_t a, size_t b) { return Find(a) == Find(b); }

  // Number of disjoint sets.
  size_t CountSets() {
    size_t count = 0;
    for (size_t i = 0; i < parent_.size(); ++i) {
      if (Find(i) == i) ++count;
    }
    return count;
  }

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> size_;
};

}  // namespace dod

#endif  // DOD_COMMON_UNION_FIND_H_
