// Copyright 2026 The DOD Authors.
//
// Small numeric helpers shared by the planner, allocator, and benches.

#ifndef DOD_COMMON_STATS_H_
#define DOD_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace dod {

// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& values);

// Population standard deviation; 0 for fewer than two values.
double StdDev(const std::vector<double>& values);

// max / mean — the load-imbalance factor of a set of per-worker loads.
// Returns 1.0 for an empty input or zero mean (perfectly balanced).
double ImbalanceFactor(const std::vector<double>& loads);

// Sum of values.
double Sum(const std::vector<double>& values);

// Maximum; 0 for an empty input.
double Max(const std::vector<double>& values);

// Online mean/variance accumulator (Welford).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace dod

#endif  // DOD_COMMON_STATS_H_
