// Copyright 2026 The DOD Authors.

#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace dod {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

// Guards the sink: one fully-assembled line per acquisition, so lines from
// concurrent tasks never shear.
std::mutex& SinkMutex() {
  static std::mutex mutex;
  return mutex;
}

thread_local std::string t_log_tag;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void SetThreadLogTag(std::string tag) { t_log_tag = std::move(tag); }

const std::string& ThreadLogTag() { return t_log_tag; }

ScopedLogTag::ScopedLogTag(const std::string& segment)
    : previous_(t_log_tag) {
  t_log_tag = previous_.empty() ? segment : previous_ + "/" + segment;
}

ScopedLogTag::~ScopedLogTag() { t_log_tag = std::move(previous_); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories from the file path for compact output.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << base << ":" << line;
  if (!t_log_tag.empty()) stream_ << " " << t_log_tag;
  stream_ << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::string line = stream_.str();
  std::lock_guard<std::mutex> lock(SinkMutex());
  std::fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace internal
}  // namespace dod
