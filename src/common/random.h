// Copyright 2026 The DOD Authors.
//
// Deterministic pseudo-random number generation. All stochastic behaviour in
// the library (data generators, sampling, Nested-Loop probe order) flows from
// explicitly-seeded generators so that tests and benchmarks are reproducible.

#ifndef DOD_COMMON_RANDOM_H_
#define DOD_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dod {

// SplitMix64: used to expand a single user seed into generator state.
// Reference: Steele, Lea, Flood — "Fast Splittable Pseudorandom Number
// Generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// xoshiro256** 1.0 (Blackman & Vigna) — fast, high-quality, 256-bit state.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  // Uniform over the full uint64_t range.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). `bound` must be > 0. Uses Lemire's method with a
  // rejection step to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double NextUniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  // Standard normal via the Marsaglia polar method.
  double NextGaussian();

  // Bernoulli trial with success probability `p`.
  bool NextBernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

// Fisher–Yates shuffle of `items` driven by `rng`.
template <typename T>
void Shuffle(std::vector<T>& items, Rng& rng) {
  for (size_t i = items.size(); i > 1; --i) {
    size_t j = static_cast<size_t>(rng.NextBounded(i));
    using std::swap;
    swap(items[i - 1], items[j]);
  }
}

// Returns a random permutation of {0, 1, ..., n-1}.
std::vector<uint32_t> RandomPermutation(size_t n, Rng& rng);

}  // namespace dod

#endif  // DOD_COMMON_RANDOM_H_
