// Copyright 2026 The DOD Authors.
//
// Axis-aligned hyper-rectangles. Used for the domain space, grid cells
// (Def. 3.1), supporting areas (Def. 3.3), and AF-tree bounding boxes.

#ifndef DOD_COMMON_BOUNDS_H_
#define DOD_COMMON_BOUNDS_H_

#include <string>

#include "common/point.h"

namespace dod {

// Closed hyper-rectangle [min, max] in `dims` dimensions. An "empty" rect
// (default constructed) has dims() == 0 and contains nothing; extending an
// empty rect with a point yields the degenerate rect at that point.
class Rect {
 public:
  Rect() = default;

  Rect(const Point& min, const Point& max) : min_(min), max_(max) {
    DOD_CHECK(min.dims() == max.dims());
    for (int i = 0; i < min.dims(); ++i) DOD_CHECK(min[i] <= max[i]);
  }

  // Rect spanning [lo, hi] in every one of `dims` dimensions.
  static Rect Cube(int dims, double lo, double hi);

  int dims() const { return min_.dims(); }
  bool empty() const { return dims() == 0; }

  const Point& min() const { return min_; }
  const Point& max() const { return max_; }

  double lo(int dim) const { return min_[dim]; }
  double hi(int dim) const { return max_[dim]; }

  // Side length along `dim`.
  double Extent(int dim) const { return max_[dim] - min_[dim]; }

  // Product of extents (the "domain area" A(D) in the cost models). For a
  // degenerate rect this is 0.
  double Area() const;

  // Geometric center.
  Point Center() const;

  // Closed containment test: lo <= x <= hi in every dimension.
  bool Contains(const double* p) const;
  bool Contains(const Point& p) const { return Contains(p.data()); }

  // Half-open containment test: lo <= x < hi in every dimension. Grid
  // partitioning uses half-open cells so that every point belongs to exactly
  // one core cell (points on the global upper boundary are clamped by the
  // partitioner).
  bool ContainsHalfOpen(const double* p) const;

  bool Intersects(const Rect& other) const;

  // True iff `other` lies entirely within this rect (closed sense).
  bool Covers(const Rect& other) const;

  // Returns this rect expanded by `margin` in both directions of every
  // dimension — the supporting-area extension of Def. 3.3.
  Rect Expanded(double margin) const;

  // Smallest rect covering both this and `other` (R-tree node union).
  Rect UnionWith(const Rect& other) const;

  // Smallest rect covering this rect and point `p`.
  Rect UnionWith(const Point& p) const;

  // Increase in Area() if `other` were unioned in; the R-tree "least
  // enlargement" heuristic.
  double Enlargement(const Rect& other) const;

  // Minimum L2 distance from `p` to this rect; 0 when contained.
  double MinDistanceTo(const double* p) const;

  // True iff the two rects touch or overlap when each is treated as closed —
  // i.e. they are spatially adjacent within tolerance `eps`.
  bool IsAdjacentTo(const Rect& other, double eps = 1e-9) const;

  bool operator==(const Rect& other) const {
    return min_ == other.min_ && max_ == other.max_;
  }

  std::string ToString() const;

 private:
  Point min_;
  Point max_;
};

// Running bounding box accumulator used when scanning datasets.
class BoundsAccumulator {
 public:
  explicit BoundsAccumulator(int dims);

  void Add(const double* p);

  bool empty() const { return count_ == 0; }
  size_t count() const { return count_; }

  // Bounding box of all added points. Must not be called when empty.
  Rect bounds() const;

 private:
  int dims_;
  size_t count_ = 0;
  Point min_;
  Point max_;
};

}  // namespace dod

#endif  // DOD_COMMON_BOUNDS_H_
