// Copyright 2026 The DOD Authors.

#include "common/point.h"

#include <cstdio>

namespace dod {

std::string Point::ToString() const {
  std::string out = "(";
  char buf[32];
  for (int i = 0; i < dims_; ++i) {
    std::snprintf(buf, sizeof(buf), "%.6g", coords_[i]);
    if (i > 0) out += ", ";
    out += buf;
  }
  out += ")";
  return out;
}

}  // namespace dod
