// Copyright 2026 The DOD Authors.

#include "common/bounds.h"

#include <algorithm>
#include <cmath>

namespace dod {

Rect Rect::Cube(int dims, double lo, double hi) {
  DOD_CHECK(lo <= hi);
  Point min(dims), max(dims);
  for (int i = 0; i < dims; ++i) {
    min[i] = lo;
    max[i] = hi;
  }
  return Rect(min, max);
}

double Rect::Area() const {
  if (empty()) return 0.0;
  double area = 1.0;
  for (int i = 0; i < dims(); ++i) area *= Extent(i);
  return area;
}

Point Rect::Center() const {
  Point c(dims());
  for (int i = 0; i < dims(); ++i) c[i] = 0.5 * (min_[i] + max_[i]);
  return c;
}

bool Rect::Contains(const double* p) const {
  for (int i = 0; i < dims(); ++i) {
    if (p[i] < min_[i] || p[i] > max_[i]) return false;
  }
  return dims() > 0;
}

bool Rect::ContainsHalfOpen(const double* p) const {
  for (int i = 0; i < dims(); ++i) {
    if (p[i] < min_[i] || p[i] >= max_[i]) return false;
  }
  return dims() > 0;
}

bool Rect::Intersects(const Rect& other) const {
  DOD_CHECK(dims() == other.dims());
  for (int i = 0; i < dims(); ++i) {
    if (max_[i] < other.min_[i] || other.max_[i] < min_[i]) return false;
  }
  return true;
}

bool Rect::Covers(const Rect& other) const {
  DOD_CHECK(dims() == other.dims());
  for (int i = 0; i < dims(); ++i) {
    if (other.min_[i] < min_[i] || other.max_[i] > max_[i]) return false;
  }
  return true;
}

Rect Rect::Expanded(double margin) const {
  Point lo(dims()), hi(dims());
  for (int i = 0; i < dims(); ++i) {
    lo[i] = min_[i] - margin;
    hi[i] = max_[i] + margin;
  }
  return Rect(lo, hi);
}

Rect Rect::UnionWith(const Rect& other) const {
  if (empty()) return other;
  if (other.empty()) return *this;
  DOD_CHECK(dims() == other.dims());
  Point lo(dims()), hi(dims());
  for (int i = 0; i < dims(); ++i) {
    lo[i] = std::min(min_[i], other.min_[i]);
    hi[i] = std::max(max_[i], other.max_[i]);
  }
  return Rect(lo, hi);
}

Rect Rect::UnionWith(const Point& p) const {
  if (empty()) return Rect(p, p);
  DOD_CHECK(dims() == p.dims());
  Point lo(dims()), hi(dims());
  for (int i = 0; i < dims(); ++i) {
    lo[i] = std::min(min_[i], p[i]);
    hi[i] = std::max(max_[i], p[i]);
  }
  return Rect(lo, hi);
}

double Rect::Enlargement(const Rect& other) const {
  return UnionWith(other).Area() - Area();
}

double Rect::MinDistanceTo(const double* p) const {
  double sum = 0.0;
  for (int i = 0; i < dims(); ++i) {
    double d = 0.0;
    if (p[i] < min_[i]) {
      d = min_[i] - p[i];
    } else if (p[i] > max_[i]) {
      d = p[i] - max_[i];
    }
    sum += d * d;
  }
  return std::sqrt(sum);
}

bool Rect::IsAdjacentTo(const Rect& other, double eps) const {
  DOD_CHECK(dims() == other.dims());
  for (int i = 0; i < dims(); ++i) {
    if (max_[i] < other.min_[i] - eps || other.max_[i] < min_[i] - eps) {
      return false;
    }
  }
  return true;
}

std::string Rect::ToString() const {
  return "[" + min_.ToString() + " .. " + max_.ToString() + "]";
}

BoundsAccumulator::BoundsAccumulator(int dims)
    : dims_(dims), min_(dims), max_(dims) {}

void BoundsAccumulator::Add(const double* p) {
  if (count_ == 0) {
    for (int i = 0; i < dims_; ++i) {
      min_[i] = p[i];
      max_[i] = p[i];
    }
  } else {
    for (int i = 0; i < dims_; ++i) {
      min_[i] = std::min(min_[i], p[i]);
      max_[i] = std::max(max_[i], p[i]);
    }
  }
  ++count_;
}

Rect BoundsAccumulator::bounds() const {
  DOD_CHECK(count_ > 0);
  return Rect(min_, max_);
}

}  // namespace dod
