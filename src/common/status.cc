// Copyright 2026 The DOD Authors.

#include "common/status.h"

namespace dod {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& extra) {
  std::fprintf(stderr, "DOD_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               extra.empty() ? "" : " — ", extra.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace dod
