// Copyright 2026 The DOD Authors.

#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace dod {

double Sum(const std::vector<double>& values) {
  double s = 0.0;
  for (double v : values) s += v;
  return s;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return Sum(values) / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(values.size()));
}

double Max(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

double ImbalanceFactor(const std::vector<double>& loads) {
  const double mean = Mean(loads);
  if (mean <= 0.0) return 1.0;
  return Max(loads) / mean;
}

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace dod
