// Copyright 2026 The DOD Authors.
//
// Minimal leveled logger. Intended for diagnostic output of the pipeline and
// bench harnesses; hot paths must not log.

#ifndef DOD_COMMON_LOGGING_H_
#define DOD_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace dod {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global minimum level; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

// Stream-style log line emitter; flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dod

#define DOD_LOG(level)                                                  \
  ::dod::internal::LogMessage(::dod::LogLevel::k##level, __FILE__, __LINE__)

#endif  // DOD_COMMON_LOGGING_H_
