// Copyright 2026 The DOD Authors.
//
// Minimal leveled logger. Intended for diagnostic output of the pipeline and
// bench harnesses; hot paths must not log.
//
// Thread-safe: each line is assembled privately and written to the sink
// under a single mutex, so concurrent task logs never interleave within a
// line. Threads can carry a *log tag* — the runtime's workers tag
// themselves "w0", "w1", ... and the MapReduce engine scopes "map3.a1"
// style task/attempt tags around attempt bodies — so interleaved task logs
// stay attributable.

#ifndef DOD_COMMON_LOGGING_H_
#define DOD_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace dod {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global minimum level; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Tag prepended to this thread's log lines (thread-local; empty = untagged).
void SetThreadLogTag(std::string tag);
const std::string& ThreadLogTag();

// Appends a tag segment for the current scope ("w2" becomes "w2/map3.a0")
// and restores the previous tag on destruction.
class ScopedLogTag {
 public:
  explicit ScopedLogTag(const std::string& segment);
  ~ScopedLogTag();

  ScopedLogTag(const ScopedLogTag&) = delete;
  ScopedLogTag& operator=(const ScopedLogTag&) = delete;

 private:
  std::string previous_;
};

namespace internal {

// Stream-style log line emitter; flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dod

#define DOD_LOG(level)                                                  \
  ::dod::internal::LogMessage(::dod::LogLevel::k##level, __FILE__, __LINE__)

#endif  // DOD_COMMON_LOGGING_H_
