// Copyright 2026 The DOD Authors.
//
// Small fixed-capacity point value type used throughout the library. Bulk
// point storage lives in `dod::Dataset` (flat, cache-friendly); `Point` is
// for individual values such as cell corners and generator output.

#ifndef DOD_COMMON_POINT_H_
#define DOD_COMMON_POINT_H_

#include <cstdint>
#include <initializer_list>
#include <string>

#include "common/status.h"

namespace dod {

// Maximum dimensionality supported by the library. The paper's evaluation is
// on 2-d geospatial data; the algorithms generalize to moderate dimensions.
inline constexpr int kMaxDimensions = 8;

// Index of a point within a Dataset.
using PointId = uint32_t;

class Point {
 public:
  Point() : dims_(0), coords_{} {}

  explicit Point(int dims) : dims_(dims), coords_{} {
    DOD_CHECK(dims >= 1 && dims <= kMaxDimensions);
  }

  Point(std::initializer_list<double> values) : dims_(0), coords_{} {
    DOD_CHECK(values.size() >= 1 &&
              values.size() <= static_cast<size_t>(kMaxDimensions));
    for (double v : values) coords_[dims_++] = v;
  }

  // Constructs from a contiguous coordinate array.
  Point(const double* values, int dims) : dims_(dims), coords_{} {
    DOD_CHECK(dims >= 1 && dims <= kMaxDimensions);
    for (int i = 0; i < dims; ++i) coords_[i] = values[i];
  }

  int dims() const { return dims_; }

  double operator[](int i) const { return coords_[i]; }
  double& operator[](int i) { return coords_[i]; }

  const double* data() const { return coords_; }
  double* data() { return coords_; }

  bool operator==(const Point& other) const {
    if (dims_ != other.dims_) return false;
    for (int i = 0; i < dims_; ++i) {
      if (coords_[i] != other.coords_[i]) return false;
    }
    return true;
  }

  // "(x, y, ...)" with 6 significant digits; for logs and test diagnostics.
  std::string ToString() const;

 private:
  int dims_;
  double coords_[kMaxDimensions];
};

}  // namespace dod

#endif  // DOD_COMMON_POINT_H_
