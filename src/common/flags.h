// Copyright 2026 The DOD Authors.
//
// Minimal dependency-free command-line flag parsing for the CLI tools.
// Supports --name=value, --name value, and boolean --name / --no-name.

#ifndef DOD_COMMON_FLAGS_H_
#define DOD_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace dod {

class FlagParser {
 public:
  // Parses argv; unrecognized "--" tokens become flags, bare tokens become
  // positional arguments. Returns an error for malformed input (e.g. a
  // dangling "--name" at end of line is treated as boolean true).
  static Result<FlagParser> Parse(int argc, const char* const* argv);

  bool HasFlag(const std::string& name) const {
    return values_.count(name) > 0;
  }

  // Typed getters with defaults. Get*Or never fails; the checked variants
  // return errors for unparsable values.
  std::string GetStringOr(const std::string& name,
                          const std::string& fallback) const;
  Result<double> GetDouble(const std::string& name, double fallback) const;
  Result<long long> GetInt(const std::string& name, long long fallback) const;
  bool GetBoolOr(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Flags seen but never read by any getter; lets tools reject typos.
  std::vector<std::string> UnusedFlags() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> read_;
  std::vector<std::string> positional_;
};

}  // namespace dod

#endif  // DOD_COMMON_FLAGS_H_
