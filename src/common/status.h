// Copyright 2026 The DOD Authors.
//
// Error-handling vocabulary for the DOD library.
//
// The project does not use C++ exceptions. Fallible operations return
// `dod::Status` (or `dod::Result<T>` when they also produce a value), and
// unrecoverable internal invariant violations abort through `DOD_CHECK`.

#ifndef DOD_COMMON_STATUS_H_
#define DOD_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace dod {

// Machine-readable classification of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kIoError,
  kUnavailable,        // transient failure; retrying may succeed
  kDeadlineExceeded,   // operation exceeded its time budget
  kCancelled,          // caller asked the operation to stop
  kResourceExhausted,  // a memory/resource budget was exceeded
};

// Returns a stable human-readable name, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

// Value-type status: either OK, or a code plus a diagnostic message.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& extra);
}  // namespace internal

// A value or an error. `value()` must only be called when `ok()`.
template <typename T>
class Result {
 public:
  // Implicit construction from a value or a non-OK status keeps call sites
  // terse: `return value;` / `return Status::InvalidArgument(...)`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::Ok()), value_(std::move(value)) {}
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  // Returns the value, aborting with the status message when not ok — for
  // callers (tests, benches, examples) that treat failure as fatal.
  T& ValueOrDie() & {
    if (!ok()) {
      internal::CheckFailed(__FILE__, __LINE__, "Result::ok()",
                            status_.ToString());
    }
    return *value_;
  }
  T&& ValueOrDie() && {
    if (!ok()) {
      internal::CheckFailed(__FILE__, __LINE__, "Result::ok()",
                            status_.ToString());
    }
    return *std::move(value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace dod

// Aborts with a diagnostic when `cond` is false. Used for internal
// invariants that indicate a programming error, never for user input.
#define DOD_CHECK(cond)                                              \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::dod::internal::CheckFailed(__FILE__, __LINE__, #cond, "");   \
    }                                                                \
  } while (0)

#define DOD_CHECK_MSG(cond, msg)                                     \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::dod::internal::CheckFailed(__FILE__, __LINE__, #cond, msg);  \
    }                                                                \
  } while (0)

// Propagates a non-OK status to the caller.
#define DOD_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::dod::Status dod_status_ = (expr);        \
    if (!dod_status_.ok()) return dod_status_; \
  } while (0)

// Evaluates `expr` (a Result<T>), propagates a non-OK status to the caller,
// and otherwise assigns the value to `lhs`:
//
//   DOD_ASSIGN_OR_RETURN(Dataset data, ReadCsv(path));
//
// `lhs` may declare a new variable or assign to an existing one. Cannot be
// used twice on the same source line.
#define DOD_STATUS_MACROS_CONCAT_INNER_(x, y) x##y
#define DOD_STATUS_MACROS_CONCAT_(x, y) DOD_STATUS_MACROS_CONCAT_INNER_(x, y)
#define DOD_ASSIGN_OR_RETURN(lhs, expr)                                   \
  DOD_ASSIGN_OR_RETURN_IMPL_(                                             \
      DOD_STATUS_MACROS_CONCAT_(dod_result_, __LINE__), lhs, expr)
#define DOD_ASSIGN_OR_RETURN_IMPL_(result, lhs, expr) \
  auto result = (expr);                               \
  if (!result.ok()) return result.status();           \
  lhs = std::move(result).value()

#endif  // DOD_COMMON_STATUS_H_
