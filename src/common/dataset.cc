// Copyright 2026 The DOD Authors.

#include "common/dataset.h"

namespace dod {

void Dataset::AppendAll(const Dataset& other) {
  DOD_CHECK(other.dims() == dims_);
  coords_.insert(coords_.end(), other.coords_.begin(), other.coords_.end());
}

Rect Dataset::Bounds() const {
  DOD_CHECK(!empty());
  BoundsAccumulator acc(dims_);
  for (size_t i = 0; i < size(); ++i) acc.Add((*this)[static_cast<PointId>(i)]);
  return acc.bounds();
}

Dataset Dataset::Subset(const std::vector<PointId>& ids) const {
  Dataset out(dims_);
  out.Reserve(ids.size());
  for (PointId id : ids) out.Append((*this)[id]);
  return out;
}

}  // namespace dod
