// Copyright 2026 The DOD Authors.

#include "common/dataset.h"

#include <cmath>
#include <string>

namespace dod {

void Dataset::AppendAll(const Dataset& other) {
  DOD_CHECK(other.dims() == dims_);
  coords_.insert(coords_.end(), other.coords_.begin(), other.coords_.end());
}

Rect Dataset::Bounds() const {
  DOD_CHECK(!empty());
  BoundsAccumulator acc(dims_);
  for (size_t i = 0; i < size(); ++i) acc.Add((*this)[static_cast<PointId>(i)]);
  return acc.bounds();
}

Status Dataset::Validate() const {
  const size_t n = size();
  for (size_t i = 0; i < n; ++i) {
    const double* p = (*this)[static_cast<PointId>(i)];
    for (int d = 0; d < dims_; ++d) {
      if (!std::isfinite(p[d])) {
        return Status::InvalidArgument(
            "non-finite coordinate at point " + std::to_string(i) +
            ", dimension " + std::to_string(d) + ": " + std::to_string(p[d]));
      }
    }
  }
  return Status::Ok();
}

Dataset Dataset::Subset(const std::vector<PointId>& ids) const {
  Dataset out(dims_);
  out.Reserve(ids.size());
  for (PointId id : ids) out.Append((*this)[id]);
  return out;
}

}  // namespace dod
