// Copyright 2026 The DOD Authors.

#include "common/random.h"

#include <cmath>
#include <numeric>

#include "common/status.h"

namespace dod {

uint64_t Rng::NextBounded(uint64_t bound) {
  DOD_CHECK(bound > 0);
  // Lemire's multiply-shift with rejection for exact uniformity.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = (0ULL - bound) % bound;
    while (low < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = NextUniform(-1.0, 1.0);
    v = NextUniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

std::vector<uint32_t> RandomPermutation(size_t n, Rng& rng) {
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  Shuffle(perm, rng);
  return perm;
}

}  // namespace dod
