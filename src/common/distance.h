// Copyright 2026 The DOD Authors.
//
// Distance kernels. The outlier definitions in the paper are metric-agnostic
// ("dist(p_i, p_j)"); the evaluation uses Euclidean distance on geospatial
// coordinates, which is the library default. Threshold tests compare squared
// distances to avoid the sqrt on the hot path.

#ifndef DOD_COMMON_DISTANCE_H_
#define DOD_COMMON_DISTANCE_H_

#include <cmath>

namespace dod {

// Squared L2 distance between two `dims`-dimensional coordinate arrays.
inline double SquaredEuclidean(const double* a, const double* b, int dims) {
  double sum = 0.0;
  for (int i = 0; i < dims; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

inline double Euclidean(const double* a, const double* b, int dims) {
  return std::sqrt(SquaredEuclidean(a, b, dims));
}

// True iff dist(a, b)² <= sq_radius (Def. 2.1 neighbor test with the square
// hoisted). Inner loops should compute radius * radius once and call this;
// WithinDistance below re-squares on every call and is kept for one-off
// tests.
inline bool WithinSquaredDistance(const double* a, const double* b, int dims,
                                  double sq_radius) {
  return SquaredEuclidean(a, b, dims) <= sq_radius;
}

// True iff dist(a, b) <= radius (Def. 2.1 neighbor test).
inline bool WithinDistance(const double* a, const double* b, int dims,
                           double radius) {
  return WithinSquaredDistance(a, b, dims, radius * radius);
}

// L1 (Manhattan) distance; provided for completeness and tests.
inline double Manhattan(const double* a, const double* b, int dims) {
  double sum = 0.0;
  for (int i = 0; i < dims; ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

// L-infinity (Chebyshev) distance; used by grid adjacency reasoning.
inline double Chebyshev(const double* a, const double* b, int dims) {
  double best = 0.0;
  for (int i = 0; i < dims; ++i) {
    const double d = std::fabs(a[i] - b[i]);
    if (d > best) best = d;
  }
  return best;
}

}  // namespace dod

#endif  // DOD_COMMON_DISTANCE_H_
