// Copyright 2026 The DOD Authors.

#include "common/flags.h"

#include <cstdlib>

namespace dod {

Result<FlagParser> FlagParser::Parse(int argc, const char* const* argv) {
  FlagParser parser;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      parser.positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    if (arg.empty()) {
      // A bare "--": the rest is positional.
      for (int j = i + 1; j < argc; ++j) parser.positional_.push_back(argv[j]);
      break;
    }
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      parser.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // --no-foo is boolean false.
    if (arg.rfind("no-", 0) == 0) {
      parser.values_[arg.substr(3)] = "false";
      continue;
    }
    // "--name value" when the next token is not a flag; else boolean true.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      parser.values_[arg] = argv[i + 1];
      ++i;
    } else {
      parser.values_[arg] = "true";
    }
  }
  return parser;
}

std::string FlagParser::GetStringOr(const std::string& name,
                                    const std::string& fallback) const {
  read_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

Result<double> FlagParser::GetDouble(const std::string& name,
                                     double fallback) const {
  read_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + name + ": bad number '" +
                                   it->second + "'");
  }
  return value;
}

Result<long long> FlagParser::GetInt(const std::string& name,
                                     long long fallback) const {
  Result<double> value = GetDouble(name, static_cast<double>(fallback));
  if (!value.ok()) return value.status();
  return static_cast<long long>(value.value());
}

bool FlagParser::GetBoolOr(const std::string& name, bool fallback) const {
  read_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second != "false" && it->second != "0";
}

std::vector<std::string> FlagParser::UnusedFlags() const {
  std::vector<std::string> unused;
  for (const auto& [name, _] : values_) {
    if (!read_.count(name)) unused.push_back(name);
  }
  return unused;
}

}  // namespace dod
