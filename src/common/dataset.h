// Copyright 2026 The DOD Authors.
//
// Flat, cache-friendly point storage. A Dataset owns `size() * dims()`
// doubles laid out row-major; points are referred to by PointId. This is the
// unit that flows through generators, the MapReduce engine, partitioners and
// detectors.

#ifndef DOD_COMMON_DATASET_H_
#define DOD_COMMON_DATASET_H_

#include <cstddef>
#include <vector>

#include "common/bounds.h"
#include "common/point.h"
#include "common/status.h"

namespace dod {

class Dataset {
 public:
  // An empty dataset of `dims`-dimensional points.
  explicit Dataset(int dims) : dims_(dims) {
    DOD_CHECK(dims >= 1 && dims <= kMaxDimensions);
  }

  int dims() const { return dims_; }
  size_t size() const { return coords_.size() / dims_; }
  bool empty() const { return coords_.empty(); }

  void Reserve(size_t n) { coords_.reserve(n * dims_); }

  // Appends a point; returns its id.
  PointId Append(const double* p) {
    coords_.insert(coords_.end(), p, p + dims_);
    return static_cast<PointId>(size() - 1);
  }
  PointId Append(const Point& p) {
    DOD_CHECK(p.dims() == dims_);
    return Append(p.data());
  }

  // Appends all points of `other` (same dimensionality).
  void AppendAll(const Dataset& other);

  // Coordinate array of point `id`; valid until the next mutation.
  const double* operator[](PointId id) const {
    return coords_.data() + static_cast<size_t>(id) * dims_;
  }

  // Copy of point `id` as a value type.
  Point GetPoint(PointId id) const { return Point((*this)[id], dims_); }

  // Bounding box of all points. Must not be called on an empty dataset.
  Rect Bounds() const;

  // New dataset containing the points whose ids are listed in `ids`.
  Dataset Subset(const std::vector<PointId>& ids) const;

  // Rejects non-finite coordinates (NaN, ±inf) with kInvalidArgument naming
  // the first offending point and dimension. Grid partitioning and the
  // distance kernels assume finite coordinates; a NaN smuggled in through
  // I/O would silently poison cell assignment and neighbor counts, so the
  // loaders validate every dataset they return.
  Status Validate() const;

  // Raw storage access (used by I/O and the MapReduce serializer).
  const std::vector<double>& raw() const { return coords_; }
  std::vector<double>& mutable_raw() { return coords_; }

  void Clear() { coords_.clear(); }

 private:
  int dims_;
  std::vector<double> coords_;
};

}  // namespace dod

#endif  // DOD_COMMON_DATASET_H_
