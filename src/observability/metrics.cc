// Copyright 2026 The DOD Authors.

#include "observability/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "common/status.h"

namespace dod {

int HistogramBucket(double value) {
  if (!(value > 0.0)) return 0;  // <= 0 and NaN
  if (std::isinf(value)) return kHistogramBuckets - 1;
  const int bucket = std::ilogb(value) + 33;
  return std::clamp(bucket, 1, kHistogramBuckets - 1);
}

double HistogramBucketLowerBound(int bucket) {
  if (bucket <= 0) return 0.0;
  return std::ldexp(1.0, bucket - 33);
}

bool IsTimingMetric(std::string_view name) {
  constexpr std::string_view kSuffix = "_seconds";
  return name.size() >= kSuffix.size() &&
         name.substr(name.size() - kSuffix.size()) == kSuffix;
}

// One thread's (or the retired aggregate's) storage: dense arrays of
// relaxed atomics. Each live shard has a single writer (its owning
// thread); atomics exist so Snapshot() may read concurrently without a
// data race. C++20 value-initializes default-constructed atomics, so a
// freshly constructed Shard is all zeros.
struct MetricsRegistry::Shard {
  std::atomic<uint64_t> counters[kMaxCounters];
  std::atomic<uint64_t> gauge_count[kMaxGauges];
  std::atomic<double> gauge_max[kMaxGauges];
  std::atomic<uint64_t> hist_count[kMaxHistograms];
  std::atomic<double> hist_sum[kMaxHistograms];
  std::atomic<uint64_t> hist_buckets[kMaxHistograms][kHistogramBuckets];

  void Zero() {
    for (auto& c : counters) c.store(0, std::memory_order_relaxed);
    for (auto& c : gauge_count) c.store(0, std::memory_order_relaxed);
    for (auto& c : gauge_max) c.store(0.0, std::memory_order_relaxed);
    for (auto& c : hist_count) c.store(0, std::memory_order_relaxed);
    for (auto& c : hist_sum) c.store(0.0, std::memory_order_relaxed);
    for (auto& row : hist_buckets) {
      for (auto& c : row) c.store(0, std::memory_order_relaxed);
    }
  }
};

// Registered per thread on first update; the destructor folds the shard
// back into the registry when the thread exits. Main-thread thread-locals
// destroy before static-storage objects ([basic.start.term]), so the
// handle never outlives the Global() registry.
struct MetricsRegistry::ShardHandle {
  MetricsRegistry* registry = nullptr;
  Shard* shard = nullptr;
  ~ShardHandle() {
    if (registry != nullptr && shard != nullptr) registry->Retire(shard);
  }
};

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::MetricsRegistry() : retired_(new Shard()) {}

MetricsRegistry::~MetricsRegistry() {
  delete retired_;
  // Live shards belong to still-running threads; by the time statics are
  // destroyed only the main thread remains and its handle has already
  // retired (thread-locals destroy first), so this is normally empty.
  for (Shard* shard : live_shards_) delete shard;
}

MetricsRegistry::Shard* MetricsRegistry::LocalShard() {
  thread_local ShardHandle handle;
  if (handle.shard == nullptr) {
    auto shard = std::make_unique<Shard>();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      live_shards_.push_back(shard.get());
    }
    handle.registry = this;
    handle.shard = shard.release();
  }
  return handle.shard;
}

void MetricsRegistry::Retire(Shard* shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  FoldShard(*shard, *retired_);
  live_shards_.erase(
      std::remove(live_shards_.begin(), live_shards_.end(), shard),
      live_shards_.end());
  delete shard;
}

void MetricsRegistry::FoldShard(const Shard& shard, Shard& into) {
  auto add = [](const std::atomic<uint64_t>& src, std::atomic<uint64_t>& dst) {
    const uint64_t v = src.load(std::memory_order_relaxed);
    if (v != 0) {
      dst.store(dst.load(std::memory_order_relaxed) + v,
                std::memory_order_relaxed);
    }
  };
  for (int i = 0; i < kMaxCounters; ++i) add(shard.counters[i], into.counters[i]);
  for (int i = 0; i < kMaxGauges; ++i) {
    const uint64_t n = shard.gauge_count[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    add(shard.gauge_count[i], into.gauge_count[i]);
    const double v = shard.gauge_max[i].load(std::memory_order_relaxed);
    const double cur = into.gauge_max[i].load(std::memory_order_relaxed);
    into.gauge_max[i].store(std::max(cur, v), std::memory_order_relaxed);
  }
  for (int i = 0; i < kMaxHistograms; ++i) {
    const uint64_t n = shard.hist_count[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    add(shard.hist_count[i], into.hist_count[i]);
    const double v = shard.hist_sum[i].load(std::memory_order_relaxed);
    into.hist_sum[i].store(
        into.hist_sum[i].load(std::memory_order_relaxed) + v,
        std::memory_order_relaxed);
    for (int b = 0; b < kHistogramBuckets; ++b) {
      add(shard.hist_buckets[i][b], into.hist_buckets[i][b]);
    }
  }
}

uint32_t MetricsRegistry::Id(std::string_view name, MetricKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint32_t n = num_metrics_.load(std::memory_order_relaxed);
  for (uint32_t i = 0; i < n; ++i) {
    if (infos_[i].name == name) {
      DOD_CHECK_MSG(infos_[i].kind == kind,
                    "metric registered with a different kind: " +
                        std::string(name));
      return i;
    }
  }
  uint32_t dense = 0;
  switch (kind) {
    case MetricKind::kCounter:
      DOD_CHECK_MSG(num_counters_ < kMaxCounters, "counter space exhausted");
      dense = num_counters_++;
      break;
    case MetricKind::kGauge:
      DOD_CHECK_MSG(num_gauges_ < kMaxGauges, "gauge space exhausted");
      dense = num_gauges_++;
      break;
    case MetricKind::kHistogram:
      DOD_CHECK_MSG(num_histograms_ < kMaxHistograms,
                    "histogram space exhausted");
      dense = num_histograms_++;
      break;
  }
  infos_[n].name = std::string(name);
  infos_[n].kind = kind;
  infos_[n].dense = dense;
  num_metrics_.store(n + 1, std::memory_order_release);
  return n;
}

void MetricsRegistry::Increment(uint32_t id, uint64_t delta) {
  DOD_CHECK(id < num_metrics_.load(std::memory_order_acquire));
  const MetricInfo& info = infos_[id];
  DOD_CHECK(info.kind == MetricKind::kCounter);
  auto& cell = LocalShard()->counters[info.dense];
  cell.store(cell.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

void MetricsRegistry::SetMax(uint32_t id, double value) {
  DOD_CHECK(id < num_metrics_.load(std::memory_order_acquire));
  const MetricInfo& info = infos_[id];
  DOD_CHECK(info.kind == MetricKind::kGauge);
  Shard* shard = LocalShard();
  auto& count = shard->gauge_count[info.dense];
  auto& max = shard->gauge_max[info.dense];
  const uint64_t n = count.load(std::memory_order_relaxed);
  const double cur = max.load(std::memory_order_relaxed);
  max.store(n == 0 ? value : std::max(cur, value),
            std::memory_order_relaxed);
  count.store(n + 1, std::memory_order_relaxed);
}

void MetricsRegistry::Observe(uint32_t id, double value) {
  DOD_CHECK(id < num_metrics_.load(std::memory_order_acquire));
  const MetricInfo& info = infos_[id];
  DOD_CHECK(info.kind == MetricKind::kHistogram);
  Shard* shard = LocalShard();
  auto& count = shard->hist_count[info.dense];
  auto& sum = shard->hist_sum[info.dense];
  auto& bucket = shard->hist_buckets[info.dense][HistogramBucket(value)];
  count.store(count.load(std::memory_order_relaxed) + 1,
              std::memory_order_relaxed);
  sum.store(sum.load(std::memory_order_relaxed) + value,
            std::memory_order_relaxed);
  bucket.store(bucket.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto acc = std::make_unique<Shard>();
  FoldShard(*retired_, *acc);
  for (const Shard* shard : live_shards_) FoldShard(*shard, *acc);

  const uint32_t n = num_metrics_.load(std::memory_order_relaxed);
  std::vector<MetricSnapshot> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    const MetricInfo& info = infos_[i];
    MetricSnapshot snapshot;
    snapshot.name = info.name;
    snapshot.kind = info.kind;
    switch (info.kind) {
      case MetricKind::kCounter:
        snapshot.count = acc->counters[info.dense].load(std::memory_order_relaxed);
        break;
      case MetricKind::kGauge:
        snapshot.count = acc->gauge_count[info.dense].load(std::memory_order_relaxed);
        snapshot.value = acc->gauge_max[info.dense].load(std::memory_order_relaxed);
        break;
      case MetricKind::kHistogram:
        snapshot.count = acc->hist_count[info.dense].load(std::memory_order_relaxed);
        snapshot.value = acc->hist_sum[info.dense].load(std::memory_order_relaxed);
        snapshot.buckets.resize(kHistogramBuckets);
        for (int b = 0; b < kHistogramBuckets; ++b) {
          snapshot.buckets[static_cast<size_t>(b)] =
              acc->hist_buckets[info.dense][b].load(std::memory_order_relaxed);
        }
        break;
    }
    out.push_back(std::move(snapshot));
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  retired_->Zero();
  for (Shard* shard : live_shards_) shard->Zero();
}

namespace {

void AppendJsonString(std::string& out, std::string_view text) {
  out += '"';
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendJsonDouble(std::string& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

}  // namespace

std::string MetricsSnapshotJson(const std::vector<MetricSnapshot>& snapshots) {
  std::vector<const MetricSnapshot*> sorted;
  sorted.reserve(snapshots.size());
  for (const MetricSnapshot& s : snapshots) sorted.push_back(&s);
  std::sort(sorted.begin(), sorted.end(),
            [](const MetricSnapshot* a, const MetricSnapshot* b) {
              return a->name < b->name;
            });

  std::string out = "{";
  for (const MetricKind kind : {MetricKind::kCounter, MetricKind::kGauge,
                                MetricKind::kHistogram}) {
    switch (kind) {
      case MetricKind::kCounter: out += "\"counters\":{"; break;
      case MetricKind::kGauge: out += ",\"gauges\":{"; break;
      case MetricKind::kHistogram: out += ",\"histograms\":{"; break;
    }
    bool first = true;
    for (const MetricSnapshot* s : sorted) {
      if (s->kind != kind) continue;
      if (!first) out += ',';
      first = false;
      AppendJsonString(out, s->name);
      out += ':';
      switch (kind) {
        case MetricKind::kCounter:
          out += std::to_string(s->count);
          break;
        case MetricKind::kGauge:
          out += "{\"count\":" + std::to_string(s->count) + ",\"max\":";
          AppendJsonDouble(out, s->value);
          out += '}';
          break;
        case MetricKind::kHistogram: {
          out += "{\"count\":" + std::to_string(s->count) + ",\"sum\":";
          AppendJsonDouble(out, s->value);
          out += ",\"buckets\":[";
          bool first_bucket = true;
          for (size_t b = 0; b < s->buckets.size(); ++b) {
            if (s->buckets[b] == 0) continue;
            if (!first_bucket) out += ',';
            first_bucket = false;
            out += "{\"lo\":";
            AppendJsonDouble(out, HistogramBucketLowerBound(static_cast<int>(b)));
            out += ",\"count\":" + std::to_string(s->buckets[b]) + '}';
          }
          out += "]}";
          break;
        }
      }
    }
    out += '}';
  }
  out += '}';
  return out;
}

}  // namespace dod
