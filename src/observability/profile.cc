// Copyright 2026 The DOD Authors.

#include "observability/profile.h"

#include <cstdio>

namespace dod {
namespace {

void AppendDouble(std::string& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

void AppendEscaped(std::string& out, const std::string& text) {
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

}  // namespace

std::string ObservabilityReportJson(
    const std::vector<MetricSnapshot>& snapshots,
    const std::vector<PartitionProfile>& profiles) {
  std::string out = "{\"metrics\":";
  out += MetricsSnapshotJson(snapshots);
  out += ",\"partition_profiles\":[";
  bool first = true;
  for (const PartitionProfile& p : profiles) {
    if (!first) out += ',';
    first = false;
    out += "{\"cell\":" + std::to_string(p.cell);
    out += ",\"algorithm\":\"";
    AppendEscaped(out, p.algorithm);
    out += "\",\"core_points\":" + std::to_string(p.core_points);
    out += ",\"support_points\":" + std::to_string(p.support_points);
    out += ",\"area\":";
    AppendDouble(out, p.area);
    out += ",\"density\":";
    AppendDouble(out, p.density);
    out += ",\"predicted_cost\":";
    AppendDouble(out, p.predicted_cost);
    out += ",\"measured_distance_evals\":" +
           std::to_string(p.measured_distance_evals);
    out += ",\"measured_seconds\":";
    AppendDouble(out, p.measured_seconds);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace dod
