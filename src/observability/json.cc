// Copyright 2026 The DOD Authors.

#include "observability/json.h"

#include <cctype>
#include <cstdlib>

namespace dod {

bool JsonValue::bool_value() const {
  DOD_CHECK(is_bool());
  return bool_;
}

double JsonValue::number_value() const {
  DOD_CHECK(is_number());
  return number_;
}

const std::string& JsonValue::string_value() const {
  DOD_CHECK(is_string());
  return string_;
}

const std::vector<JsonValue>& JsonValue::array() const {
  DOD_CHECK(is_array());
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::object() const {
  DOD_CHECK(is_object());
  return object_;
}

bool JsonValue::Has(const std::string& key) const {
  return is_object() && object_.count(key) > 0;
}

const JsonValue& JsonValue::Get(const std::string& key) const {
  static const JsonValue kNull;
  if (!is_object()) return kNull;
  const auto it = object_.find(key);
  return it == object_.end() ? kNull : it->second;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    DOD_RETURN_IF_ERROR(ParseValue(&value));
    SkipWhitespace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->type_ = JsonValue::Type::kString;
      return ParseString(&out->string_);
    }
    if (ConsumeWord("null")) {
      out->type_ = JsonValue::Type::kNull;
      return Status::Ok();
    }
    if (ConsumeWord("true")) {
      out->type_ = JsonValue::Type::kBool;
      out->bool_ = true;
      return Status::Ok();
    }
    if (ConsumeWord("false")) {
      out->type_ = JsonValue::Type::kBool;
      out->bool_ = false;
      return Status::Ok();
    }
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue* out) {
    out->type_ = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      DOD_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      DOD_RETURN_IF_ERROR(ParseValue(&value));
      out->object_[std::move(key)] = std::move(value);
      SkipWhitespace();
      if (Consume('}')) return Status::Ok();
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out) {
    out->type_ = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (Consume(']')) return Status::Ok();
    while (true) {
      JsonValue value;
      DOD_RETURN_IF_ERROR(ParseValue(&value));
      out->array_.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return Status::Ok();
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape digit");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // this project never emits them).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("bad number");
    out->type_ = JsonValue::Type::kNumber;
    out->number_ = value;
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace dod
