// Copyright 2026 The DOD Authors.

#include "observability/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>

namespace dod::trace {
namespace {

void AppendEscaped(std::string& out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

Status WriteTraceFile(const std::string& path,
                      const std::vector<TraceEvent>& events) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IoError("cannot open trace file for writing: " + path);
  }
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    AppendEscaped(out, event.name);
    out += "\",\"cat\":\"";
    AppendEscaped(out, event.category);
    out += "\",\"ph\":\"X\"";
    char buf[96];
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f", event.ts_us,
                  event.dur_us);
    out += buf;
    out += ",\"pid\":1,\"tid\":" + std::to_string(event.tid);
    out += ",\"args\":{" + event.args + "}}";
  }
  out += "]}\n";
  const size_t written = std::fwrite(out.data(), 1, out.size(), file);
  const int close_error = std::fclose(file);
  if (written != out.size() || close_error != 0) {
    return Status::IoError("short write to trace file: " + path);
  }
  return Status::Ok();
}

}  // namespace

#if !defined(DOD_TRACING_DISABLED)

namespace internal {

std::atomic<bool> g_enabled{false};

namespace {

using Clock = std::chrono::steady_clock;

// Global event store. Live per-thread buffers register here; exiting
// threads (and snapshots) fold them into `done`.
struct Collector {
  std::mutex mutex;
  std::vector<std::vector<TraceEvent>> done;
  std::vector<std::vector<TraceEvent>*> live;
  Clock::time_point epoch = Clock::now();
  std::atomic<uint32_t> next_tid{0};
};

Collector& GetCollector() {
  static Collector collector;
  return collector;
}

struct ThreadBuffer {
  std::vector<TraceEvent> events;
  uint32_t tid = 0;
  bool registered = false;
  ~ThreadBuffer() {
    if (!registered) return;
    Collector& collector = GetCollector();
    std::lock_guard<std::mutex> lock(collector.mutex);
    if (!events.empty()) collector.done.push_back(std::move(events));
    collector.live.erase(
        std::remove(collector.live.begin(), collector.live.end(), &events),
        collector.live.end());
  }
};

ThreadBuffer& GetThreadBuffer() {
  thread_local ThreadBuffer buffer;
  if (!buffer.registered) {
    Collector& collector = GetCollector();
    std::lock_guard<std::mutex> lock(collector.mutex);
    collector.live.push_back(&buffer.events);
    buffer.tid = collector.next_tid.fetch_add(1, std::memory_order_relaxed);
    buffer.registered = true;
  }
  return buffer;
}

}  // namespace

void Record(TraceEvent&& event) {
  GetThreadBuffer().events.push_back(std::move(event));
}

double NowMicros() {
  return std::chrono::duration<double, std::micro>(Clock::now() -
                                                   GetCollector().epoch)
      .count();
}

uint32_t ThreadId() { return GetThreadBuffer().tid; }

}  // namespace internal

void Start() {
  Clear();
  internal::GetCollector().epoch = internal::Clock::now();
  internal::g_enabled.store(true, std::memory_order_relaxed);
}

void Stop() { internal::g_enabled.store(false, std::memory_order_relaxed); }

void Clear() {
  internal::Collector& collector = internal::GetCollector();
  std::lock_guard<std::mutex> lock(collector.mutex);
  collector.done.clear();
  for (std::vector<TraceEvent>* buffer : collector.live) buffer->clear();
}

std::vector<TraceEvent> SnapshotEvents() {
  internal::Collector& collector = internal::GetCollector();
  std::lock_guard<std::mutex> lock(collector.mutex);
  std::vector<TraceEvent> out;
  for (const auto& buffer : collector.done) {
    out.insert(out.end(), buffer.begin(), buffer.end());
  }
  for (const std::vector<TraceEvent>* buffer : collector.live) {
    out.insert(out.end(), buffer->begin(), buffer->end());
  }
  return out;
}

Status WriteChromeJson(const std::string& path) {
  std::vector<TraceEvent> events = SnapshotEvents();
  // Normalize: order events by content, then rename thread ids densely in
  // that order — two runs of the same workload differ only in ts/dur.
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              const int cat = std::string_view(a.category)
                                  .compare(std::string_view(b.category));
              if (cat != 0) return cat < 0;
              const int name =
                  std::string_view(a.name).compare(std::string_view(b.name));
              if (name != 0) return name < 0;
              if (a.args != b.args) return a.args < b.args;
              return a.ts_us < b.ts_us;
            });
  std::map<uint32_t, uint32_t> tid_remap;
  for (TraceEvent& event : events) {
    const auto [it, inserted] = tid_remap.emplace(
        event.tid, static_cast<uint32_t>(tid_remap.size()));
    event.tid = it->second;
  }
  return WriteTraceFile(path, events);
}

Span& Span::Arg(const char* key, double value) {
  if (active_) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    AppendArg(key, buf);
  }
  return *this;
}

Span& Span::Arg(const char* key, const char* value) {
  if (active_) {
    std::string rendered = "\"";
    AppendEscaped(rendered, value);
    rendered += '"';
    AppendArg(key, rendered);
  }
  return *this;
}

void Span::AppendArg(const char* key, std::string_view rendered) {
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  AppendEscaped(args_, key);
  args_ += "\":";
  args_ += rendered;
}

#else  // DOD_TRACING_DISABLED

Status WriteChromeJson(const std::string& path) {
  return WriteTraceFile(path, {});
}

#endif  // DOD_TRACING_DISABLED

}  // namespace dod::trace
