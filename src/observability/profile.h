// Copyright 2026 The DOD Authors.
//
// Per-partition cost-model snapshots: what the Sec. IV cost model
// predicted for a partition versus what its detection actually cost. The
// detection reducers record one PartitionProfile per reduced cell; the
// pipeline surfaces them through JobStats, the run report, and the
// --metrics_out dump, making cost-model accuracy a first-class
// measurable.

#ifndef DOD_OBSERVABILITY_PROFILE_H_
#define DOD_OBSERVABILITY_PROFILE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "observability/metrics.h"

namespace dod {

// One reduced partition's predicted-vs-measured snapshot.
struct PartitionProfile {
  uint32_t cell = 0;
  // Algorithm the plan assigned ("NestedLoop" | "CellBased").
  std::string algorithm;
  // |D_i|: core points the cell owns, and the replicated support points
  // shipped into its supporting area.
  uint64_t core_points = 0;
  uint64_t support_points = 0;
  // Geometry of the cell and the resulting core-point density.
  double area = 0.0;
  double density = 0.0;
  // Cost the planner's model (Lemma 4.1/4.2) predicted for this cell.
  double predicted_cost = 0.0;
  // What detection actually did: distance evaluations charged to the
  // cell's detector call, and its wall time.
  uint64_t measured_distance_evals = 0;
  double measured_seconds = 0.0;
};

// Collects profiles from concurrently running reduce tasks. Keyed by cell
// and overwriting on re-record, so a retried task attempt (which re-runs
// its groups) leaves exactly one profile per cell — the same idempotence
// the engine's staging commit gives the job output.
class PartitionProfiler {
 public:
  void Record(const PartitionProfile& profile) {
    std::lock_guard<std::mutex> lock(mutex_);
    profiles_[profile.cell] = profile;
  }

  // Copies the profile recorded for `cell` into `*out`; false when the
  // cell has none. The checkpoint hooks use this to persist exactly the
  // profiles a committed reduce task produced.
  bool Get(uint32_t cell, PartitionProfile* out) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = profiles_.find(cell);
    if (it == profiles_.end()) return false;
    *out = it->second;
    return true;
  }

  // All recorded profiles in cell order.
  std::vector<PartitionProfile> Sorted() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<PartitionProfile> out;
    out.reserve(profiles_.size());
    for (const auto& [cell, profile] : profiles_) out.push_back(profile);
    return out;
  }

 private:
  mutable std::mutex mutex_;
  std::map<uint32_t, PartitionProfile> profiles_;
};

// The --metrics_out document: a metrics snapshot plus the per-partition
// cost rows, as one JSON object:
//   {"metrics":{...},"partition_profiles":[{...},...]}
std::string ObservabilityReportJson(
    const std::vector<MetricSnapshot>& snapshots,
    const std::vector<PartitionProfile>& profiles);

}  // namespace dod

#endif  // DOD_OBSERVABILITY_PROFILE_H_
