// Copyright 2026 The DOD Authors.
//
// RAII tracing spans emitted as Chrome trace-event JSON (load the file at
// chrome://tracing or https://ui.perfetto.dev).
//
// Usage:
//   trace::Start();                       // or dod_cli --trace_out=...
//   { trace::Span span("phase", "map"); span.Arg("tasks", 32); ... }
//   trace::Stop();
//   trace::WriteChromeJson("trace.json");
//
// Cost model: when collection is disabled (the default), a Span
// construction is one relaxed atomic load and a branch; no clock is read
// and nothing allocates. Configuring the build with -DDOD_ENABLE_TRACING=OFF
// replaces Span with a compile-time no-op sink (empty inline methods), so
// instrumented code carries zero overhead. When enabled, each span is
// recorded into a thread-local buffer (no lock on the hot path); buffers
// are folded into a global list when the owning thread exits and when a
// snapshot/write is taken.
//
// Determinism: WriteChromeJson sorts events by (category, name, args) and
// renames thread ids to dense indices in that sorted order, so two runs of
// the same seeded workload produce traces that are identical except for
// the "ts"/"dur" timestamp fields — content-deterministic modulo time.
//
// Snapshot/Write must only be called while no other thread is emitting
// spans (e.g. after a pipeline run: the pool joins its workers first).

#ifndef DOD_OBSERVABILITY_TRACE_H_
#define DOD_OBSERVABILITY_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace dod::trace {

// One completed span ("X" event). `args` holds pre-rendered JSON object
// members without the braces, e.g. `"task":3,"attempt":0`.
struct TraceEvent {
  const char* category = "";
  const char* name = "";
  double ts_us = 0.0;
  double dur_us = 0.0;
  uint32_t tid = 0;
  std::string args;
};

#if !defined(DOD_TRACING_DISABLED)

namespace internal {
extern std::atomic<bool> g_enabled;
void Record(TraceEvent&& event);
double NowMicros();
uint32_t ThreadId();
}  // namespace internal

// True when spans are being collected. Inline relaxed load: the only cost
// instrumented code pays when tracing is off.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

// Clears previously collected events and starts collection.
void Start();
// Stops collection; collected events remain available.
void Stop();
// Drops every collected event (does not change the enabled state).
void Clear();

// All collected events, unordered. Flushes the calling thread's buffer.
std::vector<TraceEvent> SnapshotEvents();

// Writes the normalized Chrome trace (see determinism note above).
Status WriteChromeJson(const std::string& path);

// A RAII span: records one complete event from construction to
// destruction. `category` and `name` must be string literals (stored by
// pointer). Arg() attaches key/value pairs rendered into the event's
// "args" object.
class Span {
 public:
  Span(const char* category, const char* name)
      : active_(Enabled()), category_(category), name_(name) {
    if (active_) start_us_ = internal::NowMicros();
  }
  ~Span() {
    if (!active_) return;
    TraceEvent event;
    event.category = category_;
    event.name = name_;
    event.ts_us = start_us_;
    event.dur_us = internal::NowMicros() - start_us_;
    event.tid = internal::ThreadId();
    event.args = std::move(args_);
    internal::Record(std::move(event));
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  Span& Arg(const char* key, T value) {
    if (active_) AppendArg(key, std::to_string(value));
    return *this;
  }
  Span& Arg(const char* key, double value);
  Span& Arg(const char* key, const char* value);

 private:
  void AppendArg(const char* key, std::string_view rendered);

  bool active_;
  const char* category_;
  const char* name_;
  double start_us_ = 0.0;
  std::string args_;
};

#else  // DOD_TRACING_DISABLED

// Compile-time no-op sink: every member is an empty inline, so the
// optimizer erases instrumentation entirely.
inline bool Enabled() { return false; }
inline void Start() {}
inline void Stop() {}
inline void Clear() {}
inline std::vector<TraceEvent> SnapshotEvents() { return {}; }
Status WriteChromeJson(const std::string& path);  // writes an empty trace

class Span {
 public:
  Span(const char*, const char*) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  Span& Arg(const char*, T) { return *this; }
  Span& Arg(const char*, double) { return *this; }
  Span& Arg(const char*, const char*) { return *this; }
};

#endif  // DOD_TRACING_DISABLED

}  // namespace dod::trace

#endif  // DOD_OBSERVABILITY_TRACE_H_
