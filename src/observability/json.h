// Copyright 2026 The DOD Authors.
//
// A minimal recursive-descent JSON parser — just enough to validate and
// inspect the documents this project emits (trace files, metrics dumps,
// BENCH_*.json). Not a general-purpose library: numbers parse as double,
// \uXXXX escapes decode to UTF-8, no streaming.

#ifndef DOD_OBSERVABILITY_JSON_H_
#define DOD_OBSERVABILITY_JSON_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dod {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  // Parses a complete document (trailing whitespace allowed, nothing
  // else). Returns InvalidArgument with an offset on malformed input.
  static Result<JsonValue> Parse(std::string_view text);

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Accessors assume the matching type (DOD_CHECKed).
  bool bool_value() const;
  double number_value() const;
  const std::string& string_value() const;
  const std::vector<JsonValue>& array() const;
  const std::map<std::string, JsonValue>& object() const;

  // Object conveniences: membership and lookup (null value when absent).
  bool Has(const std::string& key) const;
  const JsonValue& Get(const std::string& key) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

}  // namespace dod

#endif  // DOD_OBSERVABILITY_JSON_H_
