// Copyright 2026 The DOD Authors.
//
// A lock-cheap process-wide metrics registry: counters, gauges and
// histograms with fixed log2 bucketing, usable from mappers, reducers,
// detectors and kernels without serializing the hot path.
//
// Design: every metric name is registered once (under a mutex) and mapped
// to a small dense id; updates go to a per-thread shard of plain relaxed
// atomics indexed by that id — no lock, no contention, no false sharing
// with the registration path. When a thread exits, its shard is folded
// into a retired aggregate; Snapshot() merges the retired aggregate with
// every live shard. Because every fold is a per-cell sum (or max, for
// gauges), the merge is associative and order-independent — the same
// algebra as JobStats::MergeFrom — so identical work produces identical
// snapshots regardless of which thread did what in which order.
//
// Determinism convention: metrics whose name ends in "_seconds" hold
// wall-clock measurements and are exempt from run-to-run determinism
// (their *counts* are still deterministic, their values are not); every
// other metric must be bit-identical across runs with the same seed and
// configuration. IsTimingMetric() tests the convention; the observability
// determinism test enforces it.

#ifndef DOD_OBSERVABILITY_METRICS_H_
#define DOD_OBSERVABILITY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dod {

enum class MetricKind { kCounter, kGauge, kHistogram };

// Histograms use a fixed log2 bucketing: bucket 0 holds values <= 0 (and
// NaN); bucket b in [1, 63] holds values in [2^(b-33), 2^(b-32)), so the
// covered range spans ~2e-10 (sub-nanosecond timings) to ~2e9 (large
// counts). Values outside clamp to the first/last bucket.
inline constexpr int kHistogramBuckets = 64;

// Bucket index for a value (always in [0, kHistogramBuckets)).
int HistogramBucket(double value);

// Inclusive lower bound of a bucket; 0.0 for bucket 0.
double HistogramBucketLowerBound(int bucket);

// True when `name` follows the timing-metric naming convention (ends in
// "_seconds") and is therefore exempt from value determinism.
bool IsTimingMetric(std::string_view name);

// One metric's merged view at Snapshot() time.
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  // kCounter: total count. kGauge: number of Set() calls (0 = never set).
  // kHistogram: number of observations.
  uint64_t count = 0;
  // kGauge: max of all Set() values. kHistogram: sum of observations.
  double value = 0.0;
  // kHistogram only: per-bucket observation counts.
  std::vector<uint64_t> buckets;
};

// The process-wide registry. Use through MetricsRegistry::Global(); the
// constructor is private so there is exactly one id space and one set of
// thread shards.
class MetricsRegistry {
 public:
  // Capacity of the dense id space per kind; registration aborts beyond
  // it (metric names are static program vocabulary, not data).
  static constexpr int kMaxCounters = 256;
  static constexpr int kMaxGauges = 64;
  static constexpr int kMaxHistograms = 64;

  static MetricsRegistry& Global();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registers (or looks up) `name` and returns its stable handle. The
  // kind must match the original registration. Cheap enough for cold
  // paths; hot paths should cache the handle in a function-local static.
  uint32_t Id(std::string_view name, MetricKind kind);

  // Hot-path updates by handle: a relaxed atomic add/max on this thread's
  // shard.
  void Increment(uint32_t id, uint64_t delta = 1);
  void SetMax(uint32_t id, double value);   // gauge: retains the max
  void Observe(uint32_t id, double value);  // histogram

  // Name-resolving conveniences for cold paths.
  void IncrementCounter(std::string_view name, uint64_t delta = 1) {
    Increment(Id(name, MetricKind::kCounter), delta);
  }
  void SetGauge(std::string_view name, double value) {
    SetMax(Id(name, MetricKind::kGauge), value);
  }
  void ObserveHistogram(std::string_view name, double value) {
    Observe(Id(name, MetricKind::kHistogram), value);
  }

  // Merged view of every registered metric, in registration order.
  // Safe to call concurrently with updates (updates are atomic; a racing
  // snapshot sees each cell's value at some point in time).
  std::vector<MetricSnapshot> Snapshot() const;

  // Zeroes every value (live shards and the retired aggregate) while
  // keeping registrations, so handles stay valid. Call only at quiescent
  // points (between runs); concurrent updates may be lost, not corrupted.
  void Reset();

 private:
  struct Shard;
  struct ShardHandle;

  MetricsRegistry();
  ~MetricsRegistry();

  Shard* LocalShard();
  void Retire(Shard* shard);
  static void FoldShard(const Shard& shard, Shard& into);

  struct MetricInfo {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    uint32_t dense = 0;  // index within the kind's shard array
  };

  // infos_/num_metrics_ form an append-only registry: writers append under
  // mutex_ then release-store the count; readers acquire-load the count
  // and index below it without locking.
  MetricInfo infos_[kMaxCounters + kMaxGauges + kMaxHistograms];
  std::atomic<uint32_t> num_metrics_{0};
  uint32_t num_counters_ = 0;
  uint32_t num_gauges_ = 0;
  uint32_t num_histograms_ = 0;

  mutable std::mutex mutex_;
  std::vector<Shard*> live_shards_;
  Shard* retired_;  // owned; aggregate of every exited thread's shard
};

// Serializes snapshots as a JSON object:
//   {"counters":{...},"gauges":{...},"histograms":{...}}
// Metrics sort by name, so the output is deterministic for deterministic
// values regardless of registration order.
std::string MetricsSnapshotJson(const std::vector<MetricSnapshot>& snapshots);

}  // namespace dod

#endif  // DOD_OBSERVABILITY_METRICS_H_
