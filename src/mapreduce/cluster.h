// Copyright 2026 The DOD Authors.
//
// Cluster model and slot scheduling.
//
// The paper's testbed is a 40-node shared-nothing Hadoop cluster with 8 map
// and 8 reduce slots per node (Sec. VI-A). This reproduction executes every
// task for real (so task costs are measured, not assumed) and then derives
// the end-to-end time the same way the cluster would: each stage's duration
// is the makespan of its task costs scheduled onto the available slots, and
// the shuffle is charged at the cluster's aggregate network bandwidth.
//
// This keeps the paper's objective function intact — cost(P(D)) is the
// processing cost of the most expensive partition (Def. 3.4) — while running
// deterministically on a single machine.

#ifndef DOD_MAPREDUCE_CLUSTER_H_
#define DOD_MAPREDUCE_CLUSTER_H_

#include <cstdint>
#include <vector>

namespace dod {

struct ClusterSpec {
  // Hardware shape; defaults mirror the paper's testbed.
  int num_nodes = 40;
  int map_slots_per_node = 8;
  int reduce_slots_per_node = 8;
  // Per-node NIC bandwidth in gigabits/second (paper: 1 Gbps Ethernet).
  double network_gbps = 1.0;
  // Sequential HDFS read bandwidth available to one map slot, MB/s. Each
  // map task is charged its input split's scan time on top of its measured
  // compute time — this is what makes a second full pass over the data
  // (the Domain baseline's verification job) cost real time.
  double disk_read_mbps_per_slot = 100.0;

  int map_slots() const { return num_nodes * map_slots_per_node; }
  int reduce_slots() const { return num_nodes * reduce_slots_per_node; }

  // Slot counts once `blacklisted_nodes` have been removed from scheduling
  // (see mapreduce/task_runner.h). At least one node's slots always remain,
  // so a fully-blacklisted cluster degrades instead of deadlocking.
  int usable_map_slots(int blacklisted_nodes) const {
    return UsableNodes(blacklisted_nodes) * map_slots_per_node;
  }
  int usable_reduce_slots(int blacklisted_nodes) const {
    return UsableNodes(blacklisted_nodes) * reduce_slots_per_node;
  }
  int UsableNodes(int blacklisted_nodes) const {
    const int usable = num_nodes - blacklisted_nodes;
    return usable >= 1 ? usable : 1;
  }

  // Aggregate shuffle throughput in bytes/second. All-to-all shuffles are
  // bisection-limited, so we charge the sum of per-node NICs.
  double ShuffleBytesPerSecond() const {
    return num_nodes * network_gbps * 1e9 / 8.0;
  }

  // A small single-machine cluster useful in tests.
  static ClusterSpec Local(int slots) {
    ClusterSpec spec;
    spec.num_nodes = 1;
    spec.map_slots_per_node = slots;
    spec.reduce_slots_per_node = slots;
    return spec;
  }
};

// Greedy list scheduling (Hadoop FIFO): tasks are assigned in order to the
// slot that becomes free first. Returns the per-slot total loads.
std::vector<double> ScheduleLoads(const std::vector<double>& task_costs,
                                  int slots);

// Makespan of the greedy schedule above — the simulated stage duration.
double Makespan(const std::vector<double>& task_costs, int slots);

}  // namespace dod

#endif  // DOD_MAPREDUCE_CLUSTER_H_
