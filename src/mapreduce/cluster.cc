// Copyright 2026 The DOD Authors.

#include "mapreduce/cluster.h"

#include <algorithm>
#include <queue>

#include "common/status.h"

namespace dod {

std::vector<double> ScheduleLoads(const std::vector<double>& task_costs,
                                  int slots) {
  DOD_CHECK(slots >= 1);
  std::vector<double> loads(static_cast<size_t>(slots), 0.0);
  if (task_costs.empty()) return loads;
  // Min-heap of (finish_time, slot).
  using Slot = std::pair<double, int>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<Slot>> heap;
  for (int s = 0; s < slots; ++s) heap.emplace(0.0, s);
  for (double cost : task_costs) {
    auto [finish, slot] = heap.top();
    heap.pop();
    loads[static_cast<size_t>(slot)] = finish + cost;
    heap.emplace(finish + cost, slot);
  }
  return loads;
}

double Makespan(const std::vector<double>& task_costs, int slots) {
  const std::vector<double> loads = ScheduleLoads(task_costs, slots);
  return *std::max_element(loads.begin(), loads.end());
}

}  // namespace dod
