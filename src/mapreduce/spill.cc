// Copyright 2026 The DOD Authors.

#include "mapreduce/spill.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <system_error>

namespace dod {

uint64_t SpillPolicy::EffectiveThreshold(const MemoryBudget* budget) const {
  if (threshold_bytes > 0) return threshold_bytes;
  if (budget != nullptr && budget->limit_bytes() > 0) {
    const uint64_t derived = budget->limit_bytes() / 4;
    return derived > 0 ? derived : 1;
  }
  return uint64_t{64} << 20;  // 64 MiB without a budget to derive from
}

namespace internal {

std::string SpillFilePath(const std::string& dir, const char* phase,
                          int task_index) {
  return dir + "/" + phase + "_" + std::to_string(task_index) + ".runs";
}

std::string SpillJobDir(const std::string& dir, const std::string& job_scope) {
  char name[64];
  if (!job_scope.empty()) {
    std::snprintf(name, sizeof(name), "/job_%016llx",
                  static_cast<unsigned long long>(Fnv1a64(job_scope)));
  } else {
    static std::atomic<uint64_t> next_job{0};
    std::snprintf(name, sizeof(name), "/pid%ld_%llu",
                  static_cast<long>(::getpid()),
                  static_cast<unsigned long long>(
                      next_job.fetch_add(1, std::memory_order_relaxed)));
  }
  return dir + name;
}

SpillGc::~SpillGc() {
  if (keep_files_) return;
  std::error_code ec;
  for (const std::string& file : files_) {
    std::filesystem::remove(file, ec);  // best-effort; ec ignored
  }
  if (!dir_.empty()) {
    std::filesystem::remove_all(dir_, ec);  // sweeps predecessors' orphans
  }
}

void SpillGc::Track(const std::string& file) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::string& existing : files_) {
    if (existing == file) return;
  }
  files_.push_back(file);
}

}  // namespace internal
}  // namespace dod
