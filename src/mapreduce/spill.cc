// Copyright 2026 The DOD Authors.

#include "mapreduce/spill.h"

#include <filesystem>
#include <system_error>

namespace dod {

uint64_t SpillPolicy::EffectiveThreshold(const MemoryBudget* budget) const {
  if (threshold_bytes > 0) return threshold_bytes;
  if (budget != nullptr && budget->limit_bytes() > 0) {
    const uint64_t derived = budget->limit_bytes() / 4;
    return derived > 0 ? derived : 1;
  }
  return uint64_t{64} << 20;  // 64 MiB without a budget to derive from
}

namespace internal {

std::string SpillFilePath(const std::string& dir, const char* phase,
                          int task_index) {
  return dir + "/" + phase + "_" + std::to_string(task_index) + ".runs";
}

SpillGc::~SpillGc() {
  if (keep_files_) return;
  std::error_code ec;
  for (const std::string& file : files_) {
    std::filesystem::remove(file, ec);  // best-effort; ec ignored
  }
}

void SpillGc::Track(const std::string& file) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::string& existing : files_) {
    if (existing == file) return;
  }
  files_.push_back(file);
}

}  // namespace internal
}  // namespace dod
