// Copyright 2026 The DOD Authors.
//
// Fault-tolerant task attempt scheduling for the MapReduce engine.
//
// Each logical map/reduce task runs as a sequence of *attempts* with a
// bounded retry budget, mirroring Hadoop's TaskAttempt machinery:
//
//   * a failed attempt (injected fault, poisoned shuffle, or a non-OK user
//     status) is retried after simulated exponential backoff, charged into
//     the stage's task costs;
//   * an attempt that straggles past the slowness threshold triggers
//     speculative execution — a duplicate attempt on another slot; the
//     first finisher wins and the loser's cost is still charged to its
//     slot (Hadoop semantics);
//   * nodes that accumulate failures beyond a quota are blacklisted, and
//     the engine schedules the remaining stage work on the surviving
//     nodes' slots only;
//   * a task that exhausts its budget degrades into a structured error
//     naming the task, the attempt count, and the last fault — the job
//     returns that error instead of aborting the process.
//
// Attempt bodies must stage their side effects and publish them only via
// the separate `commit` callback, which the runner invokes exactly once,
// for the winning attempt. This is the "output committer" contract that
// makes re-execution safe.

#ifndef DOD_MAPREDUCE_TASK_RUNNER_H_
#define DOD_MAPREDUCE_TASK_RUNNER_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "mapreduce/cluster.h"
#include "mapreduce/fault_injection.h"
#include "mapreduce/job_stats.h"

namespace dod {

// Retry / speculation / blacklisting knobs, carried by JobSpec.
struct RetryPolicy {
  // Total attempts per task, including the first (Hadoop
  // mapreduce.map.maxattempts; must be >= 1).
  int max_task_attempts = 4;
  // Simulated delay before retry i is initial * multiplier^(i-1); charged
  // into the retrying attempt's slot cost and JobStats::backoff_seconds.
  double initial_backoff_seconds = 1.0;
  double backoff_multiplier = 2.0;
  // Launch a duplicate attempt when a straggler runs at least this many
  // times slower than its fault-free cost.
  bool speculative_execution = true;
  double speculation_slowness_threshold = 1.5;
  // Injected/observed attempt failures on one node before it is
  // blacklisted; <= 0 disables blacklisting.
  int node_failure_quota = 3;
};

// Runs logical tasks as retried attempts for one job. Owns the per-node
// failure ledger; writes attempt/retry/speculation counters into JobStats.
class TaskRunner {
 public:
  TaskRunner(const RetryPolicy& policy, const FaultInjector& injector,
             const ClusterSpec& cluster, JobStats& stats);

  // Executes one logical task. `attempt_body(attempt)` runs the user code
  // into attempt-local staging and reports its status; `commit` publishes
  // the winning attempt's staging. `extra_seconds` is charged on top of
  // each attempt's measured time (split I/O scan). Per-attempt charged
  // costs (including backoff and speculative duplicates) are appended to
  // `slot_costs` — one entry per slot occupation, exactly what the stage
  // makespan schedules.
  Status RunTask(TaskPhase phase, int task_index, double extra_seconds,
                 const std::function<Status(int attempt)>& attempt_body,
                 const std::function<void()>& commit,
                 std::vector<double>& slot_costs);

  // Nodes blacklisted so far (mirrored into JobStats::nodes_blacklisted).
  int blacklisted_nodes() const { return blacklisted_count_; }

 private:
  // Registers a failure against the attempt's node; may blacklist it.
  void RecordNodeFailure(TaskPhase phase, int task_index, int attempt);
  // Deterministic placement skipping blacklisted nodes.
  int AssignNode(TaskPhase phase, int task_index, int attempt) const;

  const RetryPolicy& policy_;
  const FaultInjector& injector_;
  JobStats& stats_;
  int num_nodes_;
  std::vector<int> node_failures_;
  std::vector<bool> node_blacklisted_;
  int blacklisted_count_ = 0;
};

}  // namespace dod

#endif  // DOD_MAPREDUCE_TASK_RUNNER_H_
