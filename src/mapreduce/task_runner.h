// Copyright 2026 The DOD Authors.
//
// Fault-tolerant task attempt scheduling for the MapReduce engine.
//
// Each logical map/reduce task runs as a sequence of *attempts* with a
// bounded retry budget, mirroring Hadoop's TaskAttempt machinery:
//
//   * a failed attempt (injected fault, poisoned shuffle, or a non-OK user
//     status) is retried after simulated exponential backoff, charged into
//     the stage's task costs;
//   * an attempt that straggles past the slowness threshold triggers
//     speculative execution — a duplicate attempt on another slot; the
//     first finisher wins and the loser's cost is still charged to its
//     slot (Hadoop semantics);
//   * nodes that accumulate failures beyond a quota are blacklisted, and
//     the engine schedules the remaining stage work on the surviving
//     nodes' slots only;
//   * a task that exhausts its budget degrades into a structured error
//     naming the task, the attempt count, and the last fault — the job
//     returns that error instead of aborting the process.
//
// Attempt bodies must stage their side effects and publish them only via
// the separate `commit` callback, which the runner invokes exactly once,
// for the winning attempt. This is the "output committer" contract that
// makes re-execution safe.
//
// Concurrency: one TaskRunner serves a whole job, and the parallel
// runtime calls RunTask for distinct tasks concurrently. RunTask writes
// all attempt accounting into the caller-supplied per-task JobStats delta
// (merged by the engine after the phase barrier — order-independent, see
// job_stats.h), so the only cross-task state is the node-failure ledger,
// guarded by a mutex. The attempt *schedule* of each task (which attempts
// run, fail, straggle, or speculate) is a pure function of the fault
// injector and the user code, so it is identical for every thread count;
// only node placement may vary with scheduling order, which affects no
// committed output.

#ifndef DOD_MAPREDUCE_TASK_RUNNER_H_
#define DOD_MAPREDUCE_TASK_RUNNER_H_

#include <functional>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "durability/run_control.h"
#include "mapreduce/cluster.h"
#include "mapreduce/fault_injection.h"
#include "mapreduce/job_stats.h"

namespace dod {

// Retry / speculation / blacklisting knobs, carried by JobSpec.
struct RetryPolicy {
  // Total attempts per task, including the first (Hadoop
  // mapreduce.map.maxattempts; must be >= 1).
  int max_task_attempts = 4;
  // Simulated delay before retry i is initial * multiplier^(i-1); charged
  // into the retrying attempt's slot cost and JobStats::backoff_seconds.
  double initial_backoff_seconds = 1.0;
  double backoff_multiplier = 2.0;
  // Launch a duplicate attempt when a straggler runs at least this many
  // times slower than its fault-free cost.
  bool speculative_execution = true;
  double speculation_slowness_threshold = 1.5;
  // Injected/observed attempt failures on one node before it is
  // blacklisted; <= 0 disables blacklisting.
  int node_failure_quota = 3;
};

// True for status codes that must not be retried: the failure is not a
// task fault but a run-level stop condition (deadline, cancellation) or a
// resource budget that a retry would only hit again. The runner returns
// these immediately, and the engine propagates them with partial-progress
// stats instead of burning the attempt budget.
inline bool IsTerminalTaskStatus(StatusCode code) {
  return code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kCancelled ||
         code == StatusCode::kResourceExhausted;
}

// Runs logical tasks as retried attempts for one job. Owns the per-node
// failure ledger; safe to call from concurrent worker threads for
// distinct tasks.
class TaskRunner {
 public:
  // `control` (optional, borrowed) is consulted before every attempt;
  // a fired deadline or cancellation aborts the task with the structured
  // status instead of starting the attempt.
  TaskRunner(const RetryPolicy& policy, const FaultInjector& injector,
             const ClusterSpec& cluster, const RunControl* control = nullptr);

  // Executes one logical task. `attempt_body(attempt)` runs the user code
  // into attempt-local staging and reports its status; `commit` publishes
  // the winning attempt's staging (into per-task storage when running
  // under the parallel executor). `extra_seconds` is charged on top of
  // each attempt's measured time (split I/O scan). Attempt/retry/
  // speculation counters accrue into `task_stats`, and per-attempt charged
  // costs (including backoff and speculative duplicates) are appended to
  // `slot_costs` — one entry per slot occupation, exactly what the stage
  // makespan schedules.
  Status RunTask(TaskPhase phase, int task_index, double extra_seconds,
                 const std::function<Status(int attempt)>& attempt_body,
                 const std::function<void()>& commit, JobStats& task_stats,
                 std::vector<double>& slot_costs);

  // Nodes blacklisted so far (the engine mirrors the final value into
  // JobStats::nodes_blacklisted after the phases complete).
  int blacklisted_nodes() const;

 private:
  // Registers a failure against the attempt's node; may blacklist it.
  void RecordNodeFailure(TaskPhase phase, int task_index, int attempt);
  // Deterministic placement skipping blacklisted nodes. Caller holds
  // node_mutex_.
  int AssignNodeLocked(TaskPhase phase, int task_index, int attempt) const;

  const RetryPolicy& policy_;
  const FaultInjector& injector_;
  const RunControl* control_;
  int num_nodes_;
  // Guards the node ledger below — the only state shared across
  // concurrently running tasks.
  mutable std::mutex node_mutex_;
  std::vector<int> node_failures_;
  std::vector<bool> node_blacklisted_;
  int blacklisted_count_ = 0;
};

}  // namespace dod

#endif  // DOD_MAPREDUCE_TASK_RUNNER_H_
