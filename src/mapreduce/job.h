// Copyright 2026 The DOD Authors.
//
// A single-process MapReduce execution engine.
//
// The engine implements the data-flow contract of Fig. 2 in the paper:
// mappers consume input splits and emit (key, value) records; records are
// hash- or plan-partitioned to reduce tasks, sorted and grouped by key; each
// reduce task processes its groups independently with no communication to
// other reducers (shared-nothing, no synchronization).
//
// Every task is actually executed, and its duration measured. Stage times
// are then derived by scheduling the measured task costs onto the cluster's
// slots (see cluster.h). This yields the end-to-end execution time metric
// the paper reports while running deterministically on one machine.

#ifndef DOD_MAPREDUCE_JOB_H_
#define DOD_MAPREDUCE_JOB_H_

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/timer.h"
#include "mapreduce/cluster.h"
#include "mapreduce/counters.h"
#include "mapreduce/job_stats.h"

namespace dod {

// Receives the records a mapper emits.
template <typename K, typename V>
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void Emit(const K& key, const V& value) = 0;
};

// User map function: consumes input split `split_index` (the mapper knows
// how to fetch its own input, e.g. from a BlockStore) and emits records.
template <typename K, typename V>
class Mapper {
 public:
  virtual ~Mapper() = default;
  virtual void Map(size_t split_index, Emitter<K, V>& out) = 0;
};

// User reduce function: one call per key group. `values` may be consumed
// destructively. Results go to `out`; `counters` aggregates job counters.
template <typename K, typename V, typename Out>
class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual void Reduce(const K& key, std::vector<V>& values,
                      std::vector<Out>& out, Counters& counters) = 0;
};

struct JobSpec {
  // Number of reduce tasks (the partition function must return values in
  // [0, num_reduce_tasks)).
  int num_reduce_tasks = 1;
  ClusterSpec cluster;
  // Input bytes of each split; charged as HDFS scan time against the
  // owning map task at cluster.disk_read_mbps_per_slot. Empty = no charge.
  std::vector<uint64_t> split_input_bytes;
};

template <typename Out>
struct JobOutput {
  std::vector<Out> output;
  JobStats stats;
};

namespace internal {

// Buffers emitted records into per-reduce-task buckets.
template <typename K, typename V>
class ShuffleEmitter : public Emitter<K, V> {
 public:
  using Buckets = std::vector<std::vector<std::pair<K, V>>>;

  ShuffleEmitter(Buckets& buckets, const std::function<int(const K&)>& part,
                 size_t record_bytes, JobStats& stats)
      : buckets_(buckets),
        part_(part),
        record_bytes_(record_bytes),
        stats_(stats) {}

  void Emit(const K& key, const V& value) override {
    const int task = part_(key);
    DOD_CHECK(task >= 0 && task < static_cast<int>(buckets_.size()));
    buckets_[static_cast<size_t>(task)].emplace_back(key, value);
    ++stats_.records_shuffled;
    stats_.bytes_shuffled += record_bytes_;
  }

 private:
  Buckets& buckets_;
  const std::function<int(const K&)>& part_;
  size_t record_bytes_;
  JobStats& stats_;
};

}  // namespace internal

// Runs a full MapReduce job: map over `num_splits` splits, shuffle, reduce.
//
// `partition` routes a key to its reduce task — the hook through which DOD
// injects its allocation plan (Fig. 6, Step 3). `record_bytes` is the wire
// size charged per shuffled record.
template <typename K, typename V, typename Out>
JobOutput<Out> RunMapReduce(size_t num_splits, Mapper<K, V>& mapper,
                            Reducer<K, V, Out>& reducer,
                            const std::function<int(const K&)>& partition,
                            const JobSpec& spec,
                            size_t record_bytes = sizeof(K) + sizeof(V)) {
  DOD_CHECK(spec.num_reduce_tasks >= 1);
  JobOutput<Out> result;
  JobStats& stats = result.stats;
  StopWatch wall;

  // ---- Map phase -------------------------------------------------------
  typename internal::ShuffleEmitter<K, V>::Buckets buckets(
      static_cast<size_t>(spec.num_reduce_tasks));
  internal::ShuffleEmitter<K, V> emitter(buckets, partition, record_bytes,
                                         stats);
  stats.map_task_seconds.reserve(num_splits);
  const double read_bytes_per_second =
      spec.cluster.disk_read_mbps_per_slot * 1e6;
  for (size_t split = 0; split < num_splits; ++split) {
    StopWatch task;
    mapper.Map(split, emitter);
    double cost = task.ElapsedSeconds();
    if (split < spec.split_input_bytes.size()) {
      cost += static_cast<double>(spec.split_input_bytes[split]) /
              read_bytes_per_second;
    }
    stats.map_task_seconds.push_back(cost);
  }
  stats.records_mapped = stats.records_shuffled;

  // ---- Reduce phase (sort + group + reduce, per task) -------------------
  stats.reduce_task_seconds.reserve(buckets.size());
  for (auto& bucket : buckets) {
    StopWatch task;
    // Hadoop sorts at the reducer; the sort is part of the task's cost.
    std::stable_sort(bucket.begin(), bucket.end(),
                     [](const std::pair<K, V>& a, const std::pair<K, V>& b) {
                       return a.first < b.first;
                     });
    size_t i = 0;
    std::vector<V> values;
    while (i < bucket.size()) {
      size_t j = i;
      values.clear();
      while (j < bucket.size() && !(bucket[i].first < bucket[j].first) &&
             !(bucket[j].first < bucket[i].first)) {
        values.push_back(std::move(bucket[j].second));
        ++j;
      }
      reducer.Reduce(bucket[i].first, values, result.output, stats.counters);
      ++stats.groups_reduced;
      i = j;
    }
    stats.reduce_task_seconds.push_back(task.ElapsedSeconds());
  }

  // ---- Derive cluster-stage times ---------------------------------------
  stats.stage_times.map_seconds =
      Makespan(stats.map_task_seconds, spec.cluster.map_slots());
  stats.stage_times.shuffle_seconds =
      static_cast<double>(stats.bytes_shuffled) /
      spec.cluster.ShuffleBytesPerSecond();
  stats.stage_times.reduce_seconds =
      Makespan(stats.reduce_task_seconds, spec.cluster.reduce_slots());
  stats.wall_seconds = wall.ElapsedSeconds();
  return result;
}

}  // namespace dod

#endif  // DOD_MAPREDUCE_JOB_H_
