// Copyright 2026 The DOD Authors.
//
// A single-process MapReduce execution engine.
//
// The engine implements the data-flow contract of Fig. 2 in the paper:
// mappers consume input splits and emit (key, value) records; records are
// hash- or plan-partitioned to reduce tasks, sorted and grouped by key; each
// reduce task processes its groups independently with no communication to
// other reducers (shared-nothing, no synchronization).
//
// Every task is actually executed, and its duration measured. Stage times
// are then derived by scheduling the measured task costs onto the cluster's
// slots (see cluster.h). This yields the end-to-end execution time metric
// the paper reports while running deterministically on one machine. The
// real wall-clock time of each phase is measured alongside and reported in
// JobStats, so simulated makespan and actual speedup sit side by side.
//
// Tasks really run concurrently: the map and reduce phases fan out over a
// work-stealing thread pool (runtime/parallel_executor.h), with
// JobSpec::num_threads workers (<= 0 = all hardware threads; 1 reproduces
// the historical sequential loop exactly). Output is byte-identical for
// every thread count: each task stages its results privately and the
// engine commits the staged results after the phase barrier in
// task-index order, while counters and stats merge order-independently
// (see job_stats.h). Consequently Mapper/Reducer instances are invoked
// concurrently for *distinct* tasks — user code must be reentrant: keep
// per-call scratch on the stack, treat shared inputs as read-only.
//
// Execution is fault tolerant: every task runs as a sequence of attempts
// under a TaskRunner (retry with simulated backoff, speculative execution
// for stragglers, node blacklisting), optionally under a deterministic
// FaultInjector. Attempts stage their output and commit only on success, so
// committed job output is identical to a fault-free run; a task that
// exhausts its retry budget turns the job into a structured error instead
// of aborting the process.

#ifndef DOD_MAPREDUCE_JOB_H_
#define DOD_MAPREDUCE_JOB_H_

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <iterator>
#include <new>
#include <optional>
#include <string>
#include <system_error>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "common/timer.h"
#include "durability/checkpoint.h"
#include "durability/memory_budget.h"
#include "durability/payload.h"
#include "durability/run_control.h"
#include "mapreduce/cluster.h"
#include "mapreduce/counters.h"
#include "mapreduce/fault_injection.h"
#include "mapreduce/job_stats.h"
#include "mapreduce/shuffle.h"
#include "mapreduce/spill.h"
#include "mapreduce/task_runner.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "runtime/parallel_executor.h"

namespace dod {

// Receives the records a mapper emits.
template <typename K, typename V>
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void Emit(const K& key, const V& value) = 0;
};

// User map function: consumes input split `split_index` (the mapper knows
// how to fetch its own input, e.g. from a BlockStore) and emits records.
// Implement Map when the task cannot fail, or override TryMap to surface
// task-level errors to the engine (which retries, then propagates). Map
// may be called several times for the same split (task re-execution) and
// concurrently for different splits (parallel execution), so it must be
// deterministic, free of external side effects, and must not share
// mutable scratch state between calls.
template <typename K, typename V>
class Mapper {
 public:
  virtual ~Mapper() = default;
  virtual void Map(size_t split_index, Emitter<K, V>& out) {
    (void)split_index;
    (void)out;
    DOD_CHECK_MSG(false, "Mapper: implement Map() or TryMap()");
  }
  // Status-returning variant the engine invokes; defaults to adapting Map.
  virtual Status TryMap(size_t split_index, Emitter<K, V>& out) {
    Map(split_index, out);
    return Status::Ok();
  }
};

// User reduce function: one call per key group. `values` may be consumed
// destructively. Results go to `out`; `counters` aggregates job counters.
// Like Map, Reduce may re-run on the same group after an attempt failure,
// and runs concurrently for groups of *different* reduce tasks (groups
// within one task stay sequential) — the same reentrancy rules apply.
template <typename K, typename V, typename Out>
class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual void Reduce(const K& key, std::vector<V>& values,
                      std::vector<Out>& out, Counters& counters) {
    (void)key;
    (void)values;
    (void)out;
    (void)counters;
    DOD_CHECK_MSG(false, "Reducer: implement Reduce() or TryReduce()");
  }
  // Status-returning variant the engine invokes; defaults to adapting
  // Reduce.
  virtual Status TryReduce(const K& key, std::vector<V>& values,
                           std::vector<Out>& out, Counters& counters) {
    Reduce(key, values, out, counters);
    return Status::Ok();
  }
  // Task-at-a-time variant: one call per reduce-task attempt, receiving
  // every key group of the task at once. Override to read group values in
  // place (zero-copy) or to build per-task shared state (e.g. one probe
  // arena serving all groups). The default adapts the per-group contract:
  // each group's values are copied into scratch (the shuffle backing must
  // survive an attempt retry) and handed to TryReduce, stopping at the
  // first error. The same reentrancy rules apply — one call services one
  // task, distinct tasks run concurrently.
  virtual Status TryReduceTask(const GroupedView<K, V>& groups,
                               std::vector<Out>& out, Counters& counters) {
    std::vector<V> values;
    for (size_t g = 0; g < groups.num_groups(); ++g) {
      const size_t group_size = groups.size(g);
      values.clear();
      values.reserve(group_size);
      for (size_t i = 0; i < group_size; ++i) {
        values.push_back(groups.value(g, i));
      }
      DOD_RETURN_IF_ERROR(TryReduce(groups.key(g), values, out, counters));
    }
    return Status::Ok();
  }
};

struct JobSpec {
  // Number of reduce tasks (the partition function must return values in
  // [0, num_reduce_tasks)).
  int num_reduce_tasks = 1;
  // Worker threads executing map/reduce tasks: <= 0 uses every hardware
  // thread, 1 runs the sequential inline path (no pool).
  int num_threads = 0;
  ClusterSpec cluster;
  // Input bytes of each split; charged as HDFS scan time against the
  // owning map task at cluster.disk_read_mbps_per_slot. Empty = no charge.
  std::vector<uint64_t> split_input_bytes;
  // Expected records emitted per split (0 / absent = unknown); used to
  // pre-size each map task's shuffle buckets so emission never regrows.
  std::vector<uint64_t> split_record_hints;
  // Reduce-side grouping strategy (see mapreduce/shuffle.h). Both modes
  // commit byte-identical job output; kSorted is the escape hatch.
  ShuffleMode shuffle = ShuffleMode::kColumnar;
  // Spill-to-disk shuffle (see mapreduce/spill.h). Orthogonal to the
  // grouping mode: a map task whose emitted bytes cross the (budget-wired)
  // threshold flushes its buckets as sorted runs, and reduce grouping
  // merges runs and memory segments back together — job output stays
  // byte-identical to the all-in-memory shuffle. Disabled when dir is
  // empty. Requires trivially copyable K/V (enforced with a structured
  // error, like checkpointing).
  SpillPolicy spill;
  // Worker locality groups of the task pool: <= 0 auto-detects (NUMA
  // nodes, else cache-domain buckets — see ThreadPool::DetectWorkerGroups).
  // Reduce tasks are hinted onto the group whose map tasks produced most
  // of their input; placement never affects results.
  int worker_groups = 0;
  // Fault injection (disabled by default) and the task attempt policy.
  FaultSpec faults;
  RetryPolicy retry;

  // ---- Durable execution (all optional; pointers are borrowed and must
  // outlive the job) -----------------------------------------------------

  // Committed-task checkpoint store. When set, every map/reduce task's
  // committed output (plus its stats delta and slot costs) is durably
  // recorded right after commit; with `resume` also set, tasks already
  // recorded are restored instead of re-executed, and the job's output and
  // stats come out byte-identical to an uninterrupted run. Requires
  // trivially copyable K/V/Out (enforced with a structured error); a
  // checkpoint that fails to load is logged, counted, and the task simply
  // re-runs.
  CheckpointStore* checkpoint = nullptr;
  bool resume = false;
  // Deadline/cancellation control, checked before every task attempt and
  // between phases; a fired condition aborts with kDeadlineExceeded /
  // kCancelled (see `partial_stats`).
  const RunControl* control = nullptr;
  // Memory budget. Deterministically degrades the columnar shuffle to the
  // sorted path when its scratch would not fit (result-identical, counted
  // in mr.shuffle.budget_fallback_tasks), skips shuffle-bucket
  // pre-reserves that would not fit, and turns allocation failures inside
  // attempts into kResourceExhausted.
  MemoryBudget* memory = nullptr;
  // When set, a failing job merges the stats of all work that did complete
  // into *partial_stats before returning its error — partial-progress
  // reporting for deadline, cancellation, and budget aborts.
  JobStats* partial_stats = nullptr;
  // Optional hooks appending / restoring caller-owned per-task durable
  // state on the checkpoint payloads (e.g. the detection pipeline's
  // partition-profile records, which otherwise live outside JobStats
  // deltas and would be lost across a resume).
  std::function<void(TaskPhase, int, PayloadWriter&)> checkpoint_extra;
  std::function<Status(TaskPhase, int, PayloadReader&)> restore_extra;
};

template <typename Out>
struct JobOutput {
  std::vector<Out> output;
  JobStats stats;
};

namespace internal {

// Shuffle volume produced by one attempt; merged into JobStats on commit
// so failed attempts leave no trace in the data-flow accounting.
struct ShuffleAccounting {
  uint64_t records = 0;
  uint64_t bytes = 0;
};

// Buffers emitted records into per-reduce-task buckets (attempt staging).
// When a dense partition table is supplied (integral keys routed by a
// precomputed allocation plan), Emit resolves the reduce task with one
// indexed load instead of a std::function call per record.
template <typename K, typename V>
class ShuffleEmitter : public Emitter<K, V> {
 public:
  using Buckets = std::vector<std::vector<std::pair<K, V>>>;

  ShuffleEmitter(Buckets& buckets, const std::function<int(const K&)>& part,
                 const std::vector<int>* dense_partition, size_t record_bytes,
                 const std::function<size_t(const K&, const V&)>& record_size,
                 ShuffleAccounting& accounting, ShuffleFaultFilter* filter,
                 TaskSpiller<K, V>* spiller = nullptr,
                 uint64_t spill_threshold = 0)
      : buckets_(buckets),
        part_(part),
        dense_partition_(dense_partition),
        record_bytes_(record_bytes),
        record_size_(record_size),
        accounting_(accounting),
        filter_(filter),
        spiller_(spiller),
        spill_threshold_(spill_threshold) {}

  void Emit(const K& key, const V& value) override {
    if (filter_ != nullptr) {
      const FaultKind fault = filter_->Next();
      // A dropped record never reaches its bucket; a corrupted one does but
      // poisons the attempt, whose whole staging is then discarded. Either
      // way the filter fails the attempt, so no faulty data ever commits.
      if (fault == FaultKind::kShuffleDrop) return;
    }
    const int task = Partition(key);
    DOD_CHECK(task >= 0 && task < static_cast<int>(buckets_.size()));
    buckets_[static_cast<size_t>(task)].emplace_back(key, value);
    ++accounting_.records;
    accounting_.bytes += record_size_ ? record_size_(key, value)
                                      : record_bytes_;
    if (spiller_ != nullptr) {
      // The spill trigger runs on resident pair bytes, not the charged
      // wire size: what the threshold bounds is this task's memory.
      bytes_since_spill_ += sizeof(std::pair<K, V>);
      if (bytes_since_spill_ >= spill_threshold_) {
        spiller_->Spill(buckets_);
        bytes_since_spill_ = 0;
      }
    }
  }

 private:
  int Partition(const K& key) const {
    if constexpr (std::is_integral_v<K>) {
      if (dense_partition_ != nullptr) {
        const size_t index = static_cast<size_t>(key);
        DOD_CHECK(index < dense_partition_->size());
        return (*dense_partition_)[index];
      }
    }
    return part_(key);
  }

  Buckets& buckets_;
  const std::function<int(const K&)>& part_;
  const std::vector<int>* dense_partition_;
  size_t record_bytes_;
  const std::function<size_t(const K&, const V&)>& record_size_;
  ShuffleAccounting& accounting_;
  ShuffleFaultFilter* filter_;
  TaskSpiller<K, V>* spiller_;
  uint64_t spill_threshold_;
  uint64_t bytes_since_spill_ = 0;
};

}  // namespace internal

// Runs a full MapReduce job: map over `num_splits` splits, shuffle, reduce.
//
// `partition` routes a key to its reduce task — the hook through which DOD
// injects its allocation plan (Fig. 6, Step 3); it is called concurrently
// from map tasks and must be pure. When the plan is already a dense table
// over an integral key space, pass it as `dense_partition` (entry k = the
// reduce task of key k) and the emitter skips the std::function call per
// record; `partition` is then only a fallback and may be empty.
// `record_bytes` is the wire size charged per shuffled record; pass
// `record_size` instead when record sizes vary (heap-allocated payloads),
// in which case it overrides `record_bytes` per record.
//
// Returns the job output, or the structured error of the first task (by
// task index) that exhausted its attempt budget (see
// mapreduce/task_runner.h). The process never aborts on task failure.
template <typename K, typename V, typename Out>
Result<JobOutput<Out>> RunMapReduce(
    size_t num_splits, Mapper<K, V>& mapper, Reducer<K, V, Out>& reducer,
    const std::function<int(const K&)>& partition, const JobSpec& spec,
    size_t record_bytes = sizeof(K) + sizeof(V),
    const std::function<size_t(const K&, const V&)>& record_size = {},
    const std::vector<int>* dense_partition = nullptr) {
  if (spec.num_reduce_tasks < 1) {
    return Status::InvalidArgument(
        "RunMapReduce: num_reduce_tasks must be >= 1");
  }
  // Checkpoint payloads store records and outputs as raw bytes; that is
  // only sound for trivially copyable types. Jobs with richer types can
  // still run — they just cannot checkpoint. The check is on K and V, not
  // on pair<K, V>: pair's user-provided assignment operator makes the pair
  // formally non-trivially-copyable even when its representation — all
  // that the byte copy touches — is two trivially copyable members.
  constexpr bool kCheckpointable = std::is_trivially_copyable_v<K> &&
                                   std::is_trivially_copyable_v<V> &&
                                   std::is_trivially_copyable_v<Out>;
  if constexpr (!kCheckpointable) {
    if (spec.checkpoint != nullptr) {
      return Status::Unimplemented(
          "RunMapReduce: checkpointing requires trivially copyable "
          "key/value/output types");
    }
  }
  // Spill runs store records as raw bytes — same soundness condition as
  // checkpoint payloads, but only on the shuffled pair.
  constexpr bool kSpillable =
      std::is_trivially_copyable_v<K> && std::is_trivially_copyable_v<V>;
  if constexpr (!kSpillable) {
    if (spec.spill.enabled()) {
      return Status::Unimplemented(
          "RunMapReduce: shuffle spilling requires trivially copyable "
          "key/value types");
    }
  }
  const bool spilling = kSpillable && spec.spill.enabled();
  const uint64_t spill_threshold = spec.spill.EffectiveThreshold(spec.memory);
  internal::SpillGc spill_gc;
  std::string spill_dir;
  if (spilling) {
    // Run files live in a per-job subdirectory so jobs sharing a spill
    // dir cannot truncate each other's files. Keyed by the checkpoint
    // store's identity when checkpointing — a resumed run must land in
    // the same namespace its crashed predecessor spilled into.
    spill_dir = internal::SpillJobDir(
        spec.spill.dir,
        spec.checkpoint != nullptr
            ? spec.checkpoint->dir() + "\n" + spec.checkpoint->job_key()
            : std::string());
    std::error_code ec;
    std::filesystem::create_directories(spill_dir, ec);
    if (ec) {
      return Status::IoError("RunMapReduce: cannot create spill directory " +
                             spill_dir + ": " + ec.message());
    }
    spill_gc.TrackDir(spill_dir);
    // A checkpointing job's durable records reference the run files, so a
    // structured failure must leave them on disk for the resumed run —
    // matching what a real crash (no destructors) does. Disarmed at the
    // success exit below.
    spill_gc.set_keep_files(spec.checkpoint != nullptr);
  }
  JobOutput<Out> result;
  JobStats& stats = result.stats;
  StopWatch wall;

  const FaultInjector injector(spec.faults);
  TaskRunner runner(spec.retry, injector, spec.cluster, spec.control);
  ParallelExecutor executor(spec.num_threads, spec.worker_groups);
  stats.threads_used = executor.num_threads();

  const size_t num_reduce = static_cast<size_t>(spec.num_reduce_tasks);
  using Buckets = typename internal::ShuffleEmitter<K, V>::Buckets;

  // ---- Durability plumbing ---------------------------------------------
  // Registered unconditionally so the durability.* schema is always
  // present in metrics dumps; Id() is idempotent across instantiations.
  MetricsRegistry& dmetrics = MetricsRegistry::Global();
  static const uint32_t kCkptTasksWritten = dmetrics.Id(
      "durability.checkpoint.tasks_written", MetricKind::kCounter);
  [[maybe_unused]] static const uint32_t kCkptTasksResumed = dmetrics.Id(
      "durability.checkpoint.tasks_resumed", MetricKind::kCounter);
  static const uint32_t kCkptBytesWritten = dmetrics.Id(
      "durability.checkpoint.bytes_written", MetricKind::kCounter);
  static const uint32_t kCkptWriteSeconds = dmetrics.Id(
      "durability.checkpoint.write_seconds", MetricKind::kHistogram);
  [[maybe_unused]] static const uint32_t kCkptLoadFailures = dmetrics.Id(
      "durability.checkpoint.load_failures", MetricKind::kCounter);
  static const uint32_t kControlAborts =
      dmetrics.Id("durability.control.aborts", MetricKind::kCounter);
  static const uint32_t kBudgetShuffleFallbacks = dmetrics.Id(
      "durability.memory.shuffle_budget_fallbacks", MetricKind::kCounter);
  static const uint32_t kBudgetReserveSkipped = dmetrics.Id(
      "durability.memory.reserve_skipped", MetricKind::kCounter);
  static const uint32_t kBudgetPeakBytes =
      dmetrics.Id("durability.memory.peak_bytes", MetricKind::kGauge);

  // Durably records one committed task. Best-effort: a failed write only
  // costs resumability, never the job.
  auto persist_checkpoint = [&](TaskPhase phase, int index,
                                const PayloadWriter& payload) {
    trace::Span span("durability", "checkpoint_commit");
    span.Arg("phase", TaskPhaseName(phase))
        .Arg("task", index)
        .Arg("bytes", static_cast<uint64_t>(payload.size()));
    StopWatch watch;
    const Status status = spec.checkpoint->CommitTask(TaskPhaseName(phase),
                                                      index, payload.str());
    if (!status.ok()) {
      span.Arg("status", "failed");
      DOD_LOG(Warning) << "checkpoint write for " << TaskPhaseName(phase)
                       << " task " << index
                       << " failed: " << status.ToString();
      return;
    }
    span.Arg("status", "ok");
    dmetrics.Increment(kCkptTasksWritten);
    dmetrics.Increment(kCkptBytesWritten, payload.size());
    dmetrics.Observe(kCkptWriteSeconds, watch.ElapsedSeconds());
  };

  // Fires the configured crash after task (phase, index) committed (and,
  // when checkpointing, after its record is durable) — see FaultSpec.
  auto maybe_crash = [&](TaskPhase phase, int index) -> Status {
    if (spec.faults.crash_at_task != index ||
        spec.faults.crash_phase != phase) {
      return Status::Ok();
    }
    if (spec.faults.crash_exit) {
      // Simulated kill -9: no destructors, no stream flushes. Only the
      // durably committed checkpoints survive — which is the point.
      std::_Exit(42);
    }
    return Status::Unavailable(std::string("injected crash after ") +
                               TaskPhaseName(phase) + " task " +
                               std::to_string(index) + " committed");
  };

  // Merges the completed work's accounting into *spec.partial_stats (when
  // requested) before a failing job returns `failure`.
  auto fail_job = [&](Status failure) -> Status {
    if (IsTerminalTaskStatus(failure.code())) {
      dmetrics.Increment(kControlAborts);
    }
    if (spec.partial_stats != nullptr) {
      stats.wall_seconds = wall.ElapsedSeconds();
      *spec.partial_stats = stats;
    }
    return failure;
  };

  // ---- Map phase -------------------------------------------------------
  // Every map task stages into private buckets; the winning attempt's
  // staging is committed into the task's slot and merged into the global
  // shuffle after the barrier, in split order — so the shuffled buckets
  // are byte-identical no matter how tasks interleave.
  struct MapTaskState {
    Buckets staging;
    Buckets committed;
    // Spilled shuffle: the winning attempt's run descriptors, in flush
    // order. A task spills everything or nothing (TaskSpiller::Finish), so
    // non-empty runs imply empty committed buckets.
    std::vector<internal::SpillRunInfo> runs;
    // Worker group that executed the winning attempt (-1 when unknown,
    // e.g. sequential runs or checkpoint restores): the group that
    // first-touched this task's output, feeding the reduce placement hints.
    int worker_group = -1;
    internal::ShuffleAccounting accounting;
    JobStats stats;
    std::vector<double> slot_costs;
  };
  std::vector<MapTaskState> map_tasks(num_splits);
  const double read_bytes_per_second =
      spec.cluster.disk_read_mbps_per_slot * 1e6;
  StopWatch map_wall;
  Status map_status;
  {
    trace::Span phase_span("phase", "map");
    phase_span.Arg("tasks", static_cast<uint64_t>(num_splits));
    map_status = executor.RunTasks(
      num_splits, [&](size_t split) -> Status {
        MapTaskState& task = map_tasks[split];
        if constexpr (kCheckpointable) {
          if (spec.checkpoint != nullptr && spec.resume &&
              spec.checkpoint->HasTask("map", static_cast<int>(split))) {
            trace::Span span("durability", "checkpoint_restore");
            span.Arg("phase", "map").Arg("task",
                                         static_cast<uint64_t>(split));
            Status restored = [&]() -> Status {
              DOD_ASSIGN_OR_RETURN(
                  std::string payload,
                  spec.checkpoint->LoadTask("map", static_cast<int>(split)));
              PayloadReader reader(payload);
              DOD_RETURN_IF_ERROR(
                  DeserializeJobStatsDelta(&reader, &task.stats));
              DOD_RETURN_IF_ERROR(reader.F64Vec(&task.slot_costs));
              uint8_t spilled_flag = 0;
              DOD_RETURN_IF_ERROR(reader.U8(&spilled_flag));
              if (spilled_flag > 1) {
                return Status::IoError("map checkpoint has unknown layout");
              }
              if (spilled_flag == 1) {
                // The task's shuffle output lives in spill runs, which a
                // crash deliberately leaves on disk (SpillGc destructors
                // never ran). Validate each run's backing file before
                // trusting the descriptor; a vanished or shrunken file
                // fails the restore and the task re-runs (self-healing).
                uint64_t num_runs = 0;
                DOD_RETURN_IF_ERROR(reader.U64(&num_runs));
                task.runs.clear();
                for (uint64_t i = 0; i < num_runs; ++i) {
                  internal::SpillRunInfo run;
                  DOD_RETURN_IF_ERROR(reader.String(&run.file));
                  DOD_RETURN_IF_ERROR(reader.U32(&run.partition));
                  DOD_RETURN_IF_ERROR(reader.U64(&run.records));
                  DOD_RETURN_IF_ERROR(reader.U64(&run.offset));
                  DOD_RETURN_IF_ERROR(reader.U64(&run.bytes));
                  DOD_RETURN_IF_ERROR(reader.U64(&run.checksum));
                  DOD_RETURN_IF_ERROR(reader.U64(&run.min_key));
                  DOD_RETURN_IF_ERROR(reader.U64(&run.max_key));
                  if (run.partition >= num_reduce) {
                    return Status::IoError(
                        "map checkpoint spill run has bad partition");
                  }
                  std::error_code ec;
                  const uint64_t size =
                      std::filesystem::file_size(run.file, ec);
                  if (ec || size < run.offset + run.bytes) {
                    return Status::IoError("map checkpoint spill run file " +
                                           run.file + " missing or short");
                  }
                  task.runs.push_back(std::move(run));
                }
                for (const internal::SpillRunInfo& run : task.runs) {
                  spill_gc.Track(run.file);
                }
                task.committed.assign(num_reduce,
                                      typename Buckets::value_type());
              } else {
                uint64_t num_buckets = 0;
                DOD_RETURN_IF_ERROR(reader.U64(&num_buckets));
                if (num_buckets != num_reduce) {
                  return Status::IoError(
                      "map checkpoint bucket count mismatch");
                }
                task.committed.assign(num_reduce,
                                      typename Buckets::value_type());
                for (auto& bucket : task.committed) {
                  uint64_t count = 0;
                  DOD_RETURN_IF_ERROR(reader.U64(&count));
                  if (count > reader.remaining() / sizeof(std::pair<K, V>)) {
                    return Status::IoError(
                        "map checkpoint bucket overruns payload");
                  }
                  bucket.resize(static_cast<size_t>(count));
                  DOD_RETURN_IF_ERROR(reader.Raw(
                      bucket.data(),
                      static_cast<size_t>(count) * sizeof(std::pair<K, V>)));
                }
              }
              if (spec.restore_extra) {
                DOD_RETURN_IF_ERROR(spec.restore_extra(
                    TaskPhase::kMap, static_cast<int>(split), reader));
              }
              return reader.ExpectDone();
            }();
            if (restored.ok()) {
              span.Arg("status", "ok");
              dmetrics.Increment(kCkptTasksResumed);
              return Status::Ok();
            }
            // Self-healing: a record that fails validation is discarded
            // and the task re-runs from scratch.
            span.Arg("status", "failed");
            dmetrics.Increment(kCkptLoadFailures);
            DOD_LOG(Warning)
                << "map task " << split << " checkpoint unusable ("
                << restored.ToString() << "); re-running";
            task.stats = JobStats();
            task.slot_costs.clear();
            task.committed = Buckets();
            task.runs.clear();
          }
        }
        task.staging.resize(num_reduce);
        if (split < spec.split_record_hints.size() &&
            spec.split_record_hints[split] > 0) {
          // Pre-size buckets from the split's expected record count, with
          // 50% headroom so a moderately skewed allocation still avoids
          // regrowth. reserve() survives the per-attempt clear() below.
          const uint64_t hint = spec.split_record_hints[split];
          const size_t per_bucket = static_cast<size_t>(
              hint / num_reduce + hint / (2 * num_reduce) + 1);
          const uint64_t reserve_bytes = static_cast<uint64_t>(per_bucket) *
                                         num_reduce *
                                         sizeof(std::pair<K, V>);
          if (spec.memory != nullptr &&
              !spec.memory->FitsAlone(reserve_bytes)) {
            // Deterministic degrade: emit into un-presized buckets (slower,
            // identical records) instead of reserving past the budget.
            dmetrics.Increment(kBudgetReserveSkipped);
          } else {
            for (auto& bucket : task.staging) bucket.reserve(per_bucket);
          }
        }
        const double scan_seconds =
            split < spec.split_input_bytes.size()
                ? static_cast<double>(spec.split_input_bytes[split]) /
                      read_bytes_per_second
                : 0.0;
        // One spiller (and run file) per task, reset at each attempt:
        // attempts are sequential and speculative duplicates are simulated
        // only (task_runner.h), so truncating the file cannot race and a
        // failed attempt leaves no orphan — its successor reuses the path.
        std::optional<internal::TaskSpiller<K, V>> spiller;
        if (spilling) {
          spiller.emplace(internal::SpillFilePath(spill_dir, "map",
                                                  static_cast<int>(split)),
                          &spill_gc);
        }
        const Status run_status = runner.RunTask(
            TaskPhase::kMap, static_cast<int>(split), scan_seconds,
            [&](int attempt) -> Status {
              for (auto& bucket : task.staging) bucket.clear();
              task.accounting = internal::ShuffleAccounting{};
              if (spiller.has_value()) spiller->Reset();
              ShuffleFaultFilter filter(injector, TaskPhase::kMap,
                                        static_cast<int>(split), attempt);
              internal::ShuffleEmitter<K, V> emitter(
                  task.staging, partition, dense_partition, record_bytes,
                  record_size, task.accounting,
                  injector.enabled() ? &filter : nullptr,
                  spiller.has_value() ? &*spiller : nullptr, spill_threshold);
              const Status map_status = mapper.TryMap(split, emitter);
              task.stats.shuffle_records_dropped += filter.dropped();
              task.stats.shuffle_records_corrupted += filter.corrupted();
              if (!map_status.ok()) return map_status;
              if (spiller.has_value()) {
                // Tasks that spilled flush their remainder so the task's
                // records live entirely in runs; surface write errors as
                // attempt failures (retried like any task error).
                DOD_RETURN_IF_ERROR(spiller->Finish(task.staging));
              }
              task.worker_group = ThreadPool::CurrentWorkerGroup();
              return filter.AttemptStatus();
            },
            [&]() {
              task.committed = std::move(task.staging);
              if (spiller.has_value()) task.runs = spiller->TakeRuns();
              task.stats.records_shuffled += task.accounting.records;
              task.stats.bytes_shuffled += task.accounting.bytes;
            },
            task.stats, task.slot_costs);
        if (!run_status.ok()) return run_status;
        if constexpr (kCheckpointable) {
          if (spec.checkpoint != nullptr) {
            PayloadWriter payload;
            SerializeJobStatsDelta(task.stats, &payload);
            payload.F64Vec(task.slot_costs);
            if (!task.runs.empty()) {
              // Spilled task: checkpoint the run descriptors, not the data
              // — the runs themselves are already on disk and survive a
              // crash (see the restore path's validation).
              payload.U8(1);
              payload.U64(task.runs.size());
              for (const internal::SpillRunInfo& run : task.runs) {
                payload.String(run.file);
                payload.U32(run.partition);
                payload.U64(run.records);
                payload.U64(run.offset);
                payload.U64(run.bytes);
                payload.U64(run.checksum);
                payload.U64(run.min_key);
                payload.U64(run.max_key);
              }
            } else {
              payload.U8(0);
              payload.U64(task.committed.size());
              for (const auto& bucket : task.committed) {
                payload.U64(bucket.size());
                payload.Raw(bucket.data(),
                            bucket.size() * sizeof(std::pair<K, V>));
              }
            }
            if (spec.checkpoint_extra) {
              spec.checkpoint_extra(TaskPhase::kMap, static_cast<int>(split),
                                    payload);
            }
            persist_checkpoint(TaskPhase::kMap, static_cast<int>(split),
                               payload);
          }
        }
        return maybe_crash(TaskPhase::kMap, static_cast<int>(split));
      });
  }
  if (!map_status.ok()) {
    // Fold the completed tasks' accounting in so partial-progress stats
    // are available to the caller.
    stats.map_wall_seconds = map_wall.ElapsedSeconds();
    for (MapTaskState& task : map_tasks) {
      stats.MergeFrom(task.stats);
      stats.map_task_seconds.insert(stats.map_task_seconds.end(),
                                    task.slot_costs.begin(),
                                    task.slot_costs.end());
    }
    return fail_job(map_status);
  }
  stats.map_wall_seconds = map_wall.ElapsedSeconds();

  // Deterministic shuffle merge: split order, then bucket order. With no
  // spilled map task the records are concatenated into per-reduce buckets
  // exactly as before; when any task spilled, concatenation is deferred —
  // each reduce task instead gets an ordered segment list (in-memory
  // buckets of non-spilled tasks, disk runs of spilled ones, still in
  // (split, flush) order) that the grouping layer merges back together.
  bool any_spilled = false;
  for (const MapTaskState& task : map_tasks) {
    if (!task.runs.empty()) any_spilled = true;
  }
  Buckets buckets(num_reduce);
  // segments[r]: reduce task r's input pieces; empty unless any_spilled.
  std::vector<std::vector<internal::ShuffleSegment<K, V>>> segments;
  // group_records[r][g]: records of reduce task r produced by map tasks
  // that ran on worker group g — the placement-hint scorecard.
  const int exec_groups = executor.num_groups();
  std::vector<std::vector<uint64_t>> group_records(
      num_reduce, std::vector<uint64_t>(static_cast<size_t>(exec_groups), 0));
  {
    trace::Span shuffle_span("phase", "shuffle");
    stats.map_task_seconds.reserve(num_splits);
    if (any_spilled) segments.resize(num_reduce);
    try {
      for (MapTaskState& task : map_tasks) {
        stats.MergeFrom(task.stats);
        stats.map_task_seconds.insert(stats.map_task_seconds.end(),
                                      task.slot_costs.begin(),
                                      task.slot_costs.end());
        const bool count_group =
            task.worker_group >= 0 && task.worker_group < exec_groups;
        for (size_t r = 0; r < task.committed.size(); ++r) {
          if (count_group) {
            group_records[r][static_cast<size_t>(task.worker_group)] +=
                task.committed[r].size();
          }
        }
        for (const internal::SpillRunInfo& run : task.runs) {
          if (count_group) {
            group_records[run.partition]
                         [static_cast<size_t>(task.worker_group)] +=
                run.records;
          }
        }
        if (!any_spilled) {
          for (size_t r = 0; r < task.committed.size(); ++r) {
            auto& committed = buckets[r];
            auto& staged = task.committed[r];
            committed.insert(committed.end(),
                             std::make_move_iterator(staged.begin()),
                             std::make_move_iterator(staged.end()));
          }
          // Free the per-task buffers eagerly; the shuffle owns the data.
          task.committed = Buckets();
        } else {
          // Segment mode: the per-task buckets stay alive (map_tasks
          // outlives the reduce phase) and are referenced in place.
          if (task.runs.empty()) {
            for (size_t r = 0; r < task.committed.size(); ++r) {
              if (task.committed[r].empty()) continue;
              segments[r].push_back(internal::ShuffleSegment<K, V>{
                  &task.committed[r], nullptr});
            }
          } else {
            // Runs were flushed in time-slice order and each carries its
            // partition; appending in recorded order preserves emission
            // order per reduce task.
            for (const internal::SpillRunInfo& run : task.runs) {
              segments[run.partition].push_back(
                  internal::ShuffleSegment<K, V>{nullptr, &run});
            }
          }
        }
        task.staging = Buckets();
      }
    } catch (const std::bad_alloc&) {
      return fail_job(Status::ResourceExhausted(
          "shuffle merge failed to allocate the merged buckets"));
    }
    stats.records_mapped = stats.records_shuffled;
    shuffle_span.Arg("records", stats.records_shuffled)
        .Arg("bytes", stats.bytes_shuffled);
  }

  // Placement hints: schedule reduce task r onto the worker group whose
  // map tasks produced the plurality of its input (ties to the lowest
  // group; -1 = no preference). Hints steer scheduling only — results and
  // error selection are placement-independent — and because retries run
  // inside one submitted pool closure, a hint stays pinned through every
  // attempt of its task, including speculative re-execution.
  std::vector<int> reduce_hints(num_reduce, -1);
  if (exec_groups > 1) {
    for (size_t r = 0; r < num_reduce; ++r) {
      uint64_t best = 0;
      for (int g = 0; g < exec_groups; ++g) {
        if (group_records[r][static_cast<size_t>(g)] > best) {
          best = group_records[r][static_cast<size_t>(g)];
          reduce_hints[r] = g;
        }
      }
    }
  }

  // Stop-condition check at the phase boundary: don't start reducing work
  // that a fired deadline or cancellation has already doomed.
  if (spec.control != nullptr) {
    Status control_status = spec.control->Check();
    if (!control_status.ok()) return fail_job(std::move(control_status));
  }

  // ---- Reduce phase (group + reduce, per task) --------------------------
  struct ReduceTaskState {
    std::vector<Out> staged;
    std::vector<Out> committed;
    Counters counters;
    uint64_t groups = 0;
    internal::GroupPath group_path = internal::GroupPath::kSorted;
    internal::FallbackReason fallback = internal::FallbackReason::kNone;
    // Reduce-side spill degrade (see GroupBucketOrSpill): the bucket,
    // sorted and written out as runs so the columnar histogram could run
    // without it resident. Task-level so a retry regroups from the
    // existing runs instead of re-spilling an already-freed bucket.
    std::vector<internal::SpillRunInfo> spill_runs;
    double group_seconds = 0.0;
    JobStats stats;
    std::vector<double> slot_costs;
  };
  std::vector<ReduceTaskState> reduce_tasks(buckets.size());
  StopWatch reduce_wall;
  Status reduce_status;
  {
    trace::Span phase_span("phase", "reduce");
    phase_span.Arg("tasks", static_cast<uint64_t>(buckets.size()))
        .Arg("shuffle", ShuffleModeName(spec.shuffle));
    reduce_status = executor.RunTasks(
      buckets.size(), [&](size_t index) -> Status {
        ReduceTaskState& task = reduce_tasks[index];
        auto& bucket = buckets[index];
        if constexpr (kCheckpointable) {
          if (spec.checkpoint != nullptr && spec.resume &&
              spec.checkpoint->HasTask("reduce", static_cast<int>(index))) {
            trace::Span span("durability", "checkpoint_restore");
            span.Arg("phase", "reduce")
                .Arg("task", static_cast<uint64_t>(index));
            Status restored = [&]() -> Status {
              DOD_ASSIGN_OR_RETURN(std::string payload,
                                   spec.checkpoint->LoadTask(
                                       "reduce", static_cast<int>(index)));
              PayloadReader reader(payload);
              DOD_RETURN_IF_ERROR(
                  DeserializeJobStatsDelta(&reader, &task.stats));
              DOD_RETURN_IF_ERROR(reader.F64Vec(&task.slot_costs));
              uint8_t path = 0;
              DOD_RETURN_IF_ERROR(reader.U8(&path));
              if (path > static_cast<uint8_t>(
                             internal::GroupPath::kSortedSpilled)) {
                return Status::IoError(
                    "reduce checkpoint has unknown group path");
              }
              task.group_path = static_cast<internal::GroupPath>(path);
              uint8_t reason = 0;
              DOD_RETURN_IF_ERROR(reader.U8(&reason));
              if (reason > static_cast<uint8_t>(
                               internal::FallbackReason::kSpill)) {
                return Status::IoError(
                    "reduce checkpoint has unknown fallback reason");
              }
              task.fallback = static_cast<internal::FallbackReason>(reason);
              DOD_RETURN_IF_ERROR(reader.F64(&task.group_seconds));
              uint64_t count = 0;
              DOD_RETURN_IF_ERROR(reader.U64(&count));
              if (count > reader.remaining() / sizeof(Out)) {
                return Status::IoError(
                    "reduce checkpoint output overruns payload");
              }
              task.committed.resize(static_cast<size_t>(count));
              DOD_RETURN_IF_ERROR(
                  reader.Raw(task.committed.data(),
                             static_cast<size_t>(count) * sizeof(Out)));
              if (spec.restore_extra) {
                DOD_RETURN_IF_ERROR(spec.restore_extra(
                    TaskPhase::kReduce, static_cast<int>(index), reader));
              }
              return reader.ExpectDone();
            }();
            if (restored.ok()) {
              span.Arg("status", "ok");
              dmetrics.Increment(kCkptTasksResumed);
              return Status::Ok();
            }
            span.Arg("status", "failed");
            dmetrics.Increment(kCkptLoadFailures);
            DOD_LOG(Warning)
                << "reduce task " << index << " checkpoint unusable ("
                << restored.ToString() << "); re-running";
            task.stats = JobStats();
            task.slot_costs.clear();
            task.committed = std::vector<Out>();
          }
        }
        const Status run_status = runner.RunTask(
            TaskPhase::kReduce, static_cast<int>(index),
            /*extra_seconds=*/0.0,
            [&](int /*attempt*/) -> Status {
              task.staged.clear();
              task.counters = Counters();
              task.groups = 0;
              // Grouping is part of the attempt's cost, like Hadoop's
              // reducer-side sort, and idempotent: the sorted path's
              // in-place stable sort, the columnar path's scratch rebuild,
              // and the spilled paths' re-merge of immutable runs all
              // re-run safely after a failure. Every path yields identical
              // groups (see mapreduce/shuffle.h and mapreduce/spill.h), so
              // job output depends on neither the mode nor the spilling.
              StopWatch group_watch;
              internal::GroupScratch<K, V> scratch;
              std::optional<GroupedView<K, V>> groups;
              std::vector<internal::ShuffleSegment<K, V>> segment_scratch;
              if (any_spilled) {
                // Spilled shuffle: group the segment list (memory buckets
                // of non-spilled map tasks + disk runs of spilled ones).
                auto grouped = internal::GroupSegments(
                    segments[index], spec.shuffle, &scratch,
                    &task.group_path, &task.fallback, spec.memory);
                if (!grouped.ok()) return grouped.status();
                groups.emplace(std::move(grouped).value());
              } else if (spilling) {
                // In-memory bucket, spill directory available: the budget
                // guard can degrade to spill-then-stream instead of the
                // sorted-only fallback.
                auto grouped = internal::GroupBucketOrSpill(
                    bucket, spec.shuffle, &scratch, &task.group_path,
                    &task.fallback, spec.memory, spec.spill,
                    internal::SpillFilePath(spill_dir, "reduce",
                                            static_cast<int>(index)),
                    &spill_gc, &task.spill_runs, &segment_scratch);
                if (!grouped.ok()) return grouped.status();
                groups.emplace(std::move(grouped).value());
              } else {
                groups.emplace(internal::GroupBucket(bucket, spec.shuffle,
                                                     &scratch,
                                                     &task.group_path,
                                                     spec.memory));
                task.fallback = internal::ReasonFromPath(task.group_path);
              }
              task.group_seconds = group_watch.ElapsedSeconds();
              DOD_RETURN_IF_ERROR(reducer.TryReduceTask(*groups, task.staged,
                                                        task.counters));
              task.groups = groups->num_groups();
              return Status::Ok();
            },
            [&]() {
              task.committed = std::move(task.staged);
              task.stats.counters.MergeFrom(task.counters);
              task.stats.groups_reduced += task.groups;
            },
            task.stats, task.slot_costs);
        if (!run_status.ok()) return run_status;
        if constexpr (kCheckpointable) {
          if (spec.checkpoint != nullptr) {
            PayloadWriter payload;
            SerializeJobStatsDelta(task.stats, &payload);
            payload.F64Vec(task.slot_costs);
            payload.U8(static_cast<uint8_t>(task.group_path));
            payload.U8(static_cast<uint8_t>(task.fallback));
            payload.F64(task.group_seconds);
            payload.U64(task.committed.size());
            payload.Raw(task.committed.data(),
                        task.committed.size() * sizeof(Out));
            if (spec.checkpoint_extra) {
              spec.checkpoint_extra(TaskPhase::kReduce,
                                    static_cast<int>(index), payload);
            }
            persist_checkpoint(TaskPhase::kReduce, static_cast<int>(index),
                               payload);
          }
        }
        return maybe_crash(TaskPhase::kReduce, static_cast<int>(index));
      },
      [&](size_t index) { return reduce_hints[index]; });
  }
  if (!reduce_status.ok()) {
    stats.reduce_wall_seconds = reduce_wall.ElapsedSeconds();
    for (ReduceTaskState& task : reduce_tasks) {
      stats.MergeFrom(task.stats);
      stats.reduce_task_seconds.insert(stats.reduce_task_seconds.end(),
                                       task.slot_costs.begin(),
                                       task.slot_costs.end());
    }
    return fail_job(reduce_status);
  }
  stats.reduce_wall_seconds = reduce_wall.ElapsedSeconds();

  // Deterministic output commit: reduce-task index order.
  stats.reduce_task_seconds.reserve(buckets.size());
  for (ReduceTaskState& task : reduce_tasks) {
    stats.MergeFrom(task.stats);
    stats.reduce_task_seconds.insert(stats.reduce_task_seconds.end(),
                                     task.slot_costs.begin(),
                                     task.slot_costs.end());
    for (Out& out : task.committed) result.output.push_back(std::move(out));
    task.committed = std::vector<Out>();
  }

  // ---- Derive cluster-stage times ---------------------------------------
  // Blacklisted nodes' slots are gone; the surviving slots absorb all
  // charged attempt costs (including failures, backoff, and speculation).
  const int blacklisted = runner.blacklisted_nodes();
  stats.nodes_blacklisted = static_cast<uint64_t>(blacklisted);
  stats.stage_times.map_seconds = Makespan(
      stats.map_task_seconds, spec.cluster.usable_map_slots(blacklisted));
  stats.stage_times.shuffle_seconds =
      static_cast<double>(stats.bytes_shuffled) /
      spec.cluster.ShuffleBytesPerSecond();
  stats.stage_times.reduce_seconds =
      Makespan(stats.reduce_task_seconds,
               spec.cluster.usable_reduce_slots(blacklisted));
  stats.wall_seconds = wall.ElapsedSeconds();

  // Fold the job's totals into the process-wide metrics registry. Every
  // value is a sum (or max) of per-task deltas, so — like the JobStats
  // merge — the recorded metrics are independent of scheduling order.
  {
    MetricsRegistry& metrics = MetricsRegistry::Global();
    static const uint32_t kJobs = metrics.Id("mr.jobs", MetricKind::kCounter);
    static const uint32_t kMapTasks =
        metrics.Id("mr.map_tasks", MetricKind::kCounter);
    static const uint32_t kReduceTasks =
        metrics.Id("mr.reduce_tasks", MetricKind::kCounter);
    static const uint32_t kAttempts =
        metrics.Id("mr.task_attempts", MetricKind::kCounter);
    static const uint32_t kFailures =
        metrics.Id("mr.task_failures", MetricKind::kCounter);
    static const uint32_t kRetries =
        metrics.Id("mr.task_retries", MetricKind::kCounter);
    static const uint32_t kSpeculative =
        metrics.Id("mr.speculative_attempts", MetricKind::kCounter);
    static const uint32_t kRecords =
        metrics.Id("mr.records_shuffled", MetricKind::kCounter);
    static const uint32_t kBytes =
        metrics.Id("mr.bytes_shuffled", MetricKind::kCounter);
    static const uint32_t kGroups =
        metrics.Id("mr.groups_reduced", MetricKind::kCounter);
    static const uint32_t kShuffleColumnar =
        metrics.Id("mr.shuffle.columnar_tasks", MetricKind::kCounter);
    static const uint32_t kShuffleSorted =
        metrics.Id("mr.shuffle.sorted_tasks", MetricKind::kCounter);
    static const uint32_t kShuffleFallback =
        metrics.Id("mr.shuffle.fallback_tasks", MetricKind::kCounter);
    static const uint32_t kShuffleBudgetFallback =
        metrics.Id("mr.shuffle.budget_fallback_tasks", MetricKind::kCounter);
    static const uint32_t kShuffleColumnarSpilled = metrics.Id(
        "mr.shuffle.columnar_spilled_tasks", MetricKind::kCounter);
    static const uint32_t kShuffleSortedSpilled =
        metrics.Id("mr.shuffle.sorted_spilled_tasks", MetricKind::kCounter);
    // Reason-labeled fallback counters: which guard pushed a columnar-
    // requested task off the counting-sort fast path (see FallbackReason).
    static const uint32_t kFallbackDensity =
        metrics.Id("mr.shuffle.fallback.density", MetricKind::kCounter);
    static const uint32_t kFallbackBudget =
        metrics.Id("mr.shuffle.fallback.budget", MetricKind::kCounter);
    static const uint32_t kFallbackSpill =
        metrics.Id("mr.shuffle.fallback.spill", MetricKind::kCounter);
    static const uint32_t kShuffleGroupSeconds =
        metrics.Id("mr.shuffle.group_seconds", MetricKind::kHistogram);
    static const uint32_t kSpillMapTasks =
        metrics.Id("mr.spill.map_tasks", MetricKind::kCounter);
    static const uint32_t kSpillReduceTasks =
        metrics.Id("mr.spill.reduce_tasks", MetricKind::kCounter);
    static const uint32_t kSpillRunsWritten =
        metrics.Id("mr.spill.runs_written", MetricKind::kCounter);
    static const uint32_t kSpillBytesWritten =
        metrics.Id("mr.spill.bytes_written", MetricKind::kCounter);
    static const uint32_t kSpillRunsMerged =
        metrics.Id("mr.spill.runs_merged", MetricKind::kCounter);
    static const uint32_t kSpillBytesRead =
        metrics.Id("mr.spill.bytes_read", MetricKind::kCounter);
    static const uint32_t kSpillRunRecords =
        metrics.Id("mr.spill.run_records", MetricKind::kHistogram);
    static const uint32_t kWorkerGroups =
        metrics.Id("runtime.worker_groups", MetricKind::kGauge);
    static const uint32_t kStealLocal =
        metrics.Id("runtime.steal.local", MetricKind::kCounter);
    static const uint32_t kStealRemote =
        metrics.Id("runtime.steal.remote", MetricKind::kCounter);
    static const uint32_t kThreads =
        metrics.Id("mr.threads_used", MetricKind::kGauge);
    static const uint32_t kMapSlot =
        metrics.Id("mr.map_slot_seconds", MetricKind::kHistogram);
    static const uint32_t kReduceSlot =
        metrics.Id("mr.reduce_slot_seconds", MetricKind::kHistogram);
    static const uint32_t kJobWall =
        metrics.Id("mr.job_wall_seconds", MetricKind::kHistogram);
    metrics.Increment(kJobs);
    metrics.Increment(kMapTasks, static_cast<uint64_t>(num_splits));
    metrics.Increment(kReduceTasks, static_cast<uint64_t>(buckets.size()));
    metrics.Increment(kAttempts, stats.task_attempts);
    metrics.Increment(kFailures, stats.task_failures);
    metrics.Increment(kRetries, stats.task_retries);
    metrics.Increment(kSpeculative, stats.speculative_attempts);
    metrics.Increment(kRecords, stats.records_shuffled);
    metrics.Increment(kBytes, stats.bytes_shuffled);
    metrics.Increment(kGroups, stats.groups_reduced);
    for (const ReduceTaskState& task : reduce_tasks) {
      switch (task.group_path) {
        case internal::GroupPath::kColumnar:
          metrics.Increment(kShuffleColumnar);
          break;
        case internal::GroupPath::kSorted:
          metrics.Increment(kShuffleSorted);
          break;
        case internal::GroupPath::kSortedFallback:
          metrics.Increment(kShuffleFallback);
          break;
        case internal::GroupPath::kSortedBudget:
          metrics.Increment(kShuffleBudgetFallback);
          metrics.Increment(kBudgetShuffleFallbacks);
          break;
        case internal::GroupPath::kColumnarSpilled:
          metrics.Increment(kShuffleColumnarSpilled);
          break;
        case internal::GroupPath::kSortedSpilled:
          metrics.Increment(kShuffleSortedSpilled);
          break;
      }
      switch (task.fallback) {
        case internal::FallbackReason::kNone:
          break;
        case internal::FallbackReason::kDensity:
          metrics.Increment(kFallbackDensity);
          break;
        case internal::FallbackReason::kBudget:
          metrics.Increment(kFallbackBudget);
          break;
        case internal::FallbackReason::kSpill:
          metrics.Increment(kFallbackSpill);
          break;
      }
      metrics.Observe(kShuffleGroupSeconds, task.group_seconds);
    }
    // Spill accounting, from the committed run descriptors — failed
    // attempts' truncated files never show up here.
    for (const MapTaskState& task : map_tasks) {
      if (task.runs.empty()) continue;
      metrics.Increment(kSpillMapTasks);
      for (const internal::SpillRunInfo& run : task.runs) {
        metrics.Increment(kSpillRunsWritten);
        metrics.Increment(kSpillBytesWritten, run.bytes);
        metrics.Observe(kSpillRunRecords,
                        static_cast<double>(run.records));
      }
    }
    for (const ReduceTaskState& task : reduce_tasks) {
      if (task.spill_runs.empty()) continue;
      metrics.Increment(kSpillReduceTasks);
      for (const internal::SpillRunInfo& run : task.spill_runs) {
        metrics.Increment(kSpillRunsWritten);
        metrics.Increment(kSpillBytesWritten, run.bytes);
        metrics.Observe(kSpillRunRecords,
                        static_cast<double>(run.records));
        metrics.Increment(kSpillRunsMerged);
        metrics.Increment(kSpillBytesRead, run.bytes);
      }
    }
    for (const auto& segment_list : segments) {
      for (const internal::ShuffleSegment<K, V>& segment : segment_list) {
        if (segment.run == nullptr) continue;
        metrics.Increment(kSpillRunsMerged);
        metrics.Increment(kSpillBytesRead, segment.run->bytes);
      }
    }
    metrics.SetMax(kWorkerGroups, static_cast<double>(exec_groups));
    // Steal-locality scorecard of this job's pool. Scheduling-dependent,
    // hence exempt from the metric-determinism contract (observability
    // tests treat the runtime.steal.* prefix like timing metrics).
    metrics.Increment(kStealLocal, executor.local_steals());
    metrics.Increment(kStealRemote, executor.remote_steals());
    metrics.SetMax(kThreads, static_cast<double>(stats.threads_used));
    for (double seconds : stats.map_task_seconds) {
      metrics.Observe(kMapSlot, seconds);
    }
    for (double seconds : stats.reduce_task_seconds) {
      metrics.Observe(kReduceSlot, seconds);
    }
    metrics.Observe(kJobWall, stats.wall_seconds);
    if (spec.memory != nullptr) {
      metrics.SetMax(kBudgetPeakBytes,
                     static_cast<double>(spec.memory->peak_bytes()));
    }
  }
  // The job committed: its spill runs are garbage now even when a
  // checkpoint store references them (see set_keep_files above).
  spill_gc.set_keep_files(false);
  return result;
}

}  // namespace dod

#endif  // DOD_MAPREDUCE_JOB_H_
