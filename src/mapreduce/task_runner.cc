// Copyright 2026 The DOD Authors.

#include "mapreduce/task_runner.h"

#include <cmath>
#include <new>
#include <string>

#include "common/logging.h"
#include "common/timer.h"
#include "observability/trace.h"

namespace dod {

TaskRunner::TaskRunner(const RetryPolicy& policy, const FaultInjector& injector,
                       const ClusterSpec& cluster, const RunControl* control)
    : policy_(policy),
      injector_(injector),
      control_(control),
      num_nodes_(cluster.num_nodes),
      node_failures_(static_cast<size_t>(cluster.num_nodes), 0),
      node_blacklisted_(static_cast<size_t>(cluster.num_nodes), false) {
  DOD_CHECK(policy.max_task_attempts >= 1);
}

int TaskRunner::blacklisted_nodes() const {
  std::lock_guard<std::mutex> lock(node_mutex_);
  return blacklisted_count_;
}

int TaskRunner::AssignNodeLocked(TaskPhase phase, int task_index,
                                 int attempt) const {
  const int base = injector_.NodeFor(phase, task_index, attempt, num_nodes_);
  // Blacklisted nodes receive no new attempts; probe to the next healthy
  // one. If every node is blacklisted the schedule degenerates but the job
  // still runs (the cluster keeps at least one usable slot).
  for (int i = 0; i < num_nodes_; ++i) {
    const int node = (base + i) % num_nodes_;
    if (!node_blacklisted_[static_cast<size_t>(node)]) return node;
  }
  return base;
}

void TaskRunner::RecordNodeFailure(TaskPhase phase, int task_index,
                                   int attempt) {
  std::lock_guard<std::mutex> lock(node_mutex_);
  const int node = AssignNodeLocked(phase, task_index, attempt);
  auto& failures = node_failures_[static_cast<size_t>(node)];
  ++failures;
  if (policy_.node_failure_quota > 0 &&
      failures >= policy_.node_failure_quota &&
      !node_blacklisted_[static_cast<size_t>(node)]) {
    node_blacklisted_[static_cast<size_t>(node)] = true;
    ++blacklisted_count_;
  }
}

Status TaskRunner::RunTask(TaskPhase phase, int task_index,
                           double extra_seconds,
                           const std::function<Status(int attempt)>& attempt_body,
                           const std::function<void()>& commit,
                           JobStats& task_stats,
                           std::vector<double>& slot_costs) {
  Status last_status;
  FaultKind last_fault = FaultKind::kNone;
  int attempts = 0;
  for (int attempt = 0; attempt < policy_.max_task_attempts; ++attempt) {
    if (control_ != nullptr) {
      // A fired stop condition aborts the task before the attempt starts:
      // no attempt accounting, no node blame — the task simply did not run.
      Status control_status = control_->Check();
      if (!control_status.ok()) {
        return Status(control_status.code(),
                      std::string(TaskPhaseName(phase)) + " task " +
                          std::to_string(task_index) + " not started: " +
                          control_status.message());
      }
    }
    // Retries wait out an exponential backoff before occupying a slot; the
    // wait is simulated (charged, not slept).
    double backoff = 0.0;
    if (attempt > 0) {
      backoff = policy_.initial_backoff_seconds *
                std::pow(policy_.backoff_multiplier, attempt - 1);
      task_stats.backoff_seconds += backoff;
      ++task_stats.task_retries;
    }
    ++task_stats.task_attempts;
    ++attempts;

    const FaultKind fault = injector_.TaskFault(phase, task_index, attempt);
    const ScopedLogTag tag(std::string(TaskPhaseName(phase)) +
                           std::to_string(task_index) + ".a" +
                           std::to_string(attempt));
    // One trace span per attempt; its args identify the attempt and carry
    // the injected fault and outcome, so spans reconcile exactly with the
    // task_attempts / task_failures counters.
    trace::Span span("task", phase == TaskPhase::kMap ? "map_attempt"
                                                      : "reduce_attempt");
    span.Arg("task", task_index).Arg("attempt", attempt);
    StopWatch watch;
    Status status;
    try {
      status = attempt_body(attempt);
    } catch (const std::bad_alloc&) {
      // Project code is exception-free, but the standard library's
      // allocators are not; surface allocation failure as the structured
      // budget error instead of tearing down the process.
      status = Status::ResourceExhausted(
          std::string(TaskPhaseName(phase)) + " task " +
          std::to_string(task_index) + " attempt " + std::to_string(attempt) +
          " failed to allocate (std::bad_alloc)");
    }
    const double measured = watch.ElapsedSeconds();

    if (status.ok() && fault == FaultKind::kTaskFailure) {
      status = Status::Unavailable("injected task-failure");
    }
    if (fault != FaultKind::kNone) span.Arg("fault", FaultKindName(fault));
    span.Arg("status", status.ok() ? "ok" : "failed");
    if (!status.ok() && IsTerminalTaskStatus(status.code())) {
      // Not a task fault: a run-level stop condition or an exhausted
      // budget that a retry would only hit again. Charge the spent slot
      // time and propagate immediately — no node blame, no retries.
      slot_costs.push_back(measured + extra_seconds + backoff);
      ++task_stats.task_failures;
      return status;
    }
    if (!status.ok()) {
      // The attempt did its work before dying; its slot time is spent.
      slot_costs.push_back(measured + extra_seconds + backoff);
      ++task_stats.task_failures;
      RecordNodeFailure(phase, task_index, attempt);
      last_status = status;
      last_fault = fault;
      continue;
    }

    if (fault == FaultKind::kStraggler) {
      const double multiplier = injector_.spec().straggler_multiplier;
      const double slow = (measured + extra_seconds) * multiplier + backoff;
      const bool speculate =
          policy_.speculative_execution &&
          multiplier >= policy_.speculation_slowness_threshold;
      if (speculate) {
        // Duplicate attempt on another slot; distinct attempt index keeps
        // its fault draws independent of the regular attempt sequence.
        const int dup_attempt = policy_.max_task_attempts + attempt;
        const FaultKind dup_fault =
            injector_.TaskFault(phase, task_index, dup_attempt);
        ++task_stats.task_attempts;
        ++task_stats.speculative_attempts;
        {
          // The duplicate is simulated (charged, not re-executed), but it
          // is an attempt: give it its own zero-length span so span counts
          // keep matching task_attempts.
          trace::Span dup_span("task", phase == TaskPhase::kMap
                                           ? "map_attempt"
                                           : "reduce_attempt");
          dup_span.Arg("task", task_index)
              .Arg("attempt", dup_attempt)
              .Arg("speculative", 1);
          if (dup_fault != FaultKind::kNone) {
            dup_span.Arg("fault", FaultKindName(dup_fault));
          }
          dup_span.Arg("status",
                       dup_fault == FaultKind::kTaskFailure ? "failed" : "ok");
        }
        const double dup_cost =
            dup_fault == FaultKind::kStraggler
                ? (measured + extra_seconds) * multiplier
                : measured + extra_seconds;
        if (dup_fault == FaultKind::kTaskFailure) {
          // The duplicate died; the straggler completes and wins.
          ++task_stats.task_failures;
          RecordNodeFailure(phase, task_index, dup_attempt);
        } else if (dup_cost < slow) {
          // First finisher wins; the straggler is killed but its slot time
          // was spent (Hadoop charges the loser).
          ++task_stats.speculative_wins;
        }
        slot_costs.push_back(dup_cost);
      }
      slot_costs.push_back(slow);
      commit();
      return Status::Ok();
    }

    slot_costs.push_back(measured + extra_seconds + backoff);
    commit();
    return Status::Ok();
  }

  const StatusCode code = last_status.code() == StatusCode::kOk
                              ? StatusCode::kUnavailable
                              : last_status.code();
  std::string message = std::string(TaskPhaseName(phase)) + " task " +
                        std::to_string(task_index) + " failed after " +
                        std::to_string(attempts) + " attempts";
  if (last_fault != FaultKind::kNone) {
    // Poisoned-shuffle and user-status failures already describe themselves
    // in the attempt status; injected task faults are named here.
    message += std::string(" (last fault: ") + FaultKindName(last_fault) + ")";
  }
  message += ": " + last_status.message();
  return Status(code, std::move(message));
}

}  // namespace dod
