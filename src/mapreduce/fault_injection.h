// Copyright 2026 The DOD Authors.
//
// Deterministic fault injection for the MapReduce engine.
//
// The paper's testbed is a 40-node Hadoop cluster (Sec. VI-A) where task
// failures and stragglers are routine; the engine must survive them. This
// module supplies the *adversary*: a seedable injector that decides, purely
// as a function of (seed, phase, task, attempt[, record]), whether a task
// attempt crashes, runs slow, or has shuffle records dropped/corrupted in
// flight. Because every decision is a pure hash of its coordinates, a run
// with a given FaultSpec is exactly reproducible — the property the
// fault-tolerance tests rely on — and is independent of the order in which
// attempts are scheduled.
//
// Shuffle faults model detectable transport errors (Hadoop checksums map
// output): a dropped or corrupted record poisons the whole attempt, which
// then fails and is retried, so committed job output is never wrong.

#ifndef DOD_MAPREDUCE_FAULT_INJECTION_H_
#define DOD_MAPREDUCE_FAULT_INJECTION_H_

#include <cstdint>
#include <limits>

#include "common/status.h"

namespace dod {

// Which side of the job a task belongs to.
enum class TaskPhase { kMap, kReduce };

// "map" / "reduce".
const char* TaskPhaseName(TaskPhase phase);

// What the injector did to a task attempt or shuffle record.
enum class FaultKind {
  kNone = 0,
  kTaskFailure,     // the attempt crashes after doing its work
  kStraggler,       // the attempt completes but runs `straggler_multiplier`× slow
  kShuffleDrop,     // one emitted record lost in flight (detected, attempt fails)
  kShuffleCorrupt,  // one emitted record corrupted (detected, attempt fails)
};

// Stable human-readable name, e.g. "task-failure".
const char* FaultKindName(FaultKind kind);

// Per-job fault configuration, carried by JobSpec.
struct FaultSpec {
  // Master switch; when false the injector is a no-op regardless of rates.
  bool enabled = false;
  // Seed of every injection decision. Identical seeds (and rates) yield
  // identical fault schedules across runs.
  uint64_t seed = 1;

  // Per-attempt probability that a task attempt fails outright.
  double task_failure_prob = 0.0;
  // Per-attempt probability that an attempt straggles, and how slow it runs.
  double straggler_prob = 0.0;
  double straggler_multiplier = 4.0;
  // Per-record probabilities of shuffle loss/corruption during map attempts.
  double shuffle_drop_prob = 0.0;
  double shuffle_corrupt_prob = 0.0;

  // Attempts with index >= this value are never faulted, making every
  // injected fault transient once the retry budget exceeds it. The default
  // leaves faults unrestricted (a task can fail its whole budget).
  int max_faulty_attempts_per_task = std::numeric_limits<int>::max();

  // Crash injection for durability testing: kill the *job* right after the
  // task (crash_phase, crash_at_task) commits — and, when checkpointing is
  // on, after its checkpoint is durably recorded. With `crash_exit` the
  // whole process dies via _Exit(42), simulating a kill -9 for the
  // crash-recovery CI leg; otherwise the job returns a structured
  // kUnavailable error. -1 disables. Unlike the probabilistic rates above,
  // the crash fires regardless of `enabled` (it is an engine-level switch,
  // not an injector decision).
  int crash_at_task = -1;
  TaskPhase crash_phase = TaskPhase::kReduce;
  bool crash_exit = false;
};

// Stateless decision oracle over a FaultSpec. Const and cheap; one instance
// serves a whole job.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultSpec& spec) : spec_(spec) {}

  const FaultSpec& spec() const { return spec_; }
  bool enabled() const { return spec_.enabled; }

  // Task-level fault for one attempt: kNone, kTaskFailure, or kStraggler.
  FaultKind TaskFault(TaskPhase phase, int task_index, int attempt) const;

  // Record-level fault for the `record_seq`-th record emitted by one map
  // attempt: kNone, kShuffleDrop, or kShuffleCorrupt.
  FaultKind ShuffleRecordFault(TaskPhase phase, int task_index, int attempt,
                               uint64_t record_seq) const;

  // Deterministic node assignment for an attempt, in [0, num_nodes).
  int NodeFor(TaskPhase phase, int task_index, int attempt,
              int num_nodes) const;

 private:
  FaultSpec spec_;
};

// Per-attempt filter the shuffle emitter consults for every emitted record.
// Tracks the record sequence number and remembers the first poisoning fault:
// an attempt with any dropped or corrupted record must fail (checksum
// detection) so that committed output equals the fault-free output.
class ShuffleFaultFilter {
 public:
  ShuffleFaultFilter(const FaultInjector& injector, TaskPhase phase,
                     int task_index, int attempt)
      : injector_(injector),
        phase_(phase),
        task_index_(task_index),
        attempt_(attempt) {}

  // Fault verdict for the next emitted record. kShuffleDrop means the record
  // must not be buffered; kShuffleCorrupt buffers it (it is discarded with
  // the failed attempt anyway).
  FaultKind Next() {
    const FaultKind kind = injector_.ShuffleRecordFault(
        phase_, task_index_, attempt_, record_seq_++);
    if (kind == FaultKind::kShuffleDrop) ++dropped_;
    if (kind == FaultKind::kShuffleCorrupt) ++corrupted_;
    return kind;
  }

  uint64_t dropped() const { return dropped_; }
  uint64_t corrupted() const { return corrupted_; }

  // OK when no record was poisoned; otherwise the failure this attempt must
  // report.
  Status AttemptStatus() const;

 private:
  const FaultInjector& injector_;
  TaskPhase phase_;
  int task_index_;
  int attempt_;
  uint64_t record_seq_ = 0;
  uint64_t dropped_ = 0;
  uint64_t corrupted_ = 0;
};

}  // namespace dod

#endif  // DOD_MAPREDUCE_FAULT_INJECTION_H_
