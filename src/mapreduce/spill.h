// Copyright 2026 The DOD Authors.
//
// Spill-to-disk shuffle runs: the memory-locality layer that lets a job
// whose shuffle would not fit in memory degrade to bounded-residency disk
// runs instead of failing — with byte-identical output.
//
// Map side: when a map attempt's emitted bytes cross the spill threshold,
// every non-empty partition bucket is stable-sorted by key and appended to
// the task's run file as one framed run (header: magic, partition, record
// count, payload bytes, FNV-1a checksum, min/max key; then the raw
// trivially-copyable records — the durability PayloadWriter codec). The
// buckets are then cleared, so resident shuffle state stays bounded by the
// threshold. A task that spilled once flushes its remainder at attempt end,
// so a task's records live either entirely in memory or entirely in runs.
//
// Reduce side: a reduce task's input becomes an ordered list of segments —
// in-memory buckets of non-spilled map tasks plus disk runs of spilled
// ones, in (split, flush) order. Grouping happens either by a two-pass
// counting-sort histogram streamed over the segments (columnar) or by a
// loser-tree k-way merge of the stably-sorted segments with ordinal
// tie-breaking (sorted). Both orders equal a stable sort of the
// concatenated emission-order records, which is exactly what the in-memory
// paths produce — so spilling is invisible in the job output:
//
//  * runs are time-sliced (every record of flush i was emitted before any
//    record of flush i+1) and each flush is stably sorted, so scanning a
//    task's runs in flush order visits equal keys in emission order;
//  * the loser tree breaks key ties by segment ordinal, and merging
//    stably-sorted segments with ordinal tie-breaks reproduces the stable
//    sort of their concatenation;
//  * the columnar scatter visits segments in the same order, so each
//    group's column comes out in emission order, matching the in-memory
//    counting sort.
//
// Attempt retries are safe: the run file is truncated at the start of each
// spilling attempt (attempts are sequential and speculative duplicates
// never execute, see mapreduce/task_runner.h), and only the winning
// attempt's run descriptors commit. SpillGc removes every tracked file
// when the job ends; a crash (no destructors) leaves the files for the
// checkpoint-resumed rerun, which re-registers them.

#ifndef DOD_MAPREDUCE_SPILL_H_
#define DOD_MAPREDUCE_SPILL_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <limits>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.h"
#include "durability/memory_budget.h"
#include "durability/payload.h"
#include "mapreduce/shuffle.h"
#include "observability/trace.h"

namespace dod {

// Where (and when) the shuffle spills. Orthogonal to ShuffleMode: both
// grouping paths accept spilled input. Carried by JobSpec/DodConfig.
struct SpillPolicy {
  // Spill directory; empty disables spilling entirely.
  std::string dir;
  // Per-map-task emitted-bytes threshold that triggers a flush. 0 derives
  // a default from the memory budget (limit / 4) or 64 MiB without one.
  uint64_t threshold_bytes = 0;

  bool enabled() const { return !dir.empty(); }

  // The threshold actually applied, wiring the policy through the job's
  // MemoryBudget when no explicit threshold is set.
  uint64_t EffectiveThreshold(const MemoryBudget* budget) const;
};

namespace internal {

inline constexpr uint32_t kSpillRunMagic = 0x4E525344;  // "DSRN"
// Spill-run frame header bytes: magic + partition (u32 each), records,
// payload bytes, checksum, min key, max key (u64 each).
inline constexpr size_t kSpillRunHeaderBytes = 2 * 4 + 5 * 8;
// Read granularity of the run cursors (bytes per refill).
inline constexpr size_t kSpillReadChunkBytes = size_t{1} << 16;

// One sorted run on disk: `bytes` of raw records at `offset` in `file`.
// min/max key are the unsigned bit-casts of the run's smallest/largest
// key in the *signed* K domain (the run is sorted by signed <; integral
// keys only, 0 otherwise). Decode with
// static_cast<K>(static_cast<make_unsigned_t<K>>(value)) before
// comparing — for mixed-sign runs the raw u64 values do not order, and
// max_key can sit below min_key.
struct SpillRunInfo {
  std::string file;
  uint32_t partition = 0;
  uint64_t records = 0;
  uint64_t offset = 0;
  uint64_t bytes = 0;
  uint64_t checksum = 0;
  uint64_t min_key = 0;
  uint64_t max_key = 0;
};

// <dir>/<phase>_<task>.runs — one file per task, truncated per attempt.
std::string SpillFilePath(const std::string& dir, const char* phase,
                          int task_index);

// Per-job namespace under the configured spill directory, so jobs that
// share a spill dir never truncate each other's live run files. A
// non-empty `job_scope` (the checkpoint store's dir + job key) hashes to
// a stable subdirectory — a resumed run lands where its crashed
// predecessor spilled, can re-register those files, and finally sweeps
// them; with an empty scope the name is unique per process and
// invocation (non-checkpointing jobs never resume).
std::string SpillJobDir(const std::string& dir, const std::string& job_scope);

// Job-scoped registry of spill files, removed best-effort on destruction
// along with the job's private spill subdirectory (the recursive sweep is
// what reclaims orphans a crashed predecessor with the same scope left —
// e.g. reduce-side runs whose tasks were restored from checkpoints and
// therefore never re-tracked). A hard crash skips destructors,
// deliberately leaving the files for the resumed run (which re-tracks
// map runs via the checkpoint restore path). A checkpointing job arms
// keep_files until it succeeds, so a structured failure preserves the
// runs its durable checkpoint records reference — the same contract as
// the real crash, just with destructors running.
class SpillGc {
 public:
  SpillGc() = default;
  ~SpillGc();
  SpillGc(const SpillGc&) = delete;
  SpillGc& operator=(const SpillGc&) = delete;

  // Thread-safe (map tasks spill concurrently); duplicates are fine.
  void Track(const std::string& file);

  // The job's private spill subdirectory, removed recursively at
  // destruction (unless keep_files is armed). Job-thread only.
  void TrackDir(const std::string& dir) { dir_ = dir; }

  // When true, destruction leaves the tracked files on disk. Job-thread
  // only: set before tasks run, cleared at the job's single success exit.
  void set_keep_files(bool keep) { keep_files_ = keep; }

 private:
  std::mutex mutex_;
  std::vector<std::string> files_;
  std::string dir_;
  bool keep_files_ = false;
};

template <typename K>
uint64_t SpillKeyCast(const K& key) {
  if constexpr (std::is_integral_v<K>) {
    using U = std::make_unsigned_t<K>;
    return static_cast<uint64_t>(static_cast<U>(key));
  } else {
    (void)key;
    return 0;
  }
}

// Writes one task's spill runs. One instance per map task (or per
// reduce-side degrade), driven by the ShuffleEmitter: Spill() flushes all
// non-empty buckets as sorted runs, Finish() flushes the remainder iff the
// task spilled at all. Errors are sticky; the attempt surfaces them.
template <typename K, typename V>
class TaskSpiller {
 public:
  using Buckets = std::vector<std::vector<std::pair<K, V>>>;

  TaskSpiller(std::string file, SpillGc* gc)
      : file_(std::move(file)), gc_(gc) {}

  // New attempt: truncate any previous attempt's partial file lazily (the
  // next Spill reopens with trunc) and forget its descriptors.
  void Reset() {
    if (out_.is_open()) out_.close();
    opened_ = false;
    offset_ = 0;
    runs_.clear();
    status_ = Status::Ok();
  }

  bool spilled() const { return !runs_.empty(); }
  const Status& status() const { return status_; }
  std::vector<SpillRunInfo> TakeRuns() { return std::move(runs_); }

  // Flushes every non-empty bucket as one sorted run and clears it.
  void Spill(Buckets& buckets) {
    if (!status_.ok()) return;
    if (!opened_) {
      out_.open(file_, std::ios::binary | std::ios::trunc);
      if (!out_) {
        status_ = Status::IoError("spill: cannot open run file " + file_);
        return;
      }
      opened_ = true;
      if (gc_ != nullptr) gc_->Track(file_);
    }
    trace::Span span("shuffle", "shuffle_spill");
    uint64_t spilled_records = 0;
    uint64_t spilled_bytes = 0;
    for (size_t p = 0; p < buckets.size(); ++p) {
      auto& bucket = buckets[p];
      if (bucket.empty()) continue;
      std::stable_sort(bucket.begin(), bucket.end(),
                       [](const std::pair<K, V>& a, const std::pair<K, V>& b) {
                         return a.first < b.first;
                       });
      const size_t payload_bytes = bucket.size() * sizeof(std::pair<K, V>);
      const std::string_view payload(
          reinterpret_cast<const char*>(bucket.data()), payload_bytes);
      SpillRunInfo run;
      run.file = file_;
      run.partition = static_cast<uint32_t>(p);
      run.records = bucket.size();
      run.bytes = payload_bytes;
      run.checksum = Fnv1a64(payload);
      run.min_key = SpillKeyCast(bucket.front().first);
      run.max_key = SpillKeyCast(bucket.back().first);
      PayloadWriter header;
      header.U32(kSpillRunMagic);
      header.U32(run.partition);
      header.U64(run.records);
      header.U64(run.bytes);
      header.U64(run.checksum);
      header.U64(run.min_key);
      header.U64(run.max_key);
      run.offset = offset_ + header.size();
      out_.write(header.str().data(),
                 static_cast<std::streamsize>(header.size()));
      out_.write(payload.data(), static_cast<std::streamsize>(payload_bytes));
      offset_ += header.size() + payload_bytes;
      runs_.push_back(std::move(run));
      spilled_records += bucket.size();
      spilled_bytes += payload_bytes;
      bucket.clear();  // capacity retained for the next fill
    }
    out_.flush();
    if (!out_) {
      status_ = Status::IoError("spill: write to run file " + file_ +
                                " failed");
      return;
    }
    span.Arg("records", spilled_records).Arg("bytes", spilled_bytes);
  }

  // Attempt end: a task that spilled flushes its remainder too, so its
  // records live either entirely in memory or entirely in runs.
  Status Finish(Buckets& buckets) {
    if (status_.ok() && spilled()) Spill(buckets);
    return status_;
  }

 private:
  std::string file_;
  SpillGc* gc_;
  std::ofstream out_;
  bool opened_ = false;
  uint64_t offset_ = 0;
  std::vector<SpillRunInfo> runs_;
  Status status_ = Status::Ok();
};

// Streams one run's records back in fixed-size chunks, folding the
// incremental checksum; the final refill verifies it against the header so
// a corrupted or truncated run degrades into a structured error the
// attempt can surface (and the engine can retry), never into bad groups.
template <typename K, typename V>
class SpillRunCursor {
 public:
  Status Open(const SpillRunInfo& run) {
    run_ = &run;
    in_.open(run.file, std::ios::binary);
    if (!in_) {
      return Status::IoError("spill: cannot open run file " + run.file);
    }
    in_.seekg(static_cast<std::streamoff>(run.offset));
    if (!in_) {
      return Status::IoError("spill: cannot seek run file " + run.file);
    }
    remaining_ = run.records;
    hash_ = Fnv1a64Seed();
    index_ = 0;
    chunk_.clear();
    return Refill();
  }

  bool AtEnd() const { return index_ >= chunk_.size(); }
  const std::pair<K, V>& Head() const { return chunk_[index_]; }

  Status Advance() {
    ++index_;
    if (index_ < chunk_.size()) return Status::Ok();
    return Refill();
  }

 private:
  Status Refill() {
    constexpr size_t kChunkRecords =
        kSpillReadChunkBytes / sizeof(std::pair<K, V>) > 0
            ? kSpillReadChunkBytes / sizeof(std::pair<K, V>)
            : 1;
    index_ = 0;
    const uint64_t take =
        remaining_ < kChunkRecords ? remaining_ : kChunkRecords;
    chunk_.resize(static_cast<size_t>(take));
    if (take == 0) {
      // Exhausted: the whole payload has been folded into the hash.
      if (hash_ != run_->checksum) {
        return Status::IoError("spill: run checksum mismatch in " +
                               run_->file + " (partition " +
                               std::to_string(run_->partition) + ")");
      }
      return Status::Ok();
    }
    const size_t bytes = static_cast<size_t>(take) * sizeof(std::pair<K, V>);
    in_.read(reinterpret_cast<char*>(chunk_.data()),
             static_cast<std::streamsize>(bytes));
    if (in_.gcount() != static_cast<std::streamsize>(bytes)) {
      return Status::IoError("spill: run truncated in " + run_->file);
    }
    hash_ = Fnv1a64Update(
        hash_, std::string_view(reinterpret_cast<const char*>(chunk_.data()),
                                bytes));
    remaining_ -= take;
    return Status::Ok();
  }

  const SpillRunInfo* run_ = nullptr;
  std::ifstream in_;
  std::vector<std::pair<K, V>> chunk_;
  size_t index_ = 0;
  uint64_t remaining_ = 0;
  uint64_t hash_ = 0;
};

// One piece of a reduce task's input, in (split, flush) order: either a
// non-spilled map task's in-memory bucket (emission order; the sorted path
// stable-sorts it in place, which is idempotent across attempt retries) or
// one disk run (already sorted).
template <typename K, typename V>
struct ShuffleSegment {
  std::vector<std::pair<K, V>>* memory = nullptr;
  const SpillRunInfo* run = nullptr;
};

// Uniform cursor over a (sorted) segment for the loser-tree merge.
template <typename K, typename V>
class SegmentCursor {
 public:
  Status Open(const ShuffleSegment<K, V>& segment) {
    segment_ = &segment;
    if (segment.run != nullptr) return run_.Open(*segment.run);
    return Status::Ok();
  }
  bool AtEnd() const {
    return segment_->run != nullptr ? run_.AtEnd()
                                    : index_ >= segment_->memory->size();
  }
  const std::pair<K, V>& Head() const {
    return segment_->run != nullptr ? run_.Head()
                                    : (*segment_->memory)[index_];
  }
  Status Advance() {
    if (segment_->run != nullptr) return run_.Advance();
    ++index_;
    return Status::Ok();
  }

 private:
  const ShuffleSegment<K, V>* segment_ = nullptr;
  SpillRunCursor<K, V> run_;
  size_t index_ = 0;
};

// Loser-tree k-way merge of stably-sorted segments into *out, breaking
// key ties by segment ordinal — which reproduces the stable sort of the
// segments' concatenation, byte for byte. A real loser tree (internal
// nodes remember match losers; re-seeding a leaf replays one root path),
// so each record costs O(log k) comparisons however skewed the runs are.
template <typename K, typename V>
Status MergeSegments(std::vector<SegmentCursor<K, V>>& cursors,
                     std::vector<std::pair<K, V>>* out) {
  const size_t s = cursors.size();
  if (s == 0) return Status::Ok();
  constexpr size_t kNone = std::numeric_limits<size_t>::max();
  // beats(a, b): segment a's head comes before segment b's. Exhausted
  // segments lose to everything; key ties go to the lower ordinal.
  const auto beats = [&cursors](size_t a, size_t b) {
    if (cursors[a].AtEnd()) return false;
    if (cursors[b].AtEnd()) return true;
    const K& ka = cursors[a].Head().first;
    const K& kb = cursors[b].Head().first;
    if (ka < kb) return true;
    if (kb < ka) return false;
    return a < b;
  };
  std::vector<size_t> losers(s, kNone);
  size_t winner = kNone;
  // Plays leaf j up the tree: deposits into the first empty slot (initial
  // seeding) or swaps with recorded losers it beats; the climber that
  // reaches the root is the overall winner.
  const auto adjust = [&](size_t j) {
    size_t w = j;
    for (size_t t = (j + s) / 2; t > 0; t /= 2) {
      if (losers[t] == kNone) {
        losers[t] = w;
        return;
      }
      if (beats(losers[t], w)) std::swap(losers[t], w);
    }
    winner = w;
  };
  for (size_t j = 0; j < s; ++j) adjust(j);
  while (winner != kNone && !cursors[winner].AtEnd()) {
    out->push_back(cursors[winner].Head());
    DOD_RETURN_IF_ERROR(cursors[winner].Advance());
    adjust(winner);
  }
  return Status::Ok();
}

// Groups a reduce task's segment list (the spilled-input analogue of
// GroupBucket). The columnar admission — density guard over the segments'
// key ranges, budget check on the histogram scratch — is a pure function
// of segment metadata and contents, so the chosen path is identical
// across thread counts and fault schedules; both paths yield groups
// byte-identical to grouping the concatenated in-memory bucket.
template <typename K, typename V>
Result<GroupedView<K, V>> GroupSegments(
    std::vector<ShuffleSegment<K, V>>& segments, ShuffleMode mode,
    GroupScratch<K, V>* scratch, GroupPath* path, FallbackReason* reason,
    const MemoryBudget* budget) {
  *reason = FallbackReason::kNone;
  uint64_t records = 0;
  bool any_runs = false;
  for (const ShuffleSegment<K, V>& segment : segments) {
    if (segment.run != nullptr) {
      any_runs = true;
      records += segment.run->records;
    } else {
      records += segment.memory->size();
    }
  }
  if (records == 0) {
    scratch->merged.clear();
    scratch->offsets.clear();
    *path = mode == ShuffleMode::kColumnar ? GroupPath::kColumnar
                                           : GroupPath::kSorted;
    return GroupedView<K, V>(scratch->merged, scratch->offsets);
  }

  if (mode == ShuffleMode::kColumnar) {
    if constexpr (std::is_integral_v<K>) {
      using U = std::make_unsigned_t<K>;
      // Min/max live in the signed K domain — CountingSortGroups'
      // convention — so mixed-sign key spaces guard and group exactly like
      // the in-memory paths. Run metadata holds the bit-casts of each
      // run's signed extremes; decode through U before comparing (the raw
      // u64 values do not order across signs).
      bool have_keys = false;
      K min_key{};
      K max_key{};
      const auto fold = [&](K key) {
        min_key = have_keys ? std::min(min_key, key) : key;
        max_key = have_keys ? std::max(max_key, key) : key;
        have_keys = true;
      };
      for (const ShuffleSegment<K, V>& segment : segments) {
        if (segment.run != nullptr) {
          if (segment.run->records == 0) continue;
          fold(static_cast<K>(static_cast<U>(segment.run->min_key)));
          fold(static_cast<K>(static_cast<U>(segment.run->max_key)));
        } else {
          for (const std::pair<K, V>& record : *segment.memory) {
            fold(record.first);
          }
        }
      }
      // Unsigned-domain subtraction: the exact expression
      // CountingSortGroups uses, so the guard admits and rejects the same
      // key spaces as the in-memory columnar path.
      const uint64_t range =
          static_cast<uint64_t>(static_cast<U>(max_key) -
                                static_cast<U>(min_key)) + 1;
      if (range >
          kDenseRangeSlack + kDenseRangePerRecord * records) {
        *reason = FallbackReason::kDensity;
      } else if (budget != nullptr &&
                 !budget->FitsAlone(ColumnarScratchBytes(
                     records, range, sizeof(K), sizeof(V)))) {
        *reason = FallbackReason::kBudget;
      } else {
        // Pass 1: histogram the keys across every segment. Slots subtract
        // in the U domain (two's-complement wraparound), mirroring
        // CountingSortGroups, so negative keys land identically.
        std::vector<size_t>& cursor = scratch->histogram;
        cursor.assign(static_cast<size_t>(range), 0);
        for (ShuffleSegment<K, V>& segment : segments) {
          if (segment.run == nullptr) {
            for (const std::pair<K, V>& record : *segment.memory) {
              ++cursor[static_cast<size_t>(static_cast<U>(record.first) -
                                           static_cast<U>(min_key))];
            }
          } else {
            SpillRunCursor<K, V> run;
            DOD_RETURN_IF_ERROR(run.Open(*segment.run));
            while (!run.AtEnd()) {
              ++cursor[static_cast<size_t>(static_cast<U>(run.Head().first) -
                                           static_cast<U>(min_key))];
              DOD_RETURN_IF_ERROR(run.Advance());
            }
          }
        }
        scratch->keys.clear();
        scratch->offsets.clear();
        size_t total = 0;
        for (size_t slot = 0; slot < cursor.size(); ++slot) {
          const size_t count = cursor[slot];
          if (count == 0) continue;
          scratch->keys.push_back(static_cast<K>(
              static_cast<U>(min_key) + static_cast<U>(slot)));
          scratch->offsets.push_back(total);
          cursor[slot] = total;
          total += count;
        }
        scratch->offsets.push_back(total);
        // Pass 2: scatter the values, segment by segment in the same
        // order. Within a key, records land in (segment, position) order
        // — the emission order (runs are time-sliced and stably sorted).
        scratch->values.resize(static_cast<size_t>(records));
        for (ShuffleSegment<K, V>& segment : segments) {
          if (segment.run == nullptr) {
            for (const std::pair<K, V>& record : *segment.memory) {
              const size_t slot = static_cast<size_t>(
                  static_cast<U>(record.first) - static_cast<U>(min_key));
              scratch->values[cursor[slot]++] = record.second;
            }
          } else {
            SpillRunCursor<K, V> run;
            DOD_RETURN_IF_ERROR(run.Open(*segment.run));
            while (!run.AtEnd()) {
              const size_t slot = static_cast<size_t>(
                  static_cast<U>(run.Head().first) - static_cast<U>(min_key));
              scratch->values[cursor[slot]++] = run.Head().second;
              DOD_RETURN_IF_ERROR(run.Advance());
            }
          }
        }
        *path = any_runs ? GroupPath::kColumnarSpilled : GroupPath::kColumnar;
        return GroupedView<K, V>(scratch->keys, scratch->values,
                                 scratch->offsets);
      }
    } else {
      *reason = FallbackReason::kDensity;  // non-integral keys cannot count
    }
  }

  // Sorted path: stable-sort the memory segments in place (idempotent
  // across retries), then merge everything with the loser tree.
  {
    trace::Span span("shuffle", "merge");
    span.Arg("segments", static_cast<uint64_t>(segments.size()))
        .Arg("records", records);
    for (ShuffleSegment<K, V>& segment : segments) {
      if (segment.memory != nullptr) {
        std::stable_sort(
            segment.memory->begin(), segment.memory->end(),
            [](const std::pair<K, V>& a, const std::pair<K, V>& b) {
              return a.first < b.first;
            });
      }
    }
    std::vector<SegmentCursor<K, V>> cursors(segments.size());
    for (size_t i = 0; i < segments.size(); ++i) {
      DOD_RETURN_IF_ERROR(cursors[i].Open(segments[i]));
    }
    scratch->merged.clear();
    scratch->merged.reserve(static_cast<size_t>(records));
    DOD_RETURN_IF_ERROR(MergeSegments(cursors, &scratch->merged));
  }
  ComputeGroupOffsets(scratch->merged, &scratch->offsets);
  if (any_runs) {
    *path = GroupPath::kSortedSpilled;
  } else if (mode == ShuffleMode::kColumnar) {
    *path = *reason == FallbackReason::kBudget ? GroupPath::kSortedBudget
                                               : GroupPath::kSortedFallback;
  } else {
    *path = GroupPath::kSorted;
  }
  return GroupedView<K, V>(scratch->merged, scratch->offsets);
}

// Groups an in-memory reduce bucket, with the spill degradation in front:
// when the columnar histogram passes the density guard but scratch +
// resident bucket together exceed the budget (the regime that previously
// forced the sorted-only kSortedBudget fallback), and a spill directory is
// available, the bucket is stable-sorted in place, written out as one run,
// and freed — the histogram then streams over the run with only its
// scratch resident (GroupPath::kColumnarSpilled, FallbackReason::kSpill).
// Everything else defers to GroupBucket. The spilled state persists in
// *spilled_runs across attempt retries: a later attempt regroups from the
// existing run instead of re-spilling an already-emptied bucket.
template <typename K, typename V>
Result<GroupedView<K, V>> GroupBucketOrSpill(
    std::vector<std::pair<K, V>>& bucket, ShuffleMode mode,
    GroupScratch<K, V>* scratch, GroupPath* path, FallbackReason* reason,
    const MemoryBudget* budget, const SpillPolicy& spill,
    const std::string& spill_file, SpillGc* gc,
    std::vector<SpillRunInfo>* spilled_runs,
    std::vector<ShuffleSegment<K, V>>* segment_scratch) {
  *reason = FallbackReason::kNone;
  if constexpr (std::is_integral_v<K>) {
    const bool regroup_spilled = spilled_runs != nullptr &&
                                 !spilled_runs->empty();
    bool degrade = false;
    if (!regroup_spilled && spill.enabled() &&
        mode == ShuffleMode::kColumnar && !bucket.empty() &&
        budget != nullptr && gc != nullptr && spilled_runs != nullptr) {
      using U = std::make_unsigned_t<K>;
      K min_key = bucket.front().first;
      K max_key = min_key;
      for (const std::pair<K, V>& record : bucket) {
        min_key = std::min(min_key, record.first);
        max_key = std::max(max_key, record.first);
      }
      const uint64_t range = static_cast<uint64_t>(static_cast<U>(max_key) -
                                                   static_cast<U>(min_key)) +
                             1;
      const uint64_t scratch_bytes = ColumnarScratchBytes(
          bucket.size(), range, sizeof(K), sizeof(V));
      const uint64_t bucket_bytes =
          static_cast<uint64_t>(bucket.size()) * sizeof(std::pair<K, V>);
      degrade = range <= kDenseRangeSlack +
                             kDenseRangePerRecord *
                                 static_cast<uint64_t>(bucket.size()) &&
                budget->FitsAlone(scratch_bytes) &&
                !budget->FitsAlone(scratch_bytes + bucket_bytes);
    }
    if (degrade) {
      TaskSpiller<K, V> spiller(spill_file, gc);
      typename TaskSpiller<K, V>::Buckets one;
      one.push_back(std::move(bucket));
      spiller.Spill(one);
      DOD_RETURN_IF_ERROR(spiller.Finish(one));
      *spilled_runs = spiller.TakeRuns();
      // Free the resident bucket for real — the histogram pass must run
      // with only its scratch resident, which was the point.
      bucket = std::vector<std::pair<K, V>>();
    }
    if (degrade || regroup_spilled) {
      segment_scratch->clear();
      for (const SpillRunInfo& run : *spilled_runs) {
        segment_scratch->push_back(ShuffleSegment<K, V>{nullptr, &run});
      }
      GroupPath seg_path;
      FallbackReason seg_reason;
      auto grouped = GroupSegments(*segment_scratch, mode, scratch,
                                   &seg_path, &seg_reason, budget);
      if (grouped.ok()) {
        *path = seg_path;
        *reason = seg_path == GroupPath::kColumnarSpilled
                      ? FallbackReason::kSpill
                      : seg_reason;
      }
      return grouped;
    }
  }
  GroupedView<K, V> view = GroupBucket(bucket, mode, scratch, path, budget);
  *reason = ReasonFromPath(*path);
  return view;
}

}  // namespace internal
}  // namespace dod

#endif  // DOD_MAPREDUCE_SPILL_H_
