// Copyright 2026 The DOD Authors.

#include "mapreduce/job_stats.h"

#include <cstdio>

namespace dod {

std::string JobStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "map=%.4fs shuffle=%.4fs reduce=%.4fs total=%.4fs "
                "(records=%llu shuffled=%llu groups=%llu)",
                stage_times.map_seconds, stage_times.shuffle_seconds,
                stage_times.reduce_seconds, stage_times.total(),
                static_cast<unsigned long long>(records_mapped),
                static_cast<unsigned long long>(records_shuffled),
                static_cast<unsigned long long>(groups_reduced));
  return buf;
}

}  // namespace dod
