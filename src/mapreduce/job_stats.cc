// Copyright 2026 The DOD Authors.

#include "mapreduce/job_stats.h"

#include <cstdio>

namespace dod {

std::string JobStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "map=%.4fs shuffle=%.4fs reduce=%.4fs total=%.4fs "
                "(records=%llu shuffled=%llu groups=%llu)",
                stage_times.map_seconds, stage_times.shuffle_seconds,
                stage_times.reduce_seconds, stage_times.total(),
                static_cast<unsigned long long>(records_mapped),
                static_cast<unsigned long long>(records_shuffled),
                static_cast<unsigned long long>(groups_reduced));
  std::string out = buf;
  if (task_failures > 0 || speculative_attempts > 0 ||
      nodes_blacklisted > 0) {
    std::snprintf(buf, sizeof(buf),
                  " [attempts=%llu failures=%llu retries=%llu "
                  "speculative=%llu/%llu blacklisted=%llu backoff=%.2fs]",
                  static_cast<unsigned long long>(task_attempts),
                  static_cast<unsigned long long>(task_failures),
                  static_cast<unsigned long long>(task_retries),
                  static_cast<unsigned long long>(speculative_wins),
                  static_cast<unsigned long long>(speculative_attempts),
                  static_cast<unsigned long long>(nodes_blacklisted),
                  backoff_seconds);
    out += buf;
  }
  return out;
}

}  // namespace dod
