// Copyright 2026 The DOD Authors.

#include "mapreduce/job_stats.h"

#include <algorithm>
#include <cstdio>

namespace dod {

void JobStats::MergeFrom(const JobStats& other) {
  map_task_seconds.insert(map_task_seconds.end(),
                          other.map_task_seconds.begin(),
                          other.map_task_seconds.end());
  reduce_task_seconds.insert(reduce_task_seconds.end(),
                             other.reduce_task_seconds.begin(),
                             other.reduce_task_seconds.end());
  records_mapped += other.records_mapped;
  records_shuffled += other.records_shuffled;
  bytes_shuffled += other.bytes_shuffled;
  groups_reduced += other.groups_reduced;
  stage_times += other.stage_times;
  task_attempts += other.task_attempts;
  task_failures += other.task_failures;
  task_retries += other.task_retries;
  speculative_attempts += other.speculative_attempts;
  speculative_wins += other.speculative_wins;
  nodes_blacklisted = std::max(nodes_blacklisted, other.nodes_blacklisted);
  shuffle_records_dropped += other.shuffle_records_dropped;
  shuffle_records_corrupted += other.shuffle_records_corrupted;
  backoff_seconds += other.backoff_seconds;
  wall_seconds = std::max(wall_seconds, other.wall_seconds);
  map_wall_seconds = std::max(map_wall_seconds, other.map_wall_seconds);
  reduce_wall_seconds =
      std::max(reduce_wall_seconds, other.reduce_wall_seconds);
  threads_used = std::max(threads_used, other.threads_used);
  counters.MergeFrom(other.counters);
  partition_profiles.insert(partition_profiles.end(),
                            other.partition_profiles.begin(),
                            other.partition_profiles.end());
}

std::string JobStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "map=%.4fs shuffle=%.4fs reduce=%.4fs total=%.4fs "
                "(records=%llu shuffled=%llu groups=%llu) "
                "wall=%.4fs threads=%d",
                stage_times.map_seconds, stage_times.shuffle_seconds,
                stage_times.reduce_seconds, stage_times.total(),
                static_cast<unsigned long long>(records_mapped),
                static_cast<unsigned long long>(records_shuffled),
                static_cast<unsigned long long>(groups_reduced),
                wall_seconds, threads_used);
  std::string out = buf;
  if (task_failures > 0 || speculative_attempts > 0 ||
      nodes_blacklisted > 0) {
    std::snprintf(buf, sizeof(buf),
                  " [attempts=%llu failures=%llu retries=%llu "
                  "speculative=%llu/%llu blacklisted=%llu backoff=%.2fs]",
                  static_cast<unsigned long long>(task_attempts),
                  static_cast<unsigned long long>(task_failures),
                  static_cast<unsigned long long>(task_retries),
                  static_cast<unsigned long long>(speculative_wins),
                  static_cast<unsigned long long>(speculative_attempts),
                  static_cast<unsigned long long>(nodes_blacklisted),
                  backoff_seconds);
    out += buf;
  }
  return out;
}

}  // namespace dod
