// Copyright 2026 The DOD Authors.

#include "mapreduce/job_stats.h"

#include <algorithm>
#include <cstdio>

namespace dod {

void JobStats::MergeFrom(const JobStats& other) {
  map_task_seconds.insert(map_task_seconds.end(),
                          other.map_task_seconds.begin(),
                          other.map_task_seconds.end());
  reduce_task_seconds.insert(reduce_task_seconds.end(),
                             other.reduce_task_seconds.begin(),
                             other.reduce_task_seconds.end());
  records_mapped += other.records_mapped;
  records_shuffled += other.records_shuffled;
  bytes_shuffled += other.bytes_shuffled;
  groups_reduced += other.groups_reduced;
  stage_times += other.stage_times;
  task_attempts += other.task_attempts;
  task_failures += other.task_failures;
  task_retries += other.task_retries;
  speculative_attempts += other.speculative_attempts;
  speculative_wins += other.speculative_wins;
  nodes_blacklisted = std::max(nodes_blacklisted, other.nodes_blacklisted);
  shuffle_records_dropped += other.shuffle_records_dropped;
  shuffle_records_corrupted += other.shuffle_records_corrupted;
  backoff_seconds += other.backoff_seconds;
  wall_seconds = std::max(wall_seconds, other.wall_seconds);
  map_wall_seconds = std::max(map_wall_seconds, other.map_wall_seconds);
  reduce_wall_seconds =
      std::max(reduce_wall_seconds, other.reduce_wall_seconds);
  threads_used = std::max(threads_used, other.threads_used);
  counters.MergeFrom(other.counters);
  partition_profiles.insert(partition_profiles.end(),
                            other.partition_profiles.begin(),
                            other.partition_profiles.end());
}

std::string JobStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "map=%.4fs shuffle=%.4fs reduce=%.4fs total=%.4fs "
                "(records=%llu shuffled=%llu groups=%llu) "
                "wall=%.4fs threads=%d",
                stage_times.map_seconds, stage_times.shuffle_seconds,
                stage_times.reduce_seconds, stage_times.total(),
                static_cast<unsigned long long>(records_mapped),
                static_cast<unsigned long long>(records_shuffled),
                static_cast<unsigned long long>(groups_reduced),
                wall_seconds, threads_used);
  std::string out = buf;
  if (task_failures > 0 || speculative_attempts > 0 ||
      nodes_blacklisted > 0) {
    std::snprintf(buf, sizeof(buf),
                  " [attempts=%llu failures=%llu retries=%llu "
                  "speculative=%llu/%llu blacklisted=%llu backoff=%.2fs]",
                  static_cast<unsigned long long>(task_attempts),
                  static_cast<unsigned long long>(task_failures),
                  static_cast<unsigned long long>(task_retries),
                  static_cast<unsigned long long>(speculative_wins),
                  static_cast<unsigned long long>(speculative_attempts),
                  static_cast<unsigned long long>(nodes_blacklisted),
                  backoff_seconds);
    out += buf;
  }
  return out;
}

void SerializeJobStatsDelta(const JobStats& stats, PayloadWriter* out) {
  out->U64(stats.records_mapped);
  out->U64(stats.records_shuffled);
  out->U64(stats.bytes_shuffled);
  out->U64(stats.groups_reduced);
  out->U64(stats.task_attempts);
  out->U64(stats.task_failures);
  out->U64(stats.task_retries);
  out->U64(stats.speculative_attempts);
  out->U64(stats.speculative_wins);
  out->U64(stats.shuffle_records_dropped);
  out->U64(stats.shuffle_records_corrupted);
  out->F64(stats.backoff_seconds);
  const auto& counters = stats.counters.values();
  out->U64(counters.size());
  for (const auto& [name, value] : counters) {
    out->String(name);
    out->U64(value);
  }
}

Status DeserializeJobStatsDelta(PayloadReader* in, JobStats* stats) {
  *stats = JobStats();
  DOD_RETURN_IF_ERROR(in->U64(&stats->records_mapped));
  DOD_RETURN_IF_ERROR(in->U64(&stats->records_shuffled));
  DOD_RETURN_IF_ERROR(in->U64(&stats->bytes_shuffled));
  DOD_RETURN_IF_ERROR(in->U64(&stats->groups_reduced));
  DOD_RETURN_IF_ERROR(in->U64(&stats->task_attempts));
  DOD_RETURN_IF_ERROR(in->U64(&stats->task_failures));
  DOD_RETURN_IF_ERROR(in->U64(&stats->task_retries));
  DOD_RETURN_IF_ERROR(in->U64(&stats->speculative_attempts));
  DOD_RETURN_IF_ERROR(in->U64(&stats->speculative_wins));
  DOD_RETURN_IF_ERROR(in->U64(&stats->shuffle_records_dropped));
  DOD_RETURN_IF_ERROR(in->U64(&stats->shuffle_records_corrupted));
  DOD_RETURN_IF_ERROR(in->F64(&stats->backoff_seconds));
  uint64_t num_counters = 0;
  DOD_RETURN_IF_ERROR(in->U64(&num_counters));
  for (uint64_t i = 0; i < num_counters; ++i) {
    std::string name;
    uint64_t value = 0;
    DOD_RETURN_IF_ERROR(in->String(&name));
    DOD_RETURN_IF_ERROR(in->U64(&value));
    stats->counters.Increment(name, value);
  }
  return Status::Ok();
}

}  // namespace dod
