// Copyright 2026 The DOD Authors.

#include "mapreduce/shuffle.h"

namespace dod {

const char* ShuffleModeName(ShuffleMode mode) {
  switch (mode) {
    case ShuffleMode::kSorted:
      return "sorted";
    case ShuffleMode::kColumnar:
      return "columnar";
  }
  return "unknown";
}

bool ParseShuffleMode(std::string_view name, ShuffleMode* mode) {
  if (name == "sorted") {
    *mode = ShuffleMode::kSorted;
    return true;
  }
  if (name == "columnar") {
    *mode = ShuffleMode::kColumnar;
    return true;
  }
  return false;
}

}  // namespace dod
