// Copyright 2026 The DOD Authors.
//
// Hadoop-style named job counters.
//
// MergeFrom is associative and commutative (per-name sums over an ordered
// map), so per-task counter deltas can be folded together in any order —
// sequential task order or whatever order a parallel run completes in —
// and the totals come out identical. The parallel engine relies on this;
// tests/runtime_test.cc pins it with permuted merge orders.

#ifndef DOD_MAPREDUCE_COUNTERS_H_
#define DOD_MAPREDUCE_COUNTERS_H_

#include <cstdint>
#include <map>
#include <string>

namespace dod {

class Counters {
 public:
  void Increment(const std::string& name, uint64_t delta = 1) {
    values_[name] += delta;
  }

  // 0 when the counter was never incremented.
  uint64_t Get(const std::string& name) const {
    auto it = values_.find(name);
    return it == values_.end() ? 0 : it->second;
  }

  void MergeFrom(const Counters& other) {
    for (const auto& [name, value] : other.values_) values_[name] += value;
  }

  const std::map<std::string, uint64_t>& values() const { return values_; }

 private:
  std::map<std::string, uint64_t> values_;
};

}  // namespace dod

#endif  // DOD_MAPREDUCE_COUNTERS_H_
