// Copyright 2026 The DOD Authors.
//
// Non-templated measurement results shared by all MapReduce jobs.

#ifndef DOD_MAPREDUCE_JOB_STATS_H_
#define DOD_MAPREDUCE_JOB_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "durability/payload.h"
#include "mapreduce/counters.h"
#include "observability/profile.h"

namespace dod {

// Per-stage simulated durations of one job, in seconds.
struct StageTimes {
  double map_seconds = 0.0;
  double shuffle_seconds = 0.0;
  double reduce_seconds = 0.0;

  double total() const { return map_seconds + shuffle_seconds + reduce_seconds; }

  StageTimes& operator+=(const StageTimes& other) {
    map_seconds += other.map_seconds;
    shuffle_seconds += other.shuffle_seconds;
    reduce_seconds += other.reduce_seconds;
    return *this;
  }
};

// One job's measurement results. The engine builds a JobStats *delta* per
// task and folds the deltas into the job's totals with MergeFrom, which is
// associative and order-independent (sums for counts and durations, max
// for gauges, concatenation for the per-slot cost vectors) — the property
// that lets tasks complete in any scheduling order while the committed
// totals stay identical.
struct JobStats {
  // Measured per-task durations (seconds).
  std::vector<double> map_task_seconds;
  std::vector<double> reduce_task_seconds;

  // Data-flow accounting.
  uint64_t records_mapped = 0;
  uint64_t records_shuffled = 0;
  uint64_t bytes_shuffled = 0;
  uint64_t groups_reduced = 0;

  // Simulated stage durations on the configured cluster.
  StageTimes stage_times;

  // Fault-tolerance accounting (see mapreduce/task_runner.h). All zero on a
  // fault-free run with no user-level task errors.
  uint64_t task_attempts = 0;       // attempts executed, incl. speculative
  uint64_t task_failures = 0;       // attempts that failed
  uint64_t task_retries = 0;        // re-executions after a failure
  uint64_t speculative_attempts = 0;
  uint64_t speculative_wins = 0;    // duplicates that finished first
  uint64_t nodes_blacklisted = 0;
  uint64_t shuffle_records_dropped = 0;    // injected transport loss
  uint64_t shuffle_records_corrupted = 0;  // injected corruption
  // Simulated retry delay charged into stage times.
  double backoff_seconds = 0.0;

  // Real single-machine wall time spent executing the job, reported next
  // to the simulated makespan above: `stage_times` is what the modeled
  // cluster would take, `wall_seconds` is what this machine actually took.
  double wall_seconds = 0.0;
  // Measured wall time of the parallel map / reduce phases alone.
  double map_wall_seconds = 0.0;
  double reduce_wall_seconds = 0.0;
  // Worker threads the runtime executed tasks on (1 = sequential).
  int threads_used = 1;

  Counters counters;

  // Per-partition cost-model snapshots recorded by the reduce side of a
  // detection job (empty for jobs that don't profile partitions). Sorted
  // by cell id; concatenated by MergeFrom like the per-slot cost vectors.
  std::vector<PartitionProfile> partition_profiles;

  // Folds another JobStats in: counts and durations add, gauges
  // (blacklisted nodes, wall times, thread count) take the max, per-slot
  // cost vectors concatenate, counters merge. Associative and commutative
  // up to vector ordering, so per-task deltas may be merged in any order
  // without changing any total.
  void MergeFrom(const JobStats& other);

  // One-line summary for logs/benches.
  std::string ToString() const;
};

// Checkpoint codec for a per-task JobStats *delta* (the accounting one
// task contributes before the engine's MergeFrom). Only the fields a task
// delta actually carries are serialized: the data-flow and fault-tolerance
// counts, backoff, and the counters map. Global/gauge fields (stage times,
// wall clocks, threads, blacklisted nodes, per-slot vectors, partition
// profiles) are derived or restored through other channels and are left at
// their defaults by Deserialize.
void SerializeJobStatsDelta(const JobStats& stats, PayloadWriter* out);
Status DeserializeJobStatsDelta(PayloadReader* in, JobStats* stats);

}  // namespace dod

#endif  // DOD_MAPREDUCE_JOB_STATS_H_
