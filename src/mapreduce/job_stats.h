// Copyright 2026 The DOD Authors.
//
// Non-templated measurement results shared by all MapReduce jobs.

#ifndef DOD_MAPREDUCE_JOB_STATS_H_
#define DOD_MAPREDUCE_JOB_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mapreduce/counters.h"

namespace dod {

// Per-stage simulated durations of one job, in seconds.
struct StageTimes {
  double map_seconds = 0.0;
  double shuffle_seconds = 0.0;
  double reduce_seconds = 0.0;

  double total() const { return map_seconds + shuffle_seconds + reduce_seconds; }

  StageTimes& operator+=(const StageTimes& other) {
    map_seconds += other.map_seconds;
    shuffle_seconds += other.shuffle_seconds;
    reduce_seconds += other.reduce_seconds;
    return *this;
  }
};

struct JobStats {
  // Measured per-task durations (seconds).
  std::vector<double> map_task_seconds;
  std::vector<double> reduce_task_seconds;

  // Data-flow accounting.
  uint64_t records_mapped = 0;
  uint64_t records_shuffled = 0;
  uint64_t bytes_shuffled = 0;
  uint64_t groups_reduced = 0;

  // Simulated stage durations on the configured cluster.
  StageTimes stage_times;

  // Fault-tolerance accounting (see mapreduce/task_runner.h). All zero on a
  // fault-free run with no user-level task errors.
  uint64_t task_attempts = 0;       // attempts executed, incl. speculative
  uint64_t task_failures = 0;       // attempts that failed
  uint64_t task_retries = 0;        // re-executions after a failure
  uint64_t speculative_attempts = 0;
  uint64_t speculative_wins = 0;    // duplicates that finished first
  uint64_t nodes_blacklisted = 0;
  uint64_t shuffle_records_dropped = 0;    // injected transport loss
  uint64_t shuffle_records_corrupted = 0;  // injected corruption
  // Simulated retry delay charged into stage times.
  double backoff_seconds = 0.0;

  // Real single-machine wall time spent executing the job.
  double wall_seconds = 0.0;

  Counters counters;

  // One-line summary for logs/benches.
  std::string ToString() const;
};

}  // namespace dod

#endif  // DOD_MAPREDUCE_JOB_STATS_H_
