// Copyright 2026 The DOD Authors.
//
// Reduce-side shuffle grouping: turn one reduce task's bucket of
// (key, value) records into key groups.
//
// Two interchangeable paths produce byte-identical grouping:
//
//  - kSorted: Hadoop's classic merge — a stable sort of the record pairs by
//    key, groups read off as equal-key runs. Works for any ordered key type.
//
//  - kColumnar: a two-pass counting sort specialized for dense integral
//    keys (DOD's cell ids). Pass 1 histograms the keys and prefix-sums the
//    histogram into per-key column segments; pass 2 scatters the *values*
//    into one contiguous column, leaving the keys behind (each group knows
//    its key, so per-record keys never need to be materialized again).
//    Scattering in record order is stable by construction, so groups come
//    out in ascending key order with the exact within-group record order of
//    the sorted path — reducers cannot tell the difference, which is what
//    keeps job output byte-identical across the --shuffle escape hatch.
//
// The columnar path guards against adversarially sparse key spaces: when
// the key range is much larger than the record count (a counting histogram
// would waste memory), it falls back to the sorted path. The guard is a
// pure function of the bucket contents, so the chosen path — and therefore
// every downstream byte — is identical across thread counts and fault
// schedules.
//
// Reducers consume groups through GroupedView, a zero-copy cursor over
// either backing layout. The engine's default reduce loop copies each
// group's values into a scratch vector for the legacy Reducer::TryReduce
// contract; task-at-a-time reducers (Reducer::TryReduceTask overrides)
// read values in place.

#ifndef DOD_MAPREDUCE_SHUFFLE_H_
#define DOD_MAPREDUCE_SHUFFLE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "durability/memory_budget.h"

namespace dod {

// Reduce-side grouping strategy. kColumnar is the default; kSorted is the
// escape hatch (and the only path for non-integral keys).
enum class ShuffleMode {
  kSorted,    // stable sort over (key, value) pairs
  kColumnar,  // counting sort into per-key value-column segments
};

// "sorted" / "columnar".
const char* ShuffleModeName(ShuffleMode mode);

// Parses "sorted" / "columnar". Returns false on unknown names.
bool ParseShuffleMode(std::string_view name, ShuffleMode* mode);

namespace internal {

// Owning scratch behind a GroupedView; one instance per reduce-task
// attempt. Either `values` (columnar) or the caller's pair bucket (sorted)
// backs the group contents; `offsets` delimits groups in both layouts.
template <typename K, typename V>
struct GroupScratch {
  std::vector<K> keys;         // columnar only: ascending distinct keys
  std::vector<V> values;       // columnar only: value column, grouped
  std::vector<size_t> offsets; // group g spans [offsets[g], offsets[g+1])
  std::vector<size_t> histogram;  // columnar working space (reused)
  // Spilled input only: the loser-tree merge of memory segments and disk
  // runs materializes here, then backs a sorted-layout GroupedView.
  std::vector<std::pair<K, V>> merged;
};

}  // namespace internal

// Read-only view of one reduce task's key groups, in ascending key order
// with the map-commit record order inside each group. Group g's values sit
// at logical indices [0, size(g)); `column(g)` additionally exposes them as
// a contiguous span when the columnar path produced them.
template <typename K, typename V>
class GroupedView {
 public:
  // Columnar backing: distinct keys + grouped value column.
  GroupedView(const std::vector<K>& keys, const std::vector<V>& values,
              const std::vector<size_t>& offsets)
      : keys_(&keys), values_(&values), pairs_(nullptr), offsets_(&offsets) {}

  // Sorted backing: key-sorted pairs + group offsets.
  GroupedView(const std::vector<std::pair<K, V>>& pairs,
              const std::vector<size_t>& offsets)
      : keys_(nullptr), values_(nullptr), pairs_(&pairs), offsets_(&offsets) {}

  size_t num_groups() const {
    return offsets_->empty() ? 0 : offsets_->size() - 1;
  }
  size_t num_records() const {
    return offsets_->empty() ? 0 : offsets_->back();
  }

  const K& key(size_t g) const {
    return pairs_ != nullptr ? (*pairs_)[(*offsets_)[g]].first : (*keys_)[g];
  }

  size_t size(size_t g) const {
    return (*offsets_)[g + 1] - (*offsets_)[g];
  }

  const V& value(size_t g, size_t i) const {
    const size_t index = (*offsets_)[g] + i;
    return pairs_ != nullptr ? (*pairs_)[index].second : (*values_)[index];
  }

  // Contiguous value span of group g, or nullptr under the sorted backing
  // (values interleave with keys there). Zero-copy fast path for columnar
  // task reducers.
  const V* column(size_t g) const {
    return values_ != nullptr ? values_->data() + (*offsets_)[g] : nullptr;
  }

 private:
  const std::vector<K>* keys_;
  const std::vector<V>* values_;
  const std::vector<std::pair<K, V>>* pairs_;
  const std::vector<size_t>* offsets_;
};

namespace internal {

// Sparsity guard for the counting histogram: fall back to sorting when the
// key range exceeds this multiple of the record count (plus slack for tiny
// buckets). Cell-id key spaces are dense, so real jobs never trip it.
inline constexpr uint64_t kDenseRangeSlack = 1024;
inline constexpr uint64_t kDenseRangePerRecord = 4;

// Bytes of scratch the columnar path would allocate for `records` records
// over a key `range`: histogram + value column + worst-case keys/offsets.
// A pure function of the bucket contents, so budget decisions built on it
// are deterministic (see GroupBucket).
inline uint64_t ColumnarScratchBytes(uint64_t records, uint64_t range,
                                     size_t key_bytes, size_t value_bytes) {
  const uint64_t groups = std::min(records, range);
  return range * sizeof(size_t) + records * value_bytes +
         groups * key_bytes + (groups + 1) * sizeof(size_t);
}

// Groups `bucket` by key with a stable two-pass counting sort; the caller
// guarantees K is integral and the bucket is non-empty. Returns false —
// leaving `scratch` untouched — when the key range fails the density
// guard, or when `budget` (optional) cannot admit the scratch the sort
// would allocate (`*budget_denied` distinguishes the latter). The budget
// check uses MemoryBudget::FitsAlone, a pure function of (estimate,
// limit), so the chosen path never depends on concurrent allocations.
template <typename K, typename V>
bool CountingSortGroups(const std::vector<std::pair<K, V>>& bucket,
                        GroupScratch<K, V>* scratch,
                        const MemoryBudget* budget = nullptr,
                        bool* budget_denied = nullptr) {
  static_assert(std::is_integral_v<K>,
                "counting sort requires integral keys");
  using U = std::make_unsigned_t<K>;
  K min_key = bucket.front().first;
  K max_key = min_key;
  for (const std::pair<K, V>& record : bucket) {
    min_key = std::min(min_key, record.first);
    max_key = std::max(max_key, record.first);
  }
  // Two's-complement subtraction in the unsigned domain handles negative
  // keys and cannot overflow.
  const uint64_t range =
      static_cast<uint64_t>(static_cast<U>(max_key) -
                            static_cast<U>(min_key)) + 1;
  if (range > kDenseRangeSlack +
                  kDenseRangePerRecord * static_cast<uint64_t>(bucket.size())) {
    return false;
  }
  if (budget != nullptr &&
      !budget->FitsAlone(ColumnarScratchBytes(bucket.size(), range, sizeof(K),
                                              sizeof(V)))) {
    if (budget_denied != nullptr) *budget_denied = true;
    return false;
  }

  // Pass 1: histogram keys, then prefix-sum into per-key write cursors.
  std::vector<size_t>& cursor = scratch->histogram;
  cursor.assign(static_cast<size_t>(range), 0);
  for (const std::pair<K, V>& record : bucket) {
    ++cursor[static_cast<size_t>(static_cast<U>(record.first) -
                                 static_cast<U>(min_key))];
  }
  scratch->keys.clear();
  scratch->offsets.clear();
  size_t total = 0;
  for (size_t slot = 0; slot < cursor.size(); ++slot) {
    const size_t count = cursor[slot];
    if (count == 0) continue;  // absent keys produce no group
    scratch->keys.push_back(
        static_cast<K>(static_cast<U>(min_key) + static_cast<U>(slot)));
    scratch->offsets.push_back(total);
    cursor[slot] = total;  // becomes the group's write cursor
    total += count;
  }
  scratch->offsets.push_back(total);

  // Pass 2: scatter the values into the column in record order (stable).
  scratch->values.resize(bucket.size());
  for (const std::pair<K, V>& record : bucket) {
    const size_t slot = static_cast<size_t>(
        static_cast<U>(record.first) - static_cast<U>(min_key));
    scratch->values[cursor[slot]++] = record.second;
  }
  return true;
}

// Reads group offsets off a key-sorted pair sequence (equal-key runs).
template <typename K, typename V>
void ComputeGroupOffsets(const std::vector<std::pair<K, V>>& pairs,
                         std::vector<size_t>* offsets) {
  offsets->clear();
  size_t i = 0;
  while (i < pairs.size()) {
    offsets->push_back(i);
    size_t j = i;
    while (j < pairs.size() && !(pairs[i].first < pairs[j].first) &&
           !(pairs[j].first < pairs[i].first)) {
      ++j;
    }
    i = j;
  }
  offsets->push_back(pairs.size());
}

// Stable-sorts `bucket` by key in place and records group offsets. The
// generic path: only requires operator< on K.
template <typename K, typename V>
void SortGroups(std::vector<std::pair<K, V>>* bucket,
                GroupScratch<K, V>* scratch) {
  std::stable_sort(bucket->begin(), bucket->end(),
                   [](const std::pair<K, V>& a, const std::pair<K, V>& b) {
                     return a.first < b.first;
                   });
  ComputeGroupOffsets(*bucket, &scratch->offsets);
}

// Grouping outcome, for the engine's shuffle accounting.
enum class GroupPath {
  kColumnar,         // counting sort
  kSorted,           // stable sort, as requested
  kSortedFallback,   // columnar requested but unavailable (key type/range)
  kSortedBudget,     // columnar requested but its scratch exceeds the
                     // memory budget — degraded to the sorted path
  kColumnarSpilled,  // counting-sort histogram computed over spilled runs
                     // (two streaming passes; see mapreduce/spill.h)
  kSortedSpilled,    // loser-tree k-way merge of spilled runs + memory
                     // segments into a sorted backing
};

// Which guard pushed a columnar-requested task off the counting-sort path.
// Orthogonal to GroupPath: a kColumnarSpilled task can carry kSpill (the
// budget guard fired and spilling — not plain sorting — absorbed it), and
// a kSortedSpilled task carries the guard that rejected the histogram over
// its runs. Feeds the reason-labeled mr.shuffle.fallback.* counters.
enum class FallbackReason : uint8_t {
  kNone = 0,
  kDensity,  // key range too sparse for a counting histogram
  kBudget,   // histogram scratch exceeds the memory budget
  kSpill,    // scratch + resident bucket exceed the budget; the bucket was
             // spilled so the histogram could run with only scratch
             // resident
};

inline FallbackReason ReasonFromPath(GroupPath path) {
  switch (path) {
    case GroupPath::kSortedFallback:
      return FallbackReason::kDensity;
    case GroupPath::kSortedBudget:
      return FallbackReason::kBudget;
    default:
      return FallbackReason::kNone;
  }
}

// Groups one reduce-task bucket under `mode`. The sorted path mutates the
// bucket (in-place stable sort — idempotent, so attempt retries are safe);
// the columnar path leaves it untouched and stages into `scratch`. Both
// yield identical groups. A `budget` may veto the columnar path's scratch
// allocation, degrading to the (in-place, allocation-light) sorted path;
// the veto is deterministic and both paths group identically, so results
// never change — only `*path` and the engine's fallback counters do.
template <typename K, typename V>
GroupedView<K, V> GroupBucket(std::vector<std::pair<K, V>>& bucket,
                              ShuffleMode mode,
                              GroupScratch<K, V>* scratch,
                              GroupPath* path,
                              const MemoryBudget* budget = nullptr) {
  if (mode == ShuffleMode::kColumnar && !bucket.empty()) {
    bool budget_denied = false;
    if constexpr (std::is_integral_v<K>) {
      if (CountingSortGroups(bucket, scratch, budget, &budget_denied)) {
        *path = GroupPath::kColumnar;
        return GroupedView<K, V>(scratch->keys, scratch->values,
                                 scratch->offsets);
      }
    }
    *path = budget_denied ? GroupPath::kSortedBudget
                          : GroupPath::kSortedFallback;
  } else {
    *path = mode == ShuffleMode::kColumnar ? GroupPath::kColumnar
                                           : GroupPath::kSorted;
    if (bucket.empty()) {
      scratch->offsets.clear();
      return GroupedView<K, V>(bucket, scratch->offsets);
    }
  }
  SortGroups(&bucket, scratch);
  return GroupedView<K, V>(bucket, scratch->offsets);
}

}  // namespace internal
}  // namespace dod

#endif  // DOD_MAPREDUCE_SHUFFLE_H_
