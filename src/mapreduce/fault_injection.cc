// Copyright 2026 The DOD Authors.

#include "mapreduce/fault_injection.h"

#include "common/random.h"

namespace dod {
namespace {

// Domain-separation tags so the per-attempt, per-record, and placement
// draws are independent streams of the same seed.
constexpr uint64_t kTaskFailureTag = 0xFA11;
constexpr uint64_t kStragglerTag = 0x5709;
constexpr uint64_t kShuffleTag = 0xD09;
constexpr uint64_t kNodeTag = 0x40DE;

// One hash-derived uniform draw in [0, 1). SplitMix64 over the mixed
// coordinates gives independence across nearby inputs.
double UniformDraw(uint64_t seed, uint64_t tag, TaskPhase phase,
                   int task_index, int attempt, uint64_t extra = 0) {
  SplitMix64 sm(seed ^ (tag * 0x9E3779B97F4A7C15ULL));
  uint64_t h = sm.Next();
  h ^= (static_cast<uint64_t>(phase) + 1) * 0xBF58476D1CE4E5B9ULL;
  h ^= (static_cast<uint64_t>(task_index) + 1) * 0x94D049BB133111EBULL;
  h ^= (static_cast<uint64_t>(attempt) + 1) * 0xD6E8FEB86659FD93ULL;
  h ^= extra * 0xC2B2AE3D27D4EB4FULL;
  SplitMix64 finisher(h);
  return static_cast<double>(finisher.Next() >> 11) * 0x1.0p-53;
}

}  // namespace

const char* TaskPhaseName(TaskPhase phase) {
  return phase == TaskPhase::kMap ? "map" : "reduce";
}

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kTaskFailure:
      return "task-failure";
    case FaultKind::kStraggler:
      return "straggler";
    case FaultKind::kShuffleDrop:
      return "shuffle-drop";
    case FaultKind::kShuffleCorrupt:
      return "shuffle-corrupt";
  }
  return "unknown";
}

FaultKind FaultInjector::TaskFault(TaskPhase phase, int task_index,
                                   int attempt) const {
  if (!spec_.enabled || attempt >= spec_.max_faulty_attempts_per_task) {
    return FaultKind::kNone;
  }
  if (UniformDraw(spec_.seed, kTaskFailureTag, phase, task_index, attempt) <
      spec_.task_failure_prob) {
    return FaultKind::kTaskFailure;
  }
  if (UniformDraw(spec_.seed, kStragglerTag, phase, task_index, attempt) <
      spec_.straggler_prob) {
    return FaultKind::kStraggler;
  }
  return FaultKind::kNone;
}

FaultKind FaultInjector::ShuffleRecordFault(TaskPhase phase, int task_index,
                                            int attempt,
                                            uint64_t record_seq) const {
  if (!spec_.enabled || attempt >= spec_.max_faulty_attempts_per_task) {
    return FaultKind::kNone;
  }
  if (spec_.shuffle_drop_prob <= 0.0 && spec_.shuffle_corrupt_prob <= 0.0) {
    return FaultKind::kNone;
  }
  const double draw = UniformDraw(spec_.seed, kShuffleTag, phase, task_index,
                                  attempt, record_seq + 1);
  if (draw < spec_.shuffle_drop_prob) return FaultKind::kShuffleDrop;
  if (draw < spec_.shuffle_drop_prob + spec_.shuffle_corrupt_prob) {
    return FaultKind::kShuffleCorrupt;
  }
  return FaultKind::kNone;
}

int FaultInjector::NodeFor(TaskPhase phase, int task_index, int attempt,
                           int num_nodes) const {
  if (num_nodes <= 1) return 0;
  const double draw =
      UniformDraw(spec_.seed, kNodeTag, phase, task_index, attempt);
  return static_cast<int>(draw * num_nodes) % num_nodes;
}

Status ShuffleFaultFilter::AttemptStatus() const {
  if (dropped_ == 0 && corrupted_ == 0) return Status::Ok();
  const FaultKind kind =
      dropped_ > 0 ? FaultKind::kShuffleDrop : FaultKind::kShuffleCorrupt;
  return Status::Unavailable(
      std::string("injected ") + FaultKindName(kind) + " (" +
      std::to_string(dropped_) + " dropped, " + std::to_string(corrupted_) +
      " corrupted shuffle records)");
}

}  // namespace dod
