// Copyright 2026 The DOD Authors.
//
// Streaming outlier service: a long-running detector over a sliding window
// of ingested blocks, re-detecting incrementally instead of from scratch.
//
// The batch pipeline (core/pipeline.h) answers "which points of this
// dataset are outliers" by recomputing everything. Production traffic is a
// stream: blocks of points arrive, old blocks expire, and between two
// rounds only a small neighborhood of the window actually changes. The
// StreamingDetector exploits that:
//
//   * Window state lives in a uniform grid keyed exactly like the batch
//     detectors' grids (detection/cell_key.h): one appendable/expirable
//     point segment per cell (slot indices into a slot-recycling window
//     dataset) plus a per-point verdict summary — the collapsed
//     neighbor-count state |N_r(p)| >= k each point carried out of its
//     last evaluation.
//
//   * Feed(block) appends the block's points, expires blocks that fell out
//     of the window (count-based, time-based, or both), and computes the
//     dirty-cell set: every resident cell within the supporting ring of a
//     touched cell. With cell side s, a neighbor within distance r is at
//     most ceil(r/s) cells away in Chebyshev distance, so re-detecting the
//     touched cells plus that ring is exact — untouched cells cannot have
//     gained or lost a neighbor.
//
//   * With summaries on (the default), every resident point carries its
//     neighbor-count summary across rounds: the exact |N_r(p)|, or a
//     saturated lower bound once counting stopped at k + summary_slack
//     (the detector early-exit win, preserved). A round then costs
//     O(new block × ring): batched block×segment kernel calls count the
//     appended points against each dirty cell's residents (increments) and
//     the evicted points likewise (decrements); only appended points and
//     saturated points whose bound dropped below k re-count, through the
//     same TaskArena/ParallelExecutor staging the detectors use. Counts
//     are exact integers, so verdict flips — and therefore deltas — stay
//     byte-identical to the re-detection path below.
//
//   * With summaries off (the escape hatch/oracle), dirty cells re-detect
//     through the existing kernel-backed detectors: each dirty cell stages
//     its core segment plus the ring cells' points as support into one
//     TaskArena (the columnar shuffle's shared-SoA layout,
//     detection/partition_view.h) and runs the configured Detector on the
//     zero-copy PartitionView, fanned out over a ParallelExecutor.
//     Verdicts are exact, so either path is byte-identical to a
//     from-scratch batch run over the current window for every thread
//     count, kernel mode, and detector choice.
//
//   * The emitted OutlierDelta is the verdict diff: ids newly flagged,
//     ids newly cleared (verdict flips and flagged points that expired),
//     and per-round stats. Applying deltas in order reconstructs the
//     current outlier set exactly.
//
// Out-of-order and multi-source input: real ingest is neither ordered
// nor single-tenant. With a WatermarkPolicy enabled, Ingest(block) parks
// arrivals in a reorder buffer instead of admitting them immediately.
// Every source (StreamBlock::source_id) keeps a clock at the maximum
// timestamp it has delivered; the global watermark is
//
//     min over non-idle sources of (max_seen_ts) − lateness
//
// and a buffered block is admitted — running the exact Feed round an
// in-order delivery would have run — once the watermark passes strictly
// beyond its timestamp, in canonical (timestamp, source, arrival) order.
// A block arriving with ts < watermark is later than the lateness bound:
// it is rejected with kOutOfRange and counted in stream.late_dropped,
// never silently applied. A source that stops sending pins the watermark
// at its last clock; idle_timeout > 0 excludes sources lagging the
// global maximum by more than the timeout until they send again. The
// window itself is per source (independent count budgets and time-based
// expiry clocks) over one merged grid/verdict space, so multi-tenant
// feeds share neighborhoods without sharing window schedules.
//
// The correctness contract: every arrival permutation within the
// lateness bound admits the same canonical block sequence, so the
// admitted-order delta stream — and the final flagged set — is
// byte-identical to in-order delivery (tests/streaming_order_test.cc
// fuzzes this against the batch oracle).
//
// Durability: with checkpoint_dir set, the full window state (per-source
// blocks, ids, coordinates, flagged set, round counter — plus each
// point's count summary when summaries are on, plus the reorder buffer
// and per-source clocks when a watermark policy is active) is committed
// to a CheckpointStore every checkpoint_every rounds (watermark mode:
// every checkpoint_every arrivals, so a kill mid-reorder restores the
// buffered blocks too); Create(resume=true) restores the latest
// committed round and the service replays the rest of the schedule to the
// same verdicts and deltas as an uninterrupted run. Resuming with
// summaries on from a summary-less checkpoint rebuilds the counts
// deterministically from the restored window.
//
// Observability: every round emits a "stream"/"round" trace span and the
// stream.* metrics family (rounds, dirty-cell fraction, delta sizes,
// round latency histogram); summary rounds additionally emit
// "summary_update"/"summary_recount" spans and the stream.summary.*
// family (pair/point totals, saturated-point gauge, recount-queue
// histogram). tools/validate_trace checks the schema with
// --require_streaming.

#ifndef DOD_STREAMING_STREAMING_DETECTOR_H_
#define DOD_STREAMING_STREAMING_DETECTOR_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/dataset.h"
#include "common/point.h"
#include "common/status.h"
#include "detection/cell_key.h"
#include "detection/detector.h"
#include "durability/checkpoint.h"
#include "mapreduce/spill.h"
#include "runtime/parallel_executor.h"

namespace dod {

class TaskArena;

// Bounded-lateness admission policy for out-of-order / multi-source
// streams. Disabled (the default), Ingest admits every block immediately
// in arrival order — the PR 7 in-order contract, byte for byte.
struct WatermarkPolicy {
  bool enabled = false;
  // Bounded lateness L, in timestamp units: a block is admissible while
  // its timestamp is >= the current watermark (min over live sources of
  // max-seen - L); anything older may already have admitted successors
  // and is rejected with kOutOfRange. Must be >= 0 and finite.
  double lateness = 0.0;
  // Idle-source timeout: a source whose clock lags the global maximum
  // timestamp by more than this stops holding the watermark back until
  // it delivers again. 0 disables (a silent source stalls the watermark
  // forever — choose deliberately for strictly-complete streams).
  double idle_timeout = 0.0;
};

struct StreamingConfig {
  // Outlier definition + kernel mode; params.seed drives the per-cell
  // probe-order seeds exactly like the batch reducers.
  DetectionParams params;
  // Detector run on each dirty cell. Every kind is exact, so the choice
  // affects cost only, never verdicts.
  AlgorithmKind algorithm = AlgorithmKind::kCellBased;
  // Threads fanning out over dirty cells; <= 0 uses all hardware threads,
  // 1 runs inline. Deltas are byte-identical for every thread count.
  int num_threads = 1;

  // Count-based window: keep at most this many resident blocks *per
  // source*; feeding past the limit expires that source's oldest blocks
  // in the same round. 0 = off.
  size_t window_blocks = 0;
  // Time-based window on caller-provided block timestamps: a block expires
  // once (newest timestamp its *source* has admitted) - (its timestamp)
  // >= window_seconds. 0 = off. Both windows may be active; either can
  // expire a block. Window clocks are per source so a fast tenant never
  // expires a slow tenant's blocks.
  double window_seconds = 0.0;

  // Out-of-order admission (see WatermarkPolicy above). Disabled keeps
  // the in-order Feed contract unchanged.
  WatermarkPolicy watermark;

  // Incremental neighbor-count summaries (the fast path): rounds update
  // each resident point's persisted |N_r(p)| by counting the appended
  // block against its supporting ring (and decrementing for evicted
  // points) instead of re-running the detector over the dirty set.
  // Verdicts and deltas are byte-identical either way; off is the
  // re-detection escape hatch and oracle. Excluded from the checkpoint
  // job key — a run may resume under either mode.
  bool summaries = true;
  // Saturation slack: counting a point stops at min_neighbors +
  // summary_slack neighbors and the summary is carried as a certified
  // lower bound from there. Slack absorbs expiry decrements — a saturated
  // point only re-counts once its bound drops below min_neighbors. Must
  // be >= 0. Affects cost only, never verdicts (0 saturates exactly at k,
  // maximizing re-counts; larger values trade count work per round for
  // fewer re-counts).
  int summary_slack = 32;

  // Grid cell side; <= 0 defaults to params.radius. Smaller sides mean
  // tighter dirty sets but a wider supporting ring (ceil(radius / side)).
  double cell_side = 0.0;
  // Grid origin. Unlike the batch detectors (which anchor at the partition
  // bounds), the streaming grid must be anchored independently of window
  // contents or cell identities would shift between rounds. A
  // default-constructed (dims-0) point means the all-zero origin.
  Point grid_origin;

  // Spill policy for batch engine work done on this window's behalf —
  // the oracle cross-check pipelines dod_stream_cli runs per round, and
  // any long-window batch re-detection a caller derives from this config.
  // The streaming fast path keeps its per-round state resident and never
  // spills itself; carrying the policy here means a memory-capped service
  // and its verifying batch runs degrade the same way, with verdicts and
  // deltas byte-identical either way (spilling never changes results).
  SpillPolicy spill;

  // Durability: empty = no checkpointing. With a dir set, the window state
  // commits every `checkpoint_every` rounds (0 = only on Checkpoint()).
  std::string checkpoint_dir;
  bool resume = false;
  uint64_t checkpoint_every = 1;
  // Extra caller identity folded into the checkpoint job key (e.g. the
  // replay schedule's parameters); resume refuses a store written under a
  // different key with kFailedPrecondition.
  std::string job_tag;
};

// One ingested block: caller-assigned stable ids (unique among resident
// points) plus their coordinates. source_id names the stream the block
// belongs to — each source gets its own window clock and, under a
// watermark policy, its own watermark contribution.
struct StreamBlock {
  explicit StreamBlock(int dims) : points(dims) {}

  void Add(PointId id, const double* p) {
    ids.push_back(id);
    points.Append(p);
  }

  std::vector<PointId> ids;
  Dataset points;
  double timestamp = 0.0;
  uint32_t source_id = 0;
};

struct StreamRoundStats {
  // 1-based round number (count of completed Feed calls).
  uint64_t round = 0;
  size_t appended_points = 0;
  size_t expired_points = 0;
  size_t resident_points = 0;
  size_t resident_cells = 0;
  // Cells re-detected this round (touched + supporting ring).
  size_t dirty_cells = 0;
  // dirty_cells / resident_cells after the update (0 when no cells).
  double dirty_fraction = 0.0;
  // Summary fast path (config.summaries): whether this round took it, how
  // many points were fully counted (appended) or re-counted (saturation
  // bound dropped below k), and the pair totals of the incremental
  // insert/expiry counting passes. All zero on re-detection rounds.
  bool summary_path = false;
  size_t full_counted_points = 0;
  size_t recounted_points = 0;
  uint64_t insert_pairs = 0;
  uint64_t expiry_pairs = 0;
  // Wall time of the Feed call (timing; exempt from determinism).
  double round_seconds = 0.0;
};

// The verdict delta of one round. Outliers after the round =
// (outliers before) + newly_flagged - newly_cleared.
struct OutlierDelta {
  std::vector<PointId> newly_flagged;  // ascending
  std::vector<PointId> newly_cleared;  // ascending; flips and expired
  StreamRoundStats stats;
};

// The outcome of one Ingest call: zero or more rounds were admitted from
// the reorder stage (their deltas in admission order), the rest of the
// arrivals wait buffered behind the watermark. With watermarks disabled
// every Ingest admits exactly its own block.
struct IngestResult {
  std::vector<OutlierDelta> admitted;
  size_t buffered = 0;        // blocks still parked in the reorder buffer
  bool has_watermark = false;  // false until the first arrival
  double watermark = 0.0;      // min over live sources of clock - lateness
};

class StreamingDetector {
 public:
  // Validates the configuration, opens the checkpoint store when
  // configured, and (with resume) restores the latest committed round.
  static Result<std::unique_ptr<StreamingDetector>> Create(
      const StreamingConfig& config);

  // Ingests one block and returns the verdict delta. Rejects duplicate ids
  // (within the block or against resident points), dimension mismatches,
  // and non-finite coordinates with kInvalidArgument; on error the window
  // is unchanged. An empty block with no expiries is a no-op delta (the
  // round still counts). In-order admission only: with a watermark policy
  // enabled this is kFailedPrecondition — use Ingest.
  Result<OutlierDelta> Feed(const StreamBlock& block);

  // Accepts one arrival. With watermarks disabled this is Feed wrapped in
  // a single-delta IngestResult. With the policy enabled the block joins
  // the reorder buffer (kInvalidArgument on bad blocks, kOutOfRange +
  // stream.late_dropped when its timestamp is already more than
  // `lateness` behind its stream's clock; the window is unchanged on
  // error), the watermark advances, and every buffered block the
  // watermark passed is admitted in canonical (timestamp, source,
  // arrival) order — their deltas come back in admission order.
  Result<IngestResult> Ingest(const StreamBlock& block);

  // Drains the reorder buffer unconditionally (end of stream): every
  // buffered block is admitted in canonical order as if the watermark had
  // passed it. No-op with watermarks disabled or an empty buffer.
  Result<IngestResult> Flush();

  // Commits the window state to the checkpoint store now. kFailedPrecondition
  // when no checkpoint_dir was configured.
  Status Checkpoint();

  // The checkpoint job key this configuration maps to. Exposed for tests
  // and tooling that write or inspect a store out of band (e.g. the
  // snapshot version-compatibility matrix).
  static std::string JobKeyFor(const StreamingConfig& config);

  // Completed Feed rounds (restored rounds included).
  uint64_t rounds() const { return round_; }
  // Blocks accepted by Ingest (admitted + still buffered; restored
  // arrivals included, rejected blocks excluded). Equals rounds() with
  // watermarks disabled: a resuming replay driver continues at this
  // offset in its arrival schedule.
  uint64_t arrivals() const { return arrivals_; }
  // Blocks rejected with kOutOfRange for arriving beyond the lateness
  // bound (restored count included).
  uint64_t late_dropped() const { return late_dropped_; }
  // Blocks parked in the reorder buffer.
  size_t buffered_blocks() const { return reorder_.size(); }
  size_t resident_points() const { return id_to_slot_.size(); }
  size_t resident_cells() const { return cells_.size(); }
  // Current outlier ids, ascending. Byte-identical to a from-scratch batch
  // run over the window contents.
  const std::vector<PointId>& outliers() const { return outliers_; }
  // Resident points whose summary is a saturated lower bound rather than
  // an exact count; always 0 with summaries off. O(resident points).
  size_t saturated_points() const;

 private:
  struct CellState {
    // Appendable/expirable point segment: slot indices, append order.
    std::vector<uint32_t> slots;
  };
  struct SlotState {
    PointId stream_id = 0;
    // Verdict summary from the point's last evaluation (|N_r| < k).
    uint8_t flagged = 0;
    // Neighbor-count summary (summaries mode): exact |N_r| when
    // saturated == 0; a certified lower bound — never below min_neighbors
    // at a round boundary — when saturated != 0. Unmaintained (stale
    // zeros) with summaries off.
    uint32_t count = 0;
    uint8_t saturated = 0;
  };
  // One cell's re-count work: `locals` are positions in the cell's slot
  // segment (appended points needing a first count, saturated points whose
  // bound fell below k), ascending.
  struct TargetCell {
    CellCoord coord;
    std::vector<uint32_t> locals;
  };
  struct WindowBlock {
    uint64_t seq = 0;
    double timestamp = 0.0;
    std::vector<uint32_t> slots;
  };
  // One source's slice of the window: its resident blocks in admission
  // order plus its own expiry clock. Single-source streams live entirely
  // in source 0 and behave exactly like the pre-source-aware service.
  struct SourceWindow {
    std::deque<WindowBlock> blocks;
    double high_water = 0.0;
    bool saw_timestamp = false;
  };
  // One arrival parked in the reorder stage, waiting for the watermark.
  struct PendingBlock {
    uint64_t arrival = 0;  // global arrival sequence; canonical tiebreak
    StreamBlock block{1};
  };

  explicit StreamingDetector(const StreamingConfig& config);

  Status InitDims(int dims);
  Status ValidateBlock(const StreamBlock& block) const;
  uint32_t AllocSlot(PointId id, const double* p);
  CellCoord KeyOf(const double* p) const;

  // Appends the block's points into slots/cells (no detection); the cell
  // of every appended point is added to `touched`, its slot to
  // `appended_slots`.
  void AppendBlock(const StreamBlock& block, std::vector<CellCoord>* touched,
                   std::vector<uint32_t>* appended_slots);
  // Pops expired blocks off every source window's front — sources scanned
  // in ascending id order — into `touched` / `expired_flagged` (flagged
  // ids leaving the window) / `evicted_slots` (freed slots — their window
  // coordinates stay readable until the next round's appends recycle
  // them) and returns the number of expired points.
  size_t ExpireBlocks(std::vector<CellCoord>* touched,
                      std::vector<PointId>* expired_flagged,
                      std::vector<uint32_t>* evicted_slots);

  // One admitted round: the Feed body without the per-round checkpoint
  // policy (Feed and the reorder drain wrap it with their own).
  Result<OutlierDelta> AdmitBlock(const StreamBlock& block);
  // Arrival-time validation for the reorder stage: everything
  // ValidateBlock checks, plus a finite timestamp and id uniqueness
  // against the buffered blocks.
  Status ValidateArrival(const StreamBlock& block) const;
  // min over live (non-idle) source clocks of clock - lateness; false
  // until a first arrival registered a source.
  bool CurrentWatermark(double* watermark) const;
  // Admits every buffered block with timestamp < `bound` (canonical
  // order) and appends the deltas to `result`.
  Status DrainReorderBuffer(double bound, IngestResult* result);

  // Resident cells within Chebyshev distance `ring_` of any touched cell,
  // deduplicated and in deterministic (lexicographic) order.
  std::vector<CellCoord> DirtyCells(std::vector<CellCoord>* touched) const;

  // Re-detects `dirty` and applies verdict flips to `delta`.
  Status RedetectCells(const std::vector<CellCoord>& dirty,
                       OutlierDelta* delta);

  // Stages `center`'s segment (core) plus its supporting-ring cells
  // (support) into the arena — the exact layout the batch reducers stage.
  void StageCellWithRing(const CellCoord& center, TaskArena* arena) const;

  // The saturation cap: min_neighbors + summary_slack, clamped to int.
  int SaturationCap() const;

  // The summary fast path for one round: increments/decrements every dirty
  // cell's resident counts against the appended/evicted point segments,
  // flips verdicts of exact counts, then re-counts appended points and
  // saturated points whose bound fell below k via CountTargets. Applies
  // verdict flips to `delta` and fills its summary stats.
  Status SummaryUpdate(const std::vector<CellCoord>& dirty,
                       const std::vector<uint32_t>& appended_slots,
                       const std::vector<uint32_t>& evicted_slots,
                       OutlierDelta* delta);

  // Exact-or-saturated counts for every target point (staged core+ring,
  // executor fan-out, sequential fold); writes summaries and applies
  // verdict flips to `delta`.
  Status CountTargets(const std::vector<TargetCell>& targets,
                      OutlierDelta* delta);

  // Full deterministic rebuild of every resident point's summary (resume
  // from a summary-less checkpoint). Fails with kIoError when the
  // recomputed verdicts disagree with the restored flagged set.
  Status RebuildSummaries();

  void ApplyDeltaToOutlierSet(const OutlierDelta& delta);
  void RecordRound(const OutlierDelta& delta);

  std::string JobKey() const;
  Status CommitCheckpoint();
  Status RestoreLatest();

  StreamingConfig config_;
  double side_ = 0.0;
  int ring_ = 1;
  int dims_ = 0;  // 0 until the first non-empty block (or restore)
  double origin_[kMaxDimensions] = {0.0};

  std::optional<Dataset> window_;  // slot-indexed storage, rows recycled
  std::vector<SlotState> slots_;
  std::vector<uint32_t> free_slots_;
  std::unordered_map<PointId, uint32_t> id_to_slot_;
  std::unordered_map<CellCoord, CellState, CellCoordHash> cells_;
  // Per-source window slices, ordered by source id so expiry scans (and
  // the checkpoint codec) iterate deterministically.
  std::map<uint32_t, SourceWindow> windows_;
  uint64_t next_seq_ = 0;
  uint64_t round_ = 0;
  std::vector<PointId> outliers_;

  // Reorder stage (watermark mode; all empty/zero when disabled).
  std::deque<PendingBlock> reorder_;  // canonical admission order
  std::unordered_set<PointId> pending_ids_;  // ids parked in reorder_
  std::map<uint32_t, double> wm_clocks_;  // per-source max timestamp seen
  double global_max_ts_ = 0.0;
  bool saw_arrival_ = false;
  uint64_t next_arrival_ = 0;
  uint64_t arrivals_ = 0;
  uint64_t late_dropped_ = 0;

  std::unique_ptr<Detector> detector_;
  std::unique_ptr<ParallelExecutor> executor_;
  std::unique_ptr<CheckpointStore> store_;
};

}  // namespace dod

#endif  // DOD_STREAMING_STREAMING_DETECTOR_H_
