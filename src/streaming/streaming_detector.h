// Copyright 2026 The DOD Authors.
//
// Streaming outlier service: a long-running detector over a sliding window
// of ingested blocks, re-detecting incrementally instead of from scratch.
//
// The batch pipeline (core/pipeline.h) answers "which points of this
// dataset are outliers" by recomputing everything. Production traffic is a
// stream: blocks of points arrive, old blocks expire, and between two
// rounds only a small neighborhood of the window actually changes. The
// StreamingDetector exploits that:
//
//   * Window state lives in a uniform grid keyed exactly like the batch
//     detectors' grids (detection/cell_key.h): one appendable/expirable
//     point segment per cell (slot indices into a slot-recycling window
//     dataset) plus a per-point verdict summary — the collapsed
//     neighbor-count state |N_r(p)| >= k each point carried out of its
//     last evaluation.
//
//   * Feed(block) appends the block's points, expires blocks that fell out
//     of the window (count-based, time-based, or both), and computes the
//     dirty-cell set: every resident cell within the supporting ring of a
//     touched cell. With cell side s, a neighbor within distance r is at
//     most ceil(r/s) cells away in Chebyshev distance, so re-detecting the
//     touched cells plus that ring is exact — untouched cells cannot have
//     gained or lost a neighbor.
//
//   * Dirty cells re-detect through the existing kernel-backed detectors:
//     each dirty cell stages its core segment plus the ring cells' points
//     as support into one TaskArena (the columnar shuffle's shared-SoA
//     layout, detection/partition_view.h) and runs the configured
//     Detector on the zero-copy PartitionView, fanned out over a
//     ParallelExecutor. Verdicts are exact, so the result is byte-identical
//     to a from-scratch batch run over the current window for every thread
//     count, kernel mode, and detector choice.
//
//   * The emitted OutlierDelta is the verdict diff: ids newly flagged,
//     ids newly cleared (verdict flips and flagged points that expired),
//     and per-round stats. Applying deltas in order reconstructs the
//     current outlier set exactly.
//
// Durability: with checkpoint_dir set, the full window state (blocks,
// ids, coordinates, flagged set, round counter) is committed to a
// CheckpointStore every checkpoint_every rounds; Create(resume=true)
// restores the latest committed round and the service replays the rest of
// the schedule to the same verdicts and deltas as an uninterrupted run.
//
// Observability: every round emits a "stream"/"round" trace span and the
// stream.* metrics family (rounds, dirty-cell fraction, delta sizes,
// round latency histogram); tools/validate_trace checks the schema with
// --require_streaming.

#ifndef DOD_STREAMING_STREAMING_DETECTOR_H_
#define DOD_STREAMING_STREAMING_DETECTOR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/dataset.h"
#include "common/point.h"
#include "common/status.h"
#include "detection/cell_key.h"
#include "detection/detector.h"
#include "durability/checkpoint.h"
#include "runtime/parallel_executor.h"

namespace dod {

struct StreamingConfig {
  // Outlier definition + kernel mode; params.seed drives the per-cell
  // probe-order seeds exactly like the batch reducers.
  DetectionParams params;
  // Detector run on each dirty cell. Every kind is exact, so the choice
  // affects cost only, never verdicts.
  AlgorithmKind algorithm = AlgorithmKind::kCellBased;
  // Threads fanning out over dirty cells; <= 0 uses all hardware threads,
  // 1 runs inline. Deltas are byte-identical for every thread count.
  int num_threads = 1;

  // Count-based window: keep at most this many resident blocks; feeding
  // past the limit expires the oldest blocks in the same round. 0 = off.
  size_t window_blocks = 0;
  // Time-based window on caller-provided block timestamps: a block expires
  // once (newest timestamp seen) - (its timestamp) >= window_seconds.
  // 0 = off. Both windows may be active; either can expire a block.
  double window_seconds = 0.0;

  // Grid cell side; <= 0 defaults to params.radius. Smaller sides mean
  // tighter dirty sets but a wider supporting ring (ceil(radius / side)).
  double cell_side = 0.0;
  // Grid origin. Unlike the batch detectors (which anchor at the partition
  // bounds), the streaming grid must be anchored independently of window
  // contents or cell identities would shift between rounds. A
  // default-constructed (dims-0) point means the all-zero origin.
  Point grid_origin;

  // Durability: empty = no checkpointing. With a dir set, the window state
  // commits every `checkpoint_every` rounds (0 = only on Checkpoint()).
  std::string checkpoint_dir;
  bool resume = false;
  uint64_t checkpoint_every = 1;
  // Extra caller identity folded into the checkpoint job key (e.g. the
  // replay schedule's parameters); resume refuses a store written under a
  // different key with kFailedPrecondition.
  std::string job_tag;
};

// One ingested block: caller-assigned stable ids (unique among resident
// points) plus their coordinates.
struct StreamBlock {
  explicit StreamBlock(int dims) : points(dims) {}

  void Add(PointId id, const double* p) {
    ids.push_back(id);
    points.Append(p);
  }

  std::vector<PointId> ids;
  Dataset points;
  double timestamp = 0.0;
};

struct StreamRoundStats {
  // 1-based round number (count of completed Feed calls).
  uint64_t round = 0;
  size_t appended_points = 0;
  size_t expired_points = 0;
  size_t resident_points = 0;
  size_t resident_cells = 0;
  // Cells re-detected this round (touched + supporting ring).
  size_t dirty_cells = 0;
  // dirty_cells / resident_cells after the update (0 when no cells).
  double dirty_fraction = 0.0;
  // Wall time of the Feed call (timing; exempt from determinism).
  double round_seconds = 0.0;
};

// The verdict delta of one round. Outliers after the round =
// (outliers before) + newly_flagged - newly_cleared.
struct OutlierDelta {
  std::vector<PointId> newly_flagged;  // ascending
  std::vector<PointId> newly_cleared;  // ascending; flips and expired
  StreamRoundStats stats;
};

class StreamingDetector {
 public:
  // Validates the configuration, opens the checkpoint store when
  // configured, and (with resume) restores the latest committed round.
  static Result<std::unique_ptr<StreamingDetector>> Create(
      const StreamingConfig& config);

  // Ingests one block and returns the verdict delta. Rejects duplicate ids
  // (within the block or against resident points), dimension mismatches,
  // and non-finite coordinates with kInvalidArgument; on error the window
  // is unchanged. An empty block with no expiries is a no-op delta (the
  // round still counts).
  Result<OutlierDelta> Feed(const StreamBlock& block);

  // Commits the window state to the checkpoint store now. kFailedPrecondition
  // when no checkpoint_dir was configured.
  Status Checkpoint();

  // Completed Feed rounds (restored rounds included).
  uint64_t rounds() const { return round_; }
  size_t resident_points() const { return id_to_slot_.size(); }
  size_t resident_cells() const { return cells_.size(); }
  // Current outlier ids, ascending. Byte-identical to a from-scratch batch
  // run over the window contents.
  const std::vector<PointId>& outliers() const { return outliers_; }

 private:
  struct CellState {
    // Appendable/expirable point segment: slot indices, append order.
    std::vector<uint32_t> slots;
  };
  struct SlotState {
    PointId stream_id = 0;
    // Verdict summary from the point's last evaluation (|N_r| < k).
    uint8_t flagged = 0;
  };
  struct WindowBlock {
    uint64_t seq = 0;
    double timestamp = 0.0;
    std::vector<uint32_t> slots;
  };

  explicit StreamingDetector(const StreamingConfig& config);

  Status InitDims(int dims);
  Status ValidateBlock(const StreamBlock& block) const;
  uint32_t AllocSlot(PointId id, const double* p);
  CellCoord KeyOf(const double* p) const;

  // Appends the block's points into slots/cells (no detection); the cell
  // of every appended point is added to `touched`.
  void AppendBlock(const StreamBlock& block, std::vector<CellCoord>* touched);
  // Pops expired blocks off the window front into `touched` /
  // `expired_flagged` (flagged ids leaving the window) and returns the
  // number of expired points.
  size_t ExpireBlocks(double high_water, std::vector<CellCoord>* touched,
                      std::vector<PointId>* expired_flagged);

  // Resident cells within Chebyshev distance `ring_` of any touched cell,
  // deduplicated and in deterministic (lexicographic) order.
  std::vector<CellCoord> DirtyCells(std::vector<CellCoord>* touched) const;

  // Re-detects `dirty` and applies verdict flips to `delta`.
  Status RedetectCells(const std::vector<CellCoord>& dirty,
                       OutlierDelta* delta);

  void ApplyDeltaToOutlierSet(const OutlierDelta& delta);
  void RecordRound(const OutlierDelta& delta);

  std::string JobKey() const;
  Status CommitCheckpoint();
  Status RestoreLatest();

  StreamingConfig config_;
  double side_ = 0.0;
  int ring_ = 1;
  int dims_ = 0;  // 0 until the first non-empty block (or restore)
  double origin_[kMaxDimensions] = {0.0};
  double high_water_ts_ = 0.0;
  bool saw_timestamp_ = false;

  std::optional<Dataset> window_;  // slot-indexed storage, rows recycled
  std::vector<SlotState> slots_;
  std::vector<uint32_t> free_slots_;
  std::unordered_map<PointId, uint32_t> id_to_slot_;
  std::unordered_map<CellCoord, CellState, CellCoordHash> cells_;
  std::deque<WindowBlock> blocks_;
  uint64_t next_seq_ = 0;
  uint64_t round_ = 0;
  std::vector<PointId> outliers_;

  std::unique_ptr<Detector> detector_;
  std::unique_ptr<ParallelExecutor> executor_;
  std::unique_ptr<CheckpointStore> store_;
};

}  // namespace dod

#endif  // DOD_STREAMING_STREAMING_DETECTOR_H_
