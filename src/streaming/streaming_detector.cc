// Copyright 2026 The DOD Authors.

#include "streaming/streaming_detector.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <unordered_set>
#include <utility>

#include "common/timer.h"
#include "detection/neighbor_count.h"
#include "detection/partition_view.h"
#include "durability/payload.h"
#include "observability/metrics.h"
#include "observability/trace.h"

namespace dod {
namespace {

// Version 3 added per-source windows and the watermark/reorder section
// (arrival counters, per-source clocks, buffered blocks). Version 2 added
// the per-point neighbor-count summaries (gated by a has_summaries flag,
// so summaries-off snapshots stay lean). Version-1/2 snapshots are still
// read — their single window restores as source 0, summaries rebuild on
// restore when absent, and per-source clocks rebuild deterministically
// from the restored blocks' timestamps. Versions beyond 3 fail with
// kFailedPrecondition: an older reader must refuse a newer writer's
// state rather than misparse it.
constexpr uint32_t kStreamStateVersion = 3;

// Same per-cell seed derivation as the batch reducers (core/pipeline.cc):
// the detector's probe-order seed and the arena's permutation seed come
// from independent streams so slot order and probe starts don't correlate.
constexpr uint64_t kArenaSeedSalt = 0xA5C3D2E1F0B49687ULL;

uint64_t CellSeed(uint64_t base, uint64_t cell) {
  return base ^ (0x9E3779B97F4A7C15ULL * (cell + 1));
}

uint64_t CoordToken(const CellCoord& coord) {
  return static_cast<uint64_t>(CellCoordHash{}(coord));
}

void SortUnique(std::vector<CellCoord>* coords) {
  std::sort(coords->begin(), coords->end(), CellCoordLess{});
  coords->erase(std::unique(coords->begin(), coords->end()), coords->end());
}

// Invokes fn(coord) for every cell coordinate within Chebyshev distance
// `ring` of `center` — center included — in odometer order over the
// (2*ring+1)^dims offset block (dimension 0 fastest).
template <typename Fn>
void ForEachInRing(const CellCoord& center, int ring, Fn&& fn) {
  CellCoord probe;
  probe.dims = center.dims;
  int offset[kMaxDimensions];
  for (int d = 0; d < center.dims; ++d) {
    offset[d] = -ring;
    probe.c[d] = center.c[d] - ring;
  }
  while (true) {
    fn(probe);
    int d = 0;
    while (d < center.dims) {
      if (++offset[d] <= ring) {
        probe.c[d] = center.c[d] + offset[d];
        break;
      }
      offset[d] = -ring;
      probe.c[d] = center.c[d] - ring;
      ++d;
    }
    if (d == center.dims) break;
  }
}

// Half-open slot range of one cell's segment inside a SegmentIndex SoA.
struct CellSegment {
  uint32_t begin = 0;
  uint32_t end = 0;
};

// The appended/evicted points of one round, laid out cell by cell in one
// SoA so a dirty cell's residents count against each nearby segment with a
// single batched kernel call.
struct SegmentIndex {
  explicit SegmentIndex(int dims) : soa(dims) {}
  SoABlock soa;
  std::unordered_map<CellCoord, CellSegment, CellCoordHash> ranges;
  bool empty() const { return soa.empty(); }
};

}  // namespace

StreamingDetector::StreamingDetector(const StreamingConfig& config)
    : config_(config),
      side_(config.cell_side > 0.0 ? config.cell_side
                                   : config.params.radius),
      detector_(MakeDetector(config.algorithm)),
      executor_(std::make_unique<ParallelExecutor>(config.num_threads)) {
  // Supporting ring: with cell side s, any neighbor within distance r is
  // at most ceil(r/s) cells away per dimension (see DirtyCells).
  ring_ = static_cast<int>(std::ceil(config_.params.radius / side_));
  if (ring_ < 1) ring_ = 1;
  if (config_.grid_origin.dims() > 0) {
    for (int i = 0; i < config_.grid_origin.dims(); ++i) {
      origin_[i] = config_.grid_origin[i];
    }
  }
}

Result<std::unique_ptr<StreamingDetector>> StreamingDetector::Create(
    const StreamingConfig& config) {
  if (config.params.radius <= 0.0 || config.params.min_neighbors < 1) {
    return Status::InvalidArgument(
        "StreamingDetector: radius must be > 0 and min_neighbors >= 1");
  }
  if (config.cell_side < 0.0 || config.window_seconds < 0.0) {
    return Status::InvalidArgument(
        "StreamingDetector: cell_side and window_seconds must be >= 0");
  }
  if (config.summary_slack < 0) {
    return Status::InvalidArgument(
        "StreamingDetector: summary_slack must be >= 0");
  }
  if (config.watermark.enabled &&
      (!std::isfinite(config.watermark.lateness) ||
       config.watermark.lateness < 0.0 ||
       !std::isfinite(config.watermark.idle_timeout) ||
       config.watermark.idle_timeout < 0.0)) {
    return Status::InvalidArgument(
        "StreamingDetector: watermark lateness and idle_timeout must be "
        "finite and >= 0");
  }
  if (config.resume && config.checkpoint_dir.empty()) {
    return Status::InvalidArgument(
        "StreamingDetector: resume requires checkpoint_dir");
  }
  std::unique_ptr<StreamingDetector> service(new StreamingDetector(config));
  if (!config.checkpoint_dir.empty()) {
    DOD_ASSIGN_OR_RETURN(service->store_,
                         CheckpointStore::Open(config.checkpoint_dir,
                                               service->JobKey(),
                                               config.resume));
    if (config.resume) DOD_RETURN_IF_ERROR(service->RestoreLatest());
  }
  return service;
}

Status StreamingDetector::InitDims(int dims) {
  if (dims < 1 || dims > kMaxDimensions) {
    return Status::InvalidArgument("StreamingDetector: unsupported dims " +
                                   std::to_string(dims));
  }
  if (config_.grid_origin.dims() > 0 && config_.grid_origin.dims() != dims) {
    return Status::InvalidArgument(
        "StreamingDetector: block dims do not match grid_origin dims");
  }
  dims_ = dims;
  window_.emplace(dims);
  return Status::Ok();
}

Status StreamingDetector::ValidateBlock(const StreamBlock& block) const {
  if (block.ids.size() != block.points.size()) {
    return Status::InvalidArgument(
        "StreamingDetector::Feed: block has " +
        std::to_string(block.ids.size()) + " ids for " +
        std::to_string(block.points.size()) + " points");
  }
  if (block.points.empty()) return Status::Ok();
  if (dims_ != 0 && block.points.dims() != dims_) {
    return Status::InvalidArgument(
        "StreamingDetector::Feed: block dims " +
        std::to_string(block.points.dims()) + " != window dims " +
        std::to_string(dims_));
  }
  DOD_RETURN_IF_ERROR(block.points.Validate());
  std::unordered_set<PointId> seen;
  seen.reserve(block.ids.size());
  for (PointId id : block.ids) {
    if (!seen.insert(id).second || id_to_slot_.count(id) != 0) {
      return Status::InvalidArgument(
          "StreamingDetector::Feed: duplicate point id " +
          std::to_string(id) + " (ids must be unique among resident points)");
    }
  }
  return Status::Ok();
}

uint32_t StreamingDetector::AllocSlot(PointId id, const double* p) {
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    double* row = window_->mutable_raw().data() +
                  static_cast<size_t>(slot) * dims_;
    std::copy(p, p + dims_, row);
  } else {
    slot = static_cast<uint32_t>(window_->Append(p));
    slots_.push_back(SlotState{});
  }
  SlotState fresh;
  fresh.stream_id = id;
  slots_[slot] = fresh;
  id_to_slot_[id] = slot;
  return slot;
}

CellCoord StreamingDetector::KeyOf(const double* p) const {
  // The exact keying the batch grids use (detection/cell_key.h).
  return UniformCellKey(p, dims_, origin_, side_);
}

void StreamingDetector::AppendBlock(const StreamBlock& block,
                                    std::vector<CellCoord>* touched,
                                    std::vector<uint32_t>* appended_slots) {
  if (block.points.empty()) return;
  WindowBlock wb;
  wb.seq = next_seq_++;
  wb.timestamp = block.timestamp;
  wb.slots.reserve(block.ids.size());
  for (size_t i = 0; i < block.ids.size(); ++i) {
    const double* p = block.points[static_cast<PointId>(i)];
    const uint32_t slot = AllocSlot(block.ids[i], p);
    const CellCoord coord = KeyOf(p);
    cells_[coord].slots.push_back(slot);
    wb.slots.push_back(slot);
    touched->push_back(coord);
    appended_slots->push_back(slot);
  }
  windows_[block.source_id].blocks.push_back(std::move(wb));
}

size_t StreamingDetector::ExpireBlocks(std::vector<CellCoord>* touched,
                                       std::vector<PointId>* expired_flagged,
                                       std::vector<uint32_t>* evicted_slots) {
  size_t expired_points = 0;
  // Ascending source-id order keeps the eviction sequence — and therefore
  // the evicted SoA segments and delta stats — deterministic. Emptied
  // windows stay resident: their expiry clock must survive idle gaps.
  for (auto& entry : windows_) {
    SourceWindow& source = entry.second;
    while (!source.blocks.empty()) {
      const bool over_count = config_.window_blocks > 0 &&
                              source.blocks.size() > config_.window_blocks;
      const bool over_age =
          config_.window_seconds > 0.0 && source.saw_timestamp &&
          source.high_water - source.blocks.front().timestamp >=
              config_.window_seconds;
      if (!over_count && !over_age) break;
      WindowBlock block = std::move(source.blocks.front());
      source.blocks.pop_front();
      for (uint32_t slot : block.slots) {
        const SlotState& state = slots_[slot];
        const CellCoord coord = KeyOf((*window_)[slot]);
        auto it = cells_.find(coord);
        DOD_CHECK(it != cells_.end());
        std::vector<uint32_t>& members = it->second.slots;
        members.erase(std::find(members.begin(), members.end(), slot));
        if (members.empty()) cells_.erase(it);
        touched->push_back(coord);
        if (state.flagged != 0) expired_flagged->push_back(state.stream_id);
        id_to_slot_.erase(state.stream_id);
        free_slots_.push_back(slot);
        evicted_slots->push_back(slot);
        ++expired_points;
      }
    }
  }
  return expired_points;
}

std::vector<CellCoord> StreamingDetector::DirtyCells(
    std::vector<CellCoord>* touched) const {
  SortUnique(touched);
  // Expand each touched cell by the supporting ring and keep the resident
  // ones. Correctness: a point q's neighbor count changed iff a point
  // within distance r of q was appended or expired; that point's cell is
  // touched, and q's cell is then within ring_ of it (coordinates more
  // than ring_ cells apart differ by > ring_*side >= r in that dimension).
  std::unordered_set<CellCoord, CellCoordHash> dirty;
  for (const CellCoord& center : *touched) {
    ForEachInRing(center, ring_, [&](const CellCoord& probe) {
      if (cells_.count(probe) != 0) dirty.insert(probe);
    });
  }
  std::vector<CellCoord> result(dirty.begin(), dirty.end());
  std::sort(result.begin(), result.end(), CellCoordLess{});
  return result;
}

void StreamingDetector::StageCellWithRing(const CellCoord& center,
                                          TaskArena* arena) const {
  arena->BeginCell();
  const CellState& cell = cells_.at(center);
  for (uint32_t slot : cell.slots) arena->AddPoint(slot);
  const size_t num_core = cell.slots.size();
  ForEachInRing(center, ring_, [&](const CellCoord& probe) {
    if (probe == center) return;
    auto it = cells_.find(probe);
    if (it == cells_.end()) return;
    for (uint32_t slot : it->second.slots) arena->AddPoint(slot);
  });
  arena->EndCell(num_core, CellSeed(config_.params.seed, CoordToken(center)) ^
                               kArenaSeedSalt);
}

Status StreamingDetector::RedetectCells(const std::vector<CellCoord>& dirty,
                                        OutlierDelta* delta) {
  if (dirty.empty()) return Status::Ok();

  // Stage every dirty cell into one shared probe arena: the cell's own
  // segment as core points, the points of its supporting-ring cells as
  // support — the same core-first layout the batch reducers stage.
  TaskArena arena(*window_);
  for (const CellCoord& center : dirty) StageCellWithRing(center, &arena);
  DOD_RETURN_IF_ERROR(arena.TryBuildProbes());

  // Fan the dirty cells out over the executor; per-cell results stage into
  // flagged_local and are folded sequentially below, so deltas are
  // byte-identical for every thread count.
  std::vector<std::vector<uint32_t>> flagged_local(dirty.size());
  DOD_RETURN_IF_ERROR(executor_->RunTasks(
      dirty.size(), [&](size_t i) -> Status {
        const PartitionView view = arena.View(i);
        DetectionParams params = config_.params;
        params.seed = CellSeed(config_.params.seed, CoordToken(dirty[i]));
        flagged_local[i] =
            detector_->DetectOutliers(view, params, /*counters=*/nullptr);
        return Status::Ok();
      }));

  for (size_t i = 0; i < dirty.size(); ++i) {
    const CellState& cell = cells_.at(dirty[i]);
    const std::vector<uint32_t>& flagged = flagged_local[i];  // ascending
    size_t cursor = 0;
    for (size_t j = 0; j < cell.slots.size(); ++j) {
      while (cursor < flagged.size() && flagged[cursor] < j) ++cursor;
      const bool now = cursor < flagged.size() && flagged[cursor] == j;
      SlotState& state = slots_[cell.slots[j]];
      if (now != (state.flagged != 0)) {
        (now ? delta->newly_flagged : delta->newly_cleared)
            .push_back(state.stream_id);
        state.flagged = now ? 1 : 0;
      }
    }
  }
  return Status::Ok();
}

int StreamingDetector::SaturationCap() const {
  const long long cap = static_cast<long long>(config_.params.min_neighbors) +
                        config_.summary_slack;
  return static_cast<int>(
      std::min<long long>(cap, std::numeric_limits<int>::max()));
}

size_t StreamingDetector::saturated_points() const {
  size_t n = 0;
  for (const auto& entry : id_to_slot_) {
    if (slots_[entry.second].saturated != 0) ++n;
  }
  return n;
}

Status StreamingDetector::SummaryUpdate(
    const std::vector<CellCoord>& dirty,
    const std::vector<uint32_t>& appended_slots,
    const std::vector<uint32_t>& evicted_slots, OutlierDelta* delta) {
  delta->stats.summary_path = true;
  std::vector<TargetCell> targets;
  {
    trace::Span span("stream", "summary_update");
    if (dims_ != 0 && !dirty.empty()) {
      // Appended/evicted point segments, grouped by cell in one SoA each.
      // Evicted coordinates are still readable: freed slots are only
      // recycled by the *next* round's appends.
      SegmentIndex inserted(dims_);
      SegmentIndex evicted(dims_);
      const auto build = [&](const std::vector<uint32_t>& round_slots,
                             SegmentIndex* index) {
        std::vector<std::pair<CellCoord, uint32_t>> items;
        items.reserve(round_slots.size());
        for (uint32_t slot : round_slots) {
          items.emplace_back(KeyOf((*window_)[slot]), slot);
        }
        std::stable_sort(items.begin(), items.end(),
                         [](const std::pair<CellCoord, uint32_t>& a,
                            const std::pair<CellCoord, uint32_t>& b) {
                           return CellCoordLess{}(a.first, b.first);
                         });
        index->soa.Reserve(items.size());
        for (size_t i = 0; i < items.size();) {
          size_t j = i;
          while (j < items.size() && items[j].first == items[i].first) {
            index->soa.Append((*window_)[items[j].second], items[j].second);
            ++j;
          }
          index->ranges.emplace(
              items[i].first, CellSegment{static_cast<uint32_t>(i),
                                          static_cast<uint32_t>(j)});
          i = j;
        }
      };
      build(appended_slots, &inserted);
      build(evicted_slots, &evicted);

      std::vector<uint8_t> is_new(slots_.size(), 0);
      for (uint32_t slot : appended_slots) is_new[slot] = 1;

      // Per dirty cell, in parallel: count the cell's surviving old
      // residents against every appended (increment) and evicted
      // (decrement) segment within the supporting ring. Results stage per
      // cell and fold sequentially below.
      struct CellPass {
        std::vector<uint32_t> old_slots;  // queries, segment order
        std::vector<uint32_t> inc;
        std::vector<uint32_t> dec;
        uint64_t inc_pairs = 0;
        uint64_t dec_pairs = 0;
      };
      const double sq_radius =
          config_.params.radius * config_.params.radius;
      std::vector<CellPass> pass(dirty.size());
      DOD_RETURN_IF_ERROR(executor_->RunTasks(
          dirty.size(), [&](size_t i) -> Status {
            CellPass& p = pass[i];
            const CellState& cell = cells_.at(dirty[i]);
            std::vector<double> queries;
            queries.reserve(cell.slots.size() *
                            static_cast<size_t>(dims_));
            for (uint32_t slot : cell.slots) {
              if (is_new[slot] != 0) continue;
              p.old_slots.push_back(slot);
              const double* row = (*window_)[slot];
              queries.insert(queries.end(), row, row + dims_);
            }
            if (p.old_slots.empty()) return Status::Ok();
            p.inc.assign(p.old_slots.size(), 0);
            p.dec.assign(p.old_slots.size(), 0);
            ForEachInRing(dirty[i], ring_, [&](const CellCoord& probe) {
              if (!inserted.empty()) {
                auto it = inserted.ranges.find(probe);
                if (it != inserted.ranges.end()) {
                  CountBlockAgainstSegment(
                      inserted.soa, it->second.begin, it->second.end,
                      queries.data(), p.old_slots.size(), sq_radius,
                      config_.params.kernels, p.inc.data(), &p.inc_pairs);
                }
              }
              if (!evicted.empty()) {
                auto it = evicted.ranges.find(probe);
                if (it != evicted.ranges.end()) {
                  CountBlockAgainstSegment(
                      evicted.soa, it->second.begin, it->second.end,
                      queries.data(), p.old_slots.size(), sq_radius,
                      config_.params.kernels, p.dec.data(), &p.dec_pairs);
                }
              }
            });
            return Status::Ok();
          }));

      // Sequential fold in dirty (lexicographic) order: exact counts
      // adjust and flip in place; saturated bounds absorb the delta and
      // queue a re-count only when they drop below k; appended points
      // queue their first count.
      const int k = config_.params.min_neighbors;
      for (size_t i = 0; i < dirty.size(); ++i) {
        const CellState& cell = cells_.at(dirty[i]);
        const CellPass& p = pass[i];
        TargetCell target;
        target.coord = dirty[i];
        size_t q = 0;
        for (size_t j = 0; j < cell.slots.size(); ++j) {
          const uint32_t slot = cell.slots[j];
          if (is_new[slot] != 0) {
            target.locals.push_back(static_cast<uint32_t>(j));
            ++delta->stats.full_counted_points;
            continue;
          }
          DOD_CHECK(q < p.old_slots.size() && p.old_slots[q] == slot);
          const long long inc = p.inc[q];
          const long long dec = p.dec[q];
          ++q;
          if (inc == 0 && dec == 0) continue;
          SlotState& state = slots_[slot];
          if (state.saturated == 0) {
            const long long next =
                static_cast<long long>(state.count) + inc - dec;
            DOD_CHECK(next >= 0);
            state.count = static_cast<uint32_t>(next);
            const bool now = next < k;
            if (now != (state.flagged != 0)) {
              (now ? delta->newly_flagged : delta->newly_cleared)
                  .push_back(state.stream_id);
              state.flagged = now ? 1 : 0;
            }
          } else {
            const long long bound =
                static_cast<long long>(state.count) + inc - dec;
            if (bound >= k) {
              // True count >= old count + inc - dec, so the bound stays
              // certified; the point stays a known inlier.
              state.count = static_cast<uint32_t>(bound);
            } else {
              state.count =
                  static_cast<uint32_t>(std::max(bound, 0LL));
              target.locals.push_back(static_cast<uint32_t>(j));
              ++delta->stats.recounted_points;
            }
          }
        }
        delta->stats.insert_pairs += p.inc_pairs;
        delta->stats.expiry_pairs += p.dec_pairs;
        if (!target.locals.empty()) targets.push_back(std::move(target));
      }
    }
    span.Arg("dirty_cells", static_cast<uint64_t>(dirty.size()))
        .Arg("inc_pairs", delta->stats.insert_pairs)
        .Arg("dec_pairs", delta->stats.expiry_pairs);
  }
  return CountTargets(targets, delta);
}

Status StreamingDetector::CountTargets(const std::vector<TargetCell>& targets,
                                       OutlierDelta* delta) {
  trace::Span span("stream", "summary_recount");
  span.Arg("recounts",
           static_cast<uint64_t>(delta->stats.recounted_points))
      .Arg("full_counts",
           static_cast<uint64_t>(delta->stats.full_counted_points));
  if (targets.empty()) return Status::Ok();

  TaskArena arena(*window_);
  for (const TargetCell& target : targets) {
    StageCellWithRing(target.coord, &arena);
  }
  DOD_RETURN_IF_ERROR(arena.TryBuildProbes());

  const int cap = SaturationCap();
  std::vector<std::vector<NeighborCountSummary>> staged(targets.size());
  DOD_RETURN_IF_ERROR(executor_->RunTasks(
      targets.size(), [&](size_t i) -> Status {
        const PartitionView view = arena.View(i);
        DetectionParams params = config_.params;
        params.seed =
            CellSeed(config_.params.seed, CoordToken(targets[i].coord));
        std::vector<NeighborCountSummary>& out = staged[i];
        out.reserve(targets[i].locals.size());
        for (uint32_t local : targets[i].locals) {
          out.push_back(
              CountNeighbors(view, local, params, cap, /*pairs=*/nullptr));
        }
        return Status::Ok();
      }));

  const uint32_t k =
      static_cast<uint32_t>(config_.params.min_neighbors);
  for (size_t i = 0; i < targets.size(); ++i) {
    const CellState& cell = cells_.at(targets[i].coord);
    for (size_t t = 0; t < targets[i].locals.size(); ++t) {
      const NeighborCountSummary summary = staged[i][t];
      SlotState& state = slots_[cell.slots[targets[i].locals[t]]];
      state.count = summary.count;
      state.saturated = summary.saturated ? 1 : 0;
      const bool now = !summary.saturated && summary.count < k;
      if (now != (state.flagged != 0)) {
        (now ? delta->newly_flagged : delta->newly_cleared)
            .push_back(state.stream_id);
        state.flagged = now ? 1 : 0;
      }
    }
  }
  return Status::Ok();
}

Status StreamingDetector::RebuildSummaries() {
  std::vector<CellCoord> coords;
  coords.reserve(cells_.size());
  for (const auto& entry : cells_) coords.push_back(entry.first);
  std::sort(coords.begin(), coords.end(), CellCoordLess{});
  std::vector<TargetCell> targets;
  targets.reserve(coords.size());
  size_t total = 0;
  for (const CellCoord& coord : coords) {
    TargetCell target;
    target.coord = coord;
    const size_t n = cells_.at(coord).slots.size();
    target.locals.resize(n);
    for (size_t j = 0; j < n; ++j) {
      target.locals[j] = static_cast<uint32_t>(j);
    }
    total += n;
    targets.push_back(std::move(target));
  }
  OutlierDelta scratch;
  scratch.stats.full_counted_points = total;
  DOD_RETURN_IF_ERROR(CountTargets(targets, &scratch));
  // The restored flagged set fixed every verdict; a recount that flips one
  // means the snapshot's outliers disagree with its window contents.
  if (!scratch.newly_flagged.empty() || !scratch.newly_cleared.empty()) {
    return Status::IoError(
        "stream checkpoint: flagged set disagrees with window contents");
  }
  return Status::Ok();
}

void StreamingDetector::ApplyDeltaToOutlierSet(const OutlierDelta& delta) {
  if (delta.newly_flagged.empty() && delta.newly_cleared.empty()) return;
  std::vector<PointId> next;
  next.reserve(outliers_.size() + delta.newly_flagged.size());
  std::set_difference(outliers_.begin(), outliers_.end(),
                      delta.newly_cleared.begin(), delta.newly_cleared.end(),
                      std::back_inserter(next));
  std::vector<PointId> merged;
  merged.reserve(next.size() + delta.newly_flagged.size());
  std::merge(next.begin(), next.end(), delta.newly_flagged.begin(),
             delta.newly_flagged.end(), std::back_inserter(merged));
  outliers_ = std::move(merged);
}

void StreamingDetector::RecordRound(const OutlierDelta& delta) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  static const uint32_t kRounds =
      metrics.Id("stream.rounds", MetricKind::kCounter);
  static const uint32_t kDirtyCells =
      metrics.Id("stream.cells_redetected", MetricKind::kCounter);
  static const uint32_t kFlagged =
      metrics.Id("stream.delta_flagged", MetricKind::kCounter);
  static const uint32_t kCleared =
      metrics.Id("stream.delta_cleared", MetricKind::kCounter);
  static const uint32_t kResident =
      metrics.Id("stream.resident_points", MetricKind::kGauge);
  static const uint32_t kDirtyFraction =
      metrics.Id("stream.dirty_cell_fraction", MetricKind::kHistogram);
  static const uint32_t kRoundSeconds =
      metrics.Id("stream.round_seconds", MetricKind::kHistogram);
  // The stream.summary.* family registers on every round (schema presence
  // is mode-independent); the counters only move on summary-path rounds.
  static const uint32_t kSummaryRounds =
      metrics.Id("stream.summary.rounds", MetricKind::kCounter);
  static const uint32_t kSummaryBypassed =
      metrics.Id("stream.summary.rounds_bypassed", MetricKind::kCounter);
  static const uint32_t kInsertPairs =
      metrics.Id("stream.summary.insert_count_pairs", MetricKind::kCounter);
  static const uint32_t kExpiryPairs =
      metrics.Id("stream.summary.expiry_count_pairs", MetricKind::kCounter);
  static const uint32_t kFullPoints =
      metrics.Id("stream.summary.full_count_points", MetricKind::kCounter);
  static const uint32_t kRecountPoints =
      metrics.Id("stream.summary.recount_points", MetricKind::kCounter);
  static const uint32_t kSaturated =
      metrics.Id("stream.summary.saturated_points", MetricKind::kGauge);
  static const uint32_t kRecountQueue =
      metrics.Id("stream.summary.recount_queue", MetricKind::kHistogram);
  // The stream.watermark.* family and stream.late_dropped likewise
  // register on every round so validate_trace sees the schema on in-order
  // runs too; the counters only move under a watermark policy.
  static const uint32_t kLateDropped =
      metrics.Id("stream.late_dropped", MetricKind::kCounter);
  static const uint32_t kAdvances =
      metrics.Id("stream.watermark.advances", MetricKind::kCounter);
  static const uint32_t kReorderAdmitted =
      metrics.Id("stream.watermark.reorder_admitted", MetricKind::kCounter);
  static const uint32_t kBuffered =
      metrics.Id("stream.watermark.buffered_blocks", MetricKind::kGauge);
  static const uint32_t kSources =
      metrics.Id("stream.watermark.sources", MetricKind::kGauge);
  (void)kLateDropped;
  (void)kAdvances;
  (void)kBuffered;
  if (config_.watermark.enabled) metrics.Increment(kReorderAdmitted);
  metrics.SetMax(kSources, static_cast<double>(windows_.size()));
  metrics.Increment(kRounds);
  metrics.Increment(kDirtyCells, delta.stats.dirty_cells);
  metrics.Increment(kFlagged, delta.newly_flagged.size());
  metrics.Increment(kCleared, delta.newly_cleared.size());
  metrics.SetMax(kResident,
                 static_cast<double>(delta.stats.resident_points));
  metrics.Observe(kDirtyFraction, delta.stats.dirty_fraction);
  metrics.Observe(kRoundSeconds, delta.stats.round_seconds);
  if (delta.stats.summary_path) {
    metrics.Increment(kSummaryRounds);
    metrics.Increment(kInsertPairs, delta.stats.insert_pairs);
    metrics.Increment(kExpiryPairs, delta.stats.expiry_pairs);
    metrics.Increment(kFullPoints, delta.stats.full_counted_points);
    metrics.Increment(kRecountPoints, delta.stats.recounted_points);
    metrics.SetMax(kSaturated, static_cast<double>(saturated_points()));
    metrics.Observe(kRecountQueue,
                    static_cast<double>(delta.stats.recounted_points));
  } else {
    metrics.Increment(kSummaryBypassed);
  }
}

Result<OutlierDelta> StreamingDetector::AdmitBlock(const StreamBlock& block) {
  StopWatch watch;
  DOD_RETURN_IF_ERROR(ValidateBlock(block));
  if (dims_ == 0 && !block.points.empty()) {
    DOD_RETURN_IF_ERROR(InitDims(block.points.dims()));
  }
  trace::Span span("stream", "round");

  OutlierDelta delta;
  std::vector<CellCoord> touched;
  std::vector<PointId> expired_flagged;
  std::vector<uint32_t> appended_slots;
  std::vector<uint32_t> evicted_slots;
  AppendBlock(block, &touched, &appended_slots);
  if (config_.window_seconds > 0.0) {
    SourceWindow& source = windows_[block.source_id];
    source.high_water = source.saw_timestamp
                            ? std::max(source.high_water, block.timestamp)
                            : block.timestamp;
    source.saw_timestamp = true;
  }
  const size_t expired_points =
      ExpireBlocks(&touched, &expired_flagged, &evicted_slots);

  const std::vector<CellCoord> dirty = DirtyCells(&touched);
  if (config_.summaries) {
    DOD_RETURN_IF_ERROR(
        SummaryUpdate(dirty, appended_slots, evicted_slots, &delta));
  } else {
    DOD_RETURN_IF_ERROR(RedetectCells(dirty, &delta));
  }

  // Flagged points that left the window clear by expiry; verdict flips
  // were collected per dirty cell above. The two sources are disjoint
  // (expired slots are out of every cell before detection runs).
  delta.newly_cleared.insert(delta.newly_cleared.end(),
                             expired_flagged.begin(), expired_flagged.end());
  std::sort(delta.newly_flagged.begin(), delta.newly_flagged.end());
  std::sort(delta.newly_cleared.begin(), delta.newly_cleared.end());
  ApplyDeltaToOutlierSet(delta);

  ++round_;
  delta.stats.round = round_;
  delta.stats.appended_points = block.ids.size();
  delta.stats.expired_points = expired_points;
  delta.stats.resident_points = id_to_slot_.size();
  delta.stats.resident_cells = cells_.size();
  delta.stats.dirty_cells = dirty.size();
  delta.stats.dirty_fraction =
      cells_.empty() ? 0.0
                     : static_cast<double>(dirty.size()) /
                           static_cast<double>(cells_.size());
  delta.stats.round_seconds = watch.ElapsedSeconds();
  RecordRound(delta);
  span.Arg("round", delta.stats.round)
      .Arg("appended", static_cast<uint64_t>(delta.stats.appended_points))
      .Arg("expired", static_cast<uint64_t>(expired_points))
      .Arg("dirty_cells", static_cast<uint64_t>(dirty.size()))
      .Arg("flagged", static_cast<uint64_t>(delta.newly_flagged.size()))
      .Arg("cleared", static_cast<uint64_t>(delta.newly_cleared.size()));
  return delta;
}

Result<OutlierDelta> StreamingDetector::Feed(const StreamBlock& block) {
  if (config_.watermark.enabled) {
    return Status::FailedPrecondition(
        "StreamingDetector::Feed: a watermark policy is enabled; blocks "
        "must go through Ingest so the reorder stage sees them");
  }
  DOD_ASSIGN_OR_RETURN(OutlierDelta delta, AdmitBlock(block));
  arrivals_ = round_;  // in-order mode: one arrival per round, by definition
  if (store_ != nullptr && config_.checkpoint_every > 0 &&
      round_ % config_.checkpoint_every == 0) {
    DOD_RETURN_IF_ERROR(CommitCheckpoint());
  }
  return delta;
}

Status StreamingDetector::ValidateArrival(const StreamBlock& block) const {
  if (!std::isfinite(block.timestamp)) {
    return Status::InvalidArgument(
        "StreamingDetector::Ingest: block timestamp must be finite under a "
        "watermark policy");
  }
  DOD_RETURN_IF_ERROR(ValidateBlock(block));
  for (PointId id : block.ids) {
    if (pending_ids_.count(id) != 0) {
      return Status::InvalidArgument(
          "StreamingDetector::Ingest: duplicate point id " +
          std::to_string(id) + " (already parked in the reorder buffer)");
    }
  }
  // The window learns its dims from the first *admitted* block; arrivals
  // must agree among themselves too, or a buffered block would fail — and
  // abort a drain half-applied — only at admission time.
  if (dims_ == 0 && !block.points.empty()) {
    for (const PendingBlock& pending : reorder_) {
      if (pending.block.points.empty()) continue;
      if (pending.block.points.dims() != block.points.dims()) {
        return Status::InvalidArgument(
            "StreamingDetector::Ingest: block dims " +
            std::to_string(block.points.dims()) + " != buffered dims " +
            std::to_string(pending.block.points.dims()));
      }
      break;
    }
  }
  return Status::Ok();
}

bool StreamingDetector::CurrentWatermark(double* watermark) const {
  if (!saw_arrival_) return false;
  // min over live sources of max_seen - L. A source lagging the global
  // maximum by more than idle_timeout is excluded until it sends again;
  // the source holding the global maximum lags by zero, so at least one
  // clock always survives the filter.
  bool any = false;
  double min_clock = 0.0;
  for (const auto& entry : wm_clocks_) {
    if (config_.watermark.idle_timeout > 0.0 &&
        global_max_ts_ - entry.second > config_.watermark.idle_timeout) {
      continue;
    }
    if (!any || entry.second < min_clock) {
      min_clock = entry.second;
      any = true;
    }
  }
  if (!any) return false;
  *watermark = min_clock - config_.watermark.lateness;
  return true;
}

Status StreamingDetector::DrainReorderBuffer(double bound,
                                             IngestResult* result) {
  while (!reorder_.empty() && reorder_.front().block.timestamp < bound) {
    PendingBlock pending = std::move(reorder_.front());
    reorder_.pop_front();
    for (PointId id : pending.block.ids) pending_ids_.erase(id);
    trace::Span span("stream", "reorder_admit");
    span.Arg("source", static_cast<uint64_t>(pending.block.source_id))
        .Arg("arrival", pending.arrival)
        .Arg("buffered", static_cast<uint64_t>(reorder_.size()));
    DOD_ASSIGN_OR_RETURN(OutlierDelta delta, AdmitBlock(pending.block));
    result->admitted.push_back(std::move(delta));
  }
  return Status::Ok();
}

Result<IngestResult> StreamingDetector::Ingest(const StreamBlock& block) {
  IngestResult result;
  if (!config_.watermark.enabled) {
    DOD_ASSIGN_OR_RETURN(OutlierDelta delta, Feed(block));
    result.admitted.push_back(std::move(delta));
    return result;
  }
  DOD_RETURN_IF_ERROR(ValidateArrival(block));

  MetricsRegistry& metrics = MetricsRegistry::Global();
  static const uint32_t kLateDropped =
      metrics.Id("stream.late_dropped", MetricKind::kCounter);
  static const uint32_t kAdvances =
      metrics.Id("stream.watermark.advances", MetricKind::kCounter);
  static const uint32_t kBuffered =
      metrics.Id("stream.watermark.buffered_blocks", MetricKind::kGauge);
  static const uint32_t kSources =
      metrics.Id("stream.watermark.sources", MetricKind::kGauge);

  // Rejection is against the watermark *before* this arrival moves any
  // clock: buffered blocks at or beyond it are still unadmitted, so the
  // canonical order can absorb anything at ts >= watermark — but a block
  // below it may already have admitted successors, and applying it now
  // would diverge from in-order delivery.
  double prev_wm = 0.0;
  const bool had_prev = CurrentWatermark(&prev_wm);
  if (had_prev && block.timestamp < prev_wm) {
    ++late_dropped_;
    metrics.Increment(kLateDropped);
    // The drop count is part of the durable state: re-commit (same arrival
    // index, keyed overwrite) so a kill right after the rejection doesn't
    // resurrect the counter at its pre-drop value.
    if (store_ != nullptr && config_.checkpoint_every > 0) {
      DOD_RETURN_IF_ERROR(CommitCheckpoint());
    }
    return Status::OutOfRange(
        "StreamingDetector::Ingest: block at ts " +
        std::to_string(block.timestamp) + " is behind the watermark " +
        std::to_string(prev_wm) + " (lateness " +
        std::to_string(config_.watermark.lateness) +
        "); rejected as late, window unchanged");
  }

  // Register the arrival: advance its source clock and park the block at
  // its canonical (timestamp, source, arrival) position. next_arrival_
  // ticks monotonically, so equal (ts, source) pairs keep arrival order.
  auto clock = wm_clocks_.find(block.source_id);
  if (clock == wm_clocks_.end()) {
    wm_clocks_.emplace(block.source_id, block.timestamp);
  } else if (block.timestamp > clock->second) {
    clock->second = block.timestamp;
  }
  if (!saw_arrival_ || block.timestamp > global_max_ts_) {
    global_max_ts_ = block.timestamp;
  }
  saw_arrival_ = true;
  PendingBlock pending;
  pending.arrival = next_arrival_++;
  pending.block = block;
  auto pos = std::upper_bound(
      reorder_.begin(), reorder_.end(), pending,
      [](const PendingBlock& a, const PendingBlock& b) {
        if (a.block.timestamp != b.block.timestamp) {
          return a.block.timestamp < b.block.timestamp;
        }
        return a.block.source_id < b.block.source_id;
      });
  reorder_.insert(pos, std::move(pending));
  pending_ids_.insert(block.ids.begin(), block.ids.end());
  ++arrivals_;

  double wm = 0.0;
  result.has_watermark = CurrentWatermark(&wm);
  if (result.has_watermark) {
    result.watermark = wm;
    if (!had_prev || wm > prev_wm) metrics.Increment(kAdvances);
    DOD_RETURN_IF_ERROR(DrainReorderBuffer(wm, &result));
  }
  result.buffered = reorder_.size();
  metrics.SetMax(kBuffered, static_cast<double>(reorder_.size()));
  metrics.SetMax(kSources, static_cast<double>(wm_clocks_.size()));

  // Checkpoint cadence counts arrivals, not rounds: the reorder buffer
  // changes on every accepted block, rounds only on admissions — a kill
  // mid-reorder must restore the parked blocks too.
  if (store_ != nullptr && config_.checkpoint_every > 0 &&
      arrivals_ % config_.checkpoint_every == 0) {
    DOD_RETURN_IF_ERROR(CommitCheckpoint());
  }
  return result;
}

Result<IngestResult> StreamingDetector::Flush() {
  IngestResult result;
  if (!config_.watermark.enabled) return result;
  result.has_watermark = CurrentWatermark(&result.watermark);
  if (reorder_.empty()) return result;
  DOD_RETURN_IF_ERROR(
      DrainReorderBuffer(std::numeric_limits<double>::infinity(), &result));
  if (store_ != nullptr && config_.checkpoint_every > 0) {
    DOD_RETURN_IF_ERROR(CommitCheckpoint());
  }
  return result;
}

std::string StreamingDetector::JobKey() const {
  // Everything that shapes window state and verdicts goes in; num_threads
  // and kernel mode stay out (resuming under either produces byte-identical
  // deltas, like the batch fingerprint).
  PayloadWriter w;
  w.F64(config_.params.radius);
  w.U64(static_cast<uint64_t>(config_.params.min_neighbors));
  w.U64(config_.params.seed);
  w.U64(static_cast<uint64_t>(config_.algorithm));
  w.U64(config_.window_blocks);
  w.F64(config_.window_seconds);
  w.F64(side_);
  w.U64(static_cast<uint64_t>(config_.grid_origin.dims()));
  for (int i = 0; i < config_.grid_origin.dims(); ++i) {
    w.F64(config_.grid_origin[i]);
  }
  w.String(config_.job_tag);
  // Folded in only when enabled so stores written before watermarks
  // existed (or by watermark-free runs) keep their byte-identical key.
  if (config_.watermark.enabled) {
    w.U8(1);
    w.F64(config_.watermark.lateness);
    w.F64(config_.watermark.idle_timeout);
  }
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(Fnv1a64(w.str())));
  return std::string("dod-stream-") + hex;
}

std::string StreamingDetector::JobKeyFor(const StreamingConfig& config) {
  return StreamingDetector(config).JobKey();
}

Status StreamingDetector::Checkpoint() {
  if (store_ == nullptr) {
    return Status::FailedPrecondition(
        "StreamingDetector::Checkpoint: no checkpoint_dir configured");
  }
  return CommitCheckpoint();
}

Status StreamingDetector::CommitCheckpoint() {
  trace::Span span("durability", "stream_checkpoint");
  PayloadWriter w;
  w.U32(kStreamStateVersion);
  w.U64(round_);
  w.U64(next_seq_);
  w.U32(static_cast<uint32_t>(dims_));
  // Summaries ride the snapshot only when the service maintains them:
  // summaries-off state would persist stale counts a later summaries-on
  // resume would trust.
  const bool has_summaries = config_.summaries;
  w.U8(has_summaries ? 1 : 0);
  // Per-source windows, ascending source id (map order).
  w.U64(windows_.size());
  for (const auto& entry : windows_) {
    const SourceWindow& source = entry.second;
    w.U32(entry.first);
    w.U8(source.saw_timestamp ? 1 : 0);
    w.F64(source.high_water);
    w.U64(source.blocks.size());
    for (const WindowBlock& block : source.blocks) {
      w.U64(block.seq);
      w.F64(block.timestamp);
      w.U64(block.slots.size());
      for (uint32_t slot : block.slots) {
        w.U32(slots_[slot].stream_id);
        w.Raw((*window_)[slot], sizeof(double) * static_cast<size_t>(dims_));
        if (has_summaries) {
          w.U32(slots_[slot].count);
          w.U8(slots_[slot].saturated);
        }
      }
    }
  }
  w.U64(outliers_.size());
  for (PointId id : outliers_) w.U32(id);
  // Watermark/reorder section — written unconditionally (empty when the
  // policy is off) so the layout never depends on configuration.
  w.U64(arrivals_);
  w.U64(late_dropped_);
  w.U8(saw_arrival_ ? 1 : 0);
  w.F64(global_max_ts_);
  w.U64(next_arrival_);
  w.U64(wm_clocks_.size());
  for (const auto& entry : wm_clocks_) {
    w.U32(entry.first);
    w.F64(entry.second);
  }
  w.U64(reorder_.size());
  for (const PendingBlock& pending : reorder_) {
    w.U64(pending.arrival);
    w.U32(pending.block.source_id);
    w.F64(pending.block.timestamp);
    // Buffered blocks carry their own dims: the window may not have
    // admitted a non-empty block yet (dims_ == 0) while arrivals wait.
    const uint32_t block_dims =
        static_cast<uint32_t>(pending.block.points.dims());
    w.U32(block_dims);
    w.U64(pending.block.ids.size());
    for (size_t i = 0; i < pending.block.ids.size(); ++i) {
      w.U32(pending.block.ids[i]);
      w.Raw(pending.block.points[static_cast<PointId>(i)],
            sizeof(double) * block_dims);
    }
  }

  // Snapshot first, latest-pointer second: a crash between the two leaves
  // the previous commit's pointer intact and the orphan snapshot is dead
  // space, never torn state. Watermark mode keys the snapshot by arrival
  // (the buffer changes without rounds advancing); in-order mode keys by
  // round, as before.
  const uint64_t task_index = config_.watermark.enabled ? arrivals_ : round_;
  DOD_RETURN_IF_ERROR(
      store_->CommitTask("stream", static_cast<int>(task_index), w.str()));
  PayloadWriter latest;
  latest.U64(task_index);
  return store_->CommitTask("latest", 0, latest.str());
}

Status StreamingDetector::RestoreLatest() {
  if (!store_->HasTask("latest", 0)) return Status::Ok();  // fresh store
  DOD_ASSIGN_OR_RETURN(std::string latest_bytes,
                       store_->LoadTask("latest", 0));
  PayloadReader latest(latest_bytes);
  uint64_t task_index = 0;
  DOD_RETURN_IF_ERROR(latest.U64(&task_index));
  DOD_RETURN_IF_ERROR(latest.ExpectDone());
  DOD_ASSIGN_OR_RETURN(
      std::string bytes,
      store_->LoadTask("stream", static_cast<int>(task_index)));

  PayloadReader r(bytes);
  uint32_t version = 0;
  DOD_RETURN_IF_ERROR(r.U32(&version));
  if (version == 0 || version > kStreamStateVersion) {
    // A newer writer's state: refusing outright beats misparsing it. The
    // caller keeps the store intact for the build that wrote it.
    return Status::FailedPrecondition(
        "stream checkpoint version skew: snapshot version " +
        std::to_string(version) + " is newer than this reader (supports 1-" +
        std::to_string(kStreamStateVersion) + ")");
  }
  DOD_RETURN_IF_ERROR(r.U64(&round_));
  DOD_RETURN_IF_ERROR(r.U64(&next_seq_));
  // v1/v2 persisted the single pre-source-aware window clock before dims.
  uint8_t legacy_saw = 0;
  double legacy_high_water = 0.0;
  if (version < 3) {
    DOD_RETURN_IF_ERROR(r.U8(&legacy_saw));
    DOD_RETURN_IF_ERROR(r.F64(&legacy_high_water));
  }
  uint32_t dims = 0;
  DOD_RETURN_IF_ERROR(r.U32(&dims));
  if (dims > 0) DOD_RETURN_IF_ERROR(InitDims(static_cast<int>(dims)));
  bool has_summaries = false;
  if (version >= 2) {
    uint8_t flag = 0;
    DOD_RETURN_IF_ERROR(r.U8(&flag));
    has_summaries = flag != 0;
  }

  const auto read_blocks = [&](SourceWindow* source) -> Status {
    uint64_t num_blocks = 0;
    DOD_RETURN_IF_ERROR(r.U64(&num_blocks));
    for (uint64_t b = 0; b < num_blocks; ++b) {
      WindowBlock wb;
      DOD_RETURN_IF_ERROR(r.U64(&wb.seq));
      DOD_RETURN_IF_ERROR(r.F64(&wb.timestamp));
      uint64_t num_points = 0;
      DOD_RETURN_IF_ERROR(r.U64(&num_points));
      double coords[kMaxDimensions];
      for (uint64_t i = 0; i < num_points; ++i) {
        uint32_t id = 0;
        DOD_RETURN_IF_ERROR(r.U32(&id));
        DOD_RETURN_IF_ERROR(
            r.Raw(coords, sizeof(double) * static_cast<size_t>(dims_)));
        uint32_t count = 0;
        uint8_t saturated = 0;
        if (has_summaries) {
          DOD_RETURN_IF_ERROR(r.U32(&count));
          DOD_RETURN_IF_ERROR(r.U8(&saturated));
        }
        if (id_to_slot_.count(id) != 0) {
          return Status::IoError("stream checkpoint: duplicate resident id " +
                                 std::to_string(id));
        }
        const uint32_t slot = AllocSlot(id, coords);
        if (has_summaries && config_.summaries) {
          // A summaries-off service discards the counts instead: it won't
          // maintain them, and persisting them stale would poison a later
          // summaries-on resume.
          slots_[slot].count = count;
          slots_[slot].saturated = saturated != 0 ? 1 : 0;
        }
        cells_[KeyOf(coords)].slots.push_back(slot);
        wb.slots.push_back(slot);
      }
      source->blocks.push_back(std::move(wb));
    }
    return Status::Ok();
  };

  if (version < 3) {
    // The legacy single window restores as source 0 — exactly where every
    // pre-source-aware Feed had been putting its blocks.
    SourceWindow& source = windows_[0];
    source.saw_timestamp = legacy_saw != 0;
    source.high_water = legacy_high_water;
    DOD_RETURN_IF_ERROR(read_blocks(&source));
  } else {
    uint64_t num_sources = 0;
    DOD_RETURN_IF_ERROR(r.U64(&num_sources));
    bool first = true;
    uint32_t prev_source = 0;
    for (uint64_t s = 0; s < num_sources; ++s) {
      uint32_t source_id = 0;
      DOD_RETURN_IF_ERROR(r.U32(&source_id));
      if (!first && source_id <= prev_source) {
        return Status::IoError(
            "stream checkpoint: source ids not strictly ascending");
      }
      first = false;
      prev_source = source_id;
      SourceWindow& source = windows_[source_id];
      uint8_t saw = 0;
      DOD_RETURN_IF_ERROR(r.U8(&saw));
      source.saw_timestamp = saw != 0;
      DOD_RETURN_IF_ERROR(r.F64(&source.high_water));
      DOD_RETURN_IF_ERROR(read_blocks(&source));
    }
  }

  uint64_t num_outliers = 0;
  DOD_RETURN_IF_ERROR(r.U64(&num_outliers));
  outliers_.clear();
  for (uint64_t i = 0; i < num_outliers; ++i) {
    uint32_t id = 0;
    DOD_RETURN_IF_ERROR(r.U32(&id));
    auto it = id_to_slot_.find(id);
    if (it == id_to_slot_.end()) {
      return Status::IoError("stream checkpoint: flagged id " +
                             std::to_string(id) + " is not resident");
    }
    slots_[it->second].flagged = 1;
    outliers_.push_back(id);
  }
  if (!std::is_sorted(outliers_.begin(), outliers_.end())) {
    return Status::IoError("stream checkpoint: flagged ids not sorted");
  }

  if (version >= 3) {
    DOD_RETURN_IF_ERROR(r.U64(&arrivals_));
    DOD_RETURN_IF_ERROR(r.U64(&late_dropped_));
    uint8_t saw_arrival = 0;
    DOD_RETURN_IF_ERROR(r.U8(&saw_arrival));
    saw_arrival_ = saw_arrival != 0;
    DOD_RETURN_IF_ERROR(r.F64(&global_max_ts_));
    DOD_RETURN_IF_ERROR(r.U64(&next_arrival_));
    uint64_t num_clocks = 0;
    DOD_RETURN_IF_ERROR(r.U64(&num_clocks));
    bool first = true;
    uint32_t prev_source = 0;
    for (uint64_t i = 0; i < num_clocks; ++i) {
      uint32_t source_id = 0;
      double clock = 0.0;
      DOD_RETURN_IF_ERROR(r.U32(&source_id));
      DOD_RETURN_IF_ERROR(r.F64(&clock));
      if ((!first && source_id <= prev_source) || !std::isfinite(clock)) {
        return Status::IoError(
            "stream checkpoint: malformed watermark clock record");
      }
      first = false;
      prev_source = source_id;
      wm_clocks_.emplace(source_id, clock);
    }
    uint64_t num_pending = 0;
    DOD_RETURN_IF_ERROR(r.U64(&num_pending));
    for (uint64_t i = 0; i < num_pending; ++i) {
      PendingBlock pending;
      DOD_RETURN_IF_ERROR(r.U64(&pending.arrival));
      uint32_t source_id = 0;
      double timestamp = 0.0;
      uint32_t block_dims = 0;
      uint64_t num_points = 0;
      DOD_RETURN_IF_ERROR(r.U32(&source_id));
      DOD_RETURN_IF_ERROR(r.F64(&timestamp));
      DOD_RETURN_IF_ERROR(r.U32(&block_dims));
      DOD_RETURN_IF_ERROR(r.U64(&num_points));
      if (!std::isfinite(timestamp) || block_dims < 1 ||
          block_dims > kMaxDimensions ||
          (dims_ != 0 && num_points > 0 &&
           block_dims != static_cast<uint32_t>(dims_))) {
        return Status::IoError(
            "stream checkpoint: malformed reorder-buffer record");
      }
      StreamBlock block(static_cast<int>(block_dims));
      block.timestamp = timestamp;
      block.source_id = source_id;
      double coords[kMaxDimensions];
      for (uint64_t p = 0; p < num_points; ++p) {
        uint32_t id = 0;
        DOD_RETURN_IF_ERROR(r.U32(&id));
        DOD_RETURN_IF_ERROR(
            r.Raw(coords, sizeof(double) * static_cast<size_t>(block_dims)));
        for (uint32_t d = 0; d < block_dims; ++d) {
          if (!std::isfinite(coords[d])) {
            return Status::IoError(
                "stream checkpoint: non-finite reorder-buffer coordinate");
          }
        }
        if (id_to_slot_.count(id) != 0 || pending_ids_.count(id) != 0) {
          return Status::IoError(
              "stream checkpoint: duplicate reorder-buffer id " +
              std::to_string(id));
        }
        pending_ids_.insert(id);
        block.Add(id, coords);
      }
      if (pending.arrival >= next_arrival_) {
        return Status::IoError(
            "stream checkpoint: reorder-buffer arrival sequence skew");
      }
      pending.block = std::move(block);
      reorder_.push_back(std::move(pending));
    }
    // Re-establish the canonical (timestamp, source, arrival) order
    // instead of trusting record order — a hostile snapshot must not be
    // able to force an out-of-order admission.
    std::sort(reorder_.begin(), reorder_.end(),
              [](const PendingBlock& a, const PendingBlock& b) {
                if (a.block.timestamp != b.block.timestamp) {
                  return a.block.timestamp < b.block.timestamp;
                }
                if (a.block.source_id != b.block.source_id) {
                  return a.block.source_id < b.block.source_id;
                }
                return a.arrival < b.arrival;
              });
  } else {
    // v1/v2 upgrade: in-order mode admitted one block per round.
    arrivals_ = round_;
    if (config_.watermark.enabled) {
      // Rebuild the source-0 clock deterministically: the legacy
      // high-water clock is the true max-seen when the writer tracked
      // timestamps (time-based window); otherwise fall back to the max
      // over the resident blocks.
      bool any = legacy_saw != 0;
      double max_ts = legacy_high_water;
      for (const auto& entry : windows_) {
        for (const WindowBlock& block : entry.second.blocks) {
          if (!any || block.timestamp > max_ts) max_ts = block.timestamp;
          any = true;
        }
      }
      if (any) {
        wm_clocks_[0] = max_ts;
        global_max_ts_ = max_ts;
        saw_arrival_ = true;
      }
    }
  }
  DOD_RETURN_IF_ERROR(r.ExpectDone());

  if (config_.summaries) {
    if (has_summaries) {
      // Cross-validate the restored summaries against the flagged set: a
      // saturated bound never sits below k at a round boundary, and a
      // point is flagged exactly when its exact count is below k.
      const uint32_t k =
          static_cast<uint32_t>(config_.params.min_neighbors);
      for (const auto& entry : id_to_slot_) {
        const SlotState& state = slots_[entry.second];
        const bool valid =
            state.saturated != 0
                ? state.count >= k && state.flagged == 0
                : (state.count < k) == (state.flagged != 0);
        if (!valid) {
          return Status::IoError(
              "stream checkpoint: summary for id " +
              std::to_string(state.stream_id) +
              " is inconsistent with its verdict");
        }
      }
    } else {
      // Summary-less snapshot (version 1, or written with summaries off):
      // rebuild every resident count deterministically.
      DOD_RETURN_IF_ERROR(RebuildSummaries());
    }
  }

  MetricsRegistry& metrics = MetricsRegistry::Global();
  static const uint32_t kRestored =
      metrics.Id("stream.rounds_restored", MetricKind::kCounter);
  metrics.Increment(kRestored, round_);
  return Status::Ok();
}

}  // namespace dod
