// Copyright 2026 The DOD Authors.
//
// Partition plans (Sec. III-C): a set of m pairwise-disjoint grid cells
// whose union covers the domain space (Def. 3.1), each augmented with an
// r-extension supporting area (Def. 3.3). The plan is the map-side input of
// the DOD framework: every point is routed to exactly one core cell and to
// zero or more cells whose supporting area contains it.

#ifndef DOD_PARTITION_PARTITION_PLAN_H_
#define DOD_PARTITION_PARTITION_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bounds.h"
#include "common/dataset.h"
#include "common/status.h"

namespace dod {

// One partition of the domain space (Def. 3.1). Cells use half-open
// membership [lo, hi) per dimension, closed on the domain's upper boundary,
// so every domain point has exactly one core cell.
struct GridCell {
  uint32_t id = 0;
  Rect bounds;
};

class PartitionPlan {
 public:
  PartitionPlan() = default;

  // `radius` is the outlier distance threshold r used to derive supporting
  // areas. Cell ids are (re)assigned to their index order.
  PartitionPlan(Rect domain, double radius, std::vector<Rect> cell_bounds);

  int dims() const { return domain_.dims(); }
  double radius() const { return radius_; }
  const Rect& domain() const { return domain_; }

  size_t num_cells() const { return cells_.size(); }
  const std::vector<GridCell>& cells() const { return cells_; }
  const GridCell& cell(uint32_t id) const { return cells_[id]; }

  // The r-extension of cell `id` (Def. 3.3), support region including the
  // cell itself. A point p is a *support point* of the cell iff p lies in
  // this rect (closed) but is not a core point of the cell.
  Rect SupportBounds(uint32_t id) const {
    return cells_[id].bounds.Expanded(radius_);
  }

  // True iff `p` is a core point of cell `id`: inside [lo, hi) in every
  // dimension, where a cell face lying on the domain's upper boundary is
  // treated as closed.
  bool ContainsCore(uint32_t id, const double* p) const;

  // Checks the Def. 3.1 structural invariants: at least one cell, pairwise
  // disjoint interiors, and union covering the domain (area check).
  Status Validate() const;

  std::string ToString() const;

 private:
  Rect domain_;
  double radius_ = 0.0;
  std::vector<GridCell> cells_;
};

// Accelerates point → cell routing with a coarse uniform bin index over the
// domain ("the AF tree can be leveraged as an index to accelerate the
// process of mapping data points into partitions" — we use an equivalent
// flat spatial index that works for every plan shape).
class PartitionRouter {
 public:
  // The plan must outlive the router.
  explicit PartitionRouter(const PartitionPlan& plan);

  // Core cell of `p`. Aborts if the plan does not cover `p` (Validate()
  // guards against this).
  uint32_t RouteCore(const double* p) const;

  // Appends the ids of every cell for which `p` is a support point
  // (Def. 3.2 realized via the Def. 3.3 superset): p inside the cell's
  // r-extension but not a core point of the cell.
  void RouteSupport(const double* p, std::vector<uint32_t>* out) const;

 private:
  size_t BinOf(const double* p) const;

  const PartitionPlan* plan_;
  int bins_per_dim_ = 1;
  // Per-bin candidate cell ids (cells whose support bounds intersect the
  // bin). Flattened row-major over dims.
  std::vector<std::vector<uint32_t>> bins_;
};

}  // namespace dod

#endif  // DOD_PARTITION_PARTITION_PLAN_H_
