// Copyright 2026 The DOD Authors.
//
// Recursive weighted bisection of the domain along mini-bucket boundaries.
// This is the engine behind the DDriven (cardinality-balanced) and CDriven
// (cost-balanced) partitioners: the heaviest region is repeatedly split at
// the bucket boundary that best halves its weight, until the target number
// of rectangular partitions is reached. The result tiles the domain exactly.
//
// The weight of a region is *not* additive over buckets: the detection cost
// of a partition depends on its total cardinality and covered area (see
// Lemma 4.1/4.2 — e.g. a sparse point's Nested-Loop scan is bounded by the
// whole partition's size, not its bucket's). Region weights are therefore
// computed by a RegionCostFn over (cardinality, rect) pairs.

#ifndef DOD_PARTITION_BISECT_H_
#define DOD_PARTITION_BISECT_H_

#include <functional>
#include <vector>

#include "common/bounds.h"
#include "partition/minibucket.h"

namespace dod {

// Additive per-bucket auxiliary term (e.g. the refined cost-model aux of
// cost_model.h). Receives the bucket's full-data cardinality and rect.
// Return 0 when unused.
using BucketAuxFn =
    std::function<double(double cardinality, const Rect& bucket_rect)>;

// Cost of detecting outliers in a region holding `cardinality` points (in
// full-data units) with summed bucket aux `aux` over `bounds`. Must be
// monotone in cardinality for a fixed rect. DDriven uses cardinality
// itself; CDriven plugs in the refined Sec. IV cost model.
using RegionCostFn = std::function<double(double cardinality, double aux,
                                          const Rect& bounds)>;

// Splits the grid's domain into at most `target_regions` axis-aligned
// rectangles balancing the RegionCostFn. Bucket weights are scaled by
// `scale` to full-data cardinalities before costing. Fewer regions may be
// returned when the bucket resolution is exhausted.
std::vector<Rect> WeightedBisect(const MiniBucketGrid& grid, double scale,
                                 size_t target_regions,
                                 const BucketAuxFn& aux_fn,
                                 const RegionCostFn& cost_fn);

}  // namespace dod

#endif  // DOD_PARTITION_BISECT_H_
