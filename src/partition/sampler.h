// Copyright 2026 The DOD Authors.
//
// Distribution estimation (Sec. V-A, stage 1): a Bernoulli random sample is
// drawn within the map phase — random sampling preserves the distribution of
// the underlying dataset — and aggregated into mini-bucket statistics.

#ifndef DOD_PARTITION_SAMPLER_H_
#define DOD_PARTITION_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "common/dataset.h"
#include "common/random.h"
#include "partition/minibucket.h"

namespace dod {

struct SamplerOptions {
  // Sampling rate Υ; paper default 0.5 %.
  double rate = 0.005;
  // Floor on the expected sample size: the effective rate is raised so at
  // least this many points are sampled (the 0.5 % default assumes the
  // paper's 10^7+ point datasets; a sketch needs a few thousand points to
  // estimate bucket densities at all).
  size_t min_sample_size = 4000;
  // Mini-bucket grid resolution per dimension — an upper bound when
  // `adapt_resolution` is set (the default): the effective resolution
  // targets ~10 samples per occupied bucket, since bucket densities (and
  // hence regime classification) are meaningless below a handful of
  // samples, while a dense city spanning a single bucket cannot be split
  // by any planner.
  int buckets_per_dim = 64;
  bool adapt_resolution = true;
  uint64_t seed = 42;
};

// The rate actually used for a dataset of `n` points: max(rate,
// min_sample_size / n), clamped to [0, 1].
double EffectiveSamplingRate(const SamplerOptions& options, size_t n);

// The per-dimension bucket resolution used for a dataset of `n` points
// (2-d heuristic: sqrt(expected samples / 10), clamped to
// [8, buckets_per_dim]; pass-through when !adapt_resolution).
int EffectiveBucketsPerDim(const SamplerOptions& options, size_t n);

// Samples the points listed in `ids` from `data` into `grid`, returning the
// number of sampled points. This is the per-map-task unit of work; the
// pipeline runs one call per input block and merges the grids.
size_t SampleBlockInto(const Dataset& data, const std::vector<PointId>& ids,
                       double rate, Rng& rng, MiniBucketGrid* grid);

// Convenience: samples the whole dataset into a fresh sketch over `domain`.
DistributionSketch BuildSketch(const Dataset& data, const Rect& domain,
                               const SamplerOptions& options);

}  // namespace dod

#endif  // DOD_PARTITION_SAMPLER_H_
