// Copyright 2026 The DOD Authors.
//
// The partitioning strategies evaluated in the paper (Sec. VI-A):
//
//  * Domain   — default domain-based partitioning *without* supporting
//               areas; needs a second MapReduce job to verify candidate
//               outliers near partition edges (handled by the pipeline).
//  * uniSpace — uniform equi-width domain-space grid + supporting areas
//               (single-pass, Sec. III-A).
//  * DDriven  — data-driven: partitions of similar cardinality (the
//               traditional load-balancing assumption).
//  * CDriven  — cost-driven: partitions of similar estimated workload under
//               the Sec. IV cost model of the chosen detection algorithm.
//
// Every strategy consumes the sampled distribution sketch and produces a
// PartitionPlan; DMT (src/dshc) additionally produces the algorithm plan.

#ifndef DOD_PARTITION_STRATEGIES_H_
#define DOD_PARTITION_STRATEGIES_H_

#include <memory>
#include <string_view>

#include "detection/cost_model.h"
#include "partition/minibucket.h"
#include "partition/partition_plan.h"

namespace dod {

struct PlanningContext {
  DetectionParams params;
  // Requested number of partitions m.
  size_t target_partitions = 64;
};

class PartitioningStrategy {
 public:
  virtual ~PartitioningStrategy() = default;

  virtual std::string_view name() const = 0;

  // True when the produced plan relies on supporting areas for single-pass
  // detection. The Domain baseline returns false and triggers the two-job
  // path in the pipeline.
  virtual bool uses_supporting_area() const { return true; }

  virtual PartitionPlan BuildPlan(const DistributionSketch& sketch,
                                  const PlanningContext& ctx) const = 0;
};

// Equi-width grid over the domain (Fig. 1's partitioning).
class UniSpacePartitioner : public PartitioningStrategy {
 public:
  std::string_view name() const override { return "uniSpace"; }
  PartitionPlan BuildPlan(const DistributionSketch& sketch,
                          const PlanningContext& ctx) const override;
};

// Same cells as uniSpace but declared support-free: the baseline that pays
// a verification job instead of replication.
class DomainPartitioner : public UniSpacePartitioner {
 public:
  std::string_view name() const override { return "Domain"; }
  bool uses_supporting_area() const override { return false; }
};

// Cardinality-balanced recursive bisection.
class DDrivenPartitioner : public PartitioningStrategy {
 public:
  std::string_view name() const override { return "DDriven"; }
  PartitionPlan BuildPlan(const DistributionSketch& sketch,
                          const PlanningContext& ctx) const override;
};

// Cost-balanced recursive bisection under the cost model of `algorithm`.
class CDrivenPartitioner : public PartitioningStrategy {
 public:
  explicit CDrivenPartitioner(AlgorithmKind algorithm)
      : algorithm_(algorithm) {}

  std::string_view name() const override { return "CDriven"; }
  AlgorithmKind algorithm() const { return algorithm_; }

  PartitionPlan BuildPlan(const DistributionSketch& sketch,
                          const PlanningContext& ctx) const override;

 private:
  AlgorithmKind algorithm_;
};

// Equi-width cell bounds used by uniSpace/Domain; exposed for tests.
std::vector<Rect> EquiWidthCells(const Rect& domain, size_t target_cells);

}  // namespace dod

#endif  // DOD_PARTITION_STRATEGIES_H_
