// Copyright 2026 The DOD Authors.
//
// Mini buckets (Sec. V-A, distribution estimation stage): the domain space
// is discretized into a fine uniform grid of "mini buckets" that form the
// unit of processing for the DMT planner. Sampled points are aggregated to
// per-bucket counts; every downstream planning decision (DSHC clustering,
// cost-driven bisection, algorithm selection) reads these statistics only.

#ifndef DOD_PARTITION_MINIBUCKET_H_
#define DOD_PARTITION_MINIBUCKET_H_

#include <unordered_map>
#include <vector>

#include "common/bounds.h"
#include "detection/cost_model.h"
#include "detection/grid.h"

namespace dod {

class MiniBucketGrid {
 public:
  struct Bucket {
    CellCoord coord;
    double weight = 0.0;
  };

  // `buckets_per_dim` buckets along every dimension of `domain`.
  MiniBucketGrid(const Rect& domain, int buckets_per_dim);

  const Rect& domain() const { return domain_; }
  int dims() const { return domain_.dims(); }
  int buckets_per_dim() const { return buckets_per_dim_; }

  // Side length of a bucket along dimension `d`.
  double side(int d) const { return sides_[d]; }

  // Bucket coordinate of point `p` (clamped into the grid).
  CellCoord CoordOf(const double* p) const;

  void Add(const double* p, double weight = 1.0);

  // Adds `weight` directly to the bucket at `coord`.
  void AddAt(const CellCoord& coord, double weight);

  // All non-empty buckets.
  const std::vector<Bucket>& buckets() const { return buckets_; }

  // Weight of the bucket at `coord`; 0 when never touched.
  double WeightAt(const CellCoord& coord) const {
    auto it = index_.find(coord);
    return it == index_.end() ? 0.0 : buckets_[it->second].weight;
  }

  double TotalWeight() const { return total_weight_; }

  // Exact real-space boundary of bucket index `i` along dimension `d`
  // (i in [0, buckets_per_dim]). Index 0 and buckets_per_dim map exactly to
  // the domain boundary so that bucket-aligned partitions tile the domain.
  double BoundaryAt(int d, int i) const;

  // Real-space rect of the bucket at `coord`.
  Rect BucketRect(const CellCoord& coord) const;

  // Merges another grid's buckets (same domain/resolution) into this one —
  // the reduce-side aggregation of distributed sampling.
  void MergeFrom(const MiniBucketGrid& other);

 private:
  Rect domain_;
  int buckets_per_dim_;
  double sides_[kMaxDimensions] = {0.0};
  std::vector<Bucket> buckets_;
  std::unordered_map<CellCoord, uint32_t, CellCoordHash> index_;
  double total_weight_ = 0.0;
};

// A sampled estimate of the data distribution: mini-bucket counts from a
// Bernoulli sample at `sampling_rate` (paper default Υ = 0.5 %).
struct DistributionSketch {
  MiniBucketGrid grid;
  double sampling_rate = 0.005;
  // Raw number of sampled points in `grid`.
  size_t sample_size = 0;

  // Multiplier converting sampled counts to full-data estimates.
  double Scale() const { return sampling_rate > 0 ? 1.0 / sampling_rate : 1.0; }

  // Estimated full-data cardinality.
  double EstimatedCardinality() const { return sample_size * Scale(); }
};

// Planner view of a region: estimated cardinality (scaled), area, dims.
// Buckets are attributed to the region by their center.
PartitionStats RegionStats(const DistributionSketch& sketch,
                           const Rect& region);

}  // namespace dod

#endif  // DOD_PARTITION_MINIBUCKET_H_
