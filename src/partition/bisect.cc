// Copyright 2026 The DOD Authors.

#include "partition/bisect.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/status.h"

namespace dod {
namespace {

struct WeightedBucket {
  CellCoord coord;
  double cardinality;  // scaled to full-data units
  double aux;          // additive auxiliary cost term
};

// A region is an integer bucket-index box [lo, hi) per dimension plus the
// buckets that fall inside it.
struct Region {
  int lo[kMaxDimensions];
  int hi[kMaxDimensions];
  std::vector<uint32_t> bucket_ids;
  double cardinality = 0.0;
  double aux = 0.0;
  double cost = 0.0;
};

struct CostlierFirst {
  bool operator()(const Region& a, const Region& b) const {
    return a.cost < b.cost;
  }
};

// Longest splittable dimension (integer extent >= 2); -1 when none.
int PickSplitDim(const Region& region, int dims) {
  int best = -1, best_extent = 1;
  for (int d = 0; d < dims; ++d) {
    const int extent = region.hi[d] - region.lo[d];
    if (extent > best_extent) {
      best = d;
      best_extent = extent;
    }
  }
  return best;
}

// Real-space rect of an integer bucket box.
Rect BoxRect(const MiniBucketGrid& grid, const int lo[], const int hi[]) {
  const int dims = grid.dims();
  Point rlo(dims), rhi(dims);
  for (int d = 0; d < dims; ++d) {
    rlo[d] = grid.BoundaryAt(d, lo[d]);
    rhi[d] = grid.BoundaryAt(d, hi[d]);
  }
  return Rect(rlo, rhi);
}

}  // namespace

std::vector<Rect> WeightedBisect(const MiniBucketGrid& grid, double scale,
                                 size_t target_regions,
                                 const BucketAuxFn& aux_fn,
                                 const RegionCostFn& cost_fn) {
  DOD_CHECK(target_regions >= 1);
  const int dims = grid.dims();

  std::vector<WeightedBucket> buckets;
  buckets.reserve(grid.buckets().size());
  for (const MiniBucketGrid::Bucket& b : grid.buckets()) {
    const double cardinality = b.weight * scale;
    buckets.push_back(WeightedBucket{
        b.coord, cardinality, aux_fn(cardinality, grid.BucketRect(b.coord))});
  }

  Region root;
  for (int d = 0; d < dims; ++d) {
    root.lo[d] = 0;
    root.hi[d] = grid.buckets_per_dim();
  }
  root.bucket_ids.resize(buckets.size());
  for (uint32_t i = 0; i < buckets.size(); ++i) root.bucket_ids[i] = i;
  for (const WeightedBucket& b : buckets) {
    root.cardinality += b.cardinality;
    root.aux += b.aux;
  }
  root.cost =
      cost_fn(root.cardinality, root.aux, BoxRect(grid, root.lo, root.hi));

  std::priority_queue<Region, std::vector<Region>, CostlierFirst> queue;
  std::vector<Region> finished;
  queue.push(std::move(root));

  while (queue.size() + finished.size() < target_regions && !queue.empty()) {
    Region region = queue.top();
    queue.pop();
    const int dim = PickSplitDim(region, dims);
    if (dim < 0) {
      finished.push_back(std::move(region));
      continue;
    }

    // Cardinality profile along `dim` (per bucket-index slice), then the
    // cut minimizing |cost(left) − cost(right)| with both sides' costs
    // evaluated on their full sub-rects.
    const int lo = region.lo[dim], hi = region.hi[dim];
    std::vector<double> slice(static_cast<size_t>(hi - lo), 0.0);
    std::vector<double> slice_aux(static_cast<size_t>(hi - lo), 0.0);
    for (uint32_t id : region.bucket_ids) {
      const size_t s = static_cast<size_t>(buckets[id].coord.c[dim] - lo);
      slice[s] += buckets[id].cardinality;
      slice_aux[s] += buckets[id].aux;
    }
    int best_cut = lo + (hi - lo) / 2;
    double best_diff = std::numeric_limits<double>::infinity();
    double left_cardinality = 0.0;
    double left_aux = 0.0;
    int probe_lo[kMaxDimensions], probe_hi[kMaxDimensions];
    for (int d = 0; d < dims; ++d) {
      probe_lo[d] = region.lo[d];
      probe_hi[d] = region.hi[d];
    }
    for (int c = lo + 1; c < hi; ++c) {
      left_cardinality += slice[static_cast<size_t>(c - 1 - lo)];
      left_aux += slice_aux[static_cast<size_t>(c - 1 - lo)];
      probe_hi[dim] = c;
      const double left_cost = cost_fn(left_cardinality, left_aux,
                                       BoxRect(grid, probe_lo, probe_hi));
      probe_hi[dim] = region.hi[dim];
      probe_lo[dim] = c;
      const double right_cost =
          cost_fn(region.cardinality - left_cardinality,
                  region.aux - left_aux, BoxRect(grid, probe_lo, probe_hi));
      probe_lo[dim] = region.lo[dim];
      const double diff = std::fabs(left_cost - right_cost);
      if (diff < best_diff) {
        best_diff = diff;
        best_cut = c;
      }
    }

    Region left, right;
    for (int d = 0; d < dims; ++d) {
      left.lo[d] = region.lo[d];
      left.hi[d] = region.hi[d];
      right.lo[d] = region.lo[d];
      right.hi[d] = region.hi[d];
    }
    left.hi[dim] = best_cut;
    right.lo[dim] = best_cut;
    for (uint32_t id : region.bucket_ids) {
      Region& side = buckets[id].coord.c[dim] < best_cut ? left : right;
      side.bucket_ids.push_back(id);
      side.cardinality += buckets[id].cardinality;
      side.aux += buckets[id].aux;
    }
    left.cost =
        cost_fn(left.cardinality, left.aux, BoxRect(grid, left.lo, left.hi));
    right.cost = cost_fn(right.cardinality, right.aux,
                         BoxRect(grid, right.lo, right.hi));
    queue.push(std::move(left));
    queue.push(std::move(right));
  }

  while (!queue.empty()) {
    finished.push_back(queue.top());
    queue.pop();
  }

  std::vector<Rect> rects;
  rects.reserve(finished.size());
  for (const Region& region : finished) {
    rects.push_back(BoxRect(grid, region.lo, region.hi));
  }
  return rects;
}

}  // namespace dod
