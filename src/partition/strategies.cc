// Copyright 2026 The DOD Authors.

#include "partition/strategies.h"

#include <cmath>

#include "partition/bisect.h"

namespace dod {

std::vector<Rect> EquiWidthCells(const Rect& domain, size_t target_cells) {
  const int dims = domain.dims();
  // Splits per dimension: the closest integer grid to `target_cells` cells.
  int per_dim = std::max(
      1, static_cast<int>(std::llround(
             std::pow(static_cast<double>(target_cells), 1.0 / dims))));

  // Boundary i along dim d, exact at the domain edges.
  auto boundary = [&](int d, int i) {
    if (i <= 0) return domain.lo(d);
    if (i >= per_dim) return domain.hi(d);
    return domain.lo(d) + domain.Extent(d) / per_dim * i;
  };

  std::vector<Rect> cells;
  int idx[kMaxDimensions] = {0};
  while (true) {
    Point lo(dims), hi(dims);
    for (int d = 0; d < dims; ++d) {
      lo[d] = boundary(d, idx[d]);
      hi[d] = boundary(d, idx[d] + 1);
    }
    cells.push_back(Rect(lo, hi));
    int d = dims - 1;
    while (d >= 0) {
      if (++idx[d] < per_dim) break;
      idx[d] = 0;
      --d;
    }
    if (d < 0) break;
  }
  return cells;
}

PartitionPlan UniSpacePartitioner::BuildPlan(const DistributionSketch& sketch,
                                             const PlanningContext& ctx) const {
  return PartitionPlan(sketch.grid.domain(), ctx.params.radius,
                       EquiWidthCells(sketch.grid.domain(),
                                      ctx.target_partitions));
}

PartitionPlan DDrivenPartitioner::BuildPlan(const DistributionSketch& sketch,
                                            const PlanningContext& ctx) const {
  std::vector<Rect> cells = WeightedBisect(
      sketch.grid, sketch.Scale(), ctx.target_partitions,
      [](double, const Rect&) { return 0.0; },
      [](double cardinality, double, const Rect&) { return cardinality; });
  return PartitionPlan(sketch.grid.domain(), ctx.params.radius,
                       std::move(cells));
}

PartitionPlan CDrivenPartitioner::BuildPlan(const DistributionSketch& sketch,
                                            const PlanningContext& ctx) const {
  const int dims = sketch.grid.dims();
  const DetectionParams& params = ctx.params;
  std::vector<Rect> cells = WeightedBisect(
      sketch.grid, sketch.Scale(), ctx.target_partitions,
      [&](double cardinality, const Rect& bucket_rect) {
        const double area = bucket_rect.Area();
        const double density = area > 0.0 ? cardinality / area : 0.0;
        return RefinedBucketAux(algorithm_, cardinality, density, params,
                                dims);
      },
      [&](double cardinality, double aux, const Rect&) {
        return RefinedRegionCost(algorithm_, cardinality, aux, params);
      });
  return PartitionPlan(sketch.grid.domain(), ctx.params.radius,
                       std::move(cells));
}

}  // namespace dod
