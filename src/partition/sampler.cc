// Copyright 2026 The DOD Authors.

#include "partition/sampler.h"

#include <algorithm>
#include <cmath>

namespace dod {

double EffectiveSamplingRate(const SamplerOptions& options, size_t n) {
  double rate = options.rate;
  if (n > 0) {
    rate = std::max(rate, static_cast<double>(options.min_sample_size) /
                              static_cast<double>(n));
  }
  return std::clamp(rate, 0.0, 1.0);
}

int EffectiveBucketsPerDim(const SamplerOptions& options, size_t n) {
  if (!options.adapt_resolution) return options.buckets_per_dim;
  const double samples = EffectiveSamplingRate(options, n) * n;
  const int target = static_cast<int>(std::sqrt(samples / 10.0));
  return std::clamp(target, 8, options.buckets_per_dim);
}

size_t SampleBlockInto(const Dataset& data, const std::vector<PointId>& ids,
                       double rate, Rng& rng, MiniBucketGrid* grid) {
  size_t sampled = 0;
  for (PointId id : ids) {
    if (rng.NextBernoulli(rate)) {
      grid->Add(data[id]);
      ++sampled;
    }
  }
  return sampled;
}

DistributionSketch BuildSketch(const Dataset& data, const Rect& domain,
                               const SamplerOptions& options) {
  const double rate = EffectiveSamplingRate(options, data.size());
  DistributionSketch sketch{
      MiniBucketGrid(domain, EffectiveBucketsPerDim(options, data.size())),
      rate, 0};
  Rng rng(options.seed);
  size_t sampled = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (rng.NextBernoulli(rate)) {
      sketch.grid.Add(data[static_cast<PointId>(i)]);
      ++sampled;
    }
  }
  sketch.sample_size = sampled;
  return sketch;
}

}  // namespace dod
