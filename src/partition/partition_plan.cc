// Copyright 2026 The DOD Authors.

#include "partition/partition_plan.h"

#include <algorithm>
#include <cmath>

namespace dod {

PartitionPlan::PartitionPlan(Rect domain, double radius,
                             std::vector<Rect> cell_bounds)
    : domain_(std::move(domain)), radius_(radius) {
  DOD_CHECK(radius_ > 0.0);
  DOD_CHECK(!cell_bounds.empty());
  cells_.reserve(cell_bounds.size());
  for (size_t i = 0; i < cell_bounds.size(); ++i) {
    DOD_CHECK(cell_bounds[i].dims() == domain_.dims());
    cells_.push_back(GridCell{static_cast<uint32_t>(i), cell_bounds[i]});
  }
}

bool PartitionPlan::ContainsCore(uint32_t id, const double* p) const {
  const Rect& cell = cells_[id].bounds;
  for (int d = 0; d < dims(); ++d) {
    if (p[d] < cell.lo(d)) return false;
    if (p[d] >= cell.hi(d)) {
      // A face flush with the domain's upper boundary is closed so points
      // on the boundary still have a core cell.
      if (!(cell.hi(d) >= domain_.hi(d) && p[d] <= cell.hi(d))) return false;
    }
  }
  return true;
}

Status PartitionPlan::Validate() const {
  if (cells_.empty()) {
    return Status::FailedPrecondition("plan has no cells");
  }
  // Pairwise interior disjointness.
  for (size_t i = 0; i < cells_.size(); ++i) {
    for (size_t j = i + 1; j < cells_.size(); ++j) {
      const Rect& a = cells_[i].bounds;
      const Rect& b = cells_[j].bounds;
      bool overlap = true;
      for (int d = 0; d < dims(); ++d) {
        // Interiors overlap only with strict inequalities on both sides.
        if (a.hi(d) <= b.lo(d) + 1e-12 || b.hi(d) <= a.lo(d) + 1e-12) {
          overlap = false;
          break;
        }
      }
      if (overlap) {
        return Status::FailedPrecondition(
            "cells " + std::to_string(i) + " and " + std::to_string(j) +
            " overlap: " + a.ToString() + " vs " + b.ToString());
      }
    }
  }
  // Coverage: cells must lie inside the domain and their areas must add up
  // to the domain area (sufficient together with disjointness).
  double total_area = 0.0;
  for (const GridCell& cell : cells_) {
    if (!domain_.Covers(cell.bounds)) {
      return Status::FailedPrecondition("cell " + std::to_string(cell.id) +
                                        " outside domain: " +
                                        cell.bounds.ToString());
    }
    total_area += cell.bounds.Area();
  }
  const double domain_area = domain_.Area();
  if (domain_area > 0.0 &&
      std::fabs(total_area - domain_area) > 1e-6 * domain_area) {
    return Status::FailedPrecondition(
        "cells cover " + std::to_string(total_area) + " of domain area " +
        std::to_string(domain_area));
  }
  return Status::Ok();
}

std::string PartitionPlan::ToString() const {
  std::string out = "PartitionPlan{domain=" + domain_.ToString() +
                    ", r=" + std::to_string(radius_) +
                    ", cells=" + std::to_string(cells_.size()) + "}";
  return out;
}

namespace {

// Picks the router resolution: roughly 2·m^(1/d) bins per dimension,
// clamped so the dense bin table stays small.
int RouterBinsPerDim(size_t num_cells, int dims) {
  const double per_dim =
      2.0 * std::pow(static_cast<double>(num_cells), 1.0 / dims);
  int bins = std::max(1, static_cast<int>(per_dim));
  // Cap total bins at ~2^20.
  while (std::pow(static_cast<double>(bins), dims) > (1 << 20) && bins > 1) {
    bins /= 2;
  }
  return std::max(1, bins);
}

}  // namespace

PartitionRouter::PartitionRouter(const PartitionPlan& plan) : plan_(&plan) {
  const int dims = plan.dims();
  bins_per_dim_ = RouterBinsPerDim(plan.num_cells(), dims);
  size_t total_bins = 1;
  for (int d = 0; d < dims; ++d) total_bins *= bins_per_dim_;
  bins_.resize(total_bins);

  const Rect& domain = plan.domain();
  // For each cell, register it with every bin its support bounds intersect.
  for (const GridCell& cell : plan.cells()) {
    const Rect support = plan.SupportBounds(cell.id);
    // Integer bin range per dimension.
    int lo[kMaxDimensions], hi[kMaxDimensions];
    for (int d = 0; d < dims; ++d) {
      const double extent = domain.Extent(d);
      const double scale = extent > 0.0 ? bins_per_dim_ / extent : 0.0;
      int l = static_cast<int>(
          std::floor((support.lo(d) - domain.lo(d)) * scale));
      int h = static_cast<int>(
          std::floor((support.hi(d) - domain.lo(d)) * scale));
      lo[d] = std::clamp(l, 0, bins_per_dim_ - 1);
      hi[d] = std::clamp(h, 0, bins_per_dim_ - 1);
    }
    // Enumerate the bin box.
    int idx[kMaxDimensions];
    for (int d = 0; d < dims; ++d) idx[d] = lo[d];
    while (true) {
      size_t flat = 0;
      for (int d = 0; d < dims; ++d) {
        flat = flat * bins_per_dim_ + static_cast<size_t>(idx[d]);
      }
      bins_[flat].push_back(cell.id);
      int d = dims - 1;
      while (d >= 0) {
        if (++idx[d] <= hi[d]) break;
        idx[d] = lo[d];
        --d;
      }
      if (d < 0) break;
    }
  }
}

size_t PartitionRouter::BinOf(const double* p) const {
  const Rect& domain = plan_->domain();
  size_t flat = 0;
  for (int d = 0; d < plan_->dims(); ++d) {
    const double extent = domain.Extent(d);
    const double scale = extent > 0.0 ? bins_per_dim_ / extent : 0.0;
    int b = static_cast<int>(std::floor((p[d] - domain.lo(d)) * scale));
    b = std::clamp(b, 0, bins_per_dim_ - 1);
    flat = flat * bins_per_dim_ + static_cast<size_t>(b);
  }
  return flat;
}

uint32_t PartitionRouter::RouteCore(const double* p) const {
  for (uint32_t id : bins_[BinOf(p)]) {
    if (plan_->ContainsCore(id, p)) return id;
  }
  DOD_CHECK_MSG(false, "point not covered by partition plan");
  return 0;
}

void PartitionRouter::RouteSupport(const double* p,
                                   std::vector<uint32_t>* out) const {
  for (uint32_t id : bins_[BinOf(p)]) {
    if (plan_->SupportBounds(id).Contains(p) && !plan_->ContainsCore(id, p)) {
      out->push_back(id);
    }
  }
}

}  // namespace dod
