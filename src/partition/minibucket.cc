// Copyright 2026 The DOD Authors.

#include "partition/minibucket.h"

#include <algorithm>
#include <cmath>

namespace dod {

MiniBucketGrid::MiniBucketGrid(const Rect& domain, int buckets_per_dim)
    : domain_(domain), buckets_per_dim_(buckets_per_dim) {
  DOD_CHECK(buckets_per_dim >= 1);
  for (int d = 0; d < domain.dims(); ++d) {
    sides_[d] = domain.Extent(d) / buckets_per_dim;
  }
}

CellCoord MiniBucketGrid::CoordOf(const double* p) const {
  CellCoord coord;
  coord.dims = dims();
  for (int d = 0; d < dims(); ++d) {
    int32_t i = 0;
    if (sides_[d] > 0.0) {
      i = static_cast<int32_t>(
          std::floor((p[d] - domain_.lo(d)) / sides_[d]));
    }
    coord.c[d] = std::clamp(i, 0, buckets_per_dim_ - 1);
  }
  return coord;
}

void MiniBucketGrid::Add(const double* p, double weight) {
  AddAt(CoordOf(p), weight);
}

void MiniBucketGrid::AddAt(const CellCoord& coord, double weight) {
  auto [it, inserted] =
      index_.try_emplace(coord, static_cast<uint32_t>(buckets_.size()));
  if (inserted) buckets_.push_back(Bucket{coord, 0.0});
  buckets_[it->second].weight += weight;
  total_weight_ += weight;
}

double MiniBucketGrid::BoundaryAt(int d, int i) const {
  if (i <= 0) return domain_.lo(d);
  if (i >= buckets_per_dim_) return domain_.hi(d);
  return domain_.lo(d) + sides_[d] * i;
}

Rect MiniBucketGrid::BucketRect(const CellCoord& coord) const {
  Point lo(dims()), hi(dims());
  for (int d = 0; d < dims(); ++d) {
    lo[d] = BoundaryAt(d, coord.c[d]);
    hi[d] = BoundaryAt(d, coord.c[d] + 1);
  }
  return Rect(lo, hi);
}

void MiniBucketGrid::MergeFrom(const MiniBucketGrid& other) {
  DOD_CHECK(other.buckets_per_dim_ == buckets_per_dim_);
  DOD_CHECK(other.domain_ == domain_);
  for (const Bucket& bucket : other.buckets_) {
    AddAt(bucket.coord, bucket.weight);
  }
}

PartitionStats RegionStats(const DistributionSketch& sketch,
                           const Rect& region) {
  PartitionStats stats;
  stats.dims = sketch.grid.dims();
  stats.area = region.Area();
  double weight = 0.0;
  for (const MiniBucketGrid::Bucket& bucket : sketch.grid.buckets()) {
    const Point center = sketch.grid.BucketRect(bucket.coord).Center();
    if (region.Contains(center)) weight += bucket.weight;
  }
  stats.cardinality = static_cast<size_t>(weight * sketch.Scale() + 0.5);
  return stats;
}

}  // namespace dod
