// Copyright 2026 The DOD Authors.
//
// DSHC — density and spatial-aware hierarchical clustering (Sec. V-A,
// step 1). Groups mini buckets of similar density into rectangular
// partitions with a single scan through the AF-tree, subject to the
// constrained multi-objective clustering (MOC) requirements: density
// similarity, spatial adjacency, rectangular shape, and a per-partition
// cardinality cap (reducer main-memory bound).

#ifndef DOD_DSHC_DSHC_H_
#define DOD_DSHC_DSHC_H_

#include <vector>

#include "dshc/af_tree.h"
#include "partition/minibucket.h"

namespace dod {

struct DshcOptions {
  // Def. 5.2 Tdiff — maximum absolute density difference for a merge.
  // <= 0 selects an automatic threshold derived from the spread of the
  // sketch's bucket densities.
  double t_diff = -1.0;
  // Def. 5.2 Tmax# — maximum estimated points per partition (the reducer
  // main-memory bound). <= 0 selects an automatic cap of
  // `max_cardinality_factor` times the mean partition load for
  // `target_partitions`.
  double t_max_points = -1.0;
  // Used by the automatic Tmax# / Tmax-cost rules.
  size_t target_partitions = 64;
  double max_cardinality_factor = 8.0;

  // Cost-aware merge cap: a merge is rejected when the merged cluster's
  // estimated detection cost (under its Corollary 4.3 algorithm) exceeds
  // `max_cost_factor` times the mean per-partition cost. Clusters whose
  // best algorithm is linear (strongly dense or ultra sparse → Cell-Based)
  // may therefore grow toward the memory bound, while quadratic
  // middle-density Nested-Loop clusters stay small — partition generation
  // explicitly "considers the performance properties of the detection
  // algorithms" (the paper's challenge 3). Disable to get pure Def. 5.2.
  bool cost_aware_cap = true;
  double max_cost_factor = 4.0;
  // Outlier parameters used by the cost cap and algorithm selection.
  DetectionParams detection;

  int max_fanout = 8;
};

// Effective thresholds chosen for a sketch (after auto-tuning).
struct DshcThresholds {
  double t_diff = 0.0;
  double t_max_points = 0.0;
  // 0 when the cost cap is disabled.
  double t_max_cost = 0.0;
};

DshcThresholds ResolveThresholds(const DistributionSketch& sketch,
                                 const DshcOptions& options);

// Estimated detection cost of a cluster under its Corollary 4.3 algorithm;
// the functional used by the cost-aware merge cap.
std::function<double(const AggregateFeature&)> ClusterCostFn(
    int dims, const DetectionParams& params);

// Runs DSHC over every mini bucket of the sketch (empty buckets included so
// the resulting clusters tile the whole domain). Bucket counts are scaled
// to full-data estimates. Returns one AF per cluster; their bounding boxes
// are pairwise-disjoint rectangles covering the domain.
std::vector<AggregateFeature> ClusterMiniBuckets(
    const DistributionSketch& sketch, const DshcOptions& options);

}  // namespace dod

#endif  // DOD_DSHC_DSHC_H_
