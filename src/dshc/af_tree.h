// Copyright 2026 The DOD Authors.
//
// The AF-tree (Sec. V-A): an R-tree-like index whose leaf nodes are DSHC
// clusters carrying Aggregate Features. It supports the four operations the
// paper defines:
//
//  * Search — descend like an R-tree, but also visit nodes *adjacent* to
//    the query box, producing the list of merging candidates (LMC).
//  * Merge — fold an incoming mini bucket (or a neighboring cluster) into a
//    cluster when the Def. 5.2 criteria hold, then recursively attempt
//    further cluster-cluster merges along the updated region.
//  * Insert — attach a fresh leaf next to its most density-similar LMC
//    member, or under the least-enlargement parent when the LMC is empty.
//  * Split — standard R-tree quadratic node split on fanout overflow.

#ifndef DOD_DSHC_AF_TREE_H_
#define DOD_DSHC_AF_TREE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "dshc/aggregate_feature.h"

namespace dod {

struct AfTreeOptions {
  // Def. 5.2 thresholds.
  double t_diff = 1.0;
  double t_max_points = 1e18;
  // Optional cost-aware merge cap (see MergingCriteria).
  std::function<double(const AggregateFeature&)> cost_fn;
  double t_max_cost = 0.0;
  // Maximum children per internal node before a split.
  int max_fanout = 8;
  // Geometric tolerance for adjacency / rectangle tests.
  double eps = 1e-9;
};

class AfTree {
 public:
  AfTree(int dims, const AfTreeOptions& options);
  ~AfTree();

  AfTree(const AfTree&) = delete;
  AfTree& operator=(const AfTree&) = delete;

  // Inserts one mini bucket with bounding box `rect` holding an estimated
  // `num_points` points. Performs the DSHC merge-or-insert logic.
  void InsertBucket(const Rect& rect, double num_points);

  // The current clusters (one per leaf).
  std::vector<AggregateFeature> Clusters() const;

  size_t num_clusters() const { return num_leaves_; }

  // Structural self-check used by tests: parent links, MBR containment,
  // uniform leaf depth, fanout bounds.
  Status CheckInvariants() const;

 private:
  struct Node;

  // Collects leaves overlapping or adjacent to `rect` into `out`.
  void Search(const Node* node, const Rect& rect,
              std::vector<Node*>& out) const;

  // Bottom-level internal node reached by least-enlargement descent.
  Node* ChooseLeafParent(const Rect& rect) const;

  // Attaches `leaf` under `parent`, splitting on overflow.
  void AttachLeaf(Node* parent, std::unique_ptr<Node> leaf);

  // Removes `leaf` from the tree, pruning empty ancestors.
  void DetachLeaf(Node* leaf);

  // Recomputes MBRs from `node` to the root.
  void UpdateMbrUp(Node* node);

  // Splits `node` (children.size() > max_fanout), propagating upward.
  void SplitNode(Node* node);

  // Repeatedly merges `leaf` with density-closest mergeable neighbors.
  void RecursiveMerge(Node* leaf);

  int dims_;
  AfTreeOptions options_;
  std::unique_ptr<Node> root_;
  size_t num_leaves_ = 0;
};

}  // namespace dod

#endif  // DOD_DSHC_AF_TREE_H_
