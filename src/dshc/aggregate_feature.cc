// Copyright 2026 The DOD Authors.

#include "dshc/aggregate_feature.h"

#include <cmath>
#include <cstdio>

namespace dod {

std::string AggregateFeature::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "AF{n=%.1f, density=%.4g, box=",
                num_points, density());
  return std::string(buf) + bounds.ToString() + "}";
}

bool FormsRectangle(const Rect& a, const Rect& b, double eps) {
  if (a.dims() != b.dims()) return false;
  int touching_dim = -1;
  for (int d = 0; d < a.dims(); ++d) {
    const bool same_lo = std::fabs(a.lo(d) - b.lo(d)) <= eps;
    const bool same_hi = std::fabs(a.hi(d) - b.hi(d)) <= eps;
    if (same_lo && same_hi) continue;  // aligned in this dimension
    // At most one non-aligned dimension, and there the boxes must touch.
    if (touching_dim >= 0) return false;
    const bool touches = std::fabs(a.hi(d) - b.lo(d)) <= eps ||
                         std::fabs(b.hi(d) - a.lo(d)) <= eps;
    if (!touches) return false;
    touching_dim = d;
  }
  // Identical boxes (touching_dim == -1) are not a valid merge geometry for
  // disjoint clusters; require exactly one touching dimension.
  return touching_dim >= 0;
}

bool MergingCriteria::CanMerge(const AggregateFeature& a,
                               const AggregateFeature& b) const {
  if (std::fabs(a.density() - b.density()) >= t_diff) return false;
  if (!FormsRectangle(a.bounds, b.bounds, eps)) return false;
  if (a.num_points + b.num_points >= t_max_points) return false;
  if (cost_fn != nullptr &&
      cost_fn(AggregateFeature::Merge(a, b)) >= t_max_cost) {
    return false;
  }
  return true;
}

}  // namespace dod
