// Copyright 2026 The DOD Authors.

#include "dshc/af_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dod {

struct AfTree::Node {
  Node* parent = nullptr;
  bool is_leaf = false;
  Rect mbr;
  AggregateFeature af;  // valid only when is_leaf
  std::vector<std::unique_ptr<Node>> children;
};

AfTree::AfTree(int dims, const AfTreeOptions& options)
    : dims_(dims), options_(options), root_(std::make_unique<Node>()) {
  DOD_CHECK(dims >= 1 && dims <= kMaxDimensions);
  DOD_CHECK(options.max_fanout >= 2);
}

AfTree::~AfTree() = default;

void AfTree::Search(const Node* node, const Rect& rect,
                    std::vector<Node*>& out) const {
  if (node->mbr.empty()) return;
  if (!node->mbr.IsAdjacentTo(rect, options_.eps)) return;
  if (node->is_leaf) {
    out.push_back(const_cast<Node*>(node));
    return;
  }
  for (const auto& child : node->children) Search(child.get(), rect, out);
}

AfTree::Node* AfTree::ChooseLeafParent(const Rect& rect) const {
  Node* node = root_.get();
  while (!node->children.empty() && !node->children.front()->is_leaf) {
    Node* best = nullptr;
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (const auto& child : node->children) {
      const double enlargement = child->mbr.Enlargement(rect);
      const double area = child->mbr.Area();
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && area < best_area)) {
        best = child.get();
        best_enlargement = enlargement;
        best_area = area;
      }
    }
    node = best;
  }
  return node;
}

void AfTree::UpdateMbrUp(Node* node) {
  while (node != nullptr) {
    if (!node->is_leaf) {
      Rect mbr;
      for (const auto& child : node->children) {
        mbr = mbr.UnionWith(child->mbr);
      }
      node->mbr = mbr;
    }
    node = node->parent;
  }
}

void AfTree::AttachLeaf(Node* parent, std::unique_ptr<Node> leaf) {
  leaf->parent = parent;
  parent->children.push_back(std::move(leaf));
  ++num_leaves_;
  UpdateMbrUp(parent);
  if (parent->children.size() > static_cast<size_t>(options_.max_fanout)) {
    SplitNode(parent);
  }
}

void AfTree::DetachLeaf(Node* leaf) {
  Node* node = leaf->parent;
  DOD_CHECK(node != nullptr);
  auto it = std::find_if(node->children.begin(), node->children.end(),
                         [&](const std::unique_ptr<Node>& c) {
                           return c.get() == leaf;
                         });
  DOD_CHECK(it != node->children.end());
  node->children.erase(it);
  --num_leaves_;
  // Prune now-empty ancestors (the root may stay empty).
  while (node != root_.get() && node->children.empty()) {
    Node* parent = node->parent;
    auto self = std::find_if(parent->children.begin(), parent->children.end(),
                             [&](const std::unique_ptr<Node>& c) {
                               return c.get() == node;
                             });
    DOD_CHECK(self != parent->children.end());
    parent->children.erase(self);
    node = parent;
  }
  UpdateMbrUp(node);
}

void AfTree::SplitNode(Node* node) {
  // Quadratic split: pick the two children wasting the most area when
  // paired, then distribute the rest by least enlargement.
  std::vector<std::unique_ptr<Node>> entries = std::move(node->children);
  node->children.clear();

  size_t seed_a = 0, seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      const double waste = entries[i]->mbr.UnionWith(entries[j]->mbr).Area() -
                           entries[i]->mbr.Area() - entries[j]->mbr.Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  std::vector<std::unique_ptr<Node>> group_a, group_b;
  Rect mbr_a = entries[seed_a]->mbr;
  Rect mbr_b = entries[seed_b]->mbr;
  group_a.push_back(std::move(entries[seed_a]));
  group_b.push_back(std::move(entries[seed_b]));
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i] == nullptr) continue;
    const double grow_a = mbr_a.Enlargement(entries[i]->mbr);
    const double grow_b = mbr_b.Enlargement(entries[i]->mbr);
    const bool to_a =
        grow_a < grow_b ||
        (grow_a == grow_b && group_a.size() <= group_b.size());
    if (to_a) {
      mbr_a = mbr_a.UnionWith(entries[i]->mbr);
      group_a.push_back(std::move(entries[i]));
    } else {
      mbr_b = mbr_b.UnionWith(entries[i]->mbr);
      group_b.push_back(std::move(entries[i]));
    }
  }

  if (node == root_.get()) {
    // The whole tree deepens by one level; leaf depth stays uniform.
    auto child_a = std::make_unique<Node>();
    auto child_b = std::make_unique<Node>();
    child_a->parent = node;
    child_b->parent = node;
    child_a->mbr = mbr_a;
    child_b->mbr = mbr_b;
    child_a->children = std::move(group_a);
    child_b->children = std::move(group_b);
    for (auto& c : child_a->children) c->parent = child_a.get();
    for (auto& c : child_b->children) c->parent = child_b.get();
    node->children.push_back(std::move(child_a));
    node->children.push_back(std::move(child_b));
    UpdateMbrUp(node);
    return;
  }

  // Keep group A in `node`, move group B to a new sibling.
  node->children = std::move(group_a);
  for (auto& c : node->children) c->parent = node;
  node->mbr = mbr_a;

  auto sibling = std::make_unique<Node>();
  sibling->parent = node->parent;
  sibling->mbr = mbr_b;
  sibling->children = std::move(group_b);
  for (auto& c : sibling->children) c->parent = sibling.get();

  Node* parent = node->parent;
  parent->children.push_back(std::move(sibling));
  UpdateMbrUp(parent);
  if (parent->children.size() > static_cast<size_t>(options_.max_fanout)) {
    SplitNode(parent);
  }
}

void AfTree::RecursiveMerge(Node* leaf) {
  const MergingCriteria criteria{options_.t_diff, options_.t_max_points,
                                 options_.eps, options_.cost_fn,
                                 options_.t_max_cost};
  while (true) {
    std::vector<Node*> lmc;
    Search(root_.get(), leaf->mbr, lmc);
    Node* best = nullptr;
    double best_diff = std::numeric_limits<double>::infinity();
    for (Node* other : lmc) {
      if (other == leaf) continue;
      if (!criteria.CanMerge(leaf->af, other->af)) continue;
      const double diff = std::fabs(leaf->af.density() - other->af.density());
      if (diff < best_diff) {
        best_diff = diff;
        best = other;
      }
    }
    if (best == nullptr) break;
    const AggregateFeature merged = AggregateFeature::Merge(leaf->af, best->af);
    DetachLeaf(best);
    leaf->af = merged;
    leaf->mbr = merged.bounds;
    UpdateMbrUp(leaf->parent);
  }
}

void AfTree::InsertBucket(const Rect& rect, double num_points) {
  DOD_CHECK(rect.dims() == dims_);
  const AggregateFeature bucket{num_points, rect};

  // First bucket: the only cluster in the tree.
  if (root_->children.empty()) {
    auto leaf = std::make_unique<Node>();
    leaf->is_leaf = true;
    leaf->af = bucket;
    leaf->mbr = rect;
    AttachLeaf(root_.get(), std::move(leaf));
    return;
  }

  std::vector<Node*> lmc;
  Search(root_.get(), rect, lmc);

  // Merge path: fold the bucket into the most density-similar cluster that
  // satisfies all merging criteria.
  const MergingCriteria criteria{options_.t_diff, options_.t_max_points,
                                 options_.eps, options_.cost_fn,
                                 options_.t_max_cost};
  Node* best = nullptr;
  double best_diff = std::numeric_limits<double>::infinity();
  for (Node* candidate : lmc) {
    if (!criteria.CanMerge(candidate->af, bucket)) continue;
    const double diff =
        std::fabs(candidate->af.density() - bucket.density());
    if (diff < best_diff) {
      best_diff = diff;
      best = candidate;
    }
  }
  if (best != nullptr) {
    best->af = AggregateFeature::Merge(best->af, bucket);
    best->mbr = best->af.bounds;
    UpdateMbrUp(best->parent);
    RecursiveMerge(best);
    return;
  }

  // Insert path: a new independent cluster. Prefer the parent of the most
  // density-similar LMC member; otherwise least-enlargement descent.
  auto leaf = std::make_unique<Node>();
  leaf->is_leaf = true;
  leaf->af = bucket;
  leaf->mbr = rect;
  Node* parent = nullptr;
  if (!lmc.empty()) {
    Node* closest = nullptr;
    double diff = std::numeric_limits<double>::infinity();
    for (Node* candidate : lmc) {
      const double d = std::fabs(candidate->af.density() - bucket.density());
      if (d < diff) {
        diff = d;
        closest = candidate;
      }
    }
    parent = closest->parent;
  } else {
    parent = ChooseLeafParent(rect);
  }
  AttachLeaf(parent, std::move(leaf));
}

std::vector<AggregateFeature> AfTree::Clusters() const {
  std::vector<AggregateFeature> out;
  out.reserve(num_leaves_);
  // Iterative DFS.
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node->is_leaf) {
      out.push_back(node->af);
      continue;
    }
    for (const auto& child : node->children) stack.push_back(child.get());
  }
  return out;
}

Status AfTree::CheckInvariants() const {
  struct Checker {
    const AfTree* tree;
    Status status = Status::Ok();
    int leaf_depth = -1;

    void Visit(const Node* node, const Node* parent, int depth) {
      if (!status.ok()) return;
      if (node->parent != parent) {
        status = Status::Internal("bad parent pointer");
        return;
      }
      if (node->is_leaf) {
        if (!(node->mbr == node->af.bounds)) {
          status = Status::Internal("leaf mbr != af bounds");
          return;
        }
        if (leaf_depth < 0) leaf_depth = depth;
        if (leaf_depth != depth) {
          status = Status::Internal("non-uniform leaf depth");
        }
        return;
      }
      if (node->children.size() >
          static_cast<size_t>(tree->options_.max_fanout)) {
        status = Status::Internal("fanout overflow");
        return;
      }
      if (node != tree->root_.get() && node->children.empty()) {
        status = Status::Internal("empty non-root internal node");
        return;
      }
      Rect mbr;
      for (const auto& child : node->children) {
        mbr = mbr.UnionWith(child->mbr);
        Visit(child.get(), node, depth + 1);
        if (!status.ok()) return;
      }
      if (!node->children.empty() && !(mbr == node->mbr)) {
        status = Status::Internal("stale mbr");
      }
    }
  };
  Checker checker{this};
  checker.Visit(root_.get(), nullptr, 0);
  return checker.status;
}

}  // namespace dod
