// Copyright 2026 The DOD Authors.
//
// Aggregate Features (Def. 5.1) and the DSHC merging criteria (Defs. 5.2 /
// 5.3 / 5.4). An AF summarizes a cluster of mini buckets by its point
// count, bounding box, and density — sufficient information to decide
// whether an incoming mini bucket (or a neighboring cluster) may be merged.

#ifndef DOD_DSHC_AGGREGATE_FEATURE_H_
#define DOD_DSHC_AGGREGATE_FEATURE_H_

#include <functional>
#include <string>

#include "common/bounds.h"

namespace dod {

// Def. 5.1: AF = (numPoints, minB, maxB, Density), with Density the count
// divided by the bounding-box volume.
struct AggregateFeature {
  double num_points = 0.0;
  Rect bounds;

  double density() const {
    const double area = bounds.Area();
    return area > 0.0 ? num_points / area : 0.0;
  }

  // Def. 5.4: counts add, boxes union (density is derived).
  static AggregateFeature Merge(const AggregateFeature& a,
                                const AggregateFeature& b) {
    return AggregateFeature{a.num_points + b.num_points,
                            a.bounds.UnionWith(b.bounds)};
  }

  std::string ToString() const;
};

// Def. 5.3: two boxes form a rectangle iff their boundaries coincide in
// exactly d-1 dimensions and they touch (share a face) in the remaining one.
bool FormsRectangle(const Rect& a, const Rect& b, double eps = 1e-9);

// Def. 5.2: clusters Ci, Cj may merge iff (1) their densities differ by
// less than Tdiff, (2) their union is rectangular, and (3) the combined
// cardinality stays below Tmax#. An optional fourth, cost-aware constraint
// caps the merged cluster's *estimated detection cost*: clusters whose best
// algorithm is linear (dense or very sparse, Cell-Based) may grow large,
// while quadratic middle-density (Nested-Loop) clusters are kept small —
// this is how partition generation "considers the performance properties of
// the detection algorithms" (Sec. I, challenge 3).
struct MergingCriteria {
  double t_diff = 0.0;
  double t_max_points = 0.0;
  double eps = 1e-9;
  // Estimated detection cost of a cluster; null disables the cost cap.
  std::function<double(const AggregateFeature&)> cost_fn;
  double t_max_cost = 0.0;

  bool CanMerge(const AggregateFeature& a, const AggregateFeature& b) const;
};

}  // namespace dod

#endif  // DOD_DSHC_AGGREGATE_FEATURE_H_
