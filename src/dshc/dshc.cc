// Copyright 2026 The DOD Authors.

#include "dshc/dshc.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"

namespace dod {

DshcThresholds ResolveThresholds(const DistributionSketch& sketch,
                                 const DshcOptions& options) {
  DshcThresholds out;

  if (options.t_diff > 0.0) {
    out.t_diff = options.t_diff;
  } else {
    // Auto rule. Tdiff must (a) absorb the *sampling noise* of bucket
    // counts — a bucket holding c sampled points has density uncertainty
    // ~sqrt(c)·scale/area, so two same-density buckets differ by a few of
    // those — while (b) staying below the spread between genuinely
    // different density bands. We take the max of the observed density
    // stddev and a 4-sigma Poisson noise floor at the mean bucket count.
    RunningStats densities;
    RunningStats counts;
    double mean_area = 0.0;
    const double scale = sketch.Scale();
    for (const MiniBucketGrid::Bucket& bucket : sketch.grid.buckets()) {
      const double area = sketch.grid.BucketRect(bucket.coord).Area();
      if (area <= 0.0) continue;
      densities.Add(bucket.weight * scale / area);
      counts.Add(bucket.weight);
      mean_area += area;
    }
    double noise_floor = 1e-12;
    if (counts.count() > 0) {
      mean_area /= static_cast<double>(counts.count());
      noise_floor =
          4.0 * std::sqrt(std::max(1.0, counts.mean())) * scale / mean_area;
    }
    out.t_diff = std::max(densities.stddev(), noise_floor);
  }

  if (options.t_max_points > 0.0) {
    out.t_max_points = options.t_max_points;
  } else {
    const double total = sketch.EstimatedCardinality();
    const double per_partition =
        total / std::max<size_t>(1, options.target_partitions);
    out.t_max_points =
        std::max(1.0, options.max_cardinality_factor * per_partition);
  }

  if (options.cost_aware_cap) {
    // Baseline total workload: every mini bucket costed on its own under
    // its Corollary 4.3 algorithm. The cap is a multiple of the mean
    // per-partition share of that total.
    const double scale = sketch.Scale();
    double total_cost = 0.0;
    for (const MiniBucketGrid::Bucket& bucket : sketch.grid.buckets()) {
      PartitionStats stats;
      stats.dims = sketch.grid.dims();
      stats.area = sketch.grid.BucketRect(bucket.coord).Area();
      stats.cardinality = static_cast<size_t>(bucket.weight * scale + 0.5);
      total_cost += PlanningCost(SelectAlgorithm(stats, options.detection),
                                 stats, options.detection);
    }
    out.t_max_cost =
        std::max(1.0, options.max_cost_factor * total_cost /
                          std::max<size_t>(1, options.target_partitions));
  }
  return out;
}

std::function<double(const AggregateFeature&)> ClusterCostFn(
    int dims, const DetectionParams& params) {
  return [dims, params](const AggregateFeature& af) {
    PartitionStats stats;
    stats.dims = dims;
    stats.area = af.bounds.Area();
    stats.cardinality = static_cast<size_t>(af.num_points + 0.5);
    return PlanningCost(SelectAlgorithm(stats, params), stats, params);
  };
}

std::vector<AggregateFeature> ClusterMiniBuckets(
    const DistributionSketch& sketch, const DshcOptions& options) {
  const MiniBucketGrid& grid = sketch.grid;
  const int dims = grid.dims();
  const int per_dim = grid.buckets_per_dim();
  double total_buckets = std::pow(static_cast<double>(per_dim), dims);
  DOD_CHECK_MSG(total_buckets <= (1 << 22),
                "mini-bucket grid too fine for exhaustive DSHC scan");

  const DshcThresholds thresholds = ResolveThresholds(sketch, options);
  AfTreeOptions tree_options;
  tree_options.t_diff = thresholds.t_diff;
  tree_options.t_max_points = thresholds.t_max_points;
  if (options.cost_aware_cap) {
    tree_options.cost_fn = ClusterCostFn(dims, options.detection);
    tree_options.t_max_cost = thresholds.t_max_cost;
  }
  tree_options.max_fanout = options.max_fanout;
  AfTree tree(dims, tree_options);

  // Single scan over every bucket (empty ones included, so the clusters
  // tile the domain) in row-major order: spatially coherent insertion that
  // lets strips grow and recursively merge into larger rectangles.
  const double scale = sketch.Scale();
  CellCoord coord;
  coord.dims = dims;
  for (int d = 0; d < dims; ++d) coord.c[d] = 0;
  while (true) {
    tree.InsertBucket(grid.BucketRect(coord),
                      grid.WeightAt(coord) * scale);
    int d = dims - 1;
    while (d >= 0) {
      if (++coord.c[d] < per_dim) break;
      coord.c[d] = 0;
      --d;
    }
    if (d < 0) break;
  }
  return tree.Clusters();
}

}  // namespace dod
