// Copyright 2026 The DOD Authors.

#include "runtime/parallel_executor.h"

#include <condition_variable>
#include <mutex>

namespace dod {

ParallelExecutor::ParallelExecutor(int num_threads, int num_groups)
    : num_threads_(num_threads <= 0 ? ThreadPool::DefaultThreadCount()
                                    : num_threads) {
  if (num_threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(num_threads_, num_groups);
  }
}

ParallelExecutor::~ParallelExecutor() = default;

Status ParallelExecutor::RunTasks(size_t n,
                                  const std::function<Status(size_t)>& fn) {
  return RunTasks(n, fn, nullptr);
}

Status ParallelExecutor::RunTasks(size_t n,
                                  const std::function<Status(size_t)>& fn,
                                  const std::function<int(size_t)>& hint) {
  if (n == 0) return Status::Ok();
  if (pool_ == nullptr) {
    // Sequential: index order, first failure wins; hints are moot with a
    // single execution stream.
    for (size_t i = 0; i < n; ++i) {
      DOD_RETURN_IF_ERROR(fn(i));
    }
    return Status::Ok();
  }

  // Barrier state shared with the workers. Everything behind one mutex:
  // tasks are coarse, so the handful of lock acquisitions per task is
  // noise next to the task body.
  struct Barrier {
    std::mutex mutex;
    std::condition_variable done;
    size_t remaining;
    size_t error_index;
    Status error;
  } barrier;
  barrier.remaining = n;
  barrier.error_index = n;

  for (size_t i = 0; i < n; ++i) {
    auto task = [&barrier, &fn, i] {
      Status status = fn(i);
      std::lock_guard<std::mutex> lock(barrier.mutex);
      // Lowest failing index wins so the reported error does not depend
      // on scheduling order.
      if (!status.ok() && i < barrier.error_index) {
        barrier.error_index = i;
        barrier.error = std::move(status);
      }
      if (--barrier.remaining == 0) barrier.done.notify_one();
    };
    if (hint != nullptr) {
      pool_->Submit(std::move(task), hint(i));
    } else {
      pool_->Submit(std::move(task));
    }
  }

  std::unique_lock<std::mutex> lock(barrier.mutex);
  barrier.done.wait(lock, [&barrier] { return barrier.remaining == 0; });
  return barrier.error_index < n ? barrier.error : Status::Ok();
}

}  // namespace dod
