// Copyright 2026 The DOD Authors.
//
// Deterministic task fan-out over a ThreadPool.
//
// The MapReduce engine's unit of parallelism is the *task* (one map split,
// one reduce partition). ParallelExecutor::RunTasks runs a batch of such
// tasks and acts as a barrier: it returns only when every launched task has
// finished. Determinism is split between the executor and its caller:
//
//   * the executor guarantees each index runs exactly once and that error
//     selection is order-independent (the failing task with the lowest
//     index wins, regardless of which thread noticed first);
//   * the caller keeps all task side effects in per-task staging and
//     publishes them *after* the barrier in task-index order, which makes
//     the combined output byte-identical for every thread count.
//
// With num_threads == 1 no pool exists: tasks run inline on the calling
// thread in index order, stopping at the first failure — exactly the
// engine's historical sequential loop, preserved so `--threads=1`
// reproduces it bit for bit (including not running tasks after an error).

#ifndef DOD_RUNTIME_PARALLEL_EXECUTOR_H_
#define DOD_RUNTIME_PARALLEL_EXECUTOR_H_

#include <cstddef>
#include <functional>
#include <memory>

#include "common/status.h"
#include "runtime/thread_pool.h"

namespace dod {

class ParallelExecutor {
 public:
  // num_threads <= 0 selects ThreadPool::DefaultThreadCount() (all
  // hardware threads); 1 is the sequential inline path; >= 2 spawns a
  // work-stealing pool of that many workers, partitioned into num_groups
  // locality groups (<= 0 auto-detects; see ThreadPool).
  explicit ParallelExecutor(int num_threads, int num_groups = 0);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  // Worker threads executing tasks (>= 1; 1 means sequential).
  int num_threads() const { return num_threads_; }
  bool sequential() const { return pool_ == nullptr; }
  // Locality groups of the underlying pool (1 when sequential).
  int num_groups() const { return pool_ ? pool_->num_groups() : 1; }
  // Steal-locality scorecard, forwarded from the pool (0 when sequential).
  uint64_t local_steals() const { return pool_ ? pool_->local_steals() : 0; }
  uint64_t remote_steals() const { return pool_ ? pool_->remote_steals() : 0; }

  // Runs fn(0) .. fn(n - 1) and waits for all of them (barrier).
  //
  // Sequential: index order, stops at the first non-OK status and returns
  // it. Parallel: every task runs to completion even when some fail, and
  // the non-OK status of the lowest failing index is returned — the same
  // error a sequential run would have surfaced.
  //
  // `fn` is invoked concurrently in parallel mode and must confine its
  // side effects to per-index state. Not reentrant: do not call RunTasks
  // from inside a task.
  Status RunTasks(size_t n, const std::function<Status(size_t)>& fn);

  // Like RunTasks, with a per-task placement hint: hint(i) names the
  // worker group task i should start on (-1 / out of range: anywhere).
  // Hints steer scheduling only — which group's caches run a task — and
  // never its result or the error selection, so determinism is untouched.
  Status RunTasks(size_t n, const std::function<Status(size_t)>& fn,
                  const std::function<int(size_t)>& hint);

 private:
  int num_threads_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace dod

#endif  // DOD_RUNTIME_PARALLEL_EXECUTOR_H_
