// Copyright 2026 The DOD Authors.

#include "runtime/thread_pool.h"

#include <string>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace dod {

int ThreadPool::DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int num_threads) {
  DOD_CHECK_MSG(num_threads >= 1, "ThreadPool: need at least one thread");
  queues_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkQueue>());
  }
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back(&ThreadPool::WorkerMain, this,
                          static_cast<size_t>(i));
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    // Empty critical section: pairs the stop flag with the sleepers'
    // predicate check so none of them naps through shutdown.
    std::lock_guard<std::mutex> lock(wake_mutex_);
  }
  wake_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  const size_t index =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[index]->mutex);
    queues_[index]->tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
  }
  wake_cv_.notify_one();
}

std::function<void()> ThreadPool::TakeTask(size_t worker_index) {
  const size_t n = queues_.size();
  // Own deque first, newest task (back) — the cache-warm end.
  {
    WorkQueue& own = *queues_[worker_index];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      std::function<void()> task = std::move(own.tasks.back());
      own.tasks.pop_back();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return task;
    }
  }
  // Steal a sibling's oldest task (front).
  for (size_t offset = 1; offset < n; ++offset) {
    WorkQueue& victim = *queues_[(worker_index + offset) % n];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      std::function<void()> task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return task;
    }
  }
  return {};
}

void ThreadPool::WorkerMain(size_t worker_index) {
  SetThreadLogTag("w" + std::to_string(worker_index));
  for (;;) {
    std::function<void()> task = TakeTask(worker_index);
    if (task) {
      task();
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

}  // namespace dod
