// Copyright 2026 The DOD Authors.

#include "runtime/thread_pool.h"

#include <filesystem>
#include <string>
#include <system_error>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace dod {

namespace {

// Worker group of the current thread; -1 everywhere except inside a pool
// worker (set once at worker startup, before any task runs).
thread_local int t_worker_group = -1;

// NUMA nodes the kernel exposes: node0, node1, ... directories. Returns 0
// when sysfs is unavailable (non-Linux, sandboxes) — the caller falls back
// to cache-domain bucketing.
int CountSysfsNumaNodes() {
  std::error_code ec;
  int nodes = 0;
  while (std::filesystem::is_directory(
      "/sys/devices/system/node/node" + std::to_string(nodes), ec)) {
    ++nodes;
  }
  return nodes;
}

}  // namespace

int ThreadPool::DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

int ThreadPool::CurrentWorkerGroup() { return t_worker_group; }

int ThreadPool::DetectWorkerGroups(int num_threads) {
  if (num_threads <= 1) return 1;
  const int nodes = CountSysfsNumaNodes();
  if (nodes > 1) return nodes < num_threads ? nodes : num_threads;
  // Single NUMA node (or no sysfs): bucket cores by shared-cache domain
  // size — up to 8 workers per group.
  return (num_threads + 7) / 8;
}

ThreadPool::ThreadPool(int num_threads, int num_groups) {
  DOD_CHECK_MSG(num_threads >= 1, "ThreadPool: need at least one thread");
  if (num_groups <= 0) num_groups = DetectWorkerGroups(num_threads);
  if (num_groups > num_threads) num_groups = num_threads;
  num_groups_ = num_groups;
  queues_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkQueue>());
  }
  group_cursors_ =
      std::make_unique<std::atomic<size_t>[]>(static_cast<size_t>(num_groups));
  for (int g = 0; g < num_groups; ++g) {
    group_cursors_[g].store(0, std::memory_order_relaxed);
  }
  // group_begin_[g] is the first worker whose GroupOf is g; the striping
  // w * G / n is monotone, so groups are the contiguous ranges
  // [group_begin_[g], group_begin_[g + 1]).
  group_begin_.assign(static_cast<size_t>(num_groups) + 1,
                      static_cast<size_t>(num_threads));
  for (size_t w = queues_.size(); w-- > 0;) {
    group_begin_[GroupOf(w)] = w;
  }
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back(&ThreadPool::WorkerMain, this,
                          static_cast<size_t>(i));
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    // Empty critical section: pairs the stop flag with the sleepers'
    // predicate check so none of them naps through shutdown.
    std::lock_guard<std::mutex> lock(wake_mutex_);
  }
  wake_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  const size_t index =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[index]->mutex);
    queues_[index]->tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
  }
  wake_cv_.notify_one();
}

void ThreadPool::Submit(std::function<void()> task, int group) {
  if (group < 0 || group >= num_groups_) {
    Submit(std::move(task));
    return;
  }
  const size_t begin = group_begin_[static_cast<size_t>(group)];
  const size_t size = group_begin_[static_cast<size_t>(group) + 1] - begin;
  const size_t index =
      begin + group_cursors_[group].fetch_add(1, std::memory_order_relaxed) %
                  size;
  {
    std::lock_guard<std::mutex> lock(queues_[index]->mutex);
    queues_[index]->tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
  }
  wake_cv_.notify_all();
}

std::function<void()> ThreadPool::TakeTask(size_t worker_index) {
  const size_t n = queues_.size();
  // Own deque first, newest task (back) — the cache-warm end.
  {
    WorkQueue& own = *queues_[worker_index];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      std::function<void()> task = std::move(own.tasks.back());
      own.tasks.pop_back();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return task;
    }
  }
  // Steal a sibling's oldest task (front): same-group victims in the
  // first pass, remote groups only after the whole local group is dry.
  const size_t own_group = GroupOf(worker_index);
  for (int pass = 0; pass < 2; ++pass) {
    const bool local_pass = pass == 0;
    for (size_t offset = 1; offset < n; ++offset) {
      const size_t victim_index = (worker_index + offset) % n;
      if ((GroupOf(victim_index) == own_group) != local_pass) continue;
      WorkQueue& victim = *queues_[victim_index];
      std::lock_guard<std::mutex> lock(victim.mutex);
      if (!victim.tasks.empty()) {
        std::function<void()> task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
        pending_.fetch_sub(1, std::memory_order_relaxed);
        (local_pass ? local_steals_ : remote_steals_)
            .fetch_add(1, std::memory_order_relaxed);
        return task;
      }
    }
  }
  return {};
}

void ThreadPool::WorkerMain(size_t worker_index) {
  SetThreadLogTag("w" + std::to_string(worker_index));
  t_worker_group = static_cast<int>(GroupOf(worker_index));
  for (;;) {
    std::function<void()> task = TakeTask(worker_index);
    if (task) {
      task();
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

}  // namespace dod
