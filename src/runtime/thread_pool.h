// Copyright 2026 The DOD Authors.
//
// A work-stealing thread pool for coarse-grained CPU-bound tasks.
//
// Each worker owns a deque of tasks: Submit() distributes new tasks over
// the workers round-robin, an idle worker first drains its own deque
// (LIFO, cache-warm), then steals from its siblings (FIFO, oldest task
// first — the classic work-stealing discipline that keeps big stolen units
// moving). MapReduce tasks are milliseconds-to-seconds coarse, so the
// queues are mutex-guarded rather than lock-free; contention on them is
// negligible at this granularity and the implementation stays trivially
// ThreadSanitizer-clean.
//
// Memory locality: workers are partitioned into contiguous *groups* —
// NUMA nodes when the kernel exposes more than one, cache-domain buckets
// of cores otherwise. A task submitted with a group hint lands on that
// group's workers (round-robin within the group), and an idle worker
// steals from same-group victims before crossing groups, so a task chain
// that first-touched an arena tends to stay on the cores whose caches
// (and, on real NUMA hardware, whose local memory) hold it. Groups are a
// scheduling preference, not an exclusivity guarantee: a fully idle
// remote group will still steal hinted work rather than sit idle, which
// the runtime.steal.{local,remote} counters make visible.
//
// The pool makes no ordering or exclusivity guarantees — determinism is
// the caller's job (see runtime/parallel_executor.h for the barrier +
// deterministic-commit pattern the MapReduce engine uses).

#ifndef DOD_RUNTIME_THREAD_POOL_H_
#define DOD_RUNTIME_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dod {

class ThreadPool {
 public:
  // Spawns exactly `num_threads` workers (must be >= 1), partitioned into
  // `num_groups` contiguous worker groups. num_groups <= 0 selects
  // DetectWorkerGroups(num_threads); a request for more groups than
  // workers is clamped. The calling thread never executes tasks; it only
  // submits and (elsewhere) waits.
  explicit ThreadPool(int num_threads, int num_groups = 0);

  // Drains nothing: the caller must have waited for its tasks before
  // destroying the pool. Joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(threads_.size()); }
  int num_groups() const { return num_groups_; }

  // Enqueues one task. Thread-safe; may be called from worker threads,
  // though the MapReduce engine only submits from the job thread.
  void Submit(std::function<void()> task);

  // Enqueues one task with a placement hint: the task is queued on a
  // worker of `group` (round-robin within the group). An out-of-range or
  // negative group means "anywhere" and behaves like the plain Submit.
  // A hint steers where the task starts, never whether it runs — idle
  // remote workers still steal it, so hints cannot deadlock or starve.
  void Submit(std::function<void()> task, int group);

  // Worker group of the calling thread: the value recorded for the worker
  // executing the current task, or -1 off the pool's worker threads. Map
  // tasks use it to remember which group first-touched their output.
  static int CurrentWorkerGroup();

  // Group topology for `num_threads` workers: the number of NUMA nodes
  // the kernel exposes under /sys/devices/system/node when that is more
  // than one (clamped to num_threads), else cache-domain buckets of up to
  // 8 cores. Single-node machines with few cores get 1 group — the
  // grouping machinery degenerates to the classic flat pool.
  static int DetectWorkerGroups(int num_threads);

  // Tasks submitted over the pool's lifetime (diagnostic).
  uint64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

  // Steals from a victim in the thief's own group / in a remote group.
  // Taking from the worker's own deque is not a steal. The split is the
  // pool's locality scorecard (runtime.steal.{local,remote}); values are
  // scheduling-dependent and therefore not deterministic across runs.
  uint64_t local_steals() const {
    return local_steals_.load(std::memory_order_relaxed);
  }
  uint64_t remote_steals() const {
    return remote_steals_.load(std::memory_order_relaxed);
  }

  // std::thread::hardware_concurrency with a floor of 1 (the standard
  // allows it to report 0 on exotic platforms).
  static int DefaultThreadCount();

 private:
  // One worker's deque. The owner pushes/pops at the back; thieves take
  // from the front.
  struct WorkQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerMain(size_t worker_index);
  // Pops the worker's own newest task, steals a same-group sibling's
  // oldest one, then a remote group's. Returns an empty function when
  // every deque is empty.
  std::function<void()> TakeTask(size_t worker_index);

  // Contiguous striping: worker w belongs to group w * G / n.
  size_t GroupOf(size_t worker_index) const {
    return worker_index * static_cast<size_t>(num_groups_) / queues_.size();
  }

  int num_groups_ = 1;
  std::vector<std::unique_ptr<WorkQueue>> queues_;
  std::vector<std::thread> threads_;
  // Round-robin submission cursors: one global, one per group.
  std::atomic<size_t> next_queue_{0};
  std::unique_ptr<std::atomic<size_t>[]> group_cursors_;
  // First worker index of each group, plus a num_threads sentinel.
  std::vector<size_t> group_begin_;
  // Tasks enqueued but not yet taken; the wake predicate. Modified with
  // wake_mutex_ held conceptually paired (see Submit) so sleepers never
  // miss a wakeup.
  std::atomic<int> pending_{0};
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> local_steals_{0};
  std::atomic<uint64_t> remote_steals_{0};
  std::atomic<bool> stop_{false};
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
};

}  // namespace dod

#endif  // DOD_RUNTIME_THREAD_POOL_H_
