// Copyright 2026 The DOD Authors.
//
// A work-stealing thread pool for coarse-grained CPU-bound tasks.
//
// Each worker owns a deque of tasks: Submit() distributes new tasks over
// the workers round-robin, an idle worker first drains its own deque
// (LIFO, cache-warm), then steals from its siblings (FIFO, oldest task
// first — the classic work-stealing discipline that keeps big stolen units
// moving). MapReduce tasks are milliseconds-to-seconds coarse, so the
// queues are mutex-guarded rather than lock-free; contention on them is
// negligible at this granularity and the implementation stays trivially
// ThreadSanitizer-clean.
//
// The pool makes no ordering or exclusivity guarantees — determinism is
// the caller's job (see runtime/parallel_executor.h for the barrier +
// deterministic-commit pattern the MapReduce engine uses).

#ifndef DOD_RUNTIME_THREAD_POOL_H_
#define DOD_RUNTIME_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dod {

class ThreadPool {
 public:
  // Spawns exactly `num_threads` workers (must be >= 1). The calling
  // thread never executes tasks; it only submits and (elsewhere) waits.
  explicit ThreadPool(int num_threads);

  // Drains nothing: the caller must have waited for its tasks before
  // destroying the pool. Joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(threads_.size()); }

  // Enqueues one task. Thread-safe; may be called from worker threads,
  // though the MapReduce engine only submits from the job thread.
  void Submit(std::function<void()> task);

  // Tasks submitted over the pool's lifetime (diagnostic).
  uint64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

  // std::thread::hardware_concurrency with a floor of 1 (the standard
  // allows it to report 0 on exotic platforms).
  static int DefaultThreadCount();

 private:
  // One worker's deque. The owner pushes/pops at the back; thieves take
  // from the front.
  struct WorkQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerMain(size_t worker_index);
  // Pops the worker's own newest task or steals a sibling's oldest one.
  // Returns an empty function when every deque is empty.
  std::function<void()> TakeTask(size_t worker_index);

  std::vector<std::unique_ptr<WorkQueue>> queues_;
  std::vector<std::thread> threads_;
  // Round-robin submission cursor.
  std::atomic<size_t> next_queue_{0};
  // Tasks enqueued but not yet taken; the wake predicate. Modified with
  // wake_mutex_ held conceptually paired (see Submit) so sleepers never
  // miss a wakeup.
  std::atomic<int> pending_{0};
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<bool> stop_{false};
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
};

}  // namespace dod

#endif  // DOD_RUNTIME_THREAD_POOL_H_
