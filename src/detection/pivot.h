// Copyright 2026 The DOD Authors.
//
// Pivot-based detector in the spirit of DOLPHIN (Angiulli & Fassetti,
// TKDD 2009 — reference [4] of the paper): exact distance-threshold
// detection accelerated by triangle-inequality pruning against a set of
// pivots. Every point precomputes its distances to P pivots; a candidate
// pair (p, q) can be skipped whenever |d(p, π) − d(q, π)| > r for some
// pivot π, since the triangle inequality then guarantees d(p, q) > r.
//
// The paper excludes this class from the distributed candidate set A
// because it "depends on building a global index [which] does not fit well
// the shared-nothing architectures" (Sec. VII). We ship it as an optional
// centralized detector: it is exact, often beats Nested-Loop on
// mid-dimensional data, and serves as an extension point; it is not used
// by the DMT planner.

#ifndef DOD_DETECTION_PIVOT_H_
#define DOD_DETECTION_PIVOT_H_

#include "detection/detector.h"

namespace dod {

class PivotDetector : public Detector {
 public:
  using Detector::DetectOutliers;

  // `num_pivots` controls pruning power vs per-probe overhead.
  explicit PivotDetector(int num_pivots = 4) : num_pivots_(num_pivots) {
    DOD_CHECK(num_pivots >= 1 && num_pivots <= 16);
  }

  std::string_view name() const override { return "Pivot"; }
  AlgorithmKind kind() const override { return AlgorithmKind::kBruteForce; }

  std::vector<uint32_t> DetectOutliers(const Dataset& points, size_t num_core,
                                       const DetectionParams& params,
                                       Counters* counters) const override;

 private:
  int num_pivots_;
};

}  // namespace dod

#endif  // DOD_DETECTION_PIVOT_H_
