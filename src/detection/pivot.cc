// Copyright 2026 The DOD Authors.

#include "detection/pivot.h"

#include <cmath>
#include <vector>

#include "common/distance.h"
#include "common/random.h"

namespace dod {

std::vector<uint32_t> PivotDetector::DetectOutliers(
    const Dataset& points, size_t num_core, const DetectionParams& params,
    Counters* counters) const {
  DOD_CHECK(num_core <= points.size());
  std::vector<uint32_t> outliers;
  const size_t n = points.size();
  if (n == 0) return outliers;
  const int dims = points.dims();
  const int pivots = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(num_pivots_), n));

  // Pivot selection: a random point first, then farthest-point refinement
  // (maximizes spread, the standard pivot heuristic).
  Rng rng(params.seed);
  std::vector<uint32_t> pivot_ids;
  pivot_ids.push_back(static_cast<uint32_t>(rng.NextBounded(n)));
  std::vector<double> nearest(n, 1e300);
  for (int p = 1; p < pivots; ++p) {
    const double* prev = points[pivot_ids.back()];
    uint32_t farthest = 0;
    double best = -1.0;
    for (uint32_t i = 0; i < n; ++i) {
      nearest[i] =
          std::min(nearest[i], SquaredEuclidean(points[i], prev, dims));
      if (nearest[i] > best) {
        best = nearest[i];
        farthest = i;
      }
    }
    pivot_ids.push_back(farthest);
  }

  // Distance table: point → pivots, flat row-major.
  std::vector<double> pivot_dist(n * static_cast<size_t>(pivots));
  for (uint32_t i = 0; i < n; ++i) {
    for (int p = 0; p < pivots; ++p) {
      pivot_dist[i * pivots + static_cast<size_t>(p)] =
          Euclidean(points[i], points[pivot_ids[static_cast<size_t>(p)]],
                    dims);
    }
  }

  const double radius = params.radius;
  const int k = params.min_neighbors;
  uint64_t distance_evals = 0, pruned = 0;
  for (uint32_t i = 0; i < num_core; ++i) {
    const double* p = points[i];
    const double* pd = &pivot_dist[i * pivots];
    int neighbors = 0;
    bool inlier = false;
    for (uint32_t j = 0; j < n && !inlier; ++j) {
      if (j == i) continue;
      // Triangle-inequality lower bound via each pivot.
      const double* qd = &pivot_dist[j * pivots];
      bool skip = false;
      for (int t = 0; t < pivots; ++t) {
        if (std::fabs(pd[t] - qd[t]) > radius) {
          skip = true;
          break;
        }
      }
      if (skip) {
        ++pruned;
        continue;
      }
      ++distance_evals;
      if (WithinDistance(p, points[j], dims, radius)) {
        if (++neighbors >= k) inlier = true;
      }
    }
    if (!inlier) outliers.push_back(i);
  }
  if (counters != nullptr) {
    counters->Increment("pivot.distance_evals", distance_evals);
    counters->Increment("pivot.pruned_pairs", pruned);
  }
  return outliers;
}

}  // namespace dod
