// Copyright 2026 The DOD Authors.

#include "detection/pivot.h"

#include <cmath>
#include <vector>

#include "common/random.h"
#include "kernels/distance_kernels.h"
#include "kernels/soa_block.h"
#include "observability/metrics.h"

namespace dod {
namespace {

// Candidates that survive the triangle-inequality filter are gathered into
// a scratch SoA buffer of this many slots and counted batched. Early exit
// happens at flush granularity, so the verdict (count >= k) is unchanged.
constexpr size_t kGatherBatch = 8 * kSoaWidth;

}  // namespace

std::vector<uint32_t> PivotDetector::DetectOutliers(
    const Dataset& points, size_t num_core, const DetectionParams& params,
    Counters* counters) const {
  DOD_CHECK(num_core <= points.size());
  std::vector<uint32_t> outliers;
  const size_t n = points.size();
  if (n == 0) return outliers;
  const int dims = points.dims();
  const int pivots = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(num_pivots_), n));
  const KernelOps& ops = GetKernelOps(params.kernels);

  // Pivot selection: a random point first, then farthest-point refinement
  // (maximizes spread, the standard pivot heuristic). Each refinement round
  // is one batched distance sweep over the SoA copy of the partition.
  SoABlock all_points(dims);
  all_points.Assign(points);
  std::vector<double> sq_dist(n);
  Rng rng(params.seed);
  std::vector<uint32_t> pivot_ids;
  pivot_ids.push_back(static_cast<uint32_t>(rng.NextBounded(n)));
  std::vector<double> nearest(n, 1e300);
  for (int p = 1; p < pivots; ++p) {
    ops.squared_distances(all_points, points[pivot_ids.back()],
                          sq_dist.data(), nullptr);
    uint32_t farthest = 0;
    double best = -1.0;
    for (uint32_t i = 0; i < n; ++i) {
      nearest[i] = std::min(nearest[i], sq_dist[i]);
      if (nearest[i] > best) {
        best = nearest[i];
        farthest = i;
      }
    }
    pivot_ids.push_back(farthest);
  }

  // Distance table: point → pivots, flat row-major; one batched sweep per
  // pivot.
  std::vector<double> pivot_dist(n * static_cast<size_t>(pivots));
  for (int p = 0; p < pivots; ++p) {
    ops.squared_distances(all_points, points[pivot_ids[static_cast<size_t>(p)]],
                          sq_dist.data(), nullptr);
    for (uint32_t i = 0; i < n; ++i) {
      pivot_dist[i * pivots + static_cast<size_t>(p)] = std::sqrt(sq_dist[i]);
    }
  }

  const double radius = params.radius;
  const double sq_radius = radius * radius;
  const int k = params.min_neighbors;
  uint64_t distance_evals = 0, pruned = 0;
  SoABlock batch(dims);
  batch.Reserve(kGatherBatch);
  for (uint32_t i = 0; i < num_core; ++i) {
    const double* p = points[i];
    const double* pd = &pivot_dist[i * pivots];
    int neighbors = 0;
    bool inlier = false;
    batch.Clear();
    for (uint32_t j = 0; j < n && !inlier; ++j) {
      if (j == i) continue;
      // Triangle-inequality lower bound via each pivot.
      const double* qd = &pivot_dist[j * pivots];
      bool skip = false;
      for (int t = 0; t < pivots; ++t) {
        if (std::fabs(pd[t] - qd[t]) > radius) {
          skip = true;
          break;
        }
      }
      if (skip) {
        ++pruned;
        continue;
      }
      batch.Append(points[j], j);
      if (batch.size() == kGatherBatch) {
        neighbors += ops.count_within_radius(batch, 0, batch.size(), p,
                                             sq_radius, kSoaInvalidId,
                                             k - neighbors, &distance_evals);
        batch.Clear();
        if (neighbors >= k) inlier = true;
      }
    }
    if (!inlier && !batch.empty()) {
      neighbors += ops.count_within_radius(batch, 0, batch.size(), p,
                                           sq_radius, kSoaInvalidId,
                                           k - neighbors, &distance_evals);
      if (neighbors >= k) inlier = true;
    }
    if (!inlier) outliers.push_back(i);
  }
  if (counters != nullptr) {
    counters->Increment("pivot.distance_evals", distance_evals);
    counters->Increment("pivot.pruned_pairs", pruned);
  }
  {
    MetricsRegistry& metrics = MetricsRegistry::Global();
    static const uint32_t kCalls =
        metrics.Id("detect.calls.pivot", MetricKind::kCounter);
    static const uint32_t kPairs =
        metrics.Id("detect.pairs.pivot", MetricKind::kCounter);
    metrics.Increment(kCalls);
    metrics.Increment(kPairs, distance_evals);
  }
  return outliers;
}

}  // namespace dod
