// Copyright 2026 The DOD Authors.
//
// Centralized distance-threshold outlier detectors (Def. 2.2): point p is an
// outlier iff |N_r(p)| < k, with N_r(p) the points within distance r of p
// (self excluded).
//
// Detectors operate on one partition at a time. A partition's dataset stores
// its core points first, followed by the replicated support points
// (Sec. III); only core points receive an outlier verdict, while every point
// — core or support — counts as a potential neighbor.

#ifndef DOD_DETECTION_DETECTOR_H_
#define DOD_DETECTION_DETECTOR_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/dataset.h"
#include "detection/partition_view.h"
#include "kernels/kernel_mode.h"
#include "mapreduce/counters.h"

namespace dod {

// The two parameters of the distance-threshold outlier definition.
struct DetectionParams {
  // Distance threshold r (Def. 2.1).
  double radius = 1.0;
  // Neighbor-count threshold k (Def. 2.2).
  int min_neighbors = 1;
  // Seed for detectors with randomized probe order (Nested-Loop).
  uint64_t seed = 42;
  // Distance-kernel implementation. Verdicts are bit-identical in every
  // mode (see kernels/distance_kernels.h); kScalar is the escape hatch.
  KernelMode kernels = KernelMode::kAuto;
};

// Which centralized detection algorithm to run on a partition — the unit of
// choice in the paper's algorithm plan (Def. 3.4).
enum class AlgorithmKind {
  kNestedLoop,
  kCellBased,
  // Exact reference oracle; not part of the paper's candidate set A, used by
  // tests and as a conservative fallback.
  kBruteForce,
};

const char* AlgorithmKindName(AlgorithmKind kind);

class Detector {
 public:
  virtual ~Detector() = default;

  virtual std::string_view name() const = 0;
  virtual AlgorithmKind kind() const = 0;

  // Returns the local indices (into `points`, all < num_core) of the core
  // points that are outliers, in increasing order. `counters`, when
  // non-null, accrues per-algorithm work counters (distance computations,
  // pruned cells, ...).
  virtual std::vector<uint32_t> DetectOutliers(const Dataset& points,
                                               size_t num_core,
                                               const DetectionParams& params,
                                               Counters* counters) const = 0;

  // Zero-copy entry point: detects on a PartitionView (local indices into
  // the view, all < view.num_core()). The built-in detectors read the
  // view's shared probe segment directly when it has one; the base default
  // materializes the view and delegates to the Dataset entry, so every
  // Detector accepts views. Verdicts never depend on which entry is used.
  virtual std::vector<uint32_t> DetectOutliers(const PartitionView& partition,
                                               const DetectionParams& params,
                                               Counters* counters) const;

  std::vector<uint32_t> DetectOutliers(const Dataset& points, size_t num_core,
                                       const DetectionParams& params) const {
    return DetectOutliers(points, num_core, params, nullptr);
  }
};

// Factory over the algorithm candidate set.
std::unique_ptr<Detector> MakeDetector(AlgorithmKind kind);

}  // namespace dod

#endif  // DOD_DETECTION_DETECTOR_H_
