// Copyright 2026 The DOD Authors.

#include "detection/partition_view.h"

#include <new>

#include "common/random.h"
#include "observability/metrics.h"
#include "observability/trace.h"

namespace dod {
namespace {

// Arena-build accounting: one arena serves every cell of a reduce task, so
// cells - arenas is the number of per-cell SoA builds the shared layout
// saved. `points` counts slots laid out (replicas included), mirroring
// kernels.soa_points for detector-built buffers.
void RecordArenaBuild(size_t cells, size_t points) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  static const uint32_t kArenas =
      metrics.Id("kernels.soa_reuse.arenas", MetricKind::kCounter);
  static const uint32_t kCells =
      metrics.Id("kernels.soa_reuse.cells", MetricKind::kCounter);
  static const uint32_t kPoints =
      metrics.Id("kernels.soa_reuse.points", MetricKind::kCounter);
  static const uint32_t kSaved =
      metrics.Id("kernels.soa_reuse.saved_builds", MetricKind::kCounter);
  metrics.Increment(kArenas);
  metrics.Increment(kCells, cells);
  metrics.Increment(kPoints, points);
  if (cells > 0) metrics.Increment(kSaved, cells - 1);
}

}  // namespace

Rect PartitionView::Bounds() const {
  DOD_CHECK(!empty());
  BoundsAccumulator accumulator(dims());
  for (size_t i = 0; i < size_; ++i) accumulator.Add(point(i));
  return accumulator.bounds();
}

Dataset PartitionView::Gather() const {
  Dataset gathered(dims());
  gathered.Reserve(size_);
  for (size_t i = 0; i < size_; ++i) gathered.Append(point(i));
  return gathered;
}

TaskArena::TaskArena(const Dataset& data, MemoryBudget* budget)
    : data_(data), budget_(budget), probes_(data.dims()) {}

Status TaskArena::TryReserve(size_t num_cells, size_t num_points) {
  // Block alignment can pad each cell up to a full block.
  const size_t slots = num_points + num_cells * kSoaWidth;
  const uint64_t stage_bytes =
      static_cast<uint64_t>(num_points) * sizeof(PointId) +
      static_cast<uint64_t>(num_cells) * sizeof(CellSlot);
  const uint64_t probe_bytes =
      static_cast<uint64_t>(slots) *
      (static_cast<uint64_t>(data_.dims()) * sizeof(double) +
       sizeof(uint32_t));
  DOD_RETURN_IF_ERROR(
      stage_charge_.Acquire(budget_, stage_bytes, "task arena id staging"));
  DOD_RETURN_IF_ERROR(
      probe_charge_.Acquire(budget_, probe_bytes, "task arena probe buffer"));
  try {
    cells_.reserve(num_cells);
    ids_.reserve(num_points);
    probes_.Reserve(slots);
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted(
        "task arena reservation for " + std::to_string(num_points) +
        " points across " + std::to_string(num_cells) +
        " cells failed to allocate (std::bad_alloc)");
  }
  return Status::Ok();
}

void TaskArena::Reserve(size_t num_cells, size_t num_points) {
  const Status status = TryReserve(num_cells, num_points);
  DOD_CHECK(status.ok());
}

void TaskArena::BeginCell() {
  DOD_CHECK(!built_);
  CellSlot slot;
  slot.ids_begin = ids_.size();
  cells_.push_back(slot);
}

void TaskArena::EndCell(size_t num_core, uint64_t permutation_seed) {
  DOD_CHECK(!cells_.empty() && !built_);
  CellSlot& slot = cells_.back();
  slot.size = ids_.size() - slot.ids_begin;
  DOD_CHECK(num_core <= slot.size);
  slot.num_core = num_core;
  slot.permutation_seed = permutation_seed;
}

void TaskArena::BuildProbes() {
  DOD_CHECK(!built_);
  trace::Span span("detect", "arena");
  size_t points = 0;
  for (CellSlot& slot : cells_) {
    probes_.AlignToBlock();
    slot.probe_begin = probes_.size();
    // Permuted segment, slot ids = local indices: randomized-probe
    // detectors scan it directly, and kernels skip the query point by its
    // local index just as with a detector-built buffer.
    Rng rng(slot.permutation_seed);
    const std::vector<uint32_t> order =
        RandomPermutation(slot.size, rng);
    const PointId* cell_ids = ids_.data() + slot.ids_begin;
    for (uint32_t local : order) {
      probes_.Append(data_[cell_ids[local]], local);
    }
    points += slot.size;
  }
  built_ = true;
  span.Arg("cells", static_cast<uint64_t>(cells_.size()))
      .Arg("points", static_cast<uint64_t>(points));
  RecordArenaBuild(cells_.size(), points);
}

Status TaskArena::TryBuildProbes() {
  try {
    BuildProbes();
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted(
        "task arena probe build failed to allocate (std::bad_alloc)");
  }
  return Status::Ok();
}

PartitionView TaskArena::View(size_t index) const {
  DOD_CHECK(built_ && index < cells_.size());
  const CellSlot& slot = cells_[index];
  PartitionView view(data_, ids_.data() + slot.ids_begin, slot.size,
                     slot.num_core);
  view.SetProbes(&probes_, slot.probe_begin);
  return view;
}

void TaskArena::Clear() {
  ids_.clear();
  cells_.clear();
  probes_.Clear();
  built_ = false;
}

}  // namespace dod
