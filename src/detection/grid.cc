// Copyright 2026 The DOD Authors.

#include "detection/grid.h"

#include <cmath>

namespace dod {

SparseGrid::SparseGrid(Point origin, double side)
    : origin_(origin), side_(side) {
  DOD_CHECK(side > 0.0);
  DOD_CHECK(origin.dims() >= 1);
}

CellCoord SparseGrid::CoordOf(const double* p) const {
  // One formula for every grid in the system (see detection/cell_key.h);
  // the streaming dirty-cell tracker keys cells through the same helper.
  return UniformCellKey(p, dims(), origin_.data(), side_);
}

void SparseGrid::Insert(const double* p, uint32_t id) {
  const CellCoord coord = CoordOf(p);
  auto [it, inserted] =
      index_.try_emplace(coord, static_cast<uint32_t>(cells_.size()));
  if (inserted) {
    cells_.push_back(Cell{coord, {}});
  }
  cells_[it->second].points.push_back(id);
}

const SparseGrid::Cell* SparseGrid::Find(const CellCoord& coord) const {
  auto it = index_.find(coord);
  if (it == index_.end()) return nullptr;
  return &cells_[it->second];
}

size_t SparseGrid::CountBlock(const CellCoord& coord, int ring_radius) const {
  size_t total = 0;
  ForEachCellInBlock(coord, 0, ring_radius,
                     [&](const Cell& cell) { total += cell.points.size(); });
  return total;
}

}  // namespace dod
