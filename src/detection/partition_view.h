// Copyright 2026 The DOD Authors.
//
// Zero-copy partition views and the per-reduce-task probe arena.
//
// The detection reducers used to materialize every cell's partition as a
// fresh Dataset (copying each point's coordinates out of the global
// dataset), after which the detector copied the coordinates *again* into
// its blocked-SoA probe buffer. A point replicated into several cells of
// one reduce task paid that double copy once per cell.
//
// PartitionView removes the first copy: it is a span of PointIds over the
// global dataset — AoS coordinate reads resolve through one indexed load,
// and the core-points-first local ordering the detectors expect is encoded
// in the id order. TaskArena removes the repeated SoA builds: one blocked
// SoA buffer per reduce task holds every cell's probe segment back to back
// (each segment block-aligned, pre-permuted, slot ids = local indices), so
// the kernels scan exactly [probe_begin, probe_begin + size) of the shared
// buffer and one arena build serves every cell of the task.
//
// Lifetime: a TaskArena lives on the stack of one reduce-task attempt
// (reducer instances are shared across concurrent tasks and must stay
// stateless). Views returned by View() borrow the arena's id and probe
// storage and must not outlive it; the global dataset outlives everything.

#ifndef DOD_DETECTION_PARTITION_VIEW_H_
#define DOD_DETECTION_PARTITION_VIEW_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bounds.h"
#include "common/dataset.h"
#include "common/point.h"
#include "durability/memory_budget.h"
#include "kernels/soa_block.h"

namespace dod {

// A read-only view of one cell's partition: `size()` points, the first
// `num_core()` of which are core points. Local index i resolves to the
// global point ids()[i]; an identity view (no id array) covers a whole
// dataset directly, which lets view-based detector code serve the legacy
// Dataset entry points with zero overhead.
class PartitionView {
 public:
  // Identity view over all of `data`; local index == PointId.
  PartitionView(const Dataset& data, size_t num_core)
      : data_(&data), ids_(nullptr), size_(data.size()), num_core_(num_core) {}

  // Gathered view: local index i is the point `ids[i]` of `data`, core
  // points first. `ids` must outlive the view.
  PartitionView(const Dataset& data, const PointId* ids, size_t size,
                size_t num_core)
      : data_(&data), ids_(ids), size_(size), num_core_(num_core) {}

  const Dataset& data() const { return *data_; }
  int dims() const { return data_->dims(); }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t num_core() const { return num_core_; }
  bool identity() const { return ids_ == nullptr; }

  // Global id of local point i.
  PointId id(size_t i) const {
    return ids_ != nullptr ? ids_[i] : static_cast<PointId>(i);
  }

  // Coordinates of local point i (one indexed load into the global data).
  const double* point(size_t i) const {
    return ids_ != nullptr ? (*data_)[ids_[i]]
                           : (*data_)[static_cast<PointId>(i)];
  }

  // Bounding box of the viewed points. Must not be called on an empty view.
  Rect Bounds() const;

  // Materializes the view as an owning Dataset (local order preserved);
  // the compatibility path for detectors without a native view entry.
  Dataset Gather() const;

  // Shared probe segment: slots [probe_begin, probe_begin + size) of
  // `probes` hold this view's points in a permuted order, each slot
  // carrying its point's *local* index as id (so kernels skip the query by
  // local index, exactly like a detector-built probe buffer).
  bool has_probes() const { return probes_ != nullptr; }
  const SoABlock& probes() const { return *probes_; }
  size_t probe_begin() const { return probe_begin_; }
  size_t probe_end() const { return probe_begin_ + size_; }

  void SetProbes(const SoABlock* probes, size_t probe_begin) {
    probes_ = probes;
    probe_begin_ = probe_begin;
  }

 private:
  const Dataset* data_;
  const PointId* ids_;
  size_t size_;
  size_t num_core_;
  const SoABlock* probes_ = nullptr;
  size_t probe_begin_ = 0;
};

// Builds the shared probe arena of one reduce task. Usage, inside a
// reduce-task attempt:
//
//   TaskArena arena(data);
//   for each cell:  arena.BeginCell();
//                   arena.AddPoint(id)...        // core first, then support
//                   arena.EndCell(num_core, permutation_seed);
//   arena.BuildProbes();
//   for each cell:  PartitionView view = arena.View(cell_index);
//
// The two-phase shape exists because id storage is one growing vector:
// views hand out raw pointers into it, so they are only created after every
// cell has been staged. BuildProbes lays each cell's segment into one
// SoABlock, block-aligned, in a deterministic per-cell random permutation
// (seeded by the caller — detectors with randomized probe order rely on
// it), and records the kernels.soa_reuse.* metrics.
class TaskArena {
 public:
  // `budget` (optional, borrowed) bounds the arena's reservations: the id
  // staging and the probe buffer are charged before allocation and the
  // charges are held for the arena's lifetime (Clear() keeps capacity, so
  // it keeps the charges too).
  explicit TaskArena(const Dataset& data, MemoryBudget* budget = nullptr);

  // Optional pre-sizing with the task's totals. The Try variant charges the
  // estimated bytes against the budget and converts denial or a failed
  // allocation into kResourceExhausted; the void variant is the legacy
  // budget-free path and aborts on failure.
  Status TryReserve(size_t num_cells, size_t num_points);
  void Reserve(size_t num_cells, size_t num_points);

  void BeginCell();
  void AddPoint(PointId id) { ids_.push_back(id); }
  void EndCell(size_t num_core, uint64_t permutation_seed);

  // TryBuildProbes converts std::bad_alloc from the probe layout into
  // kResourceExhausted (reservation estimates cover the common case, but
  // staging past the reserved sizes can still grow the buffers).
  Status TryBuildProbes();
  void BuildProbes();

  size_t num_cells() const { return cells_.size(); }

  // View of staged cell `index` (creation order). Valid only after
  // BuildProbes(), until the arena dies or is cleared.
  PartitionView View(size_t index) const;

  // Drops all staged cells and probes; keeps capacity (attempt retries).
  void Clear();

 private:
  struct CellSlot {
    size_t ids_begin = 0;
    size_t size = 0;
    size_t num_core = 0;
    size_t probe_begin = 0;
    uint64_t permutation_seed = 0;
  };

  const Dataset& data_;
  MemoryBudget* budget_;
  MemoryCharge stage_charge_;
  MemoryCharge probe_charge_;
  std::vector<PointId> ids_;
  std::vector<CellSlot> cells_;
  SoABlock probes_;
  bool built_ = false;
};

}  // namespace dod

#endif  // DOD_DETECTION_PARTITION_VIEW_H_
