// Copyright 2026 The DOD Authors.

#include "detection/detector.h"

#include "detection/brute_force.h"
#include "detection/cell_based.h"
#include "detection/nested_loop.h"

namespace dod {

std::vector<uint32_t> Detector::DetectOutliers(const PartitionView& partition,
                                               const DetectionParams& params,
                                               Counters* counters) const {
  if (partition.identity()) {
    return DetectOutliers(partition.data(), partition.num_core(), params,
                          counters);
  }
  const Dataset gathered = partition.Gather();
  return DetectOutliers(gathered, partition.num_core(), params, counters);
}

const char* AlgorithmKindName(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kNestedLoop:
      return "Nested-Loop";
    case AlgorithmKind::kCellBased:
      return "Cell-Based";
    case AlgorithmKind::kBruteForce:
      return "BruteForce";
  }
  return "Unknown";
}

std::unique_ptr<Detector> MakeDetector(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kNestedLoop:
      return std::make_unique<NestedLoopDetector>();
    case AlgorithmKind::kCellBased:
      return std::make_unique<CellBasedDetector>();
    case AlgorithmKind::kBruteForce:
      return std::make_unique<BruteForceDetector>();
  }
  return nullptr;
}

}  // namespace dod
