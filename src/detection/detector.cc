// Copyright 2026 The DOD Authors.

#include "detection/detector.h"

#include "detection/brute_force.h"
#include "detection/cell_based.h"
#include "detection/nested_loop.h"

namespace dod {

const char* AlgorithmKindName(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kNestedLoop:
      return "Nested-Loop";
    case AlgorithmKind::kCellBased:
      return "Cell-Based";
    case AlgorithmKind::kBruteForce:
      return "BruteForce";
  }
  return "Unknown";
}

std::unique_ptr<Detector> MakeDetector(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kNestedLoop:
      return std::make_unique<NestedLoopDetector>();
    case AlgorithmKind::kCellBased:
      return std::make_unique<CellBasedDetector>();
    case AlgorithmKind::kBruteForce:
      return std::make_unique<BruteForceDetector>();
  }
  return nullptr;
}

}  // namespace dod
