// Copyright 2026 The DOD Authors.
//
// The Cell-Based detector (Knorr & Ng, VLDB'98; Sec. IV-B of the paper).
//
// The domain is hashed into a uniform grid with cell side r / (2·√d), so any
// two points in one cell are at most r/2 apart, and a point in a cell C is
// within r of every point in C's adjacent cells (layer L1). Three prunings
// follow:
//   * red cells:  cnt(C) > k                  → every point in C is inlier;
//   * pink cells: cnt(C ∪ L1) > k             → every point in C is inlier;
//   * quiet neighborhoods: cnt(all cells that could hold a neighbor) ≤ k
//                                              → every point in C is outlier.
// Points in undecided cells are "evaluated individually, in a fashion
// similar to Nested-Loop" (Sec. IV-B): an exact neighbor count against the
// partition, without Nested-Loop's randomized early exit. In 2-d the
// "could hold a neighbor" block is the 7×7 ring structure (49 cells) the
// paper quotes in Lemma 4.2.
//
// The cost is linear in |D| when one of the prunings fires for (almost) all
// cells — exactly the very dense / very sparse extremes — and degrades to
// Nested-Loop-like probing plus indexing overhead in between.

#ifndef DOD_DETECTION_CELL_BASED_H_
#define DOD_DETECTION_CELL_BASED_H_

#include "detection/detector.h"

namespace dod {

// Cell side used by the Cell-Based algorithm: r / (2·sqrt(d)).
double CellBasedCellSide(double radius, int dims);

// Outermost Chebyshev ring (in cells) that can still contain a neighbor:
// floor(2·sqrt(d)) + 1. In 2-d this is 3 (the 7×7 block).
int CellBasedNeighborRings(int dims);

class CellBasedDetector : public Detector {
 public:
  using Detector::DetectOutliers;

  std::string_view name() const override { return "Cell-Based"; }
  AlgorithmKind kind() const override { return AlgorithmKind::kCellBased; }

  std::vector<uint32_t> DetectOutliers(const Dataset& points, size_t num_core,
                                       const DetectionParams& params,
                                       Counters* counters) const override;

  // Zero-copy entry: grids the view in place and probes undecided points
  // against the view's shared probe segment.
  std::vector<uint32_t> DetectOutliers(const PartitionView& partition,
                                       const DetectionParams& params,
                                       Counters* counters) const override;
};

}  // namespace dod

#endif  // DOD_DETECTION_CELL_BASED_H_
